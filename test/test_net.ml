(* Tests for the simulated internetwork. *)

module Engine = Legion_sim.Engine
module Network = Legion_net.Network
module Value = Legion_wire.Value
module Prng = Legion_util.Prng

let make_net ?latency () =
  let sim = Engine.create () in
  let net = Network.create ~sim ~prng:(Prng.create ~seed:1L) ?latency () in
  let s0 = Network.add_site net ~name:"s0" in
  let s1 = Network.add_site net ~name:"s1" in
  let h0 = Network.add_host net ~site:s0 ~name:"h0" in
  let h1 = Network.add_host net ~site:s0 ~name:"h1" in
  let h2 = Network.add_host net ~site:s1 ~name:"h2" in
  (sim, net, h0, h1, h2)

let test_topology () =
  let _, net, h0, h1, h2 = make_net () in
  Alcotest.(check int) "sites" 2 (Network.site_count net);
  Alcotest.(check int) "hosts" 3 (Network.host_count net);
  Alcotest.(check int) "site of h0" (Network.site_of net h0) (Network.site_of net h1);
  Alcotest.(check bool) "h2 other site" true
    (Network.site_of net h2 <> Network.site_of net h0);
  Alcotest.(check string) "name" "h2" (Network.host_name net h2);
  Alcotest.(check (list int)) "hosts of site 0" [ h0; h1 ]
    (Network.hosts_of_site net (Network.site_of net h0))

let test_latency_tiers () =
  let _, net, h0, h1, h2 = make_net () in
  let l = Network.default_latency in
  Alcotest.(check (float 1e-12)) "intra-host" l.Network.intra_host
    (Network.latency_between net h0 h0);
  Alcotest.(check (float 1e-12)) "intra-site" l.Network.intra_site
    (Network.latency_between net h0 h1);
  Alcotest.(check (float 1e-12)) "inter-site" l.Network.inter_site
    (Network.latency_between net h0 h2)

let test_delivery_and_timing () =
  let sim, net, h0, _, h2 = make_net () in
  let received = ref None in
  Network.set_receiver net h2 (fun ~src payload -> received := Some (src, payload));
  Network.send net ~src:h0 ~dst:h2 (Value.Str "hello");
  Alcotest.(check bool) "not yet delivered" true (!received = None);
  Engine.run sim;
  (match !received with
  | Some (src, Value.Str "hello") -> Alcotest.(check int) "src" h0 src
  | _ -> Alcotest.fail "not delivered");
  (* Arrival time within [l, l*(1+jitter)]. *)
  let l = Network.default_latency.Network.inter_site in
  let t = Engine.now sim in
  Alcotest.(check bool) "arrival in jitter window" true
    (t >= l && t <= l *. 1.1 +. 1e-12)

let test_message_counters () =
  let sim, net, h0, h1, h2 = make_net () in
  Network.set_receiver net h0 (fun ~src:_ _ -> ());
  Network.set_receiver net h1 (fun ~src:_ _ -> ());
  Network.set_receiver net h2 (fun ~src:_ _ -> ());
  Network.send net ~src:h0 ~dst:h0 Value.Unit;
  Network.send net ~src:h0 ~dst:h1 Value.Unit;
  Network.send net ~src:h0 ~dst:h2 Value.Unit;
  Engine.run sim;
  Alcotest.(check int) "sent" 3 (Network.messages_sent net);
  let ih, is_, ws = Network.messages_by_tier net in
  Alcotest.(check (list int)) "tiers" [ 1; 1; 1 ] [ ih; is_; ws ];
  Alcotest.(check bool) "bytes counted" true (Network.bytes_sent net > 0);
  Alcotest.(check int) "none dropped" 0 (Network.messages_dropped net)

let test_down_host_drops () =
  let sim, net, h0, _, h2 = make_net () in
  let received = ref 0 in
  Network.set_receiver net h2 (fun ~src:_ _ -> incr received);
  Network.set_host_up net h2 false;
  Alcotest.(check bool) "host marked down" false (Network.host_is_up net h2);
  Network.send net ~src:h0 ~dst:h2 Value.Unit;
  Engine.run sim;
  Alcotest.(check int) "nothing delivered" 0 !received;
  Alcotest.(check int) "counted dropped" 1 (Network.messages_dropped net);
  (* Back up: delivery resumes. *)
  Network.set_host_up net h2 true;
  Network.send net ~src:h0 ~dst:h2 Value.Unit;
  Engine.run sim;
  Alcotest.(check int) "delivered after recovery" 1 !received

let test_down_in_flight () =
  (* The destination dies while the message is in flight: it must be
     lost at arrival time. *)
  let sim, net, h0, _, h2 = make_net () in
  let received = ref 0 in
  Network.set_receiver net h2 (fun ~src:_ _ -> incr received);
  Network.send net ~src:h0 ~dst:h2 Value.Unit;
  ignore (Engine.schedule sim ~delay:0.001 (fun () -> Network.set_host_up net h2 false));
  Engine.run sim;
  Alcotest.(check int) "lost in flight" 0 !received

let test_down_source_drops () =
  let sim, net, h0, _, h2 = make_net () in
  let received = ref 0 in
  Network.set_receiver net h2 (fun ~src:_ _ -> incr received);
  Network.set_host_up net h0 false;
  Network.send net ~src:h0 ~dst:h2 Value.Unit;
  Engine.run sim;
  Alcotest.(check int) "dead source sends nothing" 0 !received

let test_no_receiver_drops () =
  let sim, net, h0, h1, _ = make_net () in
  Network.send net ~src:h0 ~dst:h1 Value.Unit;
  Engine.run sim;
  Alcotest.(check int) "dropped" 1 (Network.messages_dropped net)

let test_drop_rate () =
  let sim, net, h0, h1, _ = make_net () in
  let received = ref 0 in
  Network.set_receiver net h1 (fun ~src:_ _ -> incr received);
  Network.set_drop_rate net 0.5;
  let n = 2000 in
  for _ = 1 to n do
    Network.send net ~src:h0 ~dst:h1 Value.Unit
  done;
  Engine.run sim;
  let rate = float_of_int !received /. float_of_int n in
  if abs_float (rate -. 0.5) > 0.05 then Alcotest.failf "delivery rate %f" rate;
  Alcotest.check_raises "bad rate" (Invalid_argument "Network.set_drop_rate")
    (fun () -> Network.set_drop_rate net 1.5)

let test_partition () =
  let sim, net, h0, h1, h2 = make_net () in
  let received = ref 0 in
  Network.set_receiver net h2 (fun ~src:_ _ -> incr received);
  Network.set_receiver net h1 (fun ~src:_ _ -> incr received);
  let s0 = Network.site_of net h0 and s1 = Network.site_of net h2 in
  Network.set_partitioned net s0 s1 true;
  Alcotest.(check bool) "partitioned" true (Network.is_partitioned net s0 s1);
  Alcotest.(check bool) "symmetric" true (Network.is_partitioned net s1 s0);
  Network.send net ~src:h0 ~dst:h2 Value.Unit;
  Engine.run sim;
  Alcotest.(check int) "cross-site lost" 0 !received;
  (* Intra-site unaffected. *)
  Network.send net ~src:h0 ~dst:h1 Value.Unit;
  Engine.run sim;
  Alcotest.(check int) "intra-site flows" 1 !received;
  (* Heal. *)
  Network.set_partitioned net s0 s1 false;
  Network.send net ~src:h0 ~dst:h2 Value.Unit;
  Engine.run sim;
  Alcotest.(check int) "healed" 2 !received;
  (* Partitioning a site with itself is a no-op. *)
  Network.set_partitioned net s0 s0 true;
  Alcotest.(check bool) "self never partitioned" false
    (Network.is_partitioned net s0 s0)

module Recorder = Legion_obs.Recorder
module Trace = Legion_obs.Trace

(* Property (100 random topologies/fault mixes): the [messages_dropped]
   counter agrees with the Drop events in the structured trace, and
   every Send resolves to exactly one Deliver or Drop once the
   simulation quiesces. *)
let test_drop_accounting_matches_trace () =
  let master = Prng.create ~seed:0xDECAF1L in
  for _iter = 1 to 100 do
    let sim = Engine.create () in
    let obs =
      Recorder.create ~capacity:4096 ~clock:(fun () -> Engine.now sim) ()
    in
    let net = Network.create ~sim ~prng:(Prng.split master) ~obs () in
    let s0 = Network.add_site net ~name:"s0" in
    let s1 = Network.add_site net ~name:"s1" in
    let hosts =
      List.concat_map
        (fun s ->
          List.init 4 (fun i ->
              Network.add_host net ~site:s ~name:(Printf.sprintf "s%d-h%d" s i)))
        [ s0; s1 ]
    in
    List.iter
      (fun h ->
        if Prng.bernoulli master ~p:0.7 then
          Network.set_receiver net h (fun ~src:_ _ -> ()))
      hosts;
    Network.set_drop_rate net (Prng.float master 0.5);
    if Prng.bernoulli master ~p:0.3 then Network.set_partitioned net s0 s1 true;
    List.iter
      (fun h ->
        if Prng.bernoulli master ~p:0.2 then Network.set_host_up net h false)
      hosts;
    let host_arr = Array.of_list hosts in
    let n_hosts = Array.length host_arr in
    let n = 1 + Prng.int master 100 in
    for _ = 1 to n do
      let src = host_arr.(Prng.int master n_hosts) in
      let dst = host_arr.(Prng.int master n_hosts) in
      Network.send net ~src ~dst Value.Unit
    done;
    Engine.run sim;
    let events = Recorder.events obs in
    let sends = Trace.count_of (Trace.send ()) events in
    let delivers = Trace.count_of (Trace.deliver ()) events in
    let drops = Trace.count_of (Trace.drop ()) events in
    Alcotest.(check int) "Send events match messages_sent"
      (Network.messages_sent net) sends;
    Alcotest.(check int) "Drop events match messages_dropped"
      (Network.messages_dropped net) drops;
    Alcotest.(check int) "every send delivered or dropped" sends
      (delivers + drops)
  done

let test_bad_host_id () =
  let _, net, _, _, _ = make_net () in
  Alcotest.check_raises "bad id" (Invalid_argument "Network: bad host id") (fun () ->
      ignore (Network.host_name net 99))

(* Watchers are deregisterable handles: the repair machinery's
   start/stop cycles must not accumulate dead closures (the
   reconcile_on_heal leak). *)
let test_watcher_deregistration () =
  let _, net, h0, _, _ = make_net () in
  let host_fires = ref 0 and part_fires = ref 0 in
  Alcotest.(check int) "no watchers initially" 0 (Network.watcher_count net);
  let w1 = Network.add_host_watcher net (fun _ ~up:_ -> incr host_fires) in
  let w2 =
    Network.add_partition_watcher net (fun _ _ ~cut:_ -> incr part_fires)
  in
  Alcotest.(check int) "both registered" 2 (Network.watcher_count net);
  Network.set_host_up net h0 false;
  let s0 = Network.site_of net h0 in
  Network.set_partitioned net s0 (s0 + 1) true;
  Alcotest.(check int) "host watcher fired" 1 !host_fires;
  Alcotest.(check int) "partition watcher fired" 1 !part_fires;
  Network.remove_watcher net w1;
  Alcotest.(check int) "one left" 1 (Network.watcher_count net);
  (* The removed watcher stays silent; the other keeps firing. *)
  Network.set_host_up net h0 true;
  Network.set_partitioned net s0 (s0 + 1) false;
  Alcotest.(check int) "removed watcher silent" 1 !host_fires;
  Alcotest.(check int) "remaining watcher fired" 2 !part_fires;
  (* Removal is idempotent; handles are not confused across kinds. *)
  Network.remove_watcher net w1;
  Alcotest.(check int) "double remove is a no-op" 1 (Network.watcher_count net);
  Network.remove_watcher net w2;
  Alcotest.(check int) "all gone" 0 (Network.watcher_count net);
  Network.set_host_up net h0 false;
  Network.set_partitioned net s0 (s0 + 1) true;
  Alcotest.(check int) "no zombie firings (host)" 1 !host_fires;
  Alcotest.(check int) "no zombie firings (partition)" 2 !part_fires

let test_watcher_churn_bounded () =
  let _, net, _, _, _ = make_net () in
  for _ = 1 to 50 do
    let w = Network.add_host_watcher net (fun _ ~up:_ -> ()) in
    let w' = Network.add_partition_watcher net (fun _ _ ~cut:_ -> ()) in
    Network.remove_watcher net w;
    Network.remove_watcher net w'
  done;
  Alcotest.(check int) "churn leaves nothing behind" 0
    (Network.watcher_count net)

let () =
  Alcotest.run "net"
    [
      ( "network",
        [
          Alcotest.test_case "topology" `Quick test_topology;
          Alcotest.test_case "latency tiers" `Quick test_latency_tiers;
          Alcotest.test_case "delivery and timing" `Quick test_delivery_and_timing;
          Alcotest.test_case "message counters" `Quick test_message_counters;
          Alcotest.test_case "down host drops" `Quick test_down_host_drops;
          Alcotest.test_case "down in flight" `Quick test_down_in_flight;
          Alcotest.test_case "down source drops" `Quick test_down_source_drops;
          Alcotest.test_case "no receiver drops" `Quick test_no_receiver_drops;
          Alcotest.test_case "drop rate" `Slow test_drop_rate;
          Alcotest.test_case "site partitions" `Quick test_partition;
          Alcotest.test_case "drop accounting matches trace" `Quick
            test_drop_accounting_matches_trace;
          Alcotest.test_case "bad host id" `Quick test_bad_host_id;
          Alcotest.test_case "watcher deregistration" `Quick
            test_watcher_deregistration;
          Alcotest.test_case "watcher churn leaves no leak" `Quick
            test_watcher_churn_bounded;
        ] );
    ]
