(* Tests for the fault-tolerant invocation layer: retry/backoff under
   message loss, give-up on exhausted budgets, loser cancellation in
   replica races, and prompt failure of in-flight calls on host crash.
   Assertions are made against the structured event trace (Legion_obs),
   in the same style as test_trace.ml. *)

module Engine = Legion_sim.Engine
module Script = Legion_sim.Script
module Network = Legion_net.Network
module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Address = Legion_naming.Address
module Counter = Legion_util.Counter
module Prng = Legion_util.Prng
module Env = Legion_sec.Env
module Runtime = Legion_rt.Runtime
module Retry = Legion_rt.Retry
module Err = Legion_rt.Err
module Event = Legion_obs.Event
module Recorder = Legion_obs.Recorder
module Trace = Legion_obs.Trace

let loid i = Loid.make ~class_id:60L ~class_specific:(Int64.of_int i) ()

type fixture = {
  sim : Engine.t;
  rt : Runtime.t;
  net : Network.t;
  obs : Recorder.t;
  hosts : int list;
}

let make_fixture ?(seed = 11L) ?config ?(hosts_per_site = 2) ?(sites = 2) () =
  let sim = Engine.create () in
  let prng = Prng.create ~seed in
  let registry = Counter.Registry.create () in
  let obs = Recorder.create ~clock:(fun () -> Engine.now sim) () in
  let net = Network.create ~sim ~prng:(Prng.split prng) ~obs () in
  let hosts =
    List.concat_map
      (fun s ->
        let sid = Network.add_site net ~name:(Printf.sprintf "s%d" s) in
        List.init hosts_per_site (fun i ->
            Network.add_host net ~site:sid ~name:(Printf.sprintf "s%d-h%d" s i)))
      (List.init sites (fun s -> s))
  in
  let rt =
    Runtime.create ~sim ~net ~registry ~prng:(Prng.split prng) ?config ~obs ()
  in
  { sim; rt; net; obs; hosts }

let echo_handler : Runtime.handler =
 fun _ctx call k ->
  match call.Runtime.meth with
  | "Echo" -> k (Ok (Value.List call.Runtime.args))
  | "Silent" -> ()
  | m -> k (Error (Err.No_such_method m))

let spawn f ~host ~id ~kind = Runtime.spawn f.rt ~host ~loid:(loid id) ~kind ~handler:echo_handler ()

let client_ctx f ~host ~id =
  let p =
    Runtime.spawn f.rt ~host ~loid:(loid id) ~kind:"client"
      ~handler:(fun _ _ k -> k (Error (Err.Refused "client")))
      ()
  in
  { Runtime.rt = f.rt; self = p }

(* Start the call, then run the engine to quiescence so retransmit
   timers, late duplicates and cancellations all settle before we
   inspect the trace. *)
let sync f start =
  let r = ref None in
  start (fun x -> r := Some (x, Engine.now f.sim));
  Engine.run f.sim;
  match !r with Some x -> x | None -> Alcotest.fail "no reply before quiescence"

let invoke_direct ctx ~dst_proc ~meth ~args k =
  Runtime.invoke_address ctx
    ~address:(Runtime.address_of dst_proc)
    ~dst:(Runtime.proc_loid dst_proc) ~meth ~args
    ~env:(Env.of_self (Runtime.proc_loid ctx.Runtime.self))
    k

let assert_holds m events =
  match Trace.explain m events with
  | None -> ()
  | Some msg -> Alcotest.failf "trace assertion failed: %s" msg

let retry_times events =
  List.filter_map
    (fun e ->
      match e.Event.kind with Event.Retry _ -> Some e.Event.time | _ -> None)
    events

(* --- retry recovers a dropped call --- *)

let test_retry_recovers_lost_call () =
  let f = make_fixture () in
  let server = spawn f ~host:(List.nth f.hosts 1) ~id:1 ~kind:"app" in
  let ctx = client_ctx f ~host:(List.hd f.hosts) ~id:2 in
  (* Black out the network for the first two attempts (t=0 and ~0.3),
     then heal it so the third transmission gets through. *)
  Network.set_drop_rate f.net 1.0;
  Script.at f.sim ~time:0.5 (fun () -> Network.set_drop_rate f.net 0.0);
  let reply, _t =
    sync f (fun k ->
        invoke_direct ctx ~dst_proc:server ~meth:"Echo" ~args:[ Value.Int 7 ] k)
  in
  (match reply with
  | Ok (Value.List [ Value.Int 7 ]) -> ()
  | Ok v -> Alcotest.failf "bad echo: %s" (Value.to_string v)
  | Error e -> Alcotest.failf "call failed despite retries: %s" (Err.to_string e));
  let events = Recorder.events f.obs in
  assert_holds
    Trace.(
      seq
        [
          matches ~label:"first attempt" (call ~meth:"Echo" ());
          matches ~label:"first drop" (drop ~reason:Event.Random_loss ());
          matches ~label:"retransmission" (retry ~attempt:2 ());
          matches ~label:"eventual reply" (reply ~ok:true ());
        ])
    events;
  (* Exponential backoff: the gap between consecutive transmissions
     grows (jitter is only ±10%, far below the 2x growth). *)
  let first_call_time =
    match Trace.find (Trace.call ~meth:"Echo" ()) events with
    | Some e -> e.Event.time
    | None -> Alcotest.fail "no Call event"
  in
  let gaps =
    let rec diffs prev = function
      | [] -> []
      | t :: rest -> (t -. prev) :: diffs t rest
    in
    diffs first_call_time (retry_times events)
  in
  Alcotest.(check bool) "at least two retransmissions" true (List.length gaps >= 2);
  let rec ascending = function
    | a :: b :: rest -> a < b && ascending (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "gaps grow" true (ascending gaps);
  (* The call recovered: no give-up, no timeout, and the recovery
     latency histogram saw the exchange. *)
  Alcotest.(check int) "no Giveup" 0 (Trace.count_of (Trace.giveup ()) events);
  Alcotest.(check int) "no Timeout" 0 (Trace.count_of (Trace.timeout ()) events);
  match Recorder.latency f.obs ~component:"rt.recovery" with
  | Some h ->
      Alcotest.(check bool) "recovery sample recorded" true
        (Legion_util.Stats.Histogram.total h >= 1)
  | None -> Alcotest.fail "no rt.recovery histogram"

(* --- exhausted budget gives up --- *)

let test_exhausted_budget_gives_up () =
  let retry =
    { Retry.max_attempts = 3; attempt_timeout = 0.2; multiplier = 2.0; jitter = 0.0 }
  in
  let f =
    make_fixture
      ~config:{ Runtime.default_config with call_timeout = 1.0; retry }
      ()
  in
  let server = spawn f ~host:(List.nth f.hosts 1) ~id:1 ~kind:"app" in
  let ctx = client_ctx f ~host:(List.hd f.hosts) ~id:2 in
  Network.set_drop_rate f.net 1.0;
  let reply, t_done =
    sync f (fun k ->
        invoke_direct ctx ~dst_proc:server ~meth:"Echo" ~args:[] k)
  in
  (match reply with
  | Error Err.Timeout -> ()
  | r ->
      Alcotest.failf "expected timeout, got %s"
        (match r with Ok v -> Value.to_string v | Error e -> Err.to_string e));
  (* Attempts at 0, 0.2, 0.6; the third window (0.8) is clamped to the
     overall 1.0 s budget, so the call dies at the deadline — not at
     0.2+0.4+0.8 = 1.4. *)
  Alcotest.(check (float 1e-6)) "gave up at the overall deadline" 1.0 t_done;
  let events = Recorder.events f.obs in
  Alcotest.(check int) "three transmissions" 3
    (Trace.count_of (Trace.call ~meth:"Echo" ()) events);
  assert_holds
    Trace.(
      seq
        [
          matches ~label:"attempt 2" (retry ~attempt:2 ());
          matches ~label:"attempt 3" (retry ~attempt:3 ());
          matches ~label:"deadline" (timeout ());
          matches ~label:"give up" (giveup ());
        ])
    events;
  match Trace.find (Trace.giveup ()) events with
  | Some { Event.kind = Event.Giveup { attempts; _ }; _ } ->
      Alcotest.(check int) "give-up reports all transmissions" 3 attempts
  | _ -> Alcotest.fail "no Giveup event"

(* --- an explicit timeout stays a single attempt --- *)

let test_explicit_timeout_single_attempt () =
  let f = make_fixture () in
  let server = spawn f ~host:(List.nth f.hosts 1) ~id:1 ~kind:"app" in
  let ctx = client_ctx f ~host:(List.hd f.hosts) ~id:2 in
  Network.set_drop_rate f.net 1.0;
  let reply, t_done =
    sync f (fun k ->
        Runtime.invoke_address ctx ~timeout:0.8
          ~address:(Runtime.address_of server)
          ~dst:(Runtime.proc_loid server) ~meth:"Echo" ~args:[]
          ~env:(Env.of_self (Runtime.proc_loid ctx.Runtime.self))
          k)
  in
  (match reply with
  | Error Err.Timeout -> ()
  | _ -> Alcotest.fail "expected timeout");
  Alcotest.(check (float 1e-6)) "full caller-managed deadline" 0.8 t_done;
  let events = Recorder.events f.obs in
  Alcotest.(check int) "exactly one transmission" 1
    (Trace.count_of (Trace.call ~meth:"Echo" ()) events);
  Alcotest.(check int) "no Retry" 0 (Trace.count_of (Trace.retry ()) events);
  (* A deliberate single attempt is a Timeout, not a retry give-up. *)
  Alcotest.(check int) "no Giveup" 0 (Trace.count_of (Trace.giveup ()) events)

(* --- a race winner cancels the losers --- *)

let test_race_winner_cancels_losers () =
  let f = make_fixture () in
  let shared = loid 9 in
  let fast =
    Runtime.spawn f.rt ~host:(List.nth f.hosts 1) ~loid:shared ~kind:"app"
      ~handler:echo_handler ()
  in
  let silent =
    Runtime.spawn f.rt ~host:(List.nth f.hosts 2) ~loid:shared ~kind:"app"
      ~handler:(fun _ _ _ -> ()) ()
  in
  let ctx = client_ctx f ~host:(List.hd f.hosts) ~id:2 in
  let address =
    Address.make ~semantic:Address.All
      [ Runtime.element_of fast; Runtime.element_of silent ]
  in
  let reply, _t =
    sync f (fun k ->
        Runtime.invoke_address ctx ~address ~dst:shared ~meth:"Echo"
          ~args:[ Value.Int 1 ]
          ~env:(Env.of_self (Runtime.proc_loid ctx.Runtime.self))
          k)
  in
  (match reply with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "race failed: %s" (Err.to_string e));
  let events = Recorder.events f.obs in
  assert_holds
    Trace.(
      seq
        [
          matches ~label:"fanout" (replica_fanout ~target:shared ());
          matches ~label:"winner replies" (reply ~ok:true ());
          matches ~label:"loser cancelled" (cancel ());
        ])
    events;
  (* The loser's pending entry is reaped with its timer: after running
     to quiescence there is no spurious Timeout, Giveup or Retry from
     the losing replica. *)
  Alcotest.(check int) "no spurious Timeout" 0
    (Trace.count_of (Trace.timeout ()) events);
  Alcotest.(check int) "no Giveup" 0 (Trace.count_of (Trace.giveup ()) events);
  Alcotest.(check int) "loser never retransmitted" 0
    (Trace.count_of (Trace.retry ()) events)

(* --- crash_host fails in-flight calls promptly --- *)

let test_crash_host_fails_inflight_promptly () =
  let f = make_fixture () in
  let dead_host = List.nth f.hosts 1 in
  let server = spawn f ~host:dead_host ~id:1 ~kind:"app" in
  let ctx = client_ctx f ~host:(List.hd f.hosts) ~id:2 in
  (* The call reaches the server (which never replies) and hangs
     in-flight; the host then crashes under it. *)
  Script.at f.sim ~time:0.05 (fun () -> Runtime.crash_host f.rt dead_host);
  let reply, t_done =
    sync f (fun k ->
        invoke_direct ctx ~dst_proc:server ~meth:"Silent" ~args:[] k)
  in
  (match reply with
  | Error (Err.Unreachable _) -> ()
  | r ->
      Alcotest.failf "expected Unreachable, got %s"
        (match r with Ok v -> Value.to_string v | Error e -> Err.to_string e));
  (* Promptly: at the crash instant, not after the 5 s call budget or
     even one 0.3 s attempt window. *)
  Alcotest.(check (float 1e-6)) "failed at the crash instant" 0.05 t_done;
  let events = Recorder.events f.obs in
  Alcotest.(check bool) "pending entry reaped (Cancel)" true
    (Trace.count_of (Trace.cancel ()) events >= 1);
  Alcotest.(check int) "no Timeout fired" 0
    (Trace.count_of (Trace.timeout ()) events)

(* --- scripted schedules --- *)

let test_script_ramp_and_pulse () =
  let sim = Engine.create () in
  let samples = ref [] in
  Script.ramp sim ~start:0.0 ~until:3.0 ~steps:3 ~values:[ 0.0; 0.05; 0.2; 0.0 ]
    (fun v -> samples := (Engine.now sim, v) :: !samples);
  let flips = ref [] in
  Script.pulse sim ~start:1.5 ~width:1.0
    ~on:(fun () -> flips := (Engine.now sim, true) :: !flips)
    ~off:(fun () -> flips := (Engine.now sim, false) :: !flips);
  let ticks = ref 0 in
  Script.every sim ~period:0.5 ~until:2.0 (fun () -> incr ticks);
  Engine.run sim;
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "ramp applies each value at its step boundary"
    [ (0.0, 0.0); (1.0, 0.05); (2.0, 0.2); (3.0, 0.0) ]
    (List.rev !samples);
  Alcotest.(check (list (pair (float 1e-9) bool)))
    "pulse turns on then off"
    [ (1.5, true); (2.5, false) ]
    (List.rev !flips);
  Alcotest.(check int) "every fires while <= until" 4 !ticks

let () =
  Alcotest.run "faults"
    [
      ( "retry",
        [
          Alcotest.test_case "retry recovers a dropped call" `Quick
            test_retry_recovers_lost_call;
          Alcotest.test_case "exhausted budget gives up" `Quick
            test_exhausted_budget_gives_up;
          Alcotest.test_case "explicit timeout is a single attempt" `Quick
            test_explicit_timeout_single_attempt;
        ] );
      ( "cancellation",
        [
          Alcotest.test_case "race winner cancels losers" `Quick
            test_race_winner_cancels_losers;
          Alcotest.test_case "crash_host fails in-flight calls promptly" `Quick
            test_crash_host_fails_inflight_promptly;
        ] );
      ( "script",
        [
          Alcotest.test_case "ramp, pulse and every schedules" `Quick
            test_script_ramp_and_pulse;
        ] );
    ]
