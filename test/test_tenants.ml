(* Tests for the multi-tenant hardening layer: the Tenant registry's
   token buckets, deficit-round-robin fair queuing at budgeted objects,
   quota sheds typed [Quota_exceeded] and attributed to the charged
   tenant, policy denial on the binding path, and the E21 scenario's
   determinism and gates. The assertions are shape- not timing-shaped
   (ratios, attributions, error types), so the suite is swept across
   seeds by test/dune; LEGION_TRACE_SEED overrides the default. *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Engine = Legion_sim.Engine
module Policy = Legion_sec.Policy
module Runtime = Legion_rt.Runtime
module Tenant = Legion_rt.Tenant
module Err = Legion_rt.Err
module Recorder = Legion_obs.Recorder
module Event = Legion_obs.Event
module Stats = Legion_obs.Stats
module System = Legion.System
module Api = Legion.Api
module Tenants = Legion.Tenants
module H = Helpers

let sweep_seed =
  match Sys.getenv_opt "LEGION_TRACE_SEED" with
  | Some s -> ( match Int64.of_string_opt s with Some v -> v | None -> 42L)
  | None -> 42L

let l i = Loid.make ~class_id:71L ~class_specific:(Int64.of_int i) ()

(* --- The registry itself: token buckets in virtual time. --- *)

let test_token_bucket () =
  let reg = Tenant.create () in
  let tn = Tenant.register reg ~name:"t" ~responsible:(l 1) ~rate:2.0 () in
  (* Burst defaults to a quarter second of rate, clamped to >= 1. *)
  Alcotest.(check bool) "one token at boot" true (Tenant.try_take tn ~now:0.0);
  Alcotest.(check bool) "bucket drained" false (Tenant.try_take tn ~now:0.0);
  let hint = Tenant.retry_hint tn ~now:0.0 in
  Alcotest.(check bool)
    (Printf.sprintf "hint %.3f is about half a second" hint)
    true
    (hint > 0.0 && hint <= 0.5 +. 1e-9);
  Alcotest.(check bool) "still dry before the hint" false
    (Tenant.try_take tn ~now:(hint /. 2.0));
  Alcotest.(check bool) "refilled after the hint" true
    (Tenant.try_take tn ~now:(0.0 +. hint +. 1e-6));
  (* Unbudgeted tenants never shed. *)
  let free = Tenant.register reg ~name:"free" ~responsible:(l 2) () in
  for _ = 1 to 100 do
    Alcotest.(check bool) "free tenant" true (Tenant.try_take free ~now:0.0)
  done;
  Alcotest.(check (float 1e-9)) "free hint" 0.0 (Tenant.retry_hint free ~now:0.0)

let test_registry_lookup () =
  let reg = Tenant.create () in
  let a = Tenant.register reg ~name:"a" ~responsible:(l 1) ~weight:3 () in
  let _b = Tenant.register reg ~name:"b" ~responsible:(l 2) () in
  Alcotest.(check (list string)) "registration order" [ "a"; "b" ]
    (Tenant.tenants reg);
  Alcotest.(check string) "by env" "a"
    (Tenant.name (Tenant.of_env reg (Legion_sec.Env.of_self (l 1))));
  Alcotest.(check string) "fallback" Tenant.fallback_name
    (Tenant.name (Tenant.of_env reg (Legion_sec.Env.of_self (l 99))));
  (* Re-registration under a new Responsible Agent keeps the row. *)
  Tenant.note_shed a;
  let a' = Tenant.register reg ~name:"a" ~responsible:(l 7) ~weight:3 () in
  Alcotest.(check int) "counters survive re-keying" 1 (Tenant.shed_count a');
  Alcotest.(check string) "new RA resolves" "a"
    (Tenant.name (Tenant.of_env reg (Legion_sec.Env.of_self (l 7))))

(* --- A budgeted worker under two competing tenants. --- *)

let work_idl = "interface TenantWorker { Work(d: float): int; }"

let boot_worker ?(admission = { Runtime.max_inflight = 1; max_queue = 64;
                                retry_after_hint = 0.02 }) () =
  Tenants.register_units ();
  let sys =
    System.boot ~seed:sweep_seed
      ~rt_config:{ Runtime.default_config with admission = Some admission }
      ~sites:[ ("uva", 3) ] ()
  in
  let admin = System.client sys () in
  let cls =
    Api.derive_class_exn sys admin ~parent:Legion_core.Well_known.legion_object
      ~name:"TenantWorker" ~units:[ Tenants.work_unit ] ~idl:work_idl ()
  in
  let worker = Api.create_object_exn sys admin ~cls ~eager:true () in
  (sys, admin, cls, worker)

let loid_of (c : Runtime.ctx) = Runtime.proc_loid c.Runtime.self

(* Weight-proportional service: both tenants dump a burst on a serial
   worker; after a fixed virtual window the weight-3 tenant must have
   completed decisively more calls, and eventually everyone completes —
   fair queuing reorders, it does not starve. *)
let test_drr_weighted_shares () =
  let sys, _admin, _cls, worker = boot_worker () in
  let rt = System.rt sys in
  let eng = System.sim sys in
  let heavy = System.client sys () and light = System.client sys () in
  let reg = Tenant.create () in
  ignore
    (Tenant.register reg ~name:"heavy" ~responsible:(loid_of heavy) ~weight:3 ());
  ignore
    (Tenant.register reg ~name:"light" ~responsible:(loid_of light) ~weight:1 ());
  Runtime.set_tenants rt (Some reg);
  (* Warm both callers' bindings first so the burst measures dispatch,
     not resolution. *)
  List.iter
    (fun c ->
      ignore
        (Api.call_exn sys c ~dst:worker ~meth:"Work"
           ~args:[ Value.Float 0.0 ]))
    [ heavy; light ];
  let ok_h = ref 0 and ok_l = ref 0 and failed = ref 0 in
  let burst ctx counter =
    for _ = 1 to 20 do
      Runtime.invoke ctx ~dst:worker ~meth:"Work"
        ~args:[ Value.Float 0.005 ]
        (fun r -> match r with Ok _ -> incr counter | Error _ -> incr failed)
    done
  in
  let t0 = Engine.now eng in
  ignore
    (Engine.schedule_at eng ~time:t0 (fun () ->
         burst heavy ok_h;
         burst light ok_l));
  System.run_for sys 0.11;
  Alcotest.(check int) "no failures mid-burst" 0 !failed;
  Alcotest.(check bool)
    (Printf.sprintf "weighted shares (heavy %d, light %d)" !ok_h !ok_l)
    true
    (!ok_h > 0 && !ok_l > 0 && !ok_h >= 2 * !ok_l);
  System.run_for sys 10.0;
  Alcotest.(check int) "heavy all served" 20 !ok_h;
  Alcotest.(check int) "light not starved" 20 !ok_l;
  Alcotest.(check int) "no sheds at 64-deep lanes" 0 !failed

(* A rate-budgeted tenant overdriving its bucket is shed with the typed
   retryable error, attributed in the event stream, the registry and
   the recorder's per-tenant stats; an unbudgeted bystander is not. *)
let test_quota_shed_attributed () =
  let sys, _admin, _cls, worker = boot_worker () in
  let rt = System.rt sys in
  let greedy = System.client sys () and meek = System.client sys () in
  let reg = Tenant.create () in
  let tn_g =
    Tenant.register reg ~name:"greedy" ~responsible:(loid_of greedy)
      ~rate:1.0 ()
  in
  ignore (Tenant.register reg ~name:"meek" ~responsible:(loid_of meek) ());
  Runtime.set_tenants rt (Some reg);
  List.iter
    (fun c ->
      ignore
        (Api.call_exn sys c ~dst:worker ~meth:"Work"
           ~args:[ Value.Float 0.0 ]))
    [ greedy; meek ];
  let mark = Recorder.total (System.obs sys) in
  let quota = ref 0 and ok = ref 0 and other = ref 0 in
  let tally = function
    | Ok _ -> incr ok
    | Error (Err.Quota_exceeded { tenant; retry_after }) ->
        Alcotest.(check string) "shed names the tenant" "greedy" tenant;
        Alcotest.(check bool) "hint positive" true (retry_after > 0.0);
        incr quota
    | Error _ -> incr other
  in
  (* ~timeout selects single-attempt calls, so the shed surfaces to the
     caller instead of being absorbed by budget-aware retries. The burst
     fires two virtual seconds after the warmup call, so the bucket
     (capacity one token at rate 1/s) holds exactly one token again:
     one call is admitted, four are shed. *)
  let eng = System.sim sys in
  ignore
    (Engine.schedule_at eng ~time:(Engine.now eng +. 2.0) (fun () ->
         for _ = 1 to 5 do
           Runtime.invoke greedy ~timeout:10.0 ~dst:worker ~meth:"Work"
             ~args:[ Value.Float 0.001 ] tally
         done;
         Runtime.invoke meek ~timeout:10.0 ~dst:worker ~meth:"Work"
           ~args:[ Value.Float 0.001 ]
           (fun r ->
             match r with
             | Ok _ -> ()
             | Error e ->
                 Alcotest.failf "bystander failed: %s" (Err.to_string e))));
  System.run_for sys 7.0;
  Alcotest.(check int) "no other errors" 0 !other;
  Alcotest.(check bool)
    (Printf.sprintf "bucket admitted %d, shed %d" !ok !quota)
    true
    (!ok >= 1 && !quota >= 1 && !ok + !quota = 5);
  Alcotest.(check int) "registry attribution" !quota (Tenant.shed_count tn_g);
  (* The event stream and the recorder's auto-tallied per-tenant stats
     agree. *)
  let evs = Recorder.events_since (System.obs sys) mark in
  let sheds_tagged =
    List.length
      (List.filter
         (fun (ev : Event.t) ->
           match ev.Event.kind with
           | Event.Shed { tenant = Some "greedy"; _ } -> true
           | _ -> false)
         evs)
  in
  Alcotest.(check int) "every shed event tagged greedy" !quota sheds_tagged;
  let ts = Recorder.tenant_stats (System.obs sys) in
  match Stats.find ts "greedy" with
  | None -> Alcotest.fail "no greedy row in tenant stats"
  | Some row ->
      Alcotest.(check int) "stats sheds" !quota (Stats.shed row);
      Alcotest.(check bool) "stats admits" true (Stats.admitted row >= 1)

(* --- Policy on the binding path. --- *)

(* A class whose binding policy excludes a principal answers that
   principal's resolutions with the terminal [Denied] — it never hands
   out a binding — and emits a tenant-tagged [Deny] event. The owner,
   whose Responsible Agent the policy clears, is untouched. *)
let test_deny_at_get_binding () =
  let sys, admin, cls, worker = boot_worker () in
  let rt = System.rt sys in
  let stranger = System.client sys () in
  let reg = Tenant.create () in
  ignore
    (Tenant.register reg ~name:"eve" ~responsible:(loid_of stranger) ());
  Runtime.set_tenants rt (Some reg);
  ignore
    (Api.call_exn sys admin ~dst:cls ~meth:"SetBindingPolicy"
       ~args:
         [
           Policy.to_value
             (Policy.Allow_responsible (Loid.Set.of_list [ loid_of admin ]));
         ]);
  let mark = Recorder.total (System.obs sys) in
  (* The stranger's resolution dies at the class: typed, attributed,
     and no binding ever reaches her cache. *)
  (match Api.call sys stranger ~dst:worker ~meth:"Work" ~args:[ Value.Float 0.0 ] with
  | Error (Err.Denied { tenant; reason }) ->
      Alcotest.(check string) "denial names the tenant" "eve" tenant;
      Alcotest.(check bool) "reason given" true (String.length reason > 0)
  | Ok _ -> Alcotest.fail "stranger resolved a binding through the policy"
  | Error e -> Alcotest.failf "expected Denied, got %s" (Err.to_string e));
  let denies =
    List.filter
      (fun (ev : Event.t) ->
        match ev.Event.kind with Event.Deny _ -> true | _ -> false)
      (Recorder.events_since (System.obs sys) mark)
  in
  Alcotest.(check bool) "a Deny event was emitted" true (denies <> []);
  List.iter
    (fun (ev : Event.t) ->
      match ev.Event.kind with
      | Event.Deny { tenant; meth; _ } ->
          Alcotest.(check string) "event tenant" "eve" tenant;
          Alcotest.(check string) "event method" "GetBinding" meth
      | _ -> ())
    denies;
  (* The cleared owner still resolves and calls. *)
  ignore (Api.call_exn sys admin ~dst:worker ~meth:"Work" ~args:[ Value.Float 0.0 ]);
  (* The stranger cannot lift the policy either: SetBindingPolicy is
     gated by the policy being replaced. *)
  match
    Api.call sys stranger ~dst:cls ~meth:"SetBindingPolicy"
      ~args:[ Policy.to_value Policy.Allow_all ]
  with
  | Error (Err.Denied _) -> ()
  | Ok _ -> Alcotest.fail "stranger replaced the binding policy"
  | Error e -> Alcotest.failf "expected Denied, got %s" (Err.to_string e)

(* Without a tenant registry armed, enforcement still works and the
   denial is attributed to the fallback lane. *)
let test_deny_without_registry () =
  let sys, admin, cls, worker = boot_worker () in
  let stranger = System.client sys () in
  ignore
    (Api.call_exn sys admin ~dst:cls ~meth:"SetBindingPolicy"
       ~args:
         [
           Policy.to_value
             (Policy.Allow_responsible (Loid.Set.of_list [ loid_of admin ]));
         ]);
  match Api.call sys stranger ~dst:worker ~meth:"Work" ~args:[ Value.Float 0.0 ] with
  | Error (Err.Denied { tenant; _ }) ->
      Alcotest.(check string) "fallback attribution" Tenant.fallback_name tenant
  | Ok _ -> Alcotest.fail "stranger resolved a binding"
  | Error e -> Alcotest.failf "expected Denied, got %s" (Err.to_string e)

(* --- The E21 scenario: determinism and gates. --- *)

let test_scenario_deterministic_and_gated () =
  let r = Tenants.run_scenario ~seed:sweep_seed ~noisy:true () in
  let r' = Tenants.run_scenario ~seed:sweep_seed ~noisy:true () in
  Alcotest.(check string)
    "byte-identical report for equal seeds"
    (Tenants.scenario_json r) (Tenants.scenario_json r');
  Alcotest.(check bool)
    (Printf.sprintf "offender was shed (%d events)" r.Tenants.shed_events)
    true (r.Tenants.shed_events >= 1);
  Alcotest.(check int) "every shed attributed to the offender"
    r.Tenants.shed_events r.Tenants.shed_by_offender;
  Alcotest.(check int) "no unattributed sheds" 0 r.Tenants.shed_unattributed;
  Alcotest.(check int) "every eve probe denied" r.Tenants.eve_probes
    r.Tenants.eve_denied;
  Alcotest.(check int) "eve never got a binding" 0 r.Tenants.eve_bindings;
  Alcotest.(check bool) "denies attributed to eve" true
    (r.Tenants.deny_by_eve >= r.Tenants.eve_probes);
  List.iter
    (fun name ->
      match Tenants.find_lane r name with
      | None -> Alcotest.failf "missing lane %s" name
      | Some lane ->
          Alcotest.(check int)
            (Printf.sprintf "%s saw no quota sheds" name)
            0 lane.Tenants.quota_shed;
          Alcotest.(check int)
            (Printf.sprintf "%s saw no errors" name)
            0 lane.Tenants.errors)
    Tenants.well_behaved

let () =
  Alcotest.run "tenants"
    [
      ( "registry",
        [
          Alcotest.test_case "token bucket in virtual time" `Quick
            test_token_bucket;
          Alcotest.test_case "lookup, fallback, re-keying" `Quick
            test_registry_lookup;
        ] );
      ( "fair-queuing",
        [
          Alcotest.test_case "weighted DRR shares" `Quick
            test_drr_weighted_shares;
          Alcotest.test_case "quota sheds typed and attributed" `Quick
            test_quota_shed_attributed;
        ] );
      ( "binding-policy",
        [
          Alcotest.test_case "denied at GetBinding" `Quick
            test_deny_at_get_binding;
          Alcotest.test_case "fallback attribution without registry" `Quick
            test_deny_without_registry;
        ] );
      ( "e21",
        [
          Alcotest.test_case "deterministic and gated" `Quick
            test_scenario_deterministic_and_gated;
        ] );
    ]
