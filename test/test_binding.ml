(* Tests for Binding Agents: the §3.6 interface, the §4.1 resolution
   chain through class objects, and the §5.2.2 combining tree. *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Address = Legion_naming.Address
module Binding = Legion_naming.Binding
module Well_known = Legion_core.Well_known
module Impl = Legion_core.Impl
module Opr = Legion_core.Opr
module Agent_part = Legion_binding.Agent_part
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module System = Legion.System
module Api = Legion.Api
module H = Helpers

let get_stats sys ctx agent =
  match Api.call sys ctx ~dst:agent ~meth:"GetStats" ~args:[] with
  | Ok v -> v
  | Error e -> Alcotest.failf "GetStats: %s" (Err.to_string e)

let stat v name =
  match Legion_core.Convert.int_field v name with
  | Ok i -> i
  | Error e -> Alcotest.failf "stat %s: %s" name e

let test_agent_resolves_instance () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let loid = Api.create_object_exn sys ctx ~cls ~eager:true () in
  let agent = (System.site sys 0).System.agent in
  (* Ask the agent directly (clients normally do this implicitly). *)
  match Api.get_binding sys ctx ~via:agent ~target:loid with
  | Ok b -> Alcotest.check H.loid_t "binds right loid" loid (Binding.loid b)
  | Error e -> Alcotest.failf "GetBinding: %s" (Err.to_string e)

let test_agent_resolves_class () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let agent = (System.site sys 1).System.agent in
  (* Resolving a class goes LegionClass -> responsibility pair ->
     creator class -> binding (§4.1.3). *)
  match Api.get_binding sys ctx ~via:agent ~target:cls with
  | Ok b -> Alcotest.check H.loid_t "binds the class" cls (Binding.loid b)
  | Error e -> Alcotest.failf "GetBinding class: %s" (Err.to_string e)

let test_agent_caches () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let loid = Api.create_object_exn sys ctx ~cls ~eager:true () in
  let agent = (System.site sys 0).System.agent in
  ignore (Api.get_binding sys ctx ~via:agent ~target:loid);
  let s1 = get_stats sys ctx agent in
  ignore (Api.get_binding sys ctx ~via:agent ~target:loid);
  let s2 = get_stats sys ctx agent in
  Alcotest.(check int) "second lookup is a hit" (stat s1 "hits" + 1) (stat s2 "hits");
  Alcotest.(check int) "no extra class resolution" (stat s1 "resolved")
    (stat s2 "resolved")

let test_add_and_invalidate_binding () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let agent = (System.site sys 0).System.agent in
  let fake_loid = Loid.make ~class_id:77L ~class_specific:1L () in
  let fake =
    Binding.make ~loid:fake_loid
      ~address:(Address.singleton (Address.Sim { host = 0; slot = 9999 }))
      ()
  in
  (* AddBinding propagates information "for performance purposes". *)
  (match
     Api.call sys ctx ~dst:agent ~meth:"AddBinding" ~args:[ Binding.to_value fake ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "AddBinding: %s" (Err.to_string e));
  (match Api.get_binding sys ctx ~via:agent ~target:fake_loid with
  | Ok b -> Alcotest.(check bool) "served from cache" true (Binding.equal b fake)
  | Error e -> Alcotest.failf "GetBinding: %s" (Err.to_string e));
  (* InvalidateBinding(loid) removes it; resolution then fails since
     class 77 does not exist. *)
  (match
     Api.call sys ctx ~dst:agent ~meth:"InvalidateBinding"
       ~args:[ Loid.to_value fake_loid ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "InvalidateBinding: %s" (Err.to_string e));
  match Api.get_binding sys ctx ~via:agent ~target:fake_loid with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "invalidated binding still served"

let test_get_binding_refresh_form () =
  (* GetBinding(binding) must bypass the cache and return a fresh
     binding after the object moved. *)
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let loid = Api.create_object_exn sys ctx ~cls () in
  let _ = Api.call_exn sys ctx ~dst:loid ~meth:"Increment" ~args:[ Value.Int 1 ] in
  let agent = (System.site sys 0).System.agent in
  let b1 =
    match Api.get_binding sys ctx ~via:agent ~target:loid with
    | Ok b -> b
    | Error e -> Alcotest.failf "initial binding: %s" (Err.to_string e)
  in
  (* Deactivate, so the cached address is dead. *)
  let mag = List.hd (System.magistrates sys) in
  (match Api.call sys ctx ~dst:mag ~meth:"Deactivate" ~args:[ Loid.to_value loid ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "deactivate: %s" (Err.to_string e));
  match
    Api.call sys ctx ~dst:agent ~meth:"GetBinding" ~args:[ Binding.to_value b1 ]
  with
  | Error e -> Alcotest.failf "refresh: %s" (Err.to_string e)
  | Ok bv -> (
      match Binding.of_value bv with
      | Error msg -> Alcotest.failf "bad binding: %s" msg
      | Ok b2 ->
          Alcotest.(check bool) "address changed" false
            (Address.equal (Binding.address b1) (Binding.address b2)))

(* --- Combining tree (§5.2.2) --- *)

(* Build a chain of extra agents: leaf -> mid -> root(site agent). Class
   lookups from the leaf must be served by forwarding, leaving
   LegionClass traffic to the root only. *)
let spawn_extra_agent sys ~parent_addr ~host =
  let loid =
    System.fresh_instance_loid sys ~of_class:Well_known.legion_binding_agent
  in
  let state =
    Agent_part.state_value ?parent:parent_addr
      ~legion_class:(System.legion_class_binding sys) ()
  in
  let opr =
    Opr.make
      ~states:[ (Agent_part.unit_name, state) ]
      ~kind:Well_known.kind_binding_agent
      ~units:[ Agent_part.unit_name; Well_known.unit_object ]
      ()
  in
  match Impl.activate (System.rt sys) ~host ~loid opr with
  | Ok proc -> (loid, proc)
  | Error msg -> Alcotest.failf "spawn agent: %s" msg

let test_tree_forwarding () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let site0 = System.site sys 0 in
  let root_loid, root_proc =
    spawn_extra_agent sys ~parent_addr:None ~host:(List.hd site0.System.net_hosts)
  in
  let _, leaf_proc =
    spawn_extra_agent sys
      ~parent_addr:(Some (Runtime.address_of root_proc))
      ~host:(List.nth site0.System.net_hosts 1)
  in
  ignore root_loid;
  (* Ask the leaf for a class binding: it must forward, not resolve. *)
  let leaf_addr = Runtime.address_of leaf_proc in
  let wildcard = Loid.make ~class_id:0L ~class_specific:0L () in
  let reply =
    Api.sync sys (fun k ->
        Runtime.invoke_address ctx ~address:leaf_addr ~dst:wildcard
          ~meth:"GetBinding" ~args:[ Loid.to_value cls ]
          ~env:(Legion_sec.Env.of_self (Runtime.proc_loid ctx.Runtime.self))
          k)
  in
  (match reply with
  | Ok bv -> (
      match Binding.of_value bv with
      | Ok b -> Alcotest.check H.loid_t "leaf served via parent" cls (Binding.loid b)
      | Error msg -> Alcotest.failf "bad binding: %s" msg)
  | Error e -> Alcotest.failf "leaf GetBinding: %s" (Err.to_string e));
  let leaf_ctx = { Runtime.rt = System.rt sys; self = leaf_proc } in
  ignore leaf_ctx;
  let leaf_stats =
    Api.sync sys (fun k ->
        Runtime.invoke_address ctx ~address:leaf_addr ~dst:wildcard
          ~meth:"GetStats" ~args:[]
          ~env:(Legion_sec.Env.of_self (Runtime.proc_loid ctx.Runtime.self))
          k)
  in
  match leaf_stats with
  | Ok v ->
      Alcotest.(check int) "leaf forwarded" 1 (stat v "forwarded");
      Alcotest.(check int) "leaf did not resolve" 0 (stat v "resolved")
  | Error e -> Alcotest.failf "leaf stats: %s" (Err.to_string e)

let test_agent_tree_builder () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let tree =
    Legion.Agent_tree.build sys
      ~hosts:(System.site sys 0).System.net_hosts
      ~fanout:2 ~levels:2 ~n_leaves:4
  in
  Alcotest.(check int) "4 leaves" 4 (List.length tree.Legion.Agent_tree.leaves);
  Alcotest.(check int) "1 root" 1 (List.length tree.Legion.Agent_tree.roots);
  Alcotest.(check int) "3 layers" 3 (List.length tree.Legion.Agent_tree.levels);
  (* Every leaf resolves a class through the tree. *)
  let wildcard = Loid.make ~class_id:0L ~class_specific:0L () in
  List.iter
    (fun leaf ->
      let r =
        Api.sync sys (fun k ->
            Runtime.invoke_address ctx
              ~address:(Runtime.address_of leaf)
              ~dst:wildcard ~meth:"GetBinding" ~args:[ Loid.to_value cls ]
              ~env:(Legion_sec.Env.of_self (Runtime.proc_loid ctx.Runtime.self))
              k)
      in
      match r with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "leaf resolve: %s" (Err.to_string e))
    tree.Legion.Agent_tree.leaves;
  (* Only the root layer resolved through classes; mid layers forwarded. *)
  let stats_of proc =
    Api.sync sys (fun k ->
        Runtime.invoke_address ctx ~address:(Runtime.address_of proc)
          ~dst:wildcard ~meth:"GetStats" ~args:[]
          ~env:(Legion_sec.Env.of_self (Runtime.proc_loid ctx.Runtime.self))
          k)
  in
  List.iter
    (fun leaf ->
      match stats_of leaf with
      | Ok v -> Alcotest.(check int) "leaf resolved nothing" 0 (stat v "resolved")
      | Error e -> Alcotest.failf "stats: %s" (Err.to_string e))
    tree.Legion.Agent_tree.leaves;
  match stats_of (List.hd tree.Legion.Agent_tree.roots) with
  | Ok v -> Alcotest.(check bool) "root resolved" true (stat v "resolved" > 0)
  | Error e -> Alcotest.failf "root stats: %s" (Err.to_string e)

let test_arrange_agent_tree () =
  (* Organize a 4-site system's agents under 2 roots; class lookups from
     fresh clients then reach LegionClass only via the roots. *)
  let sys =
    H.register_counter_unit ();
    Legion.System.boot ~seed:81L
      ~sites:[ ("a", 2); ("b", 2); ("c", 2); ("d", 2) ]
      ()
  in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  System.arrange_agent_tree sys ~fanout:2;
  (* A fresh client at every site resolves the class through its site
     agent; every site agent must have forwarded (not resolved). *)
  List.iteri
    (fun i _ ->
      let c = System.client sys ~site:i () in
      match Api.get_binding sys c ~via:(System.site sys i).System.agent ~target:cls with
      | Ok b -> Alcotest.check H.loid_t "resolved" cls (Binding.loid b)
      | Error e -> Alcotest.failf "site %d: %s" i (Err.to_string e))
    (System.sites sys);
  List.iteri
    (fun i _ ->
      let v = get_stats sys ctx (System.site sys i).System.agent in
      Alcotest.(check bool)
        (Printf.sprintf "site %d forwarded class lookups" i)
        true
        (stat v "forwarded" >= 1))
    (System.sites sys)

let test_set_parent_runtime () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let agent = (System.site sys 0).System.agent in
  (* SetParent(none) then SetParent(some) round-trips. *)
  (match
     Api.call sys ctx ~dst:agent ~meth:"SetParent" ~args:[ Value.List [] ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "SetParent none: %s" (Err.to_string e));
  let other = (System.site sys 1).System.agent_address in
  match
    Api.call sys ctx ~dst:agent ~meth:"SetParent"
      ~args:[ Value.List [ Address.to_value other ] ]
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "SetParent some: %s" (Err.to_string e)


(* --- Regression tests for the agent's concurrency and persistence
   fixes --- *)

module Engine = Legion_sim.Engine
module Network = Legion_net.Network
module Prng = Legion_util.Prng
module Counter = Legion_util.Counter
module Env = Legion_sec.Env
module Recorder = Legion_obs.Recorder
module C = Legion_core.Convert

(* A bare runtime (no System boot) so the test controls every object the
   agent talks to, including a scripted stand-in for LegionClass. *)
type rt_fixture = { sim : Engine.t; rt : Runtime.t; hosts : Network.host_id list }

let make_rt_fixture ?(sites = 2) ?(hosts_per_site = 2) () =
  let sim = Engine.create () in
  let prng = Prng.create ~seed:23L in
  let registry = Counter.Registry.create () in
  let obs = Recorder.create ~clock:(fun () -> Engine.now sim) () in
  let net = Network.create ~sim ~prng:(Prng.split prng) ~obs () in
  let hosts =
    List.concat_map
      (fun s ->
        let sid = Network.add_site net ~name:(Printf.sprintf "s%d" s) in
        List.init hosts_per_site (fun i ->
            Network.add_host net ~site:sid ~name:(Printf.sprintf "s%d-h%d" s i)))
      (List.init sites (fun s -> s))
  in
  let rt = Runtime.create ~sim ~net ~registry ~prng:(Prng.split prng) ~obs () in
  { sim; rt; hosts }

(* Two GetBinding resolutions interleave inside one agent: the first
   request's upward call to the creator class fires only after a WAN
   round-trip to LegionClass, by which time the second request has
   already been admitted. Each upward call must carry the environment
   delegated from *its own* requester (§2.4) — a shared mutable
   environment cell leaks the second requester's Responsible Agent into
   the first resolution's upward calls. *)
let test_interleaved_resolutions_keep_envs () =
  Agent_part.register ();
  let f = make_rt_fixture () in
  let lc_loid = Loid.make ~class_id:999L ~class_specific:0L () in
  let seen = ref [] in
  let lc_handler : Runtime.handler =
   fun _ctx call k ->
    match call.Runtime.meth with
    | "LocateClass" -> k (Ok (Value.Record [ ("creator", Loid.to_value lc_loid) ]))
    | "GetBinding" -> (
        match call.Runtime.args with
        | [ av ] -> (
            match Loid.of_value av with
            | Ok target ->
                seen := (target, call.Runtime.env.Env.responsible) :: !seen;
                k
                  (Ok
                     (Binding.to_value
                        (Binding.make ~loid:target
                           ~address:
                             (Address.singleton (Address.Sim { host = 0; slot = 500 }))
                           ())))
            | Error msg -> k (Error (Err.Internal msg)))
        | _ -> k (Error (Err.Bad_args "GetBinding expects one loid")))
    | m -> k (Error (Err.No_such_method m))
  in
  (* LegionClass on the far site (WAN latency), agent and clients
     co-located: request 2 arrives ~2 ms in, request 1's upward
     GetBinding only goes out ~80 ms in. *)
  let lc_proc =
    Runtime.spawn f.rt ~host:(List.nth f.hosts 2) ~loid:lc_loid ~kind:"class"
      ~handler:lc_handler ()
  in
  let agent_loid = Loid.make ~class_id:60L ~class_specific:1L () in
  let opr =
    Opr.make
      ~states:
        [
          ( Agent_part.unit_name,
            Agent_part.state_value ~legion_class:(Runtime.binding_of f.rt lc_proc) ()
          );
        ]
      ~kind:Well_known.kind_binding_agent
      ~units:[ Agent_part.unit_name ] ()
  in
  let agent =
    match Impl.activate f.rt ~host:(List.hd f.hosts) ~loid:agent_loid opr with
    | Ok p -> p
    | Error msg -> Alcotest.failf "activate agent: %s" msg
  in
  let client i =
    Runtime.spawn f.rt ~host:(List.nth f.hosts 1)
      ~loid:(Loid.make ~class_id:50L ~class_specific:(Int64.of_int i) ())
      ~kind:"client"
      ~handler:(fun _ _ k -> k (Error (Err.Refused "client")))
      ()
  in
  let c1 = client 1 and c2 = client 2 in
  let cls1 = Loid.make ~class_id:100L ~class_specific:0L () in
  let cls2 = Loid.make ~class_id:101L ~class_specific:0L () in
  let results = ref [] in
  let ask client target ~delay =
    ignore
      (Engine.schedule f.sim ~delay (fun () ->
           Runtime.invoke_address
             { Runtime.rt = f.rt; self = client }
             ~address:(Runtime.address_of agent)
             ~dst:agent_loid ~meth:"GetBinding" ~args:[ Loid.to_value target ]
             ~env:(Env.of_self (Runtime.proc_loid client))
             (fun r -> results := r :: !results)))
  in
  ask c1 cls1 ~delay:0.0;
  ask c2 cls2 ~delay:0.002;
  Engine.run f.sim;
  Alcotest.(check int) "both resolutions replied" 2 (List.length !results);
  List.iter
    (function
      | Ok _ -> ()
      | Error e -> Alcotest.failf "resolution failed: %s" (Err.to_string e))
    !results;
  let responsible_for cls =
    match List.find_opt (fun (t, _) -> Loid.equal t cls) !seen with
    | Some (_, r) -> r
    | None -> Alcotest.fail "no upward GetBinding recorded for the class"
  in
  Alcotest.check H.loid_t "first resolution keeps its requester's RA"
    (Runtime.proc_loid c1) (responsible_for cls1);
  Alcotest.check H.loid_t "second resolution keeps its requester's RA"
    (Runtime.proc_loid c2) (responsible_for cls2)

(* An unconfigured agent must save an *absent* LegionClass binding — not
   a fabricated host-0 placeholder — and a configured one must
   round-trip its binding exactly. *)
let test_save_restore_honest () =
  Agent_part.register ();
  let f = make_rt_fixture () in
  let proc =
    Runtime.spawn f.rt ~host:(List.hd f.hosts)
      ~loid:(Loid.make ~class_id:60L ~class_specific:9L ())
      ~kind:"binding_agent"
      ~handler:(fun _ _ k -> k (Error (Err.Refused "inert")))
      ()
  in
  let ctx = { Runtime.rt = f.rt; self = proc } in
  let opt_lc v =
    match C.opt_field v "lc" Binding.of_value with
    | Ok o -> o
    | Error msg -> Alcotest.failf "bad lc field: %s" msg
  in
  let p1 = Agent_part.factory ctx in
  let v1 = p1.Impl.save () in
  (match opt_lc v1 with
  | None -> ()
  | Some b ->
      Alcotest.failf "unconfigured agent fabricated a LegionClass binding: %s"
        (Value.to_string (Binding.to_value b)));
  let p2 = Agent_part.factory ctx in
  (match p2.Impl.restore v1 with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "restore: %s" msg);
  Alcotest.(check string) "save/restore/save is a fixed point"
    (Value.to_string v1)
    (Value.to_string (p2.Impl.save ()));
  let lc =
    Binding.make
      ~loid:(Loid.make ~class_id:1L ~class_specific:0L ())
      ~address:(Address.singleton (Address.Sim { host = 0; slot = 3 }))
      ()
  in
  let p3 = Agent_part.factory ctx in
  (match p3.Impl.restore (Agent_part.state_value ~capacity:8 ~legion_class:lc ()) with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "restore configured: %s" msg);
  let v3 = p3.Impl.save () in
  (match opt_lc v3 with
  | Some b ->
      Alcotest.(check bool) "LegionClass binding round-trips" true
        (Binding.equal lc b)
  | None -> Alcotest.fail "configured LegionClass binding lost on save");
  match C.opt_int_field v3 "cap" with
  | Ok (Some 8) -> ()
  | _ -> Alcotest.fail "cache capacity lost on save"

let () =
  Alcotest.run "binding"
    [
      ( "resolution",
        [
          Alcotest.test_case "resolves an instance" `Quick test_agent_resolves_instance;
          Alcotest.test_case "resolves a class via pairs" `Quick
            test_agent_resolves_class;
          Alcotest.test_case "caches bindings" `Quick test_agent_caches;
          Alcotest.test_case "AddBinding / InvalidateBinding" `Quick
            test_add_and_invalidate_binding;
          Alcotest.test_case "GetBinding(binding) refreshes" `Quick
            test_get_binding_refresh_form;
        ] );
      ( "tree",
        [
          Alcotest.test_case "leaf forwards class lookups" `Quick test_tree_forwarding;
          Alcotest.test_case "Agent_tree builder" `Quick test_agent_tree_builder;
          Alcotest.test_case "arrange_agent_tree over site agents" `Quick
            test_arrange_agent_tree;
          Alcotest.test_case "SetParent" `Quick test_set_parent_runtime;
        ] );
      ( "state",
        [
          Alcotest.test_case "interleaved resolutions keep their environments"
            `Quick test_interleaved_resolutions_keep_envs;
          Alcotest.test_case "save/restore is honest about configuration" `Quick
            test_save_restore_honest;
        ] );
    ]
