(* Crash recovery: epoch-fenced bindings, checkpoint pruning, Activate
   fall-over across dead hosts, and class-driven proactive reactivation
   after a confirmed host death (no caller involved). *)

module Engine = Legion_sim.Engine
module Network = Legion_net.Network
module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Binding = Legion_naming.Binding
module Address = Legion_naming.Address
module Counter = Legion_util.Counter
module Prng = Legion_util.Prng
module Env = Legion_sec.Env
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Event = Legion_obs.Event
module Recorder = Legion_obs.Recorder
module Trace = Legion_obs.Trace
module Persistent = Legion_store.Persistent
module Disk = Legion_store.Disk
module System = Legion.System
module Api = Legion.Api
open Helpers

(* Like the trace assertions, these recovery sequences are shaped by
   the protocol, not by timing, so they must hold for any boot seed.
   LEGION_TRACE_SEED (swept by test/dune) shifts every seed in the
   file; the defaults below reproduce the historical fixed seeds. *)
let base_seed =
  match Sys.getenv_opt "LEGION_TRACE_SEED" with
  | Some s -> Int64.of_string s
  | None -> 17L

(* --- bindings carry an incarnation epoch --- *)

let test_binding_epoch_roundtrip () =
  let l = Loid.make ~class_id:9L ~class_specific:4L () in
  let addr = Address.make [ Address.Sim { host = 3; slot = 7 } ] in
  let b = Binding.make ~epoch:5 ~loid:l ~address:addr () in
  Alcotest.(check int) "epoch kept" 5 (Binding.epoch b);
  (match Binding.of_value (Binding.to_value b) with
  | Ok b' ->
      Alcotest.(check bool) "wire roundtrip" true (Binding.equal b b');
      Alcotest.(check int) "epoch over the wire" 5 (Binding.epoch b')
  | Error e -> Alcotest.failf "decode failed: %s" e);
  (* A binding minted before epochs existed has no "epo" field; it must
     decode as incarnation 0, not fail. *)
  let legacy =
    match Binding.to_value (Binding.make ~loid:l ~address:addr ()) with
    | Value.Record fields ->
        Value.Record (List.filter (fun (k, _) -> k <> "epo") fields)
    | v -> v
  in
  match Binding.of_value legacy with
  | Ok b' -> Alcotest.(check int) "legacy decodes as epoch 0" 0 (Binding.epoch b')
  | Error e -> Alcotest.failf "legacy decode failed: %s" e

(* --- the runtime fences superseded incarnations --- *)

type fixture = {
  sim : Engine.t;
  rt : Runtime.t;
  obs : Recorder.t;
  hosts : int list;
}

let make_fixture ?(seed = base_seed) () =
  let sim = Engine.create () in
  let prng = Prng.create ~seed in
  let registry = Counter.Registry.create () in
  let obs = Recorder.create ~clock:(fun () -> Engine.now sim) () in
  let net = Network.create ~sim ~prng:(Prng.split prng) ~obs () in
  let site = Network.add_site net ~name:"s0" in
  let hosts =
    List.init 2 (fun i -> Network.add_host net ~site ~name:(Printf.sprintf "h%d" i))
  in
  let rt =
    Runtime.create ~sim ~net ~registry ~prng:(Prng.split prng) ~obs ()
  in
  { sim; rt; obs; hosts }

let echo_handler : Runtime.handler =
 fun _ctx call k ->
  match call.Runtime.meth with
  | "Echo" -> k (Ok (Value.List call.Runtime.args))
  | m -> k (Error (Err.No_such_method m))

let test_stale_epoch_fenced () =
  let f = make_fixture () in
  let l = Loid.make ~class_id:61L ~class_specific:1L () in
  let old_proc =
    Runtime.spawn f.rt ~host:(List.nth f.hosts 0) ~loid:l ~kind:"app"
      ~handler:echo_handler ()
  in
  Alcotest.(check int) "first incarnation" 0 (Runtime.proc_epoch old_proc);
  (* A new incarnation opens... *)
  Alcotest.(check int) "bumped" 1 (Runtime.bump_epoch f.rt l);
  let new_proc =
    Runtime.spawn f.rt ~host:(List.nth f.hosts 1) ~loid:l ~kind:"app"
      ~handler:echo_handler ()
  in
  Alcotest.(check int) "spawn picks the current epoch" 1
    (Runtime.proc_epoch new_proc);
  let client =
    Runtime.spawn f.rt ~host:(List.nth f.hosts 0)
      ~loid:(Loid.make ~class_id:61L ~class_specific:2L ())
      ~kind:"client"
      ~handler:(fun _ _ k -> k (Error (Err.Refused "client")))
      ()
  in
  let ctx = { Runtime.rt = f.rt; self = client } in
  let mark = Recorder.total f.obs in
  let direct proc k =
    Runtime.invoke_address ctx
      ~address:(Runtime.address_of proc)
      ~dst:l ~meth:"Echo" ~args:[ Value.Int 1 ]
      ~env:(Env.of_self (Runtime.proc_loid client))
      k
  in
  let reply = ref None in
  direct old_proc (fun r -> reply := Some r);
  Engine.run f.sim;
  (match !reply with
  | Some (Error Err.Stale_epoch) -> ()
  | Some (Ok v) -> Alcotest.failf "zombie answered: %s" (Value.to_string v)
  | Some (Error e) -> Alcotest.failf "wrong error: %s" (Err.to_string e)
  | None -> Alcotest.fail "no reply");
  Alcotest.(check bool) "fencing is a delivery failure" true
    (Err.is_delivery_failure Err.Stale_epoch);
  Alcotest.(check int) "zombie never dispatched" 0 (Runtime.requests_of old_proc);
  let events = Recorder.events_since f.obs mark in
  Alcotest.(check bool) "fence event emitted" true
    (Trace.count_of (Trace.fence ~loid:l ()) events >= 1);
  (* The current incarnation still answers at the same LOID. *)
  let reply = ref None in
  direct new_proc (fun r -> reply := Some r);
  Engine.run f.sim;
  match !reply with
  | Some (Ok _) -> ()
  | Some (Error e) -> Alcotest.failf "current incarnation refused: %s" (Err.to_string e)
  | None -> Alcotest.fail "no reply from current incarnation"

(* --- the persistent store keeps a bounded number of versions --- *)

let prune_prop =
  QCheck.Test.make ~name:"put keeps at most K versions per loid" ~count:100
    QCheck.(list_of_size Gen.(1 -- 60) (pair (int_bound 4) (int_bound 40)))
    (fun ops ->
      QCheck.assume (ops <> []);
      let keep = 2 in
      let disks = [ Disk.create ~name:"d0"; Disk.create ~name:"d1" ] in
      let store = Persistent.create ~keep ~disks () in
      let last = Hashtbl.create 8 in
      List.iter
        (fun (i, size) ->
          let loid = Loid.make ~class_id:77L ~class_specific:(Int64.of_int i) () in
          let opa = Persistent.put store ~loid (String.make size 'x') in
          Hashtbl.replace last i (opa, size))
        ops;
      let distinct = Hashtbl.length last in
      let max_size =
        List.fold_left (fun acc (_, s) -> max acc s) 0 ops
      in
      if Persistent.total_files store > distinct * keep then
        QCheck.Test.fail_reportf "%d files for %d loids (keep %d)"
          (Persistent.total_files store) distinct keep;
      if Persistent.total_bytes store > distinct * keep * max_size then
        QCheck.Test.fail_reportf "%d bytes exceeds %d loids x %d x %d"
          (Persistent.total_bytes store) distinct keep max_size;
      (* The newest version of every object must have survived pruning. *)
      Hashtbl.iter
        (fun i (opa, size) ->
          match Persistent.get store opa with
          | Some blob when String.length blob = size -> ()
          | Some _ -> QCheck.Test.fail_reportf "loid %d: wrong blob" i
          | None -> QCheck.Test.fail_reportf "loid %d: newest version pruned" i)
        last;
      true)

(* --- Activate falls over dead hosts --- *)

let boot_three_hosts () =
  register_counter_unit ();
  System.boot ~seed:(Int64.add base_seed 14L)
    ~rt_config:{ Runtime.default_config with Runtime.call_timeout = 1.0 }
    ~sites:[ ("solo", 3) ]
    ()

let test_activate_fall_over () =
  let sys = boot_three_hosts () in
  let site = List.hd (System.sites sys) in
  let ctx = System.client sys () in
  let cls = make_counter_class sys ctx () in
  let obj = Api.create_object_exn sys ctx ~cls () in
  (match Api.call sys ctx ~dst:obj ~meth:"Increment" ~args:[ Value.Int 5 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "warm-up failed: %s" (Err.to_string e));
  (match
     Api.call sys ctx ~dst:site.System.magistrate ~meth:"Deactivate"
       ~args:[ Loid.to_value obj ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "Deactivate failed: %s" (Err.to_string e));
  (* Kill the second host, then ask for activation *on it* via the
     placement hint: the Magistrate's first-choice attempt must fail and
     fall over to a surviving host instead of wedging. *)
  let dead_host = List.nth site.System.net_hosts 1 in
  let dead_host_obj = List.nth site.System.host_objects 1 in
  Runtime.crash_host (System.rt sys) dead_host;
  let hints =
    Value.Record [ ("host", Value.List [ Loid.to_value dead_host_obj ]) ]
  in
  (match
     Api.call sys ctx ~dst:site.System.magistrate ~meth:"Activate"
       ~args:[ Loid.to_value obj; hints ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "fall-over failed: %s" (Err.to_string e));
  (match Runtime.find_proc (System.rt sys) obj with
  | Some p ->
      Alcotest.(check bool) "landed on a surviving host" true
        (Runtime.proc_host p <> dead_host)
  | None -> Alcotest.fail "object not active after fall-over");
  (match Api.call sys ctx ~dst:obj ~meth:"Get" ~args:[] with
  | Ok v -> Alcotest.(check int) "state survived" 5 (int_exn v)
  | Error e -> Alcotest.failf "Get failed: %s" (Err.to_string e));
  (* Exhaustion: shrink the Jurisdiction to the dead host only; the
     original delivery error must surface, not an internal one. *)
  (match
     Api.call sys ctx ~dst:site.System.magistrate ~meth:"Deactivate"
       ~args:[ Loid.to_value obj ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "second Deactivate failed: %s" (Err.to_string e));
  List.iteri
    (fun i ho ->
      if i <> 1 then
        match
          Api.call sys ctx ~dst:site.System.magistrate ~meth:"RemoveHost"
            ~args:[ Loid.to_value ho ]
        with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "RemoveHost failed: %s" (Err.to_string e))
    site.System.host_objects;
  match
    Api.call sys ctx ~dst:site.System.magistrate ~meth:"Activate"
      ~args:[ Loid.to_value obj; Value.Record [] ]
  with
  | Ok _ -> Alcotest.fail "activation succeeded with every host dead"
  | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "delivery failure surfaced (got %s)" (Err.to_string e))
        true (Err.is_delivery_failure e)

(* --- proactive recovery: no caller needed --- *)

let test_proactive_reactivation () =
  register_counter_unit ();
  let sys =
    System.boot ~seed:(Int64.add base_seed 20L)
      ~rt_config:{ Runtime.default_config with Runtime.call_timeout = 0.5 }
      ~sites:[ ("uva", 3); ("doe", 3) ]
      ()
  in
  let rt = System.rt sys and obs = System.obs sys in
  let ctx = System.client sys () in
  let client_loid = Runtime.proc_loid ctx.Runtime.self in
  let cls = make_counter_class sys ctx () in
  let objs =
    List.init 6 (fun _ -> Api.create_object_exn sys ctx ~cls ~eager:true ())
  in
  List.iter
    (fun o ->
      match Api.call sys ctx ~dst:o ~meth:"Increment" ~args:[ Value.Int 7 ] with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "warm-up failed: %s" (Err.to_string e))
    objs;
  let infra = List.map (fun s -> List.hd s.System.net_hosts) (System.sites sys) in
  let victim_obj, victim_host =
    match
      List.filter_map
        (fun o ->
          match Runtime.find_proc rt o with
          | Some p when not (List.mem (Runtime.proc_host p) infra) ->
              Some (o, Runtime.proc_host p)
          | _ -> None)
        objs
    with
    | x :: _ -> x
    | [] -> Alcotest.fail "no object landed outside the infrastructure hosts"
  in
  let epoch_before = Runtime.current_epoch rt victim_obj in
  System.enable_recovery sys ~checkpoint_period:0.5 ~heartbeat_period:0.25
    ~threshold:3
    ~until:(System.now sys +. 10.0)
    ();
  (* Let at least one checkpoint capture the counter's state... *)
  System.run_for sys 2.0;
  let mark = Recorder.total obs in
  Runtime.power_fail rt victim_host;
  (* ...then give detection and recovery time to run. The client is
     silent throughout: reactivation must not need a caller. *)
  System.run_for sys 4.0;
  let events = Recorder.events_since obs mark in
  let reactivated =
    List.exists (Trace.reactivate ~loid:victim_obj ()) events
  in
  Alcotest.(check bool) "object was reactivated" true reactivated;
  let before_reactivation =
    let rec take acc = function
      | [] -> List.rev acc
      | e :: _ when Trace.reactivate ~loid:victim_obj () e -> List.rev acc
      | e :: rest -> take (e :: acc) rest
    in
    take [] events
  in
  Alcotest.(check int) "no client call preceded the reactivation" 0
    (Trace.count_of (Trace.call ~src:client_loid ()) before_reactivation);
  (match Runtime.find_proc rt victim_obj with
  | Some p ->
      Alcotest.(check bool) "reactivated on a surviving host" true
        (Runtime.proc_host p <> victim_host)
  | None -> Alcotest.fail "object not active after recovery");
  Alcotest.(check bool) "a fresh incarnation opened" true
    (Runtime.current_epoch rt victim_obj > epoch_before);
  match Api.call sys ctx ~dst:victim_obj ~meth:"Get" ~args:[] with
  | Ok v -> Alcotest.(check int) "checkpointed state recovered" 7 (int_exn v)
  | Error e -> Alcotest.failf "Get after recovery failed: %s" (Err.to_string e)

let () =
  Alcotest.run "recovery"
    [
      ( "epoch-fencing",
        [
          Alcotest.test_case "binding carries its epoch" `Quick
            test_binding_epoch_roundtrip;
          Alcotest.test_case "stale incarnations are fenced" `Quick
            test_stale_epoch_fenced;
        ] );
      ( "checkpoint-store",
        [ QCheck_alcotest.to_alcotest prune_prop ] );
      ( "fall-over",
        [
          Alcotest.test_case "Activate falls over a crashed host" `Quick
            test_activate_fall_over;
        ] );
      ( "proactive",
        [
          Alcotest.test_case "dead host's objects come back uncalled" `Quick
            test_proactive_reactivation;
        ] );
    ]
