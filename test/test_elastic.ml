(* The elasticity PR's regression net: the Script workload model
   (load-ramp re-spacing, Zipf popularity), the Scheduling Agent fixes
   (per-size round-robin cursors, live-load probe failures), and the
   E19 scenario's determinism contract (same seed => byte-identical
   report). LEGION_TRACE_SEED (swept by test/dune) shifts the scenario
   seed. *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Prng = Legion_util.Prng
module Sampler = Legion_util.Sampler
module Engine = Legion_sim.Engine
module Script = Legion_sim.Script
module Event = Legion_obs.Event
module Recorder = Legion_obs.Recorder
module Well_known = Legion_core.Well_known
module Sched_part = Legion_sched.Sched_part
module System = Legion.System
module Api = Legion.Api
module Elastic = Legion.Elastic

let seed_base =
  match Sys.getenv_opt "LEGION_TRACE_SEED" with
  | Some s -> Int64.of_string s
  | None -> 42L

(* --- Script.load_ramp --- *)

(* Regression: a rate step {e up} must take effect at the step
   boundary. The pre-fix generator left the pending arrival spaced at
   the old rate, so stepping 0.1/s -> 10/s at t=5 stalled until the
   stale t=10 arrival and delivered ~2 arrivals instead of ~50. *)
let test_load_ramp_step_up () =
  let eng = Engine.create () in
  let arrivals = ref [] in
  Script.load_ramp eng ~start:0.0 ~until:10.0 ~steps:2 ~rates:[ 0.1; 10.0 ]
    (fun _seq -> arrivals := Engine.now eng :: !arrivals);
  Engine.run ~until:20.0 eng;
  let after_step = List.filter (fun t -> t >= 5.0) !arrivals in
  Alcotest.(check bool)
    (Printf.sprintf "step up takes effect at the boundary (%d arrivals >= 45)"
       (List.length after_step))
    true
    (List.length after_step >= 45);
  (* And the step never over-fires: spacing stays >= 1/rate. *)
  Alcotest.(check bool)
    "no burst past the stepped rate" true
    (List.length after_step <= 60)

(* A zero rate pauses the generator for that step and the next step
   resumes it — the re-spacing must not resurrect a cancelled arrival
   inside the pause. *)
let test_load_ramp_pause () =
  let eng = Engine.create () in
  let arrivals = ref [] in
  Script.load_ramp eng ~start:0.0 ~until:9.0 ~steps:3
    ~rates:[ 2.0; 0.0; 2.0; 2.0 ] (fun _seq ->
      arrivals := Engine.now eng :: !arrivals);
  Engine.run ~until:20.0 eng;
  let in_pause = List.filter (fun t -> t >= 3.0 && t < 6.0) !arrivals in
  Alcotest.(check int) "no arrivals while paused" 0 (List.length in_pause);
  let resumed = List.filter (fun t -> t >= 6.0) !arrivals in
  Alcotest.(check bool) "generator resumes after the pause" true
    (List.length resumed >= 5)

(* --- Zipf sampler --- *)

let zipf_frequencies =
  QCheck.Test.make ~name:"zipf empirical frequencies track the pmf"
    ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      let n = 8 and s = 1.2 and trials = 20_000 in
      let prng = Prng.create ~seed:(Int64.of_int (seed + 1)) in
      let z = Sampler.zipf prng ~n ~s in
      let counts = Array.make n 0 in
      for _ = 1 to trials do
        let r = Sampler.zipf_draw z in
        counts.(r) <- counts.(r) + 1
      done;
      Array.for_all (fun c -> c > 0) counts
      && Array.for_all
           (fun i ->
             let freq = float_of_int counts.(i) /. float_of_int trials in
             Float.abs (freq -. Sampler.zipf_pmf z i) < 0.03)
           (Array.init n Fun.id)
      (* Popularity must be non-increasing in rank (with sampling
         slack): rank 0 is the hot object the flash crowd hammers. *)
      && counts.(0) > counts.(n - 1))

(* --- Scheduling Agent fixes --- *)

let make_sched sys ctx ~policy_unit ~name =
  let cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name
      ~units:[ policy_unit ] ~kind:Well_known.kind_sched ()
  in
  Api.create_object_exn sys ctx ~cls ~eager:true ()

let candidates_value cands =
  Value.List
    (List.map
       (fun (h, l) ->
         Value.Record [ ("host", Loid.to_value h); ("load", Value.Int l) ])
       cands)

let pick sys ctx sched cands =
  match
    Api.call sys ctx ~dst:sched ~meth:"PickHost"
      ~args:[ candidates_value cands ]
  with
  | Ok v -> (
      match Loid.of_value v with
      | Ok l -> l
      | Error m -> Alcotest.failf "PickHost returned a non-loid: %s" m)
  | Error e -> Alcotest.failf "PickHost failed: %s" (Legion_rt.Err.to_string e)

(* Regression: a single shared cursor taken [mod n] starves candidates
   whenever calls interleave lists of different sizes — with strict
   2/3-alternation every even cursor value hit the 2-list, so its
   second host was never picked. Per-size cursors rotate each size
   class exactly. *)
let test_round_robin_mixed_sizes () =
  let sys = System.boot ~seed:seed_base ~sites:[ ("site", 4) ] () in
  let ctx = System.client sys () in
  let sched =
    make_sched sys ctx ~policy_unit:Sched_part.unit_round_robin ~name:"RR"
  in
  let hosts = Array.of_list (System.host_objects sys) in
  let two = [ (hosts.(0), 0); (hosts.(1), 0) ] in
  let three = [ (hosts.(0), 0); (hosts.(1), 0); (hosts.(2), 0) ] in
  let tally = Hashtbl.create 8 in
  let count kind h =
    let key = (kind, Loid.to_string h) in
    Hashtbl.replace tally key
      (1 + Option.value ~default:0 (Hashtbl.find_opt tally key))
  in
  for _ = 1 to 12 do
    count `Two (pick sys ctx sched two);
    count `Three (pick sys ctx sched three)
  done;
  let got kind h =
    Option.value ~default:0 (Hashtbl.find_opt tally (kind, Loid.to_string h))
  in
  Alcotest.(check (list int))
    "2-candidate list rotates exactly" [ 6; 6 ]
    [ got `Two hosts.(0); got `Two hosts.(1) ];
  Alcotest.(check (list int))
    "3-candidate list rotates exactly" [ 4; 4; 4 ]
    [ got `Three hosts.(0); got `Three hosts.(1); got `Three hosts.(2) ]

(* Regression: the live-load agent used to drop failed probes from the
   comparison, so an unreachable candidate could never win even when
   its magistrate-supplied count was best — and the failure itself was
   invisible. Now the probe failure is a ProbeFail event and the
   candidate keeps competing with its stale count. *)
let test_live_load_probe_failure () =
  let sys = System.boot ~seed:seed_base ~sites:[ ("site", 3) ] () in
  let ctx = System.client sys () in
  let sched =
    make_sched sys ctx ~policy_unit:Sched_part.unit_live_load ~name:"Live"
  in
  let real = List.hd (System.host_objects sys) in
  let bogus =
    Loid.make ~class_id:0x7777_7777L ~class_specific:0x1234L ()
  in
  let mark = Recorder.total (System.obs sys) in
  (* The bogus candidate advertises the lowest stale count; the real
     host answers its probe with at least the core objects it runs. *)
  let winner = pick sys ctx sched [ (bogus, 0); (real, 50) ] in
  Alcotest.(check string)
    "unprobeable candidate still competes on its stale count"
    (Loid.to_string bogus) (Loid.to_string winner);
  let probe_fails =
    List.filter
      (fun (ev : Event.t) ->
        match ev.Event.kind with
        | Event.Probe_fail { host_obj; _ } -> Loid.equal host_obj bogus
        | _ -> false)
      (Recorder.events_since (System.obs sys) mark)
  in
  Alcotest.(check bool) "probe failure is announced" true
    (List.length probe_fails >= 1)

(* --- E19 scenario determinism --- *)

let test_scenario_deterministic () =
  let seed = seed_base in
  let r1 = Elastic.run_scenario ~seed ~elastic:true () in
  let r2 = Elastic.run_scenario ~seed ~elastic:true () in
  Alcotest.(check string)
    "same seed, same bytes"
    (Elastic.scenario_json r1) (Elastic.scenario_json r2);
  Alcotest.(check bool) "scenario is non-trivial" true (r1.Elastic.oks > 1000);
  Alcotest.(check int) "no hard errors" 0 r1.Elastic.errors

let () =
  Alcotest.run "elastic"
    [
      ( "script",
        [
          Alcotest.test_case "load_ramp step up re-spaces" `Quick
            test_load_ramp_step_up;
          Alcotest.test_case "load_ramp zero-rate pause" `Quick
            test_load_ramp_pause;
          QCheck_alcotest.to_alcotest zipf_frequencies;
        ] );
      ( "sched",
        [
          Alcotest.test_case "round robin, mixed candidate sizes" `Quick
            test_round_robin_mixed_sizes;
          Alcotest.test_case "live load survives probe failures" `Quick
            test_live_load_probe_failure;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "seed determinism" `Slow
            test_scenario_deterministic;
        ] );
    ]
