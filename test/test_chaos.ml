(* Tests for the adversarial chaos subsystem (E22): the network
   adversary's fault vocabulary (duplication, reordering, corruption),
   the runtime's exactly-once dedup cache, the schedule replay format,
   and the explorer/shrinker.

   The protocol-level claims are shape-, not timing-assertions: a
   duplicated call must execute once, a corrupted payload must drop
   fail-closed (never raise, never deliver), and the same schedule seed
   must reproduce byte-identical reports. *)

module Value = Legion_wire.Value
module Network = Legion_net.Network
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Event = Legion_obs.Event
module Recorder = Legion_obs.Recorder
module System = Legion.System
module Api = Legion.Api
module Schedule = Legion_chaos.Schedule
module Explorer = Legion_chaos.Explorer
module H = Helpers

let boot ?(dedup = true) () =
  H.register_counter_unit ();
  let rt_config =
    {
      Runtime.default_config with
      call_timeout = 0.5;
      max_rebinds = 4;
      dedup_capacity = (if dedup then Some 4096 else None);
    }
  in
  let sys =
    System.boot ~seed:4242L ~rt_config ~sites:[ ("a", 2); ("b", 2) ] ()
  in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let obj = Api.create_object_exn sys ctx ~cls () in
  (* Warm the binding so the adversary hits steady-state traffic, not
     the one-off placement machinery. *)
  (match Api.call sys ctx ~dst:obj ~meth:"Get" ~args:[] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "warm-up Get: %s" (Err.to_string e));
  (sys, ctx, obj)

let get_value sys ctx obj =
  match Api.call sys ctx ~dst:obj ~meth:"Get" ~args:[] with
  | Ok (Value.Int v) -> v
  | Ok v -> Alcotest.failf "Get: odd reply %s" (Value.to_string v)
  | Error e -> Alcotest.failf "Get: %s" (Err.to_string e)

(* Every message is delivered twice; the dedup cache must absorb every
   extra execution, so the counter equals the acknowledged increments
   exactly. *)
let test_duplicates_absorbed () =
  let sys, ctx, obj = boot () in
  let net = System.net sys in
  Network.set_duplicate_rate net 1.0;
  let acked = ref 0 in
  for _ = 1 to 20 do
    match Api.call sys ctx ~dst:obj ~meth:"Increment" ~args:[ Value.Int 1 ] with
    | Ok _ -> incr acked
    | Error e -> Alcotest.failf "Increment: %s" (Err.to_string e)
  done;
  Network.set_duplicate_rate net 0.0;
  System.run sys;
  Alcotest.(check bool) "duplicates injected" true
    (Network.messages_duplicated net > 0);
  Alcotest.(check bool) "dedup cache hit" true
    (Runtime.dedup_hits (System.rt sys) > 0);
  Alcotest.(check int) "each increment applied exactly once" !acked
    (get_value sys ctx obj)

(* The same duplication storm with the cache disabled is the detector:
   at least one duplicate executes twice, so the counter overshoots. *)
let test_duplicates_detected_without_dedup () =
  let sys, ctx, obj = boot ~dedup:false () in
  let net = System.net sys in
  Network.set_duplicate_rate net 1.0;
  let acked = ref 0 in
  for _ = 1 to 20 do
    match Api.call sys ctx ~dst:obj ~meth:"Increment" ~args:[ Value.Int 1 ] with
    | Ok _ -> incr acked
    | Error _ -> ()
  done;
  Network.set_duplicate_rate net 0.0;
  System.run sys;
  Alcotest.(check int) "cache disabled" 0 (Runtime.dedup_hits (System.rt sys));
  Alcotest.(check bool)
    (Printf.sprintf "double applies visible (%d acked, %d applied)" !acked
       (get_value sys ctx obj))
    true
    (get_value sys ctx obj > !acked)

(* Corrupted payloads drop fail-closed at the receiver: the call gives
   up cleanly (no exception, no delivery of a mangled body), and the
   drops are attributed to corruption. *)
let test_corruption_fails_closed () =
  let sys, ctx, obj = boot () in
  let net = System.net sys in
  Network.set_corrupt_rate net 1.0;
  (match Api.call sys ctx ~dst:obj ~meth:"Increment" ~args:[ Value.Int 1 ] with
  | Ok _ -> Alcotest.fail "call succeeded though every payload was corrupted"
  | Error _ -> ());
  Network.set_corrupt_rate net 0.0;
  System.run sys;
  Alcotest.(check bool) "payloads corrupted" true
    (Network.messages_corrupted net > 0);
  let causes = Network.drop_causes net in
  Alcotest.(check bool) "drops attributed to corruption" true
    (causes.Network.by_corruption > 0);
  (* The channel heals: the next call goes through and the corrupted
     increments never half-applied. *)
  Alcotest.(check int) "no partial application" 0 (get_value sys ctx obj)

(* Bounded reordering delays deliveries but loses nothing: calls still
   complete and the holds are counted. *)
let test_reordering_tolerated () =
  let sys, ctx, obj = boot () in
  let net = System.net sys in
  Network.set_reorder net ~rate:1.0 ~window:0.05;
  let acked = ref 0 in
  for _ = 1 to 10 do
    match Api.call sys ctx ~dst:obj ~meth:"Increment" ~args:[ Value.Int 1 ] with
    | Ok _ -> incr acked
    | Error e -> Alcotest.failf "Increment under reorder: %s" (Err.to_string e)
  done;
  Network.set_reorder net ~rate:0.0 ~window:0.0;
  System.run sys;
  Alcotest.(check bool) "messages were held back" true
    (Network.messages_reordered net > 0);
  Alcotest.(check int) "every increment applied exactly once" !acked
    (get_value sys ctx obj)

(* Fault knobs validate their input eagerly: NaN or out-of-[0,1]
   rates raise Invalid_argument instead of silently skewing the
   adversary's sampling. *)
let test_knob_validation () =
  let sys, _, _ = boot () in
  let net = System.net sys in
  let rejects label f =
    match f () with
    | () -> Alcotest.failf "%s accepted" label
    | exception Invalid_argument _ -> ()
  in
  rejects "NaN drop rate" (fun () -> Network.set_drop_rate net Float.nan);
  rejects "negative drop rate" (fun () -> Network.set_drop_rate net (-0.1));
  rejects "drop rate > 1" (fun () -> Network.set_drop_rate net 1.5);
  rejects "NaN duplicate rate" (fun () ->
      Network.set_duplicate_rate net Float.nan);
  rejects "duplicate rate > 1" (fun () -> Network.set_duplicate_rate net 2.0);
  rejects "NaN corrupt rate" (fun () -> Network.set_corrupt_rate net Float.nan);
  rejects "negative corrupt rate" (fun () ->
      Network.set_corrupt_rate net (-1e-9));
  rejects "NaN reorder rate" (fun () ->
      Network.set_reorder net ~rate:Float.nan ~window:0.1);
  rejects "negative reorder window" (fun () ->
      Network.set_reorder net ~rate:0.5 ~window:(-0.1));
  (* The boundary values are legal. *)
  Network.set_drop_rate net 0.0;
  Network.set_duplicate_rate net 1.0;
  Network.set_corrupt_rate net 0.0;
  Network.set_reorder net ~rate:1.0 ~window:0.0

(* --- schedule format --- *)

let test_schedule_roundtrip () =
  for i = 1 to 25 do
    let sch = Schedule.generate ~seed:(Int64.of_int (1000 + i)) () in
    match Schedule.of_string (Schedule.to_string sch) with
    | Ok sch' ->
        if not (Schedule.equal sch sch') then
          Alcotest.failf "seed %d did not round-trip:\n%s\nvs\n%s" i
            (Schedule.to_string sch) (Schedule.to_string sch')
    | Error msg -> Alcotest.failf "seed %d failed to parse back: %s" i msg
  done

let test_schedule_parse_errors () =
  let reject label text =
    match Schedule.of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s parsed" label
  in
  reject "empty input" "";
  reject "missing seed" "workload uniform\nrounds 8\n";
  reject "unknown directive" "seed 1\nworkload uniform\nrounds 8\nfrobnicate\n";
  reject "unknown action" "seed 1\nworkload uniform\nrounds 8\nstep 2 melt 1\n";
  reject "malformed rate" "seed 1\nworkload uniform\nrounds 8\nstep 2 drop x\n";
  reject "out-of-range rate" "seed 1\nworkload uniform\nrounds 8\nstep 2 drop 1.5\n";
  reject "unknown workload" "seed 1\nworkload pareto\nrounds 8\n"

(* --- explorer --- *)

let mini_dup_heavy =
  {
    Schedule.seed = 31337L;
    workload = Schedule.Uniform;
    rounds = 12;
    steps =
      [
        { Schedule.at = 1; action = Schedule.Duplicate 0.4 };
        { Schedule.at = 1; action = Schedule.Drop 0.08 };
        { Schedule.at = 6; action = Schedule.Reorder (0.3, 0.02) };
      ];
  }

let test_explorer_deterministic () =
  let sch = Schedule.generate ~rounds:8 ~seed:70707L () in
  let a = Explorer.report_json sch (Explorer.run sch) in
  let b = Explorer.report_json sch (Explorer.run sch) in
  Alcotest.(check string) "same seed, byte-identical report" a b

let test_explorer_dedup_halves () =
  let on = Explorer.run ~dedup:true mini_dup_heavy in
  Alcotest.(check (list string)) "dedup ON holds the invariants" []
    on.Explorer.violations;
  Alcotest.(check bool) "dedup ON absorbed duplicates" true
    (on.Explorer.dedup_hits > 0);
  let off = Explorer.run ~dedup:false mini_dup_heavy in
  Alcotest.(check bool) "dedup OFF detects double applies" true
    (off.Explorer.double_applies > 0)

let test_shrinker () =
  (* A passing schedule is returned unchanged. *)
  let sch = Schedule.generate ~rounds:8 ~seed:70707L () in
  let rep = Explorer.run sch in
  Alcotest.(check (list string)) "baseline passes" [] rep.Explorer.violations;
  let sch', _ = Explorer.shrink sch rep in
  Alcotest.(check bool) "passing schedule not shrunk" true
    (Schedule.equal sch sch');
  (* A failing one (dedup off under duplication) shrinks to a smaller
     schedule that still fails. *)
  let off = Explorer.run ~dedup:false mini_dup_heavy in
  Alcotest.(check bool) "dup-heavy fails without dedup" true
    (Explorer.failed off);
  let min_sch, min_rep = Explorer.shrink ~dedup:false mini_dup_heavy off in
  Alcotest.(check bool) "shrunk schedule still fails" true
    (Explorer.failed min_rep);
  Alcotest.(check bool) "shrunk schedule is no larger" true
    (List.length min_sch.Schedule.steps
    <= List.length mini_dup_heavy.Schedule.steps);
  (* The minimized schedule still round-trips through the artifact
     format — the replay contract of E22_FAILING_SCHEDULE.txt. *)
  match Schedule.of_string (Schedule.to_string min_sch) with
  | Ok s -> Alcotest.(check bool) "artifact round-trips" true
      (Schedule.equal s min_sch)
  | Error msg -> Alcotest.failf "artifact failed to parse: %s" msg

let () =
  Alcotest.run "chaos"
    [
      ( "adversary",
        [
          Alcotest.test_case "duplicates absorbed exactly-once" `Quick
            test_duplicates_absorbed;
          Alcotest.test_case "duplicates detected without dedup" `Quick
            test_duplicates_detected_without_dedup;
          Alcotest.test_case "corruption drops fail closed" `Quick
            test_corruption_fails_closed;
          Alcotest.test_case "reordering tolerated" `Quick
            test_reordering_tolerated;
          Alcotest.test_case "fault knobs reject bad rates" `Quick
            test_knob_validation;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "generate/print/parse round-trip" `Quick
            test_schedule_roundtrip;
          Alcotest.test_case "malformed inputs rejected" `Quick
            test_schedule_parse_errors;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "byte-deterministic per seed" `Slow
            test_explorer_deterministic;
          Alcotest.test_case "dedup halves of the E22 gate" `Slow
            test_explorer_dedup_halves;
          Alcotest.test_case "shrinker minimizes failing schedules" `Slow
            test_shrinker;
        ] );
    ]
