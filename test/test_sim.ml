(* Tests for the discrete-event engine. *)

module Engine = Legion_sim.Engine
module Prng = Legion_util.Prng
module Planet = Legion.Planet

let test_time_ordering () =
  let sim = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule sim ~delay:3.0 (fun () -> log := 3 :: !log));
  ignore (Engine.schedule sim ~delay:1.0 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule sim ~delay:2.0 (fun () -> log := 2 :: !log));
  Engine.run sim;
  Alcotest.(check (list int)) "fires in time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 3.0 (Engine.now sim)

let test_same_time_fifo () =
  let sim = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore (Engine.schedule sim ~delay:1.0 (fun () -> log := i :: !log))
  done;
  Engine.run sim;
  Alcotest.(check (list int)) "FIFO at equal times" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_nested_scheduling () =
  let sim = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule sim ~delay:1.0 (fun () ->
         log := "a" :: !log;
         ignore (Engine.schedule sim ~delay:0.5 (fun () -> log := "c" :: !log))));
  ignore (Engine.schedule sim ~delay:1.2 (fun () -> log := "b" :: !log));
  Engine.run sim;
  Alcotest.(check (list string)) "nested event interleaves" [ "a"; "b"; "c" ]
    (List.rev !log)

let test_negative_delay_clamped () =
  let sim = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule sim ~delay:(-5.0) (fun () -> fired := true));
  Engine.run sim;
  Alcotest.(check bool) "fires now" true !fired;
  Alcotest.(check (float 1e-9)) "clock unmoved" 0.0 (Engine.now sim)

let test_cancel () =
  let sim = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule sim ~delay:1.0 (fun () -> fired := true) in
  Alcotest.(check int) "pending" 1 (Engine.pending sim);
  Engine.cancel h;
  Alcotest.(check bool) "marked cancelled" true (Engine.is_cancelled h);
  Alcotest.(check int) "not pending" 0 (Engine.pending sim);
  Engine.run sim;
  Alcotest.(check bool) "never fires" false !fired;
  (* Cancelling twice is fine. *)
  Engine.cancel h

let test_cancel_from_event () =
  let sim = Engine.create () in
  let fired = ref false in
  let h = ref None in
  ignore
    (Engine.schedule sim ~delay:1.0 (fun () ->
         match !h with Some h -> Engine.cancel h | None -> ()));
  h := Some (Engine.schedule sim ~delay:2.0 (fun () -> fired := true));
  Engine.run sim;
  Alcotest.(check bool) "cancelled later event skipped" false !fired

let test_run_until () =
  let sim = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule sim ~delay:1.0 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule sim ~delay:2.0 (fun () -> log := 2 :: !log));
  ignore (Engine.schedule sim ~delay:3.0 (fun () -> log := 3 :: !log));
  Engine.run ~until:2.0 sim;
  (* Events at exactly [until] fire; later ones wait. *)
  Alcotest.(check (list int)) "fired through until" [ 1; 2 ] (List.rev !log);
  Alcotest.(check int) "one pending" 1 (Engine.pending sim);
  Engine.run sim;
  Alcotest.(check (list int)) "resumes" [ 1; 2; 3 ] (List.rev !log)

let test_max_events () =
  let sim = Engine.create () in
  let n = ref 0 in
  for _ = 1 to 10 do
    ignore (Engine.schedule sim ~delay:1.0 (fun () -> incr n))
  done;
  Engine.run ~max_events:4 sim;
  Alcotest.(check int) "bounded" 4 !n;
  Alcotest.(check int) "fired counter" 4 (Engine.events_fired sim);
  Engine.run sim;
  Alcotest.(check int) "rest fire" 10 !n

let test_step () =
  let sim = Engine.create () in
  Alcotest.(check bool) "empty step" false (Engine.step sim);
  ignore (Engine.schedule sim ~delay:1.0 (fun () -> ()));
  Alcotest.(check bool) "step fires" true (Engine.step sim);
  Alcotest.(check bool) "then empty" false (Engine.step sim)

let test_schedule_at_past_clamped () =
  let sim = Engine.create () in
  ignore (Engine.schedule sim ~delay:5.0 (fun () -> ()));
  Engine.run sim;
  let fired_at = ref 0.0 in
  ignore (Engine.schedule_at sim ~time:1.0 (fun () -> fired_at := Engine.now sim));
  Engine.run sim;
  Alcotest.(check (float 1e-9)) "clamped to now" 5.0 !fired_at

let monotonic_clock =
  QCheck.Test.make ~name:"clock is monotonic over random schedules" ~count:100
    QCheck.(small_list (float_range 0.0 10.0))
    (fun delays ->
      let sim = Engine.create () in
      let ok = ref true in
      let last = ref 0.0 in
      List.iter
        (fun d ->
          ignore
            (Engine.schedule sim ~delay:d (fun () ->
                 if Engine.now sim < !last then ok := false;
                 last := Engine.now sim)))
        delays;
      Engine.run sim;
      !ok)

(* [Engine.pending] is a live-event counter, not a scan; pin it against
   an exhaustive model (a table of scheduled-but-not-yet-fired,
   not-cancelled events) across random schedule / cancel / partial-run
   interleavings. *)
let pending_counter_pins =
  QCheck.Test.make ~name:"pending equals exhaustive live count" ~count:100
    QCheck.(list (pair (int_bound 2) (pair (int_bound 7) small_int)))
    (fun ops ->
      let sim = Engine.create () in
      let model = Hashtbl.create 16 in
      let handles = ref [] and n = ref 0 and next_id = ref 0 in
      let ok = ref true in
      List.iter
        (fun (kind, (ti, k)) ->
          (match kind with
          | 0 ->
              let id = !next_id in
              incr next_id;
              let h =
                Engine.schedule sim
                  ~delay:(float_of_int ti /. 2.0)
                  (fun () -> Hashtbl.remove model id)
              in
              Hashtbl.replace model id ();
              handles := (id, h) :: !handles;
              incr n
          | 1 -> ignore (Engine.run sim ~max_events:(1 + (k mod 3)))
          | _ ->
              if !n > 0 then begin
                (* Cancelling an already-fired or already-cancelled
                   handle must be a no-op on both sides. *)
                let id, h = List.nth !handles (k mod !n) in
                Engine.cancel h;
                Hashtbl.remove model id
              end);
          if Engine.pending sim <> Hashtbl.length model then ok := false)
        ops;
      Engine.run sim;
      !ok && Engine.pending sim = 0 && Hashtbl.length model = 0)

(* A million events through the calendar queue with interleaved
   far-future cancellations: the fired count is exact, the clock never
   goes backwards, and cancelled events never run. *)
let test_stress_million () =
  let sim = Engine.create () in
  let prng = Prng.create ~seed:99L in
  let fired = ref 0 and last = ref 0.0 in
  let rec tick budget () =
    incr fired;
    let now = Engine.now sim in
    if now < !last then Alcotest.failf "clock went backwards at %f" now;
    last := now;
    if budget > 0 then begin
      if budget land 63 = 0 then begin
        let h =
          Engine.schedule sim ~delay:1e6 (fun () ->
              Alcotest.fail "cancelled event fired")
        in
        Engine.cancel h
      end;
      ignore (Engine.schedule sim ~delay:(Prng.float prng 1.0) (tick (budget - 1)))
    end
  in
  let chains = 100 and per_chain = 10_000 in
  for _ = 1 to chains do
    ignore (Engine.schedule sim ~delay:(Prng.float prng 1.0) (tick (per_chain - 1)))
  done;
  Engine.run sim;
  Alcotest.(check int) "fired" (chains * per_chain) !fired;
  Alcotest.(check int) "events_fired" (chains * per_chain)
    (Engine.events_fired sim);
  Alcotest.(check int) "drained" 0 (Engine.pending sim)

(* The E18 determinism contract: the report is a pure function of the
   config, so the same seed must produce byte-identical JSON. Swept
   across seeds by the LEGION_TRACE_SEED rules in test/dune. *)
let test_planet_determinism () =
  let seed =
    match Sys.getenv_opt "LEGION_TRACE_SEED" with
    | Some s -> Int64.of_string s
    | None -> 18L
  in
  let cfg =
    {
      Planet.smoke with
      Planet.seed;
      objects = 300;
      calls = 600;
      clone_creates = 64;
      queue_events = 40_000;
    }
  in
  let j1 = Planet.to_json (Planet.run cfg) in
  let j2 = Planet.to_json (Planet.run cfg) in
  Alcotest.(check string) "same seed, same bytes" j1 j2;
  Alcotest.(check bool) "report is non-trivial" true (String.length j1 > 200)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "time ordering" `Quick test_time_ordering;
          Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
          Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
          Alcotest.test_case "negative delay clamps" `Quick test_negative_delay_clamped;
          Alcotest.test_case "cancel" `Quick test_cancel;
          Alcotest.test_case "cancel from event" `Quick test_cancel_from_event;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "max events" `Quick test_max_events;
          Alcotest.test_case "step" `Quick test_step;
          Alcotest.test_case "past schedule clamps" `Quick test_schedule_at_past_clamped;
          QCheck_alcotest.to_alcotest monotonic_clock;
          QCheck_alcotest.to_alcotest pending_counter_pins;
          Alcotest.test_case "million-event stress" `Slow test_stress_million;
        ] );
      ( "planet",
        [
          Alcotest.test_case "same-seed determinism" `Slow
            test_planet_determinism;
        ] );
    ]
