(* Overload robustness: admission budgets (Admit/Shed, [Err.Overloaded]
   with a retry_after hint), backpressure-aware retry, per-destination
   circuit breakers (Closed -> Open -> HalfOpen -> Closed, trace-
   asserted), policy shedding in the class (creates before lookups) and
   graceful degradation in the Binding Agent (serving a stale-but-valid
   cached binding instead of forwarding to an overloaded class). *)

module Engine = Legion_sim.Engine
module Network = Legion_net.Network
module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Binding = Legion_naming.Binding
module Impl = Legion_core.Impl
module Runtime = Legion_rt.Runtime
module Retry = Legion_rt.Retry
module Breaker = Legion_rt.Breaker
module Err = Legion_rt.Err
module Event = Legion_obs.Event
module Recorder = Legion_obs.Recorder
module Trace = Legion_obs.Trace
module System = Legion.System
module Api = Legion.Api
open Helpers

let seed =
  match Sys.getenv_opt "LEGION_TRACE_SEED" with
  | Some s -> Int64.of_string s
  | None -> 42L

let assert_holds m events =
  match Trace.explain m events with
  | None -> ()
  | Some msg ->
      Alcotest.failf "trace mismatch: %s\ntrace was:\n%s" msg
        (String.concat "\n"
           (List.map (fun e -> Format.asprintf "  %a" Event.pp e) events))

(* --- Err.Overloaded shape --- *)

let test_overloaded_error () =
  let e = Err.Overloaded { retry_after = 0.25 } in
  Alcotest.(check bool) "is_overload" true (Err.is_overload e);
  Alcotest.(check bool) "retryable, not a delivery failure" false
    (Err.is_delivery_failure e);
  Alcotest.(check (option (float 1e-9))) "hint" (Some 0.25) (Err.retry_after e);
  (match Err.of_value (Err.to_value e) with
  | Ok e' -> Alcotest.(check bool) "wire roundtrip" true (Err.equal e e')
  | Error m -> Alcotest.failf "decode failed: %s" m);
  Alcotest.(check (option (float 1e-9))) "others carry no hint" None
    (Err.retry_after Err.Timeout)

(* --- Retry.backoff_window honours the larger of hint and window --- *)

let test_backoff_window () =
  let prng = Legion_util.Prng.create ~seed:3L in
  let policy =
    { Retry.max_attempts = 5; attempt_timeout = 0.3; multiplier = 2.0; jitter = 0.0 }
  in
  Alcotest.(check (float 1e-9)) "hint dominates" 10.0
    (Retry.backoff_window policy ~attempt:1 ~retry_after:10.0 ~prng);
  Alcotest.(check (float 1e-9)) "window dominates" 0.6
    (Retry.backoff_window policy ~attempt:2 ~retry_after:0.01 ~prng)

(* --- Breaker state machine (unit) --- *)

let test_breaker_state_machine () =
  let b =
    Breaker.create
      { Breaker.failure_threshold = 3; cooldown = 1.0; shed_cooldown = 0.1 }
  in
  let host = 7 in
  Alcotest.(check string) "starts closed" "closed" (Breaker.phase_name b host);
  Alcotest.(check bool) "closed allows" true
    (Breaker.before_send b ~now:0.0 host = Breaker.Allow);
  (* Two failures: still closed. *)
  (match Breaker.record b ~now:0.1 host Breaker.Transport_failure with
  | None -> ()
  | Some _ -> Alcotest.fail "tripped early");
  ignore (Breaker.record b ~now:0.2 host Breaker.Transport_failure);
  Alcotest.(check string) "still closed" "closed" (Breaker.phase_name b host);
  (* Third consecutive failure trips it. *)
  (match Breaker.record b ~now:0.3 host Breaker.Transport_failure with
  | Some (Breaker.Opened { failures }) ->
      Alcotest.(check int) "threshold failures" 3 failures
  | _ -> Alcotest.fail "expected Opened");
  Alcotest.(check string) "open" "open" (Breaker.phase_name b host);
  (* While open: fail fast with Unreachable (a dead circuit), a
     delivery failure so callers rebind. *)
  (match Breaker.before_send b ~now:0.5 host with
  | Breaker.Reject { error; retry_after } ->
      Alcotest.(check bool) "delivery failure" true
        (Err.is_delivery_failure error);
      Alcotest.(check bool) "retry_after positive" true (retry_after > 0.0)
  | _ -> Alcotest.fail "expected Reject while open");
  (* Cooldown elapsed: one probe, circuit is HalfOpen. *)
  (match Breaker.before_send b ~now:1.4 host with
  | Breaker.Probe -> ()
  | _ -> Alcotest.fail "expected Probe after cooldown");
  Alcotest.(check string) "half-open" "half-open" (Breaker.phase_name b host);
  (* A second send during the probe is rejected. *)
  (match Breaker.before_send b ~now:1.41 host with
  | Breaker.Reject _ -> ()
  | _ -> Alcotest.fail "expected Reject during probe");
  (* The probe succeeds: closed again. *)
  (match Breaker.record b ~now:1.5 host Breaker.Success with
  | Some Breaker.Closed_circuit -> ()
  | _ -> Alcotest.fail "expected Closed_circuit");
  Alcotest.(check string) "closed again" "closed" (Breaker.phase_name b host)

let test_breaker_saturated_rejections () =
  let b =
    Breaker.create
      { Breaker.failure_threshold = 2; cooldown = 5.0; shed_cooldown = 0.2 }
  in
  let host = 3 in
  ignore (Breaker.record b ~now:0.0 host (Breaker.Saturated 0.4));
  (match Breaker.record b ~now:0.1 host (Breaker.Saturated 0.4) with
  | Some (Breaker.Opened _) -> ()
  | _ -> Alcotest.fail "expected Opened");
  (* A saturation-class circuit rejects with Overloaded — retryable,
     binding still good — and honours the destination's hint as the
     cooldown floor, not the dead-host cooldown. *)
  match Breaker.before_send b ~now:0.1 host with
  | Breaker.Reject { error; retry_after } ->
      Alcotest.(check bool) "overload rejection" true (Err.is_overload error);
      Alcotest.(check bool) "cooldown from hint" true
        (retry_after <= 0.4 +. 1e-9)
  | _ -> Alcotest.fail "expected Reject"

(* --- a serial-service unit: deferred replies make budgets visible --- *)

let slow_unit = "test.slow_counter"
let slow_service = 0.2

let slow_factory (ctx : Runtime.ctx) : Impl.part =
  let eng = Runtime.sim ctx.Runtime.rt in
  let n = ref 0 in
  let busy_until = ref 0.0 in
  let serve k reply =
    let start = Float.max (Engine.now eng) !busy_until in
    busy_until := start +. slow_service;
    ignore (Engine.schedule_at eng ~time:!busy_until (fun () -> k reply))
  in
  let increment _ctx args _env k =
    match args with
    | [ Value.Int d ] ->
        n := !n + d;
        serve k (Ok (Value.Int !n))
    | _ -> Impl.bad_args k "Increment expects one int"
  in
  Impl.part
    ~methods:[ ("Increment", increment) ]
    ~save:(fun () -> Value.Int !n)
    ~restore:(fun v ->
      match v with
      | Value.Int i ->
          n := i;
          Ok ()
      | _ -> Error "bad state")
    slow_unit

let boot_slow ?rt_config () =
  Impl.register slow_unit slow_factory;
  let sys = boot_two_sites ~seed ?rt_config () in
  let ctx = System.client sys () in
  let cls =
    Api.derive_class_exn sys ctx ~parent:Legion_core.Well_known.legion_object
      ~name:"SlowCounter" ~units:[ slow_unit ]
      ~idl:"interface SlowCounter { Increment(d: int): int; }" ()
  in
  let obj = Api.create_object_exn sys ctx ~cls ~eager:true () in
  (match Api.call sys ctx ~dst:obj ~meth:"Increment" ~args:[ Value.Int 1 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "warm call failed: %s" (Err.to_string e));
  (sys, ctx, cls, obj)

(* --- admission: Admit / queue / Shed, Overloaded surfaced --- *)

let test_admission_budget () =
  let sys, ctx, _cls, obj = boot_slow () in
  let rt = System.rt sys and obs = System.obs sys in
  let proc =
    match Runtime.find_proc rt obj with
    | Some p -> p
    | None -> Alcotest.fail "no proc for object"
  in
  Runtime.set_admission proc
    (Some { Runtime.max_inflight = 1; max_queue = 1; retry_after_hint = 0.05 });
  let mark = Recorder.total obs in
  let sheds0 = Runtime.total_sheds rt in
  (* Three single-attempt calls in one burst against a budget of
     1 inflight + 1 queued: the third must be shed with the hint. *)
  let results = Array.make 3 None in
  for i = 0 to 2 do
    Runtime.invoke ctx ~timeout:2.0 ~max_rebinds:0 ~dst:obj ~meth:"Increment"
      ~args:[ Value.Int 1 ] (fun r -> results.(i) <- Some r)
  done;
  System.run sys;
  let oks, overloads =
    Array.fold_left
      (fun (ok, ov) r ->
        match r with
        | Some (Ok _) -> (ok + 1, ov)
        | Some (Error e) when Err.is_overload e ->
            (match Err.retry_after e with
            | Some ra -> Alcotest.(check bool) "hint positive" true (ra > 0.0)
            | None -> Alcotest.fail "Overloaded without hint");
            (ok, ov + 1)
        | Some (Error e) -> Alcotest.failf "unexpected error: %s" (Err.to_string e)
        | None -> Alcotest.fail "call never completed")
      (0, 0) results
  in
  Alcotest.(check int) "two admitted" 2 oks;
  Alcotest.(check int) "one shed" 1 overloads;
  Alcotest.(check int) "shed counted" (sheds0 + 1) (Runtime.total_sheds rt);
  let events = Recorder.events_since obs mark in
  assert_holds
    Trace.(
      seq
        [
          matches ~label:"first call admitted straight in"
            (admit ~loid:obj ~queued:false ());
          matches ~label:"overflow call shed"
            (shed ~loid:obj ~meth:"Increment" ());
          matches ~label:"queued call admitted as the slot frees"
            (admit ~loid:obj ~queued:true ());
        ])
    events;
  Alcotest.(check int) "inflight drained" 0 (Runtime.inflight proc);
  Alcotest.(check int) "queue drained" 0 (Runtime.queued_calls proc);
  Alcotest.(check (float 1e-9)) "idle load factor" 0.0
    (Runtime.load_factor proc)

(* --- backpressure-aware retry: shed calls come back and succeed --- *)

let test_overloaded_retry () =
  let sys, ctx, _cls, obj = boot_slow () in
  let rt = System.rt sys and obs = System.obs sys in
  let proc =
    match Runtime.find_proc rt obj with
    | Some p -> p
    | None -> Alcotest.fail "no proc for object"
  in
  Runtime.set_admission proc
    (Some { Runtime.max_inflight = 1; max_queue = 1; retry_after_hint = 0.05 });
  let mark = Recorder.total obs in
  (* Same burst, but under the default retransmission policy: the shed
     call must back off by at least the hint and land once the queue
     drains — every caller ends Ok. *)
  let results = Array.make 3 None in
  for i = 0 to 2 do
    Runtime.invoke ctx ~max_rebinds:0 ~dst:obj ~meth:"Increment"
      ~args:[ Value.Int 1 ] (fun r -> results.(i) <- Some r)
  done;
  System.run sys;
  Array.iteri
    (fun i r ->
      match r with
      | Some (Ok _) -> ()
      | Some (Error e) ->
          Alcotest.failf "call %d failed: %s" i (Err.to_string e)
      | None -> Alcotest.failf "call %d never completed" i)
    results;
  let events = Recorder.events_since obs mark in
  Alcotest.(check bool) "the burst was shed at least once" true
    (Trace.count_of (Trace.shed ~loid:obj ()) events >= 1)

(* --- circuit breaker through the runtime: Open -> Probe -> Close --- *)

let test_breaker_trace () =
  let sys, ctx, _cls, obj =
    boot_slow
      ~rt_config:
        {
          Runtime.default_config with
          breaker =
            Some
              {
                Breaker.failure_threshold = 3;
                cooldown = 1.0;
                shed_cooldown = 0.1;
              };
        }
      ()
  in
  let rt = System.rt sys
  and obs = System.obs sys
  and net = System.net sys in
  let victim =
    match Runtime.find_proc rt obj with
    | Some p -> Runtime.proc_host p
    | None -> Alcotest.fail "no proc for object"
  in
  let mark = Recorder.total obs in
  Network.set_host_up net victim false;
  (* Three calls time out against the dark host; the third consecutive
     transport failure opens the circuit. *)
  for _ = 1 to 3 do
    let result = ref None in
    Runtime.invoke ctx ~max_rebinds:0 ~dst:obj ~meth:"Increment"
      ~args:[ Value.Int 1 ] (fun r -> result := Some r);
    System.run sys;
    match !result with
    | Some (Error Err.Timeout) -> ()
    | Some (Ok _) -> Alcotest.fail "call to a dark host succeeded"
    | Some (Error e) -> Alcotest.failf "expected timeout: %s" (Err.to_string e)
    | None -> Alcotest.fail "call never completed"
  done;
  (* The host comes back; the next call parks behind the open circuit,
     goes out as the HalfOpen probe after the cooldown, and its success
     closes the circuit. *)
  Network.set_host_up net victim true;
  let result = ref None in
  Runtime.invoke ctx ~max_rebinds:0 ~dst:obj ~meth:"Increment"
    ~args:[ Value.Int 1 ] (fun r -> result := Some r);
  System.run sys;
  (match !result with
  | Some (Ok _) -> ()
  | Some (Error e) -> Alcotest.failf "probe call failed: %s" (Err.to_string e)
  | None -> Alcotest.fail "probe call never completed");
  let events = Recorder.events_since obs mark in
  assert_holds
    Trace.(
      seq
        [
          matches ~label:"circuit opens after threshold failures"
            (breaker_open ~host:victim ());
          matches ~label:"half-open probe after the cooldown"
            (breaker_probe ~host:victim ());
          matches ~label:"probe success closes the circuit"
            (breaker_close ~host:victim ());
        ])
    events;
  Alcotest.(check string) "circuit closed at the end" "closed"
    (match Runtime.breaker_phase rt victim with
    | Some p -> p
    | None -> "breakers-off")

(* --- the class sheds creates before lookups --- *)

let test_class_sheds_creates () =
  let sys = boot_two_sites ~seed () in
  let ctx = System.client sys () in
  let cls = make_counter_class sys ctx () in
  let obj = Api.create_object_exn sys ctx ~cls ~eager:true () in
  ignore (Api.call sys ctx ~dst:obj ~meth:"Get" ~args:[]);
  let rt = System.rt sys and obs = System.obs sys in
  let class_proc =
    match Runtime.find_proc rt cls with
    | Some p -> p
    | None -> Alcotest.fail "no proc for class"
  in
  (* Budget 1+1: any delivered call sees load_factor 0.5, the policy
     threshold, so creates shed while lookups keep being served. *)
  Runtime.set_admission class_proc
    (Some { Runtime.max_inflight = 1; max_queue = 1; retry_after_hint = 0.05 });
  let mark = Recorder.total obs in
  (match
     Api.sync sys (fun k ->
         Runtime.invoke ctx ~timeout:5.0 ~max_rebinds:0 ~dst:cls ~meth:"Create"
           ~args:[ Value.Record []; Value.Record [] ] k)
   with
  | Error e when Err.is_overload e -> ()
  | Ok _ -> Alcotest.fail "Create was served under load"
  | Error e -> Alcotest.failf "expected Overloaded: %s" (Err.to_string e));
  (match
     Api.sync sys (fun k ->
         Runtime.invoke ctx ~timeout:5.0 ~max_rebinds:0 ~dst:cls
           ~meth:"GetBinding" ~args:[ Loid.to_value obj ] k)
   with
  | Ok v -> (
      match Binding.of_value v with
      | Ok b ->
          Alcotest.(check bool) "lookup still serves the object" true
            (Loid.equal (Binding.loid b) obj)
      | Error m -> Alcotest.failf "bad binding: %s" m)
  | Error e -> Alcotest.failf "GetBinding shed under load: %s" (Err.to_string e));
  let events = Recorder.events_since obs mark in
  Alcotest.(check bool) "Create shed by policy" true
    (Trace.count_of (Trace.shed ~loid:cls ~meth:"Create" ()) events >= 1)

(* --- the Binding Agent serves stale under an overloaded class --- *)

let test_agent_serves_stale_under_shed () =
  let sys = boot_two_sites ~seed () in
  let ctx = System.client sys () in
  let cls = make_counter_class sys ctx () in
  let obj = Api.create_object_exn sys ctx ~cls ~eager:true () in
  ignore (Api.call sys ctx ~dst:obj ~meth:"Get" ~args:[]);
  let rt = System.rt sys and obs = System.obs sys in
  let agent = (List.nth (System.sites sys) 0).System.agent in
  (* A known-good binding for the object, then an overloaded class. *)
  let stale_v =
    match
      Api.sync sys (fun k ->
          Runtime.invoke ctx ~timeout:5.0 ~max_rebinds:0 ~dst:cls
            ~meth:"GetBinding" ~args:[ Loid.to_value obj ] k)
    with
    | Ok v -> v
    | Error e -> Alcotest.failf "seed lookup failed: %s" (Err.to_string e)
  in
  let class_proc =
    match Runtime.find_proc rt cls with
    | Some p -> p
    | None -> Alcotest.fail "no proc for class"
  in
  Runtime.set_admission class_proc
    (Some { Runtime.max_inflight = 0; max_queue = 0; retry_after_hint = 0.1 });
  let mark = Recorder.total obs in
  (* A refresh request (GetBinding with the stale binding) now cannot
     reach the class — the agent must degrade gracefully and serve the
     stale-but-unexpired binding instead of surfacing the shed. *)
  (match
     Api.sync sys (fun k ->
         Runtime.invoke ctx ~timeout:60.0 ~max_rebinds:0 ~dst:agent
           ~meth:"GetBinding" ~args:[ stale_v ] k)
   with
  | Ok v -> (
      match (Binding.of_value v, Binding.of_value stale_v) with
      | Ok served, Ok stale ->
          Alcotest.(check bool) "served the stale binding" true
            (Binding.equal served stale)
      | _ -> Alcotest.fail "bad binding value")
  | Error e ->
      Alcotest.failf "agent surfaced the shed instead of degrading: %s"
        (Err.to_string e));
  let events = Recorder.events_since obs mark in
  Alcotest.(check bool) "StaleServe traced" true
    (Trace.count_of (Trace.stale_serve ~target:obj ()) events >= 1);
  Alcotest.(check bool) "the class did shed the refresh" true
    (Trace.count_of (Trace.shed ~loid:cls ()) events >= 1)

let () =
  Alcotest.run "overload"
    [
      ( "errors",
        [
          Alcotest.test_case "Overloaded shape" `Quick test_overloaded_error;
          Alcotest.test_case "backoff window" `Quick test_backoff_window;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "state machine" `Quick test_breaker_state_machine;
          Alcotest.test_case "saturated rejections" `Quick
            test_breaker_saturated_rejections;
          Alcotest.test_case "open, probe, close (traced)" `Quick
            test_breaker_trace;
        ] );
      ( "admission",
        [
          Alcotest.test_case "admit, queue, shed" `Quick test_admission_budget;
          Alcotest.test_case "shed calls retry and succeed" `Quick
            test_overloaded_retry;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "class sheds creates before lookups" `Quick
            test_class_sheds_creates;
          Alcotest.test_case "agent serves stale under shed" `Quick
            test_agent_serves_stale_under_shed;
        ] );
    ]
