(* Soak test: a long "day in the life" of a Legion under continuous
   adversity. Hours of virtual time with a steady workload while the
   harness injects host crashes, partitions (healed), idle sweeps, and
   migrations. At the end, every object must still be reachable and its
   state must equal the reference model exactly: the system never
   acknowledged an update it lost.

   Invariant discipline: an Increment is added to the model only when
   the client saw Ok. Retries can double-apply (at-least-once, the
   paper's model has no exactly-once layer), so the system value may
   exceed the model — it must never be below. Objects checkpointed by
   sweeps/deactivations and then crashed can lose only un-checkpointed
   deltas; the driver tracks a lower bound accordingly: the value after
   the last acknowledged checkpoint. *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Prng = Legion_util.Prng
module Network = Legion_net.Network
module Runtime = Legion_rt.Runtime
module Script = Legion_sim.Script
module Event = Legion_obs.Event
module Recorder = Legion_obs.Recorder
module Trace = Legion_obs.Trace
module System = Legion.System
module Api = Legion.Api
module H = Helpers

let n_objects = 16
let rounds = 400

let test_soak () =
  let sys =
    H.register_counter_unit ();
    Legion.System.boot ~seed:2026L
      ~rt_config:{ Runtime.default_config with call_timeout = 0.5; max_rebinds = 4 }
      ~sites:[ ("a", 4); ("b", 4); ("c", 4) ]
      ()
  in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let objects = Array.init n_objects (fun _ -> Api.create_object_exn sys ctx ~cls ()) in
  (* lower.(i) = the floor the object can never fall below (value at the
     last checkpoint the system acknowledged). *)
  let lower = Array.make n_objects 0 in
  let acked = Array.make n_objects 0 in
  let prng = Prng.create ~seed:77L in
  let crashes = ref 0 and partitions = ref 0 and sweeps = ref 0 in
  let infra_hosts =
    (* First host of each site carries the magistrate/agent — crashing
       those takes the Jurisdiction down for good (infrastructure is
       externally started, §4.2.1), so the chaos avoids them. *)
    List.map (fun s -> List.hd s.System.net_hosts) (System.sites sys)
  in
  for round = 1 to rounds do
    (* Workload: one increment on a random object. *)
    let i = Prng.int prng n_objects in
    (match
       Api.call sys ctx ~dst:objects.(i) ~meth:"Increment" ~args:[ Value.Int 1 ]
     with
    | Ok _ -> acked.(i) <- acked.(i) + 1
    | Error _ -> ());
    (* Chaos, low probability each round. *)
    if Prng.bernoulli prng ~p:0.03 then begin
      (* Checkpoint then crash a random non-infrastructure host. *)
      let candidates =
        List.filter
          (fun h -> not (List.mem h infra_hosts) && Network.host_is_up (System.net sys) h)
          (Network.hosts (System.net sys))
      in
      if candidates <> [] then begin
        let victim = List.nth candidates (Prng.int prng (List.length candidates)) in
        (* Objects on the victim lose un-checkpointed state; their floor
           is whatever the last checkpoint captured. We conservatively
           checkpoint everything first via idle sweep with threshold 0,
           so the floor becomes the acked count at this instant. *)
        List.iter
          (fun m ->
            match
              Api.call sys ctx ~dst:m ~meth:"SweepIdle" ~args:[ Value.Float 0.0 ]
            with
            | Ok _ | Error _ -> ())
          (System.magistrates sys);
        Array.iteri (fun j _ -> lower.(j) <- acked.(j)) objects;
        Runtime.crash_host (System.rt sys) victim;
        incr crashes;
        (* Hosts come back after a while (rebooted by the site). *)
        let net = System.net sys in
        ignore
          (Legion_sim.Engine.schedule (System.sim sys) ~delay:5.0 (fun () ->
               Network.set_host_up net victim true))
      end
    end;
    if Prng.bernoulli prng ~p:0.01 then begin
      (* Brief partition between two random sites, healed shortly. *)
      let a = Prng.int prng 3 and b = Prng.int prng 3 in
      if a <> b then begin
        Network.set_partitioned (System.net sys) a b true;
        incr partitions;
        let net = System.net sys in
        ignore
          (Legion_sim.Engine.schedule (System.sim sys) ~delay:2.0 (fun () ->
               Network.set_partitioned net a b false))
      end
    end;
    if round mod 100 = 0 then begin
      (* Periodic idle sweep, as a resource-manager daemon would. *)
      List.iter
        (fun m ->
          match Api.call sys ctx ~dst:m ~meth:"SweepIdle" ~args:[ Value.Float 20.0 ] with
          | Ok _ | Error _ -> incr sweeps)
        (System.magistrates sys)
    end;
    (* Let time flow a little between rounds. *)
    System.run_for sys 0.2
  done;
  (* Heal everything, then audit. *)
  List.iter (fun h -> Network.set_host_up (System.net sys) h true)
    (Network.hosts (System.net sys));
  for a = 0 to 2 do
    for b = a + 1 to 2 do
      Network.set_partitioned (System.net sys) a b false
    done
  done;
  System.run sys;
  let unreachable = ref 0 in
  Array.iteri
    (fun i o ->
      match Api.call sys ctx ~dst:o ~meth:"Get" ~args:[] with
      | Ok (Value.Int v) ->
          if v < lower.(i) then
            Alcotest.failf "object %d regressed below its checkpoint: %d < %d" i v
              lower.(i);
          if v > acked.(i) + 8 then
            Alcotest.failf
              "object %d wildly over-applied: %d vs %d acknowledged" i v acked.(i)
      | Ok v -> Alcotest.failf "object %d: odd reply %s" i (Value.to_string v)
      | Error _ -> incr unreachable)
    objects;
  Alcotest.(check int) "every object reachable after healing" 0 !unreachable;
  (* The chaos actually happened. *)
  Alcotest.(check bool)
    (Printf.sprintf "chaos occurred (%d crashes, %d partitions)" !crashes !partitions)
    true
    (!crashes > 0 && !partitions > 0);
  Alcotest.(check bool) "simulated hours elapsed" true (System.now sys > 60.0)

(* Scripted crash/reboot churn with the recovery machinery armed: hosts
   power-fail and reboot on a fixed schedule while an open-loop workload
   runs. Unlike the chaos soak above, nobody calls SweepIdle — the
   Magistrates' own checkpoint sweeps are the only durability, and the
   heartbeat detector (not a caller) drives reactivation. At the end
   every object must be live with at-least-checkpointed state, and no
   zombie placement may have answered a single call. *)
let n_churn_objects = 8

let test_recovery_churn () =
  let sys =
    H.register_counter_unit ();
    Legion.System.boot ~seed:97L
      ~rt_config:{ Runtime.default_config with call_timeout = 0.5; max_rebinds = 4 }
      ~sites:[ ("a", 3); ("b", 3) ]
      ()
  in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let objects =
    Array.init n_churn_objects (fun _ ->
        Api.create_object_exn sys ctx ~cls ~eager:true ())
  in
  Array.iter
    (fun o -> ignore (Api.call sys ctx ~dst:o ~meth:"Get" ~args:[]))
    objects;
  let sim = System.sim sys
  and net = System.net sys
  and rt = System.rt sys
  and obs = System.obs sys in
  let mark = Recorder.total obs in
  let t0 = System.now sys in
  let duration = 42.0 in
  System.enable_recovery sys ~checkpoint_period:0.5 ~heartbeat_period:0.25
    ~threshold:3
    ~until:(t0 +. duration)
    ();
  let infra = List.map (fun s -> List.hd s.System.net_hosts) (System.sites sys) in
  let victims =
    List.filter (fun h -> not (List.mem h infra)) (Network.hosts net)
  in
  Alcotest.(check bool) "churn has victims" true (List.length victims >= 2);
  (* Staggered pulses: each victim goes down for 4 s, one after another,
     so every non-infrastructure host dies and reboots at least once. *)
  let zombies = ref [] in
  let last_crash = ref t0 in
  List.iteri
    (fun i victim ->
      let start = t0 +. 4.0 +. (8.0 *. float_of_int i) in
      last_crash := Float.max !last_crash start;
      Script.pulse sim ~start ~width:4.0
        ~on:(fun () ->
          List.iter
            (fun p ->
              if Runtime.proc_kind p = Legion_core.Well_known.kind_app then
                zombies := (p, Runtime.requests_of p) :: !zombies)
            (Runtime.procs_on_host rt victim);
          Runtime.power_fail rt victim)
        ~off:(fun () -> Network.set_host_up net victim true))
    victims;
  let acks = Array.make n_churn_objects [] in
  let prng = Prng.create ~seed:101L in
  Script.every sim ~period:0.1 ~until:(t0 +. duration -. 1e-9) (fun () ->
      let i = Prng.int prng n_churn_objects in
      Runtime.invoke ctx ~dst:objects.(i) ~meth:"Increment" ~args:[ Value.Int 1 ]
        (function
          | Ok (Value.Int n) -> acks.(i) <- (System.now sys, n) :: acks.(i)
          | Ok _ | Error _ -> ()));
  System.run sys;
  let events = Recorder.events_since obs mark in
  (* The churn actually exercised the machinery. *)
  Alcotest.(check bool) "hosts were confirmed dead" true
    (Trace.count_of (Trace.confirm_dead ()) events >= List.length victims);
  Alcotest.(check bool) "objects were reactivated" true
    (Trace.count_of (Trace.reactivate ()) events > 0);
  (* Every object is live and holds at least what its last checkpoint
     before the final crash captured (margin covers acks racing the
     SaveState capture across the wire). *)
  let margin = 0.1 in
  Array.iteri
    (fun i o ->
      let last_ckpt =
        List.fold_left
          (fun acc e ->
            match e.Event.kind with
            | Event.Checkpoint { loid }
              when Loid.equal loid o && e.Event.time <= !last_crash ->
                Float.max acc e.Event.time
            | _ -> acc)
          neg_infinity events
      in
      let floor_value =
        List.fold_left
          (fun acc (t, v) -> if t <= last_ckpt -. margin then max acc v else acc)
          0 acks.(i)
      in
      match Api.call sys ctx ~dst:o ~meth:"Get" ~args:[] with
      | Ok (Value.Int v) ->
          if v < floor_value then
            Alcotest.failf "object %d regressed below its checkpoint: %d < %d" i
              v floor_value
      | Ok v -> Alcotest.failf "object %d: odd reply %s" i (Value.to_string v)
      | Error e ->
          Alcotest.failf "object %d unreachable after churn: %s" i
            (Legion_rt.Err.to_string e))
    objects;
  (* Zombie placements stranded by the power failures answered nothing:
     the epoch fence rejected every delivery before dispatch. *)
  List.iter
    (fun (p, before) ->
      if Runtime.requests_of p <> before then
        Alcotest.failf "zombie %s answered %d calls after its power failure"
          (Loid.to_string (Runtime.proc_loid p))
          (Runtime.requests_of p - before))
    !zombies

(* Transactions under churn: a steady mix of 2PC and saga transactions
   while hosts power-fail (and reboot) and sites partition (and heal),
   with the recovery machinery armed. The E20 invariant holds at
   quiescence regardless of what the chaos hit: every transaction is
   all-committed or all-compensated — the store histories carry no
   Staged residue and no transaction with mixed marks — and no
   participant is left holding an orphaned prepare lock. Outcomes are
   protocol-shaped, so the boot seed is swept (LEGION_TRACE_SEED). *)
module Persistent = Legion_store.Persistent
module Participant = Legion_txn.Participant
module Coordinator = Legion_txn.Coordinator
module Err = Legion_rt.Err

let txn_seed =
  match Sys.getenv_opt "LEGION_TRACE_SEED" with
  | Some s -> Int64.of_string s
  | None -> 11L

let n_txn_participants = 6
let n_txn_rounds = 60

let test_txn_churn () =
  let sys =
    H.register_counter_unit ();
    Legion.System.boot ~seed:txn_seed
      ~rt_config:{ Runtime.default_config with call_timeout = 0.5; max_rebinds = 4 }
      ~sites:[ ("a", 3); ("b", 3) ]
      ()
  in
  let ctx = System.client sys () in
  let net = System.net sys and rt = System.rt sys in
  let part_cls =
    Api.derive_class_exn sys ctx ~parent:Legion_core.Well_known.legion_object
      ~name:"ChurnCounter"
      ~units:[ H.counter_unit; Participant.unit_name ]
      ()
  in
  let coord_cls =
    Api.derive_class_exn sys ctx ~parent:Legion_core.Well_known.legion_object
      ~name:"ChurnCoordinator" ~units:[ Coordinator.unit_name ] ()
  in
  let objects =
    Array.init n_txn_participants (fun _ ->
        Api.create_object_exn sys ctx ~cls:part_cls ~eager:true ())
  in
  let coords =
    Array.init 2 (fun _ ->
        Api.create_object_exn sys ctx ~cls:coord_cls ~eager:true ())
  in
  Array.iter
    (fun co ->
      match
        Api.call sys ctx ~dst:co ~meth:"Configure"
          ~args:[ Value.Record [ ("store", Value.Str "a") ] ]
      with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "Configure: %s" (Err.to_string e))
    coords;
  let t0 = System.now sys in
  System.enable_recovery sys ~checkpoint_period:0.5 ~heartbeat_period:0.25
    ~threshold:3
    ~until:(t0 +. 300.0)
    ();
  (* Message-level adversity on top of the crash/partition churn:
     delivered duplicates (which the runtime's exactly-once cache must
     absorb — a prepare or commit executing twice would corrupt the
     protocol state the audit below checks) and bounded reordering. *)
  Network.set_duplicate_rate net 0.08;
  Network.set_reorder net ~rate:0.15 ~window:0.05;
  System.run_for sys 2.0;
  let prng = Prng.create ~seed:(Int64.add txn_seed 5L) in
  let infra = List.map (fun s -> List.hd s.System.net_hosts) (System.sites sys) in
  let submitted = ref [] in
  let committed_ids = ref [] in
  let crashes = ref 0 and partitions = ref 0 in
  let step dst d =
    Value.Record
      [
        ("dst", Loid.to_value dst);
        ("meth", Value.Str "Increment");
        ("args", Value.List [ Value.Int d ]);
        ("cmeth", Value.Str "Increment");
        ("cargs", Value.List [ Value.Int (-d) ]);
      ]
  in
  for round = 1 to n_txn_rounds do
    (* One transaction per round: random coordinator, mode, and two
       distinct participants. *)
    let co = coords.(Prng.int prng (Array.length coords)) in
    let i = Prng.int prng n_txn_participants in
    let j = (i + 1 + Prng.int prng (n_txn_participants - 1)) mod n_txn_participants in
    let mode = if Prng.bernoulli prng ~p:0.5 then "2pc" else "saga" in
    let d = 1 + Prng.int prng 5 in
    Runtime.invoke ctx ~dst:co ~meth:"TxnRun"
      ~args:[ Value.Str mode; Value.List [ step objects.(i) d; step objects.(j) d ] ]
      (function
        | Ok (Value.Str id) ->
            submitted := id :: !submitted;
            committed_ids := id :: !committed_ids
        | Ok _ -> ()
        | Error (Err.Txn_aborted { txn }) -> submitted := txn :: !submitted
        | Error _ ->
            (* Coordinator crashed before the outcome reached us; the
               audit resolves the fate from the histories. *)
            ());
    (* Chaos: crash a random non-infrastructure host (rebooted later),
       or briefly partition the two sites. *)
    if Prng.bernoulli prng ~p:0.12 then begin
      let candidates =
        List.filter
          (fun h -> (not (List.mem h infra)) && Network.host_is_up net h)
          (Network.hosts net)
      in
      if candidates <> [] then begin
        let victim = List.nth candidates (Prng.int prng (List.length candidates)) in
        Runtime.power_fail rt victim;
        incr crashes;
        ignore
          (Legion_sim.Engine.schedule (System.sim sys) ~delay:6.0 (fun () ->
               Network.set_host_up net victim true))
      end
    end;
    (* At least one partition per run regardless of the seed's luck:
       round 30 always splits the sites. *)
    if round = 30 || Prng.bernoulli prng ~p:0.05 then begin
      Network.set_partitioned net 0 1 true;
      incr partitions;
      ignore
        (Legion_sim.Engine.schedule (System.sim sys) ~delay:2.0 (fun () ->
             Network.set_partitioned net 0 1 false))
    end;
    System.run_for sys 1.0
  done;
  (* Heal everything and let the recovery and redrive machinery drain:
     reactivations, TxnResume, commit/compensation redrives. *)
  List.iter (fun h -> Network.set_host_up net h true) (Network.hosts net);
  Network.set_partitioned net 0 1 false;
  System.run_for sys 60.0;
  System.run sys;
  Alcotest.(check bool)
    (Printf.sprintf "chaos occurred (%d crashes, %d partitions)" !crashes
       !partitions)
    true
    (!crashes > 0 && !partitions > 0);
  Alcotest.(check bool) "duplicates were injected" true
    (Network.messages_duplicated net > 0);
  Alcotest.(check bool) "dedup cache absorbed duplicates" true
    (Runtime.dedup_hits rt > 0);
  Alcotest.(check bool) "transactions resolved" true (!submitted <> []);
  (* The E20 audit, from the store histories alone. *)
  let store = (System.site sys 0).System.storage in
  let marks_of id =
    List.concat_map
      (fun loid ->
        List.filter_map
          (fun (e : Persistent.History.entry) ->
            if e.txn = Some id then Some e.mark else None)
          (Persistent.history store ~loid))
      (Persistent.history_loids store)
  in
  let all_ids =
    List.sort_uniq String.compare
      (!submitted
      @ List.concat_map
          (fun loid ->
            List.filter_map
              (fun (e : Persistent.History.entry) -> e.txn)
              (Persistent.history store ~loid))
          (Persistent.history_loids store))
  in
  List.iter
    (fun id ->
      let marks = marks_of id in
      let staged = List.filter (fun m -> m = Persistent.Staged) marks in
      if staged <> [] then
        Alcotest.failf "txn %s left %d staged entries (partial commit)" id
          (List.length staged);
      let committed = List.exists (fun m -> m = Persistent.Committed) marks in
      let compensated =
        List.exists (fun m -> m = Persistent.Compensated) marks
      in
      if committed && compensated then
        Alcotest.failf "txn %s has mixed marks (partial commit)" id)
    all_ids;
  (* A commit acknowledged to the client is never recorded rolled back. *)
  List.iter
    (fun id ->
      if List.exists (fun m -> m = Persistent.Compensated) (marks_of id) then
        Alcotest.failf "acknowledged commit %s recorded as compensated" id)
    !committed_ids;
  (* No orphaned prepare locks anywhere. *)
  Array.iteri
    (fun i o ->
      match Api.call sys ctx ~dst:o ~meth:"TxnHeld" ~args:[] with
      | Ok (Value.List []) -> ()
      | Ok (Value.List [ Value.Str t ]) ->
          Alcotest.failf "participant %d still holds a lock for %s" i t
      | Ok v -> Alcotest.failf "TxnHeld: odd reply %s" (Value.to_string v)
      | Error e ->
          Alcotest.failf "participant %d unreachable: %s" i (Err.to_string e))
    objects;
  (* No transaction remains in doubt on any live coordinator. *)
  Array.iteri
    (fun i co ->
      match Api.call sys ctx ~dst:co ~meth:"TxnStats" ~args:[] with
      | Ok (Value.Record fields) ->
          Alcotest.(check bool)
            (Printf.sprintf "coordinator %d has nothing in doubt" i)
            true
            (List.assoc_opt "indoubt" fields = Some (Value.Int 0))
      | Ok v -> Alcotest.failf "TxnStats: odd reply %s" (Value.to_string v)
      | Error e ->
          Alcotest.failf "coordinator %d unreachable: %s" i (Err.to_string e))
    coords

let () =
  Alcotest.run "soak"
    [
      ("day in the life", [ Alcotest.test_case "soak" `Slow test_soak ]);
      ( "recovery churn",
        [ Alcotest.test_case "churn" `Slow test_recovery_churn ] );
      ( "txn churn",
        [ Alcotest.test_case "atomicity under chaos" `Slow test_txn_churn ] );
    ]
