(* Unit and property tests for Legion_util: PRNG, statistics, heap and
   counters. *)

module Prng = Legion_util.Prng
module Stats = Legion_util.Stats
module Heap = Legion_util.Heap
module Counter = Legion_util.Counter

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:7L and b = Prng.create ~seed:7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seed_matters () =
  let a = Prng.create ~seed:1L and b = Prng.create ~seed:2L in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Prng.next_int64 a) (Prng.next_int64 b)) then
      differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_prng_copy () =
  let a = Prng.create ~seed:99L in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copy continues stream" (Prng.next_int64 a)
      (Prng.next_int64 b)
  done

let test_prng_split_independent () =
  let a = Prng.create ~seed:5L in
  let child = Prng.split a in
  (* Splitting must not replay the parent stream. *)
  let x = Prng.next_int64 a and y = Prng.next_int64 child in
  Alcotest.(check bool) "split streams differ" false (Int64.equal x y)

let test_prng_int_bounds () =
  let t = Prng.create ~seed:3L in
  for _ = 1 to 1000 do
    let x = Prng.int t 17 in
    if x < 0 || x >= 17 then Alcotest.failf "out of range: %d" x
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int t 0))

let test_prng_int_in () =
  let t = Prng.create ~seed:4L in
  for _ = 1 to 1000 do
    let x = Prng.int_in t ~lo:(-5) ~hi:5 in
    if x < -5 || x > 5 then Alcotest.failf "out of range: %d" x
  done

let test_prng_float_bounds () =
  let t = Prng.create ~seed:8L in
  for _ = 1 to 1000 do
    let x = Prng.float t 2.5 in
    if x < 0.0 || x >= 2.5 then Alcotest.failf "out of range: %f" x
  done

let test_prng_bernoulli_extremes () =
  let t = Prng.create ~seed:9L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Prng.bernoulli t ~p:0.0);
    Alcotest.(check bool) "p=1 always" true (Prng.bernoulli t ~p:1.0)
  done

let test_prng_bernoulli_rate () =
  let t = Prng.create ~seed:10L in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.bernoulli t ~p:0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  if abs_float (rate -. 0.3) > 0.02 then Alcotest.failf "rate %f too far from 0.3" rate

let test_prng_exponential_mean () =
  let t = Prng.create ~seed:11L in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.exponential t ~mean:2.0 in
    if x < 0.0 then Alcotest.fail "negative exponential draw";
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  if abs_float (mean -. 2.0) > 0.1 then Alcotest.failf "mean %f too far from 2" mean

let test_prng_shuffle_permutation () =
  let t = Prng.create ~seed:12L in
  let arr = Array.init 20 (fun i -> i) in
  Prng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 20 (fun i -> i)) sorted

let test_prng_sample () =
  let t = Prng.create ~seed:13L in
  let arr = Array.init 10 (fun i -> i) in
  let s = Prng.sample_without_replacement t 4 arr in
  Alcotest.(check int) "size" 4 (List.length s);
  Alcotest.(check int) "distinct" 4 (List.length (List.sort_uniq compare s));
  Alcotest.check_raises "too many"
    (Invalid_argument "Prng.sample_without_replacement") (fun () ->
      ignore (Prng.sample_without_replacement t 11 arr))

(* --- Stats --- *)

let test_stats_basic () =
  let s = Stats.create () in
  Stats.add_list s [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check int) "count" 4 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "total" 10.0 (Stats.total s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max s);
  Alcotest.(check (float 1e-9)) "variance" 1.25 (Stats.variance s)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check (float 0.0)) "mean of empty" 0.0 (Stats.mean s);
  Alcotest.check_raises "min of empty" (Invalid_argument "Stats.min: empty")
    (fun () -> ignore (Stats.min s));
  Alcotest.check_raises "percentile of empty"
    (Invalid_argument "Stats.percentile: empty") (fun () ->
      ignore (Stats.percentile s 50.0))

let test_stats_percentile () =
  let s = Stats.create () in
  Stats.add_list s (List.init 101 (fun i -> float_of_int i));
  Alcotest.(check (float 1e-9)) "p0" 0.0 (Stats.percentile s 0.0);
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.median s);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile s 100.0);
  Alcotest.(check (float 1e-9)) "p25" 25.0 (Stats.percentile s 25.0)

let test_stats_percentile_interpolates () =
  let s = Stats.create () in
  Stats.add_list s [ 0.0; 10.0 ];
  Alcotest.(check (float 1e-9)) "p50 interpolated" 5.0 (Stats.median s)

let test_stats_merge_clear () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add_list a [ 1.0; 2.0 ];
  Stats.add_list b [ 3.0; 4.0 ];
  let m = Stats.merge a b in
  Alcotest.(check int) "merged count" 4 (Stats.count m);
  Alcotest.(check (float 1e-9)) "merged mean" 2.5 (Stats.mean m);
  Stats.clear a;
  Alcotest.(check int) "cleared" 0 (Stats.count a)

let test_stats_add_after_percentile () =
  (* Percentile sorts a cache; adding must invalidate it. *)
  let s = Stats.create () in
  Stats.add_list s [ 3.0; 1.0 ];
  ignore (Stats.median s);
  Stats.add s 100.0;
  Alcotest.(check (float 1e-9)) "p100 sees new sample" 100.0
    (Stats.percentile s 100.0)

let test_histogram () =
  let h = Stats.Histogram.create ~buckets:[| 1.0; 10.0 |] in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.0; 5.0; 11.0; 100.0 ];
  Alcotest.(check int) "total" 5 (Stats.Histogram.total h);
  (match Stats.Histogram.counts h with
  | [ (Some 1.0, 2); (Some 10.0, 1); (None, 2) ] -> ()
  | cs ->
      Alcotest.failf "bad counts: %s"
        (String.concat ","
           (List.map
              (fun (b, c) ->
                Printf.sprintf "%s:%d"
                  (match b with Some f -> string_of_float f | None -> ">")
                  c)
              cs)));
  Alcotest.check_raises "bad bounds"
    (Invalid_argument "Histogram.create: bounds not strictly ascending")
    (fun () -> ignore (Stats.Histogram.create ~buckets:[| 2.0; 1.0 |]))

let test_stats_is_empty () =
  let s = Stats.create () in
  Alcotest.(check bool) "fresh is empty" true (Stats.is_empty s);
  Stats.add s 1.0;
  Alcotest.(check bool) "not empty after add" false (Stats.is_empty s);
  Stats.clear s;
  Alcotest.(check bool) "empty after clear" true (Stats.is_empty s)

let test_histogram_linear () =
  let h = Stats.Histogram.linear ~lo:0.0 ~width:2.0 ~count:3 in
  Alcotest.(check (array (float 1e-12))) "bounds" [| 2.0; 4.0; 6.0 |]
    (Stats.Histogram.bounds h);
  Alcotest.check_raises "bad count"
    (Invalid_argument "Histogram.linear: count must be positive") (fun () ->
      ignore (Stats.Histogram.linear ~lo:0.0 ~width:1.0 ~count:0));
  Alcotest.check_raises "bad width"
    (Invalid_argument "Histogram.linear: width must be positive") (fun () ->
      ignore (Stats.Histogram.linear ~lo:0.0 ~width:0.0 ~count:2))

let test_histogram_merge () =
  let a = Stats.Histogram.create ~buckets:[| 1.0; 2.0 |] in
  let b = Stats.Histogram.create ~buckets:[| 1.0; 2.0 |] in
  List.iter (Stats.Histogram.add a) [ 0.5; 1.5 ];
  List.iter (Stats.Histogram.add b) [ 1.5; 9.0 ];
  let m = Stats.Histogram.merge a b in
  Alcotest.(check int) "merged total" 4 (Stats.Histogram.total m);
  (match Stats.Histogram.counts m with
  | [ (Some 1.0, 1); (Some 2.0, 2); (None, 1) ] -> ()
  | _ -> Alcotest.fail "bad merged counts");
  (* The inputs are untouched. *)
  Alcotest.(check int) "a untouched" 2 (Stats.Histogram.total a);
  let c = Stats.Histogram.create ~buckets:[| 3.0 |] in
  Alcotest.check_raises "mismatched bounds"
    (Invalid_argument "Histogram.merge: mismatched buckets") (fun () ->
      ignore (Stats.Histogram.merge a c))

let test_histogram_percentile () =
  let h = Stats.Histogram.create ~buckets:[| 1.0; 2.0; 3.0 |] in
  Alcotest.check_raises "empty" (Invalid_argument "Histogram.percentile: empty")
    (fun () -> ignore (Stats.Histogram.percentile h 50.0));
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 2.5; 2.6 ];
  Alcotest.(check (float 1e-12)) "p25 first bucket" 1.0
    (Stats.Histogram.percentile h 25.0);
  Alcotest.(check (float 1e-12)) "p50 second bucket" 2.0
    (Stats.Histogram.percentile h 50.0);
  Alcotest.(check (float 1e-12)) "p100 third bucket" 3.0
    (Stats.Histogram.percentile h 100.0);
  Alcotest.(check (float 1e-12)) "p0 clamps to first sample" 1.0
    (Stats.Histogram.percentile h 0.0);
  Stats.Histogram.add h 99.0;
  Alcotest.(check bool) "overflow is infinity" true
    (Stats.Histogram.percentile h 100.0 = infinity);
  Alcotest.check_raises "range" (Invalid_argument "Histogram.percentile: out of range")
    (fun () -> ignore (Stats.Histogram.percentile h 101.0))

(* Random strictly-ascending bounds plus random samples (some outside the
   range): each sample must land in the first bucket whose bound covers
   it, overflow otherwise. *)
let hist_bucket_assignment =
  QCheck.Test.make ~name:"histogram bucket assignment" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 8) (int_bound 100))
              (list_of_size Gen.(0 -- 50) (int_bound 140)))
    (fun (bound_ints, sample_ints) ->
      let bounds =
        List.sort_uniq compare bound_ints |> List.map float_of_int
      in
      QCheck.assume (bounds <> []);
      let bounds = Array.of_list bounds in
      let samples = List.map (fun i -> float_of_int i -. 20.0) sample_ints in
      let h = Stats.Histogram.create ~buckets:bounds in
      List.iter (Stats.Histogram.add h) samples;
      let n = Array.length bounds in
      let expected = Array.make (n + 1) 0 in
      List.iter
        (fun x ->
          let rec idx i =
            if i = n then n else if x <= bounds.(i) then i else idx (i + 1)
          in
          let i = idx 0 in
          expected.(i) <- expected.(i) + 1)
        samples;
      let actual = Array.of_list (List.map snd (Stats.Histogram.counts h)) in
      expected = actual && Stats.Histogram.total h = List.length samples)

let hist_merge_associative =
  QCheck.Test.make ~name:"histogram merge is associative" ~count:200
    QCheck.(triple (small_list (float_bound_exclusive 10.0))
              (small_list (float_bound_exclusive 10.0))
              (small_list (float_bound_exclusive 10.0)))
    (fun (xs, ys, zs) ->
      let mk samples =
        let h = Stats.Histogram.linear ~lo:0.0 ~width:2.5 ~count:3 in
        List.iter (Stats.Histogram.add h) samples;
        h
      in
      let a = mk xs and b = mk ys and c = mk zs in
      let open Stats.Histogram in
      counts (merge a (merge b c)) = counts (merge (merge a b) c)
      && total (merge a (merge b c)) = total (merge (merge a b) c))

(* At integral ranks p = 100*i/(n-1), [Stats.percentile] degenerates to
   the i-th order statistic, and the histogram reports that sample's
   bucket upper bound — so the two agree to within one bucket width. *)
let hist_percentile_close =
  QCheck.Test.make ~name:"histogram percentile within one bucket of exact"
    ~count:200
    QCheck.(list_of_size Gen.(2 -- 40) (float_bound_exclusive 100.0))
    (fun samples ->
      let n = List.length samples in
      let s = Stats.create () in
      Stats.add_list s samples;
      let width = 5.0 in
      let h = Stats.Histogram.linear ~lo:0.0 ~width ~count:20 in
      List.iter (Stats.Histogram.add h) samples;
      List.for_all
        (fun i ->
          let p = 100.0 *. float_of_int i /. float_of_int (n - 1) in
          let exact = Stats.percentile s p in
          let coarse = Stats.Histogram.percentile h p in
          Float.abs (coarse -. exact) <= width +. 1e-6)
        (List.init n (fun i -> i)))

(* --- Heap --- *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 0 ];
  Alcotest.(check (list int)) "drain sorted" [ 0; 1; 1; 3; 4; 5; 9 ]
    (Heap.drain_sorted h);
  Alcotest.(check bool) "empty after drain" true (Heap.is_empty h)

let test_heap_peek_pop () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  Heap.push h 42;
  Alcotest.(check (option int)) "peek" (Some 42) (Heap.peek h);
  Alcotest.(check int) "length" 1 (Heap.length h);
  Alcotest.(check (option int)) "pop" (Some 42) (Heap.pop h);
  Alcotest.check_raises "pop_exn empty" (Invalid_argument "Heap.pop_exn: empty")
    (fun () -> ignore (Heap.pop_exn h))

let test_heap_clear () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Heap.clear h;
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (list int)) "to_list empty" [] (Heap.to_list h);
  Heap.push h 9;
  Alcotest.(check (option int)) "usable after clear" (Some 9) (Heap.pop h)

let heap_sorts_any_list =
  QCheck.Test.make ~name:"heap drain_sorted equals List.sort" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      Heap.drain_sorted h = List.sort compare xs)

(* Model-based: a random interleaving of pushes and pops must behave
   like a sorted-list model — every pop returns the minimum of what
   remains, and length / is_empty / peek never drift from the model's
   size accounting. *)
let heap_model_interleaved =
  QCheck.Test.make ~name:"heap matches sorted-list model under push/pop"
    ~count:300
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = Heap.create ~cmp:compare in
      let model = ref [] in
      List.for_all
        (fun (is_push, x) ->
          let op_ok =
            if is_push then begin
              Heap.push h x;
              model := List.merge compare [ x ] !model;
              true
            end
            else
              let expect =
                match !model with
                | [] -> None
                | y :: tl ->
                    model := tl;
                    Some y
              in
              Heap.pop h = expect
          in
          op_ok
          && Heap.length h = List.length !model
          && Heap.is_empty h = (!model = [])
          && Heap.peek h = (match !model with [] -> None | y :: _ -> Some y))
        ops)

(* --- Calq --- *)

module Calq = Legion_util.Calq

(* The calendar queue must pop in exactly the engine's (time, seq)
   order; the binary heap is the oracle. Records are shared between the
   two structures so a cancellation flag flips in both at once, and both
   sides skip cancelled records lazily — the engine's discipline. *)
type cq_rec = { c_time : float; c_seq : int; c_id : int; mutable c_canc : bool }

let cq_dummy = { c_time = 0.0; c_seq = -1; c_id = -1; c_canc = false }

let cq_cmp a b = compare (a.c_time, a.c_seq) (b.c_time, b.c_seq)

(* Times drawn from a small set so same-instant collisions (seq
   tie-breaks) are common; 1e9 exercises the far-future skew path that
   must not disturb near-term ordering. *)
let cq_times = [| 0.0; 0.5; 0.5; 1.0; 1.5; 2.0; 3.0; 1e9 |]

let rec cq_pop q =
  match Calq.pop q with
  | Some r when r.c_canc -> cq_pop q
  | other -> other

let rec cq_hpop h =
  match Heap.pop h with
  | Some r when r.c_canc -> cq_hpop h
  | other -> other

let calq_matches_heap =
  QCheck.Test.make ~name:"calendar queue matches heap oracle" ~count:300
    QCheck.(list (pair (int_bound 2) (pair (int_bound 7) small_int)))
    (fun ops ->
      let q = Calq.create ~nbuckets:2 ~dummy:cq_dummy () in
      let h = Heap.create ~cmp:cq_cmp in
      let pushed = ref [] and npushed = ref 0 and seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun (kind, (ti, k)) ->
          match kind with
          | 0 ->
              let r =
                { c_time = cq_times.(ti); c_seq = !seq; c_id = !seq;
                  c_canc = false }
              in
              incr seq;
              Calq.push q ~time:r.c_time ~seq:r.c_seq r;
              Heap.push h r;
              pushed := r :: !pushed;
              incr npushed
          | 1 ->
              let a = cq_pop q and b = cq_hpop h in
              (match (a, b) with
              | None, None -> ()
              | Some x, Some y when x.c_id = y.c_id -> ()
              | _ -> ok := false)
          | _ ->
              if !npushed > 0 then
                (List.nth !pushed (k mod !npushed)).c_canc <- true)
        ops;
      (* Drain what remains; orders must still agree exactly. *)
      let rec drain () =
        match (cq_pop q, cq_hpop h) with
        | None, None -> true
        | Some x, Some y when x.c_id = y.c_id -> drain ()
        | _ -> false
      in
      !ok && drain ())

let test_calq_tie_break () =
  let q = Calq.create ~dummy:cq_dummy () in
  (* Same instant, seqs pushed out of order: pop order is seq order. *)
  List.iter
    (fun s ->
      Calq.push q ~time:7.0 ~seq:s
        { c_time = 7.0; c_seq = s; c_id = s; c_canc = false })
    [ 3; 1; 4; 0; 2 ];
  Alcotest.(check int) "length" 5 (Calq.length q);
  Alcotest.(check (float 0.0)) "peek_time" 7.0 (Calq.peek_time q);
  let order = List.init 5 (fun _ ->
      match Calq.pop q with Some r -> r.c_seq | None -> -1)
  in
  Alcotest.(check (list int)) "seq order" [ 0; 1; 2; 3; 4 ] order;
  Alcotest.(check bool) "empty" true (Calq.is_empty q)

let test_calq_edges () =
  let q = Calq.create ~dummy:cq_dummy () in
  Alcotest.(check (option int)) "peek empty" None
    (Option.map (fun r -> r.c_id) (Calq.peek q));
  Alcotest.(check bool) "nan peek_time" true (Float.is_nan (Calq.peek_time q));
  Alcotest.check_raises "negative time" (Invalid_argument "Calq.push: bad time")
    (fun () -> ignore (Calq.push q ~time:(-1.0) ~seq:0 cq_dummy));
  Alcotest.check_raises "nan time" (Invalid_argument "Calq.push: bad time")
    (fun () -> ignore (Calq.push q ~time:Float.nan ~seq:0 cq_dummy));
  Calq.push q ~time:1.0 ~seq:0 { cq_dummy with c_id = 1 };
  Calq.clear q;
  Alcotest.(check bool) "cleared" true (Calq.is_empty q);
  Calq.push q ~time:2.0 ~seq:1 { cq_dummy with c_id = 2 };
  Alcotest.(check (option int)) "usable after clear" (Some 2)
    (Option.map (fun r -> r.c_id) (Calq.pop q))

let stats_percentile_bounded =
  QCheck.Test.make ~name:"percentiles lie within min/max" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
              (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let xs = match xs with [] -> [ 0.0 ] | xs -> xs in
      let s = Stats.create () in
      Stats.add_list s xs;
      let v = Stats.percentile s p in
      v >= Stats.min s -. 1e-9 && v <= Stats.max s +. 1e-9)

(* --- Sampler --- *)

module Sampler = Legion_util.Sampler

let test_zipf_bounds_and_skew () =
  let prng = Prng.create ~seed:5L in
  let z = Sampler.zipf prng ~n:10 ~s:1.0 in
  let counts = Array.make 10 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let r = Sampler.zipf_draw z in
    if r < 0 || r >= 10 then Alcotest.failf "rank out of range: %d" r;
    counts.(r) <- counts.(r) + 1
  done;
  (* Rank 0 strictly more popular than rank 9, and empirical frequencies
     near the pmf. *)
  Alcotest.(check bool) "skewed" true (counts.(0) > counts.(9));
  let freq0 = float_of_int counts.(0) /. float_of_int n in
  if abs_float (freq0 -. Sampler.zipf_pmf z 0) > 0.02 then
    Alcotest.failf "rank-0 frequency %f vs pmf %f" freq0 (Sampler.zipf_pmf z 0)

let test_zipf_uniform_limit () =
  let prng = Prng.create ~seed:6L in
  let z = Sampler.zipf prng ~n:4 ~s:0.0 in
  List.iter
    (fun r ->
      Alcotest.(check (float 1e-9)) "uniform pmf" 0.25 (Sampler.zipf_pmf z r))
    [ 0; 1; 2; 3 ];
  Alcotest.(check (float 1e-9)) "out of range pmf" 0.0 (Sampler.zipf_pmf z 99);
  Alcotest.check_raises "bad n" (Invalid_argument "Sampler.zipf: n must be positive")
    (fun () -> ignore (Sampler.zipf prng ~n:0 ~s:1.0))

let test_poisson () =
  let prng = Prng.create ~seed:7L in
  let p = Sampler.poisson_process prng ~rate:10.0 in
  let arrivals = Sampler.arrivals_until p ~horizon:100.0 in
  (* ~1000 arrivals expected; all inside the horizon and ascending. *)
  let n = List.length arrivals in
  if n < 850 || n > 1150 then Alcotest.failf "arrival count %d" n;
  let rec ascending = function
    | a :: (b :: _ as rest) -> a < b && ascending rest
    | _ -> true
  in
  Alcotest.(check bool) "ascending" true (ascending arrivals);
  Alcotest.(check bool) "inside horizon" true
    (List.for_all (fun t -> t >= 0.0 && t < 100.0) arrivals);
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Sampler.poisson_process: rate must be positive") (fun () ->
      ignore (Sampler.poisson_process prng ~rate:0.0))

(* --- Counter --- *)

let test_pp_smoke () =
  (* The pretty-printers render something sensible and never raise. *)
  let s = Stats.create () in
  Alcotest.(check string) "empty stats" "n=0" (Format.asprintf "%a" Stats.pp s);
  Stats.add_list s [ 1.0; 2.0 ];
  Alcotest.(check bool) "mean shown" true
    (String.length (Format.asprintf "%a" Stats.pp s) > 10);
  let h = Stats.Histogram.create ~buckets:[| 1.0 |] in
  Stats.Histogram.add h 0.5;
  Alcotest.(check bool) "histogram renders" true
    (String.length (Format.asprintf "%a" Stats.Histogram.pp h) > 0);
  let r = Counter.Registry.create () in
  Counter.incr (Counter.Registry.make r ~group:"g" ~name:"n");
  Alcotest.(check string) "registry renders" "g/n=1"
    (Format.asprintf "%a" Counter.Registry.pp r)

let test_counter_registry () =
  let r = Counter.Registry.create () in
  let a = Counter.Registry.make r ~group:"g1" ~name:"a" in
  let b = Counter.Registry.make r ~group:"g1" ~name:"b" in
  let c = Counter.Registry.make r ~group:"g2" ~name:"c" in
  Counter.incr a;
  Counter.add b 5;
  Counter.incr c;
  Alcotest.(check int) "value" 1 (Counter.value a);
  Alcotest.(check int) "group total" 6 (Counter.Registry.group_total r "g1");
  (match Counter.Registry.group_max r "g1" with
  | Some ("b", 5) -> ()
  | other ->
      Alcotest.failf "group_max: %s"
        (match other with
        | Some (n, v) -> Printf.sprintf "%s=%d" n v
        | None -> "none"));
  (* Re-registration returns the same counter. *)
  let a' = Counter.Registry.make r ~group:"g1" ~name:"a" in
  Counter.incr a';
  Alcotest.(check int) "same counter" 2 (Counter.value a);
  Counter.Registry.reset r;
  Alcotest.(check int) "reset" 0 (Counter.Registry.group_total r "g1");
  Alcotest.(check int) "all registered" 3 (List.length (Counter.Registry.all r))

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed matters" `Quick test_prng_seed_matters;
          Alcotest.test_case "copy" `Quick test_prng_copy;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_prng_int_in;
          Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
          Alcotest.test_case "bernoulli extremes" `Quick test_prng_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Slow test_prng_bernoulli_rate;
          Alcotest.test_case "exponential mean" `Slow test_prng_exponential_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "sample without replacement" `Quick test_prng_sample;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic moments" `Quick test_stats_basic;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "percentiles" `Quick test_stats_percentile;
          Alcotest.test_case "interpolation" `Quick test_stats_percentile_interpolates;
          Alcotest.test_case "merge and clear" `Quick test_stats_merge_clear;
          Alcotest.test_case "cache invalidation" `Quick test_stats_add_after_percentile;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "is_empty" `Quick test_stats_is_empty;
          Alcotest.test_case "histogram linear" `Quick test_histogram_linear;
          Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
          Alcotest.test_case "histogram percentile" `Quick
            test_histogram_percentile;
          QCheck_alcotest.to_alcotest stats_percentile_bounded;
          QCheck_alcotest.to_alcotest hist_bucket_assignment;
          QCheck_alcotest.to_alcotest hist_merge_associative;
          QCheck_alcotest.to_alcotest hist_percentile_close;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "peek and pop" `Quick test_heap_peek_pop;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          QCheck_alcotest.to_alcotest heap_sorts_any_list;
          QCheck_alcotest.to_alcotest heap_model_interleaved;
        ] );
      ( "calq",
        [
          Alcotest.test_case "seq tie-break at one instant" `Quick
            test_calq_tie_break;
          Alcotest.test_case "edges: empty, bad time, clear" `Quick
            test_calq_edges;
          QCheck_alcotest.to_alcotest calq_matches_heap;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "zipf bounds and skew" `Slow test_zipf_bounds_and_skew;
          Alcotest.test_case "zipf uniform limit" `Quick test_zipf_uniform_limit;
          Alcotest.test_case "poisson process" `Slow test_poisson;
        ] );
      ("counter", [ Alcotest.test_case "registry" `Quick test_counter_registry ]);
      ("pp", [ Alcotest.test_case "printers" `Quick test_pp_smoke ]);
    ]
