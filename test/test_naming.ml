(* Tests for LOIDs, Object Addresses, Bindings and the binding cache. *)

module Loid = Legion_naming.Loid
module Address = Legion_naming.Address
module Binding = Legion_naming.Binding
module Cache = Legion_naming.Cache
module Prng = Legion_util.Prng

let loid_t = Alcotest.testable Loid.pp Loid.equal
let addr_t = Alcotest.testable Address.pp Address.equal
let binding_t = Alcotest.testable Binding.pp Binding.equal

(* --- LOIDs (§3.2) --- *)

let test_loid_fields () =
  let l = Loid.make ~public_key:"pk" ~class_id:7L ~class_specific:42L () in
  Alcotest.(check int64) "cid" 7L (Loid.class_id l);
  Alcotest.(check int64) "spec" 42L (Loid.class_specific l);
  Alcotest.(check string) "key" "pk" (Loid.public_key l);
  Alcotest.(check bool) "not a class" false (Loid.is_class l)

let test_loid_responsible_class () =
  let l = Loid.make ~public_key:"pk" ~class_id:7L ~class_specific:42L () in
  let c = Loid.responsible_class l in
  Alcotest.(check int64) "same cid" 7L (Loid.class_id c);
  Alcotest.(check int64) "spec zeroed" 0L (Loid.class_specific c);
  Alcotest.(check string) "no key" "" (Loid.public_key c);
  Alcotest.(check bool) "is a class" true (Loid.is_class c);
  (* Idempotent on key-less classes (§3.7 convention). *)
  Alcotest.check loid_t "idempotent" c (Loid.responsible_class c)

let test_loid_equality_covers_key () =
  let a = Loid.make ~public_key:"x" ~class_id:1L ~class_specific:1L () in
  let b = Loid.make ~public_key:"y" ~class_id:1L ~class_specific:1L () in
  Alcotest.(check bool) "keys distinguish" false (Loid.equal a b);
  Alcotest.(check bool) "compare nonzero" true (Loid.compare a b <> 0)

let test_loid_table () =
  let tbl = Loid.Table.create () in
  let l1 = Loid.make ~class_id:1L ~class_specific:1L () in
  let l2 = Loid.make ~class_id:1L ~class_specific:2L () in
  Loid.Table.set tbl l1 "one";
  Loid.Table.set tbl l2 "two";
  Alcotest.(check (option string)) "find" (Some "one") (Loid.Table.find tbl l1);
  Loid.Table.set tbl l1 "uno";
  Alcotest.(check (option string)) "replace" (Some "uno") (Loid.Table.find tbl l1);
  Alcotest.(check int) "length" 2 (Loid.Table.length tbl);
  Loid.Table.remove tbl l1;
  Alcotest.(check bool) "removed" false (Loid.Table.mem tbl l1)

let loid_gen =
  QCheck.Gen.(
    map3
      (fun cid spec key -> Loid.make ~public_key:key ~class_id:cid ~class_specific:spec ())
      int64 int64 (string_size (0 -- 8)))

let arbitrary_loid = QCheck.make ~print:Loid.to_string loid_gen

let loid_roundtrip =
  QCheck.Test.make ~name:"loid wire roundtrip" ~count:300 arbitrary_loid
    (fun l ->
      match Loid.of_value (Loid.to_value l) with
      | Ok l' -> Loid.equal l l'
      | Error _ -> false)

(* --- Addresses (§3.4) --- *)

let element_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun h p -> Address.Ip { host = h; port = p land 0xFFFF }) int32 int;
        map3
          (fun h p n -> Address.Ip_node { host = h; port = p land 0xFFFF; node = n land 0xFF })
          int32 int int;
        map2 (fun h s -> Address.Sim { host = h land 0xFFFF; slot = s land 0xFFFF }) int int;
        map2
          (fun t payload -> Address.Raw { addr_type = t; payload })
          int32 (string_size (0 -- 8));
      ])

let semantic_gen =
  QCheck.Gen.(
    oneof
      [
        return Address.All;
        return Address.Any_random;
        map (fun k -> Address.First_k (abs k mod 5)) int;
        map (fun k -> Address.K_random (abs k mod 5)) int;
        return Address.Ordered_failover;
        map (fun s -> Address.Custom s) (string_size (1 -- 6));
      ])

let address_gen =
  QCheck.Gen.(
    map2
      (fun els sem -> Address.make ~semantic:sem els)
      (list_size (1 -- 5) element_gen)
      semantic_gen)

let arbitrary_address =
  QCheck.make ~print:(Format.asprintf "%a" Address.pp) address_gen

let address_roundtrip =
  QCheck.Test.make ~name:"address wire roundtrip" ~count:300 arbitrary_address
    (fun a ->
      match Address.of_value (Address.to_value a) with
      | Ok a' -> Address.equal a a'
      | Error _ -> false)

let test_address_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Address.make: empty element list")
    (fun () -> ignore (Address.make []))

let test_address_targets () =
  let e1 = Address.Sim { host = 1; slot = 1 } in
  let e2 = Address.Sim { host = 2; slot = 2 } in
  let e3 = Address.Sim { host = 3; slot = 3 } in
  let prng = Prng.create ~seed:1L in
  let all = Address.make ~semantic:Address.All [ e1; e2; e3 ] in
  Alcotest.(check int) "all" 3 (List.length (Address.targets all prng));
  let k2 = Address.make ~semantic:(Address.First_k 2) [ e1; e2; e3 ] in
  Alcotest.(check int) "first 2" 2 (List.length (Address.targets k2 prng));
  let anyr = Address.make ~semantic:Address.Any_random [ e1; e2; e3 ] in
  for _ = 1 to 20 do
    match Address.targets anyr prng with
    | [ e ] ->
        Alcotest.(check bool) "member" true (List.mem e [ e1; e2; e3 ])
    | _ -> Alcotest.fail "any_random must pick exactly one"
  done;
  let fo = Address.make ~semantic:Address.Ordered_failover [ e1; e2; e3 ] in
  Alcotest.(check bool) "failover preserves order" true
    (Address.targets fo prng = [ e1; e2; e3 ]);
  let kr = Address.make ~semantic:(Address.K_random 2) [ e1; e2; e3 ] in
  for _ = 1 to 20 do
    let ts = Address.targets kr prng in
    Alcotest.(check int) "k random picks k" 2 (List.length ts);
    Alcotest.(check int) "k random distinct" 2
      (List.length (List.sort_uniq compare ts));
    List.iter
      (fun e -> Alcotest.(check bool) "member" true (List.mem e [ e1; e2; e3 ]))
      ts
  done;
  (* Oversized k clamps to N. *)
  let kr9 = Address.make ~semantic:(Address.K_random 9) [ e1; e2 ] in
  Alcotest.(check int) "k clamps" 2 (List.length (Address.targets kr9 prng))

let test_address_types () =
  Alcotest.(check int32) "ip" 1l (Address.addr_type (Address.Ip { host = 0l; port = 0 }));
  Alcotest.(check int32) "sim" 3l
    (Address.addr_type (Address.Sim { host = 0; slot = 0 }));
  Alcotest.(check (option int)) "sim host" (Some 4)
    (Address.sim_host (Address.Sim { host = 4; slot = 0 }));
  Alcotest.(check (option int)) "ip no sim host" None
    (Address.sim_host (Address.Ip { host = 0l; port = 0 }))

(* --- Bindings (§3.5) --- *)

let sample_loid = Loid.make ~class_id:9L ~class_specific:9L ()
let sample_addr = Address.singleton (Address.Sim { host = 0; slot = 0 })

let test_binding_validity () =
  let never = Binding.make ~loid:sample_loid ~address:sample_addr () in
  Alcotest.(check bool) "no expiry valid" true (Binding.is_valid ~now:1e12 never);
  let till5 = Binding.make ~expires:5.0 ~loid:sample_loid ~address:sample_addr () in
  Alcotest.(check bool) "before expiry" true (Binding.is_valid ~now:4.9 till5);
  Alcotest.(check bool) "at expiry invalid" false (Binding.is_valid ~now:5.0 till5);
  let refreshed = Binding.with_expiry till5 None in
  Alcotest.(check bool) "expiry cleared" true (Binding.is_valid ~now:1e12 refreshed)

let binding_gen =
  QCheck.Gen.(
    map3
      (fun l a e ->
        Binding.make ?expires:(if e < 0.0 then None else Some e) ~loid:l ~address:a ())
      loid_gen address_gen (float_range (-1.0) 100.0))

let arbitrary_binding =
  QCheck.make ~print:(Format.asprintf "%a" Binding.pp) binding_gen

let binding_roundtrip =
  QCheck.Test.make ~name:"binding wire roundtrip" ~count:300 arbitrary_binding
    (fun b ->
      match Binding.of_value (Binding.to_value b) with
      | Ok b' -> Binding.equal b b'
      | Error _ -> false)

(* --- Cache --- *)

let mk_binding ?expires i =
  let loid = Loid.make ~class_id:100L ~class_specific:(Int64.of_int i) () in
  Binding.make ?expires ~loid ~address:(Address.singleton (Address.Sim { host = i; slot = i })) ()

let loid_of i = Loid.make ~class_id:100L ~class_specific:(Int64.of_int i) ()

let test_cache_hit_miss () =
  let c = Cache.create () in
  Cache.add c ~now:0.0 (mk_binding 1);
  Alcotest.(check bool) "hit" true (Cache.find c ~now:0.0 (loid_of 1) <> None);
  Alcotest.(check bool) "miss" true (Cache.find c ~now:0.0 (loid_of 2) = None);
  Alcotest.(check int) "lookups" 2 (Cache.lookups c);
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check (float 1e-9)) "rate" 0.5 (Cache.hit_rate c)

let test_cache_expiry () =
  let c = Cache.create () in
  Cache.add c ~now:0.0 (mk_binding ~expires:5.0 1);
  Alcotest.(check bool) "valid before" true (Cache.find c ~now:4.0 (loid_of 1) <> None);
  Alcotest.(check bool) "expired after" true (Cache.find c ~now:6.0 (loid_of 1) = None);
  Alcotest.(check int) "purged" 0 (Cache.length c);
  (* Adding an already-expired binding is a no-op. *)
  Cache.add c ~now:10.0 (mk_binding ~expires:5.0 2);
  Alcotest.(check int) "expired not added" 0 (Cache.length c)

let test_cache_lru () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c ~now:0.0 (mk_binding 1);
  Cache.add c ~now:0.0 (mk_binding 2);
  (* Touch 1 so 2 is the LRU victim. *)
  ignore (Cache.find c ~now:0.0 (loid_of 1));
  Cache.add c ~now:0.0 (mk_binding 3);
  Alcotest.(check bool) "1 kept" true (Cache.mem c ~now:0.0 (loid_of 1));
  Alcotest.(check bool) "2 evicted" false (Cache.mem c ~now:0.0 (loid_of 2));
  Alcotest.(check bool) "3 present" true (Cache.mem c ~now:0.0 (loid_of 3));
  Alcotest.(check int) "bounded" 2 (Cache.length c);
  Alcotest.(check int) "one eviction" 1 (Cache.evictions c)

let test_cache_replace_no_evict () =
  let c = Cache.create ~capacity:1 () in
  Cache.add c ~now:0.0 (mk_binding 1);
  (* Replacing the same LOID must not evict. *)
  Cache.add c ~now:0.0 (mk_binding 1);
  Alcotest.(check int) "no eviction on replace" 0 (Cache.evictions c);
  Alcotest.(check int) "length 1" 1 (Cache.length c)

let test_cache_zero_capacity () =
  let c = Cache.create ~capacity:0 () in
  Cache.add c ~now:0.0 (mk_binding 1);
  Alcotest.(check int) "nothing cached" 0 (Cache.length c)

let test_cache_invalidate () =
  let c = Cache.create () in
  let b1 = mk_binding 1 in
  Cache.add c ~now:0.0 b1;
  Cache.invalidate c (loid_of 1);
  Alcotest.(check bool) "gone" false (Cache.mem c ~now:0.0 (loid_of 1));
  Cache.add c ~now:0.0 b1;
  (* invalidate_exact with a different binding is a no-op. *)
  let other =
    Binding.make ~loid:(loid_of 1)
      ~address:(Address.singleton (Address.Sim { host = 99; slot = 99 }))
      ()
  in
  Cache.invalidate_exact c other;
  Alcotest.(check bool) "exact mismatch kept" true (Cache.mem c ~now:0.0 (loid_of 1));
  Cache.invalidate_exact c b1;
  Alcotest.(check bool) "exact match removed" false (Cache.mem c ~now:0.0 (loid_of 1))

let test_cache_clear_resets_stats () =
  let c = Cache.create ~capacity:1 () in
  Cache.add c ~now:0.0 (mk_binding 1);
  ignore (Cache.find c ~now:0.0 (loid_of 1));
  Cache.add c ~now:0.0 (mk_binding 2) (* evicts 1 *);
  Cache.clear c;
  Alcotest.(check int) "emptied" 0 (Cache.length c);
  (* A cleared cache is statistically indistinguishable from a fresh
     one: lookups, hits, evictions and the LRU clock all reset. *)
  Alcotest.(check int) "lookups reset" 0 (Cache.lookups c);
  Alcotest.(check int) "hits reset" 0 (Cache.hits c);
  Alcotest.(check int) "evictions reset" 0 (Cache.evictions c);
  Alcotest.(check (float 1e-9)) "rate reset" 0.0 (Cache.hit_rate c);
  Cache.add c ~now:0.0 (mk_binding 2);
  Alcotest.(check bool) "usable after clear" true (Cache.mem c ~now:0.0 (loid_of 2));
  Alcotest.(check (option int)) "capacity preserved" (Some 1) (Cache.capacity c)

let test_cache_mem_purges_and_counts_nothing () =
  let c = Cache.create () in
  Cache.add c ~now:0.0 (mk_binding ~expires:5.0 1);
  Alcotest.(check bool) "present before expiry" true (Cache.mem c ~now:1.0 (loid_of 1));
  Alcotest.(check int) "mem counts no lookups" 0 (Cache.lookups c);
  Alcotest.(check bool) "absent after expiry" false (Cache.mem c ~now:6.0 (loid_of 1));
  Alcotest.(check int) "expired entry purged by mem" 0 (Cache.length c);
  Alcotest.(check int) "still no lookups" 0 (Cache.lookups c);
  Alcotest.(check int) "still no hits" 0 (Cache.hits c)

let test_cache_find_refresh () =
  let c = Cache.create () in
  let stale = mk_binding 1 in
  Cache.add c ~now:0.0 stale;
  (* The cache still holds the failing binding: refresh must not
     re-serve it — purge, report a miss, count one lookup. *)
  Alcotest.(check bool) "stale entry is a miss" true
    (Cache.find_refresh c ~now:0.0 ~stale = None);
  Alcotest.(check int) "stale entry purged" 0 (Cache.length c);
  Alcotest.(check int) "one lookup counted" 1 (Cache.lookups c);
  Alcotest.(check int) "no hit" 0 (Cache.hits c);
  (* A *different* cached binding for the same LOID is a hit. *)
  let fresh =
    Binding.make ~loid:(loid_of 1)
      ~address:(Address.singleton (Address.Sim { host = 9; slot = 9 }))
      ()
  in
  Cache.add c ~now:0.0 fresh;
  (match Cache.find_refresh c ~now:0.0 ~stale with
  | Some b ->
      Alcotest.(check bool) "different binding served" true (Binding.equal b fresh)
  | None -> Alcotest.fail "fresh binding not served");
  Alcotest.(check int) "two lookups" 2 (Cache.lookups c);
  Alcotest.(check int) "one hit" 1 (Cache.hits c);
  (* An expired replacement is a miss too, and gets purged. *)
  let expiring =
    Binding.make ~expires:5.0 ~loid:(loid_of 1)
      ~address:(Address.singleton (Address.Sim { host = 8; slot = 8 }))
      ()
  in
  Cache.add c ~now:0.0 expiring;
  Alcotest.(check bool) "expired replacement is a miss" true
    (Cache.find_refresh c ~now:6.0 ~stale = None);
  Alcotest.(check int) "expired replacement purged" 0 (Cache.length c)

(* Replay a random op sequence against a counter model: exactly [find]
   and [find_refresh] count lookups, hits never exceed lookups, [clear]
   resets to a fresh cache, and no op ever serves an expired or
   known-stale binding. *)
let cache_stats_invariants =
  QCheck.Test.make ~name:"cache statistics invariants" ~count:300
    QCheck.(
      pair (int_range 1 6)
        (small_list
           (pair (int_range 0 5) (pair (int_range 0 6) (float_range 0.5 20.0)))))
    (fun (cap, ops) ->
      let c = Cache.create ~capacity:cap () in
      let lookups = ref 0 and hits = ref 0 in
      let now = ref 0.0 in
      let ok = ref true in
      List.iter
        (fun (tag, (i, e)) ->
          now := !now +. 0.25;
          (match tag with
          | 0 -> Cache.add c ~now:!now (mk_binding ~expires:(!now +. e) i)
          | 1 -> (
              incr lookups;
              match Cache.find c ~now:!now (loid_of i) with
              | Some b ->
                  incr hits;
                  if not (Binding.is_valid ~now:!now b) then ok := false
              | None -> ())
          | 2 ->
              (* mem agrees with find and counts nothing itself; the
                 cross-checking find is modelled as one lookup. *)
              let m = Cache.mem c ~now:!now (loid_of i) in
              incr lookups;
              let f = Cache.find c ~now:!now (loid_of i) in
              if m <> (f <> None) then ok := false;
              if f <> None then incr hits
          | 3 -> Cache.invalidate c (loid_of i)
          | 4 -> (
              incr lookups;
              match Cache.find_refresh c ~now:!now ~stale:(mk_binding i) with
              | Some b ->
                  incr hits;
                  if Binding.equal b (mk_binding i) then ok := false;
                  if not (Binding.is_valid ~now:!now b) then ok := false
              | None -> ())
          | _ ->
              Cache.clear c;
              lookups := 0;
              hits := 0);
          if Cache.lookups c <> !lookups then ok := false;
          if Cache.hits c <> !hits then ok := false;
          if Cache.hits c > Cache.lookups c then ok := false;
          if Cache.length c > cap then ok := false)
        ops;
      !ok)

let test_loid_map_set () =
  let l1 = Loid.make ~class_id:1L ~class_specific:1L () in
  let l2 = Loid.make ~class_id:1L ~class_specific:2L () in
  let m = Loid.Map.(add l1 "a" (add l2 "b" empty)) in
  Alcotest.(check (option string)) "map find" (Some "a") (Loid.Map.find_opt l1 m);
  let s = Loid.Set.of_list [ l1; l2; l1 ] in
  Alcotest.(check int) "set dedups" 2 (Loid.Set.cardinal s)

let cache_never_exceeds_capacity =
  QCheck.Test.make ~name:"cache never exceeds capacity" ~count:200
    QCheck.(pair (int_range 1 8) (small_list (int_range 0 20)))
    (fun (cap, ops) ->
      let c = Cache.create ~capacity:cap () in
      List.iter (fun i -> Cache.add c ~now:0.0 (mk_binding i)) ops;
      Cache.length c <= cap)

let cache_never_returns_expired =
  QCheck.Test.make ~name:"cache never returns an expired binding" ~count:200
    QCheck.(small_list (pair (int_range 0 10) (float_range 0.1 10.0)))
    (fun ops ->
      let c = Cache.create () in
      List.iter (fun (i, e) -> Cache.add c ~now:0.0 (mk_binding ~expires:e i)) ops;
      List.for_all
        (fun (i, _) ->
          match Cache.find c ~now:5.0 (loid_of i) with
          | None -> true
          | Some b -> Binding.is_valid ~now:5.0 b)
        ops)

let () =
  Alcotest.run "naming"
    [
      ( "loid",
        [
          Alcotest.test_case "fields" `Quick test_loid_fields;
          Alcotest.test_case "responsible class" `Quick test_loid_responsible_class;
          Alcotest.test_case "public key in identity" `Quick
            test_loid_equality_covers_key;
          Alcotest.test_case "table" `Quick test_loid_table;
          Alcotest.test_case "map and set" `Quick test_loid_map_set;
          QCheck_alcotest.to_alcotest loid_roundtrip;
        ] );
      ( "address",
        [
          Alcotest.test_case "empty rejected" `Quick test_address_empty_rejected;
          Alcotest.test_case "semantics resolve targets" `Quick test_address_targets;
          Alcotest.test_case "address type tags" `Quick test_address_types;
          QCheck_alcotest.to_alcotest address_roundtrip;
        ] );
      ( "binding",
        [
          Alcotest.test_case "validity and expiry" `Quick test_binding_validity;
          QCheck_alcotest.to_alcotest binding_roundtrip;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit and miss accounting" `Quick test_cache_hit_miss;
          Alcotest.test_case "expiry" `Quick test_cache_expiry;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru;
          Alcotest.test_case "replace does not evict" `Quick test_cache_replace_no_evict;
          Alcotest.test_case "zero capacity" `Quick test_cache_zero_capacity;
          Alcotest.test_case "invalidation forms" `Quick test_cache_invalidate;
          Alcotest.test_case "clear resets statistics" `Quick
            test_cache_clear_resets_stats;
          Alcotest.test_case "mem purges and counts nothing" `Quick
            test_cache_mem_purges_and_counts_nothing;
          Alcotest.test_case "find_refresh (GetBinding refresh form)" `Quick
            test_cache_find_refresh;
          QCheck_alcotest.to_alcotest cache_never_exceeds_capacity;
          QCheck_alcotest.to_alcotest cache_never_returns_expired;
          QCheck_alcotest.to_alcotest cache_stats_invariants;
        ] );
    ]

let _ = ignore (addr_t, binding_t)
