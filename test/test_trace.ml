(* Trace-assertion tests for the §4.1 binding protocol: the cold,
   warm and stale-binding sequences of Fig. 17 checked as structured
   event subsequences on a two-site system, plus unit tests for the
   Trace combinators and the Recorder ring buffer.

   The protocol assertions are sequence-shaped, not timing-shaped, so
   they hold for any seed; LEGION_TRACE_SEED (see test/dune) sweeps the
   boot seed to back that up. *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module System = Legion.System
module Api = Legion.Api
module Event = Legion_obs.Event
module Recorder = Legion_obs.Recorder
module Trace = Legion_obs.Trace
module H = Helpers

let seed =
  match Sys.getenv_opt "LEGION_TRACE_SEED" with
  | Some s -> Int64.of_string s
  | None -> 42L

let setup () =
  let sys = H.boot_two_sites ~seed () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let obj = Api.create_object_exn sys ctx ~cls () in
  (sys, ctx, obj)

let ok_or_fail label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (Err.to_string e)

let assert_holds m events =
  match Trace.explain m events with
  | None -> ()
  | Some msg ->
      Alcotest.failf "trace mismatch: %s\ntrace was:\n%s" msg
        (String.concat "\n"
           (List.map (fun e -> Format.asprintf "  %a" Event.pp e) events))

(* §4.1/Fig. 17 cold path: nobody has the binding, so the reference
   walks comm layer -> Binding Agent -> class, activates the inert
   object, installs the fresh binding and only then performs the call. *)
let test_cold_path () =
  let sys, ctx, obj = setup () in
  let obs = System.obs sys in
  let client = Runtime.proc_loid ctx.Runtime.self in
  let agent = (System.site sys 0).System.agent in
  Recorder.clear obs;
  let v = ok_or_fail "cold Get" (Api.call sys ctx ~dst:obj ~meth:"Get" ~args:[]) in
  Alcotest.(check int) "fresh counter reads 0" 0 (H.int_exn v);
  let events = Recorder.events obs in
  assert_holds
    Trace.(
      within 5.0
        (seq
           [
             matches ~label:"client comm-layer miss"
               (cache_miss ~owner:client ~target:obj ());
             matches ~label:"client resolves via its agent"
               (resolve ~owner:client ~target:obj ~stale:false ());
             matches ~label:"GetBinding reaches the agent"
               (call ~src:client ~meth:"GetBinding" ());
             matches ~label:"agent misses too"
               (cache_miss ~owner:agent ~target:obj ());
             matches ~label:"object activates" (activate ~loid:obj ());
             matches ~label:"client installs the binding"
               (binding_install ~owner:client ~target:obj ());
             matches ~label:"the real call"
               (call ~src:client ~dst:obj ~meth:"Get" ());
             matches ~label:"delivered" (deliver ());
             matches ~label:"ok reply" (reply ~ok:true ());
           ]))
    events;
  Alcotest.(check int) "no client cache hit on a cold path" 0
    (Trace.count_of (Trace.cache_hit ~owner:client ()) events);
  Alcotest.(check int) "no rebind on a cold path" 0
    (Trace.count_of (Trace.rebind ()) events)

(* §5.1: with a warm client cache the whole exchange is two messages —
   no resolution machinery runs at all. *)
let test_warm_path () =
  let sys, ctx, obj = setup () in
  let obs = System.obs sys in
  let client = Runtime.proc_loid ctx.Runtime.self in
  ignore (ok_or_fail "first Get" (Api.call sys ctx ~dst:obj ~meth:"Get" ~args:[]));
  Recorder.clear obs;
  ignore (ok_or_fail "warm Get" (Api.call sys ctx ~dst:obj ~meth:"Get" ~args:[]));
  let events = Recorder.events obs in
  assert_holds
    Trace.(
      seq
        [
          matches ~label:"client cache hit"
            (cache_hit ~owner:client ~target:obj ());
          matches ~label:"direct call" (call ~src:client ~dst:obj ~meth:"Get" ());
          matches ~label:"delivered" (deliver ());
          matches ~label:"ok reply" (reply ~ok:true ());
        ])
    events;
  Alcotest.(check int) "no resolution" 0
    (Trace.count_of (Trace.resolve ()) events);
  Alcotest.(check int) "no cache miss anywhere" 0
    (Trace.count_of (Trace.cache_miss ()) events);
  Alcotest.(check int) "two messages with a warm client cache" 2
    (Trace.count_of (Trace.send ()) events)

(* §4.1.4/§5.3 stale binding: the object went inert, the cached binding
   points at a dead placement; the comm layer sees the delivery failure,
   refreshes through the agent (GetBinding stale form), the object
   reactivates and the retried call succeeds with saved state. *)
let test_stale_binding_rebind () =
  let sys, ctx, obj = setup () in
  let obs = System.obs sys in
  let client = Runtime.proc_loid ctx.Runtime.self in
  ignore
    (ok_or_fail "increment"
       (Api.call sys ctx ~dst:obj ~meth:"Increment" ~args:[ Value.Int 7 ]));
  (* Whichever Magistrate holds the placement deactivates it; the others
     refuse harmlessly. *)
  List.iter
    (fun m ->
      ignore (Api.call sys ctx ~dst:m ~meth:"Deactivate" ~args:[ Loid.to_value obj ]))
    (System.magistrates sys);
  Alcotest.(check bool) "object is inert" true
    (Runtime.find_proc (System.rt sys) obj = None);
  Recorder.clear obs;
  let v = ok_or_fail "Get after deactivation" (Api.call sys ctx ~dst:obj ~meth:"Get" ~args:[]) in
  Alcotest.(check int) "state survived deactivation" 7 (H.int_exn v);
  let events = Recorder.events obs in
  assert_holds
    Trace.(
      seq
        [
          matches ~label:"stale binding served from cache"
            (cache_hit ~owner:client ~target:obj ());
          matches ~label:"call against the stale binding"
            (call ~src:client ~dst:obj ~meth:"Get" ());
          matches ~label:"delivery failure comes back" (reply ~ok:false ());
          matches ~label:"rebind-and-retry kicks in"
            (rebind ~owner:client ~target:obj ~attempt:1 ());
          matches ~label:"refresh resolution carries the stale binding"
            (resolve ~owner:client ~target:obj ~stale:true ());
          matches ~label:"object reactivates" (activate ~loid:obj ());
          matches ~label:"fresh binding installed"
            (binding_install ~owner:client ~target:obj ());
          matches ~label:"retried call"
            (call ~src:client ~dst:obj ~meth:"Get" ());
          matches ~label:"ok reply" (reply ~ok:true ());
        ])
    events

(* --- combinator semantics on a synthetic trace --- *)

let l1 = Loid.make ~class_id:7L ~class_specific:1L ()
let l2 = Loid.make ~class_id:7L ~class_specific:2L ()
let ev t kind = { Event.time = t; host = None; site = None; kind }

let synthetic =
  [
    ev 0.0 (Event.Cache_miss { owner = l1; target = l2 });
    ev 1.0 (Event.Send { src = 0; dst = 1; bytes = 10; tier = Event.Intra_site });
    ev 2.0 (Event.Deliver { src = 0; dst = 1 });
    ev 3.0 (Event.Reply { id = 1; ok = true });
  ]

let test_combinators () =
  let open Trace in
  (* Order is enforced: Deliver cannot precede Send. *)
  Alcotest.(check bool) "in order" true
    (holds (seq [ matches (send ()); matches (deliver ()) ]) synthetic);
  Alcotest.(check bool) "out of order fails" false
    (holds (seq [ matches (deliver ()); matches (send ()) ]) synthetic);
  (* [next] is strict where [matches] skips. *)
  Alcotest.(check bool) "matches skips" true
    (holds (then_ (matches (send ())) (matches (reply ()))) synthetic);
  Alcotest.(check bool) "next does not skip" false
    (holds (then_ (matches (send ())) (next (reply ()))) synthetic);
  Alcotest.(check bool) "next accepts the adjacent event" true
    (holds (then_ (matches (send ())) (next (deliver ()))) synthetic);
  (* [within] bounds the matched span, not the whole trace. *)
  let span = seq [ matches (send ()); matches (reply ()) ] in
  Alcotest.(check bool) "within passes" true (holds (within 2.0 span) synthetic);
  Alcotest.(check bool) "within fails when exceeded" false
    (holds (within 1.5 span) synthetic);
  (* Failure messages carry the step label. *)
  (match explain (matches ~label:"a Drop event" (drop ())) synthetic with
  | Some msg ->
      Alcotest.(check bool) "label in message" true
        (String.length msg > 0
        && Option.is_some
             (String.index_opt msg 'D' |> Option.map (fun _ -> ()))
        &&
        let sub = "a Drop event" in
        let rec contains i =
          i + String.length sub <= String.length msg
          && (String.sub msg i (String.length sub) = sub || contains (i + 1))
        in
        contains 0)
  | None -> Alcotest.fail "expected a failure");
  (* Queries. *)
  Alcotest.(check int) "count_of" 1 (count_of (send ()) synthetic);
  Alcotest.(check int) "count_of negation" 3 (count_of (not_ (send ())) synthetic);
  Alcotest.(check bool) "find" true
    (match find (reply ~ok:true ()) synthetic with
    | Some e -> e.Event.time = 3.0
    | None -> false);
  Alcotest.(check bool) "predicate conjunction" true
    (holds (matches (send () &&& fun e -> e.Event.time > 0.5)) synthetic);
  Alcotest.(check bool) "run returns matched events" true
    (match run (seq [ matches (send ()); matches (deliver ()) ]) synthetic with
    | Ok [ a; b ] -> a.Event.time = 1.0 && b.Event.time = 2.0
    | _ -> false)

(* --- recorder mechanics --- *)

let test_recorder_ring () =
  let clock = ref 0.0 in
  let r = Recorder.create ~capacity:4 ~clock:(fun () -> !clock) () in
  for i = 1 to 10 do
    clock := float_of_int i;
    Recorder.emit r (Event.Timeout { id = i })
  done;
  Alcotest.(check int) "total counts everything" 10 (Recorder.total r);
  Alcotest.(check int) "ring retains capacity" 4 (Recorder.retained r);
  Alcotest.(check int) "overwritten" 6 (Recorder.overwritten r);
  let ids =
    List.map
      (fun e -> match e.Event.kind with Event.Timeout { id } -> id | _ -> -1)
      (Recorder.events r)
  in
  Alcotest.(check (list int)) "newest four, oldest first" [ 7; 8; 9; 10 ] ids;
  Alcotest.(check int) "events_since a live mark" 2
    (List.length (Recorder.events_since r 8));
  Alcotest.(check int) "events_since a forgotten mark" 4
    (List.length (Recorder.events_since r 2));
  Recorder.set_enabled r false;
  Recorder.emit r (Event.Timeout { id = 11 });
  Alcotest.(check int) "disabled drops emissions" 10 (Recorder.total r);
  Recorder.set_enabled r true;
  Recorder.clear r;
  Alcotest.(check int) "clear empties the ring" 0
    (List.length (Recorder.events r));
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Recorder.create: capacity must be positive") (fun () ->
      ignore (Recorder.create ~capacity:0 ~clock:(fun () -> 0.0) ()))

let test_recorder_latency () =
  let r = Recorder.create ~clock:(fun () -> 0.0) () in
  Alcotest.(check bool) "no histogram before observe" true
    (Recorder.latency r ~component:"rt.invoke" = None);
  Recorder.observe r ~component:"rt.invoke" 0.002;
  Recorder.observe r ~component:"rt.invoke" 0.2;
  Recorder.observe r ~component:"net.delay" 1e-4;
  (match Recorder.latency r ~component:"rt.invoke" with
  | Some h -> Alcotest.(check int) "two samples" 2 (Legion_util.Stats.Histogram.total h)
  | None -> Alcotest.fail "histogram missing");
  Alcotest.(check (list string)) "sorted components"
    [ "net.delay"; "rt.invoke" ]
    (List.map fst (Recorder.latencies r))

let test_system_observes_latency () =
  let sys, ctx, obj = setup () in
  ignore (ok_or_fail "Get" (Api.call sys ctx ~dst:obj ~meth:"Get" ~args:[]));
  let obs = System.obs sys in
  List.iter
    (fun component ->
      match Recorder.latency obs ~component with
      | Some h ->
          Alcotest.(check bool)
            (component ^ " has samples")
            true
            (Legion_util.Stats.Histogram.total h > 0)
      | None -> Alcotest.failf "no %s histogram" component)
    [ "net.delay"; "rt.invoke"; "rt.resolve" ]

let test_event_json () =
  let e =
    {
      Event.time = 0.25;
      host = Some 3;
      site = Some 1;
      kind = Event.Send { src = 3; dst = 4; bytes = 17; tier = Event.Inter_site };
    }
  in
  Alcotest.(check string) "json shape"
    "{\"t\":0.25,\"host\":3,\"site\":1,\"ev\":\"Send\",\"src\":3,\"dst\":4,\"bytes\":17,\"tier\":\"wan\"}"
    (Event.to_json e);
  let quoted =
    Event.to_json
      (ev 1.0 (Event.Call { id = 1; src = l1; dst = l2; meth = "a\"b\n" }))
  in
  Alcotest.(check bool) "strings escaped" true
    (let sub = "a\\\"b\\n" in
     let rec contains i =
       i + String.length sub <= String.length quoted
       && (String.sub quoted i (String.length sub) = sub || contains (i + 1))
     in
     contains 0)

let () =
  Alcotest.run "trace"
    [
      ( "protocol",
        [
          Alcotest.test_case "cold path (Fig. 17)" `Quick test_cold_path;
          Alcotest.test_case "warm path (2 messages)" `Quick test_warm_path;
          Alcotest.test_case "stale binding rebind (§4.1.4)" `Quick
            test_stale_binding_rebind;
        ] );
      ( "combinators",
        [ Alcotest.test_case "sequence semantics" `Quick test_combinators ] );
      ( "recorder",
        [
          Alcotest.test_case "ring buffer" `Quick test_recorder_ring;
          Alcotest.test_case "latency histograms" `Quick test_recorder_latency;
          Alcotest.test_case "system latency components" `Quick
            test_system_observes_latency;
          Alcotest.test_case "event json" `Quick test_event_json;
        ] );
    ]
