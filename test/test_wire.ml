(* Tests for the Legion data model and its binary codec. *)

module Value = Legion_wire.Value
module Codec = Legion_wire.Codec

let value_t : Value.t Alcotest.testable = Alcotest.testable Value.pp Value.equal

(* A sized generator of arbitrary values for the round-trip properties. *)
let value_gen : Value.t QCheck.Gen.t =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          let scalar =
            oneof
              [
                return Value.Unit;
                map (fun b -> Value.Bool b) bool;
                map (fun i -> Value.Int i) int;
                map (fun i -> Value.I64 i) int64;
                (* NaN breaks equality; generate finite floats. *)
                map (fun f -> Value.Float f) (float_bound_exclusive 1e12);
                map (fun s -> Value.Str s) (string_size (0 -- 12));
                map (fun s -> Value.Blob s) (string_size (0 -- 12));
              ]
          in
          if n <= 1 then scalar
          else
            frequency
              [
                (3, scalar);
                (1, map (fun vs -> Value.List vs) (list_size (0 -- 4) (self (n / 2))));
                ( 1,
                  map
                    (fun vs ->
                      Value.Record
                        (List.mapi (fun i v -> (Printf.sprintf "f%d" i, v)) vs))
                    (list_size (0 -- 4) (self (n / 2))) );
              ])
        (min n 12))

let arbitrary_value = QCheck.make ~print:Value.to_string value_gen

let roundtrip =
  QCheck.Test.make ~name:"decode (encode v) = v" ~count:500 arbitrary_value
    (fun v ->
      match Codec.decode (Codec.encode v) with
      | Ok v' -> Value.equal v v'
      | Error _ -> false)

let size_matches =
  QCheck.Test.make ~name:"size_bytes = |encode v|" ~count:500 arbitrary_value
    (fun v -> Value.size_bytes v = String.length (Codec.encode v))

let decode_never_raises =
  QCheck.Test.make ~name:"decode of garbage never raises" ~count:500
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s ->
      match Codec.decode s with Ok _ | Error _ -> true)

(* Mutation fuzz: flip one byte of a valid encoding — decode must fail
   cleanly or succeed on a different value, never raise. *)
let decode_mutation_robust =
  QCheck.Test.make ~name:"decode survives single-byte corruption" ~count:500
    QCheck.(triple arbitrary_value small_nat (int_bound 255))
    (fun (v, pos, byte) ->
      let enc = Bytes.of_string (Codec.encode v) in
      if Bytes.length enc = 0 then true
      else begin
        let pos = pos mod Bytes.length enc in
        Bytes.set enc pos (Char.chr byte);
        match Codec.decode (Bytes.to_string enc) with
        | Ok _ | Error _ -> true
      end)

let pp_total =
  QCheck.Test.make ~name:"pp never raises" ~count:300 arbitrary_value
    (fun v -> String.length (Value.to_string v) >= 0)

let compare_consistent_with_equal =
  QCheck.Test.make ~name:"compare = 0 iff equal" ~count:300
    QCheck.(pair arbitrary_value arbitrary_value)
    (fun (a, b) -> Value.equal a b = (Value.compare a b = 0))

let test_scalar_roundtrips () =
  List.iter
    (fun v ->
      match Codec.decode (Codec.encode v) with
      | Ok v' -> Alcotest.check value_t "roundtrip" v v'
      | Error e -> Alcotest.failf "decode failed: %s" e)
    [
      Value.Unit;
      Value.Bool true;
      Value.Bool false;
      Value.Int 0;
      Value.Int (-1);
      Value.Int max_int;
      Value.Int min_int;
      Value.I64 Int64.max_int;
      Value.I64 Int64.min_int;
      Value.Float 0.0;
      Value.Float (-3.25);
      Value.Float infinity;
      Value.Str "";
      Value.Str "héllo";
      Value.Blob (String.init 256 Char.chr);
      Value.List [];
      Value.Record [];
      Value.Record [ ("a", Value.List [ Value.Int 1; Value.Str "x" ]) ];
    ]

let test_truncated_fails () =
  let enc = Codec.encode (Value.Str "hello world") in
  for cut = 0 to String.length enc - 1 do
    match Codec.decode (String.sub enc 0 cut) with
    | Ok _ -> Alcotest.failf "truncation at %d decoded" cut
    | Error _ -> ()
  done

let test_trailing_fails () =
  let enc = Codec.encode Value.Unit ^ "x" in
  match Codec.decode enc with
  | Ok _ -> Alcotest.fail "trailing bytes accepted"
  | Error msg ->
      Alcotest.(check bool) "mentions trailing" true
        (String.length msg > 0)

let test_unknown_tag_fails () =
  match Codec.decode "\xff" with
  | Ok _ -> Alcotest.fail "unknown tag accepted"
  | Error _ -> ()

let test_deep_nesting_rejected () =
  (* A crafted buffer of 100k nested list headers must fail cleanly,
     not blow the stack. *)
  let buf = Buffer.create 600_000 in
  for _ = 1 to 100_000 do
    Buffer.add_string buf "\x07\x00\x00\x00\x01"
  done;
  Buffer.add_char buf '\x00';
  (match Codec.decode (Buffer.contents buf) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "absurd nesting accepted");
  (* Moderate nesting still decodes. *)
  let rec nest n v = if n = 0 then v else nest (n - 1) (Value.List [ v ]) in
  let v = nest 100 Value.Unit in
  match Codec.decode (Codec.encode v) with
  | Ok v' -> Alcotest.(check bool) "100 levels ok" true (Value.equal v v')
  | Error e -> Alcotest.failf "100 levels rejected: %s" e

let test_record_duplicate_rejected () =
  Alcotest.check_raises "duplicate field"
    (Invalid_argument "Value.record: duplicate field names") (fun () ->
      ignore (Value.record [ ("a", Value.Unit); ("a", Value.Int 1) ]))

let test_accessors () =
  Alcotest.(check bool) "to_int ok" true (Value.to_int (Value.Int 3) = Ok 3);
  Alcotest.(check bool) "to_int wrong" true
    (Result.is_error (Value.to_int Value.Unit));
  Alcotest.(check bool) "field ok" true
    (Value.field (Value.Record [ ("x", Value.Int 1) ]) "x" = Ok (Value.Int 1));
  Alcotest.(check bool) "field missing" true
    (Result.is_error (Value.field (Value.Record []) "x"));
  Alcotest.(check bool) "field on non-record" true
    (Result.is_error (Value.field Value.Unit "x"));
  Alcotest.(check bool) "to_list" true
    (Value.to_list Value.to_int (Value.List [ Value.Int 1; Value.Int 2 ])
    = Ok [ 1; 2 ]);
  Alcotest.(check bool) "to_list inner failure" true
    (Result.is_error (Value.to_list Value.to_int (Value.List [ Value.Unit ])));
  Alcotest.(check bool) "option none" true
    (Value.to_option Value.to_int (Value.List []) = Ok None);
  Alcotest.(check bool) "option some" true
    (Value.to_option Value.to_int (Value.List [ Value.Int 5 ]) = Ok (Some 5))

let test_of_option_roundtrip () =
  let v = Value.of_option Value.of_int (Some 3) in
  Alcotest.(check bool) "some" true (Value.to_option Value.to_int v = Ok (Some 3));
  let v = Value.of_option Value.of_int None in
  Alcotest.(check bool) "none" true (Value.to_option Value.to_int v = Ok None)

let test_depth () =
  Alcotest.(check int) "scalar" 1 (Value.depth Value.Unit);
  Alcotest.(check int) "nested" 3
    (Value.depth (Value.List [ Value.Record [ ("a", Value.Int 1) ] ]))

(* --- the error taxonomy: every variant survives the wire --- *)

module Err = Legion_rt.Err

let err_t : Err.t Alcotest.testable =
  Alcotest.testable (fun ppf e -> Err.pp ppf e) Err.equal

(* A generator covering the ENTIRE taxonomy — adding a variant without
   extending this generator is a compile error only if the match below
   is kept total, so it enumerates constructors explicitly. *)
let err_gen : Err.t QCheck.Gen.t =
  let open QCheck.Gen in
  let s = string_size (0 -- 16) in
  (* retry hints travel as Float; keep them finite and exact. *)
  let ra = map (fun i -> float_of_int i /. 8.0) (int_bound 800) in
  oneof
    [
      return Err.No_such_object;
      map (fun d -> Err.No_such_method d) s;
      map (fun d -> Err.Refused d) s;
      map (fun d -> Err.Bad_args d) s;
      map (fun d -> Err.Not_bound d) s;
      return Err.Timeout;
      map (fun d -> Err.Unreachable d) s;
      return Err.Stale_epoch;
      map (fun r -> Err.Overloaded { retry_after = r }) ra;
      map3
        (fun h n e -> Err.No_quorum { have = h; need = n; epoch = e })
        (int_bound 9) (int_bound 9) (int_bound 99);
      map2
        (fun h r -> Err.Txn_locked { holder = h; retry_after = r })
        s ra;
      map (fun x -> Err.Txn_aborted { txn = x }) s;
      map2
        (fun t r -> Err.Quota_exceeded { tenant = t; retry_after = r })
        s ra;
      map2 (fun t d -> Err.Denied { tenant = t; reason = d }) s s;
      map (fun d -> Err.Internal d) s;
    ]

(* --- checksummed envelope (CRC-32 framing) --- *)

module Envelope = Legion_wire.Envelope

let envelope_roundtrip =
  QCheck.Test.make ~name:"unseal (seal v) = Ok v" ~count:500 arbitrary_value
    (fun v ->
      match Envelope.unseal (Envelope.seal v) with
      | Ok v' -> Value.equal v v'
      | Error _ -> false)

(* The integrity guarantee behind the corruption fault: ANY single-byte
   change — header or body — must be rejected, fail-closed, without an
   exception. (CRC-32 detects all single-byte errors; a flip in the
   stored checksum itself just mismatches the recomputed one.) *)
let envelope_rejects_mutation =
  QCheck.Test.make ~name:"unseal rejects any single-byte mutation" ~count:500
    QCheck.(triple arbitrary_value small_nat (int_bound 255))
    (fun (v, pos, byte) ->
      let sealed = Bytes.of_string (Envelope.seal v) in
      let pos = pos mod Bytes.length sealed in
      if Bytes.get sealed pos = Char.chr byte then true
      else begin
        Bytes.set sealed pos (Char.chr byte);
        match Envelope.unseal (Bytes.to_string sealed) with
        | Error _ -> true
        | Ok _ -> false
      end)

let envelope_rejects_truncation =
  QCheck.Test.make ~name:"unseal rejects any truncation" ~count:500
    QCheck.(pair arbitrary_value small_nat)
    (fun (v, cut) ->
      let sealed = Envelope.seal v in
      let keep = cut mod String.length sealed in
      match Envelope.unseal (String.sub sealed 0 keep) with
      | Error _ -> true
      | Ok _ -> false)

let envelope_garbage_total =
  QCheck.Test.make ~name:"unseal of garbage never raises" ~count:500
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s -> match Envelope.unseal s with Ok _ | Error _ -> true)

let test_envelope_crc_vector () =
  (* The classic IEEE 802.3 check vector pins the polynomial and
     reflection conventions. *)
  Alcotest.(check int32) "crc32(\"123456789\")" 0xCBF43926l
    (Envelope.crc32 "123456789");
  Alcotest.(check int) "header size" 4 Envelope.header_bytes

let arbitrary_err = QCheck.make ~print:Err.to_string err_gen

let err_value_roundtrip =
  QCheck.Test.make ~name:"Err.of_value (to_value e) = e" ~count:500
    arbitrary_err (fun e ->
      match Err.of_value (Err.to_value e) with
      | Ok e' -> Err.equal e e'
      | Error _ -> false)

(* The full path a remote error reply actually takes: struct -> value ->
   bytes -> value -> struct. *)
let err_codec_roundtrip =
  QCheck.Test.make ~name:"Err survives encode/decode" ~count:500
    arbitrary_err (fun e ->
      match Codec.decode (Codec.encode (Err.to_value e)) with
      | Error _ -> false
      | Ok v -> (
          match Err.of_value v with
          | Ok e' -> Err.equal e e'
          | Error _ -> false))

(* Pre-upgrade peers encode with fields missing; each legacy shape must
   decode to the documented default, not fail the call. *)
let test_err_legacy_decodes () =
  let check name v expected =
    match Err.of_value v with
    | Ok e -> Alcotest.check err_t name expected e
    | Error msg -> Alcotest.failf "%s failed to decode: %s" name msg
  in
  check "nqm without epoch"
    (Value.Record
       [ ("c", Value.Str "nqm"); ("h", Value.Int 1); ("n", Value.Int 3) ])
    (Err.No_quorum { have = 1; need = 3; epoch = 0 });
  check "tlk without holder or hint"
    (Value.Record [ ("c", Value.Str "tlk") ])
    (Err.Txn_locked { holder = ""; retry_after = 0.0 });
  check "tlk with holder only"
    (Value.Record [ ("c", Value.Str "tlk"); ("h", Value.Str "t9") ])
    (Err.Txn_locked { holder = "t9"; retry_after = 0.0 });
  check "txa without txn id"
    (Value.Record [ ("c", Value.Str "txa") ])
    (Err.Txn_aborted { txn = "" });
  check "qex without tenant or hint"
    (Value.Record [ ("c", Value.Str "qex") ])
    (Err.Quota_exceeded { tenant = ""; retry_after = 0.0 });
  check "dny without tenant or reason"
    (Value.Record [ ("c", Value.Str "dny") ])
    (Err.Denied { tenant = ""; reason = "" });
  (* Unknown codes from a newer peer are an error, not a crash. *)
  (match Err.of_value (Value.Record [ ("c", Value.Str "zzz") ]) with
  | Error _ -> ()
  | Ok e -> Alcotest.failf "unknown code decoded as %s" (Err.to_string e));
  (* A non-record is an error, not a crash. *)
  match Err.of_value (Value.Int 3) with
  | Error _ -> ()
  | Ok e -> Alcotest.failf "non-record decoded as %s" (Err.to_string e)

let test_err_classification () =
  Alcotest.(check bool) "lock rejection retryable" true
    (Err.is_retryable (Err.Txn_locked { holder = "t"; retry_after = 0.1 }));
  Alcotest.(check bool) "abort verdict not retryable" false
    (Err.is_retryable (Err.Txn_aborted { txn = "t" }));
  Alcotest.(check bool) "lock is not a delivery failure" false
    (Err.is_delivery_failure
       (Err.Txn_locked { holder = "t"; retry_after = 0.1 }));
  Alcotest.(check (option (float 1e-9))) "lock carries its retry hint"
    (Some 0.25)
    (Err.retry_after (Err.Txn_locked { holder = "t"; retry_after = 0.25 }));
  Alcotest.(check bool) "quota shed retryable" true
    (Err.is_retryable (Err.Quota_exceeded { tenant = "m"; retry_after = 0.1 }));
  Alcotest.(check bool) "quota shed is overload, not delivery failure" true
    (Err.is_overload (Err.Quota_exceeded { tenant = "m"; retry_after = 0.1 })
    && not
         (Err.is_delivery_failure
            (Err.Quota_exceeded { tenant = "m"; retry_after = 0.1 })));
  Alcotest.(check (option (float 1e-9))) "quota shed carries its retry hint"
    (Some 0.5)
    (Err.retry_after (Err.Quota_exceeded { tenant = "m"; retry_after = 0.5 }));
  Alcotest.(check bool) "policy denial terminal" false
    (Err.is_retryable (Err.Denied { tenant = "e"; reason = "policy" })
    || Err.is_delivery_failure (Err.Denied { tenant = "e"; reason = "policy" }))

let () =
  Alcotest.run "wire"
    [
      ( "codec",
        [
          Alcotest.test_case "scalar roundtrips" `Quick test_scalar_roundtrips;
          Alcotest.test_case "truncated input fails" `Quick test_truncated_fails;
          Alcotest.test_case "trailing bytes fail" `Quick test_trailing_fails;
          Alcotest.test_case "unknown tag fails" `Quick test_unknown_tag_fails;
          Alcotest.test_case "deep nesting rejected" `Quick test_deep_nesting_rejected;
          QCheck_alcotest.to_alcotest roundtrip;
          QCheck_alcotest.to_alcotest size_matches;
          QCheck_alcotest.to_alcotest decode_never_raises;
          QCheck_alcotest.to_alcotest decode_mutation_robust;
        ] );
      ( "value",
        [
          Alcotest.test_case "duplicate record fields" `Quick
            test_record_duplicate_rejected;
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "option encoding" `Quick test_of_option_roundtrip;
          Alcotest.test_case "depth" `Quick test_depth;
          QCheck_alcotest.to_alcotest compare_consistent_with_equal;
          QCheck_alcotest.to_alcotest pp_total;
        ] );
      ( "envelope",
        [
          Alcotest.test_case "CRC-32 check vector" `Quick
            test_envelope_crc_vector;
          QCheck_alcotest.to_alcotest envelope_roundtrip;
          QCheck_alcotest.to_alcotest envelope_rejects_mutation;
          QCheck_alcotest.to_alcotest envelope_rejects_truncation;
          QCheck_alcotest.to_alcotest envelope_garbage_total;
        ] );
      ( "errors",
        [
          Alcotest.test_case "legacy encodings decode" `Quick
            test_err_legacy_decodes;
          Alcotest.test_case "retryability classification" `Quick
            test_err_classification;
          QCheck_alcotest.to_alcotest err_value_roundtrip;
          QCheck_alcotest.to_alcotest err_codec_roundtrip;
        ] );
    ]
