(* Atomic multi-object invocations (PR 8): 2PC and saga commit /
   abort / compensation, prepare-lock contention, epoch-fenced abort
   votes, the Persistent version-history invariants, and coordinator
   crash-recovery resuming a durable commit decision. *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Recorder = Legion_obs.Recorder
module Trace = Legion_obs.Trace
module Persistent = Legion_store.Persistent
module Disk = Legion_store.Disk
module Participant = Legion_txn.Participant
module Coordinator = Legion_txn.Coordinator
module System = Legion.System
module Api = Legion.Api
open Helpers

(* Transaction outcomes are protocol-shaped, not timing-shaped: they
   must hold for any boot seed. LEGION_TRACE_SEED (swept by test/dune)
   shifts every seed in the file. *)
let base_seed =
  match Sys.getenv_opt "LEGION_TRACE_SEED" with
  | Some s -> Int64.of_string s
  | None -> 23L

let boot ?(seed = base_seed) () = boot_two_sites ~seed ()

let counter_txn_units = [ counter_unit; Participant.unit_name ]

let derive_participant_class sys ctx =
  Api.derive_class_exn sys ctx ~parent:Legion_core.Well_known.legion_object
    ~name:"TxnCounter" ~units:counter_txn_units ()

let derive_coord_class sys ctx =
  Api.derive_class_exn sys ctx ~parent:Legion_core.Well_known.legion_object
    ~name:"TxnCoordinator" ~units:[ Coordinator.unit_name ] ()

let configure_store sys ctx co store =
  match
    Api.call sys ctx ~dst:co ~meth:"Configure"
      ~args:[ Value.Record [ ("store", Value.Str store) ] ]
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "Configure failed: %s" (Err.to_string e)

let step ?(cmeth = "") ?(cargs = []) dst meth args =
  Value.Record
    [
      ("dst", Loid.to_value dst);
      ("meth", Value.Str meth);
      ("args", Value.List args);
      ("cmeth", Value.Str cmeth);
      ("cargs", Value.List cargs);
    ]

let txn_run sys ctx co ~mode steps =
  Api.call sys ctx ~dst:co ~meth:"TxnRun"
    ~args:[ Value.Str mode; Value.List steps ]

let get sys ctx o = int_exn (Api.call_exn sys ctx ~dst:o ~meth:"Get" ~args:[])

let held sys ctx o =
  match Api.call_exn sys ctx ~dst:o ~meth:"TxnHeld" ~args:[] with
  | Value.List [] -> None
  | Value.List [ Value.Str t ] -> Some t
  | v -> Alcotest.failf "TxnHeld: unexpected %s" (Value.to_string v)

(* The E20-style audit primitive: every history entry the txn wrote,
   across the given participants, carries the same final mark. *)
let check_marks store ~txn ~participants mark =
  List.iter
    (fun loid ->
      let entries =
        List.filter
          (fun (e : Persistent.History.entry) -> e.txn = Some txn)
          (Persistent.history store ~loid)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s has entries under %s" (Loid.to_string loid) txn)
        true (entries <> []);
      List.iter
        (fun (e : Persistent.History.entry) ->
          Alcotest.(check string)
            (Printf.sprintf "mark of %s v%d" (Loid.to_string loid) e.version)
            (Persistent.mark_name mark)
            (Persistent.mark_name e.mark))
        entries)
    participants

let stat sys ctx co name =
  match Api.call_exn sys ctx ~dst:co ~meth:"TxnStats" ~args:[] with
  | Value.Record fields -> (
      match List.assoc_opt name fields with
      | Some (Value.Int i) -> i
      | _ -> Alcotest.failf "TxnStats: missing %s" name)
  | v -> Alcotest.failf "TxnStats: unexpected %s" (Value.to_string v)

(* --- 2PC: all-or-nothing over distinct participants --- *)

let test_two_phase_commit () =
  let sys = boot () in
  let ctx = System.client sys () in
  let obs = System.obs sys in
  let cls = derive_participant_class sys ctx in
  let coord_cls = derive_coord_class sys ctx in
  let a = Api.create_object_exn sys ctx ~cls ~eager:true () in
  let b = Api.create_object_exn sys ctx ~cls ~eager:true () in
  let co = Api.create_object_exn sys ctx ~cls:coord_cls ~eager:true () in
  configure_store sys ctx co "uva";
  let mark = Recorder.total obs in
  let id =
    match
      txn_run sys ctx co ~mode:"2pc"
        [
          step a "Increment" [ Value.Int 5 ];
          step b "Increment" [ Value.Int 7 ];
        ]
    with
    | Ok (Value.Str id) -> id
    | Ok v -> Alcotest.failf "TxnRun: unexpected %s" (Value.to_string v)
    | Error e -> Alcotest.failf "TxnRun failed: %s" (Err.to_string e)
  in
  (* Commit acknowledgements drain after the client reply. *)
  System.run_for sys 3.0;
  Alcotest.(check int) "a incremented" 5 (get sys ctx a);
  Alcotest.(check int) "b incremented" 7 (get sys ctx b);
  Alcotest.(check (option string)) "a lock released" None (held sys ctx a);
  Alcotest.(check (option string)) "b lock released" None (held sys ctx b);
  let store = (System.site sys 0).System.storage in
  check_marks store ~txn:id ~participants:[ a; b ] Persistent.Committed;
  Alcotest.(check int) "committed counter" 1 (stat sys ctx co "committed");
  Alcotest.(check int) "nothing in doubt" 0 (stat sys ctx co "indoubt");
  let events = Recorder.events_since obs mark in
  Alcotest.(check int) "both participants prepared" 2
    (Trace.count_of (Trace.prepare ~txn:id ()) events);
  Alcotest.(check bool) "commit traced" true
    (List.exists (Trace.txn_commit ~txn:id ()) events)

let test_two_phase_abort () =
  let sys = boot ~seed:(Int64.add base_seed 1L) () in
  let ctx = System.client sys () in
  let obs = System.obs sys in
  let cls = derive_participant_class sys ctx in
  let coord_cls = derive_coord_class sys ctx in
  let a = Api.create_object_exn sys ctx ~cls ~eager:true () in
  let b = Api.create_object_exn sys ctx ~cls ~eager:true () in
  let co = Api.create_object_exn sys ctx ~cls:coord_cls ~eager:true () in
  configure_store sys ctx co "uva";
  let mark = Recorder.total obs in
  let id =
    match
      txn_run sys ctx co ~mode:"2pc"
        [
          step a "Increment" [ Value.Int 5 ];
          (* b cannot stage an unknown method: a no vote at prepare,
             so the commit promise is never broken later. *)
          step b "NoSuchMethod" [];
        ]
    with
    | Error (Err.Txn_aborted { txn }) -> txn
    | Ok v -> Alcotest.failf "expected abort, got %s" (Value.to_string v)
    | Error e -> Alcotest.failf "expected Txn_aborted, got %s" (Err.to_string e)
  in
  System.run_for sys 3.0;
  Alcotest.(check int) "a untouched" 0 (get sys ctx a);
  Alcotest.(check int) "b untouched" 0 (get sys ctx b);
  Alcotest.(check (option string)) "a lock released" None (held sys ctx a);
  Alcotest.(check (option string)) "b lock released" None (held sys ctx b);
  (* a voted yes, so its staged snapshot exists — and must end
     compensated, not staged. *)
  let store = (System.site sys 0).System.storage in
  check_marks store ~txn:id ~participants:[ a ] Persistent.Compensated;
  Alcotest.(check int) "aborted counter" 1 (stat sys ctx co "aborted");
  Alcotest.(check int) "nothing in doubt" 0 (stat sys ctx co "indoubt");
  let events = Recorder.events_since obs mark in
  Alcotest.(check bool) "abort traced with the vetoing reason" true
    (List.exists (Trace.txn_abort ~txn:id ~reason:"refused" ()) events);
  Alcotest.(check bool) "compensation traced" true
    (List.exists (Trace.compensate ~txn:id ()) events)

(* --- prepare locks: held, contended, shed as retryable --- *)

let test_prepare_lock_contention () =
  let sys = boot ~seed:(Int64.add base_seed 2L) () in
  let ctx = System.client sys () in
  let cls = derive_participant_class sys ctx in
  let a = Api.create_object_exn sys ctx ~cls ~eager:true () in
  (match
     Api.call sys ctx ~dst:a ~meth:"TxnPrepare"
       ~args:[ Value.Str "tA"; Value.Str "Increment"; Value.List [ Value.Int 1 ] ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first prepare failed: %s" (Err.to_string e));
  Alcotest.(check (option string)) "lock held by tA" (Some "tA") (held sys ctx a);
  (* Same txn again: idempotent yes (coordinator retransmission). *)
  (match
     Api.call sys ctx ~dst:a ~meth:"TxnPrepare"
       ~args:[ Value.Str "tA"; Value.Str "Increment"; Value.List [ Value.Int 1 ] ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "duplicate prepare failed: %s" (Err.to_string e));
  (* A competing txn is shed with the retryable lock rejection; the
     holder never resolves here, so the retry budget drains and the
     final reply still names the holder. *)
  (match
     Api.call sys ctx ~dst:a ~meth:"TxnPrepare"
       ~args:[ Value.Str "tB"; Value.Str "Increment"; Value.List [ Value.Int 2 ] ]
   with
  | Error (Err.Txn_locked { holder; retry_after }) ->
      Alcotest.(check string) "holder named" "tA" holder;
      Alcotest.(check bool) "retry hint positive" true (retry_after > 0.0)
  | Ok v -> Alcotest.failf "expected Txn_locked, got %s" (Value.to_string v)
  | Error e -> Alcotest.failf "expected Txn_locked, got %s" (Err.to_string e));
  Alcotest.(check bool) "lock rejection is retryable" true
    (Err.is_retryable (Err.Txn_locked { holder = "tA"; retry_after = 0.1 }));
  (* Abort releases; a second abort is an idempotent no-op. *)
  ignore (Api.call_exn sys ctx ~dst:a ~meth:"TxnAbort" ~args:[ Value.Str "tA" ]);
  ignore (Api.call_exn sys ctx ~dst:a ~meth:"TxnAbort" ~args:[ Value.Str "tA" ]);
  Alcotest.(check (option string)) "lock released" None (held sys ctx a);
  (* Commit with no lock: acknowledged, nothing applied. *)
  ignore (Api.call_exn sys ctx ~dst:a ~meth:"TxnCommit" ~args:[ Value.Str "tA" ]);
  Alcotest.(check int) "nothing applied" 0 (get sys ctx a)

(* --- a fenced participant votes abort, never hangs --- *)

(* A vote that is permanently fenced: the stub unit answers TxnPrepare
   with [Stale_epoch] no matter how often the runtime rebinds and
   retries, modelling a participant whose every reachable placement
   belongs to a superseded incarnation. Listed before the real
   Participant unit it shadows only the vote; abort acknowledgements
   still run the real idempotent path. *)
let fenced_unit = "test.fenced_vote"

let register_fenced_unit () =
  Legion_core.Impl.register fenced_unit (fun _ctx ->
      let prepare _ctx _args _env k = k (Error Err.Stale_epoch) in
      Legion_core.Impl.part ~methods:[ ("TxnPrepare", prepare) ] fenced_unit)

let test_fenced_participant_aborts () =
  let sys = boot ~seed:(Int64.add base_seed 3L) () in
  register_fenced_unit ();
  let ctx = System.client sys () in
  let obs = System.obs sys in
  let cls = derive_participant_class sys ctx in
  let fenced_cls =
    Api.derive_class_exn sys ctx ~parent:Legion_core.Well_known.legion_object
      ~name:"FencedCounter"
      ~units:(fenced_unit :: counter_txn_units)
      ()
  in
  let coord_cls = derive_coord_class sys ctx in
  let a = Api.create_object_exn sys ctx ~cls ~eager:true () in
  let b = Api.create_object_exn sys ctx ~cls:fenced_cls ~eager:true () in
  let co = Api.create_object_exn sys ctx ~cls:coord_cls ~eager:true () in
  configure_store sys ctx co "uva";
  let mark = Recorder.total obs in
  let id =
    match
      txn_run sys ctx co ~mode:"2pc"
        [
          step a "Increment" [ Value.Int 5 ];
          step b "Increment" [ Value.Int 7 ];
        ]
    with
    | Error (Err.Txn_aborted { txn }) -> txn
    | Ok v -> Alcotest.failf "expected abort, got %s" (Value.to_string v)
    | Error e -> Alcotest.failf "expected Txn_aborted, got %s" (Err.to_string e)
  in
  System.run_for sys 3.0;
  Alcotest.(check int) "a untouched" 0 (get sys ctx a);
  Alcotest.(check (option string)) "a lock released" None (held sys ctx a);
  let events = Recorder.events_since obs mark in
  Alcotest.(check bool) "abort traced" true
    (List.exists (Trace.txn_abort ~txn:id ()) events);
  Alcotest.(check bool) "no commit traced" false
    (List.exists (Trace.txn_commit ~txn:id ()) events)

(* The complementary case: a live participant whose placement is merely
   a superseded incarnation (epoch bumped, nobody reactivated) is not a
   permanent abort. The delivery fence answers Stale_epoch, the rebind
   path reaches the Host Object, which reaps the zombie and reactivates
   the object under the current epoch — and the transaction commits. *)
let test_fenced_placement_heals_and_commits () =
  (* The heal takes a few fence -> rebind -> reactivate rounds, slower
     than the default retransmission window. The network here is
     loss-free, so single-transmission calls (Retry.none) keep the
     at-least-once resend from re-submitting the non-idempotent TxnRun
     mid-heal, and a generous call budget covers the healing rounds. *)
  let sys =
    boot_two_sites
      ~seed:(Int64.add base_seed 8L)
      ~rt_config:
        {
          Runtime.default_config with
          call_timeout = 30.0;
          max_rebinds = 8;
          retry = Legion_rt.Retry.none;
        }
      ()
  in
  let ctx = System.client sys () in
  let rt = System.rt sys in
  let cls = derive_participant_class sys ctx in
  let coord_cls = derive_coord_class sys ctx in
  let a = Api.create_object_exn sys ctx ~cls ~eager:true () in
  let b = Api.create_object_exn sys ctx ~cls ~eager:true () in
  let co = Api.create_object_exn sys ctx ~cls:coord_cls ~eager:true () in
  configure_store sys ctx co "uva";
  (* Open a new incarnation for b without activating it anywhere. *)
  ignore (Runtime.bump_epoch rt b);
  (match
     txn_run sys ctx co ~mode:"2pc"
       [
         step a "Increment" [ Value.Int 5 ];
         step b "Increment" [ Value.Int 7 ];
       ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "expected commit, got %s" (Err.to_string e));
  System.run_for sys 3.0;
  Alcotest.(check int) "a applied" 5 (get sys ctx a);
  (* b was reactivated from its creation OPR under the new epoch; the
     staged increment applied on the healed incarnation. *)
  Alcotest.(check int) "b healed and applied" 7 (get sys ctx b);
  Alcotest.(check (option string)) "b lock free" None (held sys ctx b)

(* --- sagas: immediate application, typed compensation --- *)

let test_saga_commit () =
  let sys = boot ~seed:(Int64.add base_seed 4L) () in
  let ctx = System.client sys () in
  let obs = System.obs sys in
  let cls = derive_participant_class sys ctx in
  let coord_cls = derive_coord_class sys ctx in
  let a = Api.create_object_exn sys ctx ~cls ~eager:true () in
  let b = Api.create_object_exn sys ctx ~cls ~eager:true () in
  let co = Api.create_object_exn sys ctx ~cls:coord_cls ~eager:true () in
  configure_store sys ctx co "uva";
  let mark = Recorder.total obs in
  let id =
    match
      txn_run sys ctx co ~mode:"saga"
        [
          step a "Increment" [ Value.Int 5 ] ~cmeth:"Increment"
            ~cargs:[ Value.Int (-5) ];
          step b "Increment" [ Value.Int 7 ] ~cmeth:"Increment"
            ~cargs:[ Value.Int (-7) ];
        ]
    with
    | Ok (Value.Str id) -> id
    | Ok v -> Alcotest.failf "TxnRun: unexpected %s" (Value.to_string v)
    | Error e -> Alcotest.failf "saga failed: %s" (Err.to_string e)
  in
  System.run_for sys 3.0;
  Alcotest.(check int) "a incremented" 5 (get sys ctx a);
  Alcotest.(check int) "b incremented" 7 (get sys ctx b);
  let store = (System.site sys 0).System.storage in
  check_marks store ~txn:id ~participants:[ a; b ] Persistent.Committed;
  let events = Recorder.events_since obs mark in
  Alcotest.(check bool) "commit traced" true
    (List.exists (Trace.txn_commit ~txn:id ()) events)

let test_saga_compensation () =
  let sys = boot ~seed:(Int64.add base_seed 5L) () in
  let ctx = System.client sys () in
  let obs = System.obs sys in
  let cls = derive_participant_class sys ctx in
  let coord_cls = derive_coord_class sys ctx in
  let a = Api.create_object_exn sys ctx ~cls ~eager:true () in
  let b = Api.create_object_exn sys ctx ~cls ~eager:true () in
  let co = Api.create_object_exn sys ctx ~cls:coord_cls ~eager:true () in
  configure_store sys ctx co "uva";
  let mark = Recorder.total obs in
  let id =
    match
      txn_run sys ctx co ~mode:"saga"
        [
          step a "Increment" [ Value.Int 5 ] ~cmeth:"Increment"
            ~cargs:[ Value.Int (-5) ];
          (* The second step fails; the saga turns around and undoes
             the first via its typed compensation. *)
          step b "NoSuchMethod" [] ~cmeth:"Reset";
        ]
    with
    | Error (Err.Txn_aborted { txn }) -> txn
    | Ok v -> Alcotest.failf "expected abort, got %s" (Value.to_string v)
    | Error e -> Alcotest.failf "expected Txn_aborted, got %s" (Err.to_string e)
  in
  System.run_for sys 3.0;
  Alcotest.(check int) "a compensated back to 0" 0 (get sys ctx a);
  Alcotest.(check int) "b untouched" 0 (get sys ctx b);
  let store = (System.site sys 0).System.storage in
  check_marks store ~txn:id ~participants:[ a ] Persistent.Compensated;
  Alcotest.(check int) "nothing in doubt" 0 (stat sys ctx co "indoubt");
  let events = Recorder.events_since obs mark in
  (match
     Trace.(
       run
         (seq
            [
              matches ~label:"step applied"
                (prepare ~txn:id ~participant:a ());
              matches ~label:"abort" (txn_abort ~txn:id ());
              matches ~label:"compensation"
                (compensate ~txn:id ~participant:a ());
            ])
         events)
   with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check int) "exactly one compensation" 1
    (Trace.count_of (Trace.compensate ~txn:id ()) events)

(* --- coordinator crash after the commit decision: resume, not undo --- *)

let test_coordinator_crash_resumes_commit () =
  let sys = boot ~seed:(Int64.add base_seed 6L) () in
  let ctx = System.client sys () in
  let obs = System.obs sys in
  let rt = System.rt sys in
  let cls = derive_participant_class sys ctx in
  let coord_cls = derive_coord_class sys ctx in
  let infra = List.map (fun s -> List.hd s.System.net_hosts) (System.sites sys) in
  (* A coordinator on a crashable (non-infrastructure) host. *)
  let co, victim =
    let rec pick n =
      if n = 0 then Alcotest.fail "no coordinator landed off-infrastructure"
      else
        let co = Api.create_object_exn sys ctx ~cls:coord_cls ~eager:true () in
        match Runtime.find_proc rt co with
        | Some p when not (List.mem (Runtime.proc_host p) infra) ->
            (co, Runtime.proc_host p)
        | _ -> pick (n - 1)
    in
    pick 8
  in
  (* Participants on hosts that survive the crash. *)
  let a, b =
    let rec pick acc n =
      if List.length acc = 2 then (List.nth acc 0, List.nth acc 1)
      else if n = 0 then Alcotest.fail "no surviving-host participants"
      else
        let o = Api.create_object_exn sys ctx ~cls ~eager:true () in
        match Runtime.find_proc rt o with
        | Some p when Runtime.proc_host p <> victim -> pick (o :: acc) (n - 1)
        | _ -> pick acc n
    in
    pick [] 12
  in
  configure_store sys ctx co "uva";
  System.enable_recovery sys ~checkpoint_period:0.5 ~heartbeat_period:0.25
    ~threshold:3
    ~until:(System.now sys +. 60.0)
    ();
  (* Let checkpoints capture the configured coordinator and the
     participants before the fault. *)
  System.run_for sys 2.0;
  let mark = Recorder.total obs in
  let id =
    match
      txn_run sys ctx co ~mode:"2pc"
        [
          step a "Increment" [ Value.Int 5 ];
          step b "Increment" [ Value.Int 7 ];
        ]
    with
    | Ok (Value.Str id) -> id
    | Ok v -> Alcotest.failf "TxnRun: unexpected %s" (Value.to_string v)
    | Error e -> Alcotest.failf "TxnRun failed: %s" (Err.to_string e)
  in
  (* The client has its Ok — the commit decision is durable in the WAL.
     Kill the coordinator before the commit acknowledgements are
     recorded: recovery must finish the commit, never roll it back. *)
  Runtime.power_fail rt victim;
  System.run_for sys 15.0;
  let events = Recorder.events_since obs mark in
  Alcotest.(check bool) "reactivated coordinator resumed toward commit" true
    (List.exists (Trace.resume ~txn:id ~decision:"commit" ()) events);
  Alcotest.(check bool) "commit completed after resume" true
    (List.exists (Trace.txn_commit ~txn:id ()) events);
  (* Applied exactly once: the participants saw the first TxnCommit,
     the re-driven one was acknowledged idempotently. *)
  Alcotest.(check int) "a applied once" 5 (get sys ctx a);
  Alcotest.(check int) "b applied once" 7 (get sys ctx b);
  Alcotest.(check (option string)) "a lock free" None (held sys ctx a);
  Alcotest.(check (option string)) "b lock free" None (held sys ctx b);
  let store = (System.site sys 0).System.storage in
  check_marks store ~txn:id ~participants:[ a; b ] Persistent.Committed;
  Alcotest.(check int) "resumed counter" 1 (stat sys ctx co "resumed");
  Alcotest.(check int) "nothing in doubt" 0 (stat sys ctx co "indoubt")

(* --- Persistent history: prune protection and event-sourced rewind --- *)

let mk_store ?(keep = 2) ?(hist_cap = 8) () =
  Persistent.create ~keep ~hist_cap
    ~disks:[ Disk.create ~name:"d0"; Disk.create ~name:"d1" ]
    ()

let loid_of i = Loid.make ~class_id:77L ~class_specific:(Int64.of_int i) ()

let test_history_basics () =
  let s = mk_store () in
  let l = loid_of 1 in
  ignore (Persistent.put s ~loid:l "v1");
  ignore (Persistent.put ~txn:"t1" s ~loid:l "v2");
  (match Persistent.history s ~loid:l with
  | [ e1; e2 ] ->
      Alcotest.(check string) "plain put applied" "applied"
        (Persistent.mark_name e1.Persistent.History.mark);
      Alcotest.(check string) "txn put staged" "staged"
        (Persistent.mark_name e2.Persistent.History.mark);
      Alcotest.(check bool) "ordered oldest first" true
        (e1.Persistent.History.version < e2.Persistent.History.version)
  | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es));
  Persistent.mark_txn s ~loid:l ~txn:"t1" Persistent.Committed;
  Alcotest.(check bool) "committed watermark set" true
    (Persistent.last_committed s ~loid:l <> None);
  (* Rewind to the first version: re-stored as a new version, blob
     intact. *)
  let v1 =
    match Persistent.history s ~loid:l with
    | e :: _ -> e.Persistent.History.version
    | [] -> Alcotest.fail "no history"
  in
  (match Persistent.rewind_to s ~loid:l ~version:v1 with
  | Ok opa ->
      Alcotest.(check (option string)) "rewound blob" (Some "v1")
        (Persistent.get s opa)
  | Error msg -> Alcotest.failf "rewind failed: %s" msg);
  Alcotest.(check int) "history grew by the rewind" 3
    (List.length (Persistent.history s ~loid:l))

let test_staged_survives_prune () =
  let s = mk_store ~keep:1 () in
  let l = loid_of 2 in
  ignore (Persistent.put ~txn:"tx" s ~loid:l "staged-write");
  (* A burst of plain checkpoints would normally evict everything past
     [keep]; the staged entry's file must survive. *)
  for i = 1 to 6 do
    ignore (Persistent.put s ~loid:l (Printf.sprintf "ckpt%d" i))
  done;
  let staged =
    List.filter
      (fun (e : Persistent.History.entry) -> e.txn = Some "tx")
      (Persistent.history s ~loid:l)
  in
  (match staged with
  | [ e ] ->
      Alcotest.(check bool) "staged entry still available" true
        e.Persistent.History.available;
      Alcotest.(check (option string)) "staged bytes intact"
        (Some "staged-write")
        (Persistent.get s e.Persistent.History.opa)
  | es -> Alcotest.failf "expected 1 staged entry, got %d" (List.length es));
  (* Resolving the txn releases the protection; later checkpoints may
     evict it like any other old version. *)
  Persistent.mark_txn s ~loid:l ~txn:"tx" Persistent.Compensated;
  for i = 7 to 12 do
    ignore (Persistent.put s ~loid:l (Printf.sprintf "ckpt%d" i))
  done;
  let files = Persistent.total_files s in
  Alcotest.(check bool)
    (Printf.sprintf "files bounded after resolution (%d)" files)
    true (files <= 2)

(* QCheck: under any interleaving of plain puts, txn puts, commits and
   compensations, (a) staged entries are never dropped, (b) the newest
   committed snapshot (at the watermark) keeps its file, and (c) the
   file count stays bounded by plain-keep slots + protected entries. *)
let history_prune_prop =
  let open QCheck in
  let op_gen =
    Gen.(
      frequency
        [
          (4, map (fun l -> `Put l) (int_bound 2));
          (3, map2 (fun l t -> `Put_txn (l, t)) (int_bound 2) (int_bound 3));
          (2, map (fun t -> `Commit t) (int_bound 3));
          (2, map (fun t -> `Compensate t) (int_bound 3));
        ])
  in
  let ops_arb =
    make
      ~print:(fun ops ->
        String.concat ";"
          (List.map
             (function
               | `Put l -> Printf.sprintf "put%d" l
               | `Put_txn (l, t) -> Printf.sprintf "txn%d@%d" t l
               | `Commit t -> Printf.sprintf "commit%d" t
               | `Compensate t -> Printf.sprintf "comp%d" t)
             ops))
      Gen.(list_size (int_range 1 60) op_gen)
  in
  Test.make ~name:"history: prune never drops protected entries"
    ~count:200 ops_arb (fun ops ->
      let keep = 2 and nloids = 3 in
      let s = mk_store ~keep ~hist_cap:6 () in
      let loids = Array.init nloids loid_of in
      let txn_name t = Printf.sprintf "t%d" t in
      (* Model: every txn-tagged put, as (loid idx, version, txn), plus
         the set of txns that have ever been resolved — a put whose txn
         was never resolved is still staged (late puts under a resolved
         txn inherit the verdict, so they are never staged). *)
      let model = ref [] in
      let resolved = Hashtbl.create 8 in
      let newest_version l =
        match List.rev (Persistent.history s ~loid:loids.(l)) with
        | e :: _ -> e.Persistent.History.version
        | [] -> failwith "put left no entry"
      in
      List.iter
        (fun op ->
          (match op with
          | `Put l -> ignore (Persistent.put s ~loid:loids.(l) "blob")
          | `Put_txn (l, t) ->
              ignore (Persistent.put ~txn:(txn_name t) s ~loid:loids.(l) "blob");
              model := (l, newest_version l, txn_name t) :: !model
          | `Commit t ->
              Hashtbl.replace resolved (txn_name t) ();
              Array.iteri
                (fun l loid ->
                  ignore l;
                  Persistent.mark_txn s ~loid ~txn:(txn_name t)
                    Persistent.Committed)
                loids
          | `Compensate t ->
              Hashtbl.replace resolved (txn_name t) ();
              Array.iter
                (fun loid ->
                  Persistent.mark_txn s ~loid ~txn:(txn_name t)
                    Persistent.Compensated)
                loids);
          (* Invariants after every step. *)
          let protected_total = ref 0 in
          Array.iteri
            (fun l loid ->
              let hist = Persistent.history s ~loid in
              let watermark =
                Option.value ~default:0 (Persistent.last_committed s ~loid)
              in
              List.iter
                (fun (e : Persistent.History.entry) ->
                  let prot =
                    e.mark = Persistent.Staged
                    || (e.mark = Persistent.Committed && e.version = watermark)
                  in
                  if prot then begin
                    incr protected_total;
                    if not e.available then
                      Test.fail_reportf
                        "protected entry v%d of loid %d lost its file"
                        e.version l
                  end)
                hist;
              (* Model check: puts under a never-resolved txn are still
                 staged and must be listed with their files intact. *)
              List.iter
                (fun (ml, mv, mt) ->
                  if ml = l && not (Hashtbl.mem resolved mt) then
                    let present =
                      List.exists
                        (fun (e : Persistent.History.entry) ->
                          e.version = mv && e.txn = Some mt
                          && e.mark = Persistent.Staged && e.available)
                        hist
                    in
                    if not present then
                      Test.fail_reportf
                        "staged txn put v%d (%s) on loid %d dropped while \
                         its txn is unresolved (watermark %d)"
                        mv mt ml watermark)
                !model)
            loids;
          let bound = (nloids * keep) + !protected_total in
          if Persistent.total_files s > bound then
            Test.fail_reportf "file count %d exceeds bound %d"
              (Persistent.total_files s) bound)
        ops;
      true)

(* --- named blobs ride beside the version files --- *)

let test_named_blobs () =
  let s = mk_store ~keep:1 () in
  let l = loid_of 3 in
  Persistent.put_named s ~name:"wal.test" "wal-bytes";
  Alcotest.(check (option string)) "named readable" (Some "wal-bytes")
    (Persistent.get_named s ~name:"wal.test");
  Persistent.put_named s ~name:"wal.test" "wal-bytes-2";
  (* Version pruning never touches named blobs. *)
  for i = 1 to 5 do
    ignore (Persistent.put s ~loid:l (Printf.sprintf "v%d" i))
  done;
  Alcotest.(check (option string)) "named survives pruning"
    (Some "wal-bytes-2")
    (Persistent.get_named s ~name:"wal.test");
  Persistent.remove_named s ~name:"wal.test";
  Alcotest.(check (option string)) "named removable" None
    (Persistent.get_named s ~name:"wal.test")

(* --- watcher deregistration: the cut/heal leak regression --- *)

let () =
  Alcotest.run "txn"
    [
      ( "two-phase",
        [
          Alcotest.test_case "commit applies everywhere" `Quick
            test_two_phase_commit;
          Alcotest.test_case "one no vote aborts everything" `Quick
            test_two_phase_abort;
          Alcotest.test_case "prepare locks contend and release" `Quick
            test_prepare_lock_contention;
          Alcotest.test_case "fenced participant is an abort vote" `Quick
            test_fenced_participant_aborts;
          Alcotest.test_case "fenced placement heals and commits" `Quick
            test_fenced_placement_heals_and_commits;
        ] );
      ( "saga",
        [
          Alcotest.test_case "saga commits in order" `Quick test_saga_commit;
          Alcotest.test_case "failed step compensates the prefix" `Quick
            test_saga_compensation;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "coordinator crash resumes durable commit"
            `Quick test_coordinator_crash_resumes_commit;
        ] );
      ( "history",
        [
          Alcotest.test_case "marks, watermark, rewind" `Quick
            test_history_basics;
          Alcotest.test_case "staged writes survive checkpoint bursts" `Quick
            test_staged_survives_prune;
          Alcotest.test_case "WAL blobs ride beside version files" `Quick
            test_named_blobs;
          QCheck_alcotest.to_alcotest history_prune_prop;
        ] );
    ]
