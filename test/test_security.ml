(* Tests for the security model (§2.4): call environments, policies,
   MayI, and Magistrate-level site autonomy (§2.1.3's DOE story). *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Env = Legion_sec.Env
module Policy = Legion_sec.Policy
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Object_part = Legion_core.Object_part
module System = Legion.System
module Api = Legion.Api
module H = Helpers

let l i = Loid.make ~class_id:70L ~class_specific:(Int64.of_int i) ()

(* --- Env --- *)

let test_env_roundtrip () =
  let e = Env.make ~responsible:(l 1) ~security:(l 2) ~calling:(l 3) in
  match Env.of_value (Env.to_value e) with
  | Ok e' -> Alcotest.(check bool) "roundtrip" true (Env.equal e e')
  | Error msg -> Alcotest.fail msg

let test_env_delegate () =
  let e = Env.make ~responsible:(l 1) ~security:(l 2) ~calling:(l 3) in
  let d = Env.delegate e ~calling:(l 4) in
  Alcotest.(check bool) "ra kept" true (Loid.equal d.Env.responsible (l 1));
  Alcotest.(check bool) "sa kept" true (Loid.equal d.Env.security (l 2));
  Alcotest.(check bool) "ca replaced" true (Loid.equal d.Env.calling (l 4));
  let s = Env.of_self (l 9) in
  Alcotest.(check bool) "self-sovereign" true
    (Loid.equal s.Env.responsible (l 9) && Loid.equal s.Env.calling (l 9))

(* --- Policies --- *)

let env_from caller = Env.of_self caller

let test_policy_basic () =
  Alcotest.(check bool) "allow_all" true
    (Policy.check Policy.Allow_all ~meth:"X" ~env:(env_from (l 1)) = Policy.Allow);
  (match Policy.check (Policy.Deny_all "r") ~meth:"X" ~env:(env_from (l 1)) with
  | Policy.Deny "r" -> ()
  | _ -> Alcotest.fail "deny_all");
  let p = Policy.allow_loids [ l 1; l 2 ] in
  Alcotest.(check bool) "listed caller" true
    (Policy.check p ~meth:"X" ~env:(env_from (l 1)) = Policy.Allow);
  (match Policy.check p ~meth:"X" ~env:(env_from (l 3)) with
  | Policy.Deny _ -> ()
  | Policy.Allow -> Alcotest.fail "unlisted caller allowed")

let test_policy_responsible () =
  let p = Policy.Allow_responsible (Loid.Set.of_list [ l 1 ]) in
  let e = Env.make ~responsible:(l 1) ~security:(l 5) ~calling:(l 9) in
  Alcotest.(check bool) "trusted RA" true (Policy.check p ~meth:"X" ~env:e = Policy.Allow);
  let e' = Env.make ~responsible:(l 2) ~security:(l 5) ~calling:(l 1) in
  (match Policy.check p ~meth:"X" ~env:e' with
  | Policy.Deny _ -> ()
  | Policy.Allow -> Alcotest.fail "untrusted RA allowed")

let test_policy_combinators () =
  let p =
    Policy.Deny_methods ([ "Delete" ], Policy.All_of [ Policy.Allow_all; Policy.Allow_all ])
  in
  Alcotest.(check bool) "other method ok" true
    (Policy.check p ~meth:"Get" ~env:(env_from (l 1)) = Policy.Allow);
  (match Policy.check p ~meth:"Delete" ~env:(env_from (l 1)) with
  | Policy.Deny _ -> ()
  | Policy.Allow -> Alcotest.fail "denied method allowed");
  let conj = Policy.All_of [ Policy.Allow_all; Policy.Deny_all "nope" ] in
  match Policy.check conj ~meth:"X" ~env:(env_from (l 1)) with
  | Policy.Deny "nope" -> ()
  | _ -> Alcotest.fail "conjunction must deny"

let test_policy_custom_registry () =
  Policy.register_custom "only-even"
    (fun ~meth ~env:_ ->
      if String.length meth mod 2 = 0 then Policy.Allow else Policy.Deny "odd");
  let p = Policy.Custom ("only-even", Option.get (Policy.find_custom "only-even")) in
  (* Round-trips through serialization by name. *)
  (match Policy.of_value (Policy.to_value p) with
  | Ok (Policy.Custom ("only-even", f)) ->
      Alcotest.(check bool) "restored behaviour" true
        (f ~meth:"ab" ~env:(env_from (l 1)) = Policy.Allow)
  | _ -> Alcotest.fail "custom did not round-trip");
  (* Unknown custom policies fail closed. *)
  match
    Policy.of_value
      (Value.Record [ ("p", Value.Str "custom"); ("n", Value.Str "never-registered") ])
  with
  | Ok (Policy.Deny_all _) -> ()
  | _ -> Alcotest.fail "unknown custom must decode to deny-all"

let test_policy_roundtrip_structured () =
  let p =
    Policy.All_of
      [
        Policy.Allow_calling (Loid.Set.of_list [ l 1; l 2 ]);
        Policy.Deny_methods ([ "A"; "B" ], Policy.Allow_responsible (Loid.Set.of_list [ l 3 ]));
      ]
  in
  match Policy.of_value (Policy.to_value p) with
  | Ok p' ->
      (* Behavioural equivalence on a few probes. *)
      List.iter
        (fun (meth, caller) ->
          let env = env_from caller in
          Alcotest.(check bool)
            (Printf.sprintf "same decision for %s" meth)
            (Policy.check p ~meth ~env = Policy.Allow)
            (Policy.check p' ~meth ~env = Policy.Allow))
        [ ("A", l 1); ("C", l 1); ("C", l 9) ]
  | Error e -> Alcotest.fail e

(* --- Wire round-trips, property-style: any Env and any Policy built
   from the public constructors must survive value encoding AND the
   full byte codec. Custom policies travel by name; the property pins
   a registered name, and the fail-closed path (an unknown name from a
   peer with policies we do not have) is checked separately. --- *)

module Codec = Legion_wire.Codec

let () =
  Policy.register_custom "qcheck-probe" (fun ~meth ~env:_ ->
      if String.length meth mod 2 = 0 then Policy.Allow
      else Policy.Deny "odd method")

let loid_gen : Loid.t QCheck.Gen.t =
  let open QCheck.Gen in
  map2
    (fun c s ->
      Loid.make ~class_id:(Int64.of_int c) ~class_specific:(Int64.of_int s) ())
    (int_bound 99) (int_bound 999)

let env_gen : Env.t QCheck.Gen.t =
  let open QCheck.Gen in
  map3
    (fun r s c -> Env.make ~responsible:r ~security:s ~calling:c)
    loid_gen loid_gen loid_gen

let policy_gen : Policy.t QCheck.Gen.t =
  let open QCheck.Gen in
  let set = map Loid.Set.of_list (list_size (0 -- 4) loid_gen) in
  let base =
    oneof
      [
        return Policy.Allow_all;
        map (fun r -> Policy.Deny_all r) (string_size (0 -- 12));
        map (fun s -> Policy.Allow_calling s) set;
        map (fun s -> Policy.Allow_responsible s) set;
        return
          (Policy.Custom
             ("qcheck-probe", Option.get (Policy.find_custom "qcheck-probe")));
      ]
  in
  oneof
    [
      base;
      map2
        (fun ms p -> Policy.Deny_methods (ms, p))
        (list_size (0 -- 3) (string_size (1 -- 8)))
        base;
      map (fun ps -> Policy.All_of ps) (list_size (0 -- 3) base);
    ]

let arbitrary_env =
  QCheck.make ~print:(Format.asprintf "%a" Env.pp) env_gen

let arbitrary_policy =
  QCheck.make ~print:(Format.asprintf "%a" Policy.pp) policy_gen

let env_wire_roundtrip =
  QCheck.Test.make ~name:"Env survives value + codec round-trips" ~count:500
    arbitrary_env (fun e ->
      match Env.of_value (Env.to_value e) with
      | Error _ -> false
      | Ok e' -> (
          Env.equal e e'
          &&
          match Codec.decode (Codec.encode (Env.to_value e)) with
          | Error _ -> false
          | Ok v -> (
              match Env.of_value v with
              | Ok e'' -> Env.equal e e''
              | Error _ -> false)))

(* Policies carry closures, so equality is on the serialized form: one
   round trip must be a fixed point of [to_value]. *)
let policy_wire_roundtrip =
  QCheck.Test.make ~name:"Policy.to_value is a round-trip fixed point"
    ~count:500 arbitrary_policy (fun p ->
      let v = Policy.to_value p in
      match Codec.decode (Codec.encode v) with
      | Error _ -> false
      | Ok v' -> (
          match Policy.of_value v' with
          | Error _ -> false
          | Ok p' -> Value.equal (Policy.to_value p') v))

let test_policy_unknown_custom_fails_closed () =
  let v =
    Value.Record
      [ ("p", Value.Str "custom"); ("n", Value.Str "no-such-policy") ]
  in
  match Policy.of_value v with
  | Ok (Policy.Deny_all _ as p) -> (
      match Policy.check p ~meth:"Get" ~env:(env_from (l 1)) with
      | Policy.Deny _ -> ()
      | Policy.Allow -> Alcotest.fail "unknown custom policy allowed a call")
  | Ok p ->
      Alcotest.failf "unknown custom decoded open: %s"
        (Format.asprintf "%a" Policy.pp p)
  | Error e ->
      Alcotest.failf "unknown custom must fail closed, not error: %s" e

(* --- End-to-end: object-level MayI --- *)

let sweep_seed =
  match Sys.getenv_opt "LEGION_TRACE_SEED" with
  | Some s -> ( match Int64.of_string_opt s with Some v -> v | None -> 42L)
  | None -> 42L

let test_object_allowlist () =
  let sys = H.boot_two_sites ~seed:sweep_seed () in
  let ctx_friend = System.client sys ~site:0 () in
  let ctx_stranger = System.client sys ~site:1 () in
  let friend_loid = Runtime.proc_loid ctx_friend.Runtime.self in
  let cls = H.make_counter_class sys ctx_friend () in
  (* Create an instance whose policy admits only the friend. *)
  let policy = Policy.allow_loids [ friend_loid ] in
  let loid =
    Api.create_object_exn sys ctx_friend ~cls
      ~init:
        [ (Legion_core.Well_known.unit_object, Object_part.state_value ~policy ()) ]
      ()
  in
  let v = Api.call_exn sys ctx_friend ~dst:loid ~meth:"Increment" ~args:[ Value.Int 1 ] in
  Alcotest.(check int) "friend admitted" 1 (H.int_exn v);
  (match Api.call sys ctx_stranger ~dst:loid ~meth:"Increment" ~args:[ Value.Int 1 ] with
  | Error (Err.Refused _) -> ()
  | r ->
      Alcotest.failf "stranger not refused: %s"
        (match r with Ok v -> Value.to_string v | Error e -> Err.to_string e));
  (* MayI tells the stranger in advance (§2.4). *)
  match Api.call sys ctx_stranger ~dst:loid ~meth:"MayI" ~args:[ Value.Str "Increment" ] with
  | Ok (Value.Bool false) -> ()
  | _ -> Alcotest.fail "MayI must report the refusal"

(* --- End-to-end: Magistrate site autonomy --- *)

let test_magistrate_site_autonomy () =
  (* The DOE story (§2.1.3): a Jurisdiction whose Magistrate only
     accepts requests from Responsible Agents it trusts. *)
  let sys = H.boot_two_sites ~seed:sweep_seed () in
  let ctx_trusted = System.client sys ~site:0 () in
  let ctx_outsider = System.client sys ~site:1 () in
  let trusted_loid = Runtime.proc_loid ctx_trusted.Runtime.self in
  let doe_mag = (System.site sys 1).System.magistrate in
  (* Install the restriction on the "DOE" magistrate. *)
  let policy =
    Policy.Allow_responsible (Loid.Set.of_list [ trusted_loid ])
  in
  (match
     Api.call sys ctx_trusted ~dst:doe_mag ~meth:"SetActivationPolicy"
       ~args:[ Policy.to_value policy ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "SetActivationPolicy: %s" (Err.to_string e));
  let cls = H.make_counter_class sys ctx_trusted () in
  (* The trusted agent can place objects there... *)
  (match Api.create_object sys ctx_trusted ~cls ~magistrate:doe_mag ~eager:true () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "trusted create: %s" (Err.to_string e));
  (* ...the outsider is turned away: its Create reaches the class, whose
     StoreObject request runs under the outsider's Responsible Agent. *)
  match Api.create_object sys ctx_outsider ~cls ~magistrate:doe_mag () with
  | Error (Err.Refused _) -> ()
  | r ->
      Alcotest.failf "outsider not refused: %s"
        (match r with
        | Ok (l, _) -> Loid.to_string l
        | Error e -> Err.to_string e)

let test_magistrate_refuses_migration () =
  (* Site autonomy over data movement: a Jurisdiction that refuses to
     let its objects leave (Deny Copy/Move), while everything else
     works — "member function calls on Magistrates should be thought of
     as requests rather than commands" (§3.8). *)
  let sys = H.boot_two_sites ~seed:sweep_seed () in
  let ctx = System.client sys () in
  let m0 = (System.site sys 0).System.magistrate in
  let m1 = (System.site sys 1).System.magistrate in
  let policy = Policy.Deny_methods ([ "Copy"; "Move" ], Policy.Allow_all) in
  (match
     Api.call sys ctx ~dst:m0 ~meth:"SetActivationPolicy"
       ~args:[ Policy.to_value policy ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "SetActivationPolicy: %s" (Err.to_string e));
  let cls = H.make_counter_class sys ctx () in
  let loid = Api.create_object_exn sys ctx ~cls ~magistrate:m0 () in
  ignore (Api.call_exn sys ctx ~dst:loid ~meth:"Increment" ~args:[ Value.Int 1 ]);
  (* Migration refused... *)
  (match
     Api.call sys ctx ~dst:m0 ~meth:"Move" ~args:[ Loid.to_value loid; Loid.to_value m1 ]
   with
  | Error (Err.Refused _) -> ()
  | r ->
      Alcotest.failf "Move not refused: %s"
        (match r with Ok v -> Value.to_string v | Error e -> Err.to_string e));
  (match
     Api.call sys ctx ~dst:m0 ~meth:"Copy" ~args:[ Loid.to_value loid; Loid.to_value m1 ]
   with
  | Error (Err.Refused _) -> ()
  | _ -> Alcotest.fail "Copy not refused");
  (* ...ordinary lifecycle continues. *)
  (match Api.call sys ctx ~dst:m0 ~meth:"Deactivate" ~args:[ Loid.to_value loid ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "Deactivate: %s" (Err.to_string e));
  let v = H.int_exn (Api.call_exn sys ctx ~dst:loid ~meth:"Get" ~args:[]) in
  Alcotest.(check int) "object stays home and works" 1 v

(* --- LOID public keys (§3.2) --- *)

let test_public_key_identity () =
  let sys = H.boot_two_sites ~seed:sweep_seed () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let loid =
    Api.create_object_exn sys ctx ~cls ~public_key:"sekrit-key-bits" ()
  in
  Alcotest.(check string) "key embedded" "sekrit-key-bits" (Loid.public_key loid);
  (* The genuine reference works (activation on demand included). *)
  let v =
    match Api.call sys ctx ~dst:loid ~meth:"Increment" ~args:[ Value.Int 2 ] with
    | Ok (Value.Int v) -> v
    | r ->
        Alcotest.failf "keyed call: %s"
          (match r with Ok v -> Value.to_string v | Error e -> Err.to_string e)
  in
  Alcotest.(check int) "works" 2 v;
  (* A forged reference — right class and sequence number, wrong key —
     names a different, nonexistent object: the class refuses to bind
     it. *)
  let forged =
    Loid.make ~public_key:"wrong-key"
      ~class_id:(Loid.class_id loid)
      ~class_specific:(Loid.class_specific loid) ()
  in
  (match Api.call sys ctx ~dst:forged ~meth:"Increment" ~args:[ Value.Int 99 ] with
  | Error (Err.Not_bound _) -> ()
  | r ->
      Alcotest.failf "forged key accepted: %s"
        (match r with Ok v -> Value.to_string v | Error e -> Err.to_string e));
  (* A keyless forgery fails identically. *)
  let bare =
    Loid.make ~class_id:(Loid.class_id loid)
      ~class_specific:(Loid.class_specific loid) ()
  in
  match Api.call sys ctx ~dst:bare ~meth:"Get" ~args:[] with
  | Error (Err.Not_bound _) -> ()
  | _ -> Alcotest.fail "keyless forgery accepted"

let () =
  Alcotest.run "security"
    [
      ( "env",
        [
          Alcotest.test_case "roundtrip" `Quick test_env_roundtrip;
          Alcotest.test_case "delegate" `Quick test_env_delegate;
        ] );
      ( "policy",
        [
          Alcotest.test_case "basic decisions" `Quick test_policy_basic;
          Alcotest.test_case "responsible agent" `Quick test_policy_responsible;
          Alcotest.test_case "combinators" `Quick test_policy_combinators;
          Alcotest.test_case "custom registry" `Quick test_policy_custom_registry;
          Alcotest.test_case "structured roundtrip" `Quick
            test_policy_roundtrip_structured;
          Alcotest.test_case "unknown custom fails closed" `Quick
            test_policy_unknown_custom_fails_closed;
          QCheck_alcotest.to_alcotest env_wire_roundtrip;
          QCheck_alcotest.to_alcotest policy_wire_roundtrip;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "object allowlist via MayI" `Quick test_object_allowlist;
          Alcotest.test_case "magistrate site autonomy" `Quick
            test_magistrate_site_autonomy;
          Alcotest.test_case "LOID public keys are identity" `Quick
            test_public_key_identity;
          Alcotest.test_case "jurisdiction refuses migration" `Quick
            test_magistrate_refuses_migration;
        ] );
    ]
