(* Tests for application-level object groups (the §4.3 "object group"
   the paper leaves to application programmers), plus partition
   behaviour end to end. *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Address = Legion_naming.Address
module Network = Legion_net.Network
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Well_known = Legion_core.Well_known
module Opr = Legion_core.Opr
module Recorder = Legion_obs.Recorder
module Trace = Legion_obs.Trace
module Group_part = Legion_repl.Group_part
module Repair = Legion_repl.Repair
module System = Legion.System
module Api = Legion.Api
module H = Helpers

(* The fencing and reconciliation sequences below are shaped by the
   quorum protocol, not by timing, so they must hold for any boot seed;
   LEGION_TRACE_SEED (swept by test/dune) shifts it. *)
let base_seed =
  match Sys.getenv_opt "LEGION_TRACE_SEED" with
  | Some s -> Int64.of_string s
  | None -> 3L

let boot () =
  Group_part.register ();
  H.register_counter_unit ();
  Legion.System.boot ~seed:base_seed
    ~rt_config:{ Runtime.default_config with call_timeout = 0.5 }
    ~sites:[ ("a", 3); ("b", 3); ("c", 3) ]
    ()

type fixture = {
  sys : System.t;
  ctx : Runtime.ctx;
  group : Loid.t;
  members : Loid.t list;
}

let make_group () =
  let sys = boot () in
  let ctx = System.client sys () in
  let counter_cls = H.make_counter_class sys ctx () in
  let group_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"Group"
      ~units:[ Group_part.unit_name ] ()
  in
  let group = Api.create_object_exn sys ctx ~cls:group_cls ~eager:true () in
  (* One member per site. *)
  let members =
    List.map
      (fun s ->
        Api.create_object_exn sys ctx ~cls:counter_cls ~eager:true
          ~magistrate:s.System.magistrate ())
      (System.sites sys)
  in
  List.iter
    (fun m ->
      match Api.call sys ctx ~dst:group ~meth:"AddMember" ~args:[ Loid.to_value m ] with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "AddMember: %s" (Err.to_string e))
    members;
  { sys; ctx; group; members }

let group_invoke f meth args =
  Api.call f.sys f.ctx ~dst:f.group ~meth:"Invoke"
    ~args:[ Value.Str meth; Value.List args ]

let member_value f m =
  match Api.call_exn f.sys f.ctx ~dst:m ~meth:"Get" ~args:[] with
  | Value.Int n -> n
  | v -> Alcotest.failf "Get: %s" (Value.to_string v)

let test_group_broadcast () =
  let f = make_group () in
  (match group_invoke f "Increment" [ Value.Int 5 ] with
  | Ok (Value.Record fields) ->
      Alcotest.(check bool) "3 ok" true
        (List.assoc_opt "ok" fields = Some (Value.Int 3));
      Alcotest.(check bool) "first value 5" true
        (List.assoc_opt "value" fields = Some (Value.Int 5))
  | Ok v -> Alcotest.failf "bad reply: %s" (Value.to_string v)
  | Error e -> Alcotest.failf "Invoke: %s" (Err.to_string e));
  (* Every member applied the update — convergent state. *)
  List.iter
    (fun m -> Alcotest.(check int) "member updated" 5 (member_value f m))
    f.members

let test_group_membership () =
  let f = make_group () in
  (match Api.call f.sys f.ctx ~dst:f.group ~meth:"ListMembers" ~args:[] with
  | Ok (Value.List vs) -> Alcotest.(check int) "3 members" 3 (List.length vs)
  | _ -> Alcotest.fail "ListMembers");
  let victim = List.hd f.members in
  (match
     Api.call f.sys f.ctx ~dst:f.group ~meth:"RemoveMember"
       ~args:[ Loid.to_value victim ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "RemoveMember: %s" (Err.to_string e));
  (match Api.call f.sys f.ctx ~dst:f.group ~meth:"ListMembers" ~args:[] with
  | Ok (Value.List vs) -> Alcotest.(check int) "2 members" 2 (List.length vs)
  | _ -> Alcotest.fail "ListMembers");
  (* Adding twice is idempotent. *)
  ignore (Api.call f.sys f.ctx ~dst:f.group ~meth:"AddMember" ~args:[ Loid.to_value victim ]);
  ignore (Api.call f.sys f.ctx ~dst:f.group ~meth:"AddMember" ~args:[ Loid.to_value victim ]);
  match Api.call f.sys f.ctx ~dst:f.group ~meth:"ListMembers" ~args:[] with
  | Ok (Value.List vs) -> Alcotest.(check int) "3 again" 3 (List.length vs)
  | _ -> Alcotest.fail "ListMembers"

let kill_member f m =
  match Runtime.find_proc (System.rt f.sys) m with
  | Some p -> Runtime.crash_host (System.rt f.sys) (Runtime.proc_host p)
  | None -> Alcotest.fail "member inactive"

let test_group_modes_under_failure () =
  let f = make_group () in
  ignore (group_invoke f "Increment" [ Value.Int 1 ]);
  (* Kill one member of three. *)
  kill_member f (List.nth f.members 2);
  (* all-mode: fails (2/3). The dead member's magistrate lives on the
     same crashed host, so it cannot be resurrected. The group only
     learns of the failure after the member's delivery timeout, which
     may exceed the client's own call timeout — either way the client
     sees an error, never a spurious success. *)
  (match group_invoke f "Increment" [ Value.Int 1 ] with
  | Error _ -> ()
  | Ok v -> Alcotest.failf "all-mode should fail: %s" (Value.to_string v));
  System.run f.sys;
  (* quorum-mode: succeeds (2/3). *)
  (match Api.call f.sys f.ctx ~dst:f.group ~meth:"SetMode" ~args:[ Value.Str "quorum" ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "SetMode: %s" (Err.to_string e));
  (match group_invoke f "Increment" [ Value.Int 1 ] with
  | Ok (Value.Record fields) ->
      Alcotest.(check bool) "2 ok" true (List.assoc_opt "ok" fields = Some (Value.Int 2))
  | r ->
      Alcotest.failf "quorum-mode should succeed: %s"
        (match r with Ok v -> Value.to_string v | Error e -> Err.to_string e));
  (* any-mode trivially succeeds. *)
  ignore (Api.call f.sys f.ctx ~dst:f.group ~meth:"SetMode" ~args:[ Value.Str "any" ]);
  match group_invoke f "Get" [] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "any-mode: %s" (Err.to_string e)

let test_group_empty_refused () =
  let sys = boot () in
  let ctx = System.client sys () in
  let group_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"Group"
      ~units:[ Group_part.unit_name ] ()
  in
  let group = Api.create_object_exn sys ctx ~cls:group_cls ~eager:true () in
  match
    Api.call sys ctx ~dst:group ~meth:"Invoke"
      ~args:[ Value.Str "Get"; Value.List [] ]
  with
  | Error (Err.Refused _) -> ()
  | _ -> Alcotest.fail "empty group must refuse"

let test_group_state_survives_deactivation () =
  let f = make_group () in
  ignore
    (Api.call f.sys f.ctx ~dst:f.group ~meth:"SetMode" ~args:[ Value.Str "quorum" ]);
  (* Find the magistrate holding the group object and bounce it. *)
  let holder =
    List.find_opt
      (fun m ->
        match Api.call f.sys f.ctx ~dst:m ~meth:"ListObjects" ~args:[] with
        | Ok (Value.List vs) ->
            List.exists
              (fun v ->
                match Loid.of_value v with
                | Ok l -> Loid.equal l f.group
                | _ -> false)
              vs
        | _ -> false)
      (System.magistrates f.sys)
  in
  (match holder with
  | Some m ->
      ignore
        (Api.call f.sys f.ctx ~dst:m ~meth:"Deactivate" ~args:[ Loid.to_value f.group ])
  | None -> Alcotest.fail "no holder");
  (* Members and mode persisted. *)
  (match Api.call f.sys f.ctx ~dst:f.group ~meth:"ListMembers" ~args:[] with
  | Ok (Value.List vs) -> Alcotest.(check int) "members persisted" 3 (List.length vs)
  | _ -> Alcotest.fail "ListMembers after reactivation");
  match group_invoke f "Increment" [ Value.Int 2 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "post-reactivation invoke: %s" (Err.to_string e)

(* --- End-to-end partition behaviour --- *)

let test_partition_and_heal () =
  let f = make_group () in
  ignore (group_invoke f "Increment" [ Value.Int 1 ]);
  (* Partition site c away; all-mode invocations fail, quorum-mode
     continue (2 of 3 members reachable). *)
  Network.set_partitioned (System.net f.sys) 0 2 true;
  Network.set_partitioned (System.net f.sys) 1 2 true;
  (match group_invoke f "Increment" [ Value.Int 1 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "all-mode across a partition should fail");
  ignore (Api.call f.sys f.ctx ~dst:f.group ~meth:"SetMode" ~args:[ Value.Str "quorum" ]);
  (match group_invoke f "Increment" [ Value.Int 1 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "quorum under partition: %s" (Err.to_string e));
  (* Heal: the member behind the partition is stale by two updates —
     the divergence the paper warns application groups must manage. *)
  Network.set_partitioned (System.net f.sys) 0 2 false;
  Network.set_partitioned (System.net f.sys) 1 2 false;
  let v_behind = member_value f (List.nth f.members 2) in
  let v_front = member_value f (List.nth f.members 0) in
  (* The reachable members got the quorum update (and possibly
     duplicates from client retries of the non-idempotent Invoke — the
     at-least-once behaviour the retry machinery implies); the
     partitioned member is strictly behind. *)
  Alcotest.(check bool)
    (Printf.sprintf "partitioned member diverged (%d < %d)" v_behind v_front)
    true (v_behind < v_front)

(* --- Quorum fencing and anti-entropy (5 members, 3/2 split) --- *)

let member_value_via sys ctx m =
  match Api.call_exn sys ctx ~dst:m ~meth:"Get" ~args:[] with
  | Value.Int n -> n
  | v -> Alcotest.failf "Get: %s" (Value.to_string v)

let test_fenced_split_brain () =
  let sys = boot () in
  let net = System.net sys in
  let obs = System.obs sys in
  let ctx = System.client sys () in
  let ctx_min = System.client sys ~site:2 () in
  let counter_cls = H.make_counter_class sys ctx () in
  let group_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"Group"
      ~units:[ Group_part.unit_name ] ()
  in
  let site n = System.site sys n in
  let head s =
    Api.create_object_exn sys ctx ~cls:group_cls ~eager:true
      ~magistrate:(site s).System.magistrate ()
  in
  (* Two heads sharing one member list: during the partition each side
     can only reach its own, exactly the split-brain a fenced group
     must survive. *)
  let g_maj = head 0 in
  let g_min = head 2 in
  let member s =
    Api.create_object_exn sys ctx ~cls:counter_cls ~eager:true
      ~magistrate:(site s).System.magistrate ()
  in
  (* 3/2 split across the cut below: three members on sites a/b (the
     majority side), two on site c (the minority side). *)
  let members = [ member 0; member 0; member 1; member 2; member 2 ] in
  let minority = [ List.nth members 3; List.nth members 4 ] in
  let configure g =
    List.iter
      (fun m ->
        match
          Api.call sys ctx ~dst:g ~meth:"AddMember" ~args:[ Loid.to_value m ]
        with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "AddMember: %s" (Err.to_string e))
      members;
    ignore (Api.call_exn sys ctx ~dst:g ~meth:"SetMode" ~args:[ Value.Str "quorum" ]);
    ignore (Api.call_exn sys ctx ~dst:g ~meth:"SetFenced" ~args:[ Value.Bool true ])
  in
  configure g_maj;
  configure g_min;
  let invoke_via c g meth args =
    Api.call sys c ~dst:g ~meth:"Invoke" ~args:[ Value.Str meth; Value.List args ]
  in
  (* Full connectivity: fenced writes through either head commit (and
     warm each head's member bindings, so fencing decisions under the
     partition are about reachability, not name-service access). *)
  (match invoke_via ctx g_maj "Increment" [ Value.Int 1 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "fenced write, no partition: %s" (Err.to_string e));
  (match invoke_via ctx_min g_min "Increment" [ Value.Int 1 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "fenced write via g_min: %s" (Err.to_string e));
  System.run sys;
  let v0 = List.map (member_value_via sys ctx) members in
  let v0_min = List.map (member_value_via sys ctx_min) minority in
  (* Cut site c off. *)
  Network.set_partitioned net 0 2 true;
  Network.set_partitioned net 1 2 true;
  let mark = Recorder.total obs in
  (* The majority side keeps committing: 3 of 5 reachable is a strict
     majority. *)
  (match invoke_via ctx g_maj "Increment" [ Value.Int 10 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "majority quorum write: %s" (Err.to_string e));
  (* The minority side is fenced: a typed, retryable rejection, with
     nothing applied anywhere. *)
  (match invoke_via ctx_min g_min "Increment" [ Value.Int 100 ] with
  | Error (Err.No_quorum { have; need; _ } as e) ->
      Alcotest.(check int) "minority reach" 2 have;
      Alcotest.(check int) "strict majority of 5" 3 need;
      Alcotest.(check bool) "retryable" true (Err.is_retryable e);
      Alcotest.(check bool) "not a delivery failure" false
        (Err.is_delivery_failure e)
  | Error e -> Alcotest.failf "expected No_quorum, got %s" (Err.to_string e)
  | Ok v -> Alcotest.failf "minority write must fence, got %s" (Value.to_string v));
  List.iter2
    (fun m v ->
      Alcotest.(check int) "minority member untouched" v
        (member_value_via sys ctx_min m))
    minority v0_min;
  Alcotest.(check bool) "majority side advanced" true
    (member_value_via sys ctx (List.hd members) > List.hd v0);
  (* Arm anti-entropy, then heal: the partition watcher sweeps
     Reconcile over the group and the stale minority members converge
     onto the freshest (majority) state. *)
  ignore (Repair.reconcile_on_heal ctx ~net ~groups:[ g_maj ]);
  Network.set_partitioned net 0 2 false;
  Network.set_partitioned net 1 2 false;
  System.run sys;
  (* Drain any straggling retransmissions with one more sweep, then a
     final sweep must find zero divergent members. *)
  (match Api.call sys ctx ~dst:g_maj ~meth:"Reconcile" ~args:[] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "manual reconcile: %s" (Err.to_string e));
  (match Api.call sys ctx ~dst:g_maj ~meth:"Reconcile" ~args:[] with
  | Ok (Value.Record fields) ->
      Alcotest.(check bool) "divergence drained to zero" true
        (List.assoc_opt "divergent" fields = Some (Value.Int 0))
  | Ok v -> Alcotest.failf "reconcile reply: %s" (Value.to_string v)
  | Error e -> Alcotest.failf "reconcile: %s" (Err.to_string e));
  (match List.map (member_value_via sys ctx) members with
  | v :: rest ->
      List.iter (fun v' -> Alcotest.(check int) "members converged" v v') rest
  | [] -> ());
  (* The protocol left its trace: the minority head fenced, then the
     heal-triggered reconciliation ran over the group. *)
  let events = Recorder.events_since obs mark in
  match
    Trace.(
      run
        (seq
           [
             matches ~label:"minority fences" (no_quorum ~loid:g_min ());
             matches ~label:"heal reconciles" (reconcile ~loid:g_maj ());
           ])
        events)
  with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

(* Regression: repair managers and heal-reconcilers must deregister
   their network watchers on teardown. Before watcher handles existed,
   every [start]/[reconcile_on_heal] appended a closure that could
   never be removed, so repeated cycles (an Repair manager per repaired
   object, over a long run) leaked watchers that kept firing against
   dead managers. *)
let test_watcher_teardown () =
  let sys = boot () in
  let net = System.net sys in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let loid = Api.create_object_exn sys ctx ~cls () in
  let opr =
    Opr.make ~kind:Well_known.kind_app
      ~units:[ H.counter_unit; Well_known.unit_object ]
      ()
  in
  let worker n (s : System.site) = List.nth s.System.net_hosts n in
  let sites = System.sites sys in
  let hosts = List.map (worker 1) sites in
  let pool = hosts @ List.map (worker 2) sites in
  let mgr =
    match
      Api.sync sys (fun k ->
          Repair.deploy ~ctx ~net ~loid ~opr ~hosts ~pool
            ~semantic:Address.Ordered_failover ~register_with:cls k)
    with
    | Ok m -> m
    | Error e -> Alcotest.failf "Repair.deploy: %s" (Err.to_string e)
  in
  let baseline = Network.watcher_count net in
  (* start installs exactly one host watcher; a second start must not
     stack another; stop removes it. *)
  Repair.start mgr ~period:0.5 ~until:(System.now sys +. 60.0);
  Alcotest.(check int) "start installs one watcher" (baseline + 1)
    (Network.watcher_count net);
  Repair.start mgr ~period:0.5 ~until:(System.now sys +. 60.0);
  Alcotest.(check int) "restart does not stack" (baseline + 1)
    (Network.watcher_count net);
  Repair.stop mgr;
  Alcotest.(check int) "stop deregisters" baseline (Network.watcher_count net);
  for _ = 1 to 10 do
    Repair.start mgr ~period:0.5 ~until:(System.now sys +. 60.0);
    Repair.stop mgr
  done;
  Alcotest.(check int) "start/stop churn leaves no leak" baseline
    (Network.watcher_count net);
  (* The heal-reconciler hands back its handle for the same reason. *)
  let w = Repair.reconcile_on_heal ctx ~net ~groups:[ loid ] in
  Alcotest.(check int) "reconciler registered" (baseline + 1)
    (Network.watcher_count net);
  Network.remove_watcher net w;
  Alcotest.(check int) "reconciler removable" baseline
    (Network.watcher_count net)

(* --- Self-healing system-level replication (one LOID, §4.3) --- *)

let test_replica_repair () =
  let sys = boot () in
  let net = System.net sys in
  let rt = System.rt sys in
  let obs = System.obs sys in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let loid = Api.create_object_exn sys ctx ~cls () in
  let opr =
    Opr.make ~kind:Well_known.kind_app
      ~units:[ H.counter_unit; Well_known.unit_object ]
      ()
  in
  (* Replicas on one non-infrastructure host per site; the remaining
     workers are the spare pool. *)
  let worker n (s : System.site) = List.nth s.System.net_hosts n in
  let sites = System.sites sys in
  let hosts = List.map (worker 1) sites in
  let pool = hosts @ List.map (worker 2) sites in
  let mgr =
    match
      Api.sync sys (fun k ->
          Repair.deploy ~ctx ~net ~loid ~opr ~hosts ~pool
            ~semantic:Address.Ordered_failover ~register_with:cls k)
    with
    | Ok m -> m
    | Error e -> Alcotest.failf "Repair.deploy: %s" (Err.to_string e)
  in
  Alcotest.(check int) "r = 3" 3 (Repair.replica_count mgr);
  Repair.start mgr ~period:0.5 ~until:(System.now sys +. 60.0);
  ignore (Api.call_exn sys ctx ~dst:loid ~meth:"Increment" ~args:[ Value.Int 5 ]);
  let epoch0 = Runtime.current_epoch rt loid in
  let mark = Recorder.total obs in
  (* Crash the primary's host; the host watcher repairs instantly, the
     probe sweep is the backstop. *)
  let victim = List.hd (Repair.replica_hosts mgr) in
  Runtime.crash_host rt victim;
  System.run_for sys 3.0;
  Alcotest.(check int) "factor restored" 3 (Repair.replica_count mgr);
  Alcotest.(check int) "one repair" 1 (Repair.repairs mgr);
  Alcotest.(check bool) "replacement avoids the dead host" true
    (not (List.mem victim (Repair.replica_hosts mgr)));
  Alcotest.(check bool) "epoch bumped" true
    (Runtime.current_epoch rt loid > epoch0);
  (* The LOID keeps answering through the repaired, re-registered
     address (stale cached bindings fence and rebind). *)
  (match Api.call sys ctx ~dst:loid ~meth:"Get" ~args:[] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "post-repair call: %s" (Err.to_string e));
  let events = Recorder.events_since obs mark in
  match
    Trace.(
      run
        (seq
           [
             matches ~label:"loss detected" (replica_lost ~loid ~host:victim ());
             matches ~label:"factor restored" (replica_repair ~loid ());
           ])
        events)
  with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg

let () =
  Alcotest.run "group"
    [
      ( "object groups",
        [
          Alcotest.test_case "broadcast keeps members convergent" `Quick
            test_group_broadcast;
          Alcotest.test_case "membership" `Quick test_group_membership;
          Alcotest.test_case "modes under member failure" `Quick
            test_group_modes_under_failure;
          Alcotest.test_case "empty group refuses" `Quick test_group_empty_refused;
          Alcotest.test_case "state survives deactivation" `Quick
            test_group_state_survives_deactivation;
        ] );
      ( "partitions",
        [ Alcotest.test_case "partition and heal" `Quick test_partition_and_heal ] );
      ( "self-healing",
        [
          Alcotest.test_case "fenced quorum and anti-entropy (3/2 split)" `Quick
            test_fenced_split_brain;
          Alcotest.test_case "replica repair restores the factor" `Quick
            test_replica_repair;
          Alcotest.test_case "watchers deregister on teardown" `Quick
            test_watcher_teardown;
        ] );
    ]
