(* Tests for run-time multiple inheritance (§2.1.1), class types
   (§2.1.2), class cloning (§5.2.2), Scheduling Agents, Contexts (§4.1)
   and system-level replication (§4.3). *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Address = Legion_naming.Address
module Well_known = Legion_core.Well_known
module Impl = Legion_core.Impl
module Opr = Legion_core.Opr
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Sched_part = Legion_sched.Sched_part
module Context_part = Legion_ctx.Context_part
module Replicate = Legion_repl.Replicate
module System = Legion.System
module Api = Legion.Api
module H = Helpers

(* A second application unit for multiple inheritance: a tagger. *)
let tagger_unit = "test.tagger"

let tagger_factory (_ctx : Runtime.ctx) : Impl.part =
  let tag = ref "untagged" in
  let set_tag _ctx args _env k =
    match args with
    | [ Value.Str s ] ->
        tag := s;
        k Impl.ok_unit
    | _ -> Impl.bad_args k "SetTag expects one string"
  in
  let get_tag _ctx args _env k =
    match args with
    | [] -> k (Ok (Value.Str !tag))
    | _ -> Impl.bad_args k "GetTag takes no arguments"
  in
  (* Deliberate collision with the counter unit, for precedence tests. *)
  let get _ctx args _env k =
    match args with
    | [] -> k (Ok (Value.Str ("tagger:" ^ !tag)))
    | _ -> Impl.bad_args k "Get takes no arguments"
  in
  Impl.part
    ~methods:[ ("SetTag", set_tag); ("GetTag", get_tag); ("Get", get) ]
    ~save:(fun () -> Value.Str !tag)
    ~restore:(fun v ->
      match v with
      | Value.Str s ->
          tag := s;
          Ok ()
      | _ -> Error "tagger state must be a string")
    tagger_unit

let boot () =
  Impl.register tagger_unit tagger_factory;
  H.boot_two_sites ()

(* --- InheritFrom: run-time multiple inheritance --- *)

let test_inherit_from () =
  let sys = boot () in
  let ctx = System.client sys () in
  let counter_cls = H.make_counter_class sys ctx () in
  let tagger_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"Tagger"
      ~units:[ tagger_unit ]
      ~idl:"interface Tagger { SetTag(s: str); GetTag(): str; Get(): str; }" ()
  in
  (* Two-step multiple inheritance (§2.1.1): derive, then InheritFrom. *)
  let multi =
    Api.derive_class_exn sys ctx ~parent:counter_cls ~name:"TaggedCounter" ()
  in
  (match Api.inherit_from sys ctx ~cls:multi ~base:tagger_cls with
  | Ok () -> ()
  | Error e -> Alcotest.failf "InheritFrom: %s" (Err.to_string e));
  (* Future instances compose both behaviours. *)
  let obj = Api.create_object_exn sys ctx ~cls:multi () in
  let v = Api.call_exn sys ctx ~dst:obj ~meth:"Increment" ~args:[ Value.Int 2 ] in
  Alcotest.(check int) "counter behaviour" 2 (H.int_exn v);
  (match Api.call_exn sys ctx ~dst:obj ~meth:"SetTag" ~args:[ Value.Str "hi" ] with
  | Value.Unit -> ()
  | v -> Alcotest.failf "SetTag: %s" (Value.to_string v));
  (match Api.call_exn sys ctx ~dst:obj ~meth:"GetTag" ~args:[] with
  | Value.Str "hi" -> ()
  | v -> Alcotest.failf "GetTag: %s" (Value.to_string v));
  (* Precedence: the derived chain (counter) defines Get first; the
     base added by InheritFrom must not override it. *)
  let v = Api.call_exn sys ctx ~dst:obj ~meth:"Get" ~args:[] in
  Alcotest.(check int) "existing methods win over inherited" 2 (H.int_exn v);
  (* The merged interface lists both. *)
  match Api.get_interface sys ctx ~cls:multi with
  | Ok iface ->
      Alcotest.(check bool) "has Increment" true
        (Legion_idl.Interface.mem iface "Increment");
      Alcotest.(check bool) "has SetTag" true
        (Legion_idl.Interface.mem iface "SetTag")
  | Error e -> Alcotest.failf "GetInterface: %s" (Err.to_string e)

let test_inherit_state_survives () =
  (* Both units' states must round-trip through deactivation. *)
  let sys = boot () in
  let ctx = System.client sys () in
  let counter_cls = H.make_counter_class sys ctx () in
  let tagger_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"Tagger2"
      ~units:[ tagger_unit ] ()
  in
  let multi = Api.derive_class_exn sys ctx ~parent:counter_cls ~name:"TC2" () in
  (match Api.inherit_from sys ctx ~cls:multi ~base:tagger_cls with
  | Ok () -> ()
  | Error e -> Alcotest.failf "InheritFrom: %s" (Err.to_string e));
  let obj = Api.create_object_exn sys ctx ~cls:multi () in
  ignore (Api.call_exn sys ctx ~dst:obj ~meth:"Increment" ~args:[ Value.Int 5 ]);
  ignore (Api.call_exn sys ctx ~dst:obj ~meth:"SetTag" ~args:[ Value.Str "saved" ]);
  let mag = List.hd (System.magistrates sys) in
  let deactivated =
    List.exists
      (fun m ->
        match Api.call sys ctx ~dst:m ~meth:"Deactivate" ~args:[ Loid.to_value obj ] with
        | Ok _ -> true
        | Error _ -> false)
      (System.magistrates sys)
  in
  ignore mag;
  Alcotest.(check bool) "deactivated somewhere" true deactivated;
  let v = Api.call_exn sys ctx ~dst:obj ~meth:"GetTag" ~args:[] in
  (match v with
  | Value.Str "saved" -> ()
  | v -> Alcotest.failf "tag lost: %s" (Value.to_string v));
  let v = Api.call_exn sys ctx ~dst:obj ~meth:"Get" ~args:[] in
  Alcotest.(check int) "counter survived too" 5 (H.int_exn v)

let test_diamond_inheritance () =
  (* Diamond: B and C both inherit from A; D derives from B and also
     inherits from C. A's unit must appear once in D's instances, and
     B's definitions (the primary chain) take precedence. *)
  let sys = boot () in
  let ctx = System.client sys () in
  let a =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"DiaA"
      ~units:[ H.counter_unit ] ()
  in
  let b = Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"DiaB" () in
  let c = Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"DiaC" () in
  (match Api.inherit_from sys ctx ~cls:b ~base:a with
  | Ok () -> ()
  | Error e -> Alcotest.failf "B from A: %s" (Err.to_string e));
  (match Api.inherit_from sys ctx ~cls:c ~base:a with
  | Ok () -> ()
  | Error e -> Alcotest.failf "C from A: %s" (Err.to_string e));
  let d = Api.derive_class_exn sys ctx ~parent:b ~name:"DiaD" () in
  (match Api.inherit_from sys ctx ~cls:d ~base:c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "D from C: %s" (Err.to_string e));
  (* D's instance units contain the counter unit exactly once. *)
  (match Api.call sys ctx ~dst:d ~meth:"GetInheritInfo" ~args:[] with
  | Ok info -> (
      match Legion_core.Convert.str_list_field info "units" with
      | Ok units ->
          let n =
            List.length (List.filter (fun u -> u = H.counter_unit) units)
          in
          Alcotest.(check int) "diamond deduplicated" 1 n
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.failf "GetInheritInfo: %s" (Err.to_string e));
  (* And instances behave once, not twice. *)
  let obj = Api.create_object_exn sys ctx ~cls:d () in
  let v = Api.call_exn sys ctx ~dst:obj ~meth:"Increment" ~args:[ Value.Int 3 ] in
  Alcotest.(check int) "single counter" 3 (H.int_exn v)

let test_checkpoint_all () =
  let sys = boot () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let objs =
    List.init 6 (fun i ->
        let o = Api.create_object_exn sys ctx ~cls ~eager:true () in
        ignore (Api.call_exn sys ctx ~dst:o ~meth:"Increment" ~args:[ Value.Int i ]);
        o)
  in
  let swept = System.checkpoint_all sys in
  Alcotest.(check bool)
    (Printf.sprintf "swept the fleet (%d)" swept)
    true (swept >= 6);
  List.iter
    (fun o ->
      Alcotest.(check bool) "inert" true
        (Runtime.find_proc (System.rt sys) o = None))
    objs;
  (* Everything comes back on reference with state intact. *)
  List.iteri
    (fun i o ->
      let v = H.int_exn (Api.call_exn sys ctx ~dst:o ~meth:"Get" ~args:[]) in
      Alcotest.(check int) "state" i v)
    objs

let test_selective_inheritance () =
  (* The §2.1 footnote: a subclass drops one of its parent's units. *)
  let sys = boot () in
  let ctx = System.client sys () in
  let counter_cls = H.make_counter_class sys ctx () in
  let spec =
    Value.Record
      [
        ("name", Value.Str "Lean");
        ("exclude_units", Value.List [ Value.Str H.counter_unit ]);
      ]
  in
  let lean =
    match Api.call sys ctx ~dst:counter_cls ~meth:"Derive" ~args:[ spec ] with
    | Ok v -> (
        match Legion_core.Convert.loid_field v "loid" with
        | Ok l -> l
        | Error e -> Alcotest.fail e)
    | Error e -> Alcotest.failf "derive: %s" (Err.to_string e)
  in
  let obj = Api.create_object_exn sys ctx ~cls:lean () in
  (* The excluded behaviour is gone; the mandatory base remains. *)
  (match Api.call sys ctx ~dst:obj ~meth:"Increment" ~args:[ Value.Int 1 ] with
  | Error (Err.No_such_method _) -> ()
  | r ->
      Alcotest.failf "excluded unit still answers: %s"
        (match r with Ok v -> Value.to_string v | Error e -> Err.to_string e));
  match Api.call sys ctx ~dst:obj ~meth:"Ping" ~args:[] with
  | Ok Value.Unit -> ()
  | _ -> Alcotest.fail "base unit must survive exclusion"

let test_override_mandatory_method () =
  (* "Classes may alter the functionality of object-mandatory member
     functions by overloading them" (§2.1.3): a unit earlier in the
     composition redefines GetInfo. *)
  let sys = boot () in
  Impl.register "test.loud"
    (fun _ctx ->
      Impl.part
        ~methods:[ ("GetInfo", fun _ _ _ k -> k (Ok (Value.Str "LOUD"))) ]
        "test.loud");
  let ctx = System.client sys () in
  let cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"Loud"
      ~units:[ "test.loud" ] ()
  in
  let obj = Api.create_object_exn sys ctx ~cls () in
  match Api.call_exn sys ctx ~dst:obj ~meth:"GetInfo" ~args:[] with
  | Value.Str "LOUD" -> ()
  | v -> Alcotest.failf "override lost: %s" (Value.to_string v)

let test_fixed_class_refuses_inherit () =
  let sys = boot () in
  let ctx = System.client sys () in
  let counter_cls = H.make_counter_class sys ctx () in
  let fixed =
    Api.derive_class_exn sys ctx ~parent:counter_cls ~name:"FixedCounter"
      ~fixed:true ()
  in
  match Api.inherit_from sys ctx ~cls:fixed ~base:Well_known.legion_object with
  | Error (Err.Refused _) -> ()
  | Ok () -> Alcotest.fail "fixed class inherited"
  | Error e -> Alcotest.failf "unexpected: %s" (Err.to_string e)

let test_private_class_refuses_derive () =
  let sys = boot () in
  let ctx = System.client sys () in
  let counter_cls = H.make_counter_class sys ctx () in
  let priv =
    Api.derive_class_exn sys ctx ~parent:counter_cls ~name:"PrivCounter"
      ~private_:true ()
  in
  (* Instances fine, subclasses refused (§2.1.2). *)
  let obj = Api.create_object_exn sys ctx ~cls:priv () in
  ignore (Api.call_exn sys ctx ~dst:obj ~meth:"Increment" ~args:[ Value.Int 1 ]);
  match Api.derive_class sys ctx ~parent:priv ~name:"Sub" () with
  | Error (Err.Refused _) -> ()
  | Ok _ -> Alcotest.fail "private class derived"
  | Error e -> Alcotest.failf "unexpected: %s" (Err.to_string e)

let test_abstract_user_class () =
  let sys = boot () in
  let ctx = System.client sys () in
  let counter_cls = H.make_counter_class sys ctx () in
  let abs =
    Api.derive_class_exn sys ctx ~parent:counter_cls ~name:"AbsCounter"
      ~abstract:true ()
  in
  (match Api.create_object sys ctx ~cls:abs () with
  | Error (Err.Refused _) -> ()
  | _ -> Alcotest.fail "abstract class created an instance");
  (* But deriving a concrete subclass works, and it can create. *)
  let conc = Api.derive_class_exn sys ctx ~parent:abs ~name:"ConcCounter" () in
  let obj = Api.create_object_exn sys ctx ~cls:conc () in
  let v = Api.call_exn sys ctx ~dst:obj ~meth:"Increment" ~args:[ Value.Int 3 ] in
  Alcotest.(check int) "concrete subclass works" 3 (H.int_exn v)

(* --- Typed classes: IDL enforcement at dispatch --- *)

let test_typed_class_enforces_interface () =
  let sys = boot () in
  let ctx = System.client sys () in
  let cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"TypedCounter"
      ~units:[ H.counter_unit ] ~idl:H.counter_idl ~typed:true ()
  in
  let obj = Api.create_object_exn sys ctx ~cls () in
  (* Well-typed calls pass. *)
  let v = Api.call_exn sys ctx ~dst:obj ~meth:"Increment" ~args:[ Value.Int 2 ] in
  Alcotest.(check int) "typed call works" 2 (H.int_exn v);
  (* Wrong argument type refused before the handler runs. *)
  (match Api.call sys ctx ~dst:obj ~meth:"Increment" ~args:[ Value.Str "x" ] with
  | Error (Err.Refused _) -> ()
  | r ->
      Alcotest.failf "ill-typed call admitted: %s"
        (match r with Ok v -> Value.to_string v | Error e -> Err.to_string e));
  (* Wrong arity refused. *)
  (match Api.call sys ctx ~dst:obj ~meth:"Increment" ~args:[] with
  | Error (Err.Refused _) -> ()
  | _ -> Alcotest.fail "wrong arity admitted");
  (* Undeclared method refused, even though a handler exists for it? No
     handler exists for "Bogus" anyway; but "Reset" IS declared in the
     idl and implemented, so it passes. *)
  (match Api.call sys ctx ~dst:obj ~meth:"Reset" ~args:[] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "declared method refused: %s" (Err.to_string e));
  (* State did not change from the refused calls. *)
  let v = Api.call_exn sys ctx ~dst:obj ~meth:"Get" ~args:[] in
  Alcotest.(check int) "refused calls had no effect" 0 (H.int_exn v);
  (* Mandatory machinery still works on typed objects. *)
  (match Api.call sys ctx ~dst:obj ~meth:"SaveState" ~args:[] with
  | Ok (Value.Record _) -> ()
  | _ -> Alcotest.fail "SaveState must bypass interface checks");
  match Api.call sys ctx ~dst:obj ~meth:"Ping" ~args:[] with
  | Ok Value.Unit -> ()
  | _ -> Alcotest.fail "Ping must bypass interface checks"

let test_typed_survives_deactivation () =
  let sys = boot () in
  let ctx = System.client sys () in
  let cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"TypedC2"
      ~units:[ H.counter_unit ] ~idl:H.counter_idl ~typed:true ()
  in
  let obj = Api.create_object_exn sys ctx ~cls () in
  ignore (Api.call_exn sys ctx ~dst:obj ~meth:"Increment" ~args:[ Value.Int 1 ]);
  let deactivated =
    List.exists
      (fun m ->
        match Api.call sys ctx ~dst:m ~meth:"Deactivate" ~args:[ Loid.to_value obj ] with
        | Ok _ -> true
        | Error _ -> false)
      (System.magistrates sys)
  in
  Alcotest.(check bool) "deactivated" true deactivated;
  (* The enforced interface survives the OPR round trip. *)
  (match Api.call sys ctx ~dst:obj ~meth:"Increment" ~args:[ Value.Str "x" ] with
  | Error (Err.Refused _) -> ()
  | _ -> Alcotest.fail "interface enforcement lost after reactivation");
  let v = Api.call_exn sys ctx ~dst:obj ~meth:"Get" ~args:[] in
  Alcotest.(check int) "state intact" 1 (H.int_exn v)

let test_typed_class_via_mpl () =
  (* The paper's second IDL drives the same machinery end to end. *)
  let sys = boot () in
  let ctx = System.client sys () in
  let cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"MplCounter"
      ~units:[ H.counter_unit ]
      ~mpl:"mentat class MplCounter { int Increment(int d); int Get(); void Reset(); }"
      ~typed:true ()
  in
  let obj = Api.create_object_exn sys ctx ~cls () in
  let v = Api.call_exn sys ctx ~dst:obj ~meth:"Increment" ~args:[ Value.Int 4 ] in
  Alcotest.(check int) "works" 4 (H.int_exn v);
  match Api.call sys ctx ~dst:obj ~meth:"Increment" ~args:[ Value.Str "x" ] with
  | Error (Err.Refused _) -> ()
  | _ -> Alcotest.fail "MPL-declared interface not enforced"

(* --- Host capacity --- *)

let test_host_capacity_failover () =
  let sys = boot () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let site0 = System.site sys 0 in
  (* Cap every host at site 0 to one Legion process... each already runs
     infrastructure, so cap the first host to its current load: further
     activations there are refused and the magistrate must fall over. *)
  let first_host = List.hd site0.System.host_objects in
  (match Api.call sys ctx ~dst:first_host ~meth:"SetCPUload" ~args:[ Value.Int 1 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "SetCPUload: %s" (Err.to_string e));
  (* Force placement attempts at the capped host; the magistrate's
     failover must land them elsewhere rather than failing. *)
  let objs =
    List.init 3 (fun _ ->
        Api.create_object_exn sys ctx ~cls ~eager:true
          ~magistrate:site0.System.magistrate ~host:first_host ())
  in
  List.iter
    (fun o ->
      match Runtime.find_proc (System.rt sys) o with
      | Some p ->
          Alcotest.(check bool) "placed off the capped host" true
            (Runtime.proc_host p <> List.hd site0.System.net_hosts)
      | None -> Alcotest.fail "not active")
    objs

(* --- Clone (§5.2.2) --- *)

let test_clone () =
  let sys = boot () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let obj0 = Api.create_object_exn sys ctx ~cls () in
  let clone =
    match Api.call sys ctx ~dst:cls ~meth:"Clone" ~args:[] with
    | Ok v -> (
        match Legion_core.Convert.loid_field v "loid" with
        | Ok l -> l
        | Error e -> Alcotest.fail e)
    | Error e -> Alcotest.failf "Clone: %s" (Err.to_string e)
  in
  Alcotest.(check bool) "clone is a class" true (Loid.is_class clone);
  Alcotest.(check bool) "different class id" false
    (Int64.equal (Loid.class_id clone) (Loid.class_id cls));
  (* The clone creates instances with the same behaviour and is
     responsible for them. *)
  let obj1 = Api.create_object_exn sys ctx ~cls:clone () in
  let v = Api.call_exn sys ctx ~dst:obj1 ~meth:"Increment" ~args:[ Value.Int 7 ] in
  Alcotest.(check int) "clone instance behaves" 7 (H.int_exn v);
  Alcotest.check H.loid_t "clone responsible for its instances" clone
    (Loid.responsible_class obj1);
  (* Original instances unaffected. *)
  let v = Api.call_exn sys ctx ~dst:obj0 ~meth:"Increment" ~args:[ Value.Int 1 ] in
  Alcotest.(check int) "original still fine" 1 (H.int_exn v);
  (* Interfaces match (§5.2.2: "without changing the interface"). *)
  match (Api.get_interface sys ctx ~cls, Api.get_interface sys ctx ~cls:clone) with
  | Ok a, Ok b ->
      Alcotest.(check (list string)) "same methods"
        (Legion_idl.Interface.method_names a)
        (Legion_idl.Interface.method_names b)
  | _ -> Alcotest.fail "GetInterface failed"

(* --- Scheduling Agents --- *)

let test_sched_agents_pick () =
  let sys = boot () in
  let ctx = System.client sys () in
  let site0 = System.site sys 0 in
  (* Spawn one agent of each policy directly. *)
  let spawn_sched unit_name =
    let loid = System.fresh_instance_loid sys ~of_class:Well_known.legion_object in
    let opr =
      Opr.make ~kind:Well_known.kind_sched
        ~units:[ unit_name; Well_known.unit_object ]
        ()
    in
    match
      Impl.activate (System.rt sys) ~host:(List.hd site0.System.net_hosts) ~loid opr
    with
    | Ok proc ->
        Runtime.set_binding_agent proc (Some site0.System.agent_address);
        (loid, proc)
    | Error msg -> Alcotest.failf "spawn sched: %s" msg
  in
  let candidates =
    Value.List
      (List.map
         (fun (h, load) ->
           Value.Record [ ("host", Loid.to_value h); ("load", Value.Int load) ])
         [
           (Loid.make ~class_id:3L ~class_specific:1L (), 5);
           (Loid.make ~class_id:3L ~class_specific:2L (), 1);
           (Loid.make ~class_id:3L ~class_specific:3L (), 3);
         ])
  in
  let pick unit_name =
    let _, proc = spawn_sched unit_name in
    let reply =
      Api.sync sys (fun k ->
          Runtime.invoke_address ctx
            ~address:(Runtime.address_of proc)
            ~dst:(Runtime.proc_loid proc) ~meth:"PickHost" ~args:[ candidates ]
            ~env:(Legion_sec.Env.of_self (Runtime.proc_loid ctx.Runtime.self))
            k)
    in
    match reply with
    | Ok v -> (
        match Loid.of_value v with
        | Ok l -> l
        | Error e -> Alcotest.fail e)
    | Error e -> Alcotest.failf "PickHost: %s" (Err.to_string e)
  in
  (* Least loaded picks the load-1 host. *)
  let least = pick Sched_part.unit_least_loaded in
  Alcotest.(check int64) "least loaded" 2L (Loid.class_specific least);
  (* Random picks a member. *)
  let r = pick Sched_part.unit_random in
  Alcotest.(check bool) "random picks a candidate" true
    (List.mem (Loid.class_specific r) [ 1L; 2L; 3L ])

let test_live_load_agent () =
  (* The live-probe agent balances real load even when the magistrate's
     counters have drifted (objects deactivated behind its back). *)
  let sys = boot () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let site0 = System.site sys 0 in
  let sched_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"LiveSched"
      ~units:[ Sched_part.unit_live_load ]
      ~kind:Well_known.kind_sched ()
  in
  let sched = Api.create_object_exn sys ctx ~cls:sched_cls ~eager:true () in
  (* Create then immediately deactivate several objects: counters drift. *)
  for _ = 1 to 6 do
    let o =
      Api.create_object_exn sys ctx ~cls ~eager:true
        ~magistrate:site0.System.magistrate ()
    in
    ignore
      (Api.call sys ctx ~dst:site0.System.magistrate ~meth:"Deactivate"
         ~args:[ Loid.to_value o ])
  done;
  (* Now place through the live agent: every placement probes. *)
  let placed =
    List.init 6 (fun _ ->
        Api.create_object_exn sys ctx ~cls ~eager:true
          ~magistrate:site0.System.magistrate ~sched ())
  in
  let rt = System.rt sys in
  let per_host =
    List.map
      (fun h ->
        List.length
          (List.filter
             (fun p -> Runtime.proc_kind p = Well_known.kind_app)
             (Runtime.procs_on_host rt h)))
      site0.System.net_hosts
  in
  let mx = List.fold_left Stdlib.max 0 per_host in
  Alcotest.(check bool)
    (Printf.sprintf "balanced despite drift (max %d of %d)" mx (List.length placed))
    true (mx <= 3)

let test_magistrate_uses_sched_agent () =
  let sys = boot () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let site0 = System.site sys 0 in
  (* A scheduling agent derived and created through the normal class
     machinery (it is an object like any other). *)
  let sched_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object
      ~name:"RoundRobinSched"
      ~units:[ Sched_part.unit_round_robin ]
      ~kind:Well_known.kind_sched ()
  in
  let sched = Api.create_object_exn sys ctx ~cls:sched_cls ~eager:true () in
  (* Create objects with the sched hint; the Magistrate consults it. *)
  let o1 =
    Api.create_object_exn sys ctx ~cls ~eager:true
      ~magistrate:site0.System.magistrate ~sched ()
  in
  let o2 =
    Api.create_object_exn sys ctx ~cls ~eager:true
      ~magistrate:site0.System.magistrate ~sched ()
  in
  let host_of o =
    match Runtime.find_proc (System.rt sys) o with
    | Some p -> Runtime.proc_host p
    | None -> Alcotest.fail "not active"
  in
  (* Round robin over three hosts: consecutive placements differ. *)
  Alcotest.(check bool) "round robin rotates" false (host_of o1 = host_of o2)

(* --- Contexts (§4.1) --- *)

let test_context_bind_lookup () =
  let sys = boot () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let ctx_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"Context"
      ~units:[ Context_part.unit_name ]
      ~kind:Well_known.kind_context ()
  in
  let root = Api.create_object_exn sys ctx ~cls:ctx_cls ~eager:true () in
  let home = Api.create_object_exn sys ctx ~cls:ctx_cls ~eager:true () in
  let counter = Api.create_object_exn sys ctx ~cls () in
  (* Build /home/counter. *)
  ignore
    (Api.call_exn sys ctx ~dst:root ~meth:"Bind"
       ~args:[ Value.Str "home"; Loid.to_value home ]);
  ignore
    (Api.call_exn sys ctx ~dst:home ~meth:"Bind"
       ~args:[ Value.Str "counter"; Loid.to_value counter ]);
  (* Resolve the path, then use the object. *)
  let resolved =
    Api.sync sys (fun k -> Context_part.resolve_path ctx ~root "home/counter" k)
  in
  (match resolved with
  | Ok l -> Alcotest.check H.loid_t "path resolves" counter l
  | Error e -> Alcotest.failf "resolve: %s" (Err.to_string e));
  (* Unknown names fail with Not_bound. *)
  (match
     Api.sync sys (fun k -> Context_part.resolve_path ctx ~root "home/ghost" k)
   with
  | Error (Err.Not_bound _) -> ()
  | _ -> Alcotest.fail "ghost resolved");
  (* Unbind works. *)
  ignore (Api.call_exn sys ctx ~dst:home ~meth:"Unbind" ~args:[ Value.Str "counter" ]);
  match
    Api.sync sys (fun k -> Context_part.resolve_path ctx ~root "home/counter" k)
  with
  | Error (Err.Not_bound _) -> ()
  | _ -> Alcotest.fail "unbound name resolved"

let test_ensure_path () =
  let sys = boot () in
  let ctx = System.client sys () in
  let ctx_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"CtxEP"
      ~units:[ Context_part.unit_name ]
      ~kind:Well_known.kind_context ()
  in
  let root = Api.create_object_exn sys ctx ~cls:ctx_cls ~eager:true () in
  let create_context k =
    match Api.create_object sys ctx ~cls:ctx_cls ~eager:true () with
    | Ok (l, _) -> k (Ok l)
    | Error e -> k (Error e)
  in
  let deep =
    match
      Api.sync sys (fun k ->
          Context_part.ensure_path ctx ~root ~create_context "a/b/c" k)
    with
    | Ok l -> l
    | Error e -> Alcotest.failf "ensure_path: %s" (Err.to_string e)
  in
  (* The path now resolves, to the same final context. *)
  (match Api.sync sys (fun k -> Context_part.resolve_path ctx ~root "a/b/c" k) with
  | Ok l -> Alcotest.check H.loid_t "resolves to the created context" deep l
  | Error e -> Alcotest.failf "resolve: %s" (Err.to_string e));
  (* Idempotent: ensuring again reuses every segment. *)
  match
    Api.sync sys (fun k ->
        Context_part.ensure_path ctx ~root ~create_context "a/b/c" k)
  with
  | Ok l -> Alcotest.check H.loid_t "idempotent" deep l
  | Error e -> Alcotest.failf "re-ensure: %s" (Err.to_string e)

(* --- Replication (§4.3) --- *)

let replicated_counter_opr () =
  Opr.make ~kind:Well_known.kind_app
    ~units:[ H.counter_unit; Well_known.unit_object ]
    ()

let test_replicate_deploy () =
  let sys = boot () in
  let ctx = System.client sys () in
  let rt = System.rt sys in
  let loid = System.fresh_instance_loid sys ~of_class:Well_known.legion_object in
  let hosts =
    [
      List.hd (System.site sys 0).System.net_hosts;
      List.hd (System.site sys 1).System.net_hosts;
    ]
  in
  match
    Replicate.deploy rt ~loid ~opr:(replicated_counter_opr ()) ~hosts
      ~semantic:Address.All
  with
  | Error msg -> Alcotest.failf "deploy: %s" msg
  | Ok (procs, address) ->
      Alcotest.(check int) "two replicas" 2 (List.length procs);
      Alcotest.(check int) "two elements" 2 (List.length (Address.elements address));
      (* Invoke through the replicated address: both receive it. *)
      ignore
        (Api.sync sys (fun k ->
             Runtime.invoke_address ctx ~address ~dst:loid ~meth:"Increment"
               ~args:[ Value.Int 1 ]
               ~env:(Legion_sec.Env.of_self (Runtime.proc_loid ctx.Runtime.self))
               k));
      (* The first reply wins the race; drain the simulation so the
         slower replica's delivery completes before asserting. *)
      System.run sys;
      List.iter
        (fun p -> Alcotest.(check int) "replica received" 1 (Runtime.requests_of p))
        procs

let test_replicate_failover_via_class () =
  (* Deploy via Host Objects, register the multi-address with the class,
     then kill the first replica's host: calls transparently fail over. *)
  let sys = boot () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  (* A LOID allocated by the class (lazy create), then re-registered as
     replicated. *)
  let loid = Api.create_object_exn sys ctx ~cls () in
  let h0 = List.nth (System.site sys 0).System.host_objects 1 in
  let h1 = List.nth (System.site sys 1).System.host_objects 1 in
  let address =
    Api.sync sys (fun k ->
        Replicate.deploy_via_hosts ctx ~loid ~opr:(replicated_counter_opr ())
          ~host_objects:[ h0; h1 ] ~semantic:Address.Ordered_failover
          ~register_with:cls k)
  in
  let address =
    match address with
    | Ok (a, failed) ->
        Alcotest.(check int) "no failed hosts" 0 (List.length failed);
        a
    | Error e -> Alcotest.failf "deploy_via_hosts: %s" (Err.to_string e)
  in
  Alcotest.(check int) "two elements" 2 (List.length (Address.elements address));
  (* First call lands on the first element. *)
  let v = Api.call_exn sys ctx ~dst:loid ~meth:"Increment" ~args:[ Value.Int 1 ] in
  Alcotest.(check int) "first replica answers" 1 (H.int_exn v);
  (* Kill the first replica's network host; failover reaches the second
     replica (whose own state starts at zero — system-level replication
     does not synchronise state, §4.3). *)
  let net_host_of_hostobj h =
    let site = System.site sys 0 in
    let rec find hosts objs =
      match (hosts, objs) with
      | nh :: _, ho :: _ when Loid.equal ho h -> Some nh
      | _ :: hs, _ :: os -> find hs os
      | _ -> None
    in
    find site.System.net_hosts site.System.host_objects
  in
  (match net_host_of_hostobj h0 with
  | Some nh -> Legion_net.Network.set_host_up (System.net sys) nh false
  | None -> Alcotest.fail "host object not found");
  let v = Api.call_exn sys ctx ~dst:loid ~meth:"Increment" ~args:[ Value.Int 1 ] in
  Alcotest.(check int) "second replica took over" 1 (H.int_exn v)

let () =
  Alcotest.run "features"
    [
      ( "inheritance",
        [
          Alcotest.test_case "InheritFrom composes behaviour" `Quick
            test_inherit_from;
          Alcotest.test_case "multi-unit state survives deactivation" `Quick
            test_inherit_state_survives;
          Alcotest.test_case "diamond inheritance deduplicates" `Quick
            test_diamond_inheritance;
          Alcotest.test_case "checkpoint_all" `Quick test_checkpoint_all;
          Alcotest.test_case "selective inheritance" `Quick
            test_selective_inheritance;
          Alcotest.test_case "override a mandatory method" `Quick
            test_override_mandatory_method;
          Alcotest.test_case "fixed class refuses InheritFrom" `Quick
            test_fixed_class_refuses_inherit;
          Alcotest.test_case "private class refuses Derive" `Quick
            test_private_class_refuses_derive;
          Alcotest.test_case "abstract user class" `Quick test_abstract_user_class;
        ] );
      ("clone", [ Alcotest.test_case "clone relieves a hot class" `Quick test_clone ]);
      ( "typed dispatch",
        [
          Alcotest.test_case "interface enforced at dispatch" `Quick
            test_typed_class_enforces_interface;
          Alcotest.test_case "enforcement survives deactivation" `Quick
            test_typed_survives_deactivation;
          Alcotest.test_case "typed class from MPL source" `Quick
            test_typed_class_via_mpl;
        ] );
      ( "host capacity",
        [
          Alcotest.test_case "capped host causes failover" `Quick
            test_host_capacity_failover;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "agents pick hosts" `Quick test_sched_agents_pick;
          Alcotest.test_case "magistrate consults the agent" `Quick
            test_magistrate_uses_sched_agent;
          Alcotest.test_case "live-probe agent beats count drift" `Quick
            test_live_load_agent;
        ] );
      ( "context",
        [
          Alcotest.test_case "bind, lookup, path resolve" `Quick
            test_context_bind_lookup;
          Alcotest.test_case "ensure_path (mkdir -p)" `Quick test_ensure_path;
        ] );
      ( "replication",
        [
          Alcotest.test_case "direct deploy, All semantics" `Quick
            test_replicate_deploy;
          Alcotest.test_case "failover through the class" `Quick
            test_replicate_failover_via_class;
        ] );
    ]
