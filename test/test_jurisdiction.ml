(* Tests for Jurisdictions and Magistrates: storage, activation,
   deactivation, Delete, and the Copy/Move migration of Fig. 11. *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Disk = Legion_store.Disk
module Persistent = Legion_store.Persistent
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module System = Legion.System
module Api = Legion.Api
module H = Helpers

(* --- Storage substrate --- *)

let test_disk_basic () =
  let d = Disk.create ~name:"d0" in
  Disk.write d ~key:"a" "hello";
  Alcotest.(check (option string)) "read back" (Some "hello") (Disk.read d ~key:"a");
  Alcotest.(check int) "bytes" 5 (Disk.bytes_used d);
  Disk.write d ~key:"a" "hi";
  Alcotest.(check int) "overwrite adjusts bytes" 2 (Disk.bytes_used d);
  Disk.delete d ~key:"a";
  Alcotest.(check (option string)) "deleted" None (Disk.read d ~key:"a");
  Alcotest.(check int) "empty" 0 (Disk.bytes_used d);
  Alcotest.(check int) "writes counted" 2 (Disk.writes d)

let test_persistent_stripes () =
  let d0 = Disk.create ~name:"d0" and d1 = Disk.create ~name:"d1" in
  let p = Persistent.create ~disks:[ d0; d1 ] () in
  let l = Loid.make ~class_id:1L ~class_specific:1L () in
  let opa1 = Persistent.put p ~loid:l "v1" in
  let opa2 = Persistent.put p ~loid:l "v2" in
  (* Round-robin across disks, distinct version files. *)
  Alcotest.(check bool) "different disks" true
    (opa1.Persistent.Opa.disk <> opa2.Persistent.Opa.disk);
  Alcotest.(check bool) "distinct files" false (Persistent.Opa.equal opa1 opa2);
  Alcotest.(check (option string)) "get v1" (Some "v1") (Persistent.get p opa1);
  Persistent.remove p opa1;
  Alcotest.(check (option string)) "removed" None (Persistent.get p opa1);
  Alcotest.(check int) "one file left" 1 (Persistent.total_files p);
  (* put_at rejects foreign disks. *)
  (match Persistent.put_at p { Persistent.Opa.disk = "nope"; file = "f" } "x" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "foreign disk accepted")

let test_opa_roundtrip () =
  let opa = { Persistent.Opa.disk = "d0"; file = "obj.v3.opr" } in
  match Persistent.Opa.of_value (Persistent.Opa.to_value opa) with
  | Ok opa' -> Alcotest.(check bool) "roundtrip" true (Persistent.Opa.equal opa opa')
  | Error e -> Alcotest.failf "roundtrip: %s" e

(* Disk accounting invariant: bytes_used always equals the sum of live
   file sizes, through any write/overwrite/delete sequence. *)
let disk_accounting_prop =
  QCheck.Test.make ~name:"disk bytes_used matches live files" ~count:200
    QCheck.(small_list (pair (int_bound 5) (string_of_size Gen.(0 -- 12))))
    (fun ops ->
      let d = Disk.create ~name:"prop" in
      List.iter
        (fun (slot, data) ->
          let key = Printf.sprintf "f%d" slot in
          if String.length data = 0 then Disk.delete d ~key
          else Disk.write d ~key data)
        ops;
      let expected =
        List.fold_left
          (fun acc key ->
            acc + String.length (Option.value ~default:"" (Disk.read d ~key)))
          0 (Disk.keys d)
      in
      Disk.bytes_used d = expected)

(* --- Magistrate behaviour --- *)

let test_store_creates_opr_on_disk () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let site0 = System.site sys 0 in
  let before = Persistent.total_files site0.System.storage in
  let _loid =
    Api.create_object_exn sys ctx ~cls
      ~magistrate:site0.System.magistrate ()
  in
  Alcotest.(check int) "one more OPR file" (before + 1)
    (Persistent.total_files site0.System.storage)

let test_jurisdiction_info () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let site0 = System.site sys 0 in
  match
    Api.call sys ctx ~dst:site0.System.magistrate ~meth:"GetJurisdictionInfo"
      ~args:[]
  with
  | Error e -> Alcotest.failf "info: %s" (Err.to_string e)
  | Ok v ->
      (match Legion_core.Convert.str_field v "jurisdiction" with
      | Ok name -> Alcotest.(check string) "named after site" "uva" name
      | Error e -> Alcotest.fail e);
      (match Legion_core.Convert.int_field v "objects" with
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)

let test_activate_unknown_object () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let mag = List.hd (System.magistrates sys) in
  let ghost = Loid.make ~class_id:123L ~class_specific:9L () in
  match
    Api.call sys ctx ~dst:mag ~meth:"Activate"
      ~args:[ Loid.to_value ghost; Value.Record [] ]
  with
  | Error (Err.Not_bound _) -> ()
  | r ->
      Alcotest.failf "expected not_bound, got %s"
        (match r with Ok v -> Value.to_string v | Error e -> Err.to_string e)

let test_copy_makes_two_magistrates () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let m0 = (System.site sys 0).System.magistrate in
  let m1 = (System.site sys 1).System.magistrate in
  let loid = Api.create_object_exn sys ctx ~cls ~magistrate:m0 () in
  let _ = Api.call_exn sys ctx ~dst:loid ~meth:"Increment" ~args:[ Value.Int 4 ] in
  (* Copy to the other Jurisdiction: OPR lands on m1's storage, and both
     magistrates now hold a persistent representation. *)
  (match
     Api.call sys ctx ~dst:m0 ~meth:"Copy"
       ~args:[ Loid.to_value loid; Loid.to_value m1 ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "copy: %s" (Err.to_string e));
  let objects_of mag =
    match Api.call sys ctx ~dst:mag ~meth:"ListObjects" ~args:[] with
    | Ok (Value.List vs) -> List.length vs
    | _ -> Alcotest.fail "ListObjects"
  in
  Alcotest.(check bool) "m1 knows the object" true (objects_of m1 >= 1);
  (* Copy deactivates first (§3.8): the object is Inert now. *)
  Alcotest.(check bool) "inert after copy" true
    (Runtime.find_proc (System.rt sys) loid = None);
  (* Reference reactivates it with the counter intact. *)
  let v = Api.call_exn sys ctx ~dst:loid ~meth:"Get" ~args:[] in
  Alcotest.(check int) "state survived copy" 4 (H.int_exn v)

let test_move_changes_jurisdiction () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let m0 = (System.site sys 0).System.magistrate in
  let m1 = (System.site sys 1).System.magistrate in
  let site1_storage = (System.site sys 1).System.storage in
  let loid = Api.create_object_exn sys ctx ~cls ~magistrate:m0 () in
  let _ = Api.call_exn sys ctx ~dst:loid ~meth:"Increment" ~args:[ Value.Int 9 ] in
  let before_files = Persistent.total_files site1_storage in
  (match
     Api.call sys ctx ~dst:m0 ~meth:"Move"
       ~args:[ Loid.to_value loid; Loid.to_value m1 ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "move: %s" (Err.to_string e));
  (* Source forgot it... *)
  (match
     Api.call sys ctx ~dst:m0 ~meth:"Activate"
       ~args:[ Loid.to_value loid; Value.Record [] ]
   with
  | Error (Err.Not_bound _) -> ()
  | _ -> Alcotest.fail "source magistrate still knows the object");
  (* ...the destination holds the OPR... *)
  Alcotest.(check int) "OPR at destination" (before_files + 1)
    (Persistent.total_files site1_storage);
  (* ...and a reference brings it back in the new Jurisdiction — on one
     of site 1's hosts. *)
  let v = Api.call_exn sys ctx ~dst:loid ~meth:"Get" ~args:[] in
  Alcotest.(check int) "state survived move" 9 (H.int_exn v);
  match Runtime.find_proc (System.rt sys) loid with
  | None -> Alcotest.fail "object not active"
  | Some proc ->
      let host = Runtime.proc_host proc in
      Alcotest.(check bool) "runs at site 1" true
        (List.mem host (System.site sys 1).System.net_hosts)

let test_magistrate_delete () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let m0 = (System.site sys 0).System.magistrate in
  let site0 = System.site sys 0 in
  let loid = Api.create_object_exn sys ctx ~cls ~magistrate:m0 () in
  let _ = Api.call_exn sys ctx ~dst:loid ~meth:"Increment" ~args:[ Value.Int 1 ] in
  let files_before = Persistent.total_files site0.System.storage in
  (match Api.call sys ctx ~dst:m0 ~meth:"Delete" ~args:[ Loid.to_value loid ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "delete: %s" (Err.to_string e));
  Alcotest.(check int) "OPR removed" (files_before - 1)
    (Persistent.total_files site0.System.storage);
  Alcotest.(check bool) "process killed" true
    (Runtime.find_proc (System.rt sys) loid = None)

let test_host_placement_hint () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let site0 = System.site sys 0 in
  let target_host_obj = List.nth site0.System.host_objects 2 in
  let target_net_host = List.nth site0.System.net_hosts 2 in
  let loid =
    Api.create_object_exn sys ctx ~cls ~eager:true
      ~magistrate:site0.System.magistrate ~host:target_host_obj ()
  in
  match Runtime.find_proc (System.rt sys) loid with
  | None -> Alcotest.fail "not active"
  | Some proc ->
      Alcotest.(check int) "honoured the host hint (the §3.8 two-LOID \
                            Activate overload)" target_net_host
        (Runtime.proc_host proc)

let test_candidate_magistrate_rescue () =
  (* Fig. 16's Candidate Magistrate List in action: the object's current
     magistrate becomes unreachable, but a candidate holds a copy of the
     OPR (from an earlier Copy) and rescues the activation. *)
  let sys =
    Helpers.register_counter_unit ();
    Legion.System.boot ~seed:61L
      ~rt_config:{ Runtime.default_config with call_timeout = 1.0 }
      ~sites:[ ("uva", 3); ("doe", 3) ]
      ()
  in
  let ctx = System.client sys () in
  let m0 = (System.site sys 0).System.magistrate in
  let m1 = (System.site sys 1).System.magistrate in
  (* Keep the class object itself out of the blast radius: its process,
     like the Binding Agent the site-1 client uses, lives at site 1. *)
  let cls =
    Api.derive_class_exn sys ctx ~parent:Legion_core.Well_known.legion_object
      ~name:"Counter" ~units:[ H.counter_unit ] ~magistrate:m1 ()
  in
  let loid =
    Api.create_object_exn sys ctx ~cls ~magistrate:m0 ~candidates:[ m1 ] ()
  in
  ignore (Api.call_exn sys ctx ~dst:loid ~meth:"Increment" ~args:[ Value.Int 5 ]);
  (* Mirror the OPR at the candidate, then scrub m1 from the Current
     Magistrate List so only the candidate link remains. *)
  (match Api.call sys ctx ~dst:m0 ~meth:"Copy" ~args:[ Loid.to_value loid; Loid.to_value m1 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "copy: %s" (Legion_rt.Err.to_string e));
  (match
     Api.call sys ctx ~dst:cls ~meth:"NotifyMagistrates"
       ~args:[ Loid.to_value loid; Value.List []; Value.List [ Loid.to_value m1 ] ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "notify: %s" (Legion_rt.Err.to_string e));
  (* The current magistrate dies (its process only: killing the whole
     infrastructure host would also take LegionClass, which the paper
     starts exactly once and never replicates — a different outage). *)
  Runtime.kill_loid (System.rt sys) m0;
  (* A site-1 client references the object: resolution exhausts the
     dead current magistrate, falls to the candidate, and recovers. *)
  let ctx1 = System.client sys ~site:1 () in
  let v = H.int_exn (Api.call_exn sys ctx1 ~dst:loid ~meth:"Get" ~args:[]) in
  Alcotest.(check int) "rescued by candidate" 5 v

let test_overlapping_jurisdictions () =
  (* §2.2: "Jurisdictions are potentially non-disjoint; both hosts and
     persistent storage may be contained in two or more Jurisdictions."
     Share a host between both magistrates and place objects from each
     on it. *)
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let site0 = System.site sys 0 in
  let m0 = site0.System.magistrate in
  let m1 = (System.site sys 1).System.magistrate in
  let shared_hostobj = List.nth site0.System.host_objects 2 in
  let shared_net_host = List.nth site0.System.net_hosts 2 in
  (match Api.call sys ctx ~dst:m1 ~meth:"AddHost" ~args:[ Loid.to_value shared_hostobj ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "AddHost: %s" (Err.to_string e));
  let o0 =
    Api.create_object_exn sys ctx ~cls ~eager:true ~magistrate:m0
      ~host:shared_hostobj ()
  in
  let o1 =
    Api.create_object_exn sys ctx ~cls ~eager:true ~magistrate:m1
      ~host:shared_hostobj ()
  in
  List.iter
    (fun o ->
      match Runtime.find_proc (System.rt sys) o with
      | Some p ->
          Alcotest.(check int) "both on the shared host" shared_net_host
            (Runtime.proc_host p)
      | None -> Alcotest.fail "not active")
    [ o0; o1 ];
  (* Each object's lifecycle stays with its own Jurisdiction. *)
  (match Api.call sys ctx ~dst:m1 ~meth:"Deactivate" ~args:[ Loid.to_value o1 ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "m1 deactivate: %s" (Err.to_string e));
  (match Api.call sys ctx ~dst:m1 ~meth:"Deactivate" ~args:[ Loid.to_value o0 ] with
  | Error (Err.Not_bound _) -> ()
  | _ -> Alcotest.fail "m1 must not manage m0's object");
  Alcotest.(check bool) "o0 untouched" true
    (Runtime.find_proc (System.rt sys) o0 <> None)

let test_class_object_migration () =
  (* Classes are objects too: deactivate a class object and watch it
     come back with its logical table intact. *)
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let loid = Api.create_object_exn sys ctx ~cls () in
  let _ = Api.call_exn sys ctx ~dst:loid ~meth:"Increment" ~args:[ Value.Int 2 ] in
  (* The class object was created through the normal machinery, so some
     magistrate holds it; find which. *)
  let holds mag =
    match Api.call sys ctx ~dst:mag ~meth:"ListObjects" ~args:[] with
    | Ok (Value.List vs) ->
        List.exists
          (fun v -> match Loid.of_value v with Ok l -> Loid.equal l cls | _ -> false)
          vs
    | _ -> false
  in
  let mag =
    match List.find_opt holds (System.magistrates sys) with
    | Some m -> m
    | None -> Alcotest.fail "no magistrate holds the class"
  in
  (match Api.call sys ctx ~dst:mag ~meth:"Deactivate" ~args:[ Loid.to_value cls ] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "deactivate class: %s" (Err.to_string e));
  Alcotest.(check bool) "class inert" true
    (Runtime.find_proc (System.rt sys) cls = None);
  (* Creating another instance reactivates the class; its table still
     knows the first instance. *)
  let loid2 = Api.create_object_exn sys ctx ~cls () in
  Alcotest.(check bool) "fresh loid" false (Loid.equal loid loid2);
  let v = Api.call_exn sys ctx ~dst:loid ~meth:"Get" ~args:[] in
  Alcotest.(check int) "old instance still reachable" 2 (H.int_exn v)

(* --- Jurisdiction splitting (§2.2) --- *)

let test_split_jurisdiction () =
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let m0 = (System.site sys 0).System.magistrate in
  (* Load the jurisdiction with objects, with visible state. *)
  let objs =
    List.init 10 (fun i ->
        let o = Api.create_object_exn sys ctx ~cls ~magistrate:m0 () in
        ignore (Api.call_exn sys ctx ~dst:o ~meth:"Increment" ~args:[ Value.Int i ]);
        o)
  in
  let count mag =
    match Api.call sys ctx ~dst:mag ~meth:"ListObjects" ~args:[] with
    | Ok (Value.List vs) -> List.length vs
    | _ -> Alcotest.fail "ListObjects"
  in
  let before = count m0 in
  (* Split. *)
  let m2 = System.split_jurisdiction sys ~site:0 in
  let after_m0 = count m0 and after_m2 = count m2 in
  Alcotest.(check int) "nothing lost" before (after_m0 + after_m2);
  Alcotest.(check bool)
    (Printf.sprintf "load split (%d -> %d + %d)" before after_m0 after_m2)
    true
    (after_m2 > 0 && after_m0 < before);
  (* Every object remains reachable with its state, wherever its
     responsibility now lies (classes were notified per transfer). *)
  List.iteri
    (fun i o ->
      let v = H.int_exn (Api.call_exn sys ctx ~dst:o ~meth:"Get" ~args:[]) in
      Alcotest.(check int) "state intact" i v)
    objs;
  (* The new magistrate performs lifecycle operations on its objects. *)
  let adopted =
    match Api.call sys ctx ~dst:m2 ~meth:"ListObjects" ~args:[] with
    | Ok (Value.List (v :: _)) -> (
        match Loid.of_value v with Ok l -> l | Error e -> Alcotest.fail e)
    | _ -> Alcotest.fail "no adopted objects"
  in
  match Api.call sys ctx ~dst:m2 ~meth:"Deactivate" ~args:[ Loid.to_value adopted ] with
  | Ok _ | Error (Err.Not_bound _) ->
      (* Not_bound only if it was already inert on m2's books — both
         fine; the real check is the Get below. *)
      let v = Api.call_exn sys ctx ~dst:adopted ~meth:"Get" ~args:[] in
      Alcotest.(check bool) "adopted object lives on" true
        (match v with Value.Int _ -> true | _ -> false)
  | Error e -> Alcotest.failf "m2 lifecycle: %s" (Err.to_string e)

let test_split_improves_fault_isolation () =
  (* After a split, killing one magistrate leaves the other half of the
     objects fully manageable. *)
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let m0 = (System.site sys 0).System.magistrate in
  let objs =
    List.init 8 (fun i ->
        let o = Api.create_object_exn sys ctx ~cls ~magistrate:m0 () in
        ignore (Api.call_exn sys ctx ~dst:o ~meth:"Increment" ~args:[ Value.Int i ]);
        o)
  in
  let m2 = System.split_jurisdiction sys ~site:0 in
  (* Make everything inert so reactivation needs a live magistrate. *)
  ignore (System.checkpoint_all sys);
  (* The old magistrate dies. *)
  Runtime.kill_loid (System.rt sys) m0;
  (* Objects transferred to m2 stay reachable; m0's are stranded until
     the site restarts it — count both. *)
  let reachable, stranded =
    List.fold_left
      (fun (r, s) o ->
        match Api.call sys ctx ~dst:o ~meth:"Get" ~args:[] with
        | Ok _ -> (r + 1, s)
        | Error _ -> (r, s + 1))
      (0, 0) objs
  in
  Alcotest.(check int) "all accounted for" 8 (reachable + stranded);
  Alcotest.(check bool)
    (Printf.sprintf "m2's share survives (%d reachable, %d stranded)" reachable
       stranded)
    true
    (reachable >= 4);
  ignore m2

let test_adopt_requires_visible_storage () =
  (* A magistrate refuses to adopt an object whose OPR it cannot see —
     different site, different disks. *)
  let sys = H.boot_two_sites () in
  let ctx = System.client sys () in
  let cls = H.make_counter_class sys ctx () in
  let m0 = (System.site sys 0).System.magistrate in
  let m1 = (System.site sys 1).System.magistrate in
  let o = Api.create_object_exn sys ctx ~cls ~magistrate:m0 () in
  ignore o;
  (* Forge an adopt request naming an OPA on m0's disks. *)
  let fake_opa =
    Legion_store.Persistent.Opa.to_value
      { Legion_store.Persistent.Opa.disk = "uva-disk0"; file = "nonexistent.opr" }
  in
  match
    Api.call sys ctx ~dst:m1 ~meth:"AdoptObject" ~args:[ Loid.to_value o; fake_opa ]
  with
  | Error (Err.Refused _) -> ()
  | r ->
      Alcotest.failf "foreign adopt accepted: %s"
        (match r with Ok v -> Value.to_string v | Error e -> Err.to_string e)

let () =
  Alcotest.run "jurisdiction"
    [
      ( "storage",
        [
          Alcotest.test_case "disk basics" `Quick test_disk_basic;
          Alcotest.test_case "striping and versions" `Quick test_persistent_stripes;
          Alcotest.test_case "OPA roundtrip" `Quick test_opa_roundtrip;
          QCheck_alcotest.to_alcotest disk_accounting_prop;
        ] );
      ( "magistrate",
        [
          Alcotest.test_case "StoreObject writes an OPR" `Quick
            test_store_creates_opr_on_disk;
          Alcotest.test_case "jurisdiction info" `Quick test_jurisdiction_info;
          Alcotest.test_case "activate unknown object" `Quick
            test_activate_unknown_object;
          Alcotest.test_case "host placement hint" `Quick test_host_placement_hint;
          Alcotest.test_case "delete removes OPR and process" `Quick
            test_magistrate_delete;
        ] );
      ( "migration",
        [
          Alcotest.test_case "Copy leaves both magistrates responsible" `Quick
            test_copy_makes_two_magistrates;
          Alcotest.test_case "Move changes jurisdiction" `Quick
            test_move_changes_jurisdiction;
          Alcotest.test_case "class objects migrate too" `Quick
            test_class_object_migration;
          Alcotest.test_case "candidate magistrate rescue" `Quick
            test_candidate_magistrate_rescue;
          Alcotest.test_case "overlapping jurisdictions" `Quick
            test_overlapping_jurisdictions;
          Alcotest.test_case "jurisdiction splitting" `Quick test_split_jurisdiction;
          Alcotest.test_case "adopt requires visible storage" `Quick
            test_adopt_requires_visible_storage;
          Alcotest.test_case "split improves fault isolation" `Quick
            test_split_improves_fault_isolation;
        ] );
    ]
