(* E15 — Crash recovery: checkpoint interval sweep under power failure.

   A non-infrastructure host power-fails mid-workload with the recovery
   machinery armed: periodic Magistrate checkpoints (SweepCheckpoint),
   heartbeat failure detection (Suspect -> ConfirmDead), class-driven
   reactivation (NotifyDead -> Reactivate on a surviving host), and
   epoch fencing of the zombie placements the power failure left
   behind. The host reboots later; its superseded placements are reaped.

   Three floors, each enforced per checkpoint interval:

     (a) durability — every update acked before the last pre-crash
         checkpoint of its object survives: a crash loses at most one
         checkpoint interval of acked work;
     (b) detection — ConfirmDead fires within
         threshold * (heartbeat period + probe timeout) + slack of the
         power failure, and MTTR (ConfirmDead -> first successful
         post-recovery delivery, the rt.mttr histogram) stays bounded;
     (c) fencing — zombie placements answer nothing after the crash
         (their delivered-call counters stay flat) and every stale
         placement is fenced. *)

open Exp_common
module Network = Legion_net.Network
module Recorder = Legion_obs.Recorder
module Trace = Legion_obs.Trace
module Script = Legion_sim.Script
module Event = Legion_obs.Event
module Histogram = Legion_util.Stats.Histogram

let n_objects = 8
let call_timeout = 0.5
let probe_timeout = call_timeout /. 10.0
let hb_period = 0.25
let threshold = 3
let crash_after = 6.0
let reboot_after = 4.0
let duration = 16.0
let workload_period = 0.1

let run_one ~interval =
  register_units ();
  let sys =
    System.boot ~seed:53L ~trace_capacity:500_000
      ~rt_config:{ Runtime.default_config with call_timeout }
      ~sites:[ ("a", 3); ("b", 3) ]
      ()
  in
  let ctx = System.client sys () in
  let cls = make_counter_class sys ctx () in
  let objects =
    Array.init n_objects (fun _ -> Api.create_object_exn sys ctx ~cls ~eager:true ())
  in
  Array.iter (fun o -> ignore (Api.call sys ctx ~dst:o ~meth:"Get" ~args:[])) objects;
  let sim = System.sim sys
  and net = System.net sys
  and obs = System.obs sys
  and rt = System.rt sys in
  let mark = Recorder.total obs in
  let t0 = System.now sys in
  let t_end = t0 +. duration in
  System.enable_recovery sys ~checkpoint_period:interval
    ~heartbeat_period:hb_period ~threshold ~until:t_end ();
  let infra = List.map (fun s -> List.hd s.System.net_hosts) (System.sites sys) in
  let victim =
    match List.filter (fun h -> not (List.mem h infra)) (Network.hosts net) with
    | h :: _ -> h
    | [] -> failwith "E15: no non-infrastructure host"
  in
  let t_crash = t0 +. crash_after in
  (* Zombie bookkeeping: at the instant of the power failure, snapshot
     every application placement stranded on the victim with its
     delivered-call count. The epoch fence must keep those counts flat. *)
  let zombies = ref [] in
  Script.at sim ~time:t_crash (fun () ->
      zombies :=
        Runtime.procs_on_host rt victim
        |> List.filter (fun p -> Runtime.proc_kind p = Well_known.kind_app)
        |> List.map (fun p -> (p, Runtime.requests_of p));
      Runtime.power_fail rt victim);
  Script.at sim ~time:(t_crash +. reboot_after) (fun () ->
      Network.set_host_up net victim true);
  (* Open-loop workload; acks are recorded with their virtual time so
     durability can be judged against per-object checkpoint times. *)
  let acks = Array.make n_objects [] (* (ack time, value), newest first *) in
  let prng = Prng.create ~seed:59L in
  Script.every sim ~period:workload_period ~until:(t_end -. 1e-9) (fun () ->
      let i = Prng.int prng n_objects in
      Runtime.invoke ctx ~dst:objects.(i) ~meth:"Increment" ~args:[ Value.Int 1 ]
        (function
          | Ok (Value.Int n) -> acks.(i) <- (System.now sys, n) :: acks.(i)
          | Ok _ | Error _ -> ()));
  System.run sys;
  let events = Recorder.events_since obs mark in
  let count p = Trace.count_of p events in
  let checkpoints = count (Trace.checkpoint ())
  and suspects = count (Trace.suspect ())
  and confirmed = count (Trace.confirm_dead ())
  and reactivated = count (Trace.reactivate ())
  and fenced = count (Trace.fence ()) in
  (* (b) detection latency and MTTR. *)
  let t_confirm =
    match List.find_opt (Trace.confirm_dead ()) events with
    | Some e -> e.Event.time
    | None -> failwith "E15: host death was never confirmed"
  in
  let detect = t_confirm -. t_crash in
  let detect_bound =
    (float_of_int threshold *. (hb_period +. probe_timeout)) +. hb_period +. 0.5
  in
  if detect > detect_bound then
    failwith
      (Printf.sprintf "E15: detection took %.2f s (bound %.2f s)" detect
         detect_bound);
  let mttr = Recorder.latency obs ~component:"rt.mttr" in
  (match mttr with
  | None -> failwith "E15: no MTTR samples — recovery never completed"
  | Some h ->
      let worst = Histogram.percentile h 100.0 in
      (* Worst-case first-delivery-after-recovery: one timed-out call
         against the dead placement, a rebind, plus workload spacing;
         bucket granularity rounds the histogram estimate up. *)
      let bound = detect_bound +. (2.0 *. call_timeout) +. 3.0 in
      if worst > bound then
        failwith
          (Printf.sprintf "E15: MTTR p100 %.2f s exceeds bound %.2f s" worst
             bound));
  (* (a) durability: for every object, whatever was acked before its
     last pre-crash checkpoint must be visible now. The margin covers
     acks that raced the SaveState capture across the wire. *)
  let margin = 0.1 in
  let lost = ref 0 in
  Array.iteri
    (fun i o ->
      let last_ckpt =
        List.fold_left
          (fun acc e ->
            match e.Event.kind with
            | Event.Checkpoint { loid }
              when Loid.equal loid o && e.Event.time <= t_crash ->
                Float.max acc e.Event.time
            | _ -> acc)
          neg_infinity events
      in
      let floor_value =
        List.fold_left
          (fun acc (t, v) -> if t <= last_ckpt -. margin then max acc v else acc)
          0 acks.(i)
      in
      match Api.call sys ctx ~dst:o ~meth:"Get" ~args:[] with
      | Ok (Value.Int n) -> if n < floor_value then lost := !lost + (floor_value - n)
      | Ok _ -> failwith "E15: bad Get reply"
      | Error e ->
          failwith
            (Printf.sprintf "E15: object %d unreachable after recovery: %s" i
               (Err.to_string e)))
    objects;
  if !lost > 0 then
    failwith
      (Printf.sprintf
         "E15: %d acked updates from before the last checkpoint were lost" !lost);
  (* (c) fencing: no zombie placement answered a call after the crash,
     and every stale placement was fenced (on delivery or at reboot). *)
  List.iter
    (fun (p, before) ->
      let after = Runtime.requests_of p in
      if after <> before then
        failwith
          (Printf.sprintf
             "E15: zombie %s answered %d calls after the power failure"
             (Loid.to_string (Runtime.proc_loid p))
             (after - before)))
    !zombies;
  let stale_zombies =
    List.filter
      (fun (p, _) ->
        Runtime.proc_epoch p < Runtime.current_epoch rt (Runtime.proc_loid p))
      !zombies
  in
  if reactivated > 0 && fenced = 0 then
    failwith "E15: objects were reactivated but no stale placement was fenced";
  if List.length stale_zombies > 0 && fenced < List.length stale_zombies then
    failwith
      (Printf.sprintf "E15: %d stale zombies but only %d fence events"
         (List.length stale_zombies) fenced);
  let mttr_p50 =
    match mttr with Some h -> Histogram.percentile h 50.0 | None -> nan
  in
  [
    Printf.sprintf "%.2f" interval;
    fmt_i checkpoints;
    fmt_i suspects;
    fmt_i confirmed;
    fmt_i reactivated;
    fmt_i fenced;
    Printf.sprintf "%.2f" detect;
    Printf.sprintf "%.2f" mttr_p50;
    fmt_i !lost;
    fmt_i (List.length !zombies);
  ]

let run () =
  let intervals = [ 0.5; 1.0; 2.0 ] in
  let rows = List.map (fun interval -> run_one ~interval) intervals in
  let row_json interval row =
    match row with
    | [ _; ckpts; suspects; confirmed; reactivated; fenced; detect; mttr; lost;
        zombies ] ->
        Printf.sprintf
          "{\"interval\":%.2f,\"checkpoints\":%s,\"suspects\":%s,\
           \"confirmed\":%s,\"reactivated\":%s,\"fenced\":%s,\"detect_s\":%s,\
           \"mttr_p50_s\":%s,\"lost\":%s,\"zombies\":%s}"
          interval ckpts suspects confirmed reactivated fenced detect mttr lost
          zombies
    | _ -> "{}"
  in
  write_bench_json ~file:"BENCH_E15.json"
    (Printf.sprintf "{\"experiment\":\"e15\",\"rows\":[%s]}"
       (String.concat "," (List.map2 row_json intervals rows)));
  print_table
    ~title:
      (Printf.sprintf
         "E15  Crash recovery vs checkpoint interval (power-fail at %.0f s, \
          reboot +%.0f s, heartbeat %.2f s x %d)"
         crash_after reboot_after hb_period threshold)
    ~header:
      [
        "ckpt s"; "ckpts"; "suspects"; "confirmed"; "reactivated"; "fenced";
        "detect s"; "mttr p50 s"; "lost"; "zombies";
      ]
    rows
