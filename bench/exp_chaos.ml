(* E22 — Adversarial chaos exploration with exactly-once effects.

   A fleet of seeded random fault schedules (crashes, power failures,
   partitions, loss ramps, duplication, reordering, corruption, delay
   spikes) runs against the composed ledger + transaction + fenced
   group workload of Legion_chaos.Explorer. Gates:

     (a) every schedule reports zero invariant violations — no double
         applies, no partial commits, no orphaned locks, nothing in
         doubt, no post-reconcile drift, epochs monotone, everything
         alive after heal;
     (b) a duplication-heavy schedule with the dedup cache ON passes
         with dedup hits recorded, and the SAME schedule with dedup
         OFF detects double applies — proving both halves of the
         exactly-once claim;
     (c) byte-determinism: a sampled subset of schedules is run twice
         and the two report rows must be byte-identical.

   On any violation the failing schedule is shrunk to a locally
   minimal replayable artifact (E22_FAILING_SCHEDULE.txt; rerun it
   with `legion-sim chaos --replay`). Scale knobs for CI smoke:
   E22_SCHEDULES (default 200), E22_ROUNDS (16), E22_DETERMINISM_EVERY
   (1 = every schedule runs twice). *)

open Exp_common
module Schedule = Legion_chaos.Schedule
module Explorer = Legion_chaos.Explorer

let seed =
  match Sys.getenv_opt "LEGION_TRACE_SEED" with
  | Some s -> Int64.of_string s
  | None -> 61L

let env_int name default =
  match Sys.getenv_opt name with Some s -> int_of_string s | None -> default

let n_schedules = env_int "E22_SCHEDULES" 200
let rounds = env_int "E22_ROUNDS" 16
let determinism_every = env_int "E22_DETERMINISM_EVERY" 1

(* The dedicated duplication-heavy schedule for gate (b): lots of
   duplicates and some loss, but no crashes or partitions, so a double
   apply can only come from duplicate execution — never from recovery
   replay — and the dedup-off run is a clean detector. *)
let dup_heavy =
  {
    Schedule.seed = Int64.add seed 9000L;
    workload = Schedule.Uniform;
    rounds = 12;
    steps =
      [
        { Schedule.at = 1; action = Schedule.Duplicate 0.4 };
        { Schedule.at = 1; action = Schedule.Drop 0.08 };
        { Schedule.at = 6; action = Schedule.Reorder (0.3, 0.02) };
      ];
  }

let fail_with_artifact sch rep why =
  let min_sch, min_rep = Explorer.shrink sch rep in
  Out_channel.with_open_text "E22_FAILING_SCHEDULE.txt" (fun oc ->
      output_string oc (Schedule.to_string min_sch));
  failwith
    (Printf.sprintf
       "E22: %s; minimized schedule written to E22_FAILING_SCHEDULE.txt \
        (%d steps):\n%s\nviolations:\n  %s"
       why
       (List.length min_sch.Schedule.steps)
       (Schedule.to_string min_sch)
       (String.concat "\n  " min_rep.Explorer.violations))

let run () =
  (* Gate (a) + (c): the seeded fleet. *)
  let violations = ref 0 in
  let rows = ref [] in
  let t_wall = Unix.gettimeofday () in
  for i = 1 to n_schedules do
    let sch =
      Schedule.generate ~rounds ~seed:(Int64.add seed (Int64.of_int i)) ()
    in
    let rep = Explorer.run sch in
    let row = Explorer.report_json sch rep in
    if Explorer.failed rep then begin
      incr violations;
      fail_with_artifact sch rep
        (Printf.sprintf "schedule %d (seed %Ld) violated invariants" i
           sch.Schedule.seed)
    end;
    if i mod determinism_every = 0 then begin
      let row' = Explorer.report_json sch (Explorer.run sch) in
      if not (String.equal row row') then
        failwith
          (Printf.sprintf "E22: schedule %d nondeterministic\n  %s\n  %s" i
             row row')
    end;
    if i <= 10 || i mod 25 = 0 then rows := (i, row) :: !rows
  done;
  let wall = Unix.gettimeofday () -. t_wall in
  (* Gate (b): both halves of the exactly-once claim. *)
  let on = Explorer.run ~dedup:true dup_heavy in
  if Explorer.failed on then
    fail_with_artifact dup_heavy on "dup-heavy schedule failed with dedup ON";
  if on.Explorer.dedup_hits = 0 then
    failwith "E22: dup-heavy schedule recorded no dedup hits";
  if on.Explorer.duplicated = 0 then
    failwith "E22: dup-heavy schedule injected no duplicates";
  let off = Explorer.run ~dedup:false dup_heavy in
  if off.Explorer.double_applies = 0 then
    failwith
      "E22: dedup OFF failed to detect double applies under duplication \
       (detector is blind)";
  (* Determinism of the dedicated schedule too. *)
  let on' = Explorer.run ~dedup:true dup_heavy in
  if
    not
      (String.equal
         (Explorer.report_json dup_heavy on)
         (Explorer.report_json dup_heavy on'))
  then failwith "E22: dup-heavy schedule nondeterministic";
  write_bench_json ~file:"BENCH_E22.json"
    (Printf.sprintf
       "{\"experiment\":\"e22\",\"seed\":%Ld,\"schedules\":%d,\"rounds\":%d,\
        \"violations\":%d,\"dup_heavy_on\":%s,\"dup_heavy_off\":%s,\
        \"sample_rows\":[%s]}"
       seed n_schedules rounds !violations
       (Explorer.report_json dup_heavy on)
       (Explorer.report_json dup_heavy off)
       (String.concat ","
          (List.rev_map (fun (_, r) -> r) !rows)));
  print_table
    ~title:
      (Printf.sprintf
         "E22  Adversarial chaos exploration (%d schedules x %d rounds, seed \
          %Ld, %.1fs wall; gates: 0 violations, dedup ON absorbs / OFF \
          detects, byte-deterministic)"
         n_schedules rounds seed wall)
    ~header:[ "metric"; "dedup on"; "dedup off" ]
    [
      [ "schedules"; fmt_i n_schedules; "-" ];
      [ "fleet violations"; fmt_i !violations; "-" ];
      [ "dup-heavy violations";
        fmt_i (List.length on.Explorer.violations);
        fmt_i (List.length off.Explorer.violations) ];
      [ "double applies"; fmt_i on.Explorer.double_applies;
        fmt_i off.Explorer.double_applies ];
      [ "dedup hits"; fmt_i on.Explorer.dedup_hits;
        fmt_i off.Explorer.dedup_hits ];
      [ "duplicates injected"; fmt_i on.Explorer.duplicated;
        fmt_i off.Explorer.duplicated ];
      [ "ledger ops acked"; fmt_i on.Explorer.ledger_acked;
        fmt_i off.Explorer.ledger_acked ];
      [ "txns committed"; fmt_i on.Explorer.txns_committed;
        fmt_i off.Explorer.txns_committed ];
    ]
