(* E21 — noisy neighbor under per-tenant quotas and fair queuing (§2.4).

   Runs the Legion.Tenants scenario twice with the same seed — quiet
   (every tenant inside its budget) and noisy (mallory driven at 10x
   its token budget) — and gates on tenant isolation: the offender's
   overload must not move any well-behaved tenant's p99 by more than a
   bound, every shed must be attributed to the offender (none
   unattributed), and the unauthorized principal must be answered
   Denied at GetBinding in both arms, never receiving a binding. A
   third noisy run checks seed-determinism byte-for-byte. Writes
   BENCH_E21.json.

   Environment knobs (CI smoke runs use these):
     E21_SEED               scenario seed (default 42)
     E21_MAX_P99_SHIFT_MS   per-tenant |noisy - quiet| p99 ceiling (25.0)
     E21_MAX_ERRORS         non-shed error budget per well-behaved lane (0) *)

open Exp_common
module Tenants = Legion.Tenants

let env_i64 name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match Int64.of_string_opt s with Some v -> v | None -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match float_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let lane_rows tag (r : Tenants.report) =
  List.map
    (fun (l : Tenants.lane) ->
      [
        tag;
        l.Tenants.tenant;
        fmt_i l.Tenants.sent;
        fmt_i l.Tenants.oks;
        fmt_i l.Tenants.quota_shed;
        fmt_i l.Tenants.errors;
        Printf.sprintf "%.2f" l.Tenants.p50_ms;
        Printf.sprintf "%.2f" l.Tenants.p99_ms;
      ])
    r.Tenants.lanes

let run () =
  let seed = env_i64 "E21_SEED" 42L in
  let max_shift = env_float "E21_MAX_P99_SHIFT_MS" 25.0 in
  let max_errors = env_int "E21_MAX_ERRORS" 0 in
  let quiet = Tenants.run_scenario ~seed ~noisy:false () in
  let noisy = Tenants.run_scenario ~seed ~noisy:true () in
  let noisy' = Tenants.run_scenario ~seed ~noisy:true () in
  let deterministic =
    String.equal (Tenants.scenario_json noisy) (Tenants.scenario_json noisy')
  in
  print_table
    ~title:
      (Printf.sprintf "E21  noisy neighbor, seed %Ld (mallory 10x budget)"
         seed)
    ~header:
      [ "run"; "tenant"; "sent"; "ok"; "shed"; "errors"; "p50 ms"; "p99 ms" ]
    (lane_rows "quiet" quiet @ lane_rows "noisy" noisy);
  let p99 r name =
    match Tenants.find_lane r name with
    | Some l -> l.Tenants.p99_ms
    | None -> nan
  in
  let shifts =
    List.map
      (fun name -> (name, Float.abs (p99 noisy name -. p99 quiet name)))
      Tenants.well_behaved
  in
  let worst_shift = List.fold_left (fun a (_, s) -> Float.max a s) 0.0 shifts in
  Printf.printf
    "worst well-behaved p99 shift %.2f ms (ceiling %.1f); noisy sheds %d \
     (offender %d, unattributed %d); eve denied %d/%d, bindings %d; \
     deterministic: %b\n"
    worst_shift max_shift noisy.Tenants.shed_events
    noisy.Tenants.shed_by_offender noisy.Tenants.shed_unattributed
    noisy.Tenants.eve_denied noisy.Tenants.eve_probes
    noisy.Tenants.eve_bindings deterministic;
  let json =
    Printf.sprintf
      "{\"seed\": %Ld, \"quiet\": %s, \"noisy\": %s, \"worst_p99_shift_ms\": \
       %.4f, \"deterministic\": %b, \"gates\": {\"max_p99_shift_ms\": %.1f, \
       \"max_errors\": %d}}"
      seed
      (Tenants.scenario_json quiet)
      (Tenants.scenario_json noisy)
      worst_shift deterministic max_shift max_errors
  in
  write_bench_json ~file:"BENCH_E21.json" json;
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  if not deterministic then
    fail "tenants report not byte-deterministic for seed %Ld" seed;
  List.iter
    (fun (name, s) ->
      if s > max_shift then
        fail "%s p99 moved %.2f ms under the noisy neighbor (ceiling %.1f)"
          name s max_shift)
    shifts;
  if noisy.Tenants.shed_events < 1 then
    fail "noisy run never shed: the offender was not over budget";
  if noisy.Tenants.shed_by_offender <> noisy.Tenants.shed_events then
    fail "%d of %d sheds not attributed to the offender"
      (noisy.Tenants.shed_events - noisy.Tenants.shed_by_offender)
      noisy.Tenants.shed_events;
  if noisy.Tenants.shed_unattributed <> 0 then
    fail "%d sheds carried no tenant tag" noisy.Tenants.shed_unattributed;
  List.iter
    (fun r ->
      let tag = if r.Tenants.noisy then "noisy" else "quiet" in
      if r.Tenants.eve_probes < 1 then fail "%s run: eve never probed" tag;
      if r.Tenants.eve_denied <> r.Tenants.eve_probes then
        fail "%s run: only %d of %d eve probes answered Denied" tag
          r.Tenants.eve_denied r.Tenants.eve_probes;
      if r.Tenants.eve_bindings <> 0 then
        fail "%s run: eve resolved a binding %d times" tag
          r.Tenants.eve_bindings;
      if r.Tenants.deny_by_eve < r.Tenants.eve_probes then
        fail "%s run: only %d Deny events attributed to eve for %d probes" tag
          r.Tenants.deny_by_eve r.Tenants.eve_probes;
      List.iter
        (fun name ->
          match Tenants.find_lane r name with
          | None -> fail "%s run: lane %s missing" tag name
          | Some l ->
              if l.Tenants.quota_shed > 0 then
                fail "%s run: well-behaved %s saw %d quota sheds" tag name
                  l.Tenants.quota_shed;
              if l.Tenants.errors > max_errors then
                fail "%s run: %s saw %d errors (budget %d)" tag name
                  l.Tenants.errors max_errors)
        Tenants.well_behaved)
    [ quiet; noisy ];
  if !failures <> [] then begin
    List.iter (Printf.eprintf "E21 gate failed: %s\n") !failures;
    exit 1
  end
