(* E17 — Self-healing replication: repair sweeps, quorum fencing, and
   anti-entropy after a partition heal.

   Part A (repair): a counter replicated r=3 with the Repair manager
   armed; the current primary's host is crashed every few seconds while
   an open-loop workload hammers the LOID. Floors enforced:

     (a) availability — at least 99% of calls succeed across the kill
         sweep (the failover walk plus instant watcher-driven repair
         keep the LOID answering);
     (b) healing — the replication factor is back at r before each
         next kill, and every traced loss has a matching repair.

   Part B (fencing + anti-entropy): a 5-member quorum group split 3/2.
   With fencing, the minority's writes are rejected with the typed
   No_quorum before anything is applied, and the heal-triggered
   anti-entropy sweep drains divergence to zero — every member ends on
   the majority state. The unfenced baseline shows why: its failed
   minority writes still mutate the reachable minority members, and
   the divergence survives the heal. *)

open Exp_common
module Loid = Legion_naming.Loid
module Address = Legion_naming.Address
module Network = Legion_net.Network
module Recorder = Legion_obs.Recorder
module Trace = Legion_obs.Trace
module Script = Legion_sim.Script
module Opr = Legion_core.Opr
module Group_part = Legion_repl.Group_part
module Repair = Legion_repl.Repair

(* --- Part A: replica-kill sweep with the repair manager armed --- *)

let call_timeout = 0.4
let kill_every = 4.0
let n_kills = 3
let duration = 18.0
let workload_period = 0.05
let r = 3

let run_repair () =
  register_units ();
  let sys =
    System.boot ~seed:29L ~trace_capacity:500_000
      ~rt_config:{ Runtime.default_config with call_timeout }
      ~sites:[ ("a", 3); ("b", 3); ("c", 3); ("d", 3) ]
      ()
  in
  let ctx = System.client sys () in
  let net = System.net sys
  and rt = System.rt sys
  and sim = System.sim sys
  and obs = System.obs sys in
  let cls = make_counter_class sys ctx () in
  let loid = Api.create_object_exn sys ctx ~cls () in
  let opr =
    Opr.make ~kind:Well_known.kind_app
      ~units:[ counter_unit; Well_known.unit_object ]
      ()
  in
  let sites = System.sites sys in
  let worker n (s : System.site) = List.nth s.System.net_hosts n in
  let hosts = List.filteri (fun i _ -> i < r) (List.map (worker 1) sites) in
  let pool = hosts @ List.map (worker 2) sites @ [ worker 1 (List.nth sites 3) ] in
  let mgr =
    match
      Api.sync sys (fun k ->
          Repair.deploy ~ctx ~net ~loid ~opr ~hosts ~pool
            ~semantic:Address.Ordered_failover ~register_with:cls k)
    with
    | Ok m -> m
    | Error e -> failwith ("E17: deploy: " ^ Err.to_string e)
  in
  let t0 = System.now sys in
  let t_end = t0 +. duration in
  Repair.start mgr ~period:0.3 ~until:t_end;
  let mark = Recorder.total obs in
  (* Crash the current primary every [kill_every] seconds, and sample
     the replication factor just before each following kill. *)
  let factor_samples = ref [] in
  for i = 1 to n_kills do
    let t_kill = t0 +. (float_of_int i *. kill_every) in
    Script.at sim ~time:t_kill (fun () ->
        match Repair.replica_hosts mgr with
        | h :: _ -> Runtime.crash_host rt h
        | [] -> ());
    Script.at sim
      ~time:(t_kill +. kill_every -. 0.5)
      (fun () -> factor_samples := Repair.replica_count mgr :: !factor_samples)
  done;
  let ok = ref 0 and total = ref 0 in
  Script.every sim ~period:workload_period ~until:(t_end -. 1e-9) (fun () ->
      incr total;
      Runtime.invoke ctx ~dst:loid ~meth:"Increment" ~args:[ Value.Int 1 ]
        (function Ok _ -> incr ok | Error _ -> ()));
  System.run sys;
  let events = Recorder.events_since obs mark in
  let lost = Trace.count_of (Trace.replica_lost ~loid ()) events in
  let repaired = Trace.count_of (Trace.replica_repair ~loid ()) events in
  let availability = float_of_int !ok /. float_of_int !total in
  if availability < 0.99 then
    failwith
      (Printf.sprintf "E17: availability %.4f below the 0.99 floor (%d/%d)"
         availability !ok !total);
  List.iter
    (fun f ->
      if f <> r then
        failwith
          (Printf.sprintf
             "E17: replication factor %d not restored to %d before the next kill"
             f r))
    !factor_samples;
  if Repair.replica_count mgr <> r then
    failwith
      (Printf.sprintf "E17: final replication factor %d, wanted %d"
         (Repair.replica_count mgr) r);
  if lost < n_kills || repaired < n_kills then
    failwith
      (Printf.sprintf "E17: traced %d losses / %d repairs, expected %d each"
         lost repaired n_kills);
  ( [
      fmt_i r;
      fmt_i n_kills;
      Printf.sprintf "%.2f%%" (100.0 *. availability);
      fmt_i lost;
      fmt_i repaired;
      fmt_i (Repair.replica_count mgr);
    ],
    Printf.sprintf
      "{\"r\":%d,\"kills\":%d,\"availability_pct\":%.2f,\"lost\":%d,\
       \"repaired\":%d,\"final_factor\":%d,\"calls\":%d}"
      r n_kills
      (100.0 *. availability)
      lost repaired (Repair.replica_count mgr) !total )

(* --- Part B: 3/2 split, fenced vs unfenced quorum group --- *)

let n_partition_writes = 5

let run_partition ~fenced =
  register_units ();
  Group_part.register ();
  let sys =
    System.boot ~seed:31L ~trace_capacity:500_000
      ~rt_config:{ Runtime.default_config with call_timeout = 0.5 }
      ~sites:[ ("a", 3); ("b", 3); ("c", 3) ]
      ()
  in
  let net = System.net sys and obs = System.obs sys in
  let ctx = System.client sys () in
  let ctx_min = System.client sys ~site:2 () in
  let counter_cls = make_counter_class sys ctx () in
  let group_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name:"Group"
      ~units:[ Group_part.unit_name ] ()
  in
  let site n = System.site sys n in
  let head s =
    Api.create_object_exn sys ctx ~cls:group_cls ~eager:true
      ~magistrate:(site s).System.magistrate ()
  in
  let g_maj = head 0 in
  let g_min = head 2 in
  let member s =
    Api.create_object_exn sys ctx ~cls:counter_cls ~eager:true
      ~magistrate:(site s).System.magistrate ()
  in
  let members = [ member 0; member 0; member 1; member 2; member 2 ] in
  let minority = [ List.nth members 3; List.nth members 4 ] in
  let configure g =
    List.iter
      (fun m ->
        ignore
          (Api.call_exn sys ctx ~dst:g ~meth:"AddMember"
             ~args:[ Loid.to_value m ]))
      members;
    ignore
      (Api.call_exn sys ctx ~dst:g ~meth:"SetMode" ~args:[ Value.Str "quorum" ]);
    ignore
      (Api.call_exn sys ctx ~dst:g ~meth:"SetFenced"
         ~args:[ Value.Bool fenced ])
  in
  configure g_maj;
  configure g_min;
  let invoke_via c g args =
    Api.call sys c ~dst:g ~meth:"Invoke"
      ~args:[ Value.Str "Increment"; Value.List args ]
  in
  let value_via c m =
    match Api.call_exn sys c ~dst:m ~meth:"Get" ~args:[] with
    | Value.Int n -> n
    | _ -> failwith "E17: bad Get reply"
  in
  (* Warm both heads' member bindings before the cut. *)
  ignore (invoke_via ctx g_maj [ Value.Int 1 ]);
  ignore (invoke_via ctx_min g_min [ Value.Int 1 ]);
  System.run sys;
  let v0_min = List.map (value_via ctx_min) minority in
  Network.set_partitioned net 0 2 true;
  Network.set_partitioned net 1 2 true;
  let mark = Recorder.total obs in
  let maj_ok = ref 0 and min_fenced = ref 0 and min_other = ref 0 in
  for _ = 1 to n_partition_writes do
    (match invoke_via ctx g_maj [ Value.Int 10 ] with
    | Ok _ -> incr maj_ok
    | Error _ -> ());
    match invoke_via ctx_min g_min [ Value.Int 100 ] with
    | Error (Err.No_quorum _) -> incr min_fenced
    | Error _ -> incr min_other
    | Ok _ -> incr min_other
  done;
  (* How far the fenced minority moved while cut off: zero means the
     rejections really applied nothing. *)
  let min_drift =
    List.fold_left2
      (fun acc m v0 -> acc + (value_via ctx_min m - v0))
      0 minority v0_min
  in
  (* Heal with the anti-entropy watcher armed (fenced mode only — the
     baseline shows what happens without the machinery). *)
  if fenced then ignore (Repair.reconcile_on_heal ctx ~net ~groups:[ g_maj ]);
  Network.set_partitioned net 0 2 false;
  Network.set_partitioned net 1 2 false;
  System.run sys;
  let divergent_after =
    if fenced then begin
      (* One sweep to catch retransmission stragglers, then the next
         must find nothing left to repair. *)
      ignore (Api.call_exn sys ctx ~dst:g_maj ~meth:"Reconcile" ~args:[]);
      match Api.call_exn sys ctx ~dst:g_maj ~meth:"Reconcile" ~args:[] with
      | Value.Record fields -> (
          match List.assoc_opt "divergent" fields with
          | Some (Value.Int d) -> d
          | _ -> failwith "E17: bad Reconcile reply")
      | _ -> failwith "E17: bad Reconcile reply"
    end
    else -1
  in
  let final_values = List.map (value_via ctx) members in
  let distinct =
    List.length (List.sort_uniq compare final_values)
  in
  let events = Recorder.events_since obs mark in
  let noquorum_events = Trace.count_of (Trace.no_quorum ~loid:g_min ()) events in
  let reconciles = Trace.count_of (Trace.reconcile ~loid:g_maj ()) events in
  if fenced then begin
    if !min_fenced < n_partition_writes then
      failwith
        (Printf.sprintf "E17: only %d/%d minority writes fenced with No_quorum"
           !min_fenced n_partition_writes);
    if min_drift <> 0 then
      failwith
        (Printf.sprintf
           "E17: fenced minority members drifted by %d during the partition"
           min_drift);
    if divergent_after <> 0 then
      failwith
        (Printf.sprintf "E17: %d members still divergent after anti-entropy"
           divergent_after);
    if distinct <> 1 then
      failwith
        (Printf.sprintf "E17: %d distinct member states survived the heal"
           distinct);
    if noquorum_events = 0 then failwith "E17: no NoQuorum event traced";
    if reconciles = 0 then failwith "E17: no Reconcile event traced"
  end
  else begin
    (* The point of the baseline: failed minority writes still mutated
       their reachable members, and the divergence survives the heal. *)
    if min_drift = 0 then
      failwith "E17: unfenced baseline unexpectedly applied nothing";
    if distinct < 2 then
      failwith "E17: unfenced baseline unexpectedly converged"
  end;
  ( [
      (if fenced then "fenced" else "unfenced");
      fmt_i !maj_ok;
      fmt_i !min_fenced;
      fmt_i min_drift;
      (if fenced then fmt_i divergent_after else "-");
      fmt_i distinct;
    ],
    Printf.sprintf
      "{\"mode\":%S,\"majority_commits\":%d,\"minority_fenced\":%d,\
       \"minority_drift\":%d,\"divergent_after_ae\":%s,\"distinct_states\":%d,\
       \"noquorum_events\":%d,\"reconciles\":%d}"
      (if fenced then "fenced" else "unfenced")
      !maj_ok !min_fenced min_drift
      (if fenced then string_of_int divergent_after else "null")
      distinct noquorum_events reconciles )

let run () =
  let repair_row, repair_json = run_repair () in
  let fenced_row, fenced_json = run_partition ~fenced:true in
  let loose_row, loose_json = run_partition ~fenced:false in
  write_bench_json ~file:"BENCH_E17.json"
    (Printf.sprintf
       "{\"experiment\":\"e17\",\"repair\":%s,\"partition\":[%s,%s]}"
       repair_json fenced_json loose_json);
  print_table
    ~title:
      (Printf.sprintf
         "E17a Replica repair under a kill sweep (r=%d, kill every %.0f s, %d \
          kills)"
         r kill_every n_kills)
    ~header:[ "r"; "kills"; "availability"; "lost"; "repaired"; "final r" ]
    [ repair_row ];
  print_table
    ~title:
      (Printf.sprintf
         "E17b Quorum fencing and anti-entropy across a 3/2 split (%d writes \
          per side)"
         n_partition_writes)
    ~header:
      [ "mode"; "maj commits"; "min fenced"; "min drift"; "divergent"; "states" ]
    [ fenced_row; loose_row ]
