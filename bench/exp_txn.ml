(* E20 — Atomic multi-object invocations under fault schedules.

   A fixed transactional workload (a mix of 2PC and saga transactions
   over distinct participant pairs) runs under five schedules: clean,
   participant crash, coordinator crash, site partition, and prepare-
   lock contention (shed). After every schedule heals and the system
   quiesces, atomicity is proved from the store histories alone, and
   four gates are enforced per row:

     (a) zero partial commits — no transaction leaves a Staged entry or
         mixed Committed/Compensated marks, and no commit acknowledged
         to the client is ever recorded compensated;
     (b) zero orphaned prepare locks — every participant answers
         TxnHeld with an empty optional;
     (c) zero in-doubt transactions on any coordinator;
     (d) in the coordinator-crash schedule, the durable commit decision
         provably resumes: at least one Resume event is traced.

   Each schedule is run twice under the same seed and the two reports
   must be byte-identical — the E18/E19 determinism contract extended
   to the transaction machinery. *)

open Exp_common
module Network = Legion_net.Network
module Recorder = Legion_obs.Recorder
module Trace = Legion_obs.Trace
module Persistent = Legion_store.Persistent
module Participant = Legion_txn.Participant
module Coordinator = Legion_txn.Coordinator

let n_participants = 6
let n_rounds = 30
let call_timeout = 0.5

let seed =
  match Sys.getenv_opt "LEGION_TRACE_SEED" with
  | Some s -> Int64.of_string s
  | None -> 53L

let schedules =
  [ "clean"; "crash-participant"; "crash-coordinator"; "partition"; "shed" ]

let host_of rt net loid =
  List.find_opt
    (fun h ->
      List.exists
        (fun p -> Loid.equal (Runtime.proc_loid p) loid)
        (Runtime.procs_on_host rt h))
    (Network.hosts net)

let txn_step dst d =
  Value.Record
    [
      ("dst", Loid.to_value dst);
      ("meth", Value.Str "Increment");
      ("args", Value.List [ Value.Int d ]);
      ("cmeth", Value.Str "Increment");
      ("cargs", Value.List [ Value.Int (-d) ]);
    ]

type outcome = {
  submitted : int;
  committed : int;
  compensated : int;
  resumes : int;
  prepares : int;
  crashes : int;
  partitions : int;
}

let run_one schedule =
  register_units ();
  let sys =
    System.boot ~seed ~trace_capacity:500_000
      ~rt_config:
        { Runtime.default_config with call_timeout; max_rebinds = 4 }
      ~sites:[ ("a", 3); ("b", 3) ]
      ()
  in
  let ctx = System.client sys () in
  let net = System.net sys and rt = System.rt sys and obs = System.obs sys in
  let part_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object
      ~name:"TxnCounter"
      ~units:[ counter_unit; Participant.unit_name ]
      ()
  in
  let coord_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object
      ~name:"TxnCoordinator" ~units:[ Coordinator.unit_name ] ()
  in
  let infra = List.map (fun s -> List.hd s.System.net_hosts) (System.sites sys) in
  let participants =
    Array.init n_participants (fun _ ->
        Api.create_object_exn sys ctx ~cls:part_cls ~eager:true ())
  in
  (* The coordinator must live off the infrastructure hosts so the
     coordinator-crash schedule can kill it without beheading the
     Jurisdiction (magistrates are externally started, §4.2.1). *)
  let coord = ref (Api.create_object_exn sys ctx ~cls:coord_cls ~eager:true ()) in
  let attempts = ref 0 in
  while
    (match host_of rt net !coord with
    | Some h -> List.mem h infra
    | None -> true)
    && !attempts < 16
  do
    incr attempts;
    coord := Api.create_object_exn sys ctx ~cls:coord_cls ~eager:true ()
  done;
  let co = !coord in
  let coord_host =
    match host_of rt net co with
    | Some h -> h
    | None -> failwith "E20: coordinator placement not found"
  in
  (match
     Api.call sys ctx ~dst:co ~meth:"Configure"
       ~args:[ Value.Record [ ("store", Value.Str "a") ] ]
   with
  | Ok _ -> ()
  | Error e -> failwith ("E20: Configure failed: " ^ Err.to_string e));
  let t0 = System.now sys in
  System.enable_recovery sys ~checkpoint_period:0.5 ~heartbeat_period:0.25
    ~threshold:3
    ~until:(t0 +. 200.0)
    ();
  System.run_for sys 2.0;
  let mark = Recorder.total obs in
  let prng = Prng.create ~seed:(Int64.add seed 5L) in
  let submitted = ref [] and committed_acked = ref [] in
  let crashes = ref 0 and partitions = ref 0 in
  let submit ?(async = false) ?mode pair_i pair_j =
    let mode =
      match mode with
      | Some m -> m
      | None -> if Prng.bernoulli prng ~p:0.5 then "2pc" else "saga"
    in
    let d = 1 + Prng.int prng 5 in
    let args =
      [
        Value.Str mode;
        Value.List
          [ txn_step participants.(pair_i) d; txn_step participants.(pair_j) d ];
      ]
    in
    let on_reply = function
      | Ok (Value.Str id) ->
          submitted := id :: !submitted;
          committed_acked := id :: !committed_acked
      | Ok _ -> ()
      | Error (Err.Txn_aborted { txn }) -> submitted := txn :: !submitted
      | Error _ -> () (* outcome resolved from the histories *)
    in
    if async then Runtime.invoke ctx ~dst:co ~meth:"TxnRun" ~args on_reply
    else on_reply (Api.call sys ctx ~dst:co ~meth:"TxnRun" ~args)
  in
  let crash_host h =
    Runtime.power_fail rt h;
    incr crashes;
    ignore
      (Legion_sim.Engine.schedule (System.sim sys) ~delay:6.0 (fun () ->
           Network.set_host_up net h true))
  in
  for round = 1 to n_rounds do
    (match schedule with
    | "shed" ->
        (* Contention: three overlapping transactions racing for the
           same participant pair; prepare locks shed the losers, the
           runtime's backoff retries them after the holder resolves. *)
        submit ~async:true 0 1;
        submit ~async:true 1 0;
        submit ~async:true 0 1
    | _ ->
        let i = Prng.int prng n_participants in
        let j =
          (i + 1 + Prng.int prng (n_participants - 1)) mod n_participants
        in
        (* The coordinator-crash round must be a 2PC transaction: only
           2PC has a Committing window (decision durable, acks pending)
           for the crash to strand and recovery to resume; a saga at
           this point is already fully applied. *)
        if schedule = "crash-coordinator" && round = 10 then
          submit ~mode:"2pc" i j
        else submit i j);
    (match schedule with
    | "crash-participant" when round = 8 || round = 18 ->
        let candidates =
          List.filter
            (fun h ->
              (not (List.mem h infra))
              && h <> coord_host && Network.host_is_up net h)
            (Network.hosts net)
        in
        if candidates <> [] then
          crash_host
            (List.nth candidates (Prng.int prng (List.length candidates)))
    | "crash-coordinator" when round = 10 ->
        (* The synchronous submit above already acknowledged a commit;
           killing the coordinator now leaves that decision only in its
           durable WAL. Recovery must resume it (gate (d)). *)
        crash_host coord_host
    | "partition" when round = 10 || round = 20 ->
        Network.set_partitioned net 0 1 true;
        incr partitions;
        ignore
          (Legion_sim.Engine.schedule (System.sim sys) ~delay:2.0 (fun () ->
               Network.set_partitioned net 0 1 false))
    | _ -> ());
    System.run_for sys 1.0
  done;
  (* Heal and drain: reactivations, TxnResume, redrives. *)
  List.iter (fun h -> Network.set_host_up net h true) (Network.hosts net);
  Network.set_partitioned net 0 1 false;
  System.run_for sys 60.0;
  System.run sys;
  let events = Recorder.events_since obs mark in
  let resumes = Trace.count_of (Trace.resume ()) events in
  let prepares = Trace.count_of (Trace.prepare ()) events in
  (* The E20 audit, from the store histories alone. *)
  let store = (System.site sys 0).System.storage in
  let marks_of id =
    List.concat_map
      (fun loid ->
        List.filter_map
          (fun (e : Persistent.History.entry) ->
            if e.txn = Some id then Some e.mark else None)
          (Persistent.history store ~loid))
      (Persistent.history_loids store)
  in
  let all_ids =
    List.sort_uniq String.compare
      (!submitted
      @ List.concat_map
          (fun loid ->
            List.filter_map
              (fun (e : Persistent.History.entry) -> e.txn)
              (Persistent.history store ~loid))
          (Persistent.history_loids store))
  in
  let committed = ref 0 and compensated = ref 0 in
  List.iter
    (fun id ->
      let marks = marks_of id in
      if List.exists (fun m -> m = Persistent.Staged) marks then
        failwith
          (Printf.sprintf "E20/%s: txn %s left staged entries (partial commit)"
             schedule id);
      let c = List.exists (fun m -> m = Persistent.Committed) marks in
      let x = List.exists (fun m -> m = Persistent.Compensated) marks in
      if c && x then
        failwith
          (Printf.sprintf "E20/%s: txn %s has mixed marks (partial commit)"
             schedule id);
      if c then incr committed;
      if x then incr compensated)
    all_ids;
  List.iter
    (fun id ->
      if List.exists (fun m -> m = Persistent.Compensated) (marks_of id) then
        failwith
          (Printf.sprintf
             "E20/%s: acknowledged commit %s recorded as compensated" schedule
             id))
    !committed_acked;
  (* Gate (b): no orphaned prepare locks. *)
  Array.iteri
    (fun i o ->
      match Api.call sys ctx ~dst:o ~meth:"TxnHeld" ~args:[] with
      | Ok (Value.List []) -> ()
      | Ok (Value.List [ Value.Str t ]) ->
          failwith
            (Printf.sprintf "E20/%s: participant %d holds an orphaned lock (%s)"
               schedule i t)
      | Ok v ->
          failwith
            (Printf.sprintf "E20/%s: TxnHeld odd reply %s" schedule
               (Value.to_string v))
      | Error e ->
          failwith
            (Printf.sprintf "E20/%s: participant %d unreachable: %s" schedule i
               (Err.to_string e)))
    participants;
  (* Gate (c): nothing in doubt on the (possibly reactivated)
     coordinator. *)
  (match Api.call sys ctx ~dst:co ~meth:"TxnStats" ~args:[] with
  | Ok (Value.Record fields) -> (
      match List.assoc_opt "indoubt" fields with
      | Some (Value.Int 0) -> ()
      | Some (Value.Int n) ->
          failwith
            (Printf.sprintf "E20/%s: %d transactions still in doubt" schedule n)
      | _ -> failwith ("E20/" ^ schedule ^ ": TxnStats missing indoubt"))
  | Ok v ->
      failwith
        (Printf.sprintf "E20/%s: TxnStats odd reply %s" schedule
           (Value.to_string v))
  | Error e ->
      failwith
        (Printf.sprintf "E20/%s: coordinator unreachable: %s" schedule
           (Err.to_string e)));
  (* Gate (d): the coordinator crash provably resumed from its WAL. *)
  if schedule = "crash-coordinator" && resumes = 0 then
    failwith "E20/crash-coordinator: no Resume traced after recovery";
  {
    submitted = List.length (List.sort_uniq String.compare !submitted);
    committed = !committed;
    compensated = !compensated;
    resumes;
    prepares;
    crashes = !crashes;
    partitions = !partitions;
  }

let row_json schedule (o : outcome) =
  Printf.sprintf
    "{\"schedule\":%S,\"acked\":%d,\"committed\":%d,\"compensated\":%d,\
     \"resumes\":%d,\"prepares\":%d,\"crashes\":%d,\"partitions\":%d,\
     \"in_doubt\":0,\"partial_commits\":0,\"orphaned_locks\":0}"
    schedule o.submitted o.committed o.compensated o.resumes o.prepares
    o.crashes o.partitions

let run () =
  let rows =
    List.map
      (fun schedule ->
        (* Determinism gate: the same seed must reproduce the report
           byte for byte. *)
        let a = row_json schedule (run_one schedule) in
        let b = row_json schedule (run_one schedule) in
        if not (String.equal a b) then
          failwith
            (Printf.sprintf "E20/%s: nondeterministic report\n  %s\n  %s"
               schedule a b);
        (schedule, a, run_one schedule))
      schedules
  in
  write_bench_json ~file:"BENCH_E20.json"
    (Printf.sprintf "{\"experiment\":\"e20\",\"seed\":%Ld,\"rows\":[%s]}" seed
       (String.concat "," (List.map (fun (_, j, _) -> j) rows)));
  print_table
    ~title:
      (Printf.sprintf
         "E20  Atomic multi-object invocations under fault schedules (%d \
          rounds, seed %Ld; gates: 0 partial commits, 0 orphaned locks, 0 in \
          doubt, byte-deterministic)"
         n_rounds seed)
    ~header:
      [
        "schedule"; "acked"; "committed"; "compensated"; "resumes"; "prepares";
        "crashes"; "partitions";
      ]
    (List.map
       (fun (s, _, o) ->
         [
           s;
           fmt_i o.submitted;
           fmt_i o.committed;
           fmt_i o.compensated;
           fmt_i o.resumes;
           fmt_i o.prepares;
           fmt_i o.crashes;
           fmt_i o.partitions;
         ])
       rows)
