(* Shared machinery for the experiment harness: a counter-class fixture,
   workload generation, counter snapshots, and table rendering.

   Every experiment prints a self-contained table; EXPERIMENTS.md maps
   each to the claim in the paper it regenerates. *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Counter = Legion_util.Counter
module Prng = Legion_util.Prng
module Stats = Legion_util.Stats
module Impl = Legion_core.Impl
module Well_known = Legion_core.Well_known
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module System = Legion.System
module Api = Legion.Api

(* --- The benchmark application unit: a counter. --- *)

let counter_unit = "bench.counter"

let counter_factory (_ctx : Runtime.ctx) : Impl.part =
  let n = ref 0 in
  let increment _ctx args _env k =
    match args with
    | [ Value.Int d ] ->
        n := !n + d;
        k (Ok (Value.Int !n))
    | _ -> Impl.bad_args k "Increment expects one int"
  in
  let get _ctx args _env k =
    match args with
    | [] -> k (Ok (Value.Int !n))
    | _ -> Impl.bad_args k "Get takes no arguments"
  in
  Impl.part
    ~methods:[ ("Increment", increment); ("Get", get) ]
    ~save:(fun () -> Value.Int !n)
    ~restore:(fun v ->
      match v with
      | Value.Int i ->
          n := i;
          Ok ()
      | _ -> Error "counter state must be an int")
    counter_unit

let register_units () = Impl.register counter_unit counter_factory

let counter_idl = "interface Counter { Increment(d: int): int; Get(): int; }"

let make_counter_class sys ctx ?(name = "Counter") () =
  Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name
    ~units:[ counter_unit ] ~idl:counter_idl ()

(* --- Counter-registry snapshots: the §5 instrument. --- *)

type snapshot = (string * string * int) list  (* group, name, value *)

let snapshot sys : snapshot =
  List.map
    (fun c -> (Counter.group c, Counter.name c, Counter.value c))
    (Counter.Registry.all (System.registry sys))

let delta_group (before : snapshot) (after : snapshot) group =
  let value_of snap g n =
    match List.find_opt (fun (g', n', _) -> g = g' && n = n') snap with
    | Some (_, _, v) -> v
    | None -> 0
  in
  List.fold_left
    (fun acc (g, n, v) -> if g = group then acc + v - value_of before g n else acc)
    0 after

let max_delta_group (before : snapshot) (after : snapshot) group =
  let value_of snap g n =
    match List.find_opt (fun (g', n', _) -> g = g' && n = n') snap with
    | Some (_, _, v) -> v
    | None -> 0
  in
  List.fold_left
    (fun acc (g, n, v) ->
      if g = group then Stdlib.max acc (v - value_of before g n) else acc)
    0 after

(* --- Zipf-distributed target selection (popularity skew). --- *)

let zipf_sampler prng ~n ~s =
  let z = Legion_util.Sampler.zipf prng ~n ~s in
  fun () -> Legion_util.Sampler.zipf_draw z

(* --- Table rendering. --- *)

let print_table ~title ~header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let width c =
    List.fold_left (fun acc row -> Stdlib.max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let pad c s = s ^ String.make (List.nth widths c - String.length s) ' ' in
  let line ch =
    "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) ch) widths) ^ "+"
  in
  let render row =
    "| " ^ String.concat " | " (List.mapi pad row) ^ " |"
  in
  Printf.printf "\n%s\n%s\n%s\n%s\n" title (line '-') (render header) (line '-');
  List.iter (fun r -> print_endline (render r)) rows;
  print_endline (line '-')

let fmt_ms t = Printf.sprintf "%.2f" (t *. 1000.0)
let fmt_f f = Printf.sprintf "%.3f" f
let fmt_i = string_of_int

(* --- Machine-readable results for CI artifacts. --- *)

let write_bench_json ~file json =
  Out_channel.with_open_text file (fun oc ->
      output_string oc json;
      output_char oc '\n');
  Printf.printf "wrote %s\n" file

(* --- Timing one synchronous call in virtual time. --- *)

let timed_call sys ctx ~dst ~meth ~args =
  let t0 = System.now sys in
  let r = Api.call sys ctx ~dst ~meth ~args in
  (r, System.now sys -. t0)
