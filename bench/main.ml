(* The experiment harness: regenerates every experiment in
   EXPERIMENTS.md. The source paper (The Core Legion Object Model, HPDC
   1996) is a design document with no measured evaluation; each table
   here quantifies one of its mechanisms (Figs. 11/17, §4.1–4.3) or
   scalability claims (§5). See EXPERIMENTS.md for the per-table mapping
   and expected shapes.

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe e1 e5      # selected experiments
     dune exec bench/main.exe micro      # micro-benchmarks only *)

let experiments =
  [
    ("e1", "binding resolution path (Fig. 17)", Exp_binding_path.run);
    ("e2", "object->agent traffic vs cache size (5.2.1)", Exp_cache.run);
    ("e3", "binding agent combining tree (5.2.2)", Exp_tree.run);
    ("e4", "class cloning (5.2.2)", Exp_clone.run);
    ("e5", "distributed-systems principle (5.2)", Exp_scale.run);
    ("e6", "lifecycle costs (3.1, Fig. 11)", Exp_lifecycle.run);
    ("e7", "replication availability (4.3)", Exp_replication.run);
    ("e8", "stale bindings under churn (4.1.4)", Exp_stale.run);
    ("e9", "ablation: binding TTL (3.5)", Exp_ttl.run);
    ("e10", "the locality assumption (5.2)", Exp_locality.run);
    ("e11", "ablation: scheduling policies (3.7-3.8)", Exp_sched.run);
    ("e13", "jurisdiction splitting (2.2)", Exp_split.run);
    ("e14", "goodput and retry traffic under message loss (4.1.4)", Exp_faults.run);
    ("e15", "crash recovery: checkpoints, failure detection, fencing", Exp_recover.run);
    ("e16", "overload: admission control, shedding, circuit breakers", Exp_overload.run);
    ("e17", "self-healing replication: repair, fencing, anti-entropy", Exp_repair.run);
    ("e18", "planetary sweep: E2/E3/E4 at 10^5 objects, 10^3 hosts", Exp_planet.run);
    ("e19", "elastic load management under a Zipf flash crowd (3.8, 5.2.2)", Exp_elastic.run);
    ("e20", "atomic multi-object invocations under fault schedules", Exp_txn.run);
    ("e21", "noisy neighbor: per-tenant quotas and fair queuing (2.4)", Exp_tenants.run);
    ("e22", "adversarial chaos exploration with exactly-once effects", Exp_chaos.run);
    ("micro", "substrate micro-benchmarks", Micro.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map (fun (n, _, _) -> n) experiments
  in
  let t0 = Unix.gettimeofday () in
  print_endline "Core Legion Object Model -- experiment harness";
  List.iter
    (fun name ->
      match List.find_opt (fun (n, _, _) -> n = name) experiments with
      | Some (_, descr, f) ->
          Printf.printf "\n=== %s: %s ===\n%!" name descr;
          f ()
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat ", " (List.map (fun (n, _, _) -> n) experiments));
          exit 1)
    requested;
  Printf.printf "\ncompleted in %.1f s wall clock\n" (Unix.gettimeofday () -. t0)
