(* E14 — Goodput and retry traffic under message loss (§4.1.4).

   "Legion expects the presence of stale bindings" — and of lost
   messages: the communication layer must mask transient loss, not
   surface it. The runtime's retransmission policy (exponential backoff
   under the configured call budget) is exercised two ways:

   1. A drop-rate sweep: 800 closed-loop invocations over 16 objects at
      0%, 1%, 5% and 20% uniform message loss. Expected shape: goodput
      stays at 100% through 5% loss with zero give-ups (the retry
      budget masks the faults — enforced below as a hard floor), and
      retry traffic scales with the drop rate while mean latency climbs
      only as fast as the loss forces retransmissions.

   2. A blackout: an open-loop workload (one call every 50 ms for 12
      virtual seconds) across a scripted 1-second total outage. Every
      call issued during the blackout must still complete — recovery
      latency, not failure, is the cost; the rt.recovery histogram
      shows how long the masked calls were delayed. *)

open Exp_common
module Network = Legion_net.Network
module Event = Legion_obs.Event
module Recorder = Legion_obs.Recorder
module Trace = Legion_obs.Trace
module Script = Legion_sim.Script

let n_objects = 16
let n_invocations = 800

let boot () =
  register_units ();
  let sys =
    System.boot ~seed:41L ~trace_capacity:500_000
      ~sites:[ ("a", 4); ("b", 4) ]
      ()
  in
  let ctx = System.client sys () in
  let cls = make_counter_class sys ctx () in
  let objects =
    Array.init n_objects (fun _ -> Api.create_object_exn sys ctx ~cls ~eager:true ())
  in
  (* Warm every binding before the faults start, so the measurements
     isolate the invocation layer rather than first-touch resolution. *)
  Array.iter (fun o -> ignore (Api.call sys ctx ~dst:o ~meth:"Get" ~args:[])) objects;
  (sys, ctx, objects)

(* --- part 1: the drop-rate sweep --- *)

let run_one ~drop =
  let sys, ctx, objects = boot () in
  Network.set_drop_rate (System.net sys) drop;
  let obs = System.obs sys in
  let mark = Recorder.total obs in
  let prng = Prng.create ~seed:43L in
  let lat = Stats.create () in
  let ok = ref 0 and failed = ref 0 in
  for _ = 1 to n_invocations do
    let target = objects.(Prng.int prng n_objects) in
    let t0 = System.now sys in
    match Api.call sys ctx ~dst:target ~meth:"Increment" ~args:[ Value.Int 1 ] with
    | Ok _ ->
        incr ok;
        Stats.add lat (System.now sys -. t0)
    | Error _ -> incr failed
  done;
  let events = Recorder.events_since obs mark in
  let retries = Trace.count_of (Trace.retry ()) events in
  let giveups = Trace.count_of (Trace.giveup ()) events in
  let goodput = 100.0 *. float_of_int !ok /. float_of_int n_invocations in
  (* The acceptance floor: at <= 5% loss the default retry budget must
     mask the faults (>= 95% goodput, no exhausted budgets). *)
  if drop <= 0.05 && (goodput < 95.0 || giveups > 0) then
    failwith
      (Printf.sprintf
         "E14: %.1f%% goodput, %d give-ups at %.0f%% drop — retry budget failed to mask the loss"
         goodput giveups (100.0 *. drop));
  [
    Printf.sprintf "%.0f%%" (100.0 *. drop);
    fmt_i !ok;
    fmt_i !failed;
    Printf.sprintf "%.1f%%" goodput;
    fmt_i retries;
    fmt_f (float_of_int retries /. float_of_int n_invocations);
    fmt_i giveups;
    fmt_ms (Stats.mean lat);
    fmt_ms (Stats.percentile lat 99.0);
  ]

(* --- part 2: riding out a scripted blackout --- *)

let run_blackout () =
  let sys, ctx, objects = boot () in
  let sim = System.sim sys and net = System.net sys and obs = System.obs sys in
  let mark = Recorder.total obs in
  let t0 = System.now sys in
  let blackout_start = t0 +. 2.0 and blackout_width = 1.0 in
  Script.pulse sim ~start:blackout_start ~width:blackout_width
    ~on:(fun () -> Network.set_drop_rate net 1.0)
    ~off:(fun () -> Network.set_drop_rate net 0.0);
  let prng = Prng.create ~seed:47L in
  let issued = ref 0 and ok = ref 0 and failed = ref 0 in
  let in_window = ref 0 and in_window_ok = ref 0 in
  Script.every sim ~period:0.05 ~until:(t0 +. 12.0) (fun () ->
      incr issued;
      let t_issue = System.now sys in
      let windowed =
        t_issue >= blackout_start && t_issue < blackout_start +. blackout_width
      in
      if windowed then incr in_window;
      let target = objects.(Prng.int prng n_objects) in
      Runtime.invoke ctx ~dst:target ~meth:"Increment" ~args:[ Value.Int 1 ]
        (function
          | Ok _ ->
              incr ok;
              if windowed then incr in_window_ok
          | Error _ -> incr failed));
  System.run sys;
  let events = Recorder.events_since obs mark in
  let retries = Trace.count_of (Trace.retry ()) events in
  let giveups = Trace.count_of (Trace.giveup ()) events in
  Printf.printf
    "\nE14b Blackout recovery: 1.0 s total outage under a 20 Hz open-loop workload\n";
  Printf.printf
    "  %d calls issued, %d ok, %d failed; %d issued inside the blackout, %d of those recovered\n"
    !issued !ok !failed !in_window !in_window_ok;
  Printf.printf "  %d retransmissions, %d give-ups\n" retries giveups;
  (match Recorder.latency obs ~component:"rt.recovery" with
  | Some h ->
      Printf.printf
        "  recovery latency (calls needing >1 transmission): %d samples, p50 %.0f ms, p99 %.0f ms\n"
        (Legion_util.Stats.Histogram.total h)
        (1000.0 *. Legion_util.Stats.Histogram.percentile h 50.0)
        (1000.0 *. Legion_util.Stats.Histogram.percentile h 99.0)
  | None -> Printf.printf "  (no recovery samples)\n");
  if !in_window_ok < !in_window then
    failwith "E14b: a call issued during the blackout was not recovered";
  if giveups > 0 then failwith "E14b: blackout exhausted a retry budget"

let run () =
  let rows = List.map (fun drop -> run_one ~drop) [ 0.0; 0.01; 0.05; 0.2 ] in
  print_table
    ~title:
      (Printf.sprintf "E14  Goodput and retry traffic vs drop rate (%d calls over %d objects)"
         n_invocations n_objects)
    ~header:
      [
        "drop"; "ok"; "failed"; "goodput"; "retries"; "retries/call"; "give-ups";
        "mean ms"; "p99 ms";
      ]
    rows;
  run_blackout ()
