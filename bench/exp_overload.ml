(* E16 — Overload: admission control, load shedding, circuit breakers.

   A single serial-service object (one request at a time, fixed service
   time) is driven by an open-loop arrival ramp that climbs from half
   its measured saturation rate to 2.5x past it. Two boots of the same
   system run the same schedule:

     baseline   admission and breakers off: every arrival is delivered,
                the serial queue grows without bound past the knee,
                latencies blow through the retry windows, and at-least-
                once retransmissions amplify the very load that caused
                them — goodput collapses;

     protected  per-object inflight/queue budgets shed the excess with
                [Err.Overloaded] (carrying a retry_after hint), callers
                back off by the hint, and a per-destination circuit
                breaker fails the worst bursts fast. Accepted work still
                completes: goodput holds a floor and the p99 of
                successful calls stays bounded past the knee.

   Gates (enforced here, run by CI):
     (a) protected goodput at every step >= 2x saturation stays >= 70%
         of the protected peak;
     (b) protected p99 latency of successful calls past the knee stays
         under a bound computed from the admission budget and retry
         policy;
     (c) the baseline collapses: its goodput at the final (2.5x) step
         drops below half its own peak, or its past-knee p99 blows
         through the same bound the protected run honours. *)

open Exp_common
module Network = Legion_net.Network
module Recorder = Legion_obs.Recorder
module Trace = Legion_obs.Trace
module Script = Legion_sim.Script
module Engine = Legion_sim.Engine
module Breaker = Legion_rt.Breaker

(* --- The bottleneck: a serial-service counter. --- *)

let slow_counter_unit = "bench.slow_counter"
let service_time = 0.02 (* one request at a time, 20 ms each *)

let slow_counter_factory (ctx : Runtime.ctx) : Impl.part =
  let eng = Runtime.sim ctx.Runtime.rt in
  let n = ref 0 in
  let busy_until = ref 0.0 in
  (* The server is serial: each request occupies it for [service_time]
     after every earlier request has drained. Replies are scheduled at
     completion, so queue depth shows up as caller latency. *)
  let serve k reply =
    let start = Float.max (Engine.now eng) !busy_until in
    let finish = start +. service_time in
    busy_until := finish;
    ignore (Engine.schedule_at eng ~time:finish (fun () -> k reply))
  in
  let increment _ctx args _env k =
    match args with
    | [ Value.Int d ] ->
        n := !n + d;
        serve k (Ok (Value.Int !n))
    | _ -> Impl.bad_args k "Increment expects one int"
  in
  let get _ctx args _env k =
    match args with
    | [] -> serve k (Ok (Value.Int !n))
    | _ -> Impl.bad_args k "Get takes no arguments"
  in
  Impl.part
    ~methods:[ ("Increment", increment); ("Get", get) ]
    ~save:(fun () -> Value.Int !n)
    ~restore:(fun v ->
      match v with
      | Value.Int i ->
          n := i;
          Ok ()
      | _ -> Error "counter state must be an int")
    slow_counter_unit

let slow_counter_idl =
  "interface SlowCounter { Increment(d: int): int; Get(): int; }"

(* --- Experiment shape. --- *)

let rate_multipliers = [ 0.5; 1.0; 1.5; 2.0; 2.5 ]
let step_width = 5.0
let call_timeout = 1.5

(* A tight retransmission policy so the end-to-end call budget — and
   with it the honest latency ceiling — is small. Both runs share it:
   the baseline's collapse must come from unbounded queueing and
   retransmission amplification, not from a softer policy. *)
let retry =
  {
    Legion_rt.Retry.max_attempts = 6;
    attempt_timeout = 0.05;
    multiplier = 2.0;
    jitter = 0.1;
  }

let admission =
  { Runtime.max_inflight = 4; max_queue = 16; retry_after_hint = service_time }

let percentile xs p =
  match List.sort compare xs with
  | [] -> nan
  | sorted ->
      let n = List.length sorted in
      let idx = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
      List.nth sorted (max 0 (min (n - 1) idx))

type step_row = {
  rate : float;
  issued : int;
  ok : int;
  failed : int;
  p99 : float; (* of successful calls issued in this step; nan if none *)
}

type run_result = {
  label : string;
  steps : step_row list;
  saturation : float;
  sheds : int;
  opens : int;
  probes : int;
  closes : int;
  retries : int;
  dropped : int;
}

let run_one ~protected =
  let common = { Runtime.default_config with call_timeout; retry } in
  let rt_config =
    if protected then
      {
        common with
        admission = Some admission;
        breaker = Some Breaker.default_config;
      }
    else common
  in
  let sys =
    System.boot ~seed:53L ~trace_capacity:500_000 ~rt_config
      ~sites:[ ("a", 3); ("b", 3) ]
      ()
  in
  Impl.register slow_counter_unit slow_counter_factory;
  let ctx = System.client sys () in
  let cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object
      ~name:"SlowCounter" ~units:[ slow_counter_unit ] ~idl:slow_counter_idl ()
  in
  let obj = Api.create_object_exn sys ctx ~cls ~eager:true () in
  ignore (Api.call sys ctx ~dst:obj ~meth:"Get" ~args:[]);
  (* Measured saturation: a closed-loop client against a serial server
     completes 1 / (service + rtt) calls per second. The open-loop ramp
     is scaled off this observation, not off the configured constant. *)
  let warm = 20 in
  let t_warm = System.now sys in
  for _ = 1 to warm do
    ignore (Api.call sys ctx ~dst:obj ~meth:"Increment" ~args:[ Value.Int 1 ])
  done;
  let saturation = float_of_int warm /. (System.now sys -. t_warm) in
  let sim = System.sim sys and obs = System.obs sys and rt = System.rt sys in
  let net = System.net sys in
  let mark = Recorder.total obs in
  let sheds0 = Runtime.total_sheds rt in
  let dropped0 = Network.messages_dropped net in
  let steps = List.length rate_multipliers in
  let rates = List.map (fun m -> m *. saturation) rate_multipliers in
  let duration = float_of_int steps *. step_width in
  let t0 = System.now sys in
  let t_end = t0 +. duration in
  let issued = Array.make steps 0
  and ok = Array.make steps 0
  and failed = Array.make steps 0
  and latencies = Array.make steps [] in
  Script.load_ramp sim ~start:t0 ~until:(t_end -. 1e-9) ~steps:(steps - 1)
    ~rates (fun _seq ->
      let t_issue = System.now sys in
      let step =
        min (steps - 1) (int_of_float ((t_issue -. t0) /. step_width))
      in
      issued.(step) <- issued.(step) + 1;
      Runtime.invoke ctx ~max_rebinds:0 ~dst:obj ~meth:"Increment"
        ~args:[ Value.Int 1 ]
        (function
          | Ok _ ->
              ok.(step) <- ok.(step) + 1;
              latencies.(step) <-
                (System.now sys -. t_issue) :: latencies.(step)
          | Error _ -> failed.(step) <- failed.(step) + 1));
  System.run sys;
  let events = Recorder.events_since obs mark in
  let count p = Trace.count_of p events in
  let rows =
    List.mapi
      (fun i rate ->
        {
          rate;
          issued = issued.(i);
          ok = ok.(i);
          failed = failed.(i);
          p99 = percentile latencies.(i) 99.0;
        })
      rates
  in
  {
    label = (if protected then "protected" else "baseline");
    steps = rows;
    saturation;
    sheds = Runtime.total_sheds rt - sheds0;
    opens = count (Trace.breaker_open ());
    probes = count (Trace.breaker_probe ());
    closes = count (Trace.breaker_close ());
    retries = count (Trace.retry ());
    dropped = Network.messages_dropped net - dropped0;
  }

(* --- Gates. --- *)

let goodput row = float_of_int row.ok /. step_width

let peak_goodput r =
  List.fold_left (fun acc row -> Float.max acc (goodput row)) 0.0 r.steps

let past_knee r =
  List.filter (fun row -> row.rate >= (2.0 *. r.saturation) -. 1e-9) r.steps

(* A successful call — admitted after any number of sheds and hinted
   backoffs — lives inside one call budget ([call_timeout]; the
   workload pins [max_rebinds] to 0, so no fresh budgets are granted).
   The slack covers binding resolution and the last reply's flight. *)
let p99_bound = call_timeout +. 0.2

let enforce ~baseline ~protected =
  let peak = peak_goodput protected in
  List.iter
    (fun row ->
      if goodput row < 0.7 *. peak then
        failwith
          (Printf.sprintf
             "E16: protected goodput %.1f/s at %.1fx saturation fell below \
              70%% of peak %.1f/s"
             (goodput row) (row.rate /. protected.saturation) peak);
      if (not (Float.is_nan row.p99)) && row.p99 > p99_bound then
        failwith
          (Printf.sprintf
             "E16: protected p99 %.2f s at %.1fx saturation exceeds bound \
              %.2f s"
             row.p99
             (row.rate /. protected.saturation)
             p99_bound))
    (past_knee protected);
  if protected.sheds = 0 then
    failwith "E16: the protected run never shed — the ramp missed the knee";
  (* The baseline must actually collapse; otherwise the protection is
     being measured against a workload that never needed it. *)
  let base_peak = peak_goodput baseline in
  let last r = List.nth r.steps (List.length r.steps - 1) in
  let base_last = last baseline in
  let base_p99_blown =
    List.exists
      (fun row -> (not (Float.is_nan row.p99)) && row.p99 > p99_bound)
      (past_knee baseline)
  in
  if goodput base_last >= 0.5 *. base_peak && not base_p99_blown then
    failwith
      (Printf.sprintf
         "E16: baseline failed to collapse (last-step goodput %.1f/s vs peak \
          %.1f/s, p99 within bound)"
         (goodput base_last) base_peak)

(* --- Reporting. --- *)

let rows_of r =
  List.map
    (fun row ->
      [
        r.label;
        Printf.sprintf "%.1fx" (row.rate /. r.saturation);
        Printf.sprintf "%.1f" row.rate;
        fmt_i row.issued;
        fmt_i row.ok;
        fmt_i row.failed;
        Printf.sprintf "%.1f" (goodput row);
        (if Float.is_nan row.p99 then "-" else fmt_ms row.p99);
      ])
    r.steps

let json_of r =
  let step_json row =
    Printf.sprintf
      "{\"rate\":%.2f,\"issued\":%d,\"ok\":%d,\"failed\":%d,\"goodput\":%.2f,\
       \"p99_ms\":%s}"
      row.rate row.issued row.ok row.failed (goodput row)
      (if Float.is_nan row.p99 then "null"
       else Printf.sprintf "%.1f" (row.p99 *. 1000.0))
  in
  Printf.sprintf
    "{\"label\":%S,\"saturation\":%.2f,\"sheds\":%d,\"breaker_opens\":%d,\
     \"breaker_probes\":%d,\"breaker_closes\":%d,\"retries\":%d,\
     \"messages_dropped\":%d,\"steps\":[%s]}"
    r.label r.saturation r.sheds r.opens r.probes r.closes r.retries r.dropped
    (String.concat "," (List.map step_json r.steps))

let run () =
  let baseline = run_one ~protected:false in
  let protected = run_one ~protected:true in
  print_table
    ~title:
      (Printf.sprintf
         "E16  Open-loop saturation sweep (serial service %.0f ms, measured \
          saturation %.1f/s, %.0f s per step)"
         (service_time *. 1000.0) protected.saturation step_width)
    ~header:
      [ "run"; "offered"; "rate/s"; "issued"; "ok"; "failed"; "goodput/s"; "p99 ms" ]
    (rows_of baseline @ rows_of protected);
  Printf.printf
    "\nbaseline:  %d sheds, %d retries, %d messages dropped\n"
    baseline.sheds baseline.retries baseline.dropped;
  Printf.printf
    "protected: %d sheds, %d retries, %d dropped; breaker %d opens / %d \
     probes / %d closes\n"
    protected.sheds protected.retries protected.dropped protected.opens
    protected.probes protected.closes;
  enforce ~baseline ~protected;
  Printf.printf
    "gates: goodput floor 70%% of peak past 2x, p99 under %.2f s, baseline \
     collapse -- all hold\n"
    p99_bound;
  write_bench_json ~file:"BENCH_E16.json"
    (Printf.sprintf "{\"experiment\":\"e16\",\"p99_bound\":%.2f,\"runs\":[%s,%s]}"
       p99_bound (json_of baseline) (json_of protected))
