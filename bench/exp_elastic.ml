(* E19 — elastic load management under a Zipf flash crowd (§3.8, §5.2.2).

   Runs the Legion.Elastic flash-crowd scenario twice — static baseline
   and with the autonomic machinery armed — and gates on the separation:
   the elastic run must at least halve the settled flash-window median,
   flatten the hottest host's share, and actually exercise every
   adaptation mechanism (clone, merge, migrate, split, re-tier) that the
   baseline, by construction, never triggers. A third elastic run checks
   seed-determinism byte-for-byte. Writes BENCH_E19.json.

   Environment knobs (CI smoke runs use these):
     E19_SEED                      scenario seed (default 42)
     E19_MAX_FLASH_P50_RATIO       elastic/baseline flash p50 ceiling (0.5)
     E19_MAX_SHARE_RATIO           elastic/baseline host-share ceiling (0.85)
     E19_MAX_ERRORS                error budget per run (default 0) *)

open Exp_common
module Elastic = Legion.Elastic

let env_i64 name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match Int64.of_string_opt s with Some v -> v | None -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match float_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let row (r : Elastic.report) =
  [
    (if r.Elastic.elastic then "elastic" else "baseline");
    fmt_i r.Elastic.arrivals;
    Printf.sprintf "%d/%d" r.Elastic.oks r.Elastic.works;
    fmt_i r.Elastic.sheds;
    fmt_i r.Elastic.errors;
    Printf.sprintf "%.2f" r.Elastic.flash_p50_ms;
    Printf.sprintf "%.2f" r.Elastic.flash_p99_ms;
    Printf.sprintf "%.1f%%" (100.0 *. r.Elastic.max_host_share);
    Printf.sprintf "%d/%d/%d/%d" r.Elastic.clones r.Elastic.merges
      r.Elastic.moves r.Elastic.splits;
    (if r.Elastic.retier then "yes" else "no");
  ]

let run () =
  let seed = env_i64 "E19_SEED" 42L in
  let max_flash_ratio = env_float "E19_MAX_FLASH_P50_RATIO" 0.5 in
  let max_share_ratio = env_float "E19_MAX_SHARE_RATIO" 0.85 in
  let max_errors = env_int "E19_MAX_ERRORS" 0 in
  let base = Elastic.run_scenario ~seed ~elastic:false () in
  let el = Elastic.run_scenario ~seed ~elastic:true () in
  let el' = Elastic.run_scenario ~seed ~elastic:true () in
  let deterministic =
    String.equal (Elastic.scenario_json el) (Elastic.scenario_json el')
  in
  print_table
    ~title:
      (Printf.sprintf
         "E19  Zipf flash crowd, seed %Ld (settled flash window, \
          flash-site callers)"
         seed)
    ~header:
      [
        "run"; "arrivals"; "ok"; "sheds"; "errors"; "fl p50 ms"; "fl p99 ms";
        "max host"; "cl/mg/mv/sp"; "retier";
      ]
    [ row base; row el ];
  let flash_ratio = el.Elastic.flash_p50_ms /. base.Elastic.flash_p50_ms in
  let share_ratio = el.Elastic.max_host_share /. base.Elastic.max_host_share in
  Printf.printf
    "flash p50 ratio %.3f (ceiling %.2f); host-share ratio %.3f (ceiling \
     %.2f); deterministic: %b\n"
    flash_ratio max_flash_ratio share_ratio max_share_ratio deterministic;
  let json =
    Printf.sprintf
      "{\"seed\": %Ld, \"baseline\": %s, \"elastic\": %s, \"flash_p50_ratio\": \
       %.4f, \"share_ratio\": %.4f, \"deterministic\": %b, \"gates\": \
       {\"max_flash_p50_ratio\": %.2f, \"max_share_ratio\": %.2f, \
       \"max_errors\": %d}}"
      seed
      (Elastic.scenario_json base)
      (Elastic.scenario_json el)
      flash_ratio share_ratio deterministic max_flash_ratio max_share_ratio
      max_errors
  in
  write_bench_json ~file:"BENCH_E19.json" json;
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  if not deterministic then
    fail "elastic report not byte-deterministic for seed %Ld" seed;
  if flash_ratio > max_flash_ratio then
    fail "flash p50 ratio %.3f > ceiling %.2f (elastic %.2f ms, baseline %.2f \
          ms)"
      flash_ratio max_flash_ratio el.Elastic.flash_p50_ms
      base.Elastic.flash_p50_ms;
  if share_ratio > max_share_ratio then
    fail "host-share ratio %.3f > ceiling %.2f" share_ratio max_share_ratio;
  if el.Elastic.errors > max_errors then
    fail "elastic run saw %d errors (budget %d)" el.Elastic.errors max_errors;
  if base.Elastic.errors > max_errors then
    fail "baseline run saw %d errors (budget %d)" base.Elastic.errors
      max_errors;
  if el.Elastic.clones < 1 then fail "elastic run never cloned";
  if el.Elastic.merges < 1 then fail "elastic run never merged a clone back";
  if el.Elastic.moves < 1 then fail "elastic run never migrated an object";
  if el.Elastic.splits < 1 then fail "elastic run never split a Jurisdiction";
  if not el.Elastic.retier then fail "agent tree never re-tiered";
  if
    base.Elastic.clones + base.Elastic.merges + base.Elastic.moves
    + base.Elastic.splits
    <> 0
    || base.Elastic.retier
  then fail "baseline run adapted; the control is contaminated";
  if !failures <> [] then begin
    List.iter (Printf.eprintf "E19 gate failed: %s\n") !failures;
    exit 1
  end
