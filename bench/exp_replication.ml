(* E7 — Replication and availability (§4.3).

   A service is replicated at the Legion system level — one LOID bound
   to an Object Address with r elements — and we kill a growing number
   of its hosts. 120 calls are issued per configuration; we report
   success rate and mean latency under Ordered_failover, and contrast
   the All (broadcast race) semantic.

   Expected shape: with r replicas the service survives r-1 host kills;
   failover latency grows with the number of dead elements the walk must
   time out on, while the All semantic hides dead replicas entirely (the
   race is won by a survivor) at the price of r× messages. *)

open Exp_common
module Address = Legion_naming.Address
module Network = Legion_net.Network
module Opr = Legion_core.Opr
module Replicate = Legion_repl.Replicate

let n_calls = 120

(* Short timeouts keep the failover walk cheap in virtual time. *)
let rt_config = { Runtime.default_config with call_timeout = 0.4 }

let run_one ~replicas ~kills ~semantic ~label =
  register_units ();
  let sys =
    System.boot ~seed:23L ~rt_config
      ~sites:[ ("a", 3); ("b", 3); ("c", 3); ("d", 3) ]
      ()
  in
  let ctx = System.client sys () in
  let loid = System.fresh_instance_loid sys ~of_class:Well_known.legion_object in
  let opr =
    Opr.make ~kind:Well_known.kind_app
      ~units:[ counter_unit; Well_known.unit_object ]
      ()
  in
  (* One replica per site, spread over distinct hosts away from site
     infrastructure. *)
  let hosts =
    List.filteri
      (fun i _ -> i < replicas)
      (List.map (fun s -> List.nth s.System.net_hosts 1) (System.sites sys))
  in
  let _procs, address =
    match Replicate.deploy (System.rt sys) ~loid ~opr ~hosts ~semantic with
    | Ok x -> x
    | Error msg -> failwith msg
  in
  (* Kill the first [kills] replica hosts. *)
  List.iteri
    (fun i h -> if i < kills then Runtime.crash_host (System.rt sys) h)
    hosts;
  let lat = Stats.create () in
  let ok = ref 0 in
  let msgs0 = Network.messages_sent (System.net sys) in
  for _ = 1 to n_calls do
    let t0 = System.now sys in
    let r =
      Api.sync sys (fun k ->
          Runtime.invoke_address ctx ~address ~dst:loid ~meth:"Increment"
            ~args:[ Value.Int 1 ]
            ~env:(Legion_sec.Env.of_self (Runtime.proc_loid ctx.Runtime.self))
            k)
    in
    (match r with
    | Ok _ ->
        incr ok;
        Stats.add lat (System.now sys -. t0)
    | Error _ -> ());
    (* Let stragglers drain so messages are attributed per call. *)
    System.run sys
  done;
  let msgs1 = Network.messages_sent (System.net sys) in
  let success = 100.0 *. float_of_int !ok /. float_of_int n_calls in
  let mean_ms = if Stats.count lat = 0 then nan else Stats.mean lat *. 1000.0 in
  let msgs_per_call = float_of_int (msgs1 - msgs0) /. float_of_int n_calls in
  let row =
    [
      label;
      fmt_i replicas;
      fmt_i kills;
      Printf.sprintf "%.1f%%" success;
      (if Stats.count lat = 0 then "-" else fmt_ms (Stats.mean lat));
      fmt_f msgs_per_call;
    ]
  in
  let json =
    Printf.sprintf
      "{\"semantic\":%S,\"replicas\":%d,\"kills\":%d,\"success_pct\":%.1f,\
       \"mean_ms\":%s,\"msgs_per_call\":%.3f}"
      label replicas kills success
      (if Float.is_nan mean_ms then "null" else Printf.sprintf "%.2f" mean_ms)
      msgs_per_call
  in
  (row, json)

let run () =
  let results =
    [
      run_one ~replicas:1 ~kills:0 ~semantic:Address.Ordered_failover ~label:"failover";
      run_one ~replicas:1 ~kills:1 ~semantic:Address.Ordered_failover ~label:"failover";
      run_one ~replicas:2 ~kills:1 ~semantic:Address.Ordered_failover ~label:"failover";
      run_one ~replicas:4 ~kills:1 ~semantic:Address.Ordered_failover ~label:"failover";
      run_one ~replicas:4 ~kills:3 ~semantic:Address.Ordered_failover ~label:"failover";
      run_one ~replicas:2 ~kills:1 ~semantic:Address.All ~label:"all (race)";
      run_one ~replicas:4 ~kills:3 ~semantic:Address.All ~label:"all (race)";
    ]
  in
  write_bench_json ~file:"BENCH_E7.json"
    (Printf.sprintf "{\"experiment\":\"e7\",\"n_calls\":%d,\"rows\":[%s]}"
       n_calls
       (String.concat "," (List.map snd results)));
  print_table
    ~title:
      (Printf.sprintf "E7  Replicated-object availability under host kills (%d calls)"
         n_calls)
    ~header:[ "semantic"; "replicas"; "killed"; "success"; "mean ms"; "msgs/call" ]
    (List.map fst results)
