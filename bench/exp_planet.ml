(* E18 — planetary sweep (§5 at scale).

   Drives Legion.Planet: the E2/E3/E4 mechanism kernels at 10^5
   objects over 10^3 hosts plus a raw calendar-queue kernel at 10^7
   events, then gates on wall-clock throughput (events/sec) and peak
   RSS so a simulator-core regression (the event queue, the routing
   tables) fails the harness instead of silently making every future
   sweep slower. Writes BENCH_E18.json.

   Environment knobs (CI smoke runs use these):
     E18_PROFILE=smoke|full        pick the base config (default full)
     E18_OBJECTS / E18_CALLS / E18_QUEUE_EVENTS / E18_SITES /
     E18_HOSTS_PER_SITE            override individual sizes
     E18_MIN_QUEUE_EPS             raw queue kernel floor (events/sec)
     E18_MIN_EPS                   whole-sweep floor (events/sec)
     E18_MAX_RSS_MB                peak-RSS ceiling *)

open Exp_common
module Planet = Legion.Planet

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match float_of_string_opt s with Some v -> v | None -> default)
  | None -> default

let config () =
  let base =
    match Sys.getenv_opt "E18_PROFILE" with
    | Some "smoke" -> Planet.smoke
    | _ -> Planet.default
  in
  {
    base with
    Planet.objects = env_int "E18_OBJECTS" base.Planet.objects;
    calls = env_int "E18_CALLS" base.Planet.calls;
    queue_events = env_int "E18_QUEUE_EVENTS" base.Planet.queue_events;
    sites = env_int "E18_SITES" base.Planet.sites;
    hosts_per_site = env_int "E18_HOSTS_PER_SITE" base.Planet.hosts_per_site;
  }

(* Peak RSS in MiB from /proc/self/status (Linux); None elsewhere. *)
let peak_rss_mb () =
  if not (Sys.file_exists "/proc/self/status") then None
  else
    In_channel.with_open_text "/proc/self/status" (fun ic ->
        let rec scan () =
          match In_channel.input_line ic with
          | None -> None
          | Some line ->
              if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
                Scanf.sscanf_opt line "VmHWM: %d kB" (fun kb ->
                    float_of_int kb /. 1024.0)
              else scan ()
        in
        scan ())

let run () =
  let cfg = config () in
  let t0 = Unix.gettimeofday () in
  let tq0 = t0 in
  let queue_wall = ref 0.0 in
  let progress msg =
    (* The queue kernel reports first; time it separately for its gate. *)
    if !queue_wall = 0.0 && String.length msg >= 5 && String.sub msg 0 5 = "queue"
    then queue_wall := Unix.gettimeofday () -. tq0;
    Printf.printf "  [e18] %s\n%!" msg
  in
  let report = Planet.run ~progress cfg in
  let wall = Unix.gettimeofday () -. t0 in
  let queue_events =
    match report.Planet.kernels with k :: _ -> k.Planet.k_events | [] -> 0
  in
  let queue_eps =
    float_of_int queue_events /. Float.max 1e-9 !queue_wall
  in
  let eps = float_of_int report.Planet.total_events /. Float.max 1e-9 wall in
  let rss = peak_rss_mb () in
  let min_queue_eps = env_float "E18_MIN_QUEUE_EPS" 300_000.0 in
  let min_eps = env_float "E18_MIN_EPS" 10_000.0 in
  let max_rss_mb = env_float "E18_MAX_RSS_MB" 8192.0 in
  print_table
    ~title:
      (Printf.sprintf
         "E18  Planetary sweep (%d sites x %d hosts, %d objects, %d raw queue \
          events)"
         cfg.Planet.sites cfg.Planet.hosts_per_site cfg.Planet.objects
         cfg.Planet.queue_events)
    ~header:[ "kernel"; "events"; "virt clock"; "msgs"; "drops"; "digest" ]
    (List.map
       (fun k ->
         [
           k.Planet.k_name;
           fmt_i k.Planet.k_events;
           Printf.sprintf "%.3f" k.Planet.k_clock;
           fmt_i k.Planet.k_msgs;
           fmt_i k.Planet.k_drops;
           string_of_int k.Planet.k_digest;
         ])
       report.Planet.kernels);
  Printf.printf
    "total: %d events in %.1f s wall = %.0f events/s (queue kernel %.0f/s); \
     peak RSS %s MB\n"
    report.Planet.total_events wall eps queue_eps
    (match rss with None -> "n/a" | Some m -> Printf.sprintf "%.0f" m);
  let json =
    Printf.sprintf
      "{\"deterministic\": %s, \"wall_s\": %.3f, \"events_per_sec\": %.0f, \
       \"queue_events_per_sec\": %.0f, \"peak_rss_mb\": %s, \"gates\": \
       {\"min_queue_eps\": %.0f, \"min_eps\": %.0f, \"max_rss_mb\": %.0f}}"
      (Planet.to_json report) wall eps queue_eps
      (match rss with None -> "null" | Some m -> Printf.sprintf "%.1f" m)
      min_queue_eps min_eps max_rss_mb
  in
  write_bench_json ~file:"BENCH_E18.json" json;
  let failures = ref [] in
  if queue_eps < min_queue_eps then
    failures :=
      Printf.sprintf "queue kernel %.0f events/s < floor %.0f" queue_eps
        min_queue_eps
      :: !failures;
  if eps < min_eps then
    failures :=
      Printf.sprintf "sweep %.0f events/s < floor %.0f" eps min_eps :: !failures;
  (match rss with
  | Some m when m > max_rss_mb ->
      failures :=
        Printf.sprintf "peak RSS %.0f MB > ceiling %.0f MB" m max_rss_mb
        :: !failures
  | _ -> ());
  if !failures <> [] then begin
    List.iter (Printf.eprintf "E18 gate failed: %s\n") !failures;
    exit 1
  end
