(* Per-destination circuit breakers for the communication layer. *)

type config = {
  failure_threshold : int;
  cooldown : float;
  shed_cooldown : float;
}

let default_config =
  { failure_threshold = 5; cooldown = 1.0; shed_cooldown = 0.1 }

let validate c =
  if c.failure_threshold < 1 then Error "failure_threshold must be >= 1"
  else if not (c.cooldown > 0.0) then Error "cooldown must be positive"
  else if not (c.shed_cooldown > 0.0) then Error "shed_cooldown must be positive"
  else Ok c

type outcome = Success | Saturated of float | Transport_failure

type phase = Closed | Open of { until : float } | Half_open

type cell = {
  mutable phase : phase;
  mutable failures : int;  (* consecutive failures while Closed *)
  mutable saturated : bool;  (* the run of failures was overload sheds *)
  mutable hint : float;  (* last retry_after the destination sent *)
}

type t = { config : config; cells : (int, cell) Hashtbl.t }

let create config = { config; cells = Hashtbl.create 16 }

let cell t host =
  match Hashtbl.find_opt t.cells host with
  | Some c -> c
  | None ->
      let c = { phase = Closed; failures = 0; saturated = false; hint = 0.0 } in
      Hashtbl.add t.cells host c;
      c

type decision =
  | Allow
  | Probe
  | Reject of { error : Err.t; retry_after : float }

(* What the fail-fast rejection looks like mirrors why the circuit
   opened: a saturated destination yields [Overloaded] (retryable, not a
   delivery failure — the binding is fine), while a dead or unreachable
   one yields [Unreachable], a delivery failure, so the caller's rebind
   machinery keeps looking for the object's next incarnation without
   hammering the corpse. *)
let rejection c ~now ~host ~until =
  let retry_after = Float.max (until -. now) 1e-6 in
  let error =
    if c.saturated then Err.Overloaded { retry_after }
    else Err.Unreachable (Printf.sprintf "circuit open to host %d" host)
  in
  Reject { error; retry_after }

let before_send t ~now host =
  let c = cell t host in
  match c.phase with
  | Closed -> Allow
  | Open { until } when now >= until -. 1e-12 ->
      c.phase <- Half_open;
      Probe
  | Open { until } -> rejection c ~now ~host ~until
  | Half_open ->
      (* One probe at a time; everyone else waits out its verdict. *)
      let until =
        now +. if c.saturated then t.config.shed_cooldown else t.config.cooldown
      in
      rejection c ~now ~host ~until

type transition = Opened of { failures : int } | Closed_circuit

let open_duration t c =
  if c.saturated then Float.max c.hint t.config.shed_cooldown
  else t.config.cooldown

let record t ~now host outcome =
  let c = cell t host in
  match outcome with
  | Success -> (
      c.failures <- 0;
      c.hint <- 0.0;
      match c.phase with
      | Closed -> None
      | Open _ | Half_open ->
          (* Any completed call proves the path works again. *)
          c.phase <- Closed;
          c.saturated <- false;
          Some Closed_circuit)
  | Saturated _ | Transport_failure -> (
      (match outcome with
      | Saturated ra ->
          c.saturated <- true;
          c.hint <- Float.max c.hint ra
      | _ -> c.saturated <- false);
      match c.phase with
      | Closed ->
          c.failures <- c.failures + 1;
          if c.failures >= t.config.failure_threshold then begin
            c.phase <- Open { until = now +. open_duration t c };
            Some (Opened { failures = c.failures })
          end
          else None
      | Half_open ->
          (* The probe failed: back to Open for another cooldown. *)
          c.failures <- c.failures + 1;
          c.phase <- Open { until = now +. open_duration t c };
          Some (Opened { failures = c.failures })
      | Open _ -> None (* a straggler from before the trip *))

let phase_name t host =
  match (cell t host).phase with
  | Closed -> "closed"
  | Open _ -> "open"
  | Half_open -> "half-open"
