(* A bounded LRU map, the store behind the runtime's exactly-once
   dedup cache. Plain OCaml: a hashtable to the nodes of an intrusive
   doubly-linked recency list. [find] touches; inserting past capacity
   evicts the least recently used entry. *)

type ('k, 'v) node = {
  n_key : 'k;
  mutable n_val : 'v;
  mutable n_prev : ('k, 'v) node option;
  mutable n_next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  capacity : int;
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* most recently used *)
  mutable tail : ('k, 'v) node option;  (* least recently used *)
  mutable evictions : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Dedup.create: capacity";
  {
    capacity;
    tbl = Hashtbl.create (min capacity 64);
    head = None;
    tail = None;
    evictions = 0;
  }

let length t = Hashtbl.length t.tbl
let capacity t = t.capacity
let evictions t = t.evictions

let unlink t n =
  (match n.n_prev with
  | Some p -> p.n_next <- n.n_next
  | None -> t.head <- n.n_next);
  (match n.n_next with
  | Some s -> s.n_prev <- n.n_prev
  | None -> t.tail <- n.n_prev);
  n.n_prev <- None;
  n.n_next <- None

let push_front t n =
  n.n_next <- t.head;
  (match t.head with Some h -> h.n_prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> None
  | Some n ->
      unlink t n;
      push_front t n;
      Some n.n_val

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.tbl k

let set t k v =
  match Hashtbl.find_opt t.tbl k with
  | Some n ->
      n.n_val <- v;
      unlink t n;
      push_front t n
  | None ->
      if Hashtbl.length t.tbl >= t.capacity then begin
        match t.tail with
        | None -> ()
        | Some lru ->
            unlink t lru;
            Hashtbl.remove t.tbl lru.n_key;
            t.evictions <- t.evictions + 1
      end;
      let n = { n_key = k; n_val = v; n_prev = None; n_next = None } in
      Hashtbl.replace t.tbl k n;
      push_front t n
