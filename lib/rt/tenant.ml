module Loid = Legion_naming.Loid
module Env = Legion_sec.Env

type budget = {
  weight : int;
  max_inflight : int;
  rate : float;
  burst : float;
}

(* Weight 1, everything else unlimited: the shape the fallback lane and
   freshly registered tenants start from. *)
let default_budget = { weight = 1; max_inflight = 0; rate = 0.0; burst = 0.0 }

type tenant = {
  name : string;
  budget : budget;
  mutable tokens : float;  (* current token-bucket level *)
  mutable refilled : float;  (* virtual time of the last refill *)
  mutable inflight : int;  (* admitted calls not yet replied, registry-wide *)
  mutable admitted : int;
  mutable shed : int;
  mutable denied : int;
}

type t = {
  by_responsible : tenant Loid.Table.t;
  by_name : (string, tenant) Hashtbl.t;  (* lookup only, never iterated *)
  fallback : tenant;
  mutable names : string list;  (* registration order, newest first *)
}

let fallback_name = "~unregistered"

let make_tenant ~name budget =
  {
    name;
    budget;
    tokens = budget.burst;
    refilled = 0.0;
    inflight = 0;
    admitted = 0;
    shed = 0;
    denied = 0;
  }

let create () =
  {
    by_responsible = Loid.Table.create ();
    by_name = Hashtbl.create 16;
    fallback = make_tenant ~name:fallback_name default_budget;
    names = [];
  }

let register t ~name ~responsible ?(weight = 1) ?(max_inflight = 0)
    ?(rate = 0.0) ?burst () =
  let burst =
    match burst with
    | Some b -> Float.max 1.0 b
    | None -> Float.max 1.0 (0.25 *. rate)
  in
  let budget = { weight = max 1 weight; max_inflight; rate; burst } in
  let tenant =
    match Hashtbl.find_opt t.by_name name with
    | Some existing -> existing (* re-registration: keep counters, new loid *)
    | None ->
        let fresh = make_tenant ~name budget in
        Hashtbl.replace t.by_name name fresh;
        t.names <- name :: t.names;
        fresh
  in
  Loid.Table.set t.by_responsible responsible tenant;
  tenant

let find t ~name =
  if String.equal name fallback_name then Some t.fallback
  else Hashtbl.find_opt t.by_name name

let of_env t (env : Env.t) =
  match Loid.Table.find t.by_responsible env.Env.responsible with
  | Some tenant -> tenant
  | None -> t.fallback

let tenants t = List.rev t.names

let name tenant = tenant.name
let weight tenant = tenant.budget.weight
let budget tenant = tenant.budget
let inflight tenant = tenant.inflight
let admitted tenant = tenant.admitted
let shed_count tenant = tenant.shed
let denied_count tenant = tenant.denied

(* --- token bucket (virtual time; deterministic) --- *)

let refill tenant ~now =
  if tenant.budget.rate > 0.0 && now > tenant.refilled then begin
    tenant.tokens <-
      Float.min tenant.budget.burst
        (tenant.tokens +. ((now -. tenant.refilled) *. tenant.budget.rate));
    tenant.refilled <- now
  end

let try_take tenant ~now =
  if tenant.budget.rate <= 0.0 then true
  else begin
    refill tenant ~now;
    if tenant.tokens >= 1.0 then begin
      tenant.tokens <- tenant.tokens -. 1.0;
      true
    end
    else false
  end

let retry_hint tenant ~now =
  if tenant.budget.rate <= 0.0 then 0.0
  else begin
    refill tenant ~now;
    Float.max 1e-3 ((1.0 -. tenant.tokens) /. tenant.budget.rate)
  end

(* --- inflight budget --- *)

let inflight_ok tenant =
  tenant.budget.max_inflight <= 0 || tenant.inflight < tenant.budget.max_inflight

let begin_call tenant =
  tenant.inflight <- tenant.inflight + 1;
  tenant.admitted <- tenant.admitted + 1

let end_call tenant = tenant.inflight <- max 0 (tenant.inflight - 1)
let note_shed tenant = tenant.shed <- tenant.shed + 1
let note_denied tenant = tenant.denied <- tenant.denied + 1
