(** The Legion object runtime.

    Legion objects are "independent, address space disjoint objects that
    communicate with one another via method invocation. Method calls are
    non-blocking and may be accepted in any order" (§2). The runtime
    realises this over the simulated internetwork: an {e active} object
    is a process — a (host, slot) pair with a mailbox and a handler —
    and every method invocation is an asynchronous message exchange.

    The runtime also implements the {e Legion-aware communication layer}
    each object contains (§4.1.2): a per-object binding cache, resolution
    through the object's Binding Agent on a miss, stale-binding
    detection on [No_such_object]/timeout, and rebind-and-retry
    (§4.1.4). Replication-aware delivery follows the Object Address
    semantics of §3.4/§4.3. *)

module Loid := Legion_naming.Loid
module Address := Legion_naming.Address
module Binding := Legion_naming.Binding
module Value := Legion_wire.Value
module Env := Legion_sec.Env

type t
(** The runtime: one per simulation, spanning all hosts. *)

type proc
(** An active object instance (a "process" on a host). A replicated
    object has several [proc]s sharing one LOID. *)

type admission = {
  max_inflight : int;
      (** Concurrent calls an object may be executing (handler started,
          reply not yet sent). *)
  max_queue : int;
      (** Calls parked waiting for an inflight slot; arrivals beyond
          this are shed with [Err.Overloaded]. *)
  retry_after_hint : float;
      (** Base of the [retry_after] hint attached to sheds; it scales
          up to 2x with queue fill, so callers back off harder the
          deeper the backlog. *)
}

val default_admission : admission
(** 8 inflight, 32 queued, 50 ms base hint. *)

type config = {
  call_timeout : float;  (** Seconds of virtual time before a call times out. *)
  max_rebinds : int;
      (** How many times the comm layer refreshes a stale binding and
          retries before giving up. *)
  binding_ttl : float option;
      (** Expiry attached to bindings minted by [binding_of]; [None]
          means bindings never explicitly expire (§3.5). *)
  retry : Retry.t;
      (** Retransmission policy for calls running under the default
          [call_timeout] budget: lost messages are resent (same call id,
          at-least-once) under exponentially backed-off, jittered
          attempt windows instead of burning the whole deadline. Calls
          that pass an explicit [?timeout] opt out — that argument is a
          caller-managed single-attempt deadline (probes, deferred-reply
          methods). See {!Retry}. *)
  admission : admission option;
      (** Default inflight/queue budget stamped on every spawned
          {e application} object ([spawn ?admission] overrides per
          object, and budgets any kind; so does {!set_admission}).
          Infrastructure processes serve each other's bring-up and
          binding traffic, where a budget can invert RPC dependency
          order, so they are never budgeted by default — they degrade by
          policy instead ({!load_factor} / {!shed_reply}). [None] — the
          default — admits everything, the pre-overload-control
          behaviour. Budgeted objects emit [Admit]/[Shed] events and
          answer excess load with [Err.Overloaded]. *)
  breaker : Breaker.config option;
      (** Per-destination circuit breakers on the send path ([None] —
          the default — disables them). See {!Breaker}: consecutive
          failures open the circuit, sends then fail fast until a
          cooldown admits a HalfOpen probe. *)
  dedup_capacity : int option;
      (** Exactly-once effects: size of the runtime's (caller host,
          call id) dedup cache, [None] to disable. A retransmitted or
          network-duplicated request whose call already executed (or is
          executing) is answered from the recorded reply — a
          [DedupHit] event — instead of re-running the method, so
          at-least-once transmission no longer means at-least-once
          {e execution}. Entries are LRU-evicted past the capacity.
          Retryable sheds ([Overloaded], [Txn_locked],
          [Quota_exceeded], [No_quorum]) are never cached: their
          protocol retries the same id expecting re-evaluation.
          Scope: the cache keys on call ids, so it cannot recognise a
          re-execution carrying a {e fresh} id — a rebind after a
          delivery failure re-invokes under a new id, which is the
          documented at-least-once residue ([max_rebinds = 0] closes
          it for strictly-exactly-once workloads). *)
}

val default_config : config
(** 5 s timeout, 3 rebinds, no expiry, {!Retry.default} retransmission,
    no admission budgets, no breakers, a 4096-entry dedup cache. *)

val create :
  sim:Legion_sim.Engine.t ->
  net:Legion_net.Network.t ->
  registry:Legion_util.Counter.Registry.r ->
  prng:Legion_util.Prng.t ->
  ?config:config ->
  ?obs:Legion_obs.Recorder.t ->
  unit ->
  t
(** [obs] is the structured-event recorder the runtime emits protocol
    events to; share one recorder with the network to get a single
    virtual-time-ordered stream. Defaults to a fresh private recorder,
    so emission is always unconditional. *)

val sim : t -> Legion_sim.Engine.t
val net : t -> Legion_net.Network.t
val registry : t -> Legion_util.Counter.Registry.r
val prng : t -> Legion_util.Prng.t
val config : t -> config
val now : t -> float

val obs : t -> Legion_obs.Recorder.t

val emit : t -> host:Legion_net.Network.host_id -> Legion_obs.Event.kind -> unit
(** Emit an event at [host], stamping its site — for object
    implementations (Binding Agents, Magistrates) that surface their own
    protocol steps into the shared trace. *)

(** {1 Calls and handlers} *)

type call = { meth : string; args : Value.t list; env : Env.t }
type reply = (Value.t, Err.t) result

type ctx = { rt : t; self : proc }
(** What a handler sees: the runtime and its own process. *)

type handler = ctx -> call -> (reply -> unit) -> unit
(** Handlers must eventually invoke the reply continuation exactly once
    per call. *)

(** {1 Process lifecycle} *)

val spawn :
  t ->
  host:Legion_net.Network.host_id ->
  loid:Loid.t ->
  kind:string ->
  ?epoch:int ->
  ?cache_capacity:int ->
  ?binding_agent:Address.t ->
  ?admission:admission option ->
  handler:handler ->
  unit ->
  proc
(** Start an active object instance on [host]. [kind] groups the
    object's request counter (e.g. ["class"], ["binding_agent"],
    ["app"]). [epoch] stamps the placement's incarnation; it defaults
    to the LOID's {!current_epoch}, so a spawn following a
    {!bump_epoch} automatically belongs to the new incarnation while
    replica deployments of one incarnation share a number.
    [cache_capacity] bounds the comm-layer binding cache (default
    unbounded). [binding_agent] is the Object Address of the object's
    Binding Agent, "part of its persistent state" (§3.6). [admission]
    overrides the config-wide default budget for this object —
    [~admission:None] explicitly exempts it; omitting the argument
    inherits [config.admission]. *)

val kill : t -> proc -> unit
(** Remove the instance; subsequent messages to its address are answered
    [No_such_object]. Killing twice is a no-op. *)

val kill_loid : t -> Loid.t -> unit
(** Kill every placement of the LOID. *)

val procs_on_host : t -> Legion_net.Network.host_id -> proc list
(** Live processes on a host. *)

val crash_host : t -> Legion_net.Network.host_id -> unit
(** Fault injection: mark the network host down and kill every process
    on it — unsaved state is lost, exactly as a real host crash. Calls
    already in flight {e to} the dead host are failed promptly with
    [Unreachable] (their pending entries reaped, a [Cancel] event
    emitted) rather than left to burn their full timeout budget. The
    host can later be brought back up with
    {!Legion_net.Network.set_host_up}; objects return via their
    Magistrates' last saved Object Persistent Representations. *)

val power_fail : t -> Legion_net.Network.host_id -> unit
(** Fault injection: mark the host down and fail in-flight calls to it,
    but — unlike {!crash_host} — leave its process table intact, as a
    power failure would. While down, its placements receive nothing;
    when the host comes back up ({!Legion_net.Network.set_host_up}),
    any placement superseded in the meantime (its epoch trails the
    LOID's {!current_epoch}) is reaped with a [Fence] event instead of
    being resurrected as a zombie. *)

(** {1 Epochs and recovery} *)

val current_epoch : t -> Loid.t -> int
(** The LOID's current incarnation number ([0] until first bumped). *)

val bump_epoch : t -> Loid.t -> int
(** Open a new incarnation and return its number. Magistrates call this
    on every reactivation; live placements of older incarnations are
    thereafter refused delivery with [Stale_epoch] (and reaped when
    their host reboots). *)

val proc_epoch : proc -> int
(** The incarnation this placement was spawned into. *)

val refresh_epoch : t -> proc -> unit
(** Re-stamp a live placement into its LOID's {e current} incarnation.
    The replica-set repair protocol calls this on the surviving
    replicas after {!bump_epoch}: the bump fences the dead replica's
    stale placements and addresses, while the survivors — legitimately
    part of the repaired set — are carried across into the new
    incarnation instead of being fenced alongside. *)

val mark_dead : t -> Loid.t -> unit
(** Start the MTTR clock for a LOID (idempotent until recovery): the
    failure detector calls this at [ConfirmDead]; the first call
    subsequently delivered to the object stops the clock and records
    the elapsed virtual time in the ["rt.mttr"] histogram. *)

val is_live : proc -> bool

val last_delivery : proc -> float
(** Virtual time a call last reached this instance (spawn time if
    never). Feeds idle-deactivation sweeps. *)

val proc_loid : proc -> Loid.t
val proc_host : proc -> Legion_net.Network.host_id
val proc_kind : proc -> string
val placements : t -> Loid.t -> proc list
(** Active placements, newest first; [[]] when inert/unknown. *)

val find_proc : t -> Loid.t -> proc option
(** An arbitrary active placement. *)

val set_handler : proc -> handler -> unit
(** Swap the handler (used during two-phase bootstrap). *)

val set_binding_agent : proc -> Address.t option -> unit
val binding_agent : proc -> Address.t option

(** {1 Admission control and load shedding}

    A budgeted object ([admission] set at spawn or via
    {!set_admission}) executes at most [max_inflight] calls at once;
    arrivals beyond that park in a FIFO queue of at most [max_queue],
    and anything further is {e shed}: answered immediately with
    [Err.Overloaded] (a [Shed] event) instead of being allowed to rot
    until timeout. Admitted calls emit [Admit]. Queued calls dispatch
    in order as inflight slots free up. The caller's comm layer treats
    [Overloaded] as retryable backpressure (see {!invoke}). *)

val set_admission : proc -> admission option -> unit
val admission_of : proc -> admission option

val inflight : proc -> int
(** Calls currently executing (handler started, reply pending). *)

val queued_calls : proc -> int
(** Calls parked in the admission queue. *)

val load_factor : proc -> float
(** [(inflight + queued) / (max_inflight + max_queue)] — [0.] when
    unbudgeted or idle, approaching [1.] as the next arrival would be
    shed. Parts use it to degrade by policy {e before} the hard limit:
    {!Legion_core.Class_part} sheds creates past [0.5] while lookups
    ride to the end. *)

val shed_reply : t -> proc -> meth:string -> Err.t
(** Shed by policy from inside a handler: emits the [Shed] event,
    counts it, and returns the [Err.Overloaded] (with the same
    queue-scaled [retry_after] hint the admission layer uses) for the
    handler to reply with. *)

(** {1 Tenancy}

    Arming a {!Tenant.t} registry ({!set_tenants}) switches every
    budgeted process from the shared FIFO to {e per-tenant} wait lanes
    scheduled by deficit round robin: a call's tenant is derived from
    its environment's Responsible Agent ([Env.responsible], §2.4), its
    token-bucket and inflight budgets are charged at admission (a failed
    charge is shed with the retryable [Err.Quota_exceeded], attributed
    to the tenant in the [Shed] event), and freed inflight slots are
    granted weight-proportionally across backlogged lanes, each bounded
    by [max_queue] — so a flooding tenant exhausts only its own lane and
    budget while everyone else's queue depth and dispatch share are
    preserved. With no registry armed the admission path is byte-for-
    byte the pre-tenancy FIFO behaviour. *)

val set_tenants : t -> Tenant.t option -> unit
val tenants : t -> Tenant.t option

val tenant_label : t -> Env.t -> string
(** The tenant name the registry attributes the environment to
    ({!Tenant.fallback_name} when unregistered or no registry). *)

val charge_quota : t -> proc -> meth:string -> env:Env.t -> (unit, Err.t) result
(** Charge one call against the caller's tenant rate budget from inside
    a handler — for parts gating expensive methods (a class charging
    [Create]) with the same bucket, shed accounting, and
    [Err.Quota_exceeded] shape as the admission layer. [Ok ()] when no
    registry is armed or the tenant is unbudgeted. *)

val note_deny : t -> proc -> meth:string -> env:Env.t -> string
(** Record a policy rejection without choosing the error shape: counts
    it against the caller's tenant, emits the tenant-tagged [Deny]
    event, and returns the judged tenant's name — for parts that keep a
    legacy error type (the Magistrate's [Refused]) on their own policy
    path. *)

val deny_reply : t -> proc -> meth:string -> env:Env.t -> reason:string -> Err.t
(** A binding-path policy rejection: {!note_deny} plus the terminal
    [Err.Denied] for the handler to reply with. *)

(** {1 Addresses and bindings} *)

val element_of : proc -> Address.element
(** The [Sim] Object Address Element where this instance listens. *)

val address_of : proc -> Address.t
(** Singleton address of this instance. *)

val binding_of : t -> proc -> Binding.t
(** Mint a binding for this single instance, stamped with the
    configured TTL. *)

val seed_binding : proc -> Binding.t -> unit
(** Prime the instance's comm-layer cache (bootstrap, or explicit
    propagation "for performance purposes", §3.6 AddBinding). *)

val cache_of : proc -> Legion_naming.Cache.t
(** The comm-layer binding cache (exposed for tests and experiments). *)

(** {1 Invocation} *)

val invoke :
  ctx ->
  ?timeout:float ->
  ?max_rebinds:int ->
  dst:Loid.t ->
  meth:string ->
  args:Value.t list ->
  ?env:Env.t ->
  (reply -> unit) ->
  unit
(** Full communication layer: cache → Binding Agent → send; on delivery
    failure, invalidate, refresh via the Binding Agent ([GetBinding]
    with the stale binding), retry up to [max_rebinds]. [env] defaults
    to the caller's self-sovereign environment. [timeout] replaces the
    configured deadline {e and} disables the retransmission policy —
    the call becomes a single attempt under a caller-managed budget.
    Probes that feed a decision inside a larger call chain must use a
    short one or they exhaust the upstream caller's budget; methods
    that defer their reply (barrier [Arrive]) must use a long one so
    the single transmission is never repeated. [max_rebinds] similarly
    overrides the rebind budget — failure-detector-style scans over
    possibly-dead components set both low.

    Backpressure: an [Overloaded] reply — and a [Txn_locked] prepare
    rejection, which sheds the same way — is retried under the same call
    id after backing off at least the destination's [retry_after] hint
    ({!Retry.backoff_window}), as long as attempt budget and deadline
    remain — explicit-[?timeout] (single-attempt) calls surface it
    immediately. When breakers are configured, sends consult the
    destination's circuit first and may fail fast (or wait out the
    cooldown, budget permitting) without touching the network. *)

val invoke_address :
  ctx ->
  ?timeout:float ->
  address:Address.t ->
  dst:Loid.t ->
  meth:string ->
  args:Value.t list ->
  env:Env.t ->
  (reply -> unit) ->
  unit
(** Send directly to a known Object Address, honouring its semantic:
    [All]/[First_k]/[K_random] race the targets and take the first real
    reply; [Any_random] picks one; [Ordered_failover] (and [Custom])
    walk the element list, failing over on delivery failures only. *)

val invoke_binding :
  ctx ->
  ?timeout:float ->
  binding:Binding.t ->
  meth:string ->
  args:Value.t list ->
  env:Env.t ->
  (reply -> unit) ->
  unit
(** [invoke_address] on the binding's address and LOID. *)

(** {1 Tracing} *)

val describe_message : Value.t -> string option
(** Render a wire message (as seen by a {!Legion_net.Network.set_tap}
    observer) as a one-line human-readable protocol event: the Fig. 17
    sequences become visible. [None] for non-runtime payloads. *)

(** {1 Accounting} *)

val total_calls_delivered : t -> int
val total_sheds : t -> int
(** Calls rejected with [Overloaded] — by admission queues and by
    parts shedding through {!shed_reply}. *)

val dedup_hits : t -> int
(** Duplicate call deliveries absorbed or replayed by the exactly-once
    cache ([0] when [dedup_capacity] is [None]). *)

val dedup_stats : t -> (int * int) option
(** (live entries, LRU evictions) of the dedup cache; [None] when
    disabled. *)

val requests_of : proc -> int
(** Method calls delivered to this instance. *)

val caller_sites : proc -> (Legion_net.Network.site_id * int) list
(** Cumulative calls delivered to this instance, grouped by the
    caller's site. This is the locality signal behind §3.8's
    "schedulers may migrate objects toward their callers": a rebalancer
    diffs successive snapshots to find where an object's demand
    actually comes from. Unordered; sites it never heard from are
    absent. *)

val breaker_phase : t -> Legion_net.Network.host_id -> string option
(** The circuit phase toward a destination host (["closed"], ["open"],
    ["half-open"]); [None] when breakers are disabled. *)
