module Loid = Legion_naming.Loid
module Address = Legion_naming.Address
module Binding = Legion_naming.Binding
module Cache = Legion_naming.Cache
module Value = Legion_wire.Value
module Env = Legion_sec.Env
module Engine = Legion_sim.Engine
module Network = Legion_net.Network
module Counter = Legion_util.Counter
module Prng = Legion_util.Prng
module Event = Legion_obs.Event
module Recorder = Legion_obs.Recorder

type admission = {
  max_inflight : int;
  max_queue : int;
  retry_after_hint : float;
}

let default_admission =
  { max_inflight = 8; max_queue = 32; retry_after_hint = 0.05 }

type config = {
  call_timeout : float;
  max_rebinds : int;
  binding_ttl : float option;
  retry : Retry.t;
  admission : admission option;
  breaker : Breaker.config option;
  dedup_capacity : int option;
}

let default_config =
  {
    call_timeout = 5.0;
    max_rebinds = 3;
    binding_ttl = None;
    retry = Retry.default;
    admission = None;
    breaker = None;
    dedup_capacity = Some 4096;
  }

type call = { meth : string; args : Value.t list; env : Env.t }
type reply = (Value.t, Err.t) result

(* Exactly-once effects: one entry per (caller host, call id) the
   runtime has started executing. [de_reply = None] while the handler
   runs — a duplicate arriving then is absorbed (the original's reply
   will reach the caller); [Some r] afterwards replays [r] for
   retransmissions whose reply was lost. Retryable sheds (Overloaded,
   Txn_locked, Quota_exceeded, No_quorum) are evicted instead of
   recorded: the caller backs off and retries the {e same} id expecting
   re-evaluation. *)
type dedup_entry = {
  de_loid : Loid.t;
  de_meth : string;
  mutable de_reply : reply option;
}

(* Per-tenant wait lanes under deficit round robin (DRR). When the
   runtime serves a tenant registry, a budgeted process parks excess
   arrivals in one bounded lane per tenant instead of the single shared
   FIFO, and freed inflight slots are granted by cycling the ring of
   backlogged lanes: each visit tops a lane's deficit up by its tenant's
   weight and serves whole calls while the deficit lasts, so service is
   weight-proportional and one flooding tenant can neither displace
   other tenants' queued calls nor monopolise the dispatch order. *)
type lane = {
  l_tenant : Tenant.tenant;
  l_q : (call * (reply -> unit)) Queue.t;
  mutable l_deficit : float;
  mutable l_linked : bool;  (* currently a member of the ring *)
}

type drr = {
  d_lanes : (string, lane) Hashtbl.t;  (* lookup only, never iterated *)
  d_ring : lane Queue.t;  (* service order; only backlogged lanes *)
  mutable d_count : int;  (* calls parked across all lanes *)
}

type proc = {
  loid : Loid.t;
  host : Network.host_id;
  slot : int;
  kind : string;
  mutable epoch : int;  (* incarnation this placement belongs to *)
  cache : Cache.t;
  counter : Counter.t;
  queue : (call * (reply -> unit)) Queue.t;  (* admission wait queue *)
  mutable drr : drr option;  (* per-tenant lanes; replaces [queue] when tenancy is on *)
  mutable admission : admission option;
  mutable inflight : int;  (* handlers started, reply not yet sent *)
  mutable live : bool;
  mutable handler : handler;
  mutable ba : Address.t option;
  mutable last_delivery : float;  (* when a call last reached it *)
  mutable caller_sites : (int * int) list;
      (* site -> cumulative calls received from it; the locality signal
         the elastic rebalancer reads to migrate objects toward their
         callers *)
}

and ctx = { rt : t; self : proc }
and handler = ctx -> call -> (reply -> unit) -> unit

and pending = {
  cont : reply -> unit;
  dst_host : int;  (* where the call is headed; crash_host reaps by this *)
  mutable timer : Engine.handle option;  (* current attempt deadline *)
  mutable attempts : int;  (* transmissions so far, >= 1 once sent *)
  started : float;  (* virtual time of the first transmission *)
}

and t = {
  sim : Engine.t;
  net : Network.t;
  registry : Counter.Registry.r;
  prng : Prng.t;
  config : config;
  mutable slot_tbl : proc option array;  (* slot -> instance; O(1) delivery routing *)
  places : proc list Loid.Table.t;  (* loid -> active placements *)
  pending : (int, pending) Hashtbl.t;
  attached : (int, unit) Hashtbl.t;  (* hosts with a receiver installed *)
  epochs : int Loid.Table.t;  (* loid -> current incarnation, absent = 0 *)
  dead_since : float Loid.Table.t;
      (* loid -> ConfirmDead time, until the first post-recovery delivery *)
  obs : Recorder.t;
  breakers : Breaker.t option;  (* per-destination circuit state *)
  mutable tenants : Tenant.t option;  (* principal registry; None = untenanted *)
  dedup : (int * int, dedup_entry) Dedup.t option;
      (* (caller host, call id) -> exactly-once entry; None = disabled *)
  mutable next_slot : int;
  mutable next_call : int;
  mutable delivered : int;
  mutable sheds : int;  (* calls rejected by admission control *)
  mutable dedup_hits : int;  (* duplicate deliveries absorbed or replayed *)
}

let emit rt ~host kind =
  Recorder.emit rt.obs ~host ~site:(Network.site_of rt.net host) kind

(* Slots are allocated globally (never reused), so a plain array is the
   routing table: delivery resolves a destination slot without hashing
   or allocating a key. *)

let slot_get rt slot =
  if slot < 0 || slot >= Array.length rt.slot_tbl then None
  else rt.slot_tbl.(slot)

let slot_set rt slot proc =
  let n = Array.length rt.slot_tbl in
  if slot >= n then begin
    let cap = Stdlib.max 256 (Stdlib.max (slot + 1) (2 * n)) in
    let bigger = Array.make cap None in
    Array.blit rt.slot_tbl 0 bigger 0 n;
    rt.slot_tbl <- bigger
  end;
  rt.slot_tbl.(slot) <- Some proc

(* ------------------------------------------------------------------ *)
(* Epochs (incarnation numbers).                                       *)

let current_epoch rt loid =
  Option.value ~default:0 (Loid.Table.find rt.epochs loid)

let bump_epoch rt loid =
  let e = current_epoch rt loid + 1 in
  Loid.Table.set rt.epochs loid e;
  e

let kill rt proc =
  if proc.live then begin
    proc.live <- false;
    emit rt ~host:proc.host (Event.Deactivate { loid = proc.loid });
    (* Calls parked in the admission queue will never run; answer them
       rather than leaving their callers to time out. *)
    let answer_parked (_call, reply_to) =
      ignore
        (Engine.schedule rt.sim ~delay:0.0 (fun () ->
             reply_to (Error Err.No_such_object)))
    in
    Queue.iter answer_parked proc.queue;
    Queue.clear proc.queue;
    (match proc.drr with
    | Some d ->
        (* Ring order is the deterministic flush order for the lanes. *)
        Queue.iter
          (fun lane ->
            Queue.iter answer_parked lane.l_q;
            Queue.clear lane.l_q;
            lane.l_linked <- false)
          d.d_ring;
        Queue.clear d.d_ring;
        d.d_count <- 0
    | None -> ());
    rt.slot_tbl.(proc.slot) <- None;
    let remaining =
      List.filter
        (fun p -> not (p.host = proc.host && p.slot = proc.slot))
        (Option.value ~default:[] (Loid.Table.find rt.places proc.loid))
    in
    if remaining = [] then Loid.Table.remove rt.places proc.loid
    else Loid.Table.set rt.places proc.loid remaining
  end

let placements rt loid = Option.value ~default:[] (Loid.Table.find rt.places loid)

let kill_loid rt loid = List.iter (kill rt) (placements rt loid)

(* Ascending slot order = activation order, so recovery sweeps are
   deterministic. *)
let procs_on_host rt host =
  let acc = ref [] in
  for i = Array.length rt.slot_tbl - 1 downto 0 do
    match rt.slot_tbl.(i) with
    | Some proc when proc.host = host && proc.live -> acc := proc :: !acc
    | _ -> ()
  done;
  !acc

(* A rebooted host must not resurrect placements that were superseded
   while it was down: any surviving proc whose epoch trails its LOID's
   current incarnation is fenced off and reaped, never heard from. *)
let reap_rebooted rt host =
  List.iter
    (fun p ->
      let cur = current_epoch rt p.loid in
      if p.epoch < cur then begin
        emit rt ~host
          (Event.Fence { loid = p.loid; epoch = p.epoch; current = cur });
        kill rt p
      end)
    (procs_on_host rt host)

let create ~sim ~net ~registry ~prng ?(config = default_config) ?obs () =
  let obs =
    match obs with
    | Some r -> r
    | None -> Recorder.create ~clock:(fun () -> Engine.now sim) ()
  in
  let rt =
    {
      sim;
      net;
      registry;
      prng;
      config;
      slot_tbl = Array.make 256 None;
      places = Loid.Table.create ();
      pending = Hashtbl.create 256;
      attached = Hashtbl.create 64;
      epochs = Loid.Table.create ();
      dead_since = Loid.Table.create ();
      obs;
      breakers = Option.map Breaker.create config.breaker;
      tenants = None;
      dedup =
        Option.map (fun capacity -> Dedup.create ~capacity)
          config.dedup_capacity;
      next_slot = 0;
      next_call = 0;
      delivered = 0;
      sheds = 0;
      dedup_hits = 0;
    }
  in
  Network.set_host_watcher net
    (Some (fun h ~up -> if up then reap_rebooted rt h));
  rt

let sim rt = rt.sim
let net rt = rt.net
let registry rt = rt.registry
let prng rt = rt.prng
let config rt = rt.config
let now rt = Engine.now rt.sim
let obs rt = rt.obs

let mark_dead rt loid =
  if not (Loid.Table.mem rt.dead_since loid) then
    Loid.Table.set rt.dead_since loid (now rt)

(* ------------------------------------------------------------------ *)
(* Wire format of calls and replies.                                   *)

let encode_call ~id ~src_loid ~src_host ~dst_loid ~dst_slot c =
  Value.Record
    [
      ("k", Value.Str "c");
      ("id", Value.Int id);
      ("sl", Loid.to_value src_loid);
      ("sh", Value.Int src_host);
      ("dl", Loid.to_value dst_loid);
      ("ds", Value.Int dst_slot);
      ("m", Value.Str c.meth);
      ("a", Value.List c.args);
      ("e", Env.to_value c.env);
    ]

let encode_reply ~id (r : reply) =
  match r with
  | Ok v ->
      Value.Record [ ("k", Value.Str "r"); ("id", Value.Int id); ("ok", Value.Bool true); ("v", v) ]
  | Error e ->
      Value.Record
        [
          ("k", Value.Str "r");
          ("id", Value.Int id);
          ("ok", Value.Bool false);
          ("v", Err.to_value e);
        ]

type incoming =
  | In_call of {
      id : int;
      src_loid : Loid.t;
      src_host : int;
      dst_loid : Loid.t;
      dst_slot : int;
      call : call;
    }
  | In_reply of { id : int; reply : reply }
  | In_bounce of { id : int; src_host : int; err : Err.t }
      (* A recognisable call whose body would not decode: bounce the
         typed error back instead of leaving the caller to time out. *)
  | In_garbage of string

let ( let* ) r f = Result.bind r f

let decode_incoming v : incoming =
  let field_err e = Format.asprintf "%a" Value.pp_error e in
  let get name conv = Result.map_error field_err (Result.bind (Value.field v name) conv) in
  let parse =
    let* kind = get "k" Value.to_str in
    match kind with
    | "c" ->
        let* id = get "id" Value.to_int in
        let* src_loid = Result.bind (Result.map_error field_err (Value.field v "sl")) Loid.of_value in
        let* src_host = get "sh" Value.to_int in
        let* dst_loid = Result.bind (Result.map_error field_err (Value.field v "dl")) Loid.of_value in
        let* dst_slot = get "ds" Value.to_int in
        let* meth = get "m" Value.to_str in
        let* args =
          match Value.field v "a" with
          | Ok (Value.List args) -> Ok args
          | Ok _ -> Error "call args not a list"
          | Error e -> Error (field_err e)
        in
        let* env = Result.bind (Result.map_error field_err (Value.field v "e")) Env.of_value in
        Ok
          (In_call
             { id; src_loid; src_host; dst_loid; dst_slot; call = { meth; args; env } })
    | "r" ->
        let* id = get "id" Value.to_int in
        let* ok = get "ok" Value.to_bool in
        let* payload = Result.map_error field_err (Value.field v "v") in
        if ok then Ok (In_reply { id; reply = Ok payload })
        else
          let* e = Err.of_value payload in
          Ok (In_reply { id; reply = Error e })
    | other -> Error (Printf.sprintf "unknown message kind %S" other)
  in
  match parse with
  | Ok msg -> msg
  | Error e -> (
      (* Fail-closed salvage of a partially-decodable frame: when the
         kind and correlation id still parse, surface the typed
         [Err.Corrupt] — a reply-shaped frame fails the caller's
         pending call promptly, a call-shaped frame is bounced back —
         instead of silently burning the caller's timeout. Anything
         less is garbage and is ignored (never an exception). *)
      let int_field name =
        match Value.field_opt v name with
        | Some f -> Result.to_option (Value.to_int f)
        | None -> None
      in
      match (Value.field_opt v "k", int_field "id") with
      | Some (Value.Str "r"), Some id ->
          In_reply { id; reply = Error (Err.Corrupt e) }
      | Some (Value.Str "c"), Some id -> (
          match int_field "sh" with
          | Some src_host -> In_bounce { id; src_host; err = Err.Corrupt e }
          | None -> In_garbage e)
      | _ -> In_garbage e)

(* ------------------------------------------------------------------ *)
(* Breaker bookkeeping.                                                *)

(* Every completed call reports its outcome for its destination host so
   the per-destination circuit can open (fail fast) and close again.
   Any real reply — even an application error — proves the path and the
   destination are alive; only sheds and transport-level silence count
   against the circuit. *)
let breaker_outcome : reply -> Breaker.outcome = function
  | Ok _ -> Breaker.Success
  | Error (Err.Overloaded { retry_after }) -> Breaker.Saturated retry_after
  | Error (Err.Timeout | Err.Unreachable _) -> Breaker.Transport_failure
  (* [Quota_exceeded] lands in the Success bucket deliberately: it means
     one tenant's own budget ran dry while the destination keeps serving
     everyone else, and a per-tenant shed must not open a circuit that
     is shared by all tenants on the path. *)
  | Error _ -> Breaker.Success

let breaker_note rt ~at_host ~dst_host outcome =
  match rt.breakers with
  | None -> ()
  | Some b -> (
      match Breaker.record b ~now:(Engine.now rt.sim) dst_host outcome with
      | None -> ()
      | Some (Breaker.Opened { failures }) ->
          emit rt ~host:at_host (Event.Breaker_open { host = dst_host; failures })
      | Some Breaker.Closed_circuit ->
          emit rt ~host:at_host (Event.Breaker_close { host = dst_host }))

(* ------------------------------------------------------------------ *)
(* Delivery and admission control.                                     *)

let queue_depth proc =
  Queue.length proc.queue
  + match proc.drr with Some d -> d.d_count | None -> 0

let overload_hint a ~queued =
  let fill = float_of_int queued /. float_of_int (max 1 a.max_queue) in
  a.retry_after_hint *. (1.0 +. fill)

let overload_error a ~queued =
  Err.Overloaded { retry_after = overload_hint a ~queued }

(* Also the degradation hook for object implementations: a part that
   sheds by policy (a class refusing creates under load) uses the same
   event and error shape as the admission layer. *)
let shed_reply rt proc ~meth =
  let queued = queue_depth proc in
  rt.sheds <- rt.sheds + 1;
  emit rt ~host:proc.host
    (Event.Shed { loid = proc.loid; meth; queue = queued; tenant = None });
  let a = Option.value ~default:default_admission proc.admission in
  overload_error a ~queued

let shed_call rt proc ~meth reply_to =
  reply_to (Error (shed_reply rt proc ~meth))

(* A tenant-budget shed: attributed to the charged tenant in both the
   event stream and the error, unlike the anonymous [Overloaded]. *)
let quota_error rt proc tn ~meth ~retry_after =
  rt.sheds <- rt.sheds + 1;
  Tenant.note_shed tn;
  emit rt ~host:proc.host
    (Event.Shed
       {
         loid = proc.loid;
         meth;
         queue = queue_depth proc;
         tenant = Some (Tenant.name tn);
       });
  Err.Quota_exceeded { tenant = Tenant.name tn; retry_after }

let quota_shed rt proc tn ~meth ~retry_after reply_to =
  reply_to (Error (quota_error rt proc tn ~meth ~retry_after))

let drr_of proc =
  match proc.drr with
  | Some d -> d
  | None ->
      let d =
        { d_lanes = Hashtbl.create 8; d_ring = Queue.create (); d_count = 0 }
      in
      proc.drr <- Some d;
      d

let lane_of d tn =
  let key = Tenant.name tn in
  match Hashtbl.find_opt d.d_lanes key with
  | Some lane -> lane
  | None ->
      let lane =
        { l_tenant = tn; l_q = Queue.create (); l_deficit = 0.0; l_linked = false }
      in
      Hashtbl.add d.d_lanes key lane;
      lane

(* A lane (re-)entering the ring starts with one quantum of deficit, so
   a tenant returning from idle is served promptly without accumulating
   credit while absent. *)
let link_lane d lane =
  if not lane.l_linked then begin
    lane.l_linked <- true;
    lane.l_deficit <- float_of_int (Tenant.weight lane.l_tenant);
    Queue.add lane d.d_ring
  end

(* Run the handler for an admitted call. The caller has already counted
   the inflight slot (and the tenant's, when tenancy is on); the wrapped
   reply continuation releases both and pulls the next queued call in,
   so the budget is conserved even if a handler replies synchronously. *)
let rec deliver_call rt proc ~queued ?tn call reply_to =
  proc.counter |> Counter.incr;
  proc.last_delivery <- Engine.now rt.sim;
  rt.delivered <- rt.delivered + 1;
  (match Loid.Table.find rt.dead_since proc.loid with
  | Some t0 ->
      Loid.Table.remove rt.dead_since proc.loid;
      Recorder.observe rt.obs ~component:"rt.mttr" (Engine.now rt.sim -. t0)
  | None -> ());
  (match proc.admission with
  | Some _ ->
      emit rt ~host:proc.host
        (Event.Admit
           {
             loid = proc.loid;
             meth = call.meth;
             queued;
             tenant = Option.map Tenant.name tn;
           })
  | None -> ());
  let replied = ref false in
  let reply_once r =
    if not !replied then begin
      replied := true;
      proc.inflight <- proc.inflight - 1;
      Option.iter Tenant.end_call tn;
      drain_queue rt proc;
      reply_to r
    end
  in
  proc.handler { rt; self = proc } call reply_once

and drain_queue rt proc =
  match proc.admission with
  | Some a when proc.inflight < a.max_inflight -> (
      match proc.drr with
      | Some d -> drain_drr rt proc a d
      | None -> drain_fifo rt proc a)
  | _ -> ()

and drain_fifo rt proc _a =
  if not (Queue.is_empty proc.queue) then begin
    (* Reserve the freed slot now, dispatch from a fresh event so the
       reply that released it finishes unwinding first. *)
    let call, reply_to = Queue.pop proc.queue in
    proc.inflight <- proc.inflight + 1;
    ignore
      (Engine.schedule rt.sim ~delay:0.0 (fun () ->
           if proc.live then deliver_call rt proc ~queued:true call reply_to
           else begin
             proc.inflight <- proc.inflight - 1;
             reply_to (Error Err.No_such_object)
           end))
  end

(* Grant the freed slot under deficit round robin: walk the ring, topping
   deficits up by one weight-quantum per rotation, and serve the first
   lane holding a whole quantum. A lane keeps the head (and its residual
   deficit) until the quantum is spent, then rotates to the tail; empty
   lanes leave the ring. The bound covers one full recharge rotation —
   every backlogged lane gains >= 1 deficit per pass, so a servable head
   is always reached within it. *)
and drain_drr rt proc a d =
  ignore a;
  let rec pick rounds =
    if rounds = 0 || Queue.is_empty d.d_ring then None
    else
      let lane = Queue.peek d.d_ring in
      if Queue.is_empty lane.l_q then begin
        ignore (Queue.pop d.d_ring);
        lane.l_linked <- false;
        pick (rounds - 1)
      end
      else if lane.l_deficit >= 1.0 then begin
        lane.l_deficit <- lane.l_deficit -. 1.0;
        let entry = Queue.pop lane.l_q in
        d.d_count <- d.d_count - 1;
        if Queue.is_empty lane.l_q then begin
          ignore (Queue.pop d.d_ring);
          lane.l_linked <- false
        end;
        Some (lane.l_tenant, entry)
      end
      else begin
        lane.l_deficit <-
          lane.l_deficit +. float_of_int (Tenant.weight lane.l_tenant);
        ignore (Queue.pop d.d_ring);
        Queue.add lane d.d_ring;
        pick (rounds - 1)
      end
  in
  match pick ((2 * Queue.length d.d_ring) + 1) with
  | None -> ()
  | Some (tn, (call, reply_to)) ->
      proc.inflight <- proc.inflight + 1;
      Tenant.begin_call tn;
      ignore
        (Engine.schedule rt.sim ~delay:0.0 (fun () ->
             if proc.live then deliver_call rt proc ~queued:true ~tn call reply_to
             else begin
               proc.inflight <- proc.inflight - 1;
               Tenant.end_call tn;
               reply_to (Error Err.No_such_object)
             end))

let note_caller rt proc ~src_host =
  let site = Network.site_of rt.net src_host in
  proc.caller_sites <-
    (match List.assoc_opt site proc.caller_sites with
    | Some n -> (site, n + 1) :: List.remove_assoc site proc.caller_sites
    | None -> (site, 1) :: proc.caller_sites)

let admit_call rt proc call reply_to =
  match proc.admission with
  | Some a -> (
      match rt.tenants with
      | Some reg ->
          (* Tenanted admission: charge the caller's budgets first (a
             failed charge is a shed attributed to that tenant), then
             either take a free slot directly — only when no lane is
             backlogged, so arrivals never overtake queued tenants — or
             park in the tenant's own bounded lane. *)
          let tn = Tenant.of_env reg call.env in
          let nowt = Engine.now rt.sim in
          if not (Tenant.try_take tn ~now:nowt) then
            quota_shed rt proc tn ~meth:call.meth
              ~retry_after:(Tenant.retry_hint tn ~now:nowt)
              reply_to
          else if not (Tenant.inflight_ok tn) then
            quota_shed rt proc tn ~meth:call.meth ~retry_after:a.retry_after_hint
              reply_to
          else
            let d = drr_of proc in
            if proc.inflight < a.max_inflight && Queue.is_empty d.d_ring then begin
              proc.inflight <- proc.inflight + 1;
              Tenant.begin_call tn;
              deliver_call rt proc ~queued:false ~tn call reply_to
            end
            else
              let lane = lane_of d tn in
              if Queue.length lane.l_q < a.max_queue then begin
                Queue.add (call, reply_to) lane.l_q;
                d.d_count <- d.d_count + 1;
                link_lane d lane;
                (* A slot may be free when the tenant's own lane was
                   backlogged; grant it through the scheduler so lane
                   order, not arrival order, decides. *)
                if proc.inflight < a.max_inflight then drain_queue rt proc
              end
              else
                quota_shed rt proc tn ~meth:call.meth
                  ~retry_after:(overload_hint a ~queued:(Queue.length lane.l_q))
                  reply_to
      | None ->
          if proc.inflight >= a.max_inflight then
            if Queue.length proc.queue < a.max_queue then
              Queue.add (call, reply_to) proc.queue
            else shed_call rt proc ~meth:call.meth reply_to
          else begin
            proc.inflight <- proc.inflight + 1;
            deliver_call rt proc ~queued:false call reply_to
          end)
  | None ->
      proc.inflight <- proc.inflight + 1;
      deliver_call rt proc ~queued:false call reply_to

(* ------------------------------------------------------------------ *)
(* Tenancy: registry plumbing and part-facing enforcement helpers.     *)

let set_tenants rt reg = rt.tenants <- reg
let tenants rt = rt.tenants

let tenant_label rt env =
  match rt.tenants with
  | None -> Tenant.fallback_name
  | Some reg -> Tenant.name (Tenant.of_env reg env)

(* Parts that gate expensive methods by tenant budget (a class charging
   Create) use the same bucket, shed accounting and error shape as the
   admission layer. Free when no registry is armed. *)
let charge_quota rt proc ~meth ~env =
  match rt.tenants with
  | None -> Ok ()
  | Some reg ->
      let tn = Tenant.of_env reg env in
      let nowt = Engine.now rt.sim in
      if Tenant.try_take tn ~now:nowt then Ok ()
      else
        Error
          (quota_error rt proc tn ~meth
             ~retry_after:(Tenant.retry_hint tn ~now:nowt))

(* A policy rejection: count it against the caller's tenant and emit
   the tenant-tagged [Deny]. Returns the judged tenant's name. *)
let note_deny rt proc ~meth ~env =
  let tenant =
    match rt.tenants with
    | None -> Tenant.fallback_name
    | Some reg ->
        let tn = Tenant.of_env reg env in
        Tenant.note_denied tn;
        Tenant.name tn
  in
  emit rt ~host:proc.host (Event.Deny { loid = proc.loid; meth; tenant });
  tenant

(* A binding-path policy rejection: [note_deny] plus the terminal error
   for the handler to reply with. *)
let deny_reply rt proc ~meth ~env ~reason =
  let tenant = note_deny rt proc ~meth ~env in
  Err.Denied { tenant; reason }

let on_receive rt host ~src payload =
  ignore src;
  match decode_incoming payload with
  | In_garbage _ -> ()
  | In_bounce { id; src_host; err } ->
      Network.send rt.net ~src:host ~dst:src_host (encode_reply ~id (Error err))
  | In_reply { id; reply } -> (
      match Hashtbl.find_opt rt.pending id with
      | None -> () (* late duplicate (racing replica) or post-timeout reply *)
      | Some p ->
          Hashtbl.remove rt.pending id;
          Option.iter Engine.cancel p.timer;
          emit rt ~host (Event.Reply { id; ok = Result.is_ok reply });
          if p.attempts > 1 then
            (* The call survived loss only thanks to retransmission;
               record how long recovery took end to end. *)
            Recorder.observe rt.obs ~component:"rt.recovery"
              (Engine.now rt.sim -. p.started);
          breaker_note rt ~at_host:host ~dst_host:p.dst_host
            (breaker_outcome reply);
          p.cont reply)
  | In_call { id; src_host; dst_loid; dst_slot; call; _ } -> (
      let reply_to r =
        Network.send rt.net ~src:host ~dst:src_host (encode_reply ~id r)
      in
      let dedup_key = (src_host, id) in
      let dedup_seen =
        match rt.dedup with
        | None -> None
        | Some c -> Dedup.find c dedup_key
      in
      match dedup_seen with
      | Some entry -> (
          (* Exactly-once: this (caller, id) already started executing
             here — a retransmission or a network-injected duplicate.
             Replay the recorded reply (its original may have been
             lost) or, while the handler still runs, absorb the copy:
             the original execution's reply will reach the caller. The
             check runs before the slot and fence checks so a completed
             call replays even after its placement died or was
             superseded. *)
          rt.dedup_hits <- rt.dedup_hits + 1;
          emit rt ~host
            (Event.Dedup_hit { loid = entry.de_loid; id; meth = entry.de_meth });
          match entry.de_reply with
          | Some r -> reply_to r
          | None -> ())
      | None -> (
          (* The zero LOID is a wildcard: calls routed purely by Object
             Address (e.g. an object talking to its Binding Agent, whose
             address — not LOID — is in its persistent state, §3.6). *)
          let is_wildcard =
            Int64.equal (Loid.class_id dst_loid) 0L
            && Int64.equal (Loid.class_specific dst_loid) 0L
          in
          match slot_get rt dst_slot with
          | Some proc
            when proc.live && proc.host = host
                 && (is_wildcard || Loid.equal proc.loid dst_loid) ->
              let cur = current_epoch rt proc.loid in
              if proc.epoch < cur then begin
                (* A superseded incarnation must never answer: fence it
                   so the caller's rebind machinery finds the current
                   one. *)
                emit rt ~host
                  (Event.Fence
                     { loid = proc.loid; epoch = proc.epoch; current = cur });
                reply_to (Error Err.Stale_epoch)
              end
              else begin
                note_caller rt proc ~src_host;
                let reply_to =
                  match rt.dedup with
                  | None -> reply_to
                  | Some c ->
                      (* Mark the call executing before admission so a
                         duplicate arriving while it is parked in an
                         admission queue cannot be enqueued a second
                         time. Retryable sheds un-mark: the caller
                         re-sends the same id expecting
                         re-evaluation. *)
                      let entry =
                        {
                          de_loid = proc.loid;
                          de_meth = call.meth;
                          de_reply = None;
                        }
                      in
                      Dedup.set c dedup_key entry;
                      fun r ->
                        (match r with
                        | Error e when Err.is_retryable e ->
                            Dedup.remove c dedup_key
                        | _ -> entry.de_reply <- Some r);
                        reply_to r
                in
                admit_call rt proc call reply_to
              end
          | Some _ | None -> reply_to (Error Err.No_such_object)))

let attach_host rt host =
  if not (Hashtbl.mem rt.attached host) then begin
    Hashtbl.add rt.attached host ();
    Network.set_receiver rt.net host (fun ~src payload ->
        on_receive rt host ~src payload)
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle.                                                          *)

let spawn rt ~host ~loid ~kind ?epoch ?cache_capacity ?binding_agent ?admission
    ~handler () =
  attach_host rt host;
  (* [config.admission] is the default budget for application objects
     only. Infrastructure processes (classes, magistrates, agents,
     hosts) serve each other's bring-up and binding traffic, where a
     budget can invert RPC dependency order; they degrade by policy
     (load_factor / shed_reply) and are budgeted only when a caller
     opts them in via [?admission] or [set_admission]. *)
  let admission =
    match admission with
    | Some a -> a
    | None -> if String.equal kind "app" then rt.config.admission else None
  in
  let epoch =
    match epoch with Some e -> e | None -> current_epoch rt loid
  in
  let slot = rt.next_slot in
  rt.next_slot <- rt.next_slot + 1;
  (* Replicas share a LOID but not a counter: the placement's slot
     disambiguates, so per-process load stays measurable. *)
  let counter =
    Counter.Registry.make rt.registry ~group:kind
      ~name:(Printf.sprintf "%s@%d.%d" (Loid.to_string loid) host slot)
  in
  let cache = Cache.create ?capacity:cache_capacity () in
  let proc =
    {
      loid;
      host;
      slot;
      kind;
      epoch;
      cache;
      counter;
      queue = Queue.create ();
      drr = None;
      admission;
      inflight = 0;
      live = true;
      handler;
      ba = binding_agent;
      last_delivery = Engine.now rt.sim;
      caller_sites = [];
    }
  in
  slot_set rt slot proc;
  let existing = Option.value ~default:[] (Loid.Table.find rt.places loid) in
  Loid.Table.set rt.places loid (proc :: existing);
  emit rt ~host (Event.Activate { loid });
  proc

(* Fail in-flight calls headed to a dead host promptly instead of
   letting each burn its full attempt/retry budget. Continuations run
   from a zero-delay event so callers never re-enter the fault
   injector's caller synchronously. *)
let fail_inflight_to rt host =
  let doomed =
    Hashtbl.fold
      (fun id p acc -> if p.dst_host = host then (id, p) :: acc else acc)
      rt.pending []
  in
  List.iter
    (fun (id, p) ->
      Hashtbl.remove rt.pending id;
      Option.iter Engine.cancel p.timer;
      emit rt ~host (Event.Cancel { id });
      breaker_note rt ~at_host:host ~dst_host:host Breaker.Transport_failure;
      ignore
        (Engine.schedule rt.sim ~delay:0.0 (fun () ->
             p.cont (Error (Err.Unreachable "destination host crashed")))))
    doomed

let crash_host rt host =
  Network.set_host_up rt.net host false;
  List.iter (kill rt) (procs_on_host rt host);
  fail_inflight_to rt host

(* A power failure, unlike [crash_host], leaves the process table
   intact: when the host reboots its placements are still there —
   zombies, if the objects were reactivated elsewhere in the meantime —
   which is exactly what the epoch fence and the reboot reaper exist
   to neutralise. *)
let power_fail rt host =
  Network.set_host_up rt.net host false;
  fail_inflight_to rt host

let find_proc rt loid =
  match placements rt loid with [] -> None | p :: _ -> Some p

let is_live p = p.live
let last_delivery p = p.last_delivery
let proc_loid p = p.loid
let proc_host p = p.host
let proc_kind p = p.kind
let proc_epoch p = p.epoch

(* Carry a surviving placement across an incarnation bump: the replica
   repair protocol bumps the LOID's epoch so the dead replica's stale
   addresses fence, and the survivors — still part of the replica set —
   must move to the new incarnation or the fence would eat them too. *)
let refresh_epoch rt p = p.epoch <- current_epoch rt p.loid

let set_handler p h = p.handler <- h
let set_binding_agent p ba = p.ba <- ba
let binding_agent p = p.ba
let set_admission p a = p.admission <- a
let admission_of p = p.admission
let inflight p = p.inflight
let queued_calls p = queue_depth p

(* 0 = idle or unbudgeted, 1 = the next call is shed. Parts use this to
   degrade by policy before the hard limit bites (Class_part sheds
   creates past 0.5 while lookups ride to the end). *)
let load_factor p =
  match p.admission with
  | None -> 0.0
  | Some a ->
      float_of_int (p.inflight + queue_depth p)
      /. float_of_int (max 1 (a.max_inflight + a.max_queue))

(* ------------------------------------------------------------------ *)
(* Addresses.                                                          *)

let element_of p = Address.Sim { host = p.host; slot = p.slot }
let address_of p = Address.singleton (element_of p)

let binding_of rt p =
  let expires = Option.map (fun ttl -> now rt +. ttl) rt.config.binding_ttl in
  Binding.make ?expires ~epoch:p.epoch ~loid:p.loid ~address:(address_of p) ()

let seed_binding p b = Cache.add p.cache ~now:0.0 b
let cache_of p = p.cache

(* ------------------------------------------------------------------ *)
(* Invocation.                                                         *)

(* Send one call to one element and register the continuation. Default-
   budget calls are governed by the configured retry policy: the call is
   retransmitted (same id — at-least-once) under exponentially growing,
   jittered attempt windows until a reply lands, the attempt budget runs
   out, or the overall deadline passes. An explicit [timeout] is a
   caller-managed deadline and selects a single attempt: probes and
   deferred-reply methods (barrier Arrive) depend on exactly one
   transmission per logical call.

   Returns a cancel thunk that reaps the pending entry without running
   the continuation — racing callers use it to retire losers. Non-Sim
   elements cannot be routed by the simulated network; they fail
   asynchronously so callers see a uniform interface. *)
let send_one ctx ?timeout ~dst_loid ~element c k =
  let rt = ctx.rt in
  match element with
  | Address.Sim { host = dst_host; slot = dst_slot } ->
      let id = rt.next_call in
      rt.next_call <- rt.next_call + 1;
      let policy =
        match timeout with Some _ -> Retry.none | None -> rt.config.retry
      in
      let overall = Option.value ~default:rt.config.call_timeout timeout in
      let started = now rt in
      let deadline = started +. overall in
      let msg =
        encode_call ~id ~src_loid:ctx.self.loid ~src_host:ctx.self.host
          ~dst_loid ~dst_slot c
      in
      (* [cont] must be installed before [handle_reply] exists (the
         closures are mutually recursive through the pending entry), so
         route it through a forward reference. *)
      let on_reply = ref k in
      let p =
        {
          cont = (fun r -> !on_reply r);
          dst_host;
          timer = None;
          attempts = 0;
          started;
        }
      in
      Hashtbl.replace rt.pending id p;
      let backoffs = ref 0 in
      let fail_async e =
        ignore (Engine.schedule rt.sim ~delay:0.0 (fun () -> k (Error e)))
      in
      let give_up () =
        Hashtbl.remove rt.pending id;
        emit rt ~host:ctx.self.host (Event.Timeout { id });
        if policy.Retry.max_attempts > 1 then
          emit rt ~host:ctx.self.host
            (Event.Giveup { id; attempts = p.attempts });
        breaker_note rt ~at_host:ctx.self.host ~dst_host
          Breaker.Transport_failure;
        k (Error Err.Timeout)
      in
      let rec transmit () =
        let decision =
          match rt.breakers with
          | None -> Breaker.Allow
          | Some b -> Breaker.before_send b ~now:(now rt) dst_host
        in
        match decision with
        | Breaker.Reject { error; retry_after } ->
            (* Fail fast: no message, no attempt timer. If the call's
               budget can absorb the wait, park it and try again when
               the circuit may admit a probe. *)
            incr backoffs;
            let wait =
              Retry.backoff_window policy
                ~attempt:(p.attempts + !backoffs) ~retry_after ~prng:rt.prng
            in
            if deadline -. now rt > wait +. 1e-9 then
              p.timer <-
                Some
                  (Engine.schedule rt.sim ~delay:wait (fun () ->
                       p.timer <- None;
                       if Hashtbl.mem rt.pending id then transmit ()))
            else begin
              Hashtbl.remove rt.pending id;
              fail_async error
            end
        | Breaker.Allow | Breaker.Probe ->
            (if decision = Breaker.Probe then
               emit rt ~host:ctx.self.host (Event.Breaker_probe { host = dst_host }));
            p.attempts <- p.attempts + 1;
            if p.attempts > 1 then
              emit rt ~host:ctx.self.host
                (Event.Retry { id; attempt = p.attempts });
            emit rt ~host:ctx.self.host
              (Event.Call { id; src = ctx.self.loid; dst = dst_loid; meth = c.meth });
            let window =
              Float.min
                (Retry.attempt_window policy ~attempt:p.attempts ~prng:rt.prng)
                (deadline -. now rt)
            in
            p.timer <- Some (Engine.schedule rt.sim ~delay:window on_expire);
            Network.send rt.net ~src:ctx.self.host ~dst:dst_host msg
      and on_expire () =
        if Hashtbl.mem rt.pending id then begin
          p.timer <- None;
          if p.attempts < policy.Retry.max_attempts
             && deadline -. now rt > 1e-9
          then transmit ()
          else give_up ()
        end
      and handle_reply (r : reply) =
        (* Runs after the pending entry is removed (reply delivered). *)
        match r with
        | Error
            ( Err.Overloaded { retry_after }
            | Err.Txn_locked { retry_after; _ }
            | Err.Quota_exceeded { retry_after; _ } )
          when p.attempts < policy.Retry.max_attempts ->
            (* Backpressure-aware backoff: the destination shed us and
               said when to come back; honour the hint (and the policy's
               growing window) inside the remaining call budget instead
               of surfacing the shed. A prepare-lock rejection sheds the
               same way — the lock clears when the holding transaction
               resolves, typically well within the hinted window.
               Re-register under the same id — this is still the same
               logical call. *)
            let wait =
              Retry.backoff_window policy ~attempt:(p.attempts + 1)
                ~retry_after ~prng:rt.prng
            in
            if deadline -. now rt > wait +. 1e-9 then begin
              Hashtbl.replace rt.pending id p;
              p.timer <-
                Some
                  (Engine.schedule rt.sim ~delay:wait (fun () ->
                       p.timer <- None;
                       if Hashtbl.mem rt.pending id then transmit ()))
            end
            else k r
        | r -> k r
      in
      on_reply := handle_reply;
      transmit ();
      fun () ->
        if Hashtbl.mem rt.pending id then begin
          Hashtbl.remove rt.pending id;
          Option.iter Engine.cancel p.timer;
          emit rt ~host:ctx.self.host (Event.Cancel { id })
        end
  | Address.Ip _ | Address.Ip_node _ | Address.Raw _ ->
      ignore
        (Engine.schedule rt.sim ~delay:0.0 (fun () ->
             k (Error (Err.Unreachable "non-simulated address element"))));
      fun () -> ()

(* Race: send to every element at once; first reply that is not a
   delivery failure wins and retires the losers — their timers are
   cancelled and their pending entries reaped, so no spurious Timeout
   fires after the exchange is decided. If everything fails, report the
   last failure. *)
let race ctx ?timeout ~dst_loid ~elements c k =
  match elements with
  | [] -> k (Error (Err.Unreachable "empty target list"))
  | _ ->
      let n = List.length elements in
      if n > 1 then
        emit ctx.rt ~host:ctx.self.host
          (Event.Replica_fanout { target = dst_loid; width = n });
      let failures = ref 0 in
      let done_ = ref false in
      let cancels = ref [] in
      let on_reply r =
        if not !done_ then
          match r with
          | Error e when Err.is_delivery_failure e ->
              incr failures;
              if !failures = n then begin
                done_ := true;
                k (Error e)
              end
          | r ->
              done_ := true;
              (* The winner's entry is already gone; cancelling it is a
                 no-op, so retire everything still pending. *)
              List.iter (fun cancel -> cancel ()) !cancels;
              k r
      in
      (* send_one never runs the continuation synchronously (delivery and
         deadlines are both scheduled events), so the losers' cancel
         thunks are all collected before any reply can fire. *)
      cancels :=
        List.map
          (fun el -> send_one ctx ?timeout ~dst_loid ~element:el c on_reply)
          elements

(* Ordered failover: walk the list, advancing only on delivery failure. *)
let rec failover ctx ?timeout ~dst_loid ~elements c k =
  match elements with
  | [] -> k (Error (Err.Unreachable "all address elements failed"))
  | el :: rest ->
      let (_cancel : unit -> unit) =
        send_one ctx ?timeout ~dst_loid ~element:el c (fun r ->
            match r with
            | Error e when Err.is_delivery_failure e && rest <> [] ->
                failover ctx ?timeout ~dst_loid ~elements:rest c k
            | r -> k r)
      in
      ()

let invoke_address ctx ?timeout ~address ~dst ~meth ~args ~env k =
  let c = { meth; args; env } in
  let elements = Address.targets address ctx.rt.prng in
  match Address.semantic address with
  | Address.All | Address.First_k _ | Address.K_random _ ->
      race ctx ?timeout ~dst_loid:dst ~elements c k
  | Address.Any_random | Address.Ordered_failover | Address.Custom _ ->
      failover ctx ?timeout ~dst_loid:dst ~elements c k

let invoke_binding ctx ?timeout ~binding ~meth ~args ~env k =
  invoke_address ctx ?timeout ~address:(Binding.address binding)
    ~dst:(Binding.loid binding) ~meth ~args ~env k

(* Ask the caller's Binding Agent for a binding. [stale] carries the
   binding we believe is bad, making the Agent refresh rather than serve
   its cache (GetBinding(binding) form of §3.6). *)
let resolve_via_agent ctx ?timeout ~dst ~env ~stale k =
  match ctx.self.ba with
  | None -> k (Error (Err.Unreachable "object has no binding agent"))
  | Some ba_address ->
      let rt = ctx.rt in
      emit rt ~host:ctx.self.host
        (Event.Resolve
           { owner = ctx.self.loid; target = dst; stale = stale <> None });
      let t0 = now rt in
      let k r =
        Recorder.observe rt.obs ~component:"rt.resolve" (now rt -. t0);
        k r
      in
      let args =
        match stale with
        | None -> [ Loid.to_value dst ]
        | Some b -> [ Binding.to_value b ]
      in
      (* The Binding Agent's own LOID is unknown here; addressing is by
         Object Address, which is what the persistent state stores. The
         dst LOID in the message is a wildcard the agent accepts. *)
      let ba_loid = Loid.make ~class_id:0L ~class_specific:0L () in
      invoke_address ctx ?timeout ~address:ba_address ~dst:ba_loid
        ~meth:"GetBinding" ~args ~env
        (fun r ->
          match r with
          | Error e -> k (Error e)
          | Ok v -> (
              match Binding.of_value v with
              | Ok b -> k (Ok b)
              | Error msg -> k (Error (Err.Internal ("bad binding from agent: " ^ msg)))))

let invoke ctx ?timeout ?max_rebinds ~dst ~meth ~args ?env k =
  let rt = ctx.rt in
  let env = match env with Some e -> e | None -> Env.of_self ctx.self.loid in
  let rebind_budget = Option.value ~default:rt.config.max_rebinds max_rebinds in
  let c = { meth; args; env } in
  let self_loid = ctx.self.loid in
  let self_host = ctx.self.host in
  let t0 = now rt in
  let k r =
    Recorder.observe rt.obs ~component:"rt.invoke" (now rt -. t0);
    k r
  in
  let install fresh =
    Cache.add ctx.self.cache ~now:(now rt) fresh;
    emit rt ~host:self_host
      (Event.Binding_install { owner = self_loid; target = dst })
  in
  (* One delivery attempt against a binding; on a delivery failure,
     refresh through the Binding Agent and retry (§4.1.4). *)
  let rec attempt binding rebinds_left =
    invoke_binding ctx ?timeout ~binding ~meth:c.meth ~args:c.args ~env (fun r ->
        match r with
        | Error e when Err.is_delivery_failure e ->
            Cache.invalidate_exact ctx.self.cache binding;
            if rebinds_left <= 0 then k (Error e)
            else begin
              emit rt ~host:self_host
                (Event.Rebind
                   {
                     owner = self_loid;
                     target = dst;
                     attempt = rebind_budget - rebinds_left + 1;
                   });
              resolve_via_agent ctx ?timeout ~dst ~env ~stale:(Some binding)
                (fun rb ->
                  match rb with
                  | Error e' -> k (Error e')
                  | Ok fresh ->
                      install fresh;
                      attempt fresh (rebinds_left - 1))
            end
        | r -> k r)
  in
  match Cache.find ctx.self.cache ~now:(now rt) dst with
  | Some binding ->
      emit rt ~host:self_host
        (Event.Cache_hit { owner = self_loid; target = dst });
      attempt binding rebind_budget
  | None ->
      emit rt ~host:self_host
        (Event.Cache_miss { owner = self_loid; target = dst });
      resolve_via_agent ctx ?timeout ~dst ~env ~stale:None (fun rb ->
          match rb with
          | Error e -> k (Error e)
          | Ok binding ->
              install binding;
              attempt binding rebind_budget)

(* ------------------------------------------------------------------ *)
(* Tracing.                                                            *)

let describe_message payload =
  match decode_incoming payload with
  | In_call { id; src_loid; dst_loid; call; _ } ->
      Some
        (Printf.sprintf "call#%d %s -> %s.%s/%d" id (Loid.to_string src_loid)
           (Loid.to_string dst_loid) call.meth (List.length call.args))
  | In_reply { id; reply = Ok _ } -> Some (Printf.sprintf "reply#%d ok" id)
  | In_reply { id; reply = Error e } ->
      Some (Printf.sprintf "reply#%d error: %s" id (Err.to_string e))
  | In_bounce { id; err; _ } ->
      Some (Printf.sprintf "bounce#%d %s" id (Err.to_string err))
  | In_garbage _ -> None

(* ------------------------------------------------------------------ *)
(* Accounting.                                                         *)

let total_calls_delivered rt = rt.delivered
let total_sheds rt = rt.sheds
let dedup_hits rt = rt.dedup_hits

let dedup_stats rt =
  Option.map (fun c -> (Dedup.length c, Dedup.evictions c)) rt.dedup
let requests_of p = Counter.value p.counter
let caller_sites p = p.caller_sites

let breaker_phase rt host =
  Option.map (fun b -> Breaker.phase_name b host) rt.breakers
