module Prng = Legion_util.Prng

type t = {
  max_attempts : int;
  attempt_timeout : float;
  multiplier : float;
  jitter : float;
}

let default =
  { max_attempts = 5; attempt_timeout = 0.3; multiplier = 2.0; jitter = 0.1 }

let none =
  { max_attempts = 1; attempt_timeout = infinity; multiplier = 1.0; jitter = 0.0 }

let attempt_window t ~attempt ~prng =
  let base = t.attempt_timeout *. (t.multiplier ** float_of_int (attempt - 1)) in
  if t.jitter <= 0.0 || not (Float.is_finite base) then base
  else
    (* Uniform in [1 - jitter, 1 + jitter]. *)
    let u = (2.0 *. Prng.float prng 1.0) -. 1.0 in
    base *. (1.0 +. (t.jitter *. u))

(* Backpressure-aware backoff: never retry an overloaded destination
   sooner than it asked for, and never sooner than the policy's own
   (growing, jittered) window for this attempt — whichever is longer. *)
let backoff_window t ~attempt ~retry_after ~prng =
  Float.max retry_after (attempt_window t ~attempt ~prng)

let validate t =
  if t.max_attempts < 1 then Error "max_attempts must be >= 1"
  else if not (t.attempt_timeout > 0.0) then
    Error "attempt_timeout must be positive"
  else if not (t.multiplier >= 1.0) then Error "multiplier must be >= 1"
  else if not (t.jitter >= 0.0 && t.jitter < 1.0) then
    Error "jitter must lie in [0, 1)"
  else Ok t
