(** The tenant registry: per-principal budgets for multi-tenant serving.

    The paper's §2.4 environment triple names the {e Responsible Agent} —
    the principal a whole call chain runs on behalf of. This registry
    keys budgets off exactly that field: a {e tenant} is a named
    principal (its Responsible-Agent LOID) with a weight for fair
    queuing, an optional registry-wide inflight cap, and an optional
    token-bucket rate budget, all in deterministic virtual time.

    The registry only budgets principals that are registered.
    Everything else — infrastructure objects calling each other, tests,
    anonymous clients — maps to a shared fallback tenant with no limits,
    so arming tenancy never inverts RPC dependency order the way a
    blanket budget would. Attribution still works for the fallback lane:
    its sheds and denials are tagged [~unregistered]. *)

type budget = {
  weight : int;  (** Deficit-round-robin quantum (calls per turn), >= 1. *)
  max_inflight : int;
      (** Registry-wide concurrent admitted calls; [0] = unlimited. *)
  rate : float;  (** Token refill rate, calls per virtual second; [0.] = unlimited. *)
  burst : float;  (** Bucket capacity, >= 1 whenever [rate > 0]. *)
}

val default_budget : budget
(** Weight 1, no inflight cap, no rate limit. *)

type tenant
(** A registered principal with live bucket/inflight/attribution state. *)

type t
(** The registry: one per runtime. *)

val create : unit -> t

val register :
  t ->
  name:string ->
  responsible:Legion_naming.Loid.t ->
  ?weight:int ->
  ?max_inflight:int ->
  ?rate:float ->
  ?burst:float ->
  unit ->
  tenant
(** Register (or re-key) a tenant. Defaults: weight 1, no inflight cap,
    no rate limit; [burst] defaults to a quarter-second of [rate] (and
    is clamped to >= 1). Registering an existing [name] under a new
    [responsible] LOID keeps the tenant's counters — one principal may
    present several Responsible Agents. *)

val find : t -> name:string -> tenant option
val of_env : t -> Legion_sec.Env.t -> tenant
(** The tenant whose Responsible Agent is [env.responsible]; the shared
    fallback tenant when unregistered. *)

val fallback_name : string
(** The fallback lane's name, [~unregistered]. *)

val tenants : t -> string list
(** Registered names, registration order (fallback excluded). *)

val name : tenant -> string
val weight : tenant -> int
val budget : tenant -> budget
val inflight : tenant -> int
val admitted : tenant -> int
val shed_count : tenant -> int
val denied_count : tenant -> int

(** {1 Budget mechanics} — called by the runtime's admission path and by
    parts that shed by policy (a class charging [Create]). *)

val try_take : tenant -> now:float -> bool
(** Charge one call against the token bucket. Always true when the
    tenant has no rate budget. *)

val retry_hint : tenant -> now:float -> float
(** Virtual seconds until the bucket next holds a whole token — the
    [retry_after] a quota shed carries. [0.] when unbudgeted. *)

val inflight_ok : tenant -> bool
(** True when the tenant may start another call. *)

val begin_call : tenant -> unit
(** Count an admitted call: bumps inflight and the admitted tally. *)

val end_call : tenant -> unit
val note_shed : tenant -> unit
val note_denied : tenant -> unit
