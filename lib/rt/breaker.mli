(** Per-destination circuit breakers (Closed → Open → HalfOpen).

    The retransmission policy ({!Retry}) protects one call from loss;
    the breaker protects the {e fabric} from pathological destinations.
    Every completed call reports its outcome for its destination host;
    [failure_threshold] consecutive failures trip the circuit and
    subsequent sends fail fast — no message, no timer — until a cooldown
    passes, after which a single probe (HalfOpen) decides whether the
    circuit closes again.

    The fail-fast error mirrors why the circuit opened. A run of
    overload sheds opens a {e saturated} circuit whose rejections are
    [Err.Overloaded] (retryable; the binding is good, give the
    destination [retry_after] to drain — its own hint is honoured as a
    floor on the cooldown). A run of timeouts or transport failures
    opens a {e dead} circuit whose rejections are [Err.Unreachable], a
    delivery failure, so callers rebind toward the object's next
    incarnation instead of burning attempt budgets against a corpse. *)

type config = {
  failure_threshold : int;
      (** Consecutive completed-call failures before the circuit opens. *)
  cooldown : float;
      (** Seconds of virtual time an [Unreachable]-class circuit stays
          open before admitting a probe. *)
  shed_cooldown : float;
      (** Cooldown floor for a saturation-class circuit; the
          destination's last [retry_after] hint raises it. Typically
          much shorter than [cooldown]: a queue drains faster than a
          host reboots. *)
}

val default_config : config
(** 5 consecutive failures, 1 s dead-host cooldown, 0.1 s shed cooldown. *)

val validate : config -> (config, string) result

type t
(** Breaker state for every destination the owning runtime talks to. *)

val create : config -> t

type outcome =
  | Success  (** Any reply at all — even an application error — proves the path. *)
  | Saturated of float  (** An [Overloaded] reply, carrying its [retry_after]. *)
  | Transport_failure  (** Timeout, unreachable: nothing came back. *)

type decision =
  | Allow  (** Circuit closed: send normally. *)
  | Probe
      (** Cooldown elapsed: circuit is now HalfOpen and this send is the
          probe. The caller should emit [BreakerProbe]. *)
  | Reject of { error : Err.t; retry_after : float }
      (** Fail fast without sending; [retry_after] is when the next
          probe could go. *)

val before_send : t -> now:float -> int -> decision
(** Consult the circuit for a destination host before transmitting. *)

type transition = Opened of { failures : int } | Closed_circuit

val record : t -> now:float -> int -> outcome -> transition option
(** Report a completed call's outcome for its destination. A returned
    transition is the state-machine edge the caller should surface as a
    [BreakerOpen]/[BreakerClose] event. *)

val phase_name : t -> int -> string
(** ["closed"], ["open"] or ["half-open"] — for stats output. *)
