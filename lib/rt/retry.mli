(** Retransmission policy for the communication layer.

    §4.1.4 makes rebind-and-retry the answer to {e stale} bindings; this
    policy is the answer to {e lost messages} on a binding that is still
    good. A call governed by a policy is transmitted up to
    [max_attempts] times, each attempt guarded by its own deadline; the
    deadlines grow exponentially ([multiplier]) from [attempt_timeout]
    and are jittered so replicated callers do not retransmit in
    lockstep. The whole exchange still lives under the caller's overall
    deadline ([call_timeout] or the explicit [?timeout]); attempt
    windows are clamped to the budget that remains.

    Retransmissions reuse the call id, so the exchange is at-least-once:
    a target may execute a retransmitted method twice, and the caller
    takes the first reply and drops duplicates. Methods that defer their
    reply past the first attempt window (barrier [Arrive]) must keep
    using an explicit [?timeout], which the runtime treats as a
    single-attempt caller-managed deadline. *)

type t = {
  max_attempts : int;
      (** Total transmissions, counting the first send. [1] disables
          retransmission. *)
  attempt_timeout : float;
      (** Deadline of the first attempt, seconds of virtual time. *)
  multiplier : float;
      (** Growth factor applied to each subsequent attempt's deadline. *)
  jitter : float;
      (** Fractional spread: each window is scaled by a uniform draw
          from [[1 - jitter, 1 + jitter]]. [0.] is deterministic. *)
}

val default : t
(** 5 attempts, 0.3 s first window, doubling, 10% jitter — four
    retransmissions fit inside the default 5 s call budget. *)

val none : t
(** Single attempt: the pre-retry behaviour, also what an explicit
    [?timeout] argument selects. *)

val attempt_window : t -> attempt:int -> prng:Legion_util.Prng.t -> float
(** The jittered deadline for transmission number [attempt] (1-based).
    Draws from [prng] only when [jitter > 0]. *)

val backoff_window : t -> attempt:int -> retry_after:float -> prng:Legion_util.Prng.t -> float
(** Backoff before retrying a destination that answered
    [Err.Overloaded]: the larger of the destination's [retry_after] hint
    and this attempt's {!attempt_window}, so backpressure is honoured
    but the policy's exponential growth still applies under repeated
    shedding. *)

val validate : t -> (t, string) result
(** Reject non-positive attempt counts, windows, or multipliers and
    jitter outside [[0, 1)]. *)
