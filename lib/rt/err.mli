(** Method-invocation errors.

    Errors travel in reply messages and are also synthesised locally by
    the communication layer (timeouts, binding failures). The
    distinction that matters to callers is {!is_delivery_failure}:
    delivery failures mean "the binding may be stale, rebinding might
    help" (paper §4.1.4); the rest are genuine answers from the callee. *)

type t =
  | No_such_object
      (** The destination host has no such object at that address — the
          canonical stale-binding signal. *)
  | No_such_method of string
  | Refused of string
      (** A security or policy rejection (MayI said no, or a Magistrate
          declined a request; §3.8 "requests rather than commands"). *)
  | Bad_args of string
  | Not_bound of string
      (** A definitive "no binding exists / no such object recorded"
          answer from an authority (class object or Binding Agent).
          Unlike [No_such_object] this is not a delivery failure: the
          authoritative name service has spoken, rebinding won't help. *)
  | Timeout
  | Unreachable of string
      (** The communication layer gave up: no route, no binding agent,
          or retries exhausted. *)
  | Stale_epoch
      (** The destination placement belongs to a superseded incarnation
          of the object: it has been reactivated elsewhere with a higher
          epoch, and the runtime fences the old placement rather than
          let it answer. A delivery failure — rebinding finds the
          current incarnation. *)
  | Overloaded of { retry_after : float }
      (** The destination (or the circuit breaker guarding the path to
          it) shed the call to protect itself: admission budgets were
          exhausted. The object is alive and correctly bound, so this is
          {e not} a delivery failure — rebinding will not help — but it
          {e is} retryable: the caller should back off at least
          [retry_after] seconds of virtual time and try again, which the
          comm layer does automatically within the call budget. *)
  | No_quorum of { have : int; need : int; epoch : int }
      (** A fenced replicated write was rejected because only [have] of
          the members in the current membership view (epoch [epoch])
          were reachable, short of the strict majority [need]. Like
          [Overloaded] this is {e not} a delivery failure — the group
          head is alive and correctly bound — but it {e is} retryable:
          once the partition heals (or membership changes) the same
          write can succeed. Nothing was applied anywhere. *)
  | Txn_locked of { holder : string; retry_after : float }
      (** A transaction participant refused [TxnPrepare] because another
          transaction ([holder]) already holds its prepare lock. Not a
          delivery failure — the participant is alive and correctly
          bound — but retryable: the lock clears when the holding
          transaction commits or aborts, so back off at least
          [retry_after] and re-prepare. *)
  | Txn_aborted of { txn : string }
      (** The coordinator aborted the multi-object invocation [txn]: a
          participant voted no (epoch fence, refused prepare, crash) or
          a saga step failed. All prepared participants have been (or
          will be, after recovery) released and compensated; nothing
          remains partially applied. Definitive — not retryable as-is,
          though the caller may submit a fresh transaction. *)
  | Quota_exceeded of { tenant : string; retry_after : float }
      (** The destination shed the call because [tenant]'s own budget
          (inflight or token-bucket rate) was exhausted, not because the
          destination as a whole is overloaded — other tenants are still
          being served. Like [Overloaded] this is {e not} a delivery
          failure but {e is} retryable: back off at least [retry_after]
          seconds and try again, which the comm layer does automatically
          within the call budget. *)
  | Denied of { tenant : string; reason : string }
      (** A binding-path policy rejection: [tenant] is not cleared by the
          target's policy, so the request — including [GetBinding], which
          means an unauthorized tenant cannot even {e resolve} a binding
          — is refused. Terminal: not retryable, not a delivery failure.
          Distinct from [Refused] (a per-method MayI/activation-policy
          answer) in that it carries the judged principal for per-tenant
          attribution. *)
  | Corrupt of string
      (** The payload failed end-to-end integrity verification — a
          checksum mismatch or an undecodable envelope, counted and
          dropped fail-closed by the receiver. Classified as a delivery
          failure: the message never reached the destination object, so
          retransmission (and, at the comm layer, rebind-and-retry)
          is the correct response, exactly as for a lost datagram. *)
  | Internal of string

val is_delivery_failure : t -> bool
(** True for [No_such_object], [Timeout], [Unreachable], [Stale_epoch]
    and [Corrupt] — failures where the call never executed, so
    retrying (after a rebind if needed) is meaningful. [Overloaded] is
    deliberately excluded: the binding is good, the destination just
    wants the caller to slow down. *)

val is_overload : t -> bool
(** True for the shed answers, [Overloaded] and [Quota_exceeded]. *)

val is_retryable : t -> bool
(** True for the typed backpressure answers — [Overloaded], [No_quorum],
    [Txn_locked] and [Quota_exceeded] — where the destination is healthy
    and correctly bound and the same call can succeed later without
    rebinding. *)

val retry_after : t -> float option
(** The backoff hint carried by [Overloaded], [Txn_locked] and
    [Quota_exceeded]; [None] otherwise. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_value : t -> Legion_wire.Value.t
val of_value : Legion_wire.Value.t -> (t, string) result
