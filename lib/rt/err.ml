module Value = Legion_wire.Value

type t =
  | No_such_object
  | No_such_method of string
  | Refused of string
  | Bad_args of string
  | Not_bound of string
  | Timeout
  | Unreachable of string
  | Stale_epoch
  | Overloaded of { retry_after : float }
  | No_quorum of { have : int; need : int; epoch : int }
  | Txn_locked of { holder : string; retry_after : float }
  | Txn_aborted of { txn : string }
  | Quota_exceeded of { tenant : string; retry_after : float }
  | Denied of { tenant : string; reason : string }
  | Corrupt of string
  | Internal of string

let is_delivery_failure = function
  | No_such_object | Timeout | Unreachable _ | Stale_epoch | Corrupt _ -> true
  | No_such_method _ | Refused _ | Bad_args _ | Not_bound _ | Overloaded _
  | No_quorum _ | Txn_locked _ | Txn_aborted _ | Quota_exceeded _ | Denied _
  | Internal _ ->
      false

let is_overload = function
  | Overloaded _ | Quota_exceeded _ -> true
  | _ -> false

let is_retryable = function
  | Overloaded _ | No_quorum _ | Txn_locked _ | Quota_exceeded _ -> true
  | _ -> false

let retry_after = function
  | Overloaded { retry_after }
  | Txn_locked { retry_after; _ }
  | Quota_exceeded { retry_after; _ } ->
      Some retry_after
  | _ -> None

let equal a b =
  match (a, b) with
  | No_such_object, No_such_object | Timeout, Timeout | Stale_epoch, Stale_epoch
    ->
      true
  | No_such_method x, No_such_method y
  | Refused x, Refused y
  | Bad_args x, Bad_args y
  | Not_bound x, Not_bound y
  | Unreachable x, Unreachable y
  | Corrupt x, Corrupt y
  | Internal x, Internal y ->
      String.equal x y
  | Overloaded a, Overloaded b -> Float.equal a.retry_after b.retry_after
  | No_quorum a, No_quorum b ->
      a.have = b.have && a.need = b.need && a.epoch = b.epoch
  | Txn_locked a, Txn_locked b ->
      String.equal a.holder b.holder && Float.equal a.retry_after b.retry_after
  | Txn_aborted a, Txn_aborted b -> String.equal a.txn b.txn
  | Quota_exceeded a, Quota_exceeded b ->
      String.equal a.tenant b.tenant && Float.equal a.retry_after b.retry_after
  | Denied a, Denied b ->
      String.equal a.tenant b.tenant && String.equal a.reason b.reason
  | ( ( No_such_object | No_such_method _ | Refused _ | Bad_args _ | Not_bound _
      | Timeout | Unreachable _ | Stale_epoch | Overloaded _ | No_quorum _
      | Txn_locked _ | Txn_aborted _ | Quota_exceeded _ | Denied _ | Corrupt _
      | Internal _ ),
      _ ) ->
      false

let pp ppf = function
  | No_such_object -> Format.fprintf ppf "no such object"
  | No_such_method m -> Format.fprintf ppf "no such method: %s" m
  | Refused r -> Format.fprintf ppf "refused: %s" r
  | Bad_args r -> Format.fprintf ppf "bad arguments: %s" r
  | Not_bound r -> Format.fprintf ppf "not bound: %s" r
  | Timeout -> Format.fprintf ppf "timeout"
  | Unreachable r -> Format.fprintf ppf "unreachable: %s" r
  | Stale_epoch -> Format.fprintf ppf "stale epoch"
  | Overloaded { retry_after } ->
      Format.fprintf ppf "overloaded (retry after %.3fs)" retry_after
  | No_quorum { have; need; epoch } ->
      Format.fprintf ppf "no quorum (%d/%d at membership epoch %d)" have need
        epoch
  | Txn_locked { holder; retry_after } ->
      Format.fprintf ppf "prepare-locked by txn %s (retry after %.3fs)" holder
        retry_after
  | Txn_aborted { txn } -> Format.fprintf ppf "transaction %s aborted" txn
  | Quota_exceeded { tenant; retry_after } ->
      Format.fprintf ppf "tenant %s over budget (retry after %.3fs)" tenant
        retry_after
  | Denied { tenant; reason } ->
      Format.fprintf ppf "tenant %s denied: %s" tenant reason
  | Corrupt r -> Format.fprintf ppf "corrupt payload: %s" r
  | Internal r -> Format.fprintf ppf "internal error: %s" r

let to_string t = Format.asprintf "%a" pp t

let to_value = function
  | No_such_object -> Value.Record [ ("c", Value.Str "nso") ]
  | No_such_method m -> Value.Record [ ("c", Value.Str "nsm"); ("d", Value.Str m) ]
  | Refused r -> Value.Record [ ("c", Value.Str "ref"); ("d", Value.Str r) ]
  | Bad_args r -> Value.Record [ ("c", Value.Str "arg"); ("d", Value.Str r) ]
  | Not_bound r -> Value.Record [ ("c", Value.Str "nbd"); ("d", Value.Str r) ]
  | Timeout -> Value.Record [ ("c", Value.Str "tmo") ]
  | Unreachable r -> Value.Record [ ("c", Value.Str "unr"); ("d", Value.Str r) ]
  | Stale_epoch -> Value.Record [ ("c", Value.Str "stl") ]
  | Overloaded { retry_after } ->
      Value.Record [ ("c", Value.Str "ovl"); ("ra", Value.Float retry_after) ]
  | No_quorum { have; need; epoch } ->
      Value.Record
        [
          ("c", Value.Str "nqm");
          ("h", Value.Int have);
          ("n", Value.Int need);
          ("e", Value.Int epoch);
        ]
  | Txn_locked { holder; retry_after } ->
      Value.Record
        [
          ("c", Value.Str "tlk");
          ("h", Value.Str holder);
          ("ra", Value.Float retry_after);
        ]
  | Txn_aborted { txn } ->
      Value.Record [ ("c", Value.Str "txa"); ("x", Value.Str txn) ]
  | Quota_exceeded { tenant; retry_after } ->
      Value.Record
        [
          ("c", Value.Str "qex");
          ("tn", Value.Str tenant);
          ("ra", Value.Float retry_after);
        ]
  | Denied { tenant; reason } ->
      Value.Record
        [
          ("c", Value.Str "dny");
          ("tn", Value.Str tenant);
          ("d", Value.Str reason);
        ]
  | Corrupt r -> Value.Record [ ("c", Value.Str "crp"); ("d", Value.Str r) ]
  | Internal r -> Value.Record [ ("c", Value.Str "int"); ("d", Value.Str r) ]

let of_value v =
  let ( let* ) r f = Result.bind r f in
  let err e = Format.asprintf "err: %a" Value.pp_error e in
  let* code = Result.map_error err (Result.bind (Value.field v "c") Value.to_str) in
  let detail () =
    Result.map_error err (Result.bind (Value.field v "d") Value.to_str)
  in
  match code with
  | "nso" -> Ok No_such_object
  | "nsm" ->
      let* d = detail () in
      Ok (No_such_method d)
  | "ref" ->
      let* d = detail () in
      Ok (Refused d)
  | "arg" ->
      let* d = detail () in
      Ok (Bad_args d)
  | "nbd" ->
      let* d = detail () in
      Ok (Not_bound d)
  | "tmo" -> Ok Timeout
  | "stl" -> Ok Stale_epoch
  | "ovl" ->
      let* ra =
        Result.map_error err
          (Result.bind (Value.field v "ra") Value.to_float)
      in
      Ok (Overloaded { retry_after = ra })
  | "nqm" ->
      let int_field name =
        Result.map_error err (Result.bind (Value.field v name) Value.to_int)
      in
      let* have = int_field "h" in
      let* need = int_field "n" in
      (* Pre-fencing encoders omitted the membership epoch; decode it as
         0, the same legacy default the binding codec uses for "epo". *)
      let* epoch =
        match Value.field_opt v "e" with
        | None -> Ok 0
        | Some ev -> Result.map_error err (Value.to_int ev)
      in
      Ok (No_quorum { have; need; epoch })
  | "tlk" ->
      (* Both fields default for forward/backward codec compatibility:
         an older peer's bare lock rejection still decodes. *)
      let* holder =
        match Value.field_opt v "h" with
        | None -> Ok ""
        | Some hv -> Result.map_error err (Value.to_str hv)
      in
      let* ra =
        match Value.field_opt v "ra" with
        | None -> Ok 0.0
        | Some rv -> Result.map_error err (Value.to_float rv)
      in
      Ok (Txn_locked { holder; retry_after = ra })
  | "txa" ->
      let* txn =
        match Value.field_opt v "x" with
        | None -> Ok ""
        | Some xv -> Result.map_error err (Value.to_str xv)
      in
      Ok (Txn_aborted { txn })
  | "qex" ->
      (* Both fields default for forward/backward codec compatibility,
         like "tlk": a bare quota rejection still decodes. *)
      let* tenant =
        match Value.field_opt v "tn" with
        | None -> Ok ""
        | Some tv -> Result.map_error err (Value.to_str tv)
      in
      let* ra =
        match Value.field_opt v "ra" with
        | None -> Ok 0.0
        | Some rv -> Result.map_error err (Value.to_float rv)
      in
      Ok (Quota_exceeded { tenant; retry_after = ra })
  | "dny" ->
      let* tenant =
        match Value.field_opt v "tn" with
        | None -> Ok ""
        | Some tv -> Result.map_error err (Value.to_str tv)
      in
      let* reason =
        match Value.field_opt v "d" with
        | None -> Ok ""
        | Some dv -> Result.map_error err (Value.to_str dv)
      in
      Ok (Denied { tenant; reason })
  | "unr" ->
      let* d = detail () in
      Ok (Unreachable d)
  | "crp" ->
      let* d = detail () in
      Ok (Corrupt d)
  | "int" ->
      let* d = detail () in
      Ok (Internal d)
  | c -> Error (Printf.sprintf "err: unknown code %S" c)
