(** Bounded LRU map — the store behind the runtime's exactly-once
    dedup cache ({!Runtime}): keyed by (caller host, call id), it
    remembers in-progress and completed calls so a retransmitted or
    network-duplicated request replays the recorded reply instead of
    re-executing the method. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** @raise Invalid_argument if [capacity <= 0]. *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Lookup; a hit refreshes the entry's recency. *)

val set : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or update (refreshing recency); inserting past capacity
    evicts the least recently used entry. *)

val remove : ('k, 'v) t -> 'k -> unit
(** Idempotent removal. *)

val length : ('k, 'v) t -> int
val capacity : ('k, 'v) t -> int

val evictions : ('k, 'v) t -> int
(** Entries pushed out by capacity pressure since creation. *)
