(** Binding Agents (paper §3.6, §4.1): the "legion.binding_agent" unit.

    A Binding Agent binds LOIDs to Object Addresses on behalf of other
    objects. This implementation follows the typical procedure of
    §4.1.2:

    + answer from its own cache when possible;
    + for {e class} targets, optionally forward to a parent Binding
      Agent — chains of parents form the k-ary software combining tree
      of §5.2.2 that shields LegionClass;
    + otherwise consult the class responsible for the target: for an
      instance, the class is found by zeroing the Class Specific field
      (§4.1.3); for a class, by asking LegionClass for the recorded
      responsibility pair. Finding the class's own binding recurses the
      same way, terminating at the seeded LegionClass binding — "the
      process can end when the responsible class is LegionClass".

    Methods (§3.6): [GetBinding(loid|binding): binding] (the binding
    form requests a refresh of a stale binding),
    [InvalidateBinding(loid|binding): unit], [AddBinding(binding): unit],
    plus [SetParent(opt<address>): unit], [GetStats(): record], and
    [SetPrice(p: int): unit] — §5.2.1's "charge rate": each served
    lookup accrues [p] to the agent's revenue (visible in GetStats),
    the hook for "each object may select its Binding Agent based on its
    charge rate".

    Binding Agents are deliberately self-reliant: they are spawned with
    no Binding Agent of their own and reach classes by cached/seeded
    addresses only. *)

module Impl := Legion_core.Impl
module Value := Legion_wire.Value
module Binding := Legion_naming.Binding
module Address := Legion_naming.Address

val unit_name : string
(** ["legion.binding_agent"]. *)

val state_value :
  ?capacity:int ->
  ?parent:Address.t ->
  ?legion_class:Binding.t ->
  unit ->
  Value.t
(** Initial unit state: the seeded LegionClass binding (the recursion's
    base case — an agent without one can only answer from its cache or
    forward to a parent), an optional parent agent, and a cache capacity
    ([None] = unbounded). All three round-trip through save/restore
    as-is: an unconfigured agent stays unconfigured. *)

val factory : Impl.factory
val register : unit -> unit
