module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Address = Legion_naming.Address
module Binding = Legion_naming.Binding
module Cache = Legion_naming.Cache
module Env = Legion_sec.Env
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Impl = Legion_core.Impl
module Well_known = Legion_core.Well_known
module C = Legion_core.Convert

let unit_name = "legion.binding_agent"

(* Bound on upward recursion through the class hierarchy; a correct
   hierarchy is a tree rooted at LegionClass, so this only fires on
   corrupted responsibility pairs. *)
let max_resolution_depth = 16

type state = {
  mutable cache : Cache.t;
  mutable capacity : int option;
  mutable parent : Address.t option;
  mutable legion_class : Binding.t option;
  mutable resolved : int;  (* misses resolved through classes *)
  mutable forwarded : int;  (* misses forwarded to the parent agent *)
  (* §5.2.1: "each object may select its Binding Agent based on its
     charge rate" — a price per served lookup and accumulated revenue,
     the hook for a market in binding service. *)
  mutable price : int;
  mutable revenue : int;
}

let state_value ?capacity ?parent ?legion_class () =
  Value.Record
    [
      ("cap", C.vopt Value.of_int capacity);
      ("parent", C.vopt Address.to_value parent);
      ("lc", C.vopt Binding.to_value legion_class);
    ]

let factory (ctx : Runtime.ctx) : Impl.part =
  let rt = ctx.Runtime.rt in
  let self = Runtime.proc_loid ctx.Runtime.self in
  let host = Runtime.proc_host ctx.Runtime.self in
  let emit kind = Runtime.emit rt ~host kind in
  let st =
    {
      cache = Cache.create ();
      capacity = None;
      parent = None;
      legion_class = None;
      resolved = 0;
      forwarded = 0;
      price = 0;
      revenue = 0;
    }
  in
  let now () = Runtime.now rt in

  (* Direct invocation by binding — Binding Agents never use a Binding
     Agent themselves. Resolution performed on behalf of a request
     keeps the requester's Responsible/Security Agents with this agent
     as the Calling Agent (§2.4). The delegated environment [renv] is
     threaded through the whole resolution as a parameter: concurrent
     GetBinding resolutions interleave across these continuations, so a
     shared mutable cell would leak one requester's authority into
     another's upward calls. *)
  let call_binding renv b meth args k =
    Runtime.invoke_binding ctx ~binding:b ~meth ~args ~env:renv k
  in

  (* Obtain a binding for a class object [cls], recursing up the class
     hierarchy. [depth] guards against corrupted pair tables. *)
  let rec class_binding renv cls depth k =
    if depth > max_resolution_depth then
      k (Error (Err.Not_bound "class resolution depth exceeded"))
    else
      match st.legion_class with
      | Some lc when Loid.equal cls (Binding.loid lc) -> k (Ok lc)
      | _ -> (
          match Cache.find st.cache ~now:(now ()) cls with
          | Some b -> k (Ok b)
          | None -> resolve_class renv cls ~stale:None depth k)

  (* A class target: ask LegionClass who is responsible, then ask the
     responsible class for the binding. [stale] (the refresh form) is
     forwarded to the creator so it can drop its own stale table entry. *)
  and resolve_class renv cls ~stale depth k =
    match st.legion_class with
    | None -> k (Error (Err.Not_bound "agent has no LegionClass binding"))
    | Some lc ->
        call_binding renv lc "LocateClass" [ Loid.to_value cls ] (fun r ->
            match r with
            | Error e -> k (Error e)
            | Ok reply -> (
                match C.loid_field reply "creator" with
                | Error msg -> k (Error (Err.Internal msg))
                | Ok creator ->
                    class_binding renv creator (depth + 1) (fun r ->
                        match r with
                        | Error e -> k (Error e)
                        | Ok creator_b ->
                            let arg =
                              match stale with
                              | Some b -> Binding.to_value b
                              | None -> Loid.to_value cls
                            in
                            ask_class renv ~owner:creator ~owner_b:creator_b
                              ~depth:(depth + 1) arg (fun r ->
                                match r with
                                | Error e -> k (Error e)
                                | Ok bv -> (
                                    match Binding.of_value bv with
                                    | Error msg -> k (Error (Err.Internal msg))
                                    | Ok b ->
                                        Cache.add st.cache ~now:(now ()) b;
                                        k (Ok b))))))

  (* GetBinding on a class object whose own binding [owner_b] came from
     this agent's cache. Bindings are invoked directly (no rebind
     machinery up here), so if the placement [owner_b] names is gone —
     the class object crashed and has not been reactivated — the cached
     entry would pin every resolution that routes through it to the
     same dead address forever. On a delivery failure: drop the entry,
     re-resolve the class through the stale-binding refresh path (which
     reaches its creator and can reactivate the crashed class object
     via its Magistrates), and retry the lookup once. *)
  and ask_class renv ~owner ~owner_b ~depth arg k =
    call_binding renv owner_b "GetBinding" [ arg ] (fun r ->
        match r with
        | Error e
          when Err.is_delivery_failure e
               && not (Loid.equal owner Well_known.legion_class) ->
            Cache.invalidate_exact st.cache owner_b;
            resolve_class renv owner ~stale:(Some owner_b) depth (fun r ->
                match r with
                | Error _ ->
                    (* Report the original failure: the refresh is a
                       repair attempt, not the caller's question. *)
                    k (Error e)
                | Ok owner_b' ->
                    call_binding renv owner_b' "GetBinding" [ arg ] k)
        | r -> k r)

  (* An instance target: the responsible class is the LOID with the
     Class Specific field zeroed (§4.1.3). [stale] is passed through to
     the class so it can refresh its own table entry. *)
  and resolve_instance renv target ~stale k =
    let cls = Loid.responsible_class target in
    class_binding renv cls 0 (fun r ->
        match r with
        | Error e -> k (Error e)
        | Ok cls_b ->
            let arg =
              match stale with
              | Some b -> Binding.to_value b
              | None -> Loid.to_value target
            in
            ask_class renv ~owner:cls ~owner_b:cls_b ~depth:0 arg (fun r ->
                match r with
                | Error e -> k (Error e)
                | Ok bv -> (
                    match Binding.of_value bv with
                    | Error msg -> k (Error (Err.Internal msg))
                    | Ok b ->
                        Cache.add st.cache ~now:(now ()) b;
                        k (Ok b))))
  in

  (* Cache miss on a class target: forward up the combining tree when a
     parent is configured (§5.2.2), else resolve through LegionClass. *)
  let resolve_class_target renv target ~stale k =
    match st.parent with
    | Some parent_addr ->
        st.forwarded <- st.forwarded + 1;
        let arg =
          match stale with
          | Some b -> Binding.to_value b
          | None -> Loid.to_value target
        in
        let wildcard = Loid.make ~class_id:0L ~class_specific:0L () in
        Runtime.invoke_address ctx ~address:parent_addr ~dst:wildcard
          ~meth:"GetBinding" ~args:[ arg ] ~env:renv (fun r ->
            match r with
            | Error e -> k (Error e)
            | Ok bv -> (
                match Binding.of_value bv with
                | Error msg -> k (Error (Err.Internal msg))
                | Ok b ->
                    Cache.add st.cache ~now:(now ()) b;
                    k (Ok b)))
    | None ->
        st.resolved <- st.resolved + 1;
        if Loid.equal target Well_known.legion_class then
          match st.legion_class with
          | Some lc -> k (Ok lc)
          | None -> k (Error (Err.Not_bound "agent has no LegionClass binding"))
        else resolve_class renv target ~stale 0 k
  in

  let resolve renv target ~stale k =
    emit
      (Legion_obs.Event.Resolve
         { owner = self; target; stale = stale <> None });
    if Loid.is_class target then resolve_class_target renv target ~stale k
    else begin
      st.resolved <- st.resolved + 1;
      resolve_instance renv target ~stale k
    end
  in

  let get_binding _ctx args env k =
    let renv = Env.delegate env ~calling:self in
    match args with
    | [ arg ] -> (
        let finish r =
          match r with
          | Ok b ->
              st.revenue <- st.revenue + st.price;
              k (Ok (Binding.to_value b))
          | Error e -> k (Error e)
        in
        match C.loid_arg arg with
        | Ok target -> (
            match Cache.find st.cache ~now:(now ()) target with
            | Some b ->
                emit (Legion_obs.Event.Cache_hit { owner = self; target });
                finish (Ok b)
            | None ->
                emit (Legion_obs.Event.Cache_miss { owner = self; target });
                resolve renv target ~stale:None finish)
        | Error _ -> (
            match C.binding_arg arg with
            | Error _ -> Impl.bad_args k "GetBinding expects a loid or a binding"
            | Ok stale -> (
                (* Refresh request: never serve the cache if it still
                   holds the failing binding. [find_refresh] decides in
                   one counted lookup, so each refresh request moves the
                   hit-rate statistics by exactly one. *)
                let target = Binding.loid stale in
                match Cache.find_refresh st.cache ~now:(now ()) ~stale with
                | Some fresh ->
                    emit (Legion_obs.Event.Cache_hit { owner = self; target });
                    finish (Ok fresh)
                | None ->
                    emit (Legion_obs.Event.Cache_miss { owner = self; target });
                    (* Graceful degradation (§5.2.2 spirit): if the
                       upstream resolver — parent agent or class — is
                       shedding load, a stale-but-unexpired binding the
                       caller already holds beats failing the lookup.
                       The caller may find the placement still answers
                       (its failure was transient); if not, it will be
                       back after the resolver drains. The binding goes
                       back in the cache: it remains our best answer
                       until a refresh can actually run. *)
                    resolve renv target ~stale:(Some stale) (fun r ->
                        match r with
                        | Error e
                          when Err.is_overload e
                               && Binding.is_valid ~now:(now ()) stale ->
                            emit
                              (Legion_obs.Event.Stale_serve
                                 { owner = self; target });
                            Cache.add st.cache ~now:(now ()) stale;
                            finish (Ok stale)
                        | r -> finish r))))
    | _ -> Impl.bad_args k "GetBinding expects one argument"
  in

  let invalidate_binding _ctx args _env k =
    match args with
    | [ arg ] -> (
        match C.loid_arg arg with
        | Ok loid ->
            Cache.invalidate st.cache loid;
            k Impl.ok_unit
        | Error _ -> (
            match C.binding_arg arg with
            | Ok b ->
                Cache.invalidate_exact st.cache b;
                k Impl.ok_unit
            | Error _ ->
                Impl.bad_args k "InvalidateBinding expects a loid or a binding"))
    | _ -> Impl.bad_args k "InvalidateBinding expects one argument"
  in

  let add_binding _ctx args _env k =
    match args with
    | [ arg ] -> (
        match C.binding_arg arg with
        | Ok b ->
            Cache.add st.cache ~now:(now ()) b;
            k Impl.ok_unit
        | Error msg -> Impl.bad_args k msg)
    | _ -> Impl.bad_args k "AddBinding expects one binding"
  in

  let set_parent _ctx args _env k =
    match args with
    | [ Value.List [] ] ->
        st.parent <- None;
        k Impl.ok_unit
    | [ Value.List [ a ] ] -> (
        match Address.of_value a with
        | Ok addr ->
            st.parent <- Some addr;
            k Impl.ok_unit
        | Error msg -> Impl.bad_args k msg)
    | _ -> Impl.bad_args k "SetParent expects opt<address>"
  in

  let get_stats _ctx args _env k =
    match args with
    | [] ->
        k
          (Ok
             (Value.Record
                [
                  ("lookups", Value.Int (Cache.lookups st.cache));
                  ("hits", Value.Int (Cache.hits st.cache));
                  ("entries", Value.Int (Cache.length st.cache));
                  ("evictions", Value.Int (Cache.evictions st.cache));
                  ("resolved", Value.Int st.resolved);
                  ("forwarded", Value.Int st.forwarded);
                  ("price", Value.Int st.price);
                  ("revenue", Value.Int st.revenue);
                ]))
    | _ -> Impl.bad_args k "GetStats takes no arguments"
  in

  let set_price _ctx args _env k =
    match args with
    | [ Value.Int p ] ->
        if p < 0 then Impl.bad_args k "SetPrice expects a non-negative int"
        else begin
          st.price <- p;
          k Impl.ok_unit
        end
    | _ -> Impl.bad_args k "SetPrice expects one int"
  in

  let save () =
    (* An unconfigured agent saves an absent LegionClass binding and
       restores as unconfigured — fabricating a placeholder here would
       turn "not bound" into "bound to host 0". *)
    let base =
      state_value ?capacity:st.capacity ?parent:st.parent
        ?legion_class:st.legion_class ()
    in
    match base with
    | Value.Record fields ->
        Value.Record
          (fields @ [ ("price", Value.Int st.price); ("rev", Value.Int st.revenue) ])
    | other -> other
  in
  let restore v =
    let ( let* ) r f = Result.bind r f in
    let* cap = C.opt_int_field v "cap" in
    let* parent = C.opt_address_field v "parent" in
    let* lc = C.opt_field v "lc" Binding.of_value in
    st.capacity <- cap;
    st.cache <- Cache.create ?capacity:cap ();
    st.parent <- parent;
    st.legion_class <- lc;
    (match C.int_field v "price" with Ok p -> st.price <- p | Error _ -> ());
    (match C.int_field v "rev" with Ok r -> st.revenue <- r | Error _ -> ());
    Ok ()
  in
  Impl.part
    ~methods:
      [
        ("GetBinding", get_binding);
        ("InvalidateBinding", invalidate_binding);
        ("AddBinding", add_binding);
        ("SetParent", set_parent);
        ("GetStats", get_stats);
        ("SetPrice", set_price);
      ]
    ~save ~restore unit_name

let register () = Impl.register unit_name factory
