(* The chaos explorer: one schedule = one fresh Legion, three composed
   workloads, a fault program applied at round boundaries, then a
   global invariant audit. Violations are collected, never raised, so
   the shrinker can re-run candidate schedules cheaply. *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Prng = Legion_util.Prng
module Sampler = Legion_util.Sampler
module Impl = Legion_core.Impl
module Well_known = Legion_core.Well_known
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Network = Legion_net.Network
module Persistent = Legion_store.Persistent
module Participant = Legion_txn.Participant
module Coordinator = Legion_txn.Coordinator
module Group_part = Legion_repl.Group_part
module Engine = Legion_sim.Engine
module System = Legion.System
module Api = Legion.Api

(* --- The probe application: a non-idempotent ledger. ---------------

   Every [Apply op d] records the op id, so a re-executed effect is
   visible afterwards as a multiplicity in the [Ledger] reply. Clients
   drive it with [max_rebinds = 0] (rebinds mint fresh call ids — the
   documented at-least-once residue), which makes the runtime's
   exactly-once dedup cache the one and only defence against the
   network's retransmissions and injected duplicates. [Increment] is
   the idempotence-free arithmetic used by transaction steps and group
   fan-out, where the surrounding machinery owns duplicate defence. *)

let ledger_unit = "chaos.ledger"

let ledger_factory (_ctx : Runtime.ctx) : Impl.part =
  let total = ref 0 in
  let ops = ref [] in
  let apply _ctx args _env k =
    match args with
    | [ Value.Str op; Value.Int d ] ->
        total := !total + d;
        ops := op :: !ops;
        k (Ok (Value.Int !total))
    | _ -> Impl.bad_args k "Apply expects (op: str, d: int)"
  in
  let increment _ctx args _env k =
    match args with
    | [ Value.Int d ] ->
        total := !total + d;
        k (Ok (Value.Int !total))
    | _ -> Impl.bad_args k "Increment expects one int"
  in
  let get _ctx args _env k =
    match args with
    | [] -> k (Ok (Value.Int !total))
    | _ -> Impl.bad_args k "Get takes no arguments"
  in
  let ledger _ctx args _env k =
    match args with
    | [] ->
        k (Ok (Value.List (List.rev_map (fun s -> Value.Str s) !ops)))
    | _ -> Impl.bad_args k "Ledger takes no arguments"
  in
  Impl.part
    ~methods:
      [
        ("Apply", apply);
        ("Increment", increment);
        ("Get", get);
        ("Ledger", ledger);
      ]
    ~save:(fun () ->
      Value.Record
        [
          ("total", Value.Int !total);
          ("ops", Value.List (List.rev_map (fun s -> Value.Str s) !ops));
        ])
    ~restore:(fun v ->
      match v with
      | Value.Record fields -> (
          match
            (List.assoc_opt "total" fields, List.assoc_opt "ops" fields)
          with
          | Some (Value.Int t), Some (Value.List l) ->
              total := t;
              ops :=
                List.rev_map
                  (function Value.Str s -> s | _ -> "?")
                  l;
              Ok ()
          | _ -> Error "ledger state must be {total: int, ops: list<str>}")
      | _ -> Error "ledger state must be a record")
    ledger_unit

let register_units () =
  Impl.register ledger_unit ledger_factory;
  Group_part.register ()

(* --- The report. --------------------------------------------------- *)

type report = {
  violations : string list;
  ledger_acked : int;
  ledger_recorded : int;
  double_applies : int;
  dedup_hits : int;
  txns_acked : int;
  txns_committed : int;
  txns_compensated : int;
  group_acked : int;
  duplicated : int;
  reordered : int;
  corrupted : int;
  dropped : int;
  drops_corrupt : int;
  crashes : int;
}

let failed r = r.violations <> []

(* --- Scenario constants. ------------------------------------------- *)

let n_ledgers = 4
let n_participants = 3
let n_members = 3
let ops_per_round = 4
let call_timeout = 0.5
let revive_delay = 6.0

let txn_step dst d =
  Value.Record
    [
      ("dst", Loid.to_value dst);
      ("meth", Value.Str "Increment");
      ("args", Value.List [ Value.Int d ]);
      ("cmeth", Value.Str "Increment");
      ("cargs", Value.List [ Value.Int (-d) ]);
    ]

let host_of rt net loid =
  List.find_opt
    (fun h ->
      List.exists
        (fun p -> Loid.equal (Runtime.proc_loid p) loid)
        (Runtime.procs_on_host rt h))
    (Network.hosts net)

let run ?(dedup = true) (sch : Schedule.t) =
  register_units ();
  let sys =
    System.boot ~seed:sch.Schedule.seed ~trace_capacity:500_000
      ~rt_config:
        {
          Runtime.default_config with
          call_timeout;
          max_rebinds = 4;
          dedup_capacity = (if dedup then Some 4096 else None);
        }
      ~sites:[ ("a", 3); ("b", 3) ]
      ()
  in
  let ctx = System.client sys () in
  let net = System.net sys and rt = System.rt sys in
  let sim = System.sim sys in
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun m -> violations := m :: !violations) fmt in
  (* Classes: plain ledgers, transactional participants (ledger +
     participant units), a coordinator, and a group head. *)
  let ledger_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object
      ~name:"ChaosLedger" ~units:[ ledger_unit ] ()
  in
  let part_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object
      ~name:"ChaosTxnLedger"
      ~units:[ ledger_unit; Participant.unit_name ]
      ()
  in
  let coord_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object
      ~name:"ChaosCoordinator" ~units:[ Coordinator.unit_name ] ()
  in
  let group_cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object
      ~name:"ChaosGroup" ~units:[ Group_part.unit_name ] ()
  in
  let infra =
    List.map (fun s -> List.hd s.System.net_hosts) (System.sites sys)
  in
  let work_hosts =
    List.filter (fun h -> not (List.mem h infra)) (Network.hosts net)
  in
  let ledgers =
    Array.init n_ledgers (fun _ ->
        Api.create_object_exn sys ctx ~cls:ledger_cls ~eager:true ())
  in
  let participants =
    Array.init n_participants (fun _ ->
        Api.create_object_exn sys ctx ~cls:part_cls ~eager:true ())
  in
  (* Keep the coordinator off the infrastructure hosts (same reasoning
     as E20: a crash action must not behead the Jurisdiction). *)
  let coord =
    ref (Api.create_object_exn sys ctx ~cls:coord_cls ~eager:true ())
  in
  let attempts = ref 0 in
  while
    (match host_of rt net !coord with
    | Some h -> List.mem h infra
    | None -> true)
    && !attempts < 16
  do
    incr attempts;
    coord := Api.create_object_exn sys ctx ~cls:coord_cls ~eager:true ()
  done;
  let coord = !coord in
  (match
     Api.call sys ctx ~dst:coord ~meth:"Configure"
       ~args:[ Value.Record [ ("store", Value.Str "a") ] ]
   with
  | Ok _ -> ()
  | Error e -> violate "coordinator Configure failed: %s" (Err.to_string e));
  let members =
    Array.init n_members (fun _ ->
        Api.create_object_exn sys ctx ~cls:ledger_cls ~eager:true ())
  in
  let group = Api.create_object_exn sys ctx ~cls:group_cls ~eager:true () in
  Array.iter
    (fun m ->
      match
        Api.call sys ctx ~dst:group ~meth:"AddMember"
          ~args:[ Loid.to_value m ]
      with
      | Ok _ -> ()
      | Error e -> violate "group AddMember failed: %s" (Err.to_string e))
    members;
  List.iter
    (fun (meth, args) ->
      match Api.call sys ctx ~dst:group ~meth ~args with
      | Ok _ -> ()
      | Error e -> violate "group %s failed: %s" meth (Err.to_string e))
    [
      ("SetMode", [ Value.Str "quorum" ]);
      ("SetFenced", [ Value.Bool true ]);
    ];
  let t0 = System.now sys in
  System.enable_recovery sys ~checkpoint_period:0.5 ~heartbeat_period:0.25
    ~threshold:3
    ~until:(t0 +. float_of_int sch.Schedule.rounds +. 120.0)
    ();
  System.run_for sys 2.0;
  (* Epoch monotonicity watch: every tracked object's binding epoch
     must never decrease. *)
  let tracked =
    Array.concat
      [ ledgers; participants; [| coord |]; members; [| group |] ]
  in
  let epochs = Array.map (fun l -> Runtime.current_epoch rt l) tracked in
  let check_epochs where =
    Array.iteri
      (fun i l ->
        let e = Runtime.current_epoch rt l in
        if e < epochs.(i) then
          violate "epoch of %s went backwards (%d -> %d) at %s"
            (Loid.to_string l) epochs.(i) e where;
        epochs.(i) <- max epochs.(i) e)
      tracked
  in
  let prng = Prng.create ~seed:(Int64.add sch.Schedule.seed 11L) in
  let pick_ledger =
    match sch.Schedule.workload with
    | Schedule.Uniform -> fun () -> Prng.int prng n_ledgers
    | Schedule.Zipf ->
        let z = Sampler.zipf prng ~n:n_ledgers ~s:1.1 in
        fun () -> Sampler.zipf_draw z mod n_ledgers
  in
  let ledger_acked = ref 0 in
  let txns_acked = ref [] and submitted = ref [] in
  let group_acked = ref 0 in
  let crashes = ref 0 in
  let crash_action ~power idx =
    incr crashes;
    let h = List.nth work_hosts (idx mod List.length work_hosts) in
    if Network.host_is_up net h then
      if power then Runtime.power_fail rt h
      else Network.set_host_up net h false;
    ignore
      (Engine.schedule sim ~delay:revive_delay (fun () ->
           Network.set_host_up net h true))
  in
  let apply_action (a : Schedule.action) =
    match a with
    | Schedule.Crash i -> crash_action ~power:false i
    | Schedule.Power_fail i -> crash_action ~power:true i
    | Schedule.Partition cut -> Network.set_partitioned net 0 1 cut
    | Schedule.Drop r -> Network.set_drop_rate net r
    | Schedule.Duplicate r -> Network.set_duplicate_rate net r
    | Schedule.Corrupt r -> Network.set_corrupt_rate net r
    | Schedule.Reorder (rate, window) -> Network.set_reorder net ~rate ~window
    | Schedule.Delay_spike (factor, duration) ->
        Network.set_delay_spike net ~a:0 ~b:1 ~factor
          ~until_:(System.now sys +. duration)
  in
  for round = 1 to sch.Schedule.rounds do
    List.iter
      (fun (s : Schedule.step) -> if s.at = round then apply_action s.action)
      sch.Schedule.steps;
    (* Ledger traffic: non-idempotent ops, never rebound. *)
    for k = 1 to ops_per_round do
      let dst = ledgers.(pick_ledger ()) in
      let op = Printf.sprintf "op-r%d-%d" round k in
      Runtime.invoke ctx ~max_rebinds:0 ~dst ~meth:"Apply"
        ~args:[ Value.Str op; Value.Int 1 ]
        (function Ok _ -> incr ledger_acked | Error _ -> ())
    done;
    (* One transaction per round over a random participant pair. *)
    let i = Prng.int prng n_participants in
    let j = (i + 1 + Prng.int prng (n_participants - 1)) mod n_participants in
    let mode = if Prng.bernoulli prng ~p:0.5 then "2pc" else "saga" in
    let d = 1 + Prng.int prng 5 in
    Runtime.invoke ctx ~dst:coord ~meth:"TxnRun"
      ~args:
        [
          Value.Str mode;
          Value.List
            [ txn_step participants.(i) d; txn_step participants.(j) d ];
        ]
      (function
        | Ok (Value.Str id) ->
            submitted := id :: !submitted;
            txns_acked := id :: !txns_acked
        | Ok _ -> ()
        | Error (Err.Txn_aborted { txn }) -> submitted := txn :: !submitted
        | Error _ -> ());
    (* One fenced quorum write per round. *)
    Runtime.invoke ctx ~dst:group ~meth:"Invoke"
      ~args:[ Value.Str "Increment"; Value.List [ Value.Int 1 ] ]
      (function Ok _ -> incr group_acked | Error _ -> ());
    System.run_for sys 1.0;
    check_epochs (Printf.sprintf "round %d" round)
  done;
  (* Heal everything and drain: revivals, reactivations, TxnResume. *)
  List.iter (fun h -> Network.set_host_up net h true) (Network.hosts net);
  Network.set_partitioned net 0 1 false;
  Network.set_drop_rate net 0.0;
  Network.set_duplicate_rate net 0.0;
  Network.set_corrupt_rate net 0.0;
  Network.set_reorder net ~rate:0.0 ~window:0.0;
  Network.clear_delay_spikes net;
  System.run_for sys 20.0;
  (* Poke the coordinator so any in-doubt transaction whose redrive
     chain died with a deactivated incarnation finishes or rolls back
     before the atomicity audit samples the marks. *)
  ignore (Api.call sys ctx ~dst:coord ~meth:"TxnResume" ~args:[]);
  System.run_for sys 10.0;
  (* Anti-entropy after the storm, then quiesce. Keep sweeping while
     any member is still divergent — a push can fail transiently right
     after heal, and the protocol is specified as repeated sweeps
     draining the divergence count to zero. *)
  let rec reconcile n =
    match Api.call sys ctx ~dst:group ~meth:"Reconcile" ~args:[] with
    | Ok (Value.Record fields)
      when n > 1
           && (match List.assoc_opt "divergent" fields with
              | Some (Value.Int d) -> d > 0
              | _ -> false) ->
        System.run_for sys 2.0;
        reconcile (n - 1)
    | Ok _ -> None
    | Error _ when n > 1 ->
        System.run_for sys 5.0;
        reconcile (n - 1)
    | Error e -> Some (Err.to_string e)
  in
  (match reconcile 6 with
  | None -> ()
  | Some e -> violate "group Reconcile failed after heal: %s" e);
  System.run_for sys 5.0;
  System.run sys;
  check_epochs "quiescence";
  (* --- Audit 1: no double-applied effect, and post-heal liveness of
     every ledger. Op ids are globally unique and never rebound, so any
     multiplicity above one is a duplicated execution. *)
  let op_counts = Hashtbl.create 256 in
  Array.iteri
    (fun i l ->
      (match Api.call sys ctx ~dst:l ~meth:"Get" ~args:[] with
      | Ok _ -> ()
      | Error e ->
          violate "ledger %d dead after heal: %s" i (Err.to_string e));
      match Api.call sys ctx ~dst:l ~meth:"Ledger" ~args:[] with
      | Ok (Value.List ops) ->
          List.iter
            (function
              | Value.Str op ->
                  Hashtbl.replace op_counts op
                    (1 + Option.value ~default:0 (Hashtbl.find_opt op_counts op))
              | _ -> violate "ledger %d returned a non-string op" i)
            ops
      | Ok v ->
          violate "ledger %d odd Ledger reply %s" i (Value.to_string v)
      | Error e ->
          violate "ledger %d Ledger failed: %s" i (Err.to_string e))
    ledgers;
  let recorded = Hashtbl.length op_counts in
  let doubles =
    Hashtbl.fold (fun op n acc -> if n > 1 then (op, n) :: acc else acc)
      op_counts []
    |> List.sort compare
  in
  List.iter (fun (op, n) -> violate "op %s applied %d times" op n) doubles;
  (* --- Audit 2: transactional atomicity from the store histories
     (the E20 gates, reported instead of raised). *)
  let store = (System.site sys 0).System.storage in
  let marks_of id =
    List.concat_map
      (fun loid ->
        List.filter_map
          (fun (e : Persistent.History.entry) ->
            if e.txn = Some id then Some e.mark else None)
          (Persistent.history store ~loid))
      (Persistent.history_loids store)
  in
  let all_ids =
    List.sort_uniq String.compare
      (!submitted
      @ List.concat_map
          (fun loid ->
            List.filter_map
              (fun (e : Persistent.History.entry) -> e.txn)
              (Persistent.history store ~loid))
          (Persistent.history_loids store))
  in
  let committed = ref 0 and compensated = ref 0 in
  List.iter
    (fun id ->
      let marks = marks_of id in
      if List.exists (fun m -> m = Persistent.Staged) marks then
        violate "txn %s left staged entries" id;
      let c = List.exists (fun m -> m = Persistent.Committed) marks in
      let x = List.exists (fun m -> m = Persistent.Compensated) marks in
      if c && x then violate "txn %s has mixed commit/compensate marks" id;
      if c then incr committed;
      if x then incr compensated)
    all_ids;
  List.iter
    (fun id ->
      if List.exists (fun m -> m = Persistent.Compensated) (marks_of id) then
        violate "acknowledged commit %s recorded as compensated" id)
    (List.sort_uniq String.compare !txns_acked);
  (* --- Audit 3: no orphaned prepare locks, nothing in doubt. *)
  Array.iteri
    (fun i p ->
      match Api.call sys ctx ~dst:p ~meth:"TxnHeld" ~args:[] with
      | Ok (Value.List []) -> ()
      | Ok (Value.List (Value.Str t :: _)) ->
          violate "participant %d holds an orphaned lock (%s)" i t
      | Ok v -> violate "participant %d odd TxnHeld reply %s" i (Value.to_string v)
      | Error e ->
          violate "participant %d dead after heal: %s" i (Err.to_string e))
    participants;
  (match Api.call sys ctx ~dst:coord ~meth:"TxnStats" ~args:[] with
  | Ok (Value.Record fields) -> (
      match List.assoc_opt "indoubt" fields with
      | Some (Value.Int 0) -> ()
      | Some (Value.Int n) -> violate "%d transactions still in doubt" n
      | _ -> violate "TxnStats missing indoubt")
  | Ok v -> violate "odd TxnStats reply %s" (Value.to_string v)
  | Error e -> violate "coordinator dead after heal: %s" (Err.to_string e));
  (* --- Audit 4: no split-brain drift on the fenced group. *)
  let member_values =
    Array.to_list
      (Array.mapi
         (fun i m ->
           match Api.call sys ctx ~dst:m ~meth:"Get" ~args:[] with
           | Ok (Value.Int v) -> Some v
           | Ok v ->
               violate "member %d odd Get reply %s" i (Value.to_string v);
               None
           | Error e ->
               violate "member %d dead after heal: %s" i (Err.to_string e);
               None)
         members)
  in
  (match List.filter_map Fun.id member_values with
  | [] -> ()
  | v0 :: vs ->
      if List.exists (fun v -> v <> v0) vs then
        violate "group members diverged after Reconcile: %s"
          (String.concat ","
             (List.map
                (function Some v -> string_of_int v | None -> "?")
                member_values)));
  (* --- Audit 5: the group head itself answers. *)
  (match Api.call sys ctx ~dst:group ~meth:"GetEpoch" ~args:[] with
  | Ok _ -> ()
  | Error e -> violate "group head dead after heal: %s" (Err.to_string e));
  let causes = Network.drop_causes net in
  {
    violations = List.rev !violations;
    ledger_acked = !ledger_acked;
    ledger_recorded = recorded;
    double_applies = List.length doubles;
    dedup_hits = Runtime.dedup_hits rt;
    txns_acked = List.length (List.sort_uniq String.compare !txns_acked);
    txns_committed = !committed;
    txns_compensated = !compensated;
    group_acked = !group_acked;
    duplicated = Network.messages_duplicated net;
    reordered = Network.messages_reordered net;
    corrupted = Network.messages_corrupted net;
    dropped = Network.messages_dropped net;
    drops_corrupt = causes.Network.by_corruption;
    crashes = !crashes;
  }

(* --- Shrinking: greedy single-step delta debugging. ---------------- *)

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

let shrink ?dedup (sch : Schedule.t) (rep : report) =
  if not (failed rep) then (sch, rep)
  else begin
    let current = ref sch and currep = ref rep in
    let progress = ref true in
    while !progress do
      progress := false;
      let steps = !current.Schedule.steps in
      let n = List.length steps in
      let i = ref 0 in
      while (not !progress) && !i < n do
        let cand = { !current with Schedule.steps = drop_nth steps !i } in
        let r = run ?dedup cand in
        if failed r then begin
          current := cand;
          currep := r;
          progress := true
        end
        else incr i
      done
    done;
    (!current, !currep)
  end

(* --- Reporting. ----------------------------------------------------- *)

let report_json (sch : Schedule.t) (r : report) =
  Printf.sprintf
    "{\"seed\":%Ld,\"workload\":%S,\"rounds\":%d,\"steps\":%d,\
     \"ledger_acked\":%d,\"ledger_recorded\":%d,\"double_applies\":%d,\
     \"dedup_hits\":%d,\"txns_acked\":%d,\"txns_committed\":%d,\
     \"txns_compensated\":%d,\"group_acked\":%d,\"duplicated\":%d,\
     \"reordered\":%d,\"corrupted\":%d,\"dropped\":%d,\"drops_corrupt\":%d,\
     \"crashes\":%d,\"violations\":[%s]}"
    sch.Schedule.seed
    (match sch.Schedule.workload with
    | Schedule.Uniform -> "uniform"
    | Schedule.Zipf -> "zipf")
    sch.Schedule.rounds
    (List.length sch.Schedule.steps)
    r.ledger_acked r.ledger_recorded r.double_applies r.dedup_hits
    r.txns_acked r.txns_committed r.txns_compensated r.group_acked
    r.duplicated r.reordered r.corrupted r.dropped r.drops_corrupt r.crashes
    (String.concat "," (List.map (Printf.sprintf "%S") r.violations))
