(* Seeded fault programs over the adversary vocabulary, with a small
   line-oriented text format so minimized failing schedules replay. *)

module Prng = Legion_util.Prng

type action =
  | Crash of int
  | Power_fail of int
  | Partition of bool
  | Drop of float
  | Duplicate of float
  | Corrupt of float
  | Reorder of float * float
  | Delay_spike of float * float

type step = { at : int; action : action }
type workload = Uniform | Zipf

type t = {
  seed : int64;
  workload : workload;
  rounds : int;
  steps : step list;
}

let sort_steps steps = List.stable_sort (fun a b -> compare a.at b.at) steps

let generate ?(rounds = 16) ~seed () =
  let prng = Prng.create ~seed in
  let workload = if Prng.bernoulli prng ~p:0.5 then Zipf else Uniform in
  let steps = ref [] in
  let add at action = steps := { at; action } :: !steps in
  (* Faults land in the middle rounds so every schedule has a warm-up
     and a tail of clean rounds before the final heal-and-drain. *)
  let mid () = 2 + Prng.int prng (max 1 (rounds - 6)) in
  let n = 3 + Prng.int prng 6 in
  for _ = 1 to n do
    let r = mid () in
    match Prng.int prng 8 with
    | 0 -> add r (Crash (Prng.int prng 64))
    | 1 -> add r (Power_fail (Prng.int prng 64))
    | 2 ->
        add r (Partition true);
        add (r + 2 + Prng.int prng 4) (Partition false)
    | 3 ->
        (* A loss ramp: up, then back down a few rounds later. *)
        add r (Drop (0.05 +. Prng.float prng 0.2));
        add (r + 2 + Prng.int prng 5) (Drop 0.0)
    | 4 -> add r (Duplicate (0.1 +. Prng.float prng 0.3))
    | 5 -> add r (Corrupt (0.02 +. Prng.float prng 0.08))
    | 6 ->
        add r
          (Reorder (0.2 +. Prng.float prng 0.4, 0.005 +. Prng.float prng 0.03))
    | _ ->
        add r (Delay_spike (2.0 +. Prng.float prng 6.0, 0.5 +. Prng.float prng 2.0))
  done;
  { seed; workload; rounds; steps = sort_steps (List.rev !steps) }

(* --- Text format. ------------------------------------------------- *)

let fl = Printf.sprintf "%.17g"

let action_to_string = function
  | Crash i -> Printf.sprintf "crash %d" i
  | Power_fail i -> Printf.sprintf "power %d" i
  | Partition true -> "partition cut"
  | Partition false -> "partition heal"
  | Drop r -> "drop " ^ fl r
  | Duplicate r -> "dup " ^ fl r
  | Corrupt r -> "corrupt " ^ fl r
  | Reorder (r, w) -> Printf.sprintf "reorder %s %s" (fl r) (fl w)
  | Delay_spike (f, d) -> Printf.sprintf "spike %s %s" (fl f) (fl d)

let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b "# legion chaos schedule\n";
  Buffer.add_string b (Printf.sprintf "seed %Ld\n" t.seed);
  Buffer.add_string b
    (Printf.sprintf "workload %s\n"
       (match t.workload with Uniform -> "uniform" | Zipf -> "zipf"));
  Buffer.add_string b (Printf.sprintf "rounds %d\n" t.rounds);
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "step %d %s\n" s.at (action_to_string s.action)))
    t.steps;
  Buffer.contents b

let parse_float what s =
  match float_of_string_opt s with
  | Some f when Float.is_nan f -> Error (what ^ ": NaN")
  | Some f -> Ok f
  | None -> Error (what ^ ": bad float " ^ s)

let parse_rate what s =
  match parse_float what s with
  | Ok f when f < 0.0 || f > 1.0 ->
      Error (Printf.sprintf "%s: rate %s outside [0,1]" what s)
  | r -> r

let parse_int what s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (what ^ ": bad int " ^ s)

let ( let* ) = Result.bind

let parse_action = function
  | [ "crash"; i ] ->
      let* i = parse_int "crash" i in
      Ok (Crash i)
  | [ "power"; i ] ->
      let* i = parse_int "power" i in
      Ok (Power_fail i)
  | [ "partition"; "cut" ] -> Ok (Partition true)
  | [ "partition"; "heal" ] -> Ok (Partition false)
  | [ "drop"; r ] ->
      let* r = parse_rate "drop" r in
      Ok (Drop r)
  | [ "dup"; r ] ->
      let* r = parse_rate "dup" r in
      Ok (Duplicate r)
  | [ "corrupt"; r ] ->
      let* r = parse_rate "corrupt" r in
      Ok (Corrupt r)
  | [ "reorder"; r; w ] ->
      let* r = parse_rate "reorder" r in
      let* w = parse_float "reorder window" w in
      if w < 0.0 then Error "reorder window: negative" else Ok (Reorder (r, w))
  | [ "spike"; f; d ] ->
      let* f = parse_float "spike factor" f in
      let* d = parse_float "spike duration" d in
      if f < 1.0 then Error "spike factor: below 1"
      else if d < 0.0 then Error "spike duration: negative"
      else Ok (Delay_spike (f, d))
  | toks -> Error ("unknown action: " ^ String.concat " " toks)

let of_string text =
  let seed = ref None and workload = ref None and rounds = ref None in
  let steps = ref [] in
  let lines = String.split_on_char '\n' text in
  let rec go lineno = function
    | [] -> Ok ()
    | line :: rest -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go (lineno + 1) rest
        else
          let err m = Error (Printf.sprintf "line %d: %s" lineno m) in
          match
            String.split_on_char ' ' line
            |> List.filter (fun s -> s <> "")
          with
          | [ "seed"; s ] -> (
              match Int64.of_string_opt s with
              | Some v ->
                  seed := Some v;
                  go (lineno + 1) rest
              | None -> err ("bad seed " ^ s))
          | [ "workload"; "uniform" ] ->
              workload := Some Uniform;
              go (lineno + 1) rest
          | [ "workload"; "zipf" ] ->
              workload := Some Zipf;
              go (lineno + 1) rest
          | [ "rounds"; s ] -> (
              match int_of_string_opt s with
              | Some v when v > 0 ->
                  rounds := Some v;
                  go (lineno + 1) rest
              | _ -> err ("bad rounds " ^ s))
          | "step" :: at :: action -> (
              match int_of_string_opt at with
              | Some at when at >= 1 -> (
                  match parse_action action with
                  | Ok a ->
                      steps := { at; action = a } :: !steps;
                      go (lineno + 1) rest
                  | Error m -> err m)
              | _ -> err ("bad step round " ^ at))
          | _ -> err ("unparseable: " ^ line))
  in
  let* () = go 1 lines in
  match (!seed, !rounds) with
  | None, _ -> Error "missing seed line"
  | _, None -> Error "missing rounds line"
  | Some seed, Some rounds ->
      Ok
        {
          seed;
          workload = Option.value !workload ~default:Uniform;
          rounds;
          steps = sort_steps (List.rev !steps);
        }

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal a b =
  Int64.equal a.seed b.seed && a.workload = b.workload && a.rounds = b.rounds
  && a.steps = b.steps
