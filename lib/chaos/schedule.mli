(** Chaos schedules: seeded fault programs over the adversary vocabulary.

    A schedule is a deterministic program of fault actions applied at
    round boundaries of an {!Explorer} scenario: host crashes and power
    failures (with automatic revival), site partitions, uniform-loss
    ramps, duplication, reordering, payload corruption, and wide-area
    delay spikes. Schedules are values — generated from a seed,
    serialized to a small line-oriented text format, and parsed back —
    so a failing schedule minimized by the shrinker is a replayable
    artifact ([legion-sim chaos --replay FILE]). *)

type action =
  | Crash of int
      (** Take a work host down cleanly (index into the scenario's
          non-infrastructure hosts, modulo their count); it revives
          automatically 6 s later. *)
  | Power_fail of int
      (** Like [Crash], but through {!Legion_rt.Runtime.power_fail}:
          the host's processes die abruptly, exercising the zombie /
          stale-epoch fencing paths on revival. *)
  | Partition of bool  (** Cut ([true]) or heal the inter-site link. *)
  | Drop of float  (** Set the uniform loss rate (a ramp when paired). *)
  | Duplicate of float  (** Set the duplication rate. *)
  | Corrupt of float  (** Set the payload-corruption rate. *)
  | Reorder of float * float  (** Set (rate, window) reordering. *)
  | Delay_spike of float * float
      (** (factor, duration): multiply inter-site latency by [factor]
          for [duration] seconds of virtual time. *)

type step = { at : int; action : action }
(** [action] fires at the start of round [at] (1-based). *)

type workload = Uniform | Zipf
(** How the scenario's ledger traffic picks targets: uniformly, or
    Zipf-skewed (s = 1.1) so one object soaks most duplicates. *)

type t = {
  seed : int64;  (** Seeds the boot PRNG and the workload PRNG. *)
  workload : workload;
  rounds : int;
  steps : step list;  (** Sorted by [at], stable. *)
}

val generate : ?rounds:int -> seed:int64 -> unit -> t
(** Draw a schedule from the seed: 3–8 primary faults over the full
    vocabulary, placed in the middle rounds, with partitions paired
    with heals and loss ramps paired with resets. Deterministic per
    seed. Default [rounds] is 16. *)

val to_string : t -> string
(** Render the line-oriented replay format ([seed]/[workload]/[rounds]/
    [step] lines; [#] comments). Floats are printed to full precision
    so [of_string (to_string t)] round-trips exactly. *)

val of_string : string -> (t, string) result
(** Parse the replay format. Unknown directives, malformed numbers,
    out-of-range rates and missing headers are reported, never raised. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
