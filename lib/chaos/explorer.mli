(** The chaos explorer: run seeded fault schedules against a composed
    workload and audit global invariants (E22).

    Every run boots a fresh two-site Legion, populates it with three
    concurrent workloads — non-idempotent {e ledger} objects (each
    [Apply] records its op id, so a double-applied effect is visible as
    a multiplicity), an E20-style transaction mix (2PC + saga over
    participant pairs), and an E17-style fenced quorum group — then
    executes the {!Schedule} round by round, heals everything, drains,
    and audits:

    - no double-applied effect: every op id appears at most once in
      every ledger (callers never rebind, so the network's at-least-once
      retransmission plus injected duplicates are the only duplicate
      sources — exactly what the runtime's dedup cache must absorb);
    - transactional atomicity: no staged residue, no mixed
      commit/compensate marks, no acknowledged commit later
      compensated (the E20 gates);
    - no orphaned prepare locks ([TxnHeld] empty everywhere) and no
      in-doubt transactions ([TxnStats]);
    - no split-brain drift: after the post-heal [Reconcile], every
      fenced group member holds the same value;
    - epoch monotonicity: no tracked object's binding epoch ever
      decreases;
    - post-heal liveness: every object answers a final probe.

    Violations are collected as strings (never raised) so the
    {!shrink}er can minimize a failing schedule by re-running it. *)

type report = {
  violations : string list;  (** Empty iff every invariant held. *)
  ledger_acked : int;  (** Ledger ops acknowledged to the client. *)
  ledger_recorded : int;  (** Distinct op ids found in the ledgers. *)
  double_applies : int;  (** Op ids recorded more than once. *)
  dedup_hits : int;  (** Runtime dedup-cache absorptions. *)
  txns_acked : int;
  txns_committed : int;
  txns_compensated : int;
  group_acked : int;  (** Fenced group writes acknowledged. *)
  duplicated : int;  (** Network-injected duplicate copies. *)
  reordered : int;
  corrupted : int;
  dropped : int;
  drops_corrupt : int;  (** Fail-closed integrity drops. *)
  crashes : int;  (** Crash + power-fail actions applied. *)
}

val run : ?dedup:bool -> Schedule.t -> report
(** Execute one schedule. [dedup] (default [true]) controls the
    runtime's exactly-once cache; with it off, a duplication-heavy
    schedule is expected to produce [double_applies > 0] — the
    detection half of the E22 gate. Deterministic per schedule. *)

val failed : report -> bool
(** [violations <> []]. *)

val shrink : ?dedup:bool -> Schedule.t -> report -> Schedule.t * report
(** Greedy delta-debugging: repeatedly drop single steps from a failing
    schedule while {!run} keeps failing, returning a locally minimal
    schedule and its report. A schedule whose report passes is returned
    unchanged. *)

val report_json : Schedule.t -> report -> string
(** One deterministic JSON row (schedule seed, workload, fault counts,
    audit counters, violations) — the byte-determinism unit for E22. *)
