(** Checksummed wire envelope: end-to-end integrity over {!Codec}.

    The network model normally carries {!Value.t} payloads unserialized
    (zero-copy through the simulator), but a payload selected for the
    corruption fault travels as real bytes: {!seal} prefixes the
    {!Codec} encoding with a CRC-32 of the body, the adversary mutates
    bytes, and {!unseal} at the receiver rejects anything whose
    checksum or body no longer parses — a counted, fail-closed drop,
    never an exception. The ROADMAP's real-UDP backend gives every
    message this framing. *)

val crc32 : string -> int32
(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of the whole string. *)

val header_bytes : int
(** Size of the checksum header {!seal} prepends (4). *)

val seal : Value.t -> string
(** [seal v] is the 4-byte big-endian CRC-32 of [Codec.encode v]
    followed by that encoding. *)

val unseal : string -> (Value.t, string) result
(** Verify the header checksum against the body, then decode. Total:
    any truncation, checksum mismatch, or malformed body yields
    [Error] with a description — never raises. *)
