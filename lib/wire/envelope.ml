(* End-to-end integrity for wire payloads: a CRC-32 (IEEE 802.3,
   reflected polynomial 0xEDB88320) over the encoded body, carried in a
   4-byte big-endian header. Pure OCaml, table-driven — no external
   dependency, deterministic across platforms.

   The checksum is an integrity check against the simulated corruption
   fault (flipped bytes in flight), not an authenticity mechanism: an
   adversary who can write the header can of course forge it. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let header_bytes = 4

let seal v =
  let body = Codec.encode v in
  let crc = crc32 body in
  let b = Buffer.create (header_bytes + String.length body) in
  let byte shift =
    Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical crc shift) 0xFFl))
  in
  Buffer.add_char b (byte 24);
  Buffer.add_char b (byte 16);
  Buffer.add_char b (byte 8);
  Buffer.add_char b (byte 0);
  Buffer.add_string b body;
  Buffer.contents b

let unseal s =
  if String.length s < header_bytes then
    Error (Printf.sprintf "envelope: %d byte(s), need a %d-byte checksum header"
             (String.length s) header_bytes)
  else
    let declared =
      let b i = Int32.of_int (Char.code s.[i]) in
      Int32.logor
        (Int32.shift_left (b 0) 24)
        (Int32.logor
           (Int32.shift_left (b 1) 16)
           (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))
    in
    let body = String.sub s header_bytes (String.length s - header_bytes) in
    let actual = crc32 body in
    if not (Int32.equal declared actual) then
      Error
        (Printf.sprintf "envelope: checksum mismatch (declared %08lx, computed %08lx)"
           declared actual)
    else
      match Codec.decode body with
      | Ok v -> Ok v
      | Error e -> Error ("envelope: body " ^ e)
