module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Address = Legion_naming.Address
module Binding = Legion_naming.Binding
module Interface = Legion_idl.Interface
module Parser = Legion_idl.Parser
module Env = Legion_sec.Env
module Policy = Legion_sec.Policy
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module C = Convert

let unit_name = Well_known.unit_class

type flags = { abstract : bool; private_ : bool; fixed : bool }

let default_flags = { abstract = false; private_ = false; fixed = false }

type row = {
  mutable address : Address.t option;
  mutable magistrates : Loid.t list;  (* Current Magistrate List *)
  mutable sched : Loid.t option;  (* Scheduling Agent *)
  mutable candidates : Loid.t list;  (* Candidate Magistrate List *)
  mutable is_subclass : bool;
}

type state = {
  mutable class_id : int64;
  mutable next_spec : int64;
  mutable interface : Interface.t;
  mutable instance_units : string list;
  mutable instance_kind : string;
  mutable instance_cache_capacity : int option;
  mutable superclass : Loid.t option;
  mutable bases : Loid.t list;
  mutable flags : flags;
  mutable default_magistrates : Loid.t list;
  mutable default_scheduler : Loid.t option;
  mutable rr : int;  (* round-robin cursor over default magistrates *)
  mutable clones : Loid.t list;
      (* §5.2.2 autonomic cloning: while non-empty, new Create requests
         are "passed to the cloned object" — answered with a redirect
         into this ring instead of served here *)
  mutable clone_rr : int;  (* round-robin cursor over clones *)
  mutable binding_policy : Policy.t;
      (* §2.4 enforced on the binding path: judges every Create and
         GetBinding before it is served, so an uncleared principal never
         receives a binding from this class *)
  mutable table : (Loid.t * row) list;  (* Fig. 16, newest first *)
  (* Side index over [table]: GetBinding is the system's hottest read
     path, and the list (kept for its serialized "newest first" order)
     must not be scanned per resolution at 10^5 instances. *)
  mutable row_idx : row Loid.Table.t;
}

(* ------------------------------------------------------------------ *)
(* State (de)serialization — class objects migrate and deactivate like
   any other object, so the whole logical table must round-trip.       *)

let row_to_value (loid, r) =
  Value.Record
    [
      ("loid", Loid.to_value loid);
      ("addr", C.vopt Address.to_value r.address);
      ("mags", C.vloids r.magistrates);
      ("sched", C.vopt Loid.to_value r.sched);
      ("cands", C.vloids r.candidates);
      ("sub", Value.Bool r.is_subclass);
    ]

let ( let* ) r f = Result.bind r f

let row_of_value v =
  let* loid = C.loid_field v "loid" in
  let* address = C.opt_address_field v "addr" in
  let* magistrates = C.loid_list_field v "mags" in
  let* sched = C.opt_loid_field v "sched" in
  let* candidates = C.loid_list_field v "cands" in
  let* is_subclass = C.bool_field v "sub" in
  Ok (loid, { address; magistrates; sched; candidates; is_subclass })

let state_to_value st =
  Value.Record
    [
      ("cid", Value.I64 st.class_id);
      ("next", Value.I64 st.next_spec);
      ("iface", Interface.to_value st.interface);
      ("units", C.vstrs st.instance_units);
      ("kind", Value.Str st.instance_kind);
      ("cap", C.vopt Value.of_int st.instance_cache_capacity);
      ("super", C.vopt Loid.to_value st.superclass);
      ("bases", C.vloids st.bases);
      ("abs", Value.Bool st.flags.abstract);
      ("priv", Value.Bool st.flags.private_);
      ("fix", Value.Bool st.flags.fixed);
      ("dmags", C.vloids st.default_magistrates);
      ("dsched", C.vopt Loid.to_value st.default_scheduler);
      ("rr", Value.Int st.rr);
      ("clones", C.vloids st.clones);
      ("crr", Value.Int st.clone_rr);
      ("bpol", Policy.to_value st.binding_policy);
      ("table", Value.List (List.map row_to_value st.table));
    ]

let state_of_value st v =
  let* class_id = C.i64_field v "cid" in
  let* next_spec = C.i64_field v "next" in
  let* iface_v = C.field v "iface" in
  let* interface = Interface.of_value iface_v in
  let* instance_units = C.str_list_field v "units" in
  let* instance_kind = C.str_field v "kind" in
  let* cap = C.opt_int_field v "cap" in
  let* superclass = C.opt_loid_field v "super" in
  let* bases = C.loid_list_field v "bases" in
  let* abstract = C.bool_field v "abs" in
  let* private_ = C.bool_field v "priv" in
  let* fixed = C.bool_field v "fix" in
  let* dmags = C.loid_list_field v "dmags" in
  let* dsched = C.opt_loid_field v "dsched" in
  let* rr = C.int_field v "rr" in
  (* Absent in states serialized before autonomic cloning existed. *)
  let* clones = C.loid_list_field ~default:[] v "clones" in
  let clone_rr = match C.int_field v "crr" with Ok n -> n | Error _ -> 0 in
  (* Absent in states serialized before binding-path enforcement: those
     classes answered everyone, so the legacy default is Allow_all. *)
  let* binding_policy =
    match C.field v "bpol" with
    | Error _ -> Ok Policy.Allow_all
    | Ok pv -> Policy.of_value pv
  in
  let* table_v = C.field v "table" in
  let* table =
    match table_v with
    | Value.List rows ->
        let rec loop acc = function
          | [] -> Ok (List.rev acc)
          | rv :: rest ->
              let* row = row_of_value rv in
              loop (row :: acc) rest
        in
        loop [] rows
    | _ -> Error "class state: table not a list"
  in
  st.class_id <- class_id;
  st.next_spec <- next_spec;
  st.interface <- interface;
  st.instance_units <- instance_units;
  st.instance_kind <- instance_kind;
  st.instance_cache_capacity <- cap;
  st.superclass <- superclass;
  st.bases <- bases;
  st.flags <- { abstract; private_; fixed };
  st.default_magistrates <- dmags;
  st.default_scheduler <- dsched;
  st.rr <- rr;
  st.clones <- clones;
  st.clone_rr <- clone_rr;
  st.binding_policy <- binding_policy;
  st.table <- table;
  let idx = Loid.Table.create () in
  List.iter (fun (l, r) -> Loid.Table.set idx l r) table;
  st.row_idx <- idx;
  Ok ()

let init_state ?interface ?(instance_units = [ Well_known.unit_object ])
    ?(instance_kind = Well_known.kind_app) ?instance_cache_capacity ?superclass
    ?(flags = default_flags) ?(default_magistrates = []) ?default_scheduler
    ?(binding_policy = Policy.Allow_all) ~class_id () =
  let interface =
    match interface with
    | Some i -> i
    | None -> Interface.empty (Printf.sprintf "class%Ld" class_id)
  in
  let st =
    {
      class_id;
      next_spec = 1L;
      interface;
      instance_units;
      instance_kind;
      instance_cache_capacity;
      superclass;
      bases = [];
      flags;
      default_magistrates;
      default_scheduler;
      rr = 0;
      clones = [];
      clone_rr = 0;
      binding_policy;
      table = [];
      row_idx = Loid.Table.create ();
    }
  in
  state_to_value st

(* ------------------------------------------------------------------ *)
(* Behaviour.                                                          *)

let find_row st loid = Loid.Table.find st.row_idx loid

let add_row st loid row =
  st.table <- (loid, row) :: st.table;
  Loid.Table.set st.row_idx loid row

let remove_row st loid =
  st.table <- List.filter (fun (l, _) -> not (Loid.equal l loid)) st.table;
  Loid.Table.remove st.row_idx loid

let dedup_units units =
  List.rev
    (List.fold_left (fun acc u -> if List.mem u acc then acc else u :: acc) [] units)

(* Load factor past which the class sheds Create/Derive by policy.
   Lookups (GetBinding) are never policy-shed: under overload the
   control plane degrades before the data plane, so existing objects
   stay reachable while new-object churn is pushed back. *)
let create_shed_threshold = 0.5

let mint_binding rt loid address =
  let ttl = (Runtime.config rt).Runtime.binding_ttl in
  let expires = Option.map (fun d -> Runtime.now rt +. d) ttl in
  Binding.make ?expires ~loid ~address ()

let factory (ctx : Runtime.ctx) : Impl.part =
  let rt = ctx.Runtime.rt in
  let self = Runtime.proc_loid ctx.Runtime.self in
  let st =
    {
      class_id = Loid.class_id self;
      next_spec = 1L;
      interface = Interface.empty "uninitialised";
      instance_units = [ Well_known.unit_object ];
      instance_kind = Well_known.kind_app;
      instance_cache_capacity = None;
      superclass = None;
      bases = [];
      flags = default_flags;
      default_magistrates = [];
      default_scheduler = None;
      rr = 0;
      clones = [];
      clone_rr = 0;
      binding_policy = Policy.Allow_all;
      table = [];
      row_idx = Loid.Table.create ();
    }
  in
  (* Downstream calls made on behalf of a request keep the request's
     Responsible and Security Agents and substitute this class as the
     Calling Agent (§2.4). *)
  let invoke_for env dst meth args k =
    Runtime.invoke ctx ~dst ~meth ~args ~env:(Env.delegate env ~calling:self) k
  in

  (* Binding-path MayI (§2.4): the class's own policy judges the call's
     environment before Create or GetBinding is served, so an uncleared
     principal is answered [Denied] and never receives a binding —
     resolution itself is the first enforcement point, not the target
     object's method dispatch. *)
  let policy_gate ~meth env k serve =
    match Policy.check st.binding_policy ~meth ~env with
    | Policy.Allow -> serve ()
    | Policy.Deny reason ->
        k (Error (Runtime.deny_reply rt ctx.Runtime.self ~meth ~env ~reason))
  in

  (* Creates are the expensive contention point at a class: charge the
     caller's tenant rate budget here too — unless this class runs under
     an admission budget, in which case the admission path has already
     charged the bucket for this call. *)
  let charge_create env k serve =
    match Runtime.admission_of ctx.Runtime.self with
    | Some _ -> serve ()
    | None -> (
        match Runtime.charge_quota rt ctx.Runtime.self ~meth:"Create" ~env with
        | Ok () -> serve ()
        | Error e -> k (Error e))
  in

  (* Pick a Magistrate for a new object: explicit hint, else round-robin
     over the class's default list. *)
  let pick_magistrate hint =
    match hint with
    | Some m -> Some m
    | None -> (
        match st.default_magistrates with
        | [] -> None
        | mags ->
            let n = List.length mags in
            let m = List.nth mags (st.rr mod n) in
            st.rr <- st.rr + 1;
            Some m)
  in

  (* Ask magistrates in order to activate [loid]; first success wins. *)
  let activate_via_magistrates ~env row loid ~stale ~host_hint k =
    let hints =
      Value.Record
        [
          ("stale", C.vopt Address.to_value stale);
          ("host", C.vopt Loid.to_value host_hint);
          ("sched", C.vopt Loid.to_value row.sched);
        ]
    in
    (* A scan over possibly-dead Magistrates: split the caller's patience
       across the entries so one unreachable Magistrate cannot exhaust it
       before the fallbacks get their turn. *)
    let entries = List.length row.magistrates + List.length row.candidates in
    let scan_timeout =
      (Runtime.config rt).Runtime.call_timeout
      /. float_of_int (Stdlib.max 1 entries + 1)
    in
    let rec try_mags = function
      | [] -> k (Error (Err.Not_bound "no magistrate could activate the object"))
      | m :: rest ->
          Runtime.invoke ctx ~timeout:scan_timeout ~max_rebinds:1 ~dst:m
            ~meth:"Activate"
            ~args:[ Loid.to_value loid; hints ]
            ~env:(Env.delegate env ~calling:self)
            (fun r ->
              match r with
              | Ok bv -> (
                  match Binding.of_value bv with
                  | Ok b ->
                      row.address <- Some (Binding.address b);
                      (* Units that keep durable in-doubt work (the
                         transaction coordinator's WAL, a participant's
                         restored prepare lock) register a resume
                         method; poke it fire-and-forget on every
                         activation, proactive (NotifyDead) or
                         on-demand (a stale-binding rebind), so
                         recovery re-drives what a crash interrupted no
                         matter which path reached the object first.
                         Resume methods are idempotent — an
                         already-running instance ignores the poke. *)
                      (match Impl.resume_method_for st.instance_units with
                      | None -> ()
                      | Some meth ->
                          Runtime.invoke ctx ~dst:loid ~meth ~args:[] ~env
                            (fun _ -> ()));
                      k (Ok bv)
                  | Error msg -> k (Error (Err.Internal ("bad binding: " ^ msg))))
              | Error _ when rest <> [] -> try_mags rest
              | Error e -> k (Error e))
    in
    (* The Current Magistrate List first; when it is exhausted, the
       Candidate Magistrate List — "the Magistrates that may be given
       responsibility for the object" (Fig. 16) — may hold a copy (an
       earlier Copy, a site mirror). *)
    let candidates =
      List.filter
        (fun c -> not (List.exists (Loid.equal c) row.magistrates))
        row.candidates
    in
    try_mags (row.magistrates @ candidates)
  in

  (* GetBinding(LOID): Fig. 17's class step — answer from the logical
     table, or consult a Current Magistrate, activating on demand.
     [skip_table_address] marks a refresh request: the recorded address
     is reported stale, so do not serve it — but do not erase it either
     until a Magistrate confirms a replacement. Objects with an empty
     Current Magistrate List (externally-started infrastructure, §4.2.1,
     and replicas registered via RegisterInstance) have nothing to
     reactivate from: their registered address is the best information
     there is, and the caller's failure may be a transient partition. *)
  let get_binding_by_loid ~env ?(skip_table_address = false) ?stale loid k =
    match find_row st loid with
    | None -> k (Error (Err.Not_bound "object not created by this class"))
    | Some row -> (
        match row.address with
        | Some address when (not skip_table_address) || row.magistrates = [] ->
            k (Ok (Binding.to_value (mint_binding rt loid address)))
        | _ -> activate_via_magistrates ~env row loid ~stale ~host_hint:None k)
  in

  let get_binding _ctx args env k =
    policy_gate ~meth:"GetBinding" env k @@ fun () ->
    match args with
    | [ arg ] -> (
        match C.loid_arg arg with
        | Ok loid -> get_binding_by_loid ~env loid k
        | Error _ -> (
            (* GetBinding(binding): the caller's binding is stale. If our
               table agrees with the stale address, drop it and
               re-activate; otherwise serve the (different) table
               binding. *)
            match C.binding_arg arg with
            | Error _ -> Impl.bad_args k "GetBinding expects a loid or a binding"
            | Ok stale -> (
                let loid = Binding.loid stale in
                match find_row st loid with
                | None -> k (Error (Err.Not_bound "object not created by this class"))
                | Some row -> (
                    let stale_addr = Binding.address stale in
                    match row.address with
                    | Some a when Address.equal a stale_addr ->
                        get_binding_by_loid ~env ~skip_table_address:true
                          ~stale:stale_addr loid k
                    | Some a -> k (Ok (Binding.to_value (mint_binding rt loid a)))
                    | None ->
                        get_binding_by_loid ~env ~skip_table_address:true
                          ~stale:stale_addr loid k))))
    | _ -> Impl.bad_args k "GetBinding expects one argument"
  in

  (* Create arrivals seen by this incarnation — redirected and shed
     ones included. The elastic loop diffs it for its cool-down signal:
     once the class redirects, its own load factor collapses by
     construction, so demand rate is the only honest "still hot?"
     measure. *)
  let creates_seen = ref 0 in

  (* Create(init_states, hints): the is-a relation (§2.1.1). *)
  let create _ctx args env k =
    policy_gate ~meth:"Create" env k @@ fun () ->
    charge_create env k @@ fun () ->
    match args with
    | [ init_states; hints ] -> (
        incr creates_seen;
        if st.clones <> [] then begin
          (* §5.2.2: "new instantiation requests are passed to the
             cloned object" — answered as a redirect the caller
             re-issues at the clone. Proxying instead would hold this
             class's inflight slot for the downstream create's whole
             duration: zero admission relief. *)
          let n = List.length st.clones in
          let pick = List.nth st.clones (st.clone_rr mod n) in
          st.clone_rr <- st.clone_rr + 1;
          k (Ok (Value.Record [ ("redirect", Loid.to_value pick) ]))
        end
        else if Runtime.load_factor ctx.Runtime.self >= create_shed_threshold then
          k (Error (Runtime.shed_reply rt ctx.Runtime.self ~meth:"Create"))
        else if st.flags.abstract then
          k (Error (Err.Refused "abstract class: no direct instances"))
        else
          let states =
            match init_states with Value.Record fields -> fields | _ -> []
          in
          let decoded =
            let* mag_hint = C.opt_loid_field hints "magistrate" in
            let* host_hint = C.opt_loid_field hints "host" in
            let* eager = C.bool_field ~default:false hints "eager" in
            let* sched = C.opt_loid_field hints "sched" in
            let* candidates = C.loid_list_field ~default:[] hints "candidates" in
            let* public_key = C.opt_str_field hints "public_key" in
            Ok (mag_hint, host_hint, eager, sched, candidates, public_key)
          in
          match decoded with
          | Error msg -> Impl.bad_args k msg
          | Ok (mag_hint, host_hint, eager, sched, candidates, public_key) -> (
              match pick_magistrate mag_hint with
              | None -> k (Error (Err.Refused "class has no magistrate to place objects"))
              | Some magistrate ->
                  (* §3.2: the LOID's low-order bits are the object's
                     public key. The key is part of the object's
                     identity: a LOID quoting the wrong key names a
                     different (nonexistent) object everywhere — the
                     logical table, dispatch, the caches. *)
                  let loid =
                    Loid.make
                      ?public_key
                      ~class_id:st.class_id ~class_specific:st.next_spec ()
                  in
                  st.next_spec <- Int64.add st.next_spec 1L;
                  (* Typed classes seed the typecheck unit with the
                     class's current interface unless the caller
                     supplied one explicitly. *)
                  let states =
                    if
                      List.mem Typecheck_part.unit_name st.instance_units
                      && not (List.mem_assoc Typecheck_part.unit_name states)
                    then
                      (Typecheck_part.unit_name, Interface.to_value st.interface)
                      :: states
                    else states
                  in
                  let opr =
                    Opr.make ~states
                      ?binding_agent:(Runtime.binding_agent ctx.Runtime.self)
                      ?cache_capacity:st.instance_cache_capacity
                      ~kind:st.instance_kind ~units:st.instance_units ()
                  in
                  invoke_for env magistrate "StoreObject"
                    [ Loid.to_value loid; Value.Blob (Opr.to_blob opr) ]
                    (fun r ->
                      match r with
                      | Error e -> k (Error e)
                      | Ok _ -> (
                          let row =
                            {
                              address = None;
                              magistrates = [ magistrate ];
                              sched =
                                (match sched with
                                | Some _ -> sched
                                | None -> st.default_scheduler);
                              candidates;
                              is_subclass = false;
                            }
                          in
                          add_row st loid row;
                          let reply_with binding_opt =
                            k
                              (Ok
                                 (Value.Record
                                    [
                                      ("loid", Loid.to_value loid);
                                      ("binding", C.vopt (fun b -> b) binding_opt);
                                    ]))
                          in
                          if not eager then reply_with None
                          else
                            activate_via_magistrates ~env row loid ~stale:None
                              ~host_hint (fun r ->
                                match r with
                                | Ok bv -> reply_with (Some bv)
                                | Error e -> k (Error e))))))
    | _ -> Impl.bad_args k "Create expects (init_states, hints)"
  in

  (* Derive(spec): the kind-of relation. Also used by Clone() and by
     the elastic loop's self-cloning — the latter with [internal] set,
     because self-cloning triggers exactly when the load factor is
     already past the shed threshold. *)
  let do_derive ?(internal = false) ~env spec k =
    if
      (not internal)
      && Runtime.load_factor ctx.Runtime.self >= create_shed_threshold
    then k (Error (Runtime.shed_reply rt ctx.Runtime.self ~meth:"Derive"))
    else if st.flags.private_ then
      k (Error (Err.Refused "private class: no subclasses"))
    else
      let decoded =
        let* name = C.str_field spec "name" in
        let* units = C.str_list_field ~default:[] spec "units" in
        let* idl = C.opt_str_field spec "idl" in
        let* mpl = C.opt_str_field spec "mpl" in
        let* abstract = C.bool_field ~default:false spec "abstract" in
        let* private_ = C.bool_field ~default:false spec "private" in
        let* fixed = C.bool_field ~default:false spec "fixed" in
        let* class_units = C.str_list_field ~default:[] spec "class_units" in
        let* typed = C.bool_field ~default:false spec "typed" in
        let* exclude = C.str_list_field ~default:[] spec "exclude_units" in
        let* kind = C.opt_str_field spec "kind" in
        let* mag_hint = C.opt_loid_field spec "magistrate" in
        let* eager = C.bool_field ~default:true spec "eager" in
        let* iface =
          match (idl, mpl) with
          | Some _, Some _ -> Error "spec carries both idl and mpl sources"
          | None, None -> Ok (Interface.empty name)
          | Some src, None -> (
              match Parser.interface src with
              | Ok i -> Ok i
              | Error e -> Error (Format.asprintf "idl: %a" Parser.pp_error e))
          | None, Some src -> (
              (* The paper's second IDL (§2 footnote): MPL. *)
              match Legion_idl.Mpl.interface src with
              | Ok i -> Ok i
              | Error e -> Error (Format.asprintf "mpl: %a" Legion_idl.Mpl.pp_error e))
        in
        Ok (name, units, iface, abstract, private_, fixed, class_units, kind,
            mag_hint, eager, typed, exclude)
      in
      match decoded with
      | Error msg -> Impl.bad_args k msg
      | Ok (name, units, iface, abstract, private_, fixed, class_units, kind,
            mag_hint, eager, typed, exclude) -> (
          match pick_magistrate mag_hint with
          | None -> k (Error (Err.Refused "class has no magistrate to place subclasses"))
          | Some magistrate ->
              (* Step 1: obtain a fresh Class Identifier from LegionClass,
                 which records the responsibility pair <self, child>
                 (§4.1.3). *)
              invoke_for env Well_known.legion_class "NewClassId"
                [ Loid.to_value self; Value.Str name ]
                (fun r ->
                  match r with
                  | Error e -> k (Error e)
                  | Ok cid_v -> (
                      match Value.to_i64 cid_v with
                      | Error _ -> k (Error (Err.Internal "NewClassId: bad reply"))
                      | Ok cid ->
                          let child = Loid.make ~class_id:cid ~class_specific:0L () in
                          let child_iface =
                            Interface.merge
                              (Interface.make ~name (Interface.signatures iface))
                              st.interface
                          in
                          let typed_units =
                            if typed then [ Typecheck_part.unit_name ] else []
                          in
                          (* Selective inheritance (§2.1 footnote:
                             "Legion may allow a class to select the
                             components that it wishes to inherit"):
                             excluded units are dropped from the
                             inherited list; the base unit always
                             stays. *)
                          let inherited =
                            List.filter
                              (fun u ->
                                u = Well_known.unit_object
                                || not (List.mem u exclude))
                              st.instance_units
                          in
                          let child_state_v =
                            init_state ~interface:child_iface
                              ~instance_units:
                                (dedup_units (typed_units @ units @ inherited))
                              ~instance_kind:(Option.value ~default:st.instance_kind kind)
                              ?instance_cache_capacity:st.instance_cache_capacity
                              ~superclass:self
                              ~flags:{ abstract; private_; fixed }
                              ~default_magistrates:st.default_magistrates
                              ?default_scheduler:st.default_scheduler
                              ~binding_policy:st.binding_policy ~class_id:cid ()
                          in
                          let opr =
                            Opr.make
                              ~states:[ (unit_name, child_state_v) ]
                              ?binding_agent:(Runtime.binding_agent ctx.Runtime.self)
                              ~kind:Well_known.kind_class
                              ~units:
                                (dedup_units
                                   (class_units
                                   @ [ unit_name; Well_known.unit_object ]))
                              ()
                          in
                          invoke_for env magistrate "StoreObject"
                            [ Loid.to_value child; Value.Blob (Opr.to_blob opr) ]
                            (fun r ->
                              match r with
                              | Error e -> k (Error e)
                              | Ok _ -> (
                                  let row =
                                    {
                                      address = None;
                                      magistrates = [ magistrate ];
                                      sched = st.default_scheduler;
                                      candidates = [];
                                      is_subclass = true;
                                    }
                                  in
                                  add_row st child row;
                                  let reply_with b =
                                    k
                                      (Ok
                                         (Value.Record
                                            [
                                              ("loid", Loid.to_value child);
                                              ("binding", C.vopt (fun x -> x) b);
                                            ]))
                                  in
                                  if not eager then reply_with None
                                  else
                                    activate_via_magistrates ~env row child
                                      ~stale:None ~host_hint:None (fun r ->
                                        match r with
                                        | Ok bv -> reply_with (Some bv)
                                        | Error e -> k (Error e)))))))
  in

  let derive _ctx args env k =
    match args with
    | [ spec ] -> do_derive ~env spec k
    | _ -> Impl.bad_args k "Derive expects one spec record"
  in

  (* Clone(): §5.2.2 — "the cloned class is derived from the heavily
     used class without changing the interface in any way". *)
  let clone _ctx args env k =
    match args with
    | [] ->
        let spec =
          Value.Record
            [
              ( "name",
                Value.Str
                  (Printf.sprintf "%s~clone%Ld" (Interface.name st.interface)
                     st.next_spec) );
            ]
        in
        do_derive ~env spec k
    | _ -> Impl.bad_args k "Clone takes no arguments"
  in

  (* InheritFrom(base): the inherits-from relation — "an active process
     carried out at run-time" (§2.1). *)
  let inherit_from _ctx args env k =
    match args with
    | [ base_v ] -> (
        if st.flags.fixed then
          k (Error (Err.Refused "fixed class: inherits only from its superclass"))
        else
          match C.loid_arg base_v with
          | Error msg -> Impl.bad_args k msg
          | Ok base ->
              invoke_for env base "GetInheritInfo" [] (fun r ->
                  match r with
                  | Error e -> k (Error e)
                  | Ok info -> (
                      let decoded =
                        let* units = C.str_list_field info "units" in
                        let* iface_v = C.field info "iface" in
                        let* iface = Interface.of_value iface_v in
                        Ok (units, iface)
                      in
                      match decoded with
                      | Error msg -> k (Error (Err.Internal msg))
                      | Ok (base_units, base_iface) ->
                          st.instance_units <-
                            dedup_units (st.instance_units @ base_units);
                          st.interface <- Interface.merge st.interface base_iface;
                          st.bases <- st.bases @ [ base ];
                          k Impl.ok_unit)))
    | _ -> Impl.bad_args k "InheritFrom expects one base-class loid"
  in

  let get_inherit_info _ctx args _env k =
    match args with
    | [] ->
        k
          (Ok
             (Value.Record
                [
                  ("units", C.vstrs st.instance_units);
                  ("iface", Interface.to_value st.interface);
                ]))
    | _ -> Impl.bad_args k "GetInheritInfo takes no arguments"
  in

  let get_interface _ctx args _env k =
    match args with
    | [] -> k (Ok (Interface.to_value st.interface))
    | _ -> Impl.bad_args k "GetInterface takes no arguments"
  in

  (* Delete(loid): remove instance or subclass everywhere (§3.8). *)
  let delete _ctx args env k =
    match args with
    | [ loid_v ] -> (
        match C.loid_arg loid_v with
        | Error msg -> Impl.bad_args k msg
        | Ok loid -> (
            match find_row st loid with
            | None -> k (Error (Err.Not_bound "object not created by this class"))
            | Some row ->
                let rec tell_mags = function
                  | [] ->
                      remove_row st loid;
                      k Impl.ok_unit
                  | m :: rest ->
                      invoke_for env m "Delete" [ Loid.to_value loid ] (fun _ ->
                          (* Best effort: a refusing or dead Magistrate
                             leaves a garbage OPR, not a live object. *)
                          tell_mags rest)
                in
                tell_mags row.magistrates))
    | _ -> Impl.bad_args k "Delete expects one loid"
  in

  let register_instance _ctx args _env k =
    match args with
    | [ loid_v; addr_v ] -> (
        let decoded =
          let* loid = C.loid_arg loid_v in
          let* addr = Address.of_value addr_v in
          Ok (loid, addr)
        in
        match decoded with
        | Error msg -> Impl.bad_args k msg
        | Ok (loid, addr) ->
            (match find_row st loid with
            | Some row -> row.address <- Some addr
            | None ->
                add_row st loid
                  {
                    address = Some addr;
                    magistrates = [];
                    sched = st.default_scheduler;
                    candidates = [];
                    is_subclass = Loid.is_class loid;
                  });
            k Impl.ok_unit)
    | _ -> Impl.bad_args k "RegisterInstance expects (loid, address)"
  in

  let notify_address _ctx args _env k =
    match args with
    | [ loid_v; addr_opt_v ] -> (
        let decoded =
          let* loid = C.loid_arg loid_v in
          let* addr =
            match addr_opt_v with
            | Value.List [] -> Ok None
            | Value.List [ a ] -> Result.map (fun a -> Some a) (Address.of_value a)
            | _ -> Error "NotifyAddress: second argument must be opt<address>"
          in
          Ok (loid, addr)
        in
        match decoded with
        | Error msg -> Impl.bad_args k msg
        | Ok (loid, addr) -> (
            match find_row st loid with
            | None -> k (Error (Err.Not_bound "object not created by this class"))
            | Some row ->
                row.address <- addr;
                k Impl.ok_unit))
    | _ -> Impl.bad_args k "NotifyAddress expects (loid, opt<address>)"
  in

  let notify_magistrates _ctx args _env k =
    match args with
    | [ loid_v; add_v; remove_v ] -> (
        let decoded =
          let* loid = C.loid_arg loid_v in
          let to_loids v =
            match v with
            | Value.List vs ->
                let rec loop acc = function
                  | [] -> Ok (List.rev acc)
                  | x :: rest ->
                      let* l = C.loid_arg x in
                      loop (l :: acc) rest
                in
                loop [] vs
            | _ -> Error "expected a list of loids"
          in
          let* add = to_loids add_v in
          let* remove = to_loids remove_v in
          Ok (loid, add, remove)
        in
        match decoded with
        | Error msg -> Impl.bad_args k msg
        | Ok (loid, add, remove) -> (
            match find_row st loid with
            | None -> k (Error (Err.Not_bound "object not created by this class"))
            | Some row ->
                let without =
                  List.filter
                    (fun m -> not (List.exists (Loid.equal m) remove))
                    row.magistrates
                in
                let added =
                  List.filter
                    (fun m -> not (List.exists (Loid.equal m) without))
                    add
                in
                row.magistrates <- without @ added;
                k Impl.ok_unit))
    | _ -> Impl.bad_args k "NotifyMagistrates expects (loid, add, remove)"
  in

  (* NotifyDead: a failure detector (a Magistrate heartbeat) reports
     the instance's host dead. Responsibility pairs (§3.7) make this
     class the recovery authority: drop the stale address and
     reactivate from the last OPR on a surviving host through the
     usual magistrate scan — proactively, with no caller waiting for
     the answer. *)
  let notify_dead _ctx args env k =
    match args with
    | [ loid_v ] -> (
        match C.loid_arg loid_v with
        | Error msg -> Impl.bad_args k msg
        | Ok loid -> (
            match find_row st loid with
            | None ->
                k (Error (Err.Not_bound "object not created by this class"))
            | Some row ->
                row.address <- None;
                activate_via_magistrates ~env row loid ~stale:None
                  ~host_hint:None (fun r ->
                    match r with
                    | Ok _ ->
                        Runtime.emit rt
                          ~host:(Runtime.proc_host ctx.Runtime.self)
                          (Legion_obs.Event.Reactivate { loid });
                        (* The resume poke for units with durable
                           in-doubt work happens inside
                           activate_via_magistrates, shared with the
                           on-demand rebind path. *)
                        k Impl.ok_unit
                    | Error e -> k (Error e))))
    | _ -> Impl.bad_args k "NotifyDead expects one loid"
  in

  let set_defaults _ctx args _env k =
    match args with
    | [ v ] -> (
        let decoded =
          let* mags = C.loid_list_field ~default:st.default_magistrates v "magistrates" in
          let* sched = C.opt_loid_field v "sched" in
          Ok (mags, sched)
        in
        match decoded with
        | Error msg -> Impl.bad_args k msg
        | Ok (mags, sched) ->
            st.default_magistrates <- mags;
            (match sched with Some _ -> st.default_scheduler <- sched | None -> ());
            k Impl.ok_unit)
    | _ -> Impl.bad_args k "SetDefaults expects one record"
  in

  (* SetBindingPolicy(policy): install the MayI judged on this class's
     binding path (Create/GetBinding). Gated by the policy being
     replaced, so once a class is locked down an uncleared principal
     cannot simply reopen it. *)
  let set_binding_policy _ctx args env k =
    match args with
    | [ pv ] -> (
        policy_gate ~meth:"SetBindingPolicy" env k @@ fun () ->
        match Policy.of_value pv with
        | Ok p ->
            st.binding_policy <- p;
            k Impl.ok_unit
        | Error msg -> Impl.bad_args k msg)
    | _ -> Impl.bad_args k "SetBindingPolicy expects one policy value"
  in

  let list_instances _ctx args _env k =
    match args with
    | [] ->
        let instances =
          List.filter_map
            (fun (l, r) -> if r.is_subclass then None else Some l)
            st.table
        in
        k (Ok (C.vloids instances))
    | _ -> Impl.bad_args k "ListInstances takes no arguments"
  in

  let list_subclasses _ctx args _env k =
    match args with
    | [] ->
        let subs =
          List.filter_map
            (fun (l, r) -> if r.is_subclass then Some l else None)
            st.table
        in
        k (Ok (C.vloids subs))
    | _ -> Impl.bad_args k "ListSubclasses takes no arguments"
  in

  let get_class_info _ctx args _env k =
    match args with
    | [] ->
        let n_inst, n_sub =
          List.fold_left
            (fun (i, s) (_, r) -> if r.is_subclass then (i, s + 1) else (i + 1, s))
            (0, 0) st.table
        in
        k
          (Ok
             (Value.Record
                [
                  ("cid", Value.I64 st.class_id);
                  ("name", Value.Str (Interface.name st.interface));
                  ("abstract", Value.Bool st.flags.abstract);
                  ("private", Value.Bool st.flags.private_);
                  ("fixed", Value.Bool st.flags.fixed);
                  ("units", C.vstrs st.instance_units);
                  ("kind", Value.Str st.instance_kind);
                  ("super", C.vopt Loid.to_value st.superclass);
                  ("bases", C.vloids st.bases);
                  ("instances", Value.Int n_inst);
                  ("subclasses", Value.Int n_sub);
                ]))
    | _ -> Impl.bad_args k "GetClassInfo takes no arguments"
  in

  (* StartElastic(cfg): E4 made automatic. Every [period] the class
     samples its own admission load factor. [sustain] consecutive hot
     samples derive a clone (via [do_derive ~internal], since the
     trigger fires exactly when ordinary Derives are being shed) and
     push it onto the redirect ring, up to [max_clones]; with a ring in
     place, further growth is demand-driven ([grow_rate] Creates per
     period per clone). Cool-down also watches demand, not load — a
     redirecting parent idles by construction: when the per-period
     Create rate per clone stays below [lo_rate] for [merge_sustain]
     periods, the newest clone is retired from the ring. Retired ≠
     deleted: the clone stays the responsible class for every instance
     it minted (§3.7); it just receives no new redirections. *)
  let start_elastic _ctx args env k =
    let float_field v name ~default =
      match C.field v name with
      | Ok (Value.Float f) -> Ok f
      | Ok (Value.Int i) -> Ok (float_of_int i)
      | Ok _ -> Error (name ^ " must be numeric")
      | Error _ -> Ok default
    in
    let int_field v name ~default =
      match C.int_field v name with Ok n -> Ok n | Error _ -> Ok default
    in
    match args with
    | [ cfg ] -> (
        let decoded =
          let* period = float_field cfg "period" ~default:0.0 in
          let* until = float_field cfg "until" ~default:0.0 in
          let* hi = float_field cfg "hi" ~default:create_shed_threshold in
          let* sustain = int_field cfg "sustain" ~default:3 in
          let* grow_rate = float_field cfg "grow_rate" ~default:infinity in
          let* lo_rate = float_field cfg "lo_rate" ~default:1.0 in
          let* merge_sustain = int_field cfg "merge_sustain" ~default:5 in
          let* max_clones = int_field cfg "max_clones" ~default:3 in
          Ok (period, until, hi, sustain, grow_rate, lo_rate, merge_sustain,
              max_clones)
        in
        match decoded with
        | Error msg -> Impl.bad_args k msg
        | Ok (period, until, hi, sustain, grow_rate, lo_rate, merge_sustain,
              max_clones) ->
            if period <= 0.0 then
              Impl.bad_args k "StartElastic: period must be positive"
            else begin
              let eng = Runtime.sim rt in
              let denv = Env.delegate env ~calling:self in
              let hot = ref 0 in
              let cool = ref 0 in
              let last_creates = ref !creates_seen in
              let cloning = ref false in
              let self_clone () =
                cloning := true;
                let spec =
                  Value.Record
                    [
                      ( "name",
                        Value.Str
                          (Printf.sprintf "%s~auto%d"
                             (Interface.name st.interface)
                             (List.length st.clones + 1)) );
                    ]
                in
                do_derive ~internal:true ~env:denv spec (fun r ->
                    cloning := false;
                    match r with
                    | Ok reply -> (
                        match C.loid_field reply "loid" with
                        | Ok clone ->
                            st.clones <- st.clones @ [ clone ];
                            Runtime.emit rt
                              ~host:(Runtime.proc_host ctx.Runtime.self)
                              (Legion_obs.Event.Clone { cls = self; clone })
                        | Error _ -> ())
                    | Error _ -> ())
              in
              let retire_newest () =
                let rec split_last acc = function
                  | [] -> None
                  | [ last ] -> Some (List.rev acc, last)
                  | x :: rest -> split_last (x :: acc) rest
                in
                match split_last [] st.clones with
                | None -> ()
                | Some (keep, retired) ->
                    st.clones <- keep;
                    Runtime.emit rt
                      ~host:(Runtime.proc_host ctx.Runtime.self)
                      (Legion_obs.Event.Merge { cls = self; clone = retired })
              in
              let rec tick time =
                if time <= until then
                  ignore
                    (Legion_sim.Engine.schedule_at eng ~time (fun () ->
                         if Runtime.is_live ctx.Runtime.self then begin
                           let demand = !creates_seen - !last_creates in
                           last_creates := !creates_seen;
                           let n = List.length st.clones in
                           (* With no clones yet, either signal starts
                              the ring: a sampled load factor past [hi],
                              or a whole period's Create demand already
                              clearing [grow_rate] (the sampled factor
                              can miss a burst that lands between
                              ticks). *)
                           let hot_now =
                             if n = 0 then
                               Runtime.load_factor ctx.Runtime.self >= hi
                               || float_of_int demand >= grow_rate
                             else
                               float_of_int demand /. float_of_int n
                               >= grow_rate
                           in
                           let cool_now =
                             n > 0
                             && float_of_int demand /. float_of_int n < lo_rate
                           in
                           if hot_now then begin
                             incr hot;
                             cool := 0
                           end
                           else begin
                             hot := 0;
                             if cool_now then incr cool else cool := 0
                           end;
                           if
                             !hot >= sustain && (not !cloning)
                             && List.length st.clones < max_clones
                           then begin
                             hot := 0;
                             self_clone ()
                           end;
                           if !cool >= merge_sustain then begin
                             cool := 0;
                             retire_newest ()
                           end;
                           tick (time +. period)
                         end))
              in
              tick (Runtime.now rt +. period);
              k Impl.ok_unit
            end)
    | _ -> Impl.bad_args k "StartElastic expects one config record"
  in

  Impl.part
    ~methods:
      [
        ("Create", create);
        ("Derive", derive);
        ("Clone", clone);
        ("InheritFrom", inherit_from);
        ("GetInheritInfo", get_inherit_info);
        ("GetInterface", get_interface);
        ("GetBinding", get_binding);
        ("Delete", delete);
        ("RegisterInstance", register_instance);
        ("NotifyAddress", notify_address);
        ("NotifyMagistrates", notify_magistrates);
        ("NotifyDead", notify_dead);
        ("SetDefaults", set_defaults);
        ("SetBindingPolicy", set_binding_policy);
        ("StartElastic", start_elastic);
        ("ListInstances", list_instances);
        ("ListSubclasses", list_subclasses);
        ("GetClassInfo", get_class_info);
      ]
    ~save:(fun () -> state_to_value st)
    ~restore:(fun v -> state_of_value st v)
    unit_name

let register () = Impl.register unit_name factory
