(** Implementation units and composite object behaviours.

    A Legion object's behaviour is the composition of named
    {e implementation units} — the runtime analogue of the "executables"
    that Object Persistent Representations name (§4.2). Multiple
    inheritance (§2.1.1) composes units in precedence order: when a
    method name is provided by several units, the earliest unit wins.

    The composite behaviour natively provides the object-mandatory state
    machinery: [SaveState] (returns the per-unit state record that goes
    into an OPR), [RestoreState], and [GetMethodNames]. Everything else
    — including [MayI] — comes from units; the composite consults the
    first unit exposing a {e guard} before dispatching, which is how
    "Legion will invoke the known member functions to define and enforce
    security" (§2.4). *)

module Value := Legion_wire.Value
module Loid := Legion_naming.Loid
module Env := Legion_sec.Env
module Policy := Legion_sec.Policy
module Runtime := Legion_rt.Runtime
module Err := Legion_rt.Err

type meth =
  Runtime.ctx -> Value.t list -> Env.t -> (Runtime.reply -> unit) -> unit
(** One method implementation. Must eventually call the continuation
    exactly once. *)

type part = {
  part_name : string;  (** The unit's registered name. *)
  find : string -> meth option;
  method_names : string list;
  save : unit -> Value.t;  (** Snapshot this unit's state. *)
  restore : Value.t -> (unit, string) result;
  guard :
    (meth:string -> args:Value.t list -> env:Env.t -> Policy.decision) option;
      (** Admission control; the composite requires every unit's guard
          to admit a call (conjunction), so orthogonal controls — MayI
          policy, IDL conformance — compose. *)
}

val part :
  ?methods:(string * meth) list ->
  ?save:(unit -> Value.t) ->
  ?restore:(Value.t -> (unit, string) result) ->
  ?guard:(meth:string -> args:Value.t list -> env:Env.t -> Policy.decision) ->
  string ->
  part
(** Convenience constructor; defaults: no methods, [Unit] state, accept
    any restore, no guard. *)

type factory = Runtime.ctx -> part
(** Units are instantiated per activation, with the object's context in
    scope (so methods can [invoke] other objects as the object itself). *)

(** {1 The unit registry}

    The registry plays the role of the executable search path: OPRs name
    units; activation resolves the names here. *)

val register : string -> factory -> unit
(** Last registration for a name wins (supports test overrides). *)

val find_factory : string -> factory option
val registered_units : unit -> string list

val register_resume : unit_name:string -> meth:string -> unit
(** Declare that instances composed from [unit_name] carry in-doubt
    durable work: after crash-recovery reactivates such an instance,
    the responsible class invokes [meth] on it (fire-and-forget) so the
    unit can re-drive from its own write-ahead state. The transaction
    coordinator registers [TxnResume] here. Last registration for a
    unit name wins. *)

val resume_method_for : string list -> string option
(** The resume method of the first listed unit that registered one. *)

(** {1 Composition and activation} *)

val compose : parts:part list -> Runtime.handler
(** Build the dispatch loop over the given parts (precedence order). *)

val activate :
  Legion_rt.Runtime.t ->
  host:Legion_net.Network.host_id ->
  loid:Loid.t ->
  Opr.t ->
  (Runtime.proc, string) result
(** Bring an OPR to life on a host: spawn the process, instantiate each
    named unit, restore saved states, and install the composite
    handler. Fails (spawning nothing) if a unit is unregistered or a
    state fails to restore. *)

(** {1 Reply helpers used across unit implementations} *)

val ok_unit : Runtime.reply
val reply_err : (Runtime.reply -> unit) -> Err.t -> unit
val bad_args : (Runtime.reply -> unit) -> string -> unit
