module Value = Legion_wire.Value
module Env = Legion_sec.Env
module Policy = Legion_sec.Policy
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err

type meth =
  Runtime.ctx -> Value.t list -> Env.t -> (Runtime.reply -> unit) -> unit

type part = {
  part_name : string;
  find : string -> meth option;
  method_names : string list;
  save : unit -> Value.t;
  restore : Value.t -> (unit, string) result;
  guard :
    (meth:string -> args:Value.t list -> env:Env.t -> Policy.decision) option;
}

let part ?(methods = []) ?(save = fun () -> Value.Unit)
    ?(restore = fun _ -> Ok ()) ?guard part_name =
  {
    part_name;
    find = (fun m -> List.assoc_opt m methods);
    method_names = List.map fst methods;
    save;
    restore;
    guard;
  }

type factory = Runtime.ctx -> part

let registry : (string, factory) Hashtbl.t = Hashtbl.create 32

let register name factory = Hashtbl.replace registry name factory
let find_factory name = Hashtbl.find_opt registry name

let registered_units () =
  List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) registry [])

(* Resume hooks: unit name -> method the recovery path should invoke on
   a freshly reactivated instance composed from that unit. Registered
   alongside the factory (Legion_txn.register wires its coordinator's
   TxnResume here) so the class recovery path needs no compile-time
   dependency on the unit's library. *)
let resume_hooks : (string, string) Hashtbl.t = Hashtbl.create 8

let register_resume ~unit_name ~meth = Hashtbl.replace resume_hooks unit_name meth

let resume_method_for units =
  List.find_map (fun u -> Hashtbl.find_opt resume_hooks u) units

let ok_unit : Runtime.reply = Ok Value.Unit
let reply_err k e = k (Error e)
let bad_args k msg = k (Error (Err.Bad_args msg))

(* Methods every composite answers natively. MayI, Iam and Ping must
   remain callable regardless of policy so that objects can probe each
   other; everything else passes through the guard. *)
let unguarded = [ "MayI"; "Iam"; "Ping" ]
let builtin_names = [ "SaveState"; "RestoreState"; "GetMethodNames" ]

let compose ~parts : Runtime.handler =
 fun ctx call k ->
  let { Runtime.meth; args; env } = call in
  (* Every unit's guard must admit the call (conjunction): the object
     part contributes the MayI policy, a typecheck unit contributes IDL
     conformance, and so on. *)
  let guard_decision () =
    if List.mem meth unguarded then Policy.Allow
    else
      let rec all_guards = function
        | [] -> Policy.Allow
        | { guard = Some g; _ } :: rest -> (
            match g ~meth ~args ~env with
            | Policy.Allow -> all_guards rest
            | Policy.Deny _ as d -> d)
        | { guard = None; _ } :: rest -> all_guards rest
      in
      all_guards parts
  in
  match guard_decision () with
  | Policy.Deny reason -> k (Error (Err.Refused reason))
  | Policy.Allow -> (
      match meth with
      | "SaveState" ->
          k (Ok (Value.Record (List.map (fun p -> (p.part_name, p.save ())) parts)))
      | "RestoreState" -> (
          match args with
          | [ Value.Record fields ] ->
              let rec loop = function
                | [] -> k ok_unit
                | p :: rest -> (
                    match List.assoc_opt p.part_name fields with
                    | None -> loop rest
                    | Some st -> (
                        match p.restore st with
                        | Ok () -> loop rest
                        | Error msg -> bad_args k ("RestoreState: " ^ msg)))
              in
              loop parts
          | _ -> bad_args k "RestoreState expects one record argument")
      | "GetMethodNames" ->
          let names =
            builtin_names @ List.concat_map (fun p -> p.method_names) parts
          in
          let dedup =
            List.fold_left
              (fun acc n -> if List.mem n acc then acc else n :: acc)
              [] names
          in
          k (Ok (Value.List (List.rev_map (fun n -> Value.Str n) dedup)))
      | _ -> (
          let rec dispatch = function
            | [] -> k (Error (Err.No_such_method meth))
            | p :: rest -> (
                match p.find meth with
                | Some f -> f ctx args env k
                | None -> dispatch rest)
          in
          dispatch parts))

let activate rt ~host ~loid (opr : Opr.t) =
  (* Resolve all factories before spawning so failure has no side
     effects. *)
  let rec resolve acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest -> (
        match find_factory name with
        | Some f -> resolve ((name, f) :: acc) rest
        | None -> Error (Printf.sprintf "unknown implementation unit %S" name))
  in
  match resolve [] opr.Opr.units with
  | Error _ as e -> e
  | Ok factories -> (
      let proc =
        Runtime.spawn rt ~host ~loid ~kind:opr.Opr.kind
          ?cache_capacity:opr.Opr.cache_capacity
          ?binding_agent:opr.Opr.binding_agent
          ~handler:(fun _ctx _call k ->
            k (Error (Err.Internal "object still initialising")))
          ()
      in
      let ctx = { Runtime.rt; self = proc } in
      let parts = List.map (fun (_, f) -> f ctx) factories in
      let rec restore_all = function
        | [] -> Ok ()
        | p :: rest -> (
            match List.assoc_opt p.part_name opr.Opr.states with
            | None -> restore_all rest
            | Some st -> (
                match p.restore st with
                | Ok () -> restore_all rest
                | Error msg ->
                    Error
                      (Printf.sprintf "unit %s failed to restore state: %s"
                         p.part_name msg)))
      in
      match restore_all parts with
      | Error msg ->
          Runtime.kill rt proc;
          Error msg
      | Ok () ->
          Runtime.set_handler proc (compose ~parts);
          Ok proc)
