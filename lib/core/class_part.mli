(** The class-machinery implementation unit ("legion.class").

    A Legion class object is an object that carries this unit. It
    provides the class-mandatory member functions (§2.1, §3.7):

    - [Create(init_states: record, hints: record): record] — instantiate
      (the {e is-a} relation). Refused on Abstract classes.
    - [Derive(spec: record): record] — create a subclass (the
      {e kind-of} relation). Refused on Private classes.
    - [InheritFrom(base: loid): unit] — add a base class's methods to
      future instances (the {e inherits-from} relation). Refused on
      Fixed classes.
    - [Delete(obj: loid): unit], [GetBinding(loid|binding): binding],
      [GetInterface(): any], plus bookkeeping methods.

    The unit maintains the {e logical table} of Fig. 16: one row per
    created instance or subclass, holding Object Address, Current
    Magistrate List, Scheduling Agent and Candidate Magistrate List.
    [GetBinding] answers from the table when the Object Address is
    known, and otherwise consults a Current Magistrate via [Activate] —
    "referring to the LOID of an Inert object can cause the object to be
    activated" (§4.1.2). [Clone()] implements the hot-class relief of
    §5.2.2.

    Hints accepted by [Create]: [magistrate: opt<loid>],
    [host: opt<loid>] (forwarded to the Magistrate), [eager: bool]
    (activate immediately; default false), [sched: opt<loid>],
    [candidates: list<loid>]. Reply: [{loid: loid, binding: opt<binding>}].

    Spec fields of [Derive]: [name: str], [units: list<str>] (new
    implementation units, highest precedence), [idl: opt<str>] (CORBA-flavoured IDL
    source of the additional interface) or [mpl: opt<str>] (MPL-flavoured;
    at most one of the two), [abstract/private/fixed: bool]
    (default false), [class_units: list<str>] (extra units for the class
    object itself), [kind: opt<str>], [magistrate: opt<loid>],
    [eager: bool] (default true — classes stay active, §5.2).
    Reply: [{loid: loid, binding: opt<binding>}]. *)

module Value := Legion_wire.Value
module Loid := Legion_naming.Loid
module Interface := Legion_idl.Interface

val unit_name : string

type flags = { abstract : bool; private_ : bool; fixed : bool }

val default_flags : flags
(** All false: a plain concrete class. *)

val init_state :
  ?interface:Interface.t ->
  ?instance_units:string list ->
  ?instance_kind:string ->
  ?instance_cache_capacity:int ->
  ?superclass:Loid.t ->
  ?flags:flags ->
  ?default_magistrates:Loid.t list ->
  ?default_scheduler:Loid.t ->
  ?binding_policy:Legion_sec.Policy.t ->
  class_id:int64 ->
  unit ->
  Value.t
(** Initial unit state for a class object's OPR. [instance_units]
    defaults to [[Well_known.unit_object]]; [instance_kind] to
    {!Well_known.kind_app}; [interface] to an empty interface named
    ["class<id>"]. [binding_policy] (default [Allow_all]) is the MayI
    judged on the class's binding path: a [Create] or [GetBinding]
    whose environment the policy denies is answered [Err.Denied] — the
    caller never receives a binding. Derived classes (and autonomic
    clones) inherit the parent's policy; [SetBindingPolicy(policy)]
    replaces it at runtime, gated by the policy being replaced. *)

val factory : Impl.factory
val register : unit -> unit
