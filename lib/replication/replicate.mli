(** System-level object replication (paper §4.3).

    "A Legion object — an entity named by a single LOID — can be
    implemented as a set of processes without changing the
    application-level semantics for communicating with the object.
    Replicating an object at the Legion level is a matter of creating an
    Object Address with multiple physical addresses in its list,
    assigning the address semantic appropriately, and binding the LOID
    of the object to this Object Address."

    Two deployment paths are provided: a direct one for bootstrap-style
    code that owns the runtime, and a protocol one that goes through
    Host Objects and registers the multi-address binding with the
    object's class, as a running system would. *)

module Loid := Legion_naming.Loid
module Address := Legion_naming.Address
module Runtime := Legion_rt.Runtime
module Opr := Legion_core.Opr

val deploy :
  Runtime.t ->
  loid:Loid.t ->
  opr:Opr.t ->
  hosts:Legion_net.Network.host_id list ->
  semantic:Address.semantic ->
  (Runtime.proc list * Address.t, string) result
(** Activate one process per host (all sharing [loid]) and build the
    replicated Object Address. Fails — undoing any partial spawns — if
    a unit is unregistered, a state fails to restore, or [hosts] is
    empty. *)

val deploy_via_hosts :
  Runtime.ctx ->
  loid:Loid.t ->
  opr:Opr.t ->
  host_objects:Loid.t list ->
  semantic:Address.semantic ->
  ?min_replicas:int ->
  ?register_with:Loid.t ->
  ((Address.t * Loid.t list, Legion_rt.Err.t) result -> unit) ->
  unit
(** Ask each Host Object to [Activate] a replica, assemble the Object
    Address from the replies (in host-list order), and — when
    [register_with] names a class — record the address there via
    [RegisterInstance] so the binding machinery serves it.

    Partial deployment succeeds: hosts that fail to activate are
    skipped (nothing is undone) and reported as the second component of
    the result — the LOIDs of the Host Objects that failed, for the
    caller (or a {!Repair} manager) to replace later. The deployment
    as a whole fails, with the first error observed, only when fewer
    than [min_replicas] (default: all of [host_objects]) replicas
    activate. *)
