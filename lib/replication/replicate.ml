module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Address = Legion_naming.Address
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Impl = Legion_core.Impl
module Opr = Legion_core.Opr

let deploy rt ~loid ~opr ~hosts ~semantic =
  if hosts = [] then Error "Replicate.deploy: no hosts"
  else
    let rec spawn_all acc = function
      | [] -> Ok (List.rev acc)
      | host :: rest -> (
          match Impl.activate rt ~host ~loid opr with
          | Ok proc -> spawn_all (proc :: acc) rest
          | Error msg ->
              List.iter (Runtime.kill rt) acc;
              Error msg)
    in
    match spawn_all [] hosts with
    | Error _ as e -> e
    | Ok procs ->
        let elements = List.map Runtime.element_of procs in
        Ok (procs, Address.make ~semantic elements)

let deploy_via_hosts ctx ~loid ~opr ~host_objects ~semantic ?min_replicas
    ?register_with k =
  if host_objects = [] then k (Error (Err.Bad_args "no host objects"))
  else
    let want = Option.value ~default:(List.length host_objects) min_replicas in
    let blob = Value.Blob (Opr.to_blob opr) in
    (* Walk the host objects, accumulating both successful elements and
       failed hosts; decide only at the end. A dead or refusing host
       must not undo the replicas that did come up — a degraded set
       that still meets [min_replicas] is a success the caller can
       repair later, not a failure to roll back. *)
    let rec activate_all ~elements ~ok ~failed ~first_err = function
      | [] ->
          if ok >= want then finish (List.rev elements) (List.rev failed)
          else
            k
              (Error
                 (Option.value first_err
                    ~default:(Err.Internal "no replicas activated")))
      | h :: rest ->
          Runtime.invoke ctx ~dst:h ~meth:"Activate"
            ~args:[ Loid.to_value loid; blob ]
            (fun r ->
              let fail e =
                let first_err =
                  match first_err with None -> Some e | some -> some
                in
                activate_all ~elements ~ok ~failed:(h :: failed) ~first_err
                  rest
              in
              match r with
              | Error e -> fail e
              | Ok reply -> (
                  match
                    Result.bind (Value.field reply "addr") (fun v ->
                        match Address.of_value v with
                        | Ok a -> Ok a
                        | Error m -> Error (`Wrong_type m))
                  with
                  | Ok addr ->
                      activate_all
                        ~elements:(Address.elements addr @ elements)
                        ~ok:(ok + 1) ~failed ~first_err rest
                  | Error _ -> fail (Err.Internal "bad Activate reply")))
    and finish elements failed =
      let address = Address.make ~semantic elements in
      match register_with with
      | None -> k (Ok (address, failed))
      | Some cls ->
          Runtime.invoke ctx ~dst:cls ~meth:"RegisterInstance"
            ~args:[ Loid.to_value loid; Address.to_value address ]
            (fun r ->
              match r with
              | Error e -> k (Error e)
              | Ok _ -> k (Ok (address, failed)))
    in
    activate_all ~elements:[] ~ok:0 ~failed:[] ~first_err:None host_objects
