module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Address = Legion_naming.Address
module Env = Legion_sec.Env
module Network = Legion_net.Network
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Event = Legion_obs.Event
module Impl = Legion_core.Impl
module Opr = Legion_core.Opr
module Script = Legion_sim.Script

type t = {
  ctx : Runtime.ctx;
  rt : Runtime.t;
  net : Network.t;
  loid : Loid.t;
  opr : Opr.t;  (* identity template: kind/units/agent/capacity *)
  semantic : Address.semantic;
  r : int;
  register_with : Loid.t option;
  miss_threshold : int;
  mutable pool : Network.host_id list;
  (* [replicas] keeps the member order (it is the Object Address
     element order and the snapshot preference order); [rep_idx]
     mirrors it for O(1) membership tests, which the network-wide host
     watcher performs on every host transition. *)
  mutable replicas : (Network.host_id * Runtime.proc) list;
  rep_idx : (Network.host_id, Runtime.proc) Hashtbl.t;
  misses : (Network.host_id, int) Hashtbl.t;
  mutable losses : int;
  mutable repairs : int;
  mutable armed : bool;
  mutable watcher : Network.watcher option;
}

let replica_count m = List.length m.replicas
let replica_hosts m = List.map fst m.replicas
let losses m = m.losses
let repairs m = m.repairs
let target m = m.r

let address m =
  Address.make ~semantic:m.semantic
    (List.map (fun (_, p) -> Runtime.element_of p) m.replicas)

let env_of m = Env.of_self (Runtime.proc_loid m.ctx.Runtime.self)

let emit m kind =
  Runtime.emit m.rt ~host:(Runtime.proc_host m.ctx.Runtime.self) kind

let reregister m k =
  match m.register_with with
  | None -> k (Ok ())
  | Some cls ->
      Runtime.invoke m.ctx ~dst:cls ~meth:"RegisterInstance"
        ~args:[ Loid.to_value m.loid; Address.to_value (address m) ]
        (fun r -> match r with Ok _ -> k (Ok ()) | Error e -> k (Error e))

let deploy ~ctx ~net ~loid ~opr ~hosts ~pool ~semantic ?register_with
    ?(miss_threshold = 2) k =
  let rt = ctx.Runtime.rt in
  match Replicate.deploy rt ~loid ~opr ~hosts ~semantic with
  | Error msg -> k (Error (Err.Internal msg))
  | Ok (procs, _address) ->
      let m =
        {
          ctx;
          rt;
          net;
          loid;
          opr;
          semantic;
          r = List.length hosts;
          register_with;
          miss_threshold;
          pool;
          replicas = List.combine hosts procs;
          rep_idx =
            (let idx = Hashtbl.create 8 in
             List.iter2 (Hashtbl.replace idx) hosts procs;
             idx);
          misses = Hashtbl.create 8;
          losses = 0;
          repairs = 0;
          armed = false;
          watcher = None;
        }
      in
      reregister m (fun r -> k (Result.map (fun () -> m) r))

(* A spare must be up and not already hosting a member of the set:
   co-locating two replicas would let one host failure take out both. *)
let pick_spare m =
  List.find_opt
    (fun h -> Network.host_is_up m.net h && not (Hashtbl.mem m.rep_idx h))
    m.pool

(* Restore the replication factor after losing the replica on
   [dead_host]: drop it from the set, pull the freshest surviving state
   (the survivors all acked every committed write, so any of them is
   current — take the first that answers), open a new incarnation so
   the dead placement and any stale address fence with [Stale_epoch],
   carry the survivors across, activate the replacement from the copied
   state on a spare host, and re-register the rebuilt multi-element
   Object Address with the responsible class. *)
let repair m dead_host k =
  match Hashtbl.find_opt m.rep_idx dead_host with
  | None -> k (Ok false)
  | Some _dead_proc -> (
      m.replicas <- List.remove_assoc dead_host m.replicas;
      Hashtbl.remove m.rep_idx dead_host;
      Hashtbl.remove m.misses dead_host;
      m.losses <- m.losses + 1;
      Runtime.mark_dead m.rt m.loid;
      emit m
        (Event.Replica_lost
           {
             loid = m.loid;
             host = dead_host;
             remaining = List.length m.replicas;
           });
      match m.replicas with
      | [] -> k (Error (Err.Internal "replica repair: no survivors"))
      | survivors ->
          let budget = (Runtime.config m.rt).Runtime.call_timeout /. 2. in
          let env = env_of m in
          let replace states =
            match pick_spare m with
            | None -> k (Error (Err.Refused "replica repair: no spare host"))
            | Some spare ->
                let epoch = Runtime.bump_epoch m.rt m.loid in
                List.iter (fun (_, p) -> Runtime.refresh_epoch m.rt p) m.replicas;
                let opr' =
                  Opr.make ~states ?binding_agent:m.opr.Opr.binding_agent
                    ?cache_capacity:m.opr.Opr.cache_capacity ~kind:m.opr.Opr.kind
                    ~units:m.opr.Opr.units ()
                in
                (* spawn inside activate defaults to the freshly bumped
                   current epoch, so the replacement belongs to the new
                   incarnation. *)
                match Impl.activate m.rt ~host:spare ~loid:m.loid opr' with
                | Error msg -> k (Error (Err.Internal msg))
                | Ok proc ->
                    m.replicas <- m.replicas @ [ (spare, proc) ];
                    Hashtbl.replace m.rep_idx spare proc;
                    m.repairs <- m.repairs + 1;
                    emit m
                      (Event.Replica_repair
                         { loid = m.loid; host = spare; epoch });
                    reregister m (fun r -> k (Result.map (fun () -> true) r))
          in
          let rec snapshot = function
            | [] ->
                k
                  (Error
                     (Err.Unreachable
                        "replica repair: no survivor answered SaveState"))
            | (_, p) :: rest ->
                let addr = Address.make [ Runtime.element_of p ] in
                Runtime.invoke_address m.ctx ~timeout:budget ~address:addr
                  ~dst:m.loid ~meth:"SaveState" ~args:[] ~env (fun r ->
                    match r with
                    | Ok (Value.Record states) -> replace states
                    | Ok _ | Error _ -> snapshot rest)
          in
          snapshot survivors)

let notify_dead m h k = repair m h k

(* One failure-detection pass: probe every replica in place with a
   cheap builtin over its own single-element address (short,
   single-attempt budget — a scan over possibly-dead hosts must not
   burn the full retransmission policy per member). [miss_threshold]
   consecutive missed probes confirm the replica dead and trigger
   repair; any answer resets the count. Repairs run sequentially so two
   losses in one sweep still restore the factor one at a time. *)
let sweep m k =
  if not m.armed then k 0
  else begin
    let budget = (Runtime.config m.rt).Runtime.call_timeout /. 4. in
    let env = env_of m in
    let rec probe repaired = function
      | [] -> k repaired
      | (h, p) :: rest ->
          if not (Hashtbl.mem m.rep_idx h) then probe repaired rest
          else
            let addr = Address.make [ Runtime.element_of p ] in
            Runtime.invoke_address m.ctx ~timeout:budget ~address:addr
              ~dst:m.loid ~meth:"GetMethodNames" ~args:[] ~env (fun r ->
                match r with
                | Ok _ ->
                    Hashtbl.remove m.misses h;
                    probe repaired rest
                | Error _ ->
                    let n =
                      1 + Option.value ~default:0 (Hashtbl.find_opt m.misses h)
                    in
                    Hashtbl.replace m.misses h n;
                    if n >= m.miss_threshold then
                      repair m h (fun r ->
                          probe
                            (repaired + match r with Ok true -> 1 | _ -> 0)
                            rest)
                    else probe repaired rest)
    in
    probe 0 m.replicas
  end

let start m ~period ~until =
  m.armed <- true;
  (if m.watcher = None then
     (* Instant path: a confirmed host-down transition repairs without
        waiting for the probe counter — the sweep remains the backstop
        for silent failures the network layer never reports. *)
     let w =
       Network.add_host_watcher m.net (fun h ~up ->
           if m.armed && (not up) && Hashtbl.mem m.rep_idx h then
             repair m h (fun _ -> ()))
     in
     m.watcher <- Some w);
  Script.every (Runtime.sim m.rt) ~period ~until (fun () ->
      sweep m (fun _ -> ()))

let stop m =
  m.armed <- false;
  match m.watcher with
  | None -> ()
  | Some w ->
      (* Deregister, not just disarm: a disarmed-but-registered closure
         survives the manager and fires on every later host transition
         — repeated start/stop cycles used to accumulate them. *)
      Network.remove_watcher m.net w;
      m.watcher <- None

let reconcile_on_heal ctx ~net ~groups =
  let env = Env.of_self (Runtime.proc_loid ctx.Runtime.self) in
  Network.add_partition_watcher net (fun _a _b ~cut ->
      if not cut then
        List.iter
          (fun g ->
            Runtime.invoke ctx ~dst:g ~meth:"Reconcile" ~args:[] ~env (fun _ ->
                ()))
          groups)
