module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Env = Legion_sec.Env
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Event = Legion_obs.Event
module Impl = Legion_core.Impl
module C = Legion_core.Convert

let unit_name = "legion.group"

type mode = All | Quorum | Any

let mode_to_string = function All -> "all" | Quorum -> "quorum" | Any -> "any"

let mode_of_string = function
  | "all" -> Ok All
  | "quorum" -> Ok Quorum
  | "any" -> Ok Any
  | s -> Error (Printf.sprintf "unknown group mode %S" s)

type state = {
  mutable members : Loid.t list;
  mutable mode : mode;
  mutable fenced : bool;  (** Quorum writes probe-then-apply and fence minorities. *)
  mutable mepoch : int;  (** Membership epoch: bumped on Add/Remove. *)
  mutable wseq : int;  (** Sequence number of the last committed fenced write. *)
  mutable acked : (Loid.t * int) list;  (** Highest [wseq] acked per member. *)
}

let factory (ctx : Runtime.ctx) : Impl.part =
  let self = Runtime.proc_loid ctx.Runtime.self in
  let st =
    { members = []; mode = All; fenced = false; mepoch = 0; wseq = 0; acked = [] }
  in
  let emit kind =
    Runtime.emit ctx.Runtime.rt ~host:(Runtime.proc_host ctx.Runtime.self) kind
  in
  let get_ack m =
    match List.find_opt (fun (x, _) -> Loid.equal x m) st.acked with
    | Some (_, s) -> s
    | None -> 0
  in
  let set_ack m s =
    st.acked <- (m, s) :: List.filter (fun (x, _) -> not (Loid.equal x m)) st.acked
  in

  let add_member _ctx args _env k =
    match args with
    | [ v ] -> (
        match C.loid_arg v with
        | Error msg -> Impl.bad_args k msg
        | Ok m ->
            if not (List.exists (Loid.equal m) st.members) then begin
              st.members <- st.members @ [ m ];
              st.mepoch <- st.mepoch + 1
            end;
            k Impl.ok_unit)
    | _ -> Impl.bad_args k "AddMember expects one loid"
  in
  let remove_member _ctx args _env k =
    match args with
    | [ v ] -> (
        match C.loid_arg v with
        | Error msg -> Impl.bad_args k msg
        | Ok m ->
            if List.exists (Loid.equal m) st.members then begin
              st.members <- List.filter (fun x -> not (Loid.equal x m)) st.members;
              st.mepoch <- st.mepoch + 1
            end;
            k Impl.ok_unit)
    | _ -> Impl.bad_args k "RemoveMember expects one loid"
  in
  let list_members _ctx args _env k =
    match args with
    | [] -> k (Ok (C.vloids st.members))
    | _ -> Impl.bad_args k "ListMembers takes no arguments"
  in
  let set_mode _ctx args _env k =
    match args with
    | [ Value.Str s ] -> (
        match mode_of_string s with
        | Ok m ->
            st.mode <- m;
            k Impl.ok_unit
        | Error msg -> Impl.bad_args k msg)
    | _ -> Impl.bad_args k "SetMode expects one string"
  in
  let set_fenced _ctx args _env k =
    match args with
    | [ Value.Bool b ] ->
        st.fenced <- b;
        k Impl.ok_unit
    | _ -> Impl.bad_args k "SetFenced expects one bool"
  in
  let get_epoch _ctx args _env k =
    match args with
    | [] ->
        k
          (Ok
             (Value.Record
                [ ("epoch", Value.Int st.mepoch); ("wseq", Value.Int st.wseq) ]))
    | _ -> Impl.bad_args k "GetEpoch takes no arguments"
  in

  (* Legacy fan-out: apply at every member immediately, combine per the
     group's mode. Under partition this diverges — the minority-side
     members that happen to be reachable still mutate even when the
     overall call fails. Kept as the unfenced baseline. *)
  let loose_invoke meth fwd_args env k =
    match st.members with
    | [] -> k (Error (Err.Refused "group has no members"))
    | members ->
        let n = List.length members in
        let ok = ref 0 and failed = ref 0 in
        let first_value = ref None in
        let decided = ref false in
        let denv = Env.delegate env ~calling:self in
        (* Reply the moment the outcome is decided: a slow or dead
           member must not hold a quorum hostage. Late replies are
           counted but no longer observable. *)
        let succeed () =
          decided := true;
          k
            (Ok
               (Value.Record
                  [
                    ("value", Option.value ~default:Value.Unit !first_value);
                    ("ok", Value.Int !ok);
                    ("failed", Value.Int !failed);
                  ]))
        in
        let fail () =
          decided := true;
          k
            (Error
               (Err.Refused
                  (Printf.sprintf "group %s-mode failed: %d/%d ok"
                     (mode_to_string st.mode) !ok n)))
        in
        let check () =
          if not !decided then
            match st.mode with
            | All -> if !failed > 0 then fail () else if !ok = n then succeed ()
            | Quorum ->
                if 2 * !ok > n then succeed ()
                else if 2 * (n - !failed) <= n then fail ()
            | Any -> if !ok >= 1 then succeed () else if !failed = n then fail ()
        in
        List.iter
          (fun m ->
            Runtime.invoke ctx ~dst:m ~meth ~args:fwd_args ~env:denv (fun r ->
                (match r with
                | Ok v ->
                    incr ok;
                    if !first_value = None then first_value := Some v
                | Error _ -> incr failed);
                check ()))
          members
  in

  (* Fenced quorum: two-phase. Probe every member first (cheap builtin,
     short single-attempt budget); if fewer than a strict majority of
     the FULL membership answer, reject with the typed, retryable
     [No_quorum] before applying anything — a minority partition fences
     instead of diverging. Only then fan the write to the reachable
     members, and commit only when a majority acked. *)
  let fenced_invoke meth fwd_args env k =
    match st.members with
    | [] -> k (Error (Err.Refused "group has no members"))
    | members ->
        let n = List.length members in
        let need = (n / 2) + 1 in
        let cfg = Runtime.config ctx.Runtime.rt in
        let probe_t = cfg.Runtime.call_timeout /. 4. in
        let denv = Env.delegate env ~calling:self in
        let no_quorum have =
          emit (Event.No_quorum { loid = self; have; need });
          k (Error (Err.No_quorum { have; need; epoch = st.mepoch }))
        in
        let apply targets =
          let reach_n = List.length targets in
          let seq = st.wseq + 1 in
          let acks = ref 0 and failed = ref 0 in
          let first_value = ref None in
          let decided = ref false in
          let check () =
            if not !decided then
              if !acks >= need then begin
                decided := true;
                st.wseq <- seq;
                k
                  (Ok
                     (Value.Record
                        [
                          ( "value",
                            Option.value ~default:Value.Unit !first_value );
                          ("ok", Value.Int !acks);
                          ("failed", Value.Int !failed);
                        ]))
              end
              else if !acks + (reach_n - !acks - !failed) < need then begin
                decided := true;
                no_quorum !acks
              end
          in
          List.iter
            (fun m ->
              Runtime.invoke ctx ~dst:m ~meth ~args:fwd_args ~env:denv (fun r ->
                  (match r with
                  | Ok v ->
                      incr acks;
                      (* Even a late ack means the member applied write
                         [seq] — anti-entropy uses this to pick the
                         freshest digest. *)
                      set_ack m seq;
                      if !first_value = None then first_value := Some v
                  | Error _ -> incr failed);
                  check ()))
            targets
        in
        let reachable = ref [] and probed = ref 0 in
        List.iter
          (fun m ->
            Runtime.invoke ctx ~timeout:probe_t ~max_rebinds:1 ~dst:m
              ~meth:"GetMethodNames" ~args:[] ~env:denv (fun r ->
                incr probed;
                (match r with
                | Ok _ -> reachable := m :: !reachable
                | Error _ -> ());
                if !probed = n then begin
                  let targets = List.rev !reachable in
                  let have = List.length targets in
                  if have < need then no_quorum have else apply targets
                end))
          members
  in

  let invoke_members _ctx args env k =
    match args with
    | [ Value.Str meth; Value.List fwd_args ] ->
        if st.fenced && st.mode = Quorum then fenced_invoke meth fwd_args env k
        else loose_invoke meth fwd_args env k
    | _ -> Impl.bad_args k "Invoke expects (meth: str, args: list)"
  in

  (* Anti-entropy: pull a [SaveState] digest from every reachable
     member, elect a winner — in quorum mode the plurality digest
     (acked sequence breaks ties), otherwise the freshest by acked
     write sequence (plurality breaks ties, then member order) — push
     it to every divergent member via [RestoreState], and report how
     many diverged and how many were repaired. Repeated sweeps drain
     the divergence count to zero once the partition heals. *)
  let reconcile _ctx args env k =
    match args with
    | [] -> (
        match st.members with
        | [] -> k (Error (Err.Refused "group has no members"))
        | members ->
            let n = List.length members in
            let cfg = Runtime.config ctx.Runtime.rt in
            let probe_t = cfg.Runtime.call_timeout /. 2. in
            let denv = Env.delegate env ~calling:self in
            let digests = ref [] and answered = ref 0 in
            let finish () =
              match List.rev !digests with
              | [] -> k (Error (Err.Refused "reconcile: no reachable members"))
              | (m0, d0) :: rest as ds ->
                  let count_of d =
                    List.length
                      (List.filter (fun (_, d') -> Value.equal d' d) ds)
                  in
                  let winner, wdigest =
                    List.fold_left
                      (fun (bm, bd) (m, d) ->
                        let better =
                          if st.mode = Quorum then
                            (* A quorum-acked write lives on a majority
                               of members, so the plurality digest can
                               never miss one — while a member restored
                               from a stale checkpoint can carry a
                               misleadingly high ack and would roll the
                               group back if the ack decided alone. *)
                            let c = count_of d and bc = count_of bd in
                            c > bc || (c = bc && get_ack m > get_ack bm)
                          else
                            let a = get_ack m and ba = get_ack bm in
                            a > ba || (a = ba && count_of d > count_of bd)
                        in
                        if better then (m, d) else (bm, bd))
                      (m0, d0) rest
                  in
                  let divergent =
                    List.filter (fun (_, d) -> not (Value.equal d wdigest)) ds
                  in
                  let nd = List.length divergent in
                  let wack = get_ack winner in
                  let finish_push updated =
                    emit
                      (Event.Reconcile
                         { loid = self; divergent = nd; updated });
                    k
                      (Ok
                         (Value.Record
                            [
                              ("divergent", Value.Int nd);
                              ("updated", Value.Int updated);
                            ]))
                  in
                  if nd = 0 then finish_push 0
                  else begin
                    let updated = ref 0 and pushed = ref 0 in
                    List.iter
                      (fun (m, _) ->
                        Runtime.invoke ctx ~dst:m ~meth:"RestoreState"
                          ~args:[ wdigest ] ~env:denv (fun r ->
                            incr pushed;
                            (match r with
                            | Ok _ ->
                                incr updated;
                                set_ack m wack
                            | Error _ -> ());
                            if !pushed = nd then finish_push !updated))
                      divergent
                  end
            in
            List.iter
              (fun m ->
                Runtime.invoke ctx ~timeout:probe_t ~max_rebinds:1 ~dst:m
                  ~meth:"SaveState" ~args:[] ~env:denv (fun r ->
                    incr answered;
                    (match r with
                    | Ok d -> digests := (m, d) :: !digests
                    | Error _ -> ());
                    if !answered = n then finish ()))
              members)
    | _ -> Impl.bad_args k "Reconcile takes no arguments"
  in

  let save () =
    Value.Record
      [
        ("members", C.vloids st.members);
        ("mode", Value.Str (mode_to_string st.mode));
        ("fenced", Value.Bool st.fenced);
        ("mepoch", Value.Int st.mepoch);
        ("wseq", Value.Int st.wseq);
        ( "acked",
          Value.List
            (List.map
               (fun (m, s) ->
                 Value.Record [ ("m", Loid.to_value m); ("s", Value.Int s) ])
               st.acked) );
      ]
  in
  let restore v =
    let ( let* ) r f = Result.bind r f in
    let* members = C.loid_list_field v "members" in
    let* mode_s = C.str_field v "mode" in
    let* mode = mode_of_string mode_s in
    (* Pre-fencing checkpoints lack the newer fields; default them. *)
    let int_or d name =
      match Value.field_opt v name with
      | None -> Ok d
      | Some (Value.Int n) -> Ok n
      | Some _ -> Error (Printf.sprintf "field %s: not an int" name)
    in
    let* fenced = C.bool_field ~default:false v "fenced" in
    let* mepoch = int_or 0 "mepoch" in
    let* wseq = int_or 0 "wseq" in
    let acked =
      match Value.field_opt v "acked" with
      | Some (Value.List l) ->
          List.filter_map
            (fun e ->
              match (C.loid_field e "m", C.int_field e "s") with
              | Ok m, Ok s -> Some (m, s)
              | _ -> None)
            l
      | _ -> []
    in
    st.members <- members;
    st.mode <- mode;
    st.fenced <- fenced;
    st.mepoch <- mepoch;
    st.wseq <- wseq;
    st.acked <- acked;
    Ok ()
  in
  Impl.part
    ~methods:
      [
        ("AddMember", add_member);
        ("RemoveMember", remove_member);
        ("ListMembers", list_members);
        ("SetMode", set_mode);
        ("SetFenced", set_fenced);
        ("GetEpoch", get_epoch);
        ("Invoke", invoke_members);
        ("Reconcile", reconcile);
      ]
    ~save ~restore unit_name

let register () = Impl.register unit_name factory
