(** Self-healing replica sets (§4.3 made durable).

    {!Replicate} builds the multi-address Object Address but leaves it
    static: lose a replica's host and the set silently runs degraded
    until a second loss kills the object. This module is the manager
    that closes the loop — it owns the replica set of one LOID and
    restores the replication factor whenever a member is confirmed
    dead:

    + detect — a {!Legion_net.Network} host-down transition (instant
      path) or [miss_threshold] consecutive failed probes in a periodic
      {!sweep} (backstop for silent failures) confirm a replica dead; a
      [ReplicaLost] event is traced and the MTTR clock starts;
    + copy — the freshest surviving state is pulled with [SaveState]
      over the survivor's own single-element address (every survivor
      acked every committed write, so the first answer is current);
    + fence — {!Legion_rt.Runtime.bump_epoch} opens a new incarnation:
      the dead placement and any stale cached address now answer
      [Stale_epoch], while {!Legion_rt.Runtime.refresh_epoch} carries
      the legitimate survivors across;
    + replace — the copied state is activated on a spare host (up, not
      already hosting a member) under the new epoch, the rebuilt
      multi-element address is re-registered with the responsible
      class, and a [ReplicaRepair] event closes the episode.

    Anti-entropy for application-level groups rides the same watcher
    idiom: {!reconcile_on_heal} hooks partition heals to sweep
    [Reconcile] over {!Group_part} heads, draining post-partition
    divergence to zero. *)

module Loid := Legion_naming.Loid
module Address := Legion_naming.Address
module Network := Legion_net.Network
module Runtime := Legion_rt.Runtime
module Err := Legion_rt.Err
module Opr := Legion_core.Opr

type t
(** The manager for one replicated LOID. *)

val deploy :
  ctx:Runtime.ctx ->
  net:Network.t ->
  loid:Loid.t ->
  opr:Opr.t ->
  hosts:Network.host_id list ->
  pool:Network.host_id list ->
  semantic:Address.semantic ->
  ?register_with:Loid.t ->
  ?miss_threshold:int ->
  ((t, Err.t) result -> unit) ->
  unit
(** Activate one replica per host (via {!Replicate.deploy}), register
    the multi-element address with [register_with] when given, and
    return the armed-but-idle manager. [pool] lists candidate
    replacement hosts (a superset of [hosts] is fine — occupied ones
    are skipped). [miss_threshold] (default 2) is the consecutive
    probe-miss count that confirms a replica dead. *)

val start : t -> period:float -> until:float -> unit
(** Arm the manager: install the host-down watcher and schedule
    probe {!sweep}s every [period] seconds until [until]. *)

val stop : t -> unit
(** Disarm: scheduled sweeps become no-ops and the host-down watcher is
    deregistered from the network (a later {!start} re-installs it), so
    repeated start/stop cycles do not accumulate watcher closures. *)

val sweep : t -> (int -> unit) -> unit
(** One failure-detection pass; the continuation receives the number
    of repairs performed. No-op (0) while stopped. *)

val notify_dead : t -> Network.host_id -> ((bool, Err.t) result -> unit) -> unit
(** Direct wiring for an external failure detector: treat the host as
    confirmed dead and repair now. [Ok false] when no replica lives
    there; [Ok true] after a successful repair. *)

val address : t -> Address.t
(** The current multi-element Object Address of the set. *)

val replica_count : t -> int
val replica_hosts : t -> Network.host_id list
val target : t -> int
(** The replication factor being maintained. *)

val losses : t -> int
val repairs : t -> int
(** Lifetime counters of confirmed losses and completed repairs. *)

val reconcile_on_heal :
  Runtime.ctx -> net:Network.t -> groups:Loid.t list -> Network.watcher
(** Install a partition watcher that, on every heal transition, invokes
    [Reconcile] on each listed {!Group_part} head — the anti-entropy
    trigger that converges divergent members once connectivity returns.
    Returns the watcher handle; callers that outlive their group set
    must pass it to {!Network.remove_watcher}, otherwise each call
    leaks a permanently firing closure. *)
