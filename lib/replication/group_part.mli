(** Application-level object groups ("legion.group").

    The paper's §4.3 closes: "multiple Legion objects, each with its
    own LOID, can work together to perform a single logical function,
    but in this case the management of the 'object group' and the
    semantics of communication with the group is left to the
    application programmer." This unit is that application-level
    manager, built purely on the public object model — a demonstration
    that the core mechanisms suffice.

    A group object holds member LOIDs and forwards invocations:

    - [AddMember(obj: loid): unit], [RemoveMember(obj: loid): unit],
      [ListMembers(): list<loid>], [SetMode(mode: str): unit] with
      modes ["all"], ["quorum"], ["any"]; membership changes bump the
      group's {e membership epoch} ([GetEpoch(): {epoch, wseq}]);
    - [Invoke(meth: str, args: list<any>): record] — forward to every
      member under the caller's delegated environment and combine:
      [all] succeeds iff every member replied Ok; [quorum] iff a strict
      majority did; [any] iff at least one did. The reply carries
      [{value, ok: int, failed: int}] where [value] is the first
      successful member reply.

    {2 Quorum fencing}

    The loose fan-out applies writes at whatever members it can reach
    {e before} counting acks, so a partitioned minority still mutates
    its reachable members even when the overall call fails — the
    classic split-brain divergence. [SetFenced(on: bool)] (default
    off, [quorum] mode only) switches [Invoke] to a two-phase
    discipline: probe every member first with a short single-attempt
    builtin call, and if fewer than a strict majority of the {e full}
    membership answer, reject with the typed, retryable
    [Err.No_quorum {have; need; epoch}] {e before anything is
    applied} (a [NoQuorum] event is traced). Otherwise the write fans
    only to the reachable members and commits — bumping the group's
    write sequence and recording the ack per member — only once a
    majority acked.

    {2 Anti-entropy}

    [Reconcile(): {divergent: int, updated: int}] pulls a [SaveState]
    digest from every reachable member, elects the freshest (highest
    acked write sequence, ties toward the plurality digest), pushes it
    to divergent members via [RestoreState], and traces a [Reconcile]
    event. Sweeping it after a partition heals drains the divergence
    count to zero — stale minority members converge onto the majority
    state.

    Unlike §4.3 system-level replication (one LOID, many processes),
    members here keep their LOIDs; successful [all]-mode writes keep
    member state convergent as long as members apply deterministic
    updates. *)

module Impl := Legion_core.Impl

val unit_name : string

val factory : Impl.factory
(** Fresh state: no members, mode [all], fencing off, epoch 0. *)

val register : unit -> unit
