type entry = { binding : Binding.t; mutable last_used : int }

type t = {
  capacity : int option;
  entries : entry Loid.Table.t;
  mutable tick : int;
  mutable lookups : int;
  mutable hits : int;
  mutable evictions : int;
}

let create ?capacity () =
  (match capacity with
  | Some c when c < 0 -> invalid_arg "Cache.create: negative capacity"
  | _ -> ());
  {
    capacity;
    entries = Loid.Table.create ();
    tick = 0;
    lookups = 0;
    hits = 0;
    evictions = 0;
  }

let touch t e =
  t.tick <- t.tick + 1;
  e.last_used <- t.tick

let find t ~now loid =
  t.lookups <- t.lookups + 1;
  match Loid.Table.find t.entries loid with
  | None -> None
  | Some e ->
      if Binding.is_valid ~now e.binding then begin
        t.hits <- t.hits + 1;
        touch t e;
        Some e.binding
      end
      else begin
        Loid.Table.remove t.entries loid;
        None
      end

let evict_lru t =
  let victim =
    Loid.Table.fold
      (fun loid e acc ->
        match acc with
        | Some (_, best) when best <= e.last_used -> acc
        | _ -> Some (loid, e.last_used))
      t.entries None
  in
  match victim with
  | None -> ()
  | Some (loid, _) ->
      Loid.Table.remove t.entries loid;
      t.evictions <- t.evictions + 1

let add t ~now binding =
  if Binding.is_valid ~now binding then begin
    match t.capacity with
    | Some 0 -> ()
    | _ ->
        let loid = Binding.loid binding in
        let already = Loid.Table.mem t.entries loid in
        (match t.capacity with
        | Some c when (not already) && Loid.Table.length t.entries >= c ->
            evict_lru t
        | _ -> ());
        let e = { binding; last_used = 0 } in
        touch t e;
        Loid.Table.set t.entries loid e
  end

let invalidate t loid = Loid.Table.remove t.entries loid

let invalidate_exact t binding =
  let loid = Binding.loid binding in
  match Loid.Table.find t.entries loid with
  | Some e when Binding.equal e.binding binding -> Loid.Table.remove t.entries loid
  | Some _ | None -> ()

let find_refresh t ~now ~stale =
  let loid = Binding.loid stale in
  t.lookups <- t.lookups + 1;
  match Loid.Table.find t.entries loid with
  | None -> None
  | Some e ->
      if
        (not (Binding.is_valid ~now e.binding))
        || Binding.equal e.binding stale
      then begin
        Loid.Table.remove t.entries loid;
        None
      end
      else begin
        t.hits <- t.hits + 1;
        touch t e;
        Some e.binding
      end

let mem t ~now loid =
  match Loid.Table.find t.entries loid with
  | Some e ->
      if Binding.is_valid ~now e.binding then true
      else begin
        Loid.Table.remove t.entries loid;
        false
      end
  | None -> false

let length t = Loid.Table.length t.entries
let capacity t = t.capacity

let clear t =
  List.iter
    (fun (loid, _) -> Loid.Table.remove t.entries loid)
    (Loid.Table.to_list t.entries);
  t.tick <- 0;
  t.lookups <- 0;
  t.hits <- 0;
  t.evictions <- 0

let lookups t = t.lookups
let hits t = t.hits

let hit_rate t =
  if t.lookups = 0 then 0.0 else float_of_int t.hits /. float_of_int t.lookups

let evictions t = t.evictions
