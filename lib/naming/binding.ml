module Value = Legion_wire.Value

type t = {
  loid : Loid.t;
  address : Address.t;
  expires : float option;
  epoch : int;
}

let make ?expires ?(epoch = 0) ~loid ~address () =
  { loid; address; expires; epoch }

let loid t = t.loid
let address t = t.address
let expires t = t.expires
let epoch t = t.epoch

let is_valid ~now t =
  match t.expires with None -> true | Some e -> now < e

let with_expiry t expires = { t with expires }

let equal a b =
  Loid.equal a.loid b.loid
  && Address.equal a.address b.address
  && Option.equal Float.equal a.expires b.expires
  && Int.equal a.epoch b.epoch

let pp ppf t =
  let pp_exp ppf = function
    | None -> Format.fprintf ppf "never"
    | Some e -> Format.fprintf ppf "%.3f" e
  in
  Format.fprintf ppf "%a->%a(exp:%a;e%d)" Loid.pp t.loid Address.pp t.address
    pp_exp t.expires t.epoch

let to_value t =
  Value.Record
    [
      ("loid", Loid.to_value t.loid);
      ("addr", Address.to_value t.address);
      ( "exp",
        match t.expires with
        | None -> Value.List []
        | Some e -> Value.List [ Value.Float e ] );
      ("epo", Value.Int t.epoch);
    ]

let of_value v =
  let ( let* ) r f = Result.bind r f in
  let err e = Format.asprintf "binding: %a" Value.pp_error e in
  let* loid_v = Result.map_error err (Value.field v "loid") in
  let* loid = Loid.of_value loid_v in
  let* addr_v = Result.map_error err (Value.field v "addr") in
  let* address = Address.of_value addr_v in
  let* exp_v = Result.map_error err (Value.field v "exp") in
  let* expires =
    match exp_v with
    | Value.List [] -> Ok None
    | Value.List [ Value.Float e ] -> Ok (Some e)
    | _ -> Error "binding: bad expiry"
  in
  (* Bindings minted before epochs existed decode as epoch 0. *)
  let epoch =
    match Value.field v "epo" with Ok (Value.Int e) -> e | _ -> 0
  in
  Ok { loid; address; expires; epoch }
