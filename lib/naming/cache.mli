(** Binding cache with LRU eviction and expiry.

    The paper's scalability story rests on caching bindings everywhere:
    inside each object's communication layer, inside Binding Agents, and
    inside class objects (§4.1.2, §5). This one structure serves all
    three. A bounded cache evicts the least-recently-used entry; expired
    bindings (per {!Binding.expires}) are never returned and are purged
    on access. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] of [None] (default) is unbounded. [Some 0] caches
    nothing. @raise Invalid_argument on negative capacity. *)

val find : t -> now:float -> Loid.t -> Binding.t option
(** Valid cached binding for the LOID, refreshing its recency. Expired
    entries are removed and reported as misses. *)

val add : t -> now:float -> Binding.t -> unit
(** Insert or replace. Expired bindings are ignored. May evict. *)

val invalidate : t -> Loid.t -> unit
(** Drop the LOID's entry, if any (InvalidateBinding(LOID) form). *)

val invalidate_exact : t -> Binding.t -> unit
(** Drop the entry only if it equals the given binding exactly
    (InvalidateBinding(binding) form, §3.6). *)

val find_refresh : t -> now:float -> stale:Binding.t -> Binding.t option
(** Lookup backing the GetBinding(binding) refresh form (§3.6): the
    target is [Binding.loid stale]. An entry equal to [stale] (or
    expired) is dropped and reported as a miss, so a refresh never
    re-serves the failing binding; a {e different} cached binding is a
    hit. Exactly one lookup is counted either way, keeping the §5
    hit-rate statistics honest. *)

val mem : t -> now:float -> Loid.t -> bool
(** Like {!find} but without counting a lookup or refreshing recency.
    Expired entries are purged, exactly as [find] would. *)

val length : t -> int
val capacity : t -> int option

val clear : t -> unit
(** Drop every entry and reset the LRU clock and all statistics to the
    freshly-created state. *)

(** {1 Statistics} *)

val lookups : t -> int
val hits : t -> int
val hit_rate : t -> float
(** [0.] when no lookups. *)

val evictions : t -> int
