(** Bindings (paper §3.5).

    A binding is a triple of a LOID, an Object Address, and the time at
    which the binding becomes invalid ([None] meaning "never explicitly
    invalid"). Bindings are first-class: they are passed around the
    system and cached inside objects, Binding Agents, and classes. *)

type t

val make :
  ?expires:float -> ?epoch:int -> loid:Loid.t -> address:Address.t -> unit -> t

val loid : t -> Loid.t
val address : t -> Address.t

val expires : t -> float option
(** Absolute simulated time of expiry, or [None] for never. *)

val epoch : t -> int
(** Incarnation number of the placement this binding points at
    (default [0]). Bumped each time a Magistrate reactivates the
    object, so a binding minted before a crash can be recognised as
    pointing at a fenced zombie placement. *)

val is_valid : now:float -> t -> bool
(** True when [expires] is [None] or strictly in the future. *)

val with_expiry : t -> float option -> t

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_value : t -> Legion_wire.Value.t
val of_value : Legion_wire.Value.t -> (t, string) result
