(** Scripted fault schedules over the virtual clock.

    A fault-injection experiment is a {e schedule}: at these instants,
    set the drop rate; between those, partition two sites; crash a host
    here and restart it there. The combinators below compile such
    schedules onto the engine's event queue. They know nothing about
    the network — actions are plain closures, so the same schedule
    shapes can drive drop rates, partitions, host power, or anything
    else an experiment wants to vary over time. Schedules are
    deterministic: same engine, same script, same firing order. *)

type t := Engine.t

val at : t -> time:float -> (unit -> unit) -> unit
(** Run the action at the absolute virtual [time]. *)

val every : t -> period:float -> ?start:float -> until:float -> (unit -> unit) -> unit
(** Run the action at [start] (default [period] from now) and then every
    [period] seconds, while the firing time is [<= until].
    @raise Invalid_argument if [period <= 0]. *)

val ramp :
  t ->
  start:float ->
  until:float ->
  steps:int ->
  values:float list ->
  (float -> unit) ->
  unit
(** Step through [values] left to right: value [i] is applied at
    [start +. i * (until - start) / steps]; when [values] is shorter
    than [steps + 1] the last value holds. A drop-rate ramp is
    [ramp eng ~start:0. ~until:60. ~steps:3 ~values:[0.; 0.05; 0.2; 0.]
    (Network.set_drop_rate net)].
    @raise Invalid_argument if [steps < 1] or [values = []]. *)

val load_ramp :
  t ->
  start:float ->
  until:float ->
  steps:int ->
  rates:float list ->
  (int -> unit) ->
  unit
(** An open-loop arrival generator whose rate (arrivals per virtual
    second) steps through [rates] on the same grid as {!ramp}. Arrivals
    are spaced [1 /. rate] apart and are {e not} gated on completions —
    this is the generator that drives a service past saturation, where a
    closed loop would self-throttle. On every rate step the pending
    arrival is cancelled and re-spaced to
    [max now (last_arrival + 1/new_rate)], so the new rate takes effect
    at the step boundary: a step up no longer stalls for one stale
    old-rate gap, and a step down never over-fires. The action receives
    the arrival's 1-based sequence number. A rate of [0.] pauses the
    generator for that step.
    @raise Invalid_argument if [steps < 1], [rates = []] or any rate is
    negative. *)

(** {1 Workload model}

    "Millions of users" means skew, not uniform load: object popularity
    is Zipf, demand breathes diurnally, and flash crowds land from
    specific places. {!drive} compiles such a workload onto the engine
    as an open-loop arrival stream; every draw comes from the caller's
    {!Legion_util.Prng.t}, so a seed fully determines the schedule. *)

type flash = {
  at : float;  (** When the crowd lands (absolute virtual time). *)
  width : float;  (** How long it stays. *)
  boost : float;  (** Rate multiplier while active ([>= 1]). *)
  site : int option;
      (** Where the crowd comes from: when set, the flash-attributable
          {e excess} traffic (fraction [(boost-1)/boost] of arrivals)
          originates at this site index; the base traffic keeps the
          ambient {!workload.site_mix}. [None] scales all sites. *)
}

type profile = {
  base_rate : float;  (** Mean arrivals per virtual second ([> 0]). *)
  diurnal_amplitude : float;
      (** Sinusoidal modulation depth in [0, 1): the instantaneous rate
          is [base *. (1 + a sin (2 pi t / period))]. [0.] disables. *)
  diurnal_period : float;  (** Period of the diurnal cycle. *)
  flashes : flash list;  (** Flash crowds; boosts multiply if overlapping. *)
}

val steady : ?flashes:flash list -> float -> profile
(** A flat profile at the given rate (no diurnal swing), with optional
    flash crowds. @raise Invalid_argument if the rate is [<= 0]. *)

val rate_at : profile -> float -> float
(** The instantaneous arrival rate at virtual time [t] — diurnal
    modulation times the product of active flash boosts. Pure; the
    integral of [rate_at] over a window predicts the arrival count
    {!drive} generates in it. *)

type workload = {
  objects : int;  (** Population size; arrivals target ranks [0..n-1]. *)
  zipf_s : float;  (** Popularity skew ([0.] = uniform). *)
  site_mix : float array;
      (** Per-site origin weights (normalized internally). *)
  profile : profile;
}

val drive :
  t ->
  prng:Legion_util.Prng.t ->
  workload ->
  start:float ->
  until:float ->
  (seq:int -> obj:int -> site:int -> unit) ->
  unit
(** Generate open-loop arrivals over [(start, until]]: each arrival
    carries a 1-based sequence number, a Zipf-drawn object rank, and an
    origin site index. Spacing follows {!rate_at}; the generator
    re-spaces itself at every flash edge so discontinuities take effect
    at their instant.
    @raise Invalid_argument on an empty or negative [site_mix], a
    non-positive population, or an invalid profile (see {!steady}). *)

val pulse :
  t -> start:float -> width:float -> on:(unit -> unit) -> off:(unit -> unit) -> unit
(** A transient fault: [on] fires at [start], [off] at
    [start +. width]. Partitions and host crash/restart windows are
    pulses — [on] partitions (or crashes), [off] heals (or restarts). *)

val pulses :
  t ->
  start:float ->
  width:float ->
  period:float ->
  count:int ->
  on:(unit -> unit) ->
  off:(unit -> unit) ->
  unit
(** [count] pulses of the given [width], the k-th starting at
    [start +. k * period].
    @raise Invalid_argument if [count < 0], [width < 0] or
    [period <= 0]. *)
