(** Scripted fault schedules over the virtual clock.

    A fault-injection experiment is a {e schedule}: at these instants,
    set the drop rate; between those, partition two sites; crash a host
    here and restart it there. The combinators below compile such
    schedules onto the engine's event queue. They know nothing about
    the network — actions are plain closures, so the same schedule
    shapes can drive drop rates, partitions, host power, or anything
    else an experiment wants to vary over time. Schedules are
    deterministic: same engine, same script, same firing order. *)

type t := Engine.t

val at : t -> time:float -> (unit -> unit) -> unit
(** Run the action at the absolute virtual [time]. *)

val every : t -> period:float -> ?start:float -> until:float -> (unit -> unit) -> unit
(** Run the action at [start] (default [period] from now) and then every
    [period] seconds, while the firing time is [<= until].
    @raise Invalid_argument if [period <= 0]. *)

val ramp :
  t ->
  start:float ->
  until:float ->
  steps:int ->
  values:float list ->
  (float -> unit) ->
  unit
(** Step through [values] left to right: value [i] is applied at
    [start +. i * (until - start) / steps]; when [values] is shorter
    than [steps + 1] the last value holds. A drop-rate ramp is
    [ramp eng ~start:0. ~until:60. ~steps:3 ~values:[0.; 0.05; 0.2; 0.]
    (Network.set_drop_rate net)].
    @raise Invalid_argument if [steps < 1] or [values = []]. *)

val load_ramp :
  t ->
  start:float ->
  until:float ->
  steps:int ->
  rates:float list ->
  (int -> unit) ->
  unit
(** An open-loop arrival generator whose rate (arrivals per virtual
    second) steps through [rates] on the same grid as {!ramp}. Arrivals
    are spaced [1 /. rate] apart and are {e not} gated on completions —
    this is the generator that drives a service past saturation, where a
    closed loop would self-throttle. The action receives the arrival's
    1-based sequence number. A rate of [0.] pauses the generator for
    that step.
    @raise Invalid_argument if [steps < 1], [rates = []] or any rate is
    negative. *)

val pulse :
  t -> start:float -> width:float -> on:(unit -> unit) -> off:(unit -> unit) -> unit
(** A transient fault: [on] fires at [start], [off] at
    [start +. width]. Partitions and host crash/restart windows are
    pulses — [on] partitions (or crashes), [off] heals (or restarts). *)

val pulses :
  t ->
  start:float ->
  width:float ->
  period:float ->
  count:int ->
  on:(unit -> unit) ->
  off:(unit -> unit) ->
  unit
(** [count] pulses of the given [width], the k-th starting at
    [start +. k * period].
    @raise Invalid_argument if [count < 0], [width < 0] or
    [period <= 0]. *)
