(** Discrete-event simulation engine.

    A single virtual clock and a calendar event queue
    ({!Legion_util.Calq}). Events scheduled for the same instant fire
    in scheduling order (FIFO), which together with the seeded PRNGs
    makes every run deterministic.

    The whole Legion runtime is driven by this engine: message delivery,
    RPC timeouts, and workload arrivals are all events. Event records
    are pooled — firing ten million events allocates a bounded working
    set, not ten million records — so handles are generation-checked:
    cancelling a recycled handle is still a safe no-op. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time, in seconds. Starts at [0.]. *)

type handle
(** A scheduled event, usable to cancel it. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. delay]. Negative delays
    are clamped to [0.] (fire "now", after currently-queued same-time
    events). *)

val schedule_at : t -> time:float -> (unit -> unit) -> handle
(** Absolute-time variant; times in the past are clamped to [now]. *)

val post : t -> delay:float -> (unit -> unit) -> unit
(** Fire-and-forget {!schedule}: no cancellation handle is built, so
    hot paths that never cancel (workload arrivals, script ticks) skip
    that allocation. *)

val post_at : t -> time:float -> (unit -> unit) -> unit
(** Fire-and-forget {!schedule_at}. *)

val cancel : handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val is_cancelled : handle -> bool
(** [true] once the handle can no longer fire: it was cancelled, or it
    already fired and its pooled record moved on. *)

val step : t -> bool
(** Fire the earliest pending event. Returns [false] when the queue is
    empty. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Fire events until the queue is empty, virtual time would exceed
    [until], or [max_events] have fired in this call. Events scheduled at
    exactly [until] still fire. *)

val pending : t -> int
(** Number of queued (uncancelled) events. O(1): a live counter
    maintained on schedule/cancel/fire. *)

val events_fired : t -> int
(** Total events fired since creation. *)

(** {1 Token dispatch}

    The zero-allocation delivery path. A subsystem that schedules very
    many homogeneous events (the network's message deliveries) can
    register one dispatch function and then schedule bare integer
    tokens: no closure, no handle — the pooled event record is the
    only storage, and the token typically indexes the subsystem's own
    pool. One dispatcher per engine: the engine is single-owner by
    construction (every [Network.create] builds its own engine). *)

val set_dispatch : t -> (int -> unit) -> unit
(** Install the token dispatcher.
    @raise Invalid_argument if one is already installed. *)

val post_token : t -> delay:float -> int -> unit
(** Schedule the dispatcher to run with the given token (which must be
    [>= 0]) after [delay] (clamped to [0.] like {!schedule}). *)
