module Calq = Legion_util.Calq

(* Event records are pooled: popping an event recycles its record for
   the next [schedule]. Handles therefore carry the generation they
   were issued under — a recycled record fails the generation check,
   which keeps "cancel after fire" a no-op without keeping every fired
   record alive. Records share the engine's [stats] cell so [cancel]
   (which has no engine argument) can maintain the live counter. *)

type stats = { mutable live : int }

type event = {
  mutable time : float;
  mutable seq : int;  (* tie-break: same-instant events fire in scheduling order *)
  mutable action : unit -> unit;
  mutable token : int;  (* >= 0: dispatch this token instead of [action] *)
  mutable cancelled : bool;
  mutable gen : int;  (* bumped each time the record is recycled *)
  st : stats;
}

type handle = { ev : event; hgen : int }

type t = {
  mutable clock : float;
  mutable seq : int;
  mutable fired : int;
  st : stats;
  queue : event Calq.t;
  mutable dispatch : (int -> unit) option;
  mutable pool : event array;  (* free-record stack *)
  mutable pool_len : int;
}

let no_action () = ()

let create () =
  let st = { live = 0 } in
  let dummy =
    { time = 0.0; seq = -1; action = no_action; token = -1; cancelled = true;
      gen = 0; st }
  in
  {
    clock = 0.0;
    seq = 0;
    fired = 0;
    st;
    queue = Calq.create ~dummy ();
    dispatch = None;
    pool = Array.make 64 dummy;
    pool_len = 0;
  }

let now t = t.clock

let alloc t ~time ~action ~token =
  let seq = t.seq in
  t.seq <- seq + 1;
  t.st.live <- t.st.live + 1;
  let ev =
    if t.pool_len > 0 then begin
      t.pool_len <- t.pool_len - 1;
      let ev = t.pool.(t.pool_len) in
      ev.time <- time;
      ev.seq <- seq;
      ev.action <- action;
      ev.token <- token;
      ev.cancelled <- false;
      ev
    end
    else { time; seq; action; token; cancelled = false; gen = 0; st = t.st }
  in
  Calq.push t.queue ~time ~seq ev;
  ev

let recycle t ev =
  ev.gen <- ev.gen + 1;
  ev.action <- no_action;
  (* drop the closure *)
  if t.pool_len = Array.length t.pool then begin
    let bigger = Array.make (2 * t.pool_len) ev in
    Array.blit t.pool 0 bigger 0 t.pool_len;
    t.pool <- bigger
  end;
  t.pool.(t.pool_len) <- ev;
  t.pool_len <- t.pool_len + 1

let schedule_at t ~time action =
  let time = Float.max time t.clock in
  let ev = alloc t ~time ~action ~token:(-1) in
  { ev; hgen = ev.gen }

let schedule t ~delay action =
  schedule_at t ~time:(t.clock +. Float.max 0.0 delay) action

let post_at t ~time action =
  let time = Float.max time t.clock in
  ignore (alloc t ~time ~action ~token:(-1))

let post t ~delay action = post_at t ~time:(t.clock +. Float.max 0.0 delay) action

let set_dispatch t f =
  match t.dispatch with
  | Some _ -> invalid_arg "Engine.set_dispatch: dispatcher already installed"
  | None -> t.dispatch <- Some f

let post_token t ~delay token =
  if token < 0 then invalid_arg "Engine.post_token: negative token";
  let time = t.clock +. Float.max 0.0 delay in
  ignore (alloc t ~time ~action:no_action ~token)

let cancel h =
  if h.ev.gen = h.hgen && not h.ev.cancelled then begin
    h.ev.cancelled <- true;
    h.ev.st.live <- h.ev.st.live - 1
  end

let is_cancelled h = h.ev.gen <> h.hgen || h.ev.cancelled

(* Pop events, discarding cancelled ones lazily. *)
let rec next_live t =
  match Calq.pop t.queue with
  | None -> None
  | Some ev ->
      if ev.cancelled then begin
        recycle t ev;
        next_live t
      end
      else Some ev

let step t =
  match next_live t with
  | None -> false
  | Some ev ->
      t.clock <- ev.time;
      t.fired <- t.fired + 1;
      t.st.live <- t.st.live - 1;
      let action = ev.action and token = ev.token in
      (* Recycle before running: the action may schedule, reusing this
         very record under a fresh generation. *)
      recycle t ev;
      (if token >= 0 then
         match t.dispatch with
         | Some f -> f token
         | None -> ()
       else action ());
      true

let run ?until ?max_events t =
  let budget = ref (match max_events with None -> -1 | Some n -> n) in
  let continue () =
    if !budget = 0 then false
    else
      match Calq.peek t.queue with
      | None -> false
      | Some ev ->
          if ev.cancelled then begin
            (* Reap without charging the budget or moving the clock. *)
            (match Calq.pop t.queue with
            | Some ev -> recycle t ev
            | None -> ());
            true
          end
          else begin
            match until with
            | Some limit when ev.time > limit -> false
            | _ ->
                if step t then begin
                  if !budget > 0 then decr budget;
                  true
                end
                else false
          end
  in
  while continue () do
    ()
  done

let pending t = t.st.live
let events_fired t = t.fired
