let at eng ~time f = ignore (Engine.schedule_at eng ~time f)

let every eng ~period ?start ~until f =
  if period <= 0.0 then invalid_arg "Script.every: period must be positive";
  let first = match start with Some t -> t | None -> Engine.now eng +. period in
  let rec arm time =
    if time <= until then
      ignore
        (Engine.schedule_at eng ~time (fun () ->
             f ();
             arm (time +. period)))
  in
  arm first

let ramp eng ~start ~until ~steps ~values f =
  if steps < 1 then invalid_arg "Script.ramp: steps must be >= 1";
  (match values with [] -> invalid_arg "Script.ramp: no values" | _ -> ());
  let last = List.length values - 1 in
  let step_width = (until -. start) /. float_of_int steps in
  for i = 0 to steps do
    let v = List.nth values (min i last) in
    at eng ~time:(start +. (float_of_int i *. step_width)) (fun () -> f v)
  done

let load_ramp eng ~start ~until ~steps ~rates fire =
  if steps < 1 then invalid_arg "Script.load_ramp: steps must be >= 1";
  (match rates with [] -> invalid_arg "Script.load_ramp: no rates" | _ -> ());
  List.iter
    (fun r -> if r < 0.0 then invalid_arg "Script.load_ramp: negative rate")
    rates;
  let rate = ref 0.0 in
  let seq = ref 0 in
  let armed = ref false in
  (* The generator is open loop: arrivals are spaced 1/rate apart and
     never wait for completions. It parks itself whenever the rate drops
     to zero; the ramp below re-arms it on the next positive step. *)
  let rec arm time =
    if time <= until && !rate > 0.0 then
      ignore
        (Engine.schedule_at eng ~time (fun () ->
             if !rate > 0.0 && Engine.now eng <= until then begin
               incr seq;
               fire !seq;
               arm (Engine.now eng +. (1.0 /. !rate))
             end
             else armed := false))
    else armed := false
  in
  ramp eng ~start ~until ~steps ~values:rates (fun r ->
      rate := r;
      if (not !armed) && r > 0.0 then begin
        armed := true;
        arm (Engine.now eng)
      end)

let pulse eng ~start ~width ~on ~off =
  at eng ~time:start on;
  at eng ~time:(start +. width) off

let pulses eng ~start ~width ~period ~count ~on ~off =
  if count < 0 then invalid_arg "Script.pulses: count must be >= 0";
  if width < 0.0 then invalid_arg "Script.pulses: width must be >= 0";
  if period <= 0.0 then invalid_arg "Script.pulses: period must be positive";
  for k = 0 to count - 1 do
    pulse eng ~start:(start +. (float_of_int k *. period)) ~width ~on ~off
  done
