module Prng = Legion_util.Prng
module Sampler = Legion_util.Sampler

let at eng ~time f = ignore (Engine.schedule_at eng ~time f)

let every eng ~period ?start ~until f =
  if period <= 0.0 then invalid_arg "Script.every: period must be positive";
  let first = match start with Some t -> t | None -> Engine.now eng +. period in
  let rec arm time =
    if time <= until then
      ignore
        (Engine.schedule_at eng ~time (fun () ->
             f ();
             arm (time +. period)))
  in
  arm first

let ramp eng ~start ~until ~steps ~values f =
  if steps < 1 then invalid_arg "Script.ramp: steps must be >= 1";
  (match values with [] -> invalid_arg "Script.ramp: no values" | _ -> ());
  let last = List.length values - 1 in
  let step_width = (until -. start) /. float_of_int steps in
  for i = 0 to steps do
    let v = List.nth values (min i last) in
    at eng ~time:(start +. (float_of_int i *. step_width)) (fun () -> f v)
  done

(* Shared open-loop arrival machinery. Arrivals are spaced
   [1 /. rate_now ()] apart and never wait for completions. [respace]
   cancels the pending arrival and re-arms it at
   [max now (last_arrival + 1/rate)] — call it whenever the rate
   changes, so a step up takes effect immediately (instead of after one
   stale old-spacing gap) and a step down never over-fires. *)
let open_loop eng ~until rate_now fire =
  let pending = ref None in
  let last = ref neg_infinity in
  let cancel_pending () =
    match !pending with
    | None -> ()
    | Some h ->
        Engine.cancel h;
        pending := None
  in
  let rec arm time =
    if time <= until && rate_now () > 0.0 then
      pending :=
        Some
          (Engine.schedule_at eng ~time (fun () ->
               pending := None;
               if rate_now () > 0.0 && Engine.now eng <= until then begin
                 last := Engine.now eng;
                 fire ();
                 let r = rate_now () in
                 if r > 0.0 then arm (Engine.now eng +. (1.0 /. r))
               end))
  in
  fun () ->
    cancel_pending ();
    let r = rate_now () in
    if r > 0.0 then arm (Float.max (Engine.now eng) (!last +. (1.0 /. r)))

let load_ramp eng ~start ~until ~steps ~rates fire =
  if steps < 1 then invalid_arg "Script.load_ramp: steps must be >= 1";
  (match rates with [] -> invalid_arg "Script.load_ramp: no rates" | _ -> ());
  List.iter
    (fun r -> if r < 0.0 then invalid_arg "Script.load_ramp: negative rate")
    rates;
  let rate = ref 0.0 in
  let seq = ref 0 in
  let respace =
    open_loop eng ~until
      (fun () -> !rate)
      (fun () ->
        incr seq;
        fire !seq)
  in
  ramp eng ~start ~until ~steps ~values:rates (fun r ->
      rate := r;
      respace ())

(* --- Workload model: Zipf popularity, diurnal ramps, flash crowds. --- *)

type flash = { at : float; width : float; boost : float; site : int option }

type profile = {
  base_rate : float;
  diurnal_amplitude : float;
  diurnal_period : float;
  flashes : flash list;
}

let steady ?(flashes = []) rate =
  if rate <= 0.0 then invalid_arg "Script.steady: rate must be positive";
  { base_rate = rate; diurnal_amplitude = 0.0; diurnal_period = 1.0; flashes }

let check_profile p =
  if p.base_rate <= 0.0 then
    invalid_arg "Script: profile base_rate must be positive";
  if p.diurnal_amplitude < 0.0 || p.diurnal_amplitude >= 1.0 then
    invalid_arg "Script: diurnal_amplitude must be in [0, 1)";
  if p.diurnal_amplitude > 0.0 && p.diurnal_period <= 0.0 then
    invalid_arg "Script: diurnal_period must be positive";
  List.iter
    (fun f ->
      if f.width < 0.0 then invalid_arg "Script: flash width must be >= 0";
      if f.boost < 1.0 then invalid_arg "Script: flash boost must be >= 1")
    p.flashes

let two_pi = 8.0 *. atan 1.0

let rate_at p t =
  let diurnal =
    if p.diurnal_amplitude = 0.0 then 1.0
    else 1.0 +. (p.diurnal_amplitude *. sin (two_pi *. t /. p.diurnal_period))
  in
  let boost =
    List.fold_left
      (fun acc f ->
        if t >= f.at && t < f.at +. f.width then acc *. f.boost else acc)
      1.0 p.flashes
  in
  p.base_rate *. diurnal *. boost

type workload = {
  objects : int;
  zipf_s : float;
  site_mix : float array;
  profile : profile;
}

let drive eng ~prng w ~start ~until fire =
  check_profile w.profile;
  if w.objects <= 0 then invalid_arg "Script.drive: objects must be positive";
  if Array.length w.site_mix = 0 then invalid_arg "Script.drive: empty site_mix";
  Array.iter
    (fun x -> if x < 0.0 then invalid_arg "Script.drive: negative site weight")
    w.site_mix;
  let mix_total = Array.fold_left ( +. ) 0.0 w.site_mix in
  if mix_total <= 0.0 then invalid_arg "Script.drive: site_mix sums to zero";
  let zipf = Sampler.zipf prng ~n:w.objects ~s:w.zipf_s in
  let pick_base_site () =
    let x = Prng.float prng mix_total in
    let acc = ref 0.0 in
    let chosen = ref (Array.length w.site_mix - 1) in
    (try
       Array.iteri
         (fun i wgt ->
           acc := !acc +. wgt;
           if x < !acc then begin
             chosen := i;
             raise Exit
           end)
         w.site_mix
     with Exit -> ());
    !chosen
  in
  (* The flash-attributable *excess* traffic originates from the flash's
     site (a crowd landing somewhere specific); the base traffic keeps
     the ambient mix. *)
  let pick_site now =
    let crowd =
      List.find_opt
        (fun f -> f.site <> None && now >= f.at && now < f.at +. f.width)
        w.profile.flashes
    in
    match crowd with
    | Some { boost; site = Some s; _ } when boost > 1.0 ->
        if Prng.bernoulli prng ~p:((boost -. 1.0) /. boost) then s
        else pick_base_site ()
    | _ -> pick_base_site ()
  in
  let seq = ref 0 in
  let respace =
    open_loop eng ~until
      (fun () -> rate_at w.profile (Engine.now eng))
      (fun () ->
        incr seq;
        let now = Engine.now eng in
        fire ~seq:!seq ~obj:(Sampler.zipf_draw zipf) ~site:(pick_site now))
  in
  (* The rate function is continuous except at flash edges; diurnal
     drift is absorbed by per-arrival re-evaluation. Schedule an
     explicit re-space at every discontinuity so a flash takes effect at
     its instant, not one stale spacing later. *)
  at eng ~time:start (fun () -> respace ());
  List.iter
    (fun f ->
      List.iter
        (fun t -> if t > start && t <= until then at eng ~time:t (fun () -> respace ()))
        [ f.at; f.at +. f.width ])
    w.profile.flashes

let pulse eng ~start ~width ~on ~off =
  at eng ~time:start on;
  at eng ~time:(start +. width) off

let pulses eng ~start ~width ~period ~count ~on ~off =
  if count < 0 then invalid_arg "Script.pulses: count must be >= 0";
  if width < 0.0 then invalid_arg "Script.pulses: width must be >= 0";
  if period <= 0.0 then invalid_arg "Script.pulses: period must be positive";
  for k = 0 to count - 1 do
    pulse eng ~start:(start +. (float_of_int k *. period)) ~width ~on ~off
  done
