let at eng ~time f = ignore (Engine.schedule_at eng ~time f)

let every eng ~period ?start ~until f =
  if period <= 0.0 then invalid_arg "Script.every: period must be positive";
  let first = match start with Some t -> t | None -> Engine.now eng +. period in
  let rec arm time =
    if time <= until then
      ignore
        (Engine.schedule_at eng ~time (fun () ->
             f ();
             arm (time +. period)))
  in
  arm first

let ramp eng ~start ~until ~steps ~values f =
  if steps < 1 then invalid_arg "Script.ramp: steps must be >= 1";
  (match values with [] -> invalid_arg "Script.ramp: no values" | _ -> ());
  let last = List.length values - 1 in
  let step_width = (until -. start) /. float_of_int steps in
  for i = 0 to steps do
    let v = List.nth values (min i last) in
    at eng ~time:(start +. (float_of_int i *. step_width)) (fun () -> f v)
  done

let pulse eng ~start ~width ~on ~off =
  at eng ~time:start on;
  at eng ~time:(start +. width) off

let pulses eng ~start ~width ~period ~count ~on ~off =
  if count < 0 then invalid_arg "Script.pulses: count must be >= 0";
  if width < 0.0 then invalid_arg "Script.pulses: width must be >= 0";
  if period <= 0.0 then invalid_arg "Script.pulses: period must be positive";
  for k = 0 to count - 1 do
    pulse eng ~start:(start +. (float_of_int k *. period)) ~width ~on ~off
  done
