(** Transaction participant: the prepare-lock side of {!Coordinator}.

    Composed into any object (alongside its application units) to make
    it enlistable in an atomic multi-object invocation. The unit holds
    at most one {e prepare lock}: a staged (method, args) pair promised
    to a transaction. Votes follow 2PC:

    - [TxnPrepare(txn, meth, args[, coord])] — stage the call and vote
      yes ([Ok Unit]). Votes no with [Err.Refused] when the method is
      not in the composite's repertoire (so a later commit cannot
      fail), and with the {e retryable} [Err.Txn_locked] when another
      transaction holds the lock — contention is shed exactly like
      overload, and clears when the holder resolves. A duplicate
      prepare under the holding transaction is an idempotent yes. The
      optional fourth argument is the coordinator's LOID, remembered in
      the lock for crash-recovery ([TxnVerify]).
    - [TxnCommit(txn)] — release the lock, then apply the staged method
      through the object's own composite (so guards and application
      logic run normally). Idempotent: with no lock under [txn] it
      acknowledges without applying (retransmission, or an abort that
      raced ahead).
    - [TxnAbort(txn)] — drop the lock if held under [txn]; always
      acknowledges.
    - [TxnHeld()] — the holder as an optional ([List []] /
      [List [Str txn]]); the E20 orphaned-lock probe.

    - [TxnVerify()] — crash-recovery for the lock (invoked
      automatically after reactivation, via the resume hook): a
      restored lock may belong to a transaction that finished while
      the checkpoint aged. The participant asks the lock's coordinator
      ([TxnStatus]) and resolves accordingly — applies a decided
      commit, releases a rolled-back or forgotten one, and leaves an
      undecided vote standing. Returns [Int 1] when the lock was
      resolved, [Int 0] otherwise.

    The lock is part of the unit's saved state, so a checkpointed
    in-doubt participant restores still locked and the coordinator's
    recovery re-drive finds it where it left off. *)

val unit_name : string
(** ["legion.txn.participant"]. *)

val factory : Legion_core.Impl.factory
val register : unit -> unit
