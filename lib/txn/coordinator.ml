module Value = Legion_wire.Value
module Codec = Legion_wire.Codec
module Loid = Legion_naming.Loid
module Env = Legion_sec.Env
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Event = Legion_obs.Event
module Impl = Legion_core.Impl
module C = Legion_core.Convert
module Persistent = Legion_store.Persistent
module Magistrate_part = Legion_jur.Magistrate_part
module Script = Legion_sim.Script

let unit_name = "legion.txn.coord"

type mode = Two_phase | Saga

let mode_to_string = function Two_phase -> "2pc" | Saga -> "saga"

let mode_of_string = function
  | "2pc" -> Ok Two_phase
  | "saga" -> Ok Saga
  | s -> Error (Printf.sprintf "unknown transaction mode %S" s)

type phase = Running | Committing | Committed | Compensating | Compensated

let phase_to_string = function
  | Running -> "running"
  | Committing -> "committing"
  | Committed -> "committed"
  | Compensating -> "compensating"
  | Compensated -> "compensated"

let phase_of_string = function
  | "running" -> Ok Running
  | "committing" -> Ok Committing
  | "committed" -> Ok Committed
  | "compensating" -> Ok Compensating
  | "compensated" -> Ok Compensated
  | s -> Error (Printf.sprintf "unknown transaction phase %S" s)

type step = {
  dst : Loid.t;
  meth : string;
  args : Value.t list;
  cmeth : string;  (** Typed compensation (saga mode); [""] = none. *)
  cargs : Value.t list;
}

type txn = {
  id : string;
  mode : mode;
  steps : step array;
  mutable phase : phase;
  mutable pending : int list;
      (* Running/saga: step indices not yet applied (ascending).
         Committing: indices whose commit ack is outstanding.
         Compensating: indices still to roll back (saga: reverse
         application order). *)
  mutable redrive_armed : bool;
}

let step_to_value s =
  Value.Record
    [
      ("dst", Loid.to_value s.dst);
      ("meth", Value.Str s.meth);
      ("args", Value.List s.args);
      ("cmeth", Value.Str s.cmeth);
      ("cargs", Value.List s.cargs);
    ]

let step_of_value v =
  let ( let* ) r f = Result.bind r f in
  let* dst = C.loid_field v "dst" in
  let* meth = C.str_field v "meth" in
  let list_or name =
    match Value.field_opt v name with Some (Value.List l) -> l | _ -> []
  in
  let cmeth =
    match Value.field_opt v "cmeth" with Some (Value.Str s) -> s | _ -> ""
  in
  Ok { dst; meth; args = list_or "args"; cmeth; cargs = list_or "cargs" }

let txn_to_value t =
  Value.Record
    [
      ("id", Value.Str t.id);
      ("mode", Value.Str (mode_to_string t.mode));
      ("phase", Value.Str (phase_to_string t.phase));
      ("pending", Value.of_list Value.of_int t.pending);
      ("steps", Value.of_list step_to_value (Array.to_list t.steps));
    ]

let txn_of_value v =
  let ( let* ) r f = Result.bind r f in
  let* id = C.str_field v "id" in
  let* mode = Result.bind (C.str_field v "mode") mode_of_string in
  let* phase = Result.bind (C.str_field v "phase") phase_of_string in
  let pending =
    match Value.field_opt v "pending" with
    | Some (Value.List l) ->
        List.filter_map
          (function Value.Int i -> Some i | _ -> None)
          l
    | _ -> []
  in
  let* steps =
    match Value.field_opt v "steps" with
    | Some (Value.List l) ->
        List.fold_left
          (fun acc sv ->
            Result.bind acc (fun acc ->
                Result.map (fun s -> s :: acc) (step_of_value sv)))
          (Ok []) l
        |> Result.map (fun l -> Array.of_list (List.rev l))
    | _ -> Error "txn: missing steps"
  in
  Ok { id; mode; steps; phase; pending; redrive_armed = false }

(* A short stable tag for Txn_abort reasons, so traces and the E20
   tables aggregate; the epoch-fence case is the one the gate keys on
   (a fenced participant's vote is an abort, never a hang). *)
let reason_of = function
  | Err.Stale_epoch -> "stale-epoch"
  | Err.Txn_locked _ -> "locked"
  | Err.Overloaded _ | Err.Quota_exceeded _ -> "overloaded"
  | Err.Timeout -> "timeout"
  | Err.Refused _ | Err.Denied _ -> "refused"
  | Err.No_quorum _ -> "no-quorum"
  | Err.No_such_object | Err.Unreachable _ | Err.Corrupt _ -> "unreachable"
  | Err.Txn_aborted _ -> "nested-abort"
  | Err.No_such_method _ | Err.Bad_args _ -> "bad-call"
  | Err.Not_bound _ | Err.Internal _ -> "error"

type state = {
  mutable store_name : string option;
  mutable seq : int;
  txns : (string, txn) Hashtbl.t;
  mutable committed : int;
  mutable aborted : int;
  mutable compensations : int;
  mutable resumed : int;
  mutable needs_recovery : bool;
      (* The durable WAL has not been folded into [txns] yet. Set on
         every checkpoint restore; cleared by the first fold once a
         store is reachable. *)
}

let factory (ctx : Runtime.ctx) : Impl.part =
  let rt = ctx.Runtime.rt in
  let self = Runtime.proc_loid ctx.Runtime.self in
  let env = Env.of_self self in
  let st =
    {
      store_name = None;
      seq = 0;
      txns = Hashtbl.create 8;
      committed = 0;
      aborted = 0;
      compensations = 0;
      resumed = 0;
      needs_recovery = true;
    }
  in
  let emit kind =
    Runtime.emit rt ~host:(Runtime.proc_host ctx.Runtime.self) kind
  in
  let store () = Option.bind st.store_name Magistrate_part.find_storage in
  let wal_name = "wal." ^ Loid.to_string self in
  let my_epoch = Runtime.proc_epoch ctx.Runtime.self in

  (* Fencing token against coordinator split-brain. A false-dead
     verdict (probe lost in a drop window) can reactivate the
     coordinator elsewhere while this incarnation is still running; the
     recovered incarnation resumes the shared WAL and may abort a
     transaction this one would go on to commit. The WAL therefore
     names the newest incarnation that has folded it, and an
     incarnation that finds a newer owner must neither decide nor drive
     nor mark — its successor owns every in-doubt transaction. *)
  let am_owner () =
    match store () with
    | None -> true
    | Some s -> (
        match Persistent.get_named s ~name:wal_name with
        | None -> true
        | Some blob -> (
            match Codec.decode blob with
            | Error _ -> true
            | Ok v -> (
                match Value.field_opt v "owner" with
                | Some (Value.Int e) -> my_epoch >= e
                | _ -> true)))
  in

  (* The write-ahead log: every unfinished transaction, re-serialised
     on each state change and overwritten in place. The commit decision
     is durable exactly when the Committing phase hits this record —
     recovery never rolls back work the log says was decided. A fenced
     incarnation's write is suppressed so it cannot clobber the new
     owner's log. *)
  let wal_write () =
    match store () with
    | None -> ()
    | Some s ->
        if am_owner () then
          let open_txns =
            Hashtbl.fold
              (fun _ t acc ->
                match t.phase with
                | Running | Committing | Compensating -> txn_to_value t :: acc
                | Committed | Compensated -> acc)
              st.txns []
          in
          let v =
            Value.Record
              [
                ("seq", Value.Int st.seq);
                ("owner", Value.Int my_epoch);
                ("txns", Value.List open_txns);
              ]
          in
          Persistent.put_named s ~name:wal_name (Codec.encode v)
  in

  (* Tag the participant's history with the txn outcome: snapshot its
     current state into the store under the txn id, then flip every
     entry the txn wrote to [mark]. The mark lands even when the
     snapshot fails (participant unreachable) — the atomicity audit
     needs the verdict more than the bytes. *)
  let record_mark ~loid ~txnid mark =
    match store () with
    | None -> ()
    | Some s ->
        (* No ownership guard here: a mark always follows a decision
           that was durable while this incarnation owned the WAL, so a
           successor re-driving the txn reaches the same verdict. *)
        Runtime.invoke ctx ~dst:loid ~meth:"SaveState" ~args:[] ~env (fun r ->
            (match r with
            | Ok v -> ignore (Persistent.put ~txn:txnid s ~loid (Codec.encode v))
            | Error _ -> ());
            Persistent.mark_txn s ~loid ~txn:txnid mark)
  in
  let snapshot_staged ~loid ~txnid =
    match store () with
    | None -> ()
    | Some s ->
        Runtime.invoke ctx ~dst:loid ~meth:"SaveState" ~args:[] ~env (fun r ->
            match r with
            | Ok v -> ignore (Persistent.put ~txn:txnid s ~loid (Codec.encode v))
            | Error _ -> ())
  in
  (* Resolve the verdict in the store for every participant the moment
     the decision falls. The prepare-time snapshots are asynchronous:
     one may still be in flight when the decision is made (or when a
     recovered incarnation decides from an incomplete history), and a
     snapshot landing after this call inherits the verdict instead of
     staging forever. The per-participant [record_mark] calls that
     follow the acks re-mark with the same verdict, which is the
     idempotent case. *)
  let resolve_all (t : txn) mark =
    match store () with
    | None -> ()
    | Some s ->
        Array.iter
          (fun step -> Persistent.mark_txn s ~loid:step.dst ~txn:t.id mark)
          t.steps
  in

  let rec drive (t : txn) =
    match (t.phase, t.mode) with
    | Committing, _ -> commit_drive t
    | Compensating, Two_phase -> abort_drive t
    | Compensating, Saga -> comp_drive t
    | (Running | Committed | Compensated), _ -> ()

  (* A drive pass that could not finish re-arms itself: one timer per
     txn, far enough out (2× call timeout) that the in-flight retries
     have resolved either way by the time it fires. *)
  and schedule_redrive t =
    if not t.redrive_armed then begin
      t.redrive_armed <- true;
      let delay = 2.0 *. (Runtime.config rt).Runtime.call_timeout in
      Script.at (Runtime.sim rt) ~time:(Runtime.now rt +. delay) (fun () ->
          t.redrive_armed <- false;
          if Runtime.is_live ctx.Runtime.self then drive t)
    end

  and finish_commit t =
    t.phase <- Committed;
    st.committed <- st.committed + 1;
    emit (Event.Txn_commit { txn = t.id; participants = Array.length t.steps });
    wal_write ()

  and commit_drive t =
    if t.phase = Committing && am_owner () then
      match t.pending with
      | [] -> finish_commit t
      | idxs ->
          let outstanding = ref (List.length idxs) in
          List.iter
            (fun i ->
              let s = t.steps.(i) in
              Runtime.invoke ctx ~dst:s.dst ~meth:"TxnCommit"
                ~args:[ Value.Str t.id ] ~env (fun r ->
                  (match r with
                  | Ok _ ->
                      t.pending <- List.filter (fun j -> j <> i) t.pending;
                      record_mark ~loid:s.dst ~txnid:t.id Persistent.Committed
                  | Error _ -> ());
                  decr outstanding;
                  if !outstanding = 0 then
                    if t.pending = [] then finish_commit t
                    else begin
                      wal_write ();
                      schedule_redrive t
                    end))
            idxs

  and finish_abort t =
    t.phase <- Compensated;
    st.aborted <- st.aborted + 1;
    wal_write ()

  (* 2PC rollback: release every prepare lock. Acks are idempotent on
     the participant side, so retransmissions after a redrive are
     harmless. *)
  and abort_drive t =
    if t.phase = Compensating && am_owner () then
      match t.pending with
      | [] -> finish_abort t
      | idxs ->
          let outstanding = ref (List.length idxs) in
          List.iter
            (fun i ->
              let s = t.steps.(i) in
              Runtime.invoke ctx ~dst:s.dst ~meth:"TxnAbort"
                ~args:[ Value.Str t.id ] ~env (fun r ->
                  (match r with
                  | Ok _ ->
                      t.pending <- List.filter (fun j -> j <> i) t.pending;
                      st.compensations <- st.compensations + 1;
                      emit (Event.Compensate { txn = t.id; participant = s.dst });
                      record_mark ~loid:s.dst ~txnid:t.id Persistent.Compensated
                  | Error _ -> ());
                  decr outstanding;
                  if !outstanding = 0 then
                    if t.pending = [] then finish_abort t
                    else begin
                      wal_write ();
                      schedule_redrive t
                    end))
            idxs

  (* Saga rollback: apply the typed compensations in reverse
     application order, one at a time (a compensation may depend on the
     later steps already being undone). *)
  and comp_drive t =
    if t.phase = Compensating && am_owner () then
      match t.pending with
      | [] -> finish_abort t
      | i :: rest ->
          let s = t.steps.(i) in
          Runtime.invoke ctx ~dst:s.dst ~meth:s.cmeth ~args:s.cargs ~env
            (fun r ->
              match r with
              | Ok _ ->
                  t.pending <- rest;
                  st.compensations <- st.compensations + 1;
                  emit (Event.Compensate { txn = t.id; participant = s.dst });
                  record_mark ~loid:s.dst ~txnid:t.id Persistent.Compensated;
                  wal_write ();
                  comp_drive t
              | Error _ -> schedule_redrive t)
  in

  let all_idxs (t : txn) = List.init (Array.length t.steps) Fun.id in

  (* 2PC forward path: prepares race in parallel; the decision falls
     when the last vote lands. The client learns the outcome at the
     decision — commit acks drain asynchronously afterwards. *)
  let start_two_phase (t : txn) k =
    let n = Array.length t.steps in
    let votes = ref 0 in
    let veto = ref None in
    Array.iter
      (fun s ->
        Runtime.invoke ctx ~dst:s.dst ~meth:"TxnPrepare"
          ~args:
            [
              Value.Str t.id;
              Value.Str s.meth;
              Value.List s.args;
              (* The participant remembers who decides this txn, for
                 its own crash-recovery (TxnVerify -> TxnStatus). *)
              Loid.to_value self;
            ]
          ~env (fun r ->
            (match r with
            | Ok _ ->
                emit (Event.Prepare { txn = t.id; participant = s.dst });
                snapshot_staged ~loid:s.dst ~txnid:t.id
            | Error e -> if !veto = None then veto := Some (reason_of e));
            incr votes;
            if !votes = n then
              if not (am_owner ()) then
                (* A recovered incarnation took over mid-prepare; it
                   folded this txn as Running and is aborting it. Do
                   not promise a commit the successor will roll back. *)
                k (Error Err.Stale_epoch)
              else
                match !veto with
                | None ->
                    t.phase <- Committing;
                    wal_write ();
                    resolve_all t Persistent.Committed;
                    k (Ok (Value.Str t.id));
                    commit_drive t
                | Some reason ->
                    emit (Event.Txn_abort { txn = t.id; reason });
                    t.phase <- Compensating;
                    t.pending <- all_idxs t;
                    wal_write ();
                    resolve_all t Persistent.Compensated;
                    k (Error (Err.Txn_aborted { txn = t.id }));
                    abort_drive t))
      t.steps
  in

  (* Saga forward path: steps apply sequentially and immediately; a
     failure turns the applied prefix around. *)
  let rec saga_forward (t : txn) k =
    if not (am_owner ()) then k (Error Err.Stale_epoch)
    else
      match t.pending with
    | [] ->
        t.phase <- Committed;
        st.committed <- st.committed + 1;
        resolve_all t Persistent.Committed;
        Array.iter
          (fun s -> record_mark ~loid:s.dst ~txnid:t.id Persistent.Committed)
          t.steps;
        emit
          (Event.Txn_commit { txn = t.id; participants = Array.length t.steps });
        wal_write ();
        k (Ok (Value.Str t.id))
    | i :: rest ->
        let s = t.steps.(i) in
        Runtime.invoke ctx ~dst:s.dst ~meth:s.meth ~args:s.args ~env (fun r ->
            match r with
            | Ok _ ->
                emit (Event.Prepare { txn = t.id; participant = s.dst });
                snapshot_staged ~loid:s.dst ~txnid:t.id;
                t.pending <- rest;
                wal_write ();
                saga_forward t k
            | Error e ->
                emit (Event.Txn_abort { txn = t.id; reason = reason_of e });
                t.phase <- Compensating;
                t.pending <- List.rev (List.init i Fun.id);
                wal_write ();
                resolve_all t Persistent.Compensated;
                k (Error (Err.Txn_aborted { txn = t.id }));
                comp_drive t)
  in

  (* Crash recovery: reconstruct every in-doubt transaction from the
     WAL and re-drive it. The rule is the classic presumed-abort 2PC
     one — a durable Committing record means the commit was promised to
     the client and must finish; anything still Running aborts. A saga
     interrupted mid-flight compensates exactly the steps the store's
     history proves were applied (the WAL's pending list may lag by one
     step; the history is the authority). *)
  let resume_txn (t : txn) =
    st.resumed <- st.resumed + 1;
    match t.phase with
    | Committing ->
        emit (Event.Resume { txn = t.id; decision = "commit" });
        commit_drive t
    | Running -> (
        emit (Event.Resume { txn = t.id; decision = "abort" });
        emit (Event.Txn_abort { txn = t.id; reason = "crash-recovery" });
        t.phase <- Compensating;
        resolve_all t Persistent.Compensated;
        match t.mode with
        | Two_phase ->
            t.pending <- all_idxs t;
            wal_write ();
            abort_drive t
        | Saga ->
            let applied =
              match store () with
              | None -> []
              | Some s ->
                  List.filter
                    (fun i ->
                      let dst = t.steps.(i).dst in
                      List.exists
                        (fun (e : Persistent.History.entry) ->
                          e.Persistent.History.txn = Some t.id)
                        (Persistent.history s ~loid:dst))
                    (all_idxs t)
            in
            t.pending <- List.rev applied;
            wal_write ();
            comp_drive t)
    | Compensating -> (
        emit (Event.Resume { txn = t.id; decision = "abort" });
        match t.mode with
        | Two_phase -> abort_drive t
        | Saga -> comp_drive t)
    | Committed | Compensated -> ()
  in

  (* Fold the durable WAL back into memory, synchronously. This MUST
     happen before the coordinator takes on any new work: a TxnRun on a
     freshly restored instance would otherwise overwrite the log
     (destroying the in-doubt records) and re-issue their sequence
     numbers. The fold is idempotent — ids already live in [st.txns]
     are left alone (a double resume, or the TxnResume poke racing a
     lazy first-touch fold). *)
  let recover_from_wal () : (int, string) result =
    match store () with
    | None -> Ok 0
    | Some s -> (
        st.needs_recovery <- false;
        match Persistent.get_named s ~name:wal_name with
        | None -> Ok 0
        | Some blob -> (
            match Codec.decode blob with
            | Error _ -> Error "corrupt transaction WAL"
            | Ok v ->
                (match Value.field_opt v "seq" with
                | Some (Value.Int seq) -> st.seq <- Stdlib.max st.seq seq
                | _ -> ());
                let tvs =
                  match Value.field_opt v "txns" with
                  | Some (Value.List l) -> l
                  | _ -> []
                in
                let n = ref 0 in
                List.iter
                  (fun tv ->
                    match txn_of_value tv with
                    | Error _ -> ()
                    | Ok t ->
                        if not (Hashtbl.mem st.txns t.id) then begin
                          Hashtbl.replace st.txns t.id t;
                          incr n;
                          resume_txn t
                        end)
                  tvs;
                (* Claim ownership durably, even when nothing needed a
                   resume: any older incarnation still running is
                   fenced from this point on. *)
                wal_write ();
                Ok !n))
  in
  let try_recover () =
    if st.needs_recovery then ignore (recover_from_wal ());
    (* Kick every in-doubt transaction. The redrive chain is a linked
       list of timers — deactivation or a transient ownership loss can
       break a link, and a Committing/Compensating txn would then hang
       silently. Any poke at the coordinator re-drives them; [drive] is
       idempotent and no-ops on finished phases. *)
    Hashtbl.iter (fun _ t -> if not t.redrive_armed then drive t) st.txns
  in

  let txn_resume _ctx args _env k =
    match args with
    | [] -> (
        match recover_from_wal () with
        | Ok n ->
            Hashtbl.iter
              (fun _ t -> if not t.redrive_armed then drive t)
              st.txns;
            k (Ok (Value.Int n))
        | Error msg -> k (Error (Err.Internal msg)))
    | _ -> Impl.bad_args k "TxnResume takes no arguments"
  in

  let txn_run _ctx args _env k =
    try_recover ();
    match args with
    | [ Value.Str mode_s; Value.List steps_v ] -> (
        let decoded =
          let ( let* ) r f = Result.bind r f in
          let* mode = mode_of_string mode_s in
          let* steps =
            List.fold_left
              (fun acc sv ->
                Result.bind acc (fun acc ->
                    Result.map (fun s -> s :: acc) (step_of_value sv)))
              (Ok []) steps_v
            |> Result.map List.rev
          in
          let* () = if steps = [] then Error "no steps" else Ok () in
          let rec distinct = function
            | [] -> Ok ()
            | s :: rest ->
                if List.exists (fun x -> Loid.equal x.dst s.dst) rest then
                  Error "duplicate participant"
                else distinct rest
          in
          let* () = distinct steps in
          let* () =
            if mode = Saga && List.exists (fun s -> s.cmeth = "") steps then
              Error "saga steps require a compensation method"
            else Ok ()
          in
          Ok (mode, Array.of_list steps)
        in
        match decoded with
        | Error msg -> Impl.bad_args k ("TxnRun: " ^ msg)
        | Ok (mode, steps) ->
            st.seq <- st.seq + 1;
            let id = Printf.sprintf "%s.%d" (Loid.to_string self) st.seq in
            let t =
              { id; mode; steps; phase = Running; pending = []; redrive_armed = false }
            in
            t.pending <- all_idxs t;
            Hashtbl.replace st.txns id t;
            wal_write ();
            (match mode with
            | Two_phase -> start_two_phase t k
            | Saga -> saga_forward t k))
    | _ -> Impl.bad_args k "TxnRun expects (mode, steps)"
  in

  (* TxnStatus(txn): the authoritative phase of a transaction, for
     participants re-validating a resurrected prepare lock. "unknown"
     covers both a never-seen id and a finished transaction forgotten
     across a coordinator restart — either way, presumed abort. *)
  let txn_status _ctx args _env k =
    (* A participant asking before the WAL fold would get a wrong
       "unknown" and release a lock the decision needs. *)
    try_recover ();
    match args with
    | [ Value.Str id ] ->
        let phase =
          match Hashtbl.find_opt st.txns id with
          | Some t -> phase_to_string t.phase
          | None -> "unknown"
        in
        k (Ok (Value.Str phase))
    | _ -> Impl.bad_args k "TxnStatus expects one txn id"
  in

  let txn_stats _ctx args _env k =
    try_recover ();
    match args with
    | [] ->
        let in_doubt =
          Hashtbl.fold
            (fun _ t acc ->
              match t.phase with
              | Running | Committing | Compensating -> acc + 1
              | Committed | Compensated -> acc)
            st.txns 0
        in
        k
          (Ok
             (Value.Record
                [
                  ("committed", Value.Int st.committed);
                  ("aborted", Value.Int st.aborted);
                  ("compensations", Value.Int st.compensations);
                  ("resumed", Value.Int st.resumed);
                  ("indoubt", Value.Int in_doubt);
                ]))
    | _ -> Impl.bad_args k "TxnStats takes no arguments"
  in

  let configure _ctx args _env k =
    match args with
    | [ v ] -> (
        match C.str_field v "store" with
        | Error msg -> Impl.bad_args k msg
        | Ok name ->
            st.store_name <- Some name;
            k Impl.ok_unit)
    | _ -> Impl.bad_args k "Configure expects one record"
  in

  let save () =
    Value.Record
      [
        ("store", C.vopt Value.of_string st.store_name);
        ("seq", Value.Int st.seq);
        ("cm", Value.Int st.committed);
        ("ab", Value.Int st.aborted);
        ("cp", Value.Int st.compensations);
        ("rs", Value.Int st.resumed);
      ]
  in
  let restore v =
    let int_or d name =
      match Value.field_opt v name with Some (Value.Int i) -> i | _ -> d
    in
    (match Value.field_opt v "store" with
    | Some (Value.List [ Value.Str s ]) -> st.store_name <- Some s
    | _ -> st.store_name <- None);
    st.seq <- int_or 0 "seq";
    st.committed <- int_or 0 "cm";
    st.aborted <- int_or 0 "ab";
    st.compensations <- int_or 0 "cp";
    st.resumed <- int_or 0 "rs";
    st.needs_recovery <- true;
    Ok ()
  in

  Impl.part
    ~methods:
      [
        ("Configure", configure);
        ("TxnRun", txn_run);
        ("TxnResume", txn_resume);
        ("TxnStatus", txn_status);
        ("TxnStats", txn_stats);
      ]
    ~save ~restore unit_name

let register () =
  Impl.register unit_name factory;
  (* Crash-recovery hook: after the responsible class reactivates a
     coordinator instance, it invokes TxnResume so the WAL's in-doubt
     transactions finish or roll back instead of hanging forever. *)
  Impl.register_resume ~unit_name ~meth:"TxnResume"
