module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Env = Legion_sec.Env
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Impl = Legion_core.Impl
module C = Legion_core.Convert
module Script = Legion_sim.Script

let unit_name = "legion.txn.participant"

type lock = {
  txn : string;
  meth : string;
  args : Value.t list;
  coord : Loid.t option;
      (* Who to ask when a restored checkpoint resurrects this lock
         ([None] on a legacy three-argument prepare). *)
}

let lock_to_value l =
  Value.Record
    [
      ("t", Value.Str l.txn);
      ("m", Value.Str l.meth);
      ("a", Value.List l.args);
      ("c", C.vopt Loid.to_value l.coord);
    ]

let lock_of_value v =
  let ( let* ) r f = Result.bind r f in
  let* txn = C.str_field v "t" in
  let* meth = C.str_field v "m" in
  let args =
    match Value.field_opt v "a" with Some (Value.List l) -> l | _ -> []
  in
  let coord =
    match Value.field_opt v "c" with
    | Some (Value.List [ cv ]) -> Result.to_option (Loid.of_value cv)
    | _ -> None
  in
  Ok { txn; meth; args; coord }

let factory (ctx : Runtime.ctx) : Impl.part =
  let self = Runtime.proc_loid ctx.Runtime.self in
  let env = Env.of_self self in
  let lock : lock option ref = ref None in
  let retry_hint () =
    (Runtime.config ctx.Runtime.rt).Runtime.call_timeout /. 8.
  in
  let verify_armed = ref false in

  (* TxnVerify(): crash-recovery for the lock itself. A reactivated
     participant restores the checkpoint's lock — which may belong to a
     transaction that finished while the checkpoint aged (the classic
     stale-lock resurrection). The state snapshot is atomic across
     units, so a restored lock means the staged method was NOT applied
     as of the restored state; asking the coordinator for the verdict
     makes the resolution safe: a decided commit applies now (the
     redriven TxnCommit then acknowledges idempotently), a dead or
     rolled-back transaction releases, and an undecided one leaves the
     lock for the coordinator's own recovery to drive. *)
  let rec txn_verify _ctx args _env k =
    match args with
    | [] -> (
        match !lock with
        | None -> k (Ok (Value.Int 0))
        | Some { coord = None; _ } -> k (Ok (Value.Int 0))
        | Some ({ coord = Some co; _ } as l) ->
            Runtime.invoke ctx ~dst:co ~meth:"TxnStatus"
              ~args:[ Value.Str l.txn ] ~env (fun r ->
                (* The verdict round-trip races the coordinator's own
                   redrive: a TxnCommit/TxnAbort may have resolved this
                   lock (and possibly a new txn taken it) while the
                   TxnStatus call was in flight. Act only if the lock
                   is still the one sampled above — otherwise the
                   resolution already happened and acting again would
                   double-apply the staged method. *)
                let still_held () =
                  match !lock with
                  | Some l' when String.equal l'.txn l.txn -> true
                  | _ -> false
                in
                match r with
                | Ok (Value.Str ("committing" | "committed")) ->
                    if still_held () then begin
                      lock := None;
                      Runtime.invoke ctx ~dst:self ~meth:l.meth ~args:l.args
                        ~env (fun r ->
                          match r with
                          | Ok _ -> k (Ok (Value.Int 1))
                          | Error e -> k (Error e))
                    end
                    else k (Ok (Value.Int 0))
                | Ok (Value.Str ("compensating" | "compensated" | "unknown"))
                  ->
                    if still_held () then lock := None;
                    k (Ok (Value.Int 1))
                | Ok _ ->
                    (* Undecided ("running"): the coordinator answered
                       and will normally drive the verdict here — but
                       keep watching in case that incarnation dies
                       before it does. *)
                    rearm_verify ();
                    k (Ok (Value.Int 0))
                | Error _ ->
                    (* Coordinator unreachable. Keep the vote standing,
                       but re-ask later: the activation-time TxnVerify
                       poke is fire-and-forget, so a verdict round-trip
                       lost to a fault window would otherwise orphan a
                       resurrected lock forever — the coordinator has
                       already collected its acks and believes every
                       lock is released. *)
                    rearm_verify ();
                    k (Ok (Value.Int 0))))
    | _ -> Impl.bad_args k "TxnVerify takes no arguments"

  (* The lock watchdog: one outstanding timer at a time; it no-ops when
     the lock resolved meanwhile or this incarnation was deactivated,
     and txn_verify re-arms it for every keep-standing outcome, so a
     held lock is re-validated until someone resolves it. *)
  and rearm_verify () =
    if not !verify_armed then begin
      verify_armed := true;
      let rt = ctx.Runtime.rt in
      let delay = 2.0 *. (Runtime.config rt).Runtime.call_timeout in
      Script.at (Runtime.sim rt) ~time:(Runtime.now rt +. delay) (fun () ->
          verify_armed := false;
          if Runtime.is_live ctx.Runtime.self && !lock <> None then
            txn_verify ctx [] env (fun _ -> ()))
    end
  in

  (* TxnPrepare(txn, meth, args): take the prepare lock and vote. The
     staged method is validated now (via the composite's own
     GetMethodNames) so that the later TxnCommit cannot fail with
     No_such_method — a yes vote is a promise the commit will apply.

     Every lock with a named coordinator also arms the verification
     watchdog (below): the runtime's dedup cache is per-incarnation, so
     a crash on this host can let a retransmitted prepare re-execute
     after the transaction was already resolved — a lock nobody will
     ever release unless this participant re-validates it itself. *)
  let do_prepare ~txn ~meth ~margs ~coord k =
    match !lock with
    | Some l when not (String.equal l.txn txn) ->
        (* Held by another transaction: a retryable refusal, shed
           exactly like an overloaded call — the lock clears as
           soon as the holder commits or aborts. *)
        k (Error (Err.Txn_locked { holder = l.txn; retry_after = retry_hint () }))
    | Some _ ->
        (* Duplicate prepare (coordinator retransmission): the
           standing yes vote holds. *)
        k Impl.ok_unit
    | None ->
        (* Reserve the lock BEFORE the asynchronous repertoire check:
           two in-flight prepares must never both pass the free-lock
           test and double-stage — the second would silently overwrite
           the first's yes vote and its commit would apply nothing. A
           concurrent prepare now sees Txn_locked and retries; the
           reservation is released if validation refuses. *)
        lock := Some { txn; meth; args = margs; coord };
        Runtime.invoke ctx ~dst:self ~meth:"GetMethodNames" ~args:[] ~env
          (fun r ->
            let known =
              match r with
              | Ok (Value.List names) ->
                  List.exists
                    (function
                      | Value.Str n -> String.equal n meth | _ -> false)
                    names
              | _ -> false
            in
            if known then begin
              if coord <> None then rearm_verify ();
              k Impl.ok_unit
            end
            else begin
              (match !lock with
              | Some l when String.equal l.txn txn -> lock := None
              | _ -> ());
              k (Error (Err.Refused (Printf.sprintf
                   "cannot stage unknown method %S" meth)))
            end)
  in
  let txn_prepare _ctx args _env k =
    match args with
    | [ Value.Str txn; Value.Str meth; Value.List margs ] ->
        do_prepare ~txn ~meth ~margs ~coord:None k
    | [ Value.Str txn; Value.Str meth; Value.List margs; cv ] ->
        do_prepare ~txn ~meth ~margs
          ~coord:(Result.to_option (Loid.of_value cv))
          k
    | _ -> Impl.bad_args k "TxnPrepare expects (txn, meth, args[, coord])"
  in

  (* TxnCommit(txn): apply the staged method. The lock is cleared
     before applying so a retransmitted commit is answered idempotently
     instead of applying twice. *)
  let txn_commit _ctx args _env k =
    match args with
    | [ Value.Str txn ] -> (
        match !lock with
        | Some l when String.equal l.txn txn ->
            lock := None;
            Runtime.invoke ctx ~dst:self ~meth:l.meth ~args:l.args ~env
              (fun r ->
                match r with Ok _ -> k Impl.ok_unit | Error e -> k (Error e))
        | _ ->
            (* No lock under this txn: already committed (retransmit)
               or never prepared (abort raced ahead) — both are safe to
               acknowledge. *)
            k Impl.ok_unit)
    | _ -> Impl.bad_args k "TxnCommit expects one txn id"
  in

  let txn_abort _ctx args _env k =
    match args with
    | [ Value.Str txn ] ->
        (match !lock with
        | Some l when String.equal l.txn txn -> lock := None
        | _ -> ());
        k Impl.ok_unit
    | _ -> Impl.bad_args k "TxnAbort expects one txn id"
  in

  (* TxnHeld(): the prepare lock's holder, as an optional — the E20
     orphaned-lock probe. *)
  let txn_held _ctx args _env k =
    match args with
    | [] ->
        k (Ok (C.vopt (fun l -> Value.Str l.txn) !lock))
    | _ -> Impl.bad_args k "TxnHeld takes no arguments"
  in

  let save () =
    Value.Record [ ("lk", C.vopt lock_to_value !lock) ]
  in
  let restore v =
    match Value.field_opt v "lk" with
    | None | Some (Value.List []) | Some Value.Unit ->
        lock := None;
        Ok ()
    | Some (Value.List [ lv ]) ->
        Result.map
          (fun l ->
            lock := Some l;
            (* A resurrected lock must be re-validated even if the
               class's activation-time TxnVerify poke is lost in
               flight — arm the participant's own retry chain now. *)
            if l.coord <> None then rearm_verify ())
          (lock_of_value lv)
    | Some _ -> Error "participant: malformed lock field"
  in

  Impl.part
    ~methods:
      [
        ("TxnPrepare", txn_prepare);
        ("TxnCommit", txn_commit);
        ("TxnAbort", txn_abort);
        ("TxnHeld", txn_held);
        ("TxnVerify", txn_verify);
      ]
    ~save ~restore unit_name

let register () =
  Impl.register unit_name factory;
  (* Reactivated participants re-validate any restored prepare lock
     against its coordinator (stale-lock resurrection, see TxnVerify). *)
  Impl.register_resume ~unit_name ~meth:"TxnVerify"
