(** Atomic multi-object invocations: the transaction coordinator.

    Legion has no built-in transactions — the paper leaves cross-object
    consistency to "the objects themselves". This unit is that object:
    a coordinator composed like any other implementation unit, driving
    a set of {!Participant}-bearing objects through either protocol:

    - {b 2PC} ([TxnRun("2pc", steps)]): prepare locks race in parallel;
      a unanimous yes makes the commit decision, which is written to
      the coordinator's write-ahead log {e before} the client learns
      the outcome; commit acknowledgements then drain asynchronously
      and are re-driven until every participant has applied. Any no
      vote — including [Err.Stale_epoch] from a fenced participant,
      which is always an abort vote, never a hang — aborts and releases
      all locks.
    - {b Saga} ([TxnRun("saga", steps)]): steps apply immediately in
      order; a failure at step [i] runs the typed compensations of
      steps [i-1 .. 0] in reverse. Every saga step must carry a
      compensation method.

    Durability rides the Jurisdiction store named by [Configure]: the
    WAL of unfinished transactions is overwritten in place
    ({!Legion_store.Persistent.put_named}), and each participant's
    state is snapshotted into the store's per-LOID version history
    tagged with the transaction id — first [Staged] at prepare/apply,
    then flipped [Committed]/[Compensated] as the outcome lands. The
    E20 checker proves atomicity from these histories alone.

    Crash recovery: {!register} hooks [TxnResume] into
    {!Legion_core.Impl.register_resume}, so the responsible class
    invokes it after reactivating a crashed coordinator. Presumed
    abort: a durable [Committing] record resumes toward commit
    (committed work is never rolled back — [Resume] trace decision
    ["commit"]); anything still [Running] aborts; a saga compensates
    exactly the steps the store history proves applied.

    Methods: [Configure {store}], [TxnRun(mode, steps)] (step records:
    [dst], [meth], [args], [cmeth], [cargs]; participants must be
    distinct), [TxnResume()], [TxnStatus(txn)] (the authoritative
    phase, ["unknown"] for a forgotten or never-seen id — how a
    reactivated participant re-validates a resurrected prepare lock),
    [TxnStats()] (committed / aborted / compensations / resumed /
    indoubt counters). *)

val unit_name : string
(** ["legion.txn.coord"]. *)

val factory : Legion_core.Impl.factory

val register : unit -> unit
(** Register the factory and the [TxnResume] crash-recovery hook. *)
