(** Jurisdiction storage: Object Persistent Addresses over a disk set.

    "An Object Persistent Address will typically be a file name, and
    will only be meaningful within the Jurisdiction in which it
    resides" (§3.1.1). [Opa.t] is (disk name, file name); a
    [Persistent.t] stripes writes across its disks round-robin.

    The store also keeps a pruned-but-queryable {e version history} per
    LOID: every [put] appends an entry recording the version, its
    address, and the transaction (if any) that wrote it. File pruning
    still bounds bytes on disk, but entries survive their files (marked
    unavailable), so atomicity audits ({!history}) and event-sourced
    restores ({!rewind_to}) work over the full retained window. *)

module Value := Legion_wire.Value

module Opa : sig
  type t = { disk : string; file : string }

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val to_value : t -> Value.t
  val of_value : Value.t -> (t, string) result
end

type mark =
  | Applied  (** A plain (non-transactional) store or checkpoint. *)
  | Staged
      (** Written under a transaction whose outcome is not yet known;
          never pruned while in this state. *)
  | Committed  (** The owning transaction committed. *)
  | Compensated
      (** The owning transaction aborted and this write was rolled back
          (2PC lock released or saga compensation applied). *)

val mark_name : mark -> string
(** ["applied"] / ["staged"] / ["committed"] / ["compensated"]. *)

module History : sig
  type entry = {
    version : int;  (** Store-wide monotone version number. *)
    opa : Opa.t;
    txn : string option;  (** Writing transaction id, if any. *)
    mutable mark : mark;
    mutable available : bool;
        (** [false] once the version file was pruned; the entry remains
            queryable but not {!rewind_to}-able. *)
  }
end

type t

val create : ?keep:int -> ?hist_cap:int -> disks:Disk.t list -> unit -> t
(** [keep] bounds how many {e plain} (non-transactional) version files
    survive per LOID (default 2: the newest plus its predecessor, so an
    address handed out just before a re-store stays readable).
    Transactional snapshots never consume [keep] slots — they are
    retained while staged (in doubt) or while holding the newest
    committed version, and their files are dropped as soon as they are
    neither. [hist_cap] (default 64) bounds the retained history
    entries per LOID; protected transactional entries are never dropped
    by either bound.
    @raise Invalid_argument on an empty disk list, [keep < 1], or
    [hist_cap < 1]. *)

val disks : t -> Disk.t list

val put : ?txn:string -> t -> loid:Legion_naming.Loid.t -> string -> Opa.t
(** Store a blob for an object: writes a fresh version file and returns
    its address, then prunes older versions of the same LOID beyond the
    configured [keep] — repeated stores (periodic checkpoints) keep
    [total_files]/[total_bytes] bounded instead of leaking every
    superseded version. With [?txn] the new history entry is tagged
    with that transaction id and enters [Staged]; resolve it later with
    {!mark_txn}. If the transaction was already resolved for this
    object, the entry inherits the verdict directly (a late snapshot
    must not read as a partial commit). *)

val put_at : t -> Opa.t -> string -> (unit, string) result
(** Overwrite a specific address (re-storing at a known OPA). Fails if
    the disk is not part of this store. Bypasses the history: the entry
    that minted the OPA keeps describing it. *)

val get : t -> Opa.t -> string option
val remove : t -> Opa.t -> unit

(** {1 Version history} *)

val history : t -> loid:Legion_naming.Loid.t -> History.entry list
(** All retained entries for the object, oldest first. *)

val history_loids : t -> Legion_naming.Loid.t list
(** Every LOID with retained history, sorted by string form — a
    deterministic iteration order for audits. *)

val mark_txn :
  t -> loid:Legion_naming.Loid.t -> txn:string -> mark -> unit
(** Resolve every still-staged entry the transaction wrote for this
    object. Resolution is one-way: already resolved entries are left
    alone, so a redriven outcome is idempotent and a contradictory one
    cannot flip a verdict. Marking [Committed] advances the object's
    committed watermark (see {!last_committed}) and may release
    entries/files the pruner was holding for the in-doubt window. *)

val last_committed : t -> loid:Legion_naming.Loid.t -> int option
(** Version of the newest committed transactional write, if any. *)

val rewind_to :
  t -> loid:Legion_naming.Loid.t -> version:int -> (Opa.t, string) result
(** Event-sourced restore: re-store the blob of a historical version as
    the newest version (the history is append-only; nothing is
    rewritten) and return the fresh address. Fails if the version is
    unknown, or its file was pruned. *)

(** {1 Named blobs}

    Small fixed-name records stored beside the version files — the
    transaction coordinator's write-ahead log. Overwritten in place on
    a fixed disk, so they never grow the file count and are excluded
    from version pruning. *)

val put_named : t -> name:string -> string -> unit
val get_named : t -> name:string -> string option
val remove_named : t -> name:string -> unit

val total_bytes : t -> int
val total_files : t -> int
