(** Jurisdiction storage: Object Persistent Addresses over a disk set.

    "An Object Persistent Address will typically be a file name, and
    will only be meaningful within the Jurisdiction in which it
    resides" (§3.1.1). [Opa.t] is (disk name, file name); a
    [Persistent.t] stripes writes across its disks round-robin. *)

module Value := Legion_wire.Value

module Opa : sig
  type t = { disk : string; file : string }

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
  val to_value : t -> Value.t
  val of_value : Value.t -> (t, string) result
end

type t

val create : ?keep:int -> disks:Disk.t list -> unit -> t
(** [keep] bounds how many version files survive per LOID (default 2:
    the newest plus its predecessor, so an address handed out just
    before a re-store stays readable).
    @raise Invalid_argument on an empty disk list or [keep < 1]. *)

val disks : t -> Disk.t list

val put : t -> loid:Legion_naming.Loid.t -> string -> Opa.t
(** Store a blob for an object: writes a fresh version file and returns
    its address, then prunes older versions of the same LOID beyond the
    configured [keep] — repeated stores (periodic checkpoints) keep
    [total_files]/[total_bytes] bounded instead of leaking every
    superseded version. *)

val put_at : t -> Opa.t -> string -> (unit, string) result
(** Overwrite a specific address (re-storing at a known OPA). Fails if
    the disk is not part of this store. *)

val get : t -> Opa.t -> string option
val remove : t -> Opa.t -> unit
val total_bytes : t -> int
val total_files : t -> int
