module Value = Legion_wire.Value
module Loid = Legion_naming.Loid

module Opa = struct
  type t = { disk : string; file : string }

  let equal a b = String.equal a.disk b.disk && String.equal a.file b.file
  let pp ppf t = Format.fprintf ppf "%s:%s" t.disk t.file

  let to_value t =
    Value.Record [ ("d", Value.Str t.disk); ("f", Value.Str t.file) ]

  let of_value v =
    let ( let* ) r f = Result.bind r f in
    let err e = Format.asprintf "opa: %a" Value.pp_error e in
    let* d = Result.map_error err (Result.bind (Value.field v "d") Value.to_str) in
    let* f = Result.map_error err (Result.bind (Value.field v "f") Value.to_str) in
    Ok { disk = d; file = f }
end

type mark = Applied | Staged | Committed | Compensated

let mark_name = function
  | Applied -> "applied"
  | Staged -> "staged"
  | Committed -> "committed"
  | Compensated -> "compensated"

module History = struct
  type entry = {
    version : int;
    opa : Opa.t;
    txn : string option;
    mutable mark : mark;
    mutable available : bool;
  }
end

type t = {
  disks : Disk.t list;
  keep : int;
  hist_cap : int;
  mutable rr : int;
  mutable version : int;
  hist : History.entry list ref Loid.Table.t;  (* newest first *)
  committed_mark : int Loid.Table.t;  (* newest committed-txn version *)
  verdicts : (string, mark) Hashtbl.t;
      (* (loid/txn) -> resolved verdict. Survives the case where the
         resolution arrives before any write for the pair has landed
         (the coordinator's outcome mark racing a delayed prepare-time
         snapshot): a later [put ~txn] must still inherit the verdict
         instead of staging forever. *)
}

let create ?(keep = 2) ?(hist_cap = 64) ~disks () =
  if disks = [] then invalid_arg "Persistent.create: no disks";
  if keep < 1 then invalid_arg "Persistent.create: keep < 1";
  if hist_cap < 1 then invalid_arg "Persistent.create: hist_cap < 1";
  {
    disks;
    keep;
    hist_cap;
    rr = 0;
    version = 0;
    hist = Loid.Table.create ();
    committed_mark = Loid.Table.create ();
    verdicts = Hashtbl.create 64;
  }

let verdict_key loid txn = Loid.to_string loid ^ "/" ^ txn

let disks t = t.disks

let find_disk t name = List.find_opt (fun d -> String.equal (Disk.name d) name) t.disks

let entries_ref t loid =
  match Loid.Table.find t.hist loid with
  | Some r -> r
  | None ->
      let r = ref [] in
      Loid.Table.set t.hist loid r;
      r

let mark_version t ~loid =
  Option.value ~default:0 (Loid.Table.find t.committed_mark loid)

(* An entry the pruner must not touch: a staged (in-doubt) transaction
   write — recovery may still need it to decide or audit the txn — or
   the newest committed transactional snapshot (the one at the commit
   watermark), which keeps the last committed state itself restorable
   through [rewind_to]. Resolved entries below the watermark, and
   compensated ones, only need their history rows — their files are
   droppable. Plain (untagged) checkpoint writes are never protected;
   they age out under [keep]/[hist_cap] exactly as before. *)
let protected t ~loid (e : History.entry) =
  e.History.mark = Staged
  || (e.History.mark = Committed && e.History.version = mark_version t ~loid)

(* Version files for one LOID are scattered round-robin across the disk
   set; without pruning, every [put] (an explicit store or a periodic
   checkpoint falling back to a fresh file) leaks the superseded
   version forever. Keep the newest [t.keep] and drop the rest —
   except files whose history entry is {!protected}. Dropped files
   leave their entry behind with [available = false], so the history
   stays queryable after the bytes are gone. *)
let prune t ~loid =
  let entries = entries_ref t loid in
  let entry_for v =
    List.find_opt (fun e -> e.History.version = v) !entries
  in
  let prefix = Loid.to_string loid ^ ".v" in
  let version_of file =
    (* "<loid>.v<N>.opr" -> N *)
    let tail = String.sub file (String.length prefix)
        (String.length file - String.length prefix)
    in
    match String.index_opt tail '.' with
    | None -> None
    | Some dot -> int_of_string_opt (String.sub tail 0 dot)
  in
  let versions =
    List.concat_map
      (fun d ->
        List.filter_map
          (fun key ->
            if String.starts_with ~prefix key then
              Option.map (fun v -> (v, d, key)) (version_of key)
            else None)
          (Disk.keys d))
      t.disks
  in
  let newest_first =
    List.sort (fun (a, _, _) (b, _, _) -> Int.compare b a) versions
  in
  (* Only plain checkpoint files consume [keep] slots. Transactional
     snapshots live and die by {!protected} alone — otherwise a burst
     of txn writes would evict the Magistrate's newest checkpoint and
     strand the object's activation record. *)
  let plain_seen = ref 0 in
  List.iter
    (fun (v, d, key) ->
      match entry_for v with
      | Some e when e.History.txn <> None ->
          if not (protected t ~loid e) then begin
            Disk.delete d ~key;
            e.History.available <- false
          end
      | Some e ->
          incr plain_seen;
          if !plain_seen > t.keep then begin
            Disk.delete d ~key;
            e.History.available <- false
          end
      | None ->
          incr plain_seen;
          if !plain_seen > t.keep then Disk.delete d ~key)
    newest_first;
  (* The entry list itself is bounded too: beyond [hist_cap] positions
     (newest first), unprotected entries are forgotten. *)
  let rec cap i = function
    | [] -> []
    | e :: rest ->
        if i < t.hist_cap || protected t ~loid e then e :: cap (i + 1) rest
        else cap (i + 1) rest
  in
  entries := cap 0 !entries

let put ?txn t ~loid blob =
  let disk = List.nth t.disks (t.rr mod List.length t.disks) in
  t.rr <- t.rr + 1;
  t.version <- t.version + 1;
  let file = Printf.sprintf "%s.v%d.opr" (Loid.to_string loid) t.version in
  Disk.write disk ~key:file blob;
  let opa = { Opa.disk = Disk.name disk; file } in
  let entries = entries_ref t loid in
  (* A transactional put normally stages; but a snapshot landing after
     its transaction was already resolved for this object (the
     coordinator's SaveState replies race its outcome marks) inherits
     the verdict — otherwise the late entry would stay Staged forever
     and read as a partial commit in the atomicity audit. *)
  let mark =
    match txn with
    | None -> Applied
    | Some id -> (
        match
          List.find_opt
            (fun e ->
              e.History.txn = Some id
              && (e.History.mark = Committed || e.History.mark = Compensated))
            !entries
        with
        | Some e -> e.History.mark
        | None -> (
            match Hashtbl.find_opt t.verdicts (verdict_key loid id) with
            | Some ((Committed | Compensated) as m) -> m
            | _ -> Staged))
  in
  entries :=
    { History.version = t.version; opa; txn; mark; available = true }
    :: !entries;
  (if mark = Committed && t.version > mark_version t ~loid then
     Loid.Table.set t.committed_mark loid t.version);
  prune t ~loid;
  opa

let put_at t (opa : Opa.t) blob =
  match find_disk t opa.Opa.disk with
  | None -> Error (Printf.sprintf "no disk %s in this jurisdiction" opa.Opa.disk)
  | Some d ->
      Disk.write d ~key:opa.Opa.file blob;
      Ok ()

let get t (opa : Opa.t) =
  match find_disk t opa.Opa.disk with
  | None -> None
  | Some d -> Disk.read d ~key:opa.Opa.file

let remove t (opa : Opa.t) =
  match find_disk t opa.Opa.disk with
  | None -> ()
  | Some d ->
      Disk.delete d ~key:opa.Opa.file;
      Loid.Table.iter
        (fun _ entries ->
          List.iter
            (fun e ->
              if Opa.equal e.History.opa opa then e.History.available <- false)
            !entries)
        t.hist

let history t ~loid =
  match Loid.Table.find t.hist loid with
  | None -> []
  | Some entries -> List.rev !entries

let history_loids t =
  let ls = Loid.Table.fold (fun l _ acc -> l :: acc) t.hist [] in
  List.sort
    (fun a b -> String.compare (Loid.to_string a) (Loid.to_string b))
    ls

let mark_txn t ~loid ~txn mark =
  (* Remember the verdict even if no write for the pair has landed yet:
     the coordinator's outcome mark can race a delayed prepare-time
     snapshot, and the late [put ~txn] must find something to inherit.
     First verdict sticks (resolution is one-way). *)
  (match mark with
  | Committed | Compensated ->
      let key = verdict_key loid txn in
      if not (Hashtbl.mem t.verdicts key) then Hashtbl.add t.verdicts key mark
  | Applied | Staged -> ());
  match Loid.Table.find t.hist loid with
  | None -> ()
  | Some entries ->
      (* Resolution is one-way: only staged entries take the verdict.
         Re-marking with the same verdict is the coordinator's
         idempotent redrive; a contradictory re-resolution cannot flip
         an already resolved write. *)
      List.iter
        (fun e ->
          if e.History.txn = Some txn && e.History.mark = Staged then
            e.History.mark <- mark)
        !entries;
      (if mark = Committed then
         let mv =
           List.fold_left
             (fun acc e ->
               if e.History.txn = Some txn && e.History.mark = Committed
               then Stdlib.max acc e.History.version
               else acc)
             0 !entries
         in
         if mv > mark_version t ~loid then
           Loid.Table.set t.committed_mark loid mv);
      (* Advancing the committed mark (or resolving a staged txn) may
         release previously protected entries; re-prune. *)
      prune t ~loid

let last_committed t ~loid = Loid.Table.find t.committed_mark loid

let rewind_to t ~loid ~version =
  match Loid.Table.find t.hist loid with
  | None -> Error "rewind: no history for object"
  | Some entries -> (
      match
        List.find_opt (fun e -> e.History.version = version) !entries
      with
      | None -> Error (Printf.sprintf "rewind: no version %d in history" version)
      | Some e when not e.History.available ->
          Error (Printf.sprintf "rewind: version %d was pruned" version)
      | Some e -> (
          match get t e.History.opa with
          | None -> Error (Printf.sprintf "rewind: version %d blob missing" version)
          | Some blob ->
              (* Event-sourced restore: the rewound state re-enters the
                 history as the newest version, nothing is rewritten. *)
              Ok (put t ~loid blob)))

(* Named blobs: small fixed-name records (a transaction coordinator's
   write-ahead log) stored beside the version files. Overwritten in
   place on the first disk, so they never grow the file count. *)
let put_named t ~name blob =
  Disk.write (List.hd t.disks) ~key:name blob

let get_named t ~name = Disk.read (List.hd t.disks) ~key:name
let remove_named t ~name = Disk.delete (List.hd t.disks) ~key:name

let total_bytes t = List.fold_left (fun acc d -> acc + Disk.bytes_used d) 0 t.disks
let total_files t = List.fold_left (fun acc d -> acc + Disk.file_count d) 0 t.disks
