module Value = Legion_wire.Value
module Loid = Legion_naming.Loid

module Opa = struct
  type t = { disk : string; file : string }

  let equal a b = String.equal a.disk b.disk && String.equal a.file b.file
  let pp ppf t = Format.fprintf ppf "%s:%s" t.disk t.file

  let to_value t =
    Value.Record [ ("d", Value.Str t.disk); ("f", Value.Str t.file) ]

  let of_value v =
    let ( let* ) r f = Result.bind r f in
    let err e = Format.asprintf "opa: %a" Value.pp_error e in
    let* d = Result.map_error err (Result.bind (Value.field v "d") Value.to_str) in
    let* f = Result.map_error err (Result.bind (Value.field v "f") Value.to_str) in
    Ok { disk = d; file = f }
end

type t = {
  disks : Disk.t list;
  keep : int;
  mutable rr : int;
  mutable version : int;
}

let create ?(keep = 2) ~disks () =
  if disks = [] then invalid_arg "Persistent.create: no disks";
  if keep < 1 then invalid_arg "Persistent.create: keep < 1";
  { disks; keep; rr = 0; version = 0 }

let disks t = t.disks

let find_disk t name = List.find_opt (fun d -> String.equal (Disk.name d) name) t.disks

(* Version files for one LOID are scattered round-robin across the disk
   set; without pruning, every [put] (an explicit store or a periodic
   checkpoint falling back to a fresh file) leaks the superseded
   version forever. Keep the newest [t.keep] and drop the rest. *)
let prune t ~loid =
  let prefix = Loid.to_string loid ^ ".v" in
  let version_of file =
    (* "<loid>.v<N>.opr" -> N *)
    let tail = String.sub file (String.length prefix)
        (String.length file - String.length prefix)
    in
    match String.index_opt tail '.' with
    | None -> None
    | Some dot -> int_of_string_opt (String.sub tail 0 dot)
  in
  let versions =
    List.concat_map
      (fun d ->
        List.filter_map
          (fun key ->
            if String.starts_with ~prefix key then
              Option.map (fun v -> (v, d, key)) (version_of key)
            else None)
          (Disk.keys d))
      t.disks
  in
  let newest_first =
    List.sort (fun (a, _, _) (b, _, _) -> Int.compare b a) versions
  in
  List.iteri
    (fun i (_, d, key) -> if i >= t.keep then Disk.delete d ~key)
    newest_first

let put t ~loid blob =
  let disk = List.nth t.disks (t.rr mod List.length t.disks) in
  t.rr <- t.rr + 1;
  t.version <- t.version + 1;
  let file = Printf.sprintf "%s.v%d.opr" (Loid.to_string loid) t.version in
  Disk.write disk ~key:file blob;
  prune t ~loid;
  { Opa.disk = Disk.name disk; file }

let put_at t (opa : Opa.t) blob =
  match find_disk t opa.Opa.disk with
  | None -> Error (Printf.sprintf "no disk %s in this jurisdiction" opa.Opa.disk)
  | Some d ->
      Disk.write d ~key:opa.Opa.file blob;
      Ok ()

let get t (opa : Opa.t) =
  match find_disk t opa.Opa.disk with
  | None -> None
  | Some d -> Disk.read d ~key:opa.Opa.file

let remove t (opa : Opa.t) =
  match find_disk t opa.Opa.disk with
  | None -> ()
  | Some d -> Disk.delete d ~key:opa.Opa.file

let total_bytes t = List.fold_left (fun acc d -> acc + Disk.bytes_used d) 0 t.disks
let total_files t = List.fold_left (fun acc d -> acc + Disk.file_count d) 0 t.disks
