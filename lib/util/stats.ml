type t = {
  mutable samples : float array;
  mutable len : int;
  mutable sum : float;
  mutable sum_sq : float;
  mutable mn : float;
  mutable mx : float;
  (* Sorted cache is invalidated by every [add]. *)
  mutable sorted : float array option;
}

let create () =
  {
    samples = Array.make 16 0.0;
    len = 0;
    sum = 0.0;
    sum_sq = 0.0;
    mn = infinity;
    mx = neg_infinity;
    sorted = None;
  }

let ensure_capacity t =
  if t.len = Array.length t.samples then begin
    let bigger = Array.make (2 * Array.length t.samples) 0.0 in
    Array.blit t.samples 0 bigger 0 t.len;
    t.samples <- bigger
  end

let add t x =
  ensure_capacity t;
  t.samples.(t.len) <- x;
  t.len <- t.len + 1;
  t.sum <- t.sum +. x;
  t.sum_sq <- t.sum_sq +. (x *. x);
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x;
  t.sorted <- None

let add_list t xs = List.iter (add t) xs

let count t = t.len
let is_empty t = t.len = 0
let total t = t.sum
let mean t = if t.len = 0 then 0.0 else t.sum /. float_of_int t.len

let variance t =
  if t.len < 2 then 0.0
  else
    let n = float_of_int t.len in
    let m = t.sum /. n in
    Float.max 0.0 ((t.sum_sq /. n) -. (m *. m))

let stddev t = sqrt (variance t)

let min t =
  if t.len = 0 then invalid_arg "Stats.min: empty";
  t.mn

let max t =
  if t.len = 0 then invalid_arg "Stats.max: empty";
  t.mx

let sorted t =
  match t.sorted with
  | Some s -> s
  | None ->
      let s = Array.sub t.samples 0 t.len in
      Array.sort compare s;
      t.sorted <- Some s;
      s

let percentile t p =
  if t.len = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: out of range";
  let s = sorted t in
  let n = Array.length s in
  if n = 1 then s.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then s.(lo)
    else
      let frac = rank -. float_of_int lo in
      (s.(lo) *. (1.0 -. frac)) +. (s.(hi) *. frac)

let median t = percentile t 50.0

let merge a b =
  let t = create () in
  for i = 0 to a.len - 1 do
    add t a.samples.(i)
  done;
  for i = 0 to b.len - 1 do
    add t b.samples.(i)
  done;
  t

let clear t =
  t.len <- 0;
  t.sum <- 0.0;
  t.sum_sq <- 0.0;
  t.mn <- infinity;
  t.mx <- neg_infinity;
  t.sorted <- None

let pp ppf t =
  if t.len = 0 then Format.fprintf ppf "n=0"
  else
    Format.fprintf ppf "n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f" t.len
      (mean t) (median t) (percentile t 99.0) t.mx

module Histogram = struct
  type h = { bounds : float array; cells : int array; mutable tot : int }

  let create ~buckets =
    let n = Array.length buckets in
    if n = 0 then invalid_arg "Histogram.create: empty bounds";
    for i = 1 to n - 1 do
      if buckets.(i) <= buckets.(i - 1) then
        invalid_arg "Histogram.create: bounds not strictly ascending"
    done;
    { bounds = Array.copy buckets; cells = Array.make (n + 1) 0; tot = 0 }

  let linear ~lo ~width ~count =
    if count <= 0 then invalid_arg "Histogram.linear: count must be positive";
    if width <= 0.0 then invalid_arg "Histogram.linear: width must be positive";
    create ~buckets:(Array.init count (fun i -> lo +. (width *. float_of_int (i + 1))))

  let bounds h = Array.copy h.bounds

  let add h x =
    let n = Array.length h.bounds in
    let rec find i = if i = n then n else if x <= h.bounds.(i) then i else find (i + 1) in
    let i = find 0 in
    h.cells.(i) <- h.cells.(i) + 1;
    h.tot <- h.tot + 1

  let counts h =
    let n = Array.length h.bounds in
    List.init (n + 1) (fun i ->
        if i = n then (None, h.cells.(i)) else (Some h.bounds.(i), h.cells.(i)))

  let total h = h.tot

  let merge a b =
    if a.bounds <> b.bounds then
      invalid_arg "Histogram.merge: mismatched buckets";
    {
      bounds = Array.copy a.bounds;
      cells = Array.init (Array.length a.cells) (fun i -> a.cells.(i) + b.cells.(i));
      tot = a.tot + b.tot;
    }

  let percentile h p =
    if h.tot = 0 then invalid_arg "Histogram.percentile: empty";
    if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: out of range";
    (* Nearest-rank: the k-th smallest sample with
       k = ceil(p/100 * n), clamped to [1, n]. We only know which bucket
       that sample fell in, so report the bucket's upper bound
       (infinity for the overflow bucket). *)
    let n = h.tot in
    let k =
      Stdlib.min n
        (Stdlib.max 1
           (int_of_float (Float.ceil (p /. 100.0 *. float_of_int n))))
    in
    let nb = Array.length h.bounds in
    let rec walk i cum =
      if i = nb then infinity
      else
        let cum = cum + h.cells.(i) in
        if cum >= k then h.bounds.(i) else walk (i + 1) cum
    in
    walk 0 0

  let pp ppf h =
    let pp_cell ppf (bound, c) =
      match bound with
      | Some b -> Format.fprintf ppf "<=%.3g:%d" b c
      | None -> Format.fprintf ppf ">:%d" c
    in
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ") pp_cell)
      (counts h)
end
