(** Calendar event queue: an O(1) amortised priority queue for
    discrete-event simulation.

    A calendar queue (Brown, CACM 1988) hashes each event into a
    bucket by its "day" — [floor (time / width)] — modulo the number
    of buckets; a cursor sweeps the buckets in day order, so [pop] is
    O(1) when the width tracks the event-time density. The structure
    resizes itself (bucket count and day width) as occupancy changes,
    and falls back to a direct minimum scan over bucket heads when a
    whole "year" passes without an event, so sparse or clustered
    schedules stay correct (if slower).

    Keys are [(time, seq)] pairs ordered lexicographically — the same
    total order the simulation engine uses, where [seq] breaks
    same-instant ties in scheduling order. Times must be finite and
    [>= 0.]; [push] raises [Invalid_argument] otherwise.

    The queue is a plain container: it never inspects or mutates the
    elements it stores, and popping is total — cancellation semantics
    (lazy skipping) belong to the caller. *)

type 'a t

val create : ?nbuckets:int -> ?width:float -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] makes an empty queue. [dummy] fills unused
    array slots and is never returned. [nbuckets] (default 8) is
    rounded up to a power of two; [width] (default 1.0) is the initial
    day width in key-time units — both adapt automatically as the
    queue grows, so the defaults are fine for almost every caller.
    @raise Invalid_argument when [nbuckets <= 0] or [width <= 0.]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> seq:int -> 'a -> unit
(** Insert an element with key [(time, seq)]. Keys need not be
    distinct, but equal keys pop in an unspecified relative order —
    engine callers guarantee [seq] uniqueness. *)

val peek : 'a t -> 'a option
(** The element with the least key, without removing it. *)

val peek_time : 'a t -> float
(** The least key's time; [nan] when empty (callers check
    {!is_empty} first on hot paths to avoid the option). *)

val pop : 'a t -> 'a option
(** Remove and return the element with the least key. *)

val clear : 'a t -> unit
(** Drop every element (buckets are retained at current geometry). *)
