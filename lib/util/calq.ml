(* Calendar event queue (Brown, CACM 1988), adapted to the engine's
   (time, seq) total order.

   Layout: [nbuckets] (a power of two) buckets; an event with key time
   [t] lives in bucket [day land mask] where [day = floor (t / width)].
   Each bucket is a binary min-heap over (time, seq) held in parallel
   arrays, so the bucket minimum reads in O(1), pops in O(log b), and
   inserts cost O(log b) worst case — and only O(1) sift work for the
   dominant in-order arrivals, which land at a leaf and stay there.
   Heap buckets are what make the structure robust to key skew: when a
   pile of far-future keys (cancelled timeouts, watchdogs) defeats the
   width adaptation and a single bucket absorbs the whole near-term
   working set, operations degrade to the plain binary-heap bounds
   instead of the O(n) shifts a sorted-array bucket would pay.

   A cursor [cur_day] sweeps days in order: [locate] probes at most one
   "year" (nbuckets consecutive days) for a bucket whose minimum
   belongs to the probed day, and otherwise falls back to a direct
   minimum scan over all bucket heads — which keeps sparse schedules
   correct and re-anchors the cursor. Ordering correctness needs only
   that [day_of] is a deterministic, monotone nondecreasing function
   of time, which division-then-truncate is; days past the integer
   range clamp to a single far-future day and are served by the
   fallback scan. *)

type 'a bucket = {
  mutable kt : float array;  (* key times; heap-ordered with ks *)
  mutable ks : int array;    (* key seqs *)
  mutable kd : int array;    (* integer day of each key *)
  mutable ke : 'a array;     (* elements *)
  mutable len : int;
}

type 'a t = {
  dummy : 'a;
  mutable buckets : 'a bucket array;
  mutable mask : int;        (* Array.length buckets - 1 *)
  mutable width : float;     (* day width, in key-time units *)
  mutable size : int;
  mutable cur_day : int;     (* lower bound on every queued key's day *)
  min_nbuckets : int;        (* shrink floor *)
}

let day_clamp = 1 lsl 60

let day_of width time =
  let q = time /. width in
  if q >= 1e18 then day_clamp else int_of_float q

let new_bucket () = { kt = [||]; ks = [||]; kd = [||]; ke = [||]; len = 0 }

let rec pow2_ge n x = if x >= n then x else pow2_ge n (2 * x)

let create ?(nbuckets = 8) ?(width = 1.0) ~dummy () =
  if nbuckets <= 0 then invalid_arg "Calq.create: nbuckets";
  if not (Float.is_finite width) || width <= 0.0 then
    invalid_arg "Calq.create: width";
  let nb = pow2_ge nbuckets 1 in
  {
    dummy;
    buckets = Array.init nb (fun _ -> new_bucket ());
    mask = nb - 1;
    width;
    size = 0;
    cur_day = 0;
    min_nbuckets = nb;
  }

let length t = t.size
let is_empty t = t.size = 0

let ensure_room b dummy =
  let cap = Array.length b.kt in
  if b.len = cap then begin
    let ncap = if cap = 0 then 4 else 2 * cap in
    let nt = Array.make ncap 0.0
    and ns = Array.make ncap 0
    and nd = Array.make ncap 0
    and ne = Array.make ncap dummy in
    Array.blit b.kt 0 nt 0 b.len;
    Array.blit b.ks 0 ns 0 b.len;
    Array.blit b.kd 0 nd 0 b.len;
    Array.blit b.ke 0 ne 0 b.len;
    b.kt <- nt;
    b.ks <- ns;
    b.kd <- nd;
    b.ke <- ne
  end

(* (time, seq) at [i] strictly precedes the key at [j]. *)
let key_lt b i j =
  b.kt.(i) < b.kt.(j) || (b.kt.(i) = b.kt.(j) && b.ks.(i) < b.ks.(j))

let swap b i j =
  let ti = b.kt.(i) and si = b.ks.(i) and di = b.kd.(i) and ei = b.ke.(i) in
  b.kt.(i) <- b.kt.(j); b.ks.(i) <- b.ks.(j);
  b.kd.(i) <- b.kd.(j); b.ke.(i) <- b.ke.(j);
  b.kt.(j) <- ti; b.ks.(j) <- si; b.kd.(j) <- di; b.ke.(j) <- ei

let bucket_insert b dummy ~time ~seq ~day elt =
  ensure_room b dummy;
  let i = ref b.len in
  b.kt.(!i) <- time;
  b.ks.(!i) <- seq;
  b.kd.(!i) <- day;
  b.ke.(!i) <- elt;
  b.len <- b.len + 1;
  while !i > 0 && key_lt b !i ((!i - 1) / 2) do
    swap b !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

(* Remove and return the bucket minimum. Requires [b.len > 0]. *)
let bucket_pop_min b dummy =
  let elt = b.ke.(0) in
  let last = b.len - 1 in
  b.kt.(0) <- b.kt.(last); b.ks.(0) <- b.ks.(last);
  b.kd.(0) <- b.kd.(last); b.ke.(0) <- b.ke.(last);
  b.ke.(last) <- dummy;
  b.len <- last;
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    let r = l + 1 in
    let m = ref !i in
    if l < last && key_lt b l !m then m := l;
    if r < last && key_lt b r !m then m := r;
    if !m = !i then continue := false
    else begin
      swap b !i !m;
      i := !m
    end
  done;
  elt

(* Rebuild with [new_nb] buckets and a width matched to the near-term
   key spread (aiming at a few events per day). The width is advisory
   only — heap buckets stay within logarithmic bounds even when a
   skewed key mix defeats it — so a cheap robust statistic (the
   min-to-median spread) is enough. *)
let resize t new_nb =
  let n = t.size in
  let ts = Array.make n 0.0
  and ss = Array.make n 0
  and es = Array.make n t.dummy in
  let k = ref 0 in
  Array.iter
    (fun b ->
      for i = 0 to b.len - 1 do
        ts.(!k) <- b.kt.(i);
        ss.(!k) <- b.ks.(i);
        es.(!k) <- b.ke.(i);
        incr k
      done)
    t.buckets;
  let min_t = ref infinity in
  for i = 0 to n - 1 do
    if ts.(i) < !min_t then min_t := ts.(i)
  done;
  if n >= 2 then begin
    let sorted = Array.copy ts in
    Array.sort Float.compare sorted;
    let span = sorted.(n / 2) -. sorted.(0) in
    if span > 0.0 then
      t.width <- Float.max (span *. 8.0 /. float_of_int n) 1e-12
  end;
  t.buckets <- Array.init new_nb (fun _ -> new_bucket ());
  t.mask <- new_nb - 1;
  for i = 0 to n - 1 do
    let day = day_of t.width ts.(i) in
    let b = t.buckets.(day land t.mask) in
    bucket_insert b t.dummy ~time:ts.(i) ~seq:ss.(i) ~day es.(i)
  done;
  t.cur_day <- (if n = 0 then 0 else day_of t.width !min_t)

let push t ~time ~seq elt =
  if not (Float.is_finite time) || time < 0.0 then
    invalid_arg "Calq.push: bad time";
  let day = day_of t.width time in
  bucket_insert t.buckets.(day land t.mask) t.dummy ~time ~seq ~day elt;
  t.size <- t.size + 1;
  if day < t.cur_day then t.cur_day <- day;
  let nb = t.mask + 1 in
  if t.size > 2 * nb && nb < 65536 then resize t (2 * nb)

(* Every bucket's minimum key; the smallest of those is the global
   minimum. *)
let direct_search t =
  let best = ref None in
  Array.iter
    (fun b ->
      if b.len > 0 then begin
        let ti = b.kt.(0) and s = b.ks.(0) in
        match !best with
        | Some (bt, bs, _) when bt < ti || (bt = ti && bs <= s) -> ()
        | _ -> best := Some (ti, s, b)
      end)
    t.buckets;
  match !best with
  | Some (_, _, b) ->
      t.cur_day <- b.kd.(0);
      b
  | None -> assert false

(* Position the cursor on the bucket holding the global minimum.
   Requires [t.size > 0]. *)
let locate t =
  let nb = t.mask + 1 in
  let rec scan i =
    if i >= nb then direct_search t
    else
      let d = t.cur_day + i in
      let b = t.buckets.(d land t.mask) in
      if b.len > 0 && b.kd.(0) <= d then begin
        t.cur_day <- d;
        b
      end
      else scan (i + 1)
  in
  scan 0

let peek t =
  if t.size = 0 then None
  else
    let b = locate t in
    Some b.ke.(0)

let peek_time t =
  if t.size = 0 then Float.nan
  else
    let b = locate t in
    b.kt.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let b = locate t in
    let elt = bucket_pop_min b t.dummy in
    t.size <- t.size - 1;
    let nb = t.mask + 1 in
    if t.size < nb / 4 && nb > t.min_nbuckets then resize t (nb / 2);
    Some elt
  end

let clear t =
  Array.iteri (fun i _ -> t.buckets.(i) <- new_bucket ()) t.buckets;
  t.size <- 0;
  t.cur_day <- 0
