module Ustats = Legion_util.Stats

type t = {
  clock : unit -> float;
  capacity : int;
  buf : Event.t option array;
  mutable total : int;
  mutable enabled : bool;
  lat_buckets : float array;
  lat : (string, Ustats.Histogram.h) Hashtbl.t;
  tstats : Stats.t;  (* per-tenant attribution, fed from tagged events *)
}

(* Log-spaced 10µs .. 10s: spans the network's three latency tiers
   (5µs/0.5ms/40ms one-way) through multi-hop resolution chains. *)
let default_latency_buckets =
  [| 1e-5; 3e-5; 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.0; 3.0; 10.0 |]

let create ?(capacity = 65536) ?(latency_buckets = default_latency_buckets)
    ~clock () =
  if capacity <= 0 then invalid_arg "Recorder.create: capacity must be positive";
  {
    clock;
    capacity;
    buf = Array.make capacity None;
    total = 0;
    enabled = true;
    lat_buckets = Array.copy latency_buckets;
    lat = Hashtbl.create 16;
    tstats = Stats.create ~buckets:latency_buckets ();
  }

let emit t ?host ?site kind =
  if t.enabled then begin
    t.buf.(t.total mod t.capacity) <- Some { Event.time = t.clock (); host; site; kind };
    t.total <- t.total + 1;
    (* Tenant-tagged admission events also feed the attribution table,
       so gates read counters instead of re-walking the ring (which may
       have overwritten the oldest events). *)
    match kind with
    | Event.Admit { tenant = Some tn; queued; _ } ->
        Stats.note_admit t.tstats ~tenant:tn ~queued
    | Event.Shed { tenant = Some tn; _ } -> Stats.note_shed t.tstats ~tenant:tn
    | Event.Deny { tenant; _ } -> Stats.note_deny t.tstats ~tenant
    | _ -> ()
  end

let total t = t.total
let retained t = Stdlib.min t.total t.capacity
let overwritten t = t.total - retained t

let events_since t mark =
  let first = Stdlib.max mark (t.total - retained t) in
  if first >= t.total then []
  else
    List.init (t.total - first) (fun i ->
        match t.buf.((first + i) mod t.capacity) with
        | Some e -> e
        | None -> assert false)

let events t = events_since t 0

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.total <- 0

let set_enabled t b = t.enabled <- b
let enabled t = t.enabled

let observe t ~component x =
  let h =
    match Hashtbl.find_opt t.lat component with
    | Some h -> h
    | None ->
        let h = Ustats.Histogram.create ~buckets:t.lat_buckets in
        Hashtbl.add t.lat component h;
        h
  in
  Ustats.Histogram.add h x

let tenant_stats t = t.tstats
let observe_tenant t ~tenant x = Stats.observe t.tstats ~tenant x

let latency t ~component = Hashtbl.find_opt t.lat component

let latencies t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.lat []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
