(** Trace-query and assertion combinators.

    A matcher consumes an event stream (oldest first) and either
    succeeds, returning the events it matched, or fails with a message
    naming the first step that could not be satisfied. [matches] steps
    skip intervening events, so a protocol assertion reads as the §4.1
    subsequence it checks:

    {[
      Trace.(run (seq [
        matches ~label:"comm miss" (cache_miss ~owner:client ~target:obj ());
        matches ~label:"ask agent" (resolve ~owner:client ~target:obj ());
        matches ~label:"install"   (binding_install ~owner:client ~target:obj ());
        matches ~label:"real call" (call ~dst:obj ~meth:"Get" ());
      ]) events)
    ]} *)

module Loid := Legion_naming.Loid

type pred = Event.t -> bool

type t
(** A sequence matcher. *)

(** {1 Matchers} *)

val matches : ?label:string -> pred -> t
(** Scan forward to the first event satisfying the predicate; skipped
    events are not consumed by later steps. Fails if none remains.
    [label] names the step in failure messages. *)

val next : ?label:string -> pred -> t
(** The strictly next event must satisfy the predicate. *)

val then_ : t -> t -> t
(** Sequence two matchers; the second starts after the first's last
    match. *)

val seq : t list -> t
(** [then_] folded over a list; the empty list matches trivially. *)

val within : float -> t -> t
(** Constrain the matched span: last matched event's time minus first's
    must not exceed the budget (seconds of virtual time). *)

(** {1 Running} *)

val run : t -> Event.t list -> (Event.t list, string) result
(** The matched events in order, or why matching failed. *)

val holds : t -> Event.t list -> bool
val explain : t -> Event.t list -> string option
(** [None] when the matcher holds, otherwise the failure message. *)

(** {1 Stream queries} *)

val count_of : pred -> Event.t list -> int
val find : pred -> Event.t list -> Event.t option

(** {1 Predicates}

    Builders take optional field constraints; omitted fields match
    anything, so [call ()] is "any Call event" and
    [call ~meth:"Get" ()] constrains only the method. *)

val any : pred
val named : string -> pred
(** Match by {!Event.name} (["Send"], ["CacheMiss"], …). *)

val on_host : int -> pred

val ( &&& ) : pred -> pred -> pred
val ( ||| ) : pred -> pred -> pred
val not_ : pred -> pred

val send : ?src:int -> ?dst:int -> unit -> pred
val deliver : ?src:int -> ?dst:int -> unit -> pred
val drop : ?src:int -> ?dst:int -> ?reason:Event.drop_reason -> unit -> pred
val duplicate : ?src:int -> ?dst:int -> unit -> pred
val reorder : ?src:int -> ?dst:int -> unit -> pred
val corrupt_inject : ?src:int -> ?dst:int -> unit -> pred
val dedup_hit : ?loid:Loid.t -> ?id:int -> ?meth:string -> unit -> pred
val call : ?src:Loid.t -> ?dst:Loid.t -> ?meth:string -> unit -> pred
val reply : ?ok:bool -> unit -> pred
val timeout : unit -> pred
val retry : ?id:int -> ?attempt:int -> unit -> pred
val giveup : ?id:int -> unit -> pred
val cancel : ?id:int -> unit -> pred
val cache_hit : ?owner:Loid.t -> ?target:Loid.t -> unit -> pred
val cache_miss : ?owner:Loid.t -> ?target:Loid.t -> unit -> pred
val resolve : ?owner:Loid.t -> ?target:Loid.t -> ?stale:bool -> unit -> pred
val binding_install : ?owner:Loid.t -> ?target:Loid.t -> unit -> pred
val rebind : ?owner:Loid.t -> ?target:Loid.t -> ?attempt:int -> unit -> pred
val activate : ?loid:Loid.t -> unit -> pred
val deactivate : ?loid:Loid.t -> unit -> pred
val migrate : ?loid:Loid.t -> unit -> pred
val replica_fanout : ?target:Loid.t -> unit -> pred
val checkpoint : ?loid:Loid.t -> unit -> pred
val suspect : ?host_obj:Loid.t -> unit -> pred
val confirm_dead : ?host_obj:Loid.t -> unit -> pred
val reactivate : ?loid:Loid.t -> unit -> pred
val fence : ?loid:Loid.t -> ?epoch:int -> unit -> pred
val admit :
  ?loid:Loid.t -> ?meth:string -> ?queued:bool -> ?tenant:string -> unit -> pred
(** [?tenant] matches only tenant-tagged admits with that exact tenant. *)

val shed : ?loid:Loid.t -> ?meth:string -> ?tenant:string -> unit -> pred
val deny : ?loid:Loid.t -> ?meth:string -> ?tenant:string -> unit -> pred
val breaker_open : ?host:int -> unit -> pred
val breaker_probe : ?host:int -> unit -> pred
val breaker_close : ?host:int -> unit -> pred
val stale_serve : ?owner:Loid.t -> ?target:Loid.t -> unit -> pred
val replica_lost : ?loid:Loid.t -> ?host:int -> unit -> pred
val replica_repair : ?loid:Loid.t -> ?host:int -> ?epoch:int -> unit -> pred
val no_quorum : ?loid:Loid.t -> unit -> pred
val reconcile : ?loid:Loid.t -> ?divergent:int -> unit -> pred

val clone_ev : ?cls:Loid.t -> ?clone:Loid.t -> unit -> pred
(** [Clone] events ([clone_ev] because [clone] would shadow nothing but
    reads badly next to the record field). *)

val merge : ?cls:Loid.t -> ?clone:Loid.t -> unit -> pred
val split : ?magistrate:Loid.t -> ?dst:Loid.t -> unit -> pred
val probe_fail : ?agent:Loid.t -> ?host_obj:Loid.t -> unit -> pred
val prepare : ?txn:string -> ?participant:Loid.t -> unit -> pred
val txn_commit : ?txn:string -> unit -> pred
val txn_abort : ?txn:string -> ?reason:string -> unit -> pred
val compensate : ?txn:string -> ?participant:Loid.t -> unit -> pred
val resume : ?txn:string -> ?decision:string -> unit -> pred
