(** Ring-buffered event recorder with per-component latency histograms.

    One recorder serves a whole simulation: {!Legion.System.boot}
    attaches it to the network and the runtime, so every emission point
    shares one virtual-time-ordered stream. The ring bounds memory — the
    newest [capacity] events are retained, older ones are overwritten
    (and counted, so tests can detect truncation). *)

type t

val create :
  ?capacity:int ->
  ?latency_buckets:float array ->
  clock:(unit -> float) ->
  unit ->
  t
(** [capacity] (default 65536) bounds retained events.
    [latency_buckets] are the {!Legion_util.Stats.Histogram} upper
    bounds used for every component histogram (default: log-spaced
    10µs…10s, sized for the simulated network's three latency tiers).
    [clock] supplies virtual time (pass [fun () -> Engine.now sim]).
    @raise Invalid_argument when [capacity <= 0]. *)

val emit : t -> ?host:int -> ?site:int -> Event.kind -> unit
(** Stamp the kind with the clock and append it. O(1); a no-op while
    disabled. *)

val events : t -> Event.t list
(** Retained events, oldest first. *)

val events_since : t -> int -> Event.t list
(** Events with sequence number >= the given mark (a prior {!total}),
    oldest first — the still-retained suffix of a stage. *)

val total : t -> int
(** Events emitted over the recorder's lifetime, including overwritten
    ones. Also the next event's sequence number — snapshot it before a
    scenario, pass it to {!events_since} after. *)

val retained : t -> int

val overwritten : t -> int
(** [total - retained]: how many events the ring has forgotten. *)

val clear : t -> unit
(** Forget all events (histograms are kept). *)

val set_enabled : t -> bool -> unit
val enabled : t -> bool

(** {1 Latency histograms} *)

val observe : t -> component:string -> float -> unit
(** Record one latency sample (seconds of virtual time) under the
    component's histogram, creating it on first use. Components in use:
    ["net.delay"] (per-message transit), ["rt.invoke"] (full comm-layer
    invocation round trip), ["rt.resolve"] (Binding Agent resolution). *)

val latency : t -> component:string -> Legion_util.Stats.Histogram.h option

val latencies : t -> (string * Legion_util.Stats.Histogram.h) list
(** All component histograms, sorted by component name. *)

(** {1 Per-tenant attribution} *)

val tenant_stats : t -> Stats.t
(** The recorder's tenant-attribution table. {!emit} feeds it
    automatically from tenant-tagged [Admit]/[Shed]/[Deny] events;
    latency samples go through {!observe_tenant}. *)

val observe_tenant : t -> tenant:string -> float -> unit
(** Record one per-tenant end-to-end latency sample (virtual seconds). *)
