(** Per-tenant serving attribution.

    The multi-tenant admission path tags its [Admit]/[Shed]/[Deny]
    events with the charged tenant; this module turns that stream into
    per-tenant counters and latency histograms, so a gate can ask "whose
    calls were shed?" and "did the noisy tenant move anyone else's p99?"
    without re-walking the trace. {!Recorder.emit} tallies the tagged
    events automatically; latency samples are fed by the caller (the
    scenario driver observing round trips per tenant). *)

type tenant
(** One tenant's row: admit/queue/shed/deny counters and a latency
    histogram. Rows are created on first mention. *)

type t

val create : ?buckets:float array -> unit -> t
(** [buckets] are the latency-histogram upper bounds (default:
    log-spaced 10µs…10s, matching {!Recorder}'s component histograms). *)

val tenant : t -> string -> tenant
(** The row for a tenant name, created on first use. *)

val find : t -> string -> tenant option

val tenants : t -> string list
(** Tenant names in first-seen order — deterministic given a
    deterministic event stream. *)

val note_admit : t -> tenant:string -> queued:bool -> unit
val note_shed : t -> tenant:string -> unit
val note_deny : t -> tenant:string -> unit

val observe : t -> tenant:string -> float -> unit
(** Record one end-to-end latency sample (virtual seconds). *)

val name : tenant -> string
val admitted : tenant -> int

val queued : tenant -> int
(** How many of the admitted calls waited in a fair queue first. *)

val shed : tenant -> int
val denied : tenant -> int
val latency : tenant -> Legion_util.Stats.Histogram.h
