(** Structured trace events.

    Every mechanism the runtime exercises — message transport, the
    comm-layer binding cache, Binding Agent resolution, rebind-and-retry,
    activation — reifies its steps as typed events, stamped with virtual
    time and the emitting host/site. The Fig. 17 sequences of §4.1 become
    data a test can assert against (see {!Trace}), and
    [legion-sim trace --json] dumps them for external tools. *)

module Loid := Legion_naming.Loid
module Value := Legion_wire.Value

type tier = Intra_host | Intra_site | Inter_site

type drop_reason =
  | Src_down
  | Dst_down
  | Partitioned
  | Random_loss
  | No_receiver
  | Corrupted
      (** The payload failed end-to-end integrity verification at the
          receiving host — a checksum mismatch or undecodable envelope
          after in-flight byte corruption — and was dropped fail-closed. *)

type kind =
  | Send of { src : int; dst : int; bytes : int; tier : tier }
      (** A datagram entered the network (before loss filtering). *)
  | Deliver of { src : int; dst : int }
      (** The datagram reached a live receiver. *)
  | Drop of { src : int; dst : int; reason : drop_reason }
      (** The datagram was lost; exactly one of [Deliver]/[Drop] follows
          every [Send] — except that a [Duplicate] adds extra
          [Deliver]/[Drop] outcomes for the same [Send]. *)
  | Duplicate of { src : int; dst : int }
      (** The network adversary injected an extra copy of the datagram;
          the copy draws its own latency and takes the normal delivery
          path, so it produces its own [Deliver]/[Drop]. *)
  | Reorder of { src : int; dst : int; extra : float }
      (** The adversary held the datagram back by [extra] seconds beyond
          its drawn latency, letting later sends overtake it. *)
  | Corrupt_inject of { src : int; dst : int; mutations : int }
      (** The adversary flipped [mutations] byte(s) of the encoded
          payload in flight; the receiving host's integrity check is
          expected to turn this into a [Drop] with reason [Corrupted]. *)
  | Dedup_hit of { loid : Loid.t; id : int; meth : string }
      (** The runtime recognised call [id] as already executed (or
          executing) at [loid] — a retransmitted or duplicated request —
          and replayed the recorded reply instead of re-running [meth]. *)
  | Call of { id : int; src : Loid.t; dst : Loid.t; meth : string }
      (** The comm layer dispatched one method-call attempt. *)
  | Reply of { id : int; ok : bool }  (** A reply reached the caller. *)
  | Timeout of { id : int }  (** A call attempt's deadline fired. *)
  | Retry of { id : int; attempt : int }
      (** The retry policy retransmitted call [id]; this is transmission
          number [attempt] (the original send was attempt 1). *)
  | Giveup of { id : int; attempts : int }
      (** The retry policy exhausted its attempt/deadline budget after
          [attempts] transmissions; the call fails with [Timeout]. *)
  | Cancel of { id : int }
      (** A pending call was reaped before completing — a racing
          replica's losing attempt after the winner replied. *)
  | Cache_hit of { owner : Loid.t; target : Loid.t }
  | Cache_miss of { owner : Loid.t; target : Loid.t }
      (** Binding-cache lookups, both in an object's comm layer and
          inside a Binding Agent ([owner] distinguishes them). *)
  | Resolve of { owner : Loid.t; target : Loid.t; stale : bool }
      (** [owner] asks the resolution machinery for a binding; [stale]
          is the GetBinding(binding) refresh form of §3.6. *)
  | Binding_install of { owner : Loid.t; target : Loid.t }
      (** A freshly resolved binding entered [owner]'s comm cache. *)
  | Rebind of { owner : Loid.t; target : Loid.t; attempt : int }
      (** §4.1.4: a delivery failure invalidated the binding; attempt
          [attempt] of the refresh-and-retry loop starts. *)
  | Activate of { loid : Loid.t }  (** An instance started on [host]. *)
  | Deactivate of { loid : Loid.t }  (** An instance left [host]. *)
  | Migrate of { loid : Loid.t; dst : Loid.t }
      (** A Magistrate shipped the object's OPR to Magistrate [dst]. *)
  | Replica_fanout of { target : Loid.t; width : int }
      (** One logical call raced [width] address elements. *)
  | Checkpoint of { loid : Loid.t }
      (** A Magistrate sweep refreshed the object's OPR from a live
          [SaveState] without deactivating it. *)
  | Suspect of { host_obj : Loid.t; missed : int }
      (** A heartbeat probe of a Host Object failed; [missed]
          consecutive beats have now been lost. *)
  | Confirm_dead of { host_obj : Loid.t; objects : int }
      (** The missed-beat threshold fired: the Magistrate declares the
          host dead and starts recovery of its [objects] residents. *)
  | Reactivate of { loid : Loid.t }
      (** The responsible class brought a dead instance back from its
          last OPR on a surviving host. *)
  | Fence of { loid : Loid.t; epoch : int; current : int }
      (** The runtime refused a stale placement: either a delivery to a
          placement whose [epoch] is below the LOID's [current] epoch,
          or the reaping of such a zombie when its host reboots. *)
  | Admit of {
      loid : Loid.t;
      meth : string;
      queued : bool;
      tenant : string option;
    }
      (** Admission control accepted a call for an object running under
          an inflight/queue budget; [queued] means it waited in the
          object's admission queue first. Only emitted for budgeted
          objects — unbudgeted delivery stays silent. [tenant] names the
          call's Responsible-Agent tenant when the runtime serves a
          tenant registry; the field is absent from the serialised event
          otherwise, so pre-tenancy streams are unchanged. *)
  | Shed of {
      loid : Loid.t;
      meth : string;
      queue : int;
      tenant : string option;
    }
      (** The call was rejected to protect the object: the admission
          queue was full ([queue] is its length at rejection), the
          caller's tenant budget was exhausted, or the object's
          implementation shed it by policy (a class refusing creates
          under load). The caller sees [Err.Overloaded] — or, for a
          tenant-budget shed, [Err.Quota_exceeded] — with a
          [retry_after] hint. [tenant] attributes the shed to the
          charged tenant; serialised only when present. *)
  | Deny of { loid : Loid.t; meth : string; tenant : string }
      (** Binding-path policy enforcement refused [tenant] outright:
          the target's policy does not clear the call's Responsible
          Agent, so the request — including [GetBinding] resolution —
          fails with the terminal [Err.Denied]. Always tenant-tagged;
          the fallback lane is [~unregistered]. *)
  | Breaker_open of { host : int; failures : int }
      (** The per-destination circuit breaker tripped after [failures]
          consecutive call failures to [host]; calls now fail fast. *)
  | Breaker_probe of { host : int }
      (** The breaker's cooldown elapsed; one probe call is let through
          (HalfOpen). *)
  | Breaker_close of { host : int }
      (** A call to [host] completed while the breaker was Open or
          HalfOpen; the circuit closes and traffic resumes. *)
  | Stale_serve of { owner : Loid.t; target : Loid.t }
      (** Graceful degradation in a Binding Agent: the upstream resolver
          was overloaded, so [owner] served its stale-but-unexpired
          cached binding for [target] instead of failing the lookup. *)
  | Replica_lost of { loid : Loid.t; host : int; remaining : int }
      (** The replica-set manager confirmed a replica of [loid] on
          network host [host] dead; [remaining] replicas survive. *)
  | Replica_repair of { loid : Loid.t; host : int; epoch : int }
      (** The replica-set manager re-activated a replacement replica of
          [loid] on [host] from the newest surviving state, under the
          bumped incarnation [epoch]; the rebuilt multi-address binding
          was re-registered with the responsible class. *)
  | No_quorum of { loid : Loid.t; have : int; need : int }
      (** A fenced group head [loid] rejected a replicated write: only
          [have] of the current membership were reachable, short of the
          strict majority [need]. The caller saw [Err.No_quorum];
          nothing was applied anywhere. *)
  | Reconcile of { loid : Loid.t; divergent : int; updated : int }
      (** Anti-entropy after a partition heal: group head [loid]
          compared member state digests, found [divergent] members
          behind the highest-version survivor, and pushed the winning
          state to [updated] of them. A drained group reconciles with
          [divergent = 0]. *)
  | Clone of { cls : Loid.t; clone : Loid.t }
      (** §5.2.2 made autonomic: class [cls] sustained a high load
          factor, derived clone [clone], and now redirects new Create
          requests to the clone ring. *)
  | Merge of { cls : Loid.t; clone : Loid.t }
      (** Cool-down: class [cls] retired [clone] from its redirect ring
          after sustained low Create demand. The clone object survives —
          it stays responsible for instances it already created — but
          receives no new redirections. *)
  | Split of { magistrate : Loid.t; dst : Loid.t; objects : int }
      (** §2.2 made autonomic: [magistrate]'s Jurisdiction exceeded its
          object budget, so a rebalancer transferred [objects] of its
          residents to the spare Magistrate [dst] (shared storage: OPAs
          stay valid, responsibility moves, bytes do not). *)
  | Probe_fail of { agent : Loid.t; host_obj : Loid.t }
      (** A live-load Scheduling Agent's [GetState] probe of [host_obj]
          failed (timeout, refusal, or undecodable reply); the agent
          falls back to the Magistrate-supplied count for that host. *)
  | Prepare of { txn : string; participant : Loid.t }
      (** Transaction [txn] enlisted [participant]: in 2PC mode the
          participant acknowledged [TxnPrepare] (prepare lock taken,
          yes vote); in saga mode its step was applied. *)
  | Txn_commit of { txn : string; participants : int }
      (** The coordinator fully committed [txn]: every one of its
          [participants] acknowledged the commit (or the final saga
          step applied) and the per-participant history entries are
          marked committed. *)
  | Txn_abort of { txn : string; reason : string }
      (** The coordinator decided to abort [txn] — a participant voted
          no ([reason] names why; ["stale-epoch"] is a fenced
          participant's abort vote) or a saga step failed. Compensation
          of the already-enlisted participants begins. *)
  | Compensate of { txn : string; participant : Loid.t }
      (** Rollback of [participant] under aborted transaction [txn]
          acknowledged: its prepare lock was released (2PC) or its
          typed compensation method applied (saga). *)
  | Resume of { txn : string; decision : string }
      (** Crash recovery re-drove in-doubt transaction [txn] from the
          coordinator's write-ahead log after [Reactivate]: [decision]
          is ["commit"] when the commit decision was already durable
          (committed work is never rolled back) and ["abort"]
          otherwise. *)

type t = {
  time : float;  (** Virtual time of emission. *)
  host : int option;  (** Emitting network host, when known. *)
  site : int option;  (** Its site, when known. *)
  kind : kind;
}

val name : kind -> string
(** Stable event name: ["Send"], ["CacheMiss"], ["BindingInstall"], … *)

val tier_name : tier -> string
(** ["host"] / ["site"] / ["wan"]. *)

val drop_reason_name : drop_reason -> string
(** ["src-down"], ["dst-down"], ["partitioned"], ["loss"],
    ["no-receiver"], ["corrupt"]. *)

val owner : t -> Loid.t option
(** The acting object, when the event names one ([owner], [src] of a
    [Call], the [loid] of lifecycle events). *)

val target : t -> Loid.t option
(** The object acted upon, when the event names one. *)

val to_value : t -> Value.t
(** Flat record: [t], optional [host]/[site], [ev] (the {!name}), then
    the kind's fields. LOIDs render as strings. *)

val to_json : t -> string
(** One-line JSON object, same shape as {!to_value}. *)

val pp : Format.formatter -> t -> unit
(** One human-readable line: time, host, name, fields. *)
