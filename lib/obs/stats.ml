module Histogram = Legion_util.Stats.Histogram

type tenant = {
  name : string;
  mutable admitted : int;
  mutable queued : int;
  mutable shed : int;
  mutable denied : int;
  latency : Histogram.h;
}

type t = {
  buckets : float array;
  tbl : (string, tenant) Hashtbl.t;  (* lookup only, never iterated *)
  mutable order : string list;  (* first-seen order, newest first *)
}

(* Same log-spaced 10µs .. 10s span the recorder's component histograms
   use, so per-tenant and per-component percentiles are comparable. *)
let default_buckets =
  [| 1e-5; 3e-5; 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.0; 3.0; 10.0 |]

let create ?(buckets = default_buckets) () =
  { buckets = Array.copy buckets; tbl = Hashtbl.create 16; order = [] }

let tenant t name =
  match Hashtbl.find_opt t.tbl name with
  | Some row -> row
  | None ->
      let row =
        {
          name;
          admitted = 0;
          queued = 0;
          shed = 0;
          denied = 0;
          latency = Histogram.create ~buckets:t.buckets;
        }
      in
      Hashtbl.add t.tbl name row;
      t.order <- name :: t.order;
      row

let find t name = Hashtbl.find_opt t.tbl name
let tenants t = List.rev t.order

let note_admit t ~tenant:name ~queued =
  let row = tenant t name in
  row.admitted <- row.admitted + 1;
  if queued then row.queued <- row.queued + 1

let note_shed t ~tenant:name =
  let row = tenant t name in
  row.shed <- row.shed + 1

let note_deny t ~tenant:name =
  let row = tenant t name in
  row.denied <- row.denied + 1

let observe t ~tenant:name x = Histogram.add (tenant t name).latency x

let name row = row.name
let admitted row = row.admitted
let queued row = row.queued
let shed row = row.shed
let denied row = row.denied
let latency row = row.latency
