module Loid = Legion_naming.Loid

type pred = Event.t -> bool

(* A matcher maps the remaining stream to (matched events, rest) or a
   failure message; combinators thread the rest. *)
type t = Event.t list -> (Event.t list * Event.t list, string) result

let matches ?(label = "event") p : t =
 fun evs ->
  let rec go = function
    | [] ->
        Error
          (Printf.sprintf "expected %s: no match among %d remaining event(s)"
             label (List.length evs))
    | e :: rest -> if p e then Ok ([ e ], rest) else go rest
  in
  go evs

let next ?(label = "event") p : t = function
  | [] -> Error (Printf.sprintf "expected %s next: trace exhausted" label)
  | e :: rest ->
      if p e then Ok ([ e ], rest)
      else
        Error
          (Printf.sprintf "expected %s next, got %s at t=%.6f" label
             (Event.name e.Event.kind) e.Event.time)

let then_ (a : t) (b : t) : t =
 fun evs ->
  match a evs with
  | Error _ as e -> e
  | Ok (m1, rest) -> (
      match b rest with
      | Error _ as e -> e
      | Ok (m2, rest') -> Ok (m1 @ m2, rest'))

let empty : t = fun evs -> Ok ([], evs)
let seq ms = List.fold_left then_ empty ms

let within budget (m : t) : t =
 fun evs ->
  match m evs with
  | Error _ as e -> e
  | Ok (matched, rest) -> (
      match matched with
      | [] | [ _ ] -> Ok (matched, rest)
      | first :: _ ->
          let last = List.nth matched (List.length matched - 1) in
          let span = last.Event.time -. first.Event.time in
          if span <= budget +. 1e-12 then Ok (matched, rest)
          else
            Error
              (Printf.sprintf
                 "matched sequence spans %.6fs of virtual time, budget %.6fs"
                 span budget))

let run (m : t) evs = Result.map fst (m evs)
let holds m evs = Result.is_ok (run m evs)
let explain m evs = match m evs with Ok _ -> None | Error msg -> Some msg
let count_of p evs = List.length (List.filter p evs)
let find p evs = List.find_opt p evs

(* --- predicates --- *)

let any _ = true
let named n e = String.equal (Event.name e.Event.kind) n
let on_host h e = e.Event.host = Some h
let ( &&& ) p q e = p e && q e
let ( ||| ) p q e = p e || q e
let not_ p e = not (p e)

let opt_int expected actual =
  match expected with None -> true | Some x -> x = actual

let opt_bool expected actual =
  match expected with None -> true | Some x -> x = actual

let opt_str expected actual =
  match expected with None -> true | Some x -> String.equal x actual

let opt_loid expected actual =
  match expected with None -> true | Some l -> Loid.equal l actual

let send ?src ?dst () e =
  match e.Event.kind with
  | Event.Send f -> opt_int src f.src && opt_int dst f.dst
  | _ -> false

let deliver ?src ?dst () e =
  match e.Event.kind with
  | Event.Deliver f -> opt_int src f.src && opt_int dst f.dst
  | _ -> false

let drop ?src ?dst ?reason () e =
  match e.Event.kind with
  | Event.Drop f ->
      opt_int src f.src && opt_int dst f.dst
      && (match reason with None -> true | Some r -> r = f.reason)
  | _ -> false

let duplicate ?src ?dst () e =
  match e.Event.kind with
  | Event.Duplicate f -> opt_int src f.src && opt_int dst f.dst
  | _ -> false

let reorder ?src ?dst () e =
  match e.Event.kind with
  | Event.Reorder f -> opt_int src f.src && opt_int dst f.dst
  | _ -> false

let corrupt_inject ?src ?dst () e =
  match e.Event.kind with
  | Event.Corrupt_inject f -> opt_int src f.src && opt_int dst f.dst
  | _ -> false

let dedup_hit ?loid ?id ?meth () e =
  match e.Event.kind with
  | Event.Dedup_hit f ->
      opt_loid loid f.loid && opt_int id f.id && opt_str meth f.meth
  | _ -> false

let call ?src ?dst ?meth () e =
  match e.Event.kind with
  | Event.Call f -> opt_loid src f.src && opt_loid dst f.dst && opt_str meth f.meth
  | _ -> false

let reply ?ok () e =
  match e.Event.kind with Event.Reply f -> opt_bool ok f.ok | _ -> false

let timeout () e =
  match e.Event.kind with Event.Timeout _ -> true | _ -> false

let retry ?id ?attempt () e =
  match e.Event.kind with
  | Event.Retry f -> opt_int id f.id && opt_int attempt f.attempt
  | _ -> false

let giveup ?id () e =
  match e.Event.kind with Event.Giveup f -> opt_int id f.id | _ -> false

let cancel ?id () e =
  match e.Event.kind with Event.Cancel f -> opt_int id f.id | _ -> false

let cache_hit ?owner ?target () e =
  match e.Event.kind with
  | Event.Cache_hit f -> opt_loid owner f.owner && opt_loid target f.target
  | _ -> false

let cache_miss ?owner ?target () e =
  match e.Event.kind with
  | Event.Cache_miss f -> opt_loid owner f.owner && opt_loid target f.target
  | _ -> false

let resolve ?owner ?target ?stale () e =
  match e.Event.kind with
  | Event.Resolve f ->
      opt_loid owner f.owner && opt_loid target f.target
      && opt_bool stale f.stale
  | _ -> false

let binding_install ?owner ?target () e =
  match e.Event.kind with
  | Event.Binding_install f -> opt_loid owner f.owner && opt_loid target f.target
  | _ -> false

let rebind ?owner ?target ?attempt () e =
  match e.Event.kind with
  | Event.Rebind f ->
      opt_loid owner f.owner && opt_loid target f.target
      && opt_int attempt f.attempt
  | _ -> false

let activate ?loid () e =
  match e.Event.kind with
  | Event.Activate f -> opt_loid loid f.loid
  | _ -> false

let deactivate ?loid () e =
  match e.Event.kind with
  | Event.Deactivate f -> opt_loid loid f.loid
  | _ -> false

let migrate ?loid () e =
  match e.Event.kind with
  | Event.Migrate f -> opt_loid loid f.loid
  | _ -> false

let replica_fanout ?target () e =
  match e.Event.kind with
  | Event.Replica_fanout f -> opt_loid target f.target
  | _ -> false

let checkpoint ?loid () e =
  match e.Event.kind with
  | Event.Checkpoint f -> opt_loid loid f.loid
  | _ -> false

let suspect ?host_obj () e =
  match e.Event.kind with
  | Event.Suspect f -> opt_loid host_obj f.host_obj
  | _ -> false

let confirm_dead ?host_obj () e =
  match e.Event.kind with
  | Event.Confirm_dead f -> opt_loid host_obj f.host_obj
  | _ -> false

let reactivate ?loid () e =
  match e.Event.kind with
  | Event.Reactivate f -> opt_loid loid f.loid
  | _ -> false

let fence ?loid ?epoch () e =
  match e.Event.kind with
  | Event.Fence f -> opt_loid loid f.loid && opt_int epoch f.epoch
  | _ -> false

let opt_tenant expected actual =
  match expected with
  | None -> true
  | Some t -> ( match actual with Some a -> String.equal t a | None -> false)

let admit ?loid ?meth ?queued ?tenant () e =
  match e.Event.kind with
  | Event.Admit f ->
      opt_loid loid f.loid && opt_str meth f.meth && opt_bool queued f.queued
      && opt_tenant tenant f.tenant
  | _ -> false

let shed ?loid ?meth ?tenant () e =
  match e.Event.kind with
  | Event.Shed f ->
      opt_loid loid f.loid && opt_str meth f.meth && opt_tenant tenant f.tenant
  | _ -> false

let deny ?loid ?meth ?tenant () e =
  match e.Event.kind with
  | Event.Deny f ->
      opt_loid loid f.loid && opt_str meth f.meth && opt_str tenant f.tenant
  | _ -> false

let breaker_open ?host () e =
  match e.Event.kind with
  | Event.Breaker_open f -> opt_int host f.host
  | _ -> false

let breaker_probe ?host () e =
  match e.Event.kind with
  | Event.Breaker_probe f -> opt_int host f.host
  | _ -> false

let breaker_close ?host () e =
  match e.Event.kind with
  | Event.Breaker_close f -> opt_int host f.host
  | _ -> false

let stale_serve ?owner ?target () e =
  match e.Event.kind with
  | Event.Stale_serve f -> opt_loid owner f.owner && opt_loid target f.target
  | _ -> false

let replica_lost ?loid ?host () e =
  match e.Event.kind with
  | Event.Replica_lost f -> opt_loid loid f.loid && opt_int host f.host
  | _ -> false

let replica_repair ?loid ?host ?epoch () e =
  match e.Event.kind with
  | Event.Replica_repair f ->
      opt_loid loid f.loid && opt_int host f.host && opt_int epoch f.epoch
  | _ -> false

let no_quorum ?loid () e =
  match e.Event.kind with
  | Event.No_quorum f -> opt_loid loid f.loid
  | _ -> false

let reconcile ?loid ?divergent () e =
  match e.Event.kind with
  | Event.Reconcile f -> opt_loid loid f.loid && opt_int divergent f.divergent
  | _ -> false

let clone_ev ?cls ?clone () e =
  match e.Event.kind with
  | Event.Clone f -> opt_loid cls f.cls && opt_loid clone f.clone
  | _ -> false

let merge ?cls ?clone () e =
  match e.Event.kind with
  | Event.Merge f -> opt_loid cls f.cls && opt_loid clone f.clone
  | _ -> false

let split ?magistrate ?dst () e =
  match e.Event.kind with
  | Event.Split f -> opt_loid magistrate f.magistrate && opt_loid dst f.dst
  | _ -> false

let probe_fail ?agent ?host_obj () e =
  match e.Event.kind with
  | Event.Probe_fail f ->
      opt_loid agent f.agent && opt_loid host_obj f.host_obj
  | _ -> false

let prepare ?txn ?participant () e =
  match e.Event.kind with
  | Event.Prepare f -> opt_str txn f.txn && opt_loid participant f.participant
  | _ -> false

let txn_commit ?txn () e =
  match e.Event.kind with Event.Txn_commit f -> opt_str txn f.txn | _ -> false

let txn_abort ?txn ?reason () e =
  match e.Event.kind with
  | Event.Txn_abort f -> opt_str txn f.txn && opt_str reason f.reason
  | _ -> false

let compensate ?txn ?participant () e =
  match e.Event.kind with
  | Event.Compensate f -> opt_str txn f.txn && opt_loid participant f.participant
  | _ -> false

let resume ?txn ?decision () e =
  match e.Event.kind with
  | Event.Resume f -> opt_str txn f.txn && opt_str decision f.decision
  | _ -> false
