module Loid = Legion_naming.Loid
module Value = Legion_wire.Value

type tier = Intra_host | Intra_site | Inter_site

type drop_reason =
  | Src_down
  | Dst_down
  | Partitioned
  | Random_loss
  | No_receiver
  | Corrupted

type kind =
  | Send of { src : int; dst : int; bytes : int; tier : tier }
  | Deliver of { src : int; dst : int }
  | Drop of { src : int; dst : int; reason : drop_reason }
  | Duplicate of { src : int; dst : int }
  | Reorder of { src : int; dst : int; extra : float }
  | Corrupt_inject of { src : int; dst : int; mutations : int }
  | Dedup_hit of { loid : Loid.t; id : int; meth : string }
  | Call of { id : int; src : Loid.t; dst : Loid.t; meth : string }
  | Reply of { id : int; ok : bool }
  | Timeout of { id : int }
  | Retry of { id : int; attempt : int }
  | Giveup of { id : int; attempts : int }
  | Cancel of { id : int }
  | Cache_hit of { owner : Loid.t; target : Loid.t }
  | Cache_miss of { owner : Loid.t; target : Loid.t }
  | Resolve of { owner : Loid.t; target : Loid.t; stale : bool }
  | Binding_install of { owner : Loid.t; target : Loid.t }
  | Rebind of { owner : Loid.t; target : Loid.t; attempt : int }
  | Activate of { loid : Loid.t }
  | Deactivate of { loid : Loid.t }
  | Migrate of { loid : Loid.t; dst : Loid.t }
  | Replica_fanout of { target : Loid.t; width : int }
  | Checkpoint of { loid : Loid.t }
  | Suspect of { host_obj : Loid.t; missed : int }
  | Confirm_dead of { host_obj : Loid.t; objects : int }
  | Reactivate of { loid : Loid.t }
  | Fence of { loid : Loid.t; epoch : int; current : int }
  | Admit of {
      loid : Loid.t;
      meth : string;
      queued : bool;
      tenant : string option;
    }
  | Shed of {
      loid : Loid.t;
      meth : string;
      queue : int;
      tenant : string option;
    }
  | Deny of { loid : Loid.t; meth : string; tenant : string }
  | Breaker_open of { host : int; failures : int }
  | Breaker_probe of { host : int }
  | Breaker_close of { host : int }
  | Stale_serve of { owner : Loid.t; target : Loid.t }
  | Replica_lost of { loid : Loid.t; host : int; remaining : int }
  | Replica_repair of { loid : Loid.t; host : int; epoch : int }
  | No_quorum of { loid : Loid.t; have : int; need : int }
  | Reconcile of { loid : Loid.t; divergent : int; updated : int }
  | Clone of { cls : Loid.t; clone : Loid.t }
  | Merge of { cls : Loid.t; clone : Loid.t }
  | Split of { magistrate : Loid.t; dst : Loid.t; objects : int }
  | Probe_fail of { agent : Loid.t; host_obj : Loid.t }
  | Prepare of { txn : string; participant : Loid.t }
  | Txn_commit of { txn : string; participants : int }
  | Txn_abort of { txn : string; reason : string }
  | Compensate of { txn : string; participant : Loid.t }
  | Resume of { txn : string; decision : string }

type t = { time : float; host : int option; site : int option; kind : kind }

let name = function
  | Send _ -> "Send"
  | Deliver _ -> "Deliver"
  | Drop _ -> "Drop"
  | Duplicate _ -> "Duplicate"
  | Reorder _ -> "Reorder"
  | Corrupt_inject _ -> "CorruptInject"
  | Dedup_hit _ -> "DedupHit"
  | Call _ -> "Call"
  | Reply _ -> "Reply"
  | Timeout _ -> "Timeout"
  | Retry _ -> "Retry"
  | Giveup _ -> "Giveup"
  | Cancel _ -> "Cancel"
  | Cache_hit _ -> "CacheHit"
  | Cache_miss _ -> "CacheMiss"
  | Resolve _ -> "Resolve"
  | Binding_install _ -> "BindingInstall"
  | Rebind _ -> "Rebind"
  | Activate _ -> "Activate"
  | Deactivate _ -> "Deactivate"
  | Migrate _ -> "Migrate"
  | Replica_fanout _ -> "ReplicaFanout"
  | Checkpoint _ -> "Checkpoint"
  | Suspect _ -> "Suspect"
  | Confirm_dead _ -> "ConfirmDead"
  | Reactivate _ -> "Reactivate"
  | Fence _ -> "Fence"
  | Admit _ -> "Admit"
  | Shed _ -> "Shed"
  | Deny _ -> "Deny"
  | Breaker_open _ -> "BreakerOpen"
  | Breaker_probe _ -> "BreakerProbe"
  | Breaker_close _ -> "BreakerClose"
  | Stale_serve _ -> "StaleServe"
  | Replica_lost _ -> "ReplicaLost"
  | Replica_repair _ -> "ReplicaRepair"
  | No_quorum _ -> "NoQuorum"
  | Reconcile _ -> "Reconcile"
  | Clone _ -> "Clone"
  | Merge _ -> "Merge"
  | Split _ -> "Split"
  | Probe_fail _ -> "ProbeFail"
  | Prepare _ -> "Prepare"
  | Txn_commit _ -> "TxnCommit"
  | Txn_abort _ -> "TxnAbort"
  | Compensate _ -> "Compensate"
  | Resume _ -> "Resume"

let tier_name = function
  | Intra_host -> "host"
  | Intra_site -> "site"
  | Inter_site -> "wan"

let drop_reason_name = function
  | Src_down -> "src-down"
  | Dst_down -> "dst-down"
  | Partitioned -> "partitioned"
  | Random_loss -> "loss"
  | No_receiver -> "no-receiver"
  | Corrupted -> "corrupt"

let owner e =
  match e.kind with
  | Call { src; _ } -> Some src
  | Cache_hit { owner; _ }
  | Cache_miss { owner; _ }
  | Resolve { owner; _ }
  | Binding_install { owner; _ }
  | Rebind { owner; _ }
  | Stale_serve { owner; _ } ->
      Some owner
  | Activate { loid }
  | Deactivate { loid }
  | Migrate { loid; _ }
  | Checkpoint { loid }
  | Reactivate { loid }
  | Fence { loid; _ }
  | Admit { loid; _ }
  | Shed { loid; _ }
  | Deny { loid; _ }
  | Replica_lost { loid; _ }
  | Replica_repair { loid; _ }
  | No_quorum { loid; _ }
  | Reconcile { loid; _ } ->
      Some loid
  | Suspect { host_obj; _ } | Confirm_dead { host_obj; _ } -> Some host_obj
  | Clone { cls; _ } | Merge { cls; _ } -> Some cls
  | Split { magistrate; _ } -> Some magistrate
  | Probe_fail { agent; _ } -> Some agent
  | Dedup_hit { loid; _ } -> Some loid
  | Send _ | Deliver _ | Drop _ | Duplicate _ | Reorder _ | Corrupt_inject _
  | Reply _ | Timeout _ | Retry _ | Giveup _ | Cancel _ | Replica_fanout _
  | Breaker_open _ | Breaker_probe _ | Breaker_close _ | Prepare _
  | Txn_commit _ | Txn_abort _ | Compensate _ | Resume _ ->
      None

let target e =
  match e.kind with
  | Call { dst; _ } -> Some dst
  | Cache_hit { target; _ }
  | Cache_miss { target; _ }
  | Resolve { target; _ }
  | Binding_install { target; _ }
  | Rebind { target; _ }
  | Replica_fanout { target; _ }
  | Stale_serve { target; _ } ->
      Some target
  | Migrate { dst; _ } -> Some dst
  | Clone { clone; _ } | Merge { clone; _ } -> Some clone
  | Split { dst; _ } -> Some dst
  | Probe_fail { host_obj; _ } -> Some host_obj
  | Prepare { participant; _ } | Compensate { participant; _ } ->
      Some participant
  | Send _ | Deliver _ | Drop _ | Duplicate _ | Reorder _ | Corrupt_inject _
  | Dedup_hit _ | Reply _ | Timeout _ | Retry _ | Giveup _ | Cancel _
  | Activate _ | Deactivate _ | Checkpoint _ | Suspect _ | Confirm_dead _
  | Reactivate _ | Fence _ | Admit _ | Shed _ | Deny _ | Breaker_open _
  | Breaker_probe _ | Breaker_close _ | Replica_lost _ | Replica_repair _
  | No_quorum _ | Reconcile _ | Txn_commit _ | Txn_abort _ | Resume _ ->
      None

let loid l = Value.Str (Loid.to_string l)

let fields = function
  | Send { src; dst; bytes; tier } ->
      [
        ("src", Value.Int src);
        ("dst", Value.Int dst);
        ("bytes", Value.Int bytes);
        ("tier", Value.Str (tier_name tier));
      ]
  | Deliver { src; dst } -> [ ("src", Value.Int src); ("dst", Value.Int dst) ]
  | Drop { src; dst; reason } ->
      [
        ("src", Value.Int src);
        ("dst", Value.Int dst);
        ("reason", Value.Str (drop_reason_name reason));
      ]
  | Duplicate { src; dst } -> [ ("src", Value.Int src); ("dst", Value.Int dst) ]
  | Reorder { src; dst; extra } ->
      [
        ("src", Value.Int src);
        ("dst", Value.Int dst);
        ("extra", Value.Float extra);
      ]
  | Corrupt_inject { src; dst; mutations } ->
      [
        ("src", Value.Int src);
        ("dst", Value.Int dst);
        ("mutations", Value.Int mutations);
      ]
  | Dedup_hit { loid = l; id; meth } ->
      [ ("loid", loid l); ("id", Value.Int id); ("meth", Value.Str meth) ]
  | Call { id; src; dst; meth } ->
      [
        ("id", Value.Int id);
        ("src", loid src);
        ("dst", loid dst);
        ("meth", Value.Str meth);
      ]
  | Reply { id; ok } -> [ ("id", Value.Int id); ("ok", Value.Bool ok) ]
  | Timeout { id } -> [ ("id", Value.Int id) ]
  | Retry { id; attempt } ->
      [ ("id", Value.Int id); ("attempt", Value.Int attempt) ]
  | Giveup { id; attempts } ->
      [ ("id", Value.Int id); ("attempts", Value.Int attempts) ]
  | Cancel { id } -> [ ("id", Value.Int id) ]
  | Cache_hit { owner; target } | Cache_miss { owner; target } ->
      [ ("owner", loid owner); ("target", loid target) ]
  | Resolve { owner; target; stale } ->
      [ ("owner", loid owner); ("target", loid target); ("stale", Value.Bool stale) ]
  | Binding_install { owner; target } ->
      [ ("owner", loid owner); ("target", loid target) ]
  | Rebind { owner; target; attempt } ->
      [
        ("owner", loid owner);
        ("target", loid target);
        ("attempt", Value.Int attempt);
      ]
  | Activate { loid = l } | Deactivate { loid = l } -> [ ("loid", loid l) ]
  | Migrate { loid = l; dst } -> [ ("loid", loid l); ("dst", loid dst) ]
  | Replica_fanout { target; width } ->
      [ ("target", loid target); ("width", Value.Int width) ]
  | Checkpoint { loid = l } | Reactivate { loid = l } -> [ ("loid", loid l) ]
  | Suspect { host_obj; missed } ->
      [ ("host_obj", loid host_obj); ("missed", Value.Int missed) ]
  | Confirm_dead { host_obj; objects } ->
      [ ("host_obj", loid host_obj); ("objects", Value.Int objects) ]
  | Fence { loid = l; epoch; current } ->
      [
        ("loid", loid l);
        ("epoch", Value.Int epoch);
        ("current", Value.Int current);
      ]
  (* [tenant] serialises only when tagged, so pre-tenancy streams stay
     byte-identical. *)
  | Admit { loid = l; meth; queued; tenant } ->
      [ ("loid", loid l); ("meth", Value.Str meth); ("queued", Value.Bool queued) ]
      @ (match tenant with
        | Some tn -> [ ("tenant", Value.Str tn) ]
        | None -> [])
  | Shed { loid = l; meth; queue; tenant } ->
      [ ("loid", loid l); ("meth", Value.Str meth); ("queue", Value.Int queue) ]
      @ (match tenant with
        | Some tn -> [ ("tenant", Value.Str tn) ]
        | None -> [])
  | Deny { loid = l; meth; tenant } ->
      [ ("loid", loid l); ("meth", Value.Str meth); ("tenant", Value.Str tenant) ]
  | Breaker_open { host; failures } ->
      [ ("dst", Value.Int host); ("failures", Value.Int failures) ]
  | Breaker_probe { host } -> [ ("dst", Value.Int host) ]
  | Breaker_close { host } -> [ ("dst", Value.Int host) ]
  | Stale_serve { owner; target } ->
      [ ("owner", loid owner); ("target", loid target) ]
  | Replica_lost { loid = l; host; remaining } ->
      [
        ("loid", loid l);
        ("host", Value.Int host);
        ("remaining", Value.Int remaining);
      ]
  | Replica_repair { loid = l; host; epoch } ->
      [ ("loid", loid l); ("host", Value.Int host); ("epoch", Value.Int epoch) ]
  | No_quorum { loid = l; have; need } ->
      [ ("loid", loid l); ("have", Value.Int have); ("need", Value.Int need) ]
  | Reconcile { loid = l; divergent; updated } ->
      [
        ("loid", loid l);
        ("divergent", Value.Int divergent);
        ("updated", Value.Int updated);
      ]
  | Clone { cls; clone } | Merge { cls; clone } ->
      [ ("cls", loid cls); ("clone", loid clone) ]
  | Split { magistrate; dst; objects } ->
      [
        ("magistrate", loid magistrate);
        ("dst", loid dst);
        ("objects", Value.Int objects);
      ]
  | Probe_fail { agent; host_obj } ->
      [ ("agent", loid agent); ("host_obj", loid host_obj) ]
  | Prepare { txn; participant } | Compensate { txn; participant } ->
      [ ("txn", Value.Str txn); ("participant", loid participant) ]
  | Txn_commit { txn; participants } ->
      [ ("txn", Value.Str txn); ("participants", Value.Int participants) ]
  | Txn_abort { txn; reason } ->
      [ ("txn", Value.Str txn); ("reason", Value.Str reason) ]
  | Resume { txn; decision } ->
      [ ("txn", Value.Str txn); ("decision", Value.Str decision) ]

let to_value e =
  Value.Record
    (("t", Value.Float e.time)
    :: ((match e.host with Some h -> [ ("host", Value.Int h) ] | None -> [])
       @ (match e.site with Some s -> [ ("site", Value.Int s) ] | None -> [])
       @ (("ev", Value.Str (name e.kind)) :: fields e.kind)))

(* Minimal JSON over the value shapes [to_value] produces. Floats never
   carry inf/nan here, so %.9g is always a valid JSON number token
   (possibly in exponent form). *)
let rec json_of_value = function
  | Value.Unit -> "null"
  | Value.Bool b -> if b then "true" else "false"
  | Value.Int i -> string_of_int i
  | Value.I64 i -> Int64.to_string i
  | Value.Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.1f" f
      else Printf.sprintf "%.9g" f
  | Value.Str s | Value.Blob s -> json_quote s
  | Value.List vs ->
      "[" ^ String.concat "," (List.map json_of_value vs) ^ "]"
  | Value.Record fs ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> json_quote k ^ ":" ^ json_of_value v) fs)
      ^ "}"

and json_quote s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let to_json e = json_of_value (to_value e)

let atom = function
  | Value.Int i -> string_of_int i
  | Value.Bool b -> string_of_bool b
  | Value.Float f -> Printf.sprintf "%.6g" f
  | Value.Str s -> s
  | v -> Value.to_string v

let pp ppf e =
  Format.fprintf ppf "[%10.6f]%s %-14s%s" e.time
    (match e.host with Some h -> Printf.sprintf " h%d" h | None -> "")
    (name e.kind)
    (String.concat ""
       (List.map
          (fun (k, v) -> Printf.sprintf " %s=%s" k (atom v))
          (fields e.kind)))
