module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Address = Legion_naming.Address
module Binding = Legion_naming.Binding
module Env = Legion_sec.Env
module Policy = Legion_sec.Policy
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Impl = Legion_core.Impl
module C = Legion_core.Convert
module Opr = Legion_core.Opr
module Persistent = Legion_store.Persistent
module Opa = Legion_store.Persistent.Opa
module Engine = Legion_sim.Engine
module Event = Legion_obs.Event

let unit_name = "legion.magistrate"

let storages : (string, Persistent.t) Hashtbl.t = Hashtbl.create 8

let register_storage name store = Hashtbl.replace storages name store
let find_storage name = Hashtbl.find_opt storages name

type record = {
  mutable opa : Opa.t option;
  mutable active : (Loid.t * Address.t) option;  (* (host object, address) *)
  (* A Move/TransferObjects in flight: destination Magistrate, plus the
     Activate requests held until the transfer settles. Answering an
     Activate locally mid-transfer would re-activate the object here
     right before the record is removed, stranding a live placement
     under a Magistrate that no longer manages it. Soft state — never
     persisted (a restored Magistrate has no transfer in flight). *)
  mutable moving : Loid.t option;
  mutable held : (Loid.t option -> unit) list;
  (* At-least-once delivery can hand us the same Move twice: the
     duplicate must join the in-flight transfer and share its outcome —
     refusing it would answer the caller's call id early, letting the
     caller act while the transfer is still mutating both record
     tables. *)
  mutable movers : ((Value.t, Err.t) result -> unit) list;
  (* Reactivation in flight: later Activate requests join it instead of
     starting their own. Two racing reactivations each bump the epoch
     but only one spawn wins, leaving a live placement that is fenced
     on every call — permanently, because rebinding just finds the same
     placement again. Soft state, like [moving]. *)
  mutable activating : ((Value.t, Err.t) result -> unit) list option;
}

type state = {
  mutable jurisdiction : string;
  mutable hosts : Loid.t list;
  mutable activation_policy : Policy.t;
  mutable records : (Loid.t * record) list;
  (* Side index over [records] — the list stays authoritative because
     its order is observable (serialization, TransferObjects,
     ListObjects), but lookups must not scan at 10^5 objects. *)
  mutable rec_idx : record Loid.Table.t;
  mutable host_load : int Loid.Table.t;  (* local activation counts *)
  mutable activations : int;
  mutable migrations : int;
  (* Failure-detector soft state: re-derived by heartbeats after a
     restore, so deliberately not persisted. *)
  mutable dead_hosts : Loid.t list;
  mutable missed : (Loid.t * int) list;  (* consecutive missed beats *)
}

let state_value ?(hosts = []) ?(activation_policy = Policy.Allow_all)
    ~jurisdiction () =
  Value.Record
    [
      ("jur", Value.Str jurisdiction);
      ("hosts", C.vloids hosts);
      ("policy", Policy.to_value activation_policy);
      ("records", Value.List []);
    ]

let record_to_value (loid, r) =
  Value.Record
    [
      ("loid", Loid.to_value loid);
      ("opa", C.vopt Opa.to_value r.opa);
      ( "active",
        match r.active with
        | None -> Value.List []
        | Some (h, a) ->
            Value.List
              [ Value.Record [ ("h", Loid.to_value h); ("a", Address.to_value a) ] ]
      );
    ]

let ( let* ) r f = Result.bind r f

let record_of_value v =
  let* loid = C.loid_field v "loid" in
  let* opa = C.opt_field v "opa" Opa.of_value in
  let* active =
    C.opt_field v "active" (fun av ->
        let* h = C.loid_field av "h" in
        let* a_v = C.field av "a" in
        let* a = Address.of_value a_v in
        Ok (h, a))
  in
  Ok (loid, { opa; active; moving = None; held = []; movers = []; activating = None })

let factory (ctx : Runtime.ctx) : Impl.part =
  let rt = ctx.Runtime.rt in
  let self = Runtime.proc_loid ctx.Runtime.self in
  let st =
    {
      jurisdiction = "";
      hosts = [];
      activation_policy = Policy.Allow_all;
      records = [];
      rec_idx = Loid.Table.create ();
      host_load = Loid.Table.create ();
      activations = 0;
      migrations = 0;
      dead_hosts = [];
      missed = [];
    }
  in
  let env = Env.of_self self in
  let invoke dst meth args k = Runtime.invoke ctx ~dst ~meth ~args ~env k in
  let invoke_for call_env dst meth args k =
    Runtime.invoke ctx ~dst ~meth ~args
      ~env:(Env.delegate call_env ~calling:self) k
  in

  let storage () =
    match find_storage st.jurisdiction with
    | Some s -> Ok s
    | None ->
        Error
          (Err.Internal
             (Printf.sprintf "jurisdiction %S has no registered storage"
                st.jurisdiction))
  in
  let find_record loid = Loid.Table.find st.rec_idx loid in
  let add_record loid r =
    st.records <- (loid, r) :: st.records;
    Loid.Table.set st.rec_idx loid r
  in
  let load_of host =
    Option.value ~default:0 (Loid.Table.find st.host_load host)
  in
  let bump_load host = Loid.Table.set st.host_load host (load_of host + 1) in
  let is_dead h = List.exists (Loid.equal h) st.dead_hosts in
  (* Hosts the failure detector has confirmed dead are skipped by
     placement decisions until a heartbeat reaches them again. *)
  let live_hosts () = List.filter (fun h -> not (is_dead h)) st.hosts in
  let emit_ev kind =
    Runtime.emit rt ~host:(Runtime.proc_host ctx.Runtime.self) kind
  in
  let check_policy ~meth call_env k yes =
    match Policy.check st.activation_policy ~meth ~env:call_env with
    | Policy.Allow -> yes ()
    | Policy.Deny reason ->
        (* The error stays [Refused] — the Magistrate's historical §3.8
           "requests rather than commands" answer — but the rejection is
           attributed like any other policy denial: a tenant-tagged
           [Deny] event for the per-tenant tables. *)
        let (_tenant : string) =
          Runtime.note_deny rt ctx.Runtime.self ~meth ~env:call_env
        in
        k (Error (Err.Refused reason))
  in
  let mint_binding loid address =
    let ttl = (Runtime.config rt).Runtime.binding_ttl in
    let expires = Option.map (fun d -> Runtime.now rt +. d) ttl in
    Binding.make ?expires
      ~epoch:(Runtime.current_epoch rt loid)
      ~loid ~address ()
  in
  (* Tell the responsible class about magistrate-set changes so its
     Current Magistrate List stays accurate. The continuation fires once
     the class has acknowledged (or the notification definitively
     failed): Copy/Move/Delete must not report success while the class
     still points at the old magistrate — its Not_bound answers are
     terminal for binding resolution, unlike stale addresses which the
     §4.1.4 retry machinery repairs. Class objects themselves are
     located through LegionClass pairs, so only instances are notified. *)
  let notify_class loid ~add ~remove k =
    if Loid.is_class loid then k ()
    else
      (* The class may shed the notification under admission pressure —
         exactly when migrations are busiest. A dropped notification
         leaves the Current Magistrate List pointing at a Magistrate
         that no longer holds the record, which is permanent: nothing
         later repairs it. Retry sheds with their advertised backoff. *)
      let rec go attempts =
        invoke (Loid.responsible_class loid) "NotifyMagistrates"
          [ Loid.to_value loid; C.vloids add; C.vloids remove ]
          (fun r ->
            match r with
            | Error e when attempts > 0 && Err.is_retryable e ->
                let delay = Option.value ~default:0.05 (Err.retry_after e) in
                ignore
                  (Engine.schedule (Runtime.sim rt) ~delay (fun () ->
                       go (attempts - 1)))
            | _ -> k ())
      in
      go 5
  in

  (* Host selection: explicit hint, else a Scheduling Agent if given,
     else the locally least-loaded host (§3.8: Magistrates have "some
     default scheduling behavior" while real policies live in
     Scheduling Agents). *)
  let pick_host ~env:call_env ~host_hint ~sched k =
    match host_hint with
    | Some h -> k (Ok h)
    | None -> (
        match live_hosts () with
        | [] -> k (Error (Err.Refused "jurisdiction has no hosts"))
        | hosts -> (
            match sched with
            | Some agent ->
                ignore call_env;
                let candidates =
                  Value.List
                    (List.map
                       (fun h ->
                         Value.Record
                           [ ("host", Loid.to_value h); ("load", Value.Int (load_of h)) ])
                       hosts)
                in
                invoke agent "PickHost" [ candidates ] (fun r ->
                    match r with
                    | Ok v -> (
                        match C.loid_arg v with
                        | Ok h -> k (Ok h)
                        | Error msg -> k (Error (Err.Internal msg)))
                    | Error e -> k (Error e))
            | None ->
                let best =
                  List.fold_left
                    (fun acc h ->
                      match acc with
                      | Some (_, l) when l <= load_of h -> acc
                      | _ -> Some (h, load_of h))
                    None hosts
                in
                (match best with
                | Some (h, _) -> k (Ok h)
                | None -> k (Error (Err.Refused "jurisdiction has no hosts")))))
  in

  let do_activate_leader ~env:call_env loid record ~host_hint ~sched k =
    match record.opa with
    | None -> k (Error (Err.Not_bound "no persistent representation held here"))
    | Some opa -> (
        match storage () with
        | Error e -> k (Error e)
        | Ok store -> (
            match Persistent.get store opa with
            | None -> k (Error (Err.Internal "persistent representation missing"))
            | Some blob ->
                (* Every reactivation opens a new incarnation: the spawn
                   below picks the bumped epoch up, and any placement of
                   an older incarnation still lingering somewhere is
                   fenced instead of answering. *)
                ignore (Runtime.bump_epoch rt loid);
                (* On a delivery failure (the chosen Host Object is dead
                   or unreachable) fall over to the remaining hosts — a
                   crashed host must not wedge its whole Jurisdiction. *)
                let try_host host ~fallbacks =
                  let probe = (Runtime.config rt).Runtime.call_timeout /. 10.0 in
                  let rec attempt host fallbacks =
                    Runtime.invoke ctx ~timeout:probe ~dst:host ~meth:"Activate"
                      ~args:[ Loid.to_value loid; Value.Blob blob ]
                      ~env:(Env.delegate call_env ~calling:self)
                      (fun r ->
                        (* Fall over on delivery failures (dead host)
                           and on refusals (a Host Object at capacity or
                           exercising its own access policy, §3.9). *)
                        let should_fall_over = function
                          | Err.Refused _ -> true
                          | e -> Err.is_delivery_failure e
                        in
                        match r with
                        | Error e when should_fall_over e -> (
                            match fallbacks with
                            | [] -> k (Error e)
                            | h :: rest -> attempt h rest)
                        | Error e -> k (Error e)
                        | Ok reply -> (
                            let addr =
                              let* av = C.field reply "addr" in
                              Address.of_value av
                            in
                            match addr with
                            | Error msg -> k (Error (Err.Internal msg))
                            | Ok address ->
                                record.active <- Some (host, address);
                                st.activations <- st.activations + 1;
                                bump_load host;
                                k (Ok (Binding.to_value (mint_binding loid address)))))
                  in
                  attempt host fallbacks
                in
                pick_host ~env:call_env ~host_hint ~sched (fun r ->
                    match r with
                    | Error e -> k (Error e)
                    | Ok host ->
                        let fallbacks =
                          List.filter
                            (fun h -> not (Loid.equal h host))
                            (live_hosts ())
                        in
                        try_host host ~fallbacks)))
  in

  (* Coalesce concurrent reactivations of one object: the first request
     leads, the rest join and share its outcome. Racing leaders would
     each bump the epoch while only one spawn wins — every call to the
     survivor then fences against the higher epoch, and rebinding never
     repairs it because resolution keeps finding the same placement. *)
  let do_activate ~env:call_env loid record ~host_hint ~sched k =
    match record.activating with
    | Some waiters -> record.activating <- Some (k :: waiters)
    | None ->
        record.activating <- Some [];
        do_activate_leader ~env:call_env loid record ~host_hint ~sched (fun r ->
            let waiters = Option.value ~default:[] record.activating in
            record.activating <- None;
            List.iter (fun w -> w r) (List.rev (k :: waiters)))
  in

  let activate _ctx args call_env k =
    match args with
    | [ loid_v; hints ] -> (
        let decoded =
          let* loid = C.loid_arg loid_v in
          let* stale = C.opt_address_field hints "stale" in
          let* host_hint = C.opt_loid_field hints "host" in
          let* sched = C.opt_loid_field hints "sched" in
          Ok (loid, stale, host_hint, sched)
        in
        match decoded with
        | Error msg -> Impl.bad_args k msg
        | Ok (loid, stale, host_hint, sched) ->
            check_policy ~meth:"Activate" call_env k (fun () ->
                match find_record loid with
                | None -> k (Error (Err.Not_bound "object unknown to this magistrate"))
                | Some record ->
                    let serve () =
                      match record.active with
                      | Some (_, address)
                        when not
                               (match stale with
                               | Some s -> Address.equal s address
                               | None -> false) ->
                          k (Ok (Binding.to_value (mint_binding loid address)))
                      | Some (host, address) ->
                          (* The caller believes the recorded address is
                             dead — but its timeout may have been
                             transient. Ask the Host Object before
                             restarting: blind reactivation would fork the
                             object and roll its state back to the OPR. *)
                          let probe = (Runtime.config rt).Runtime.call_timeout /. 10.0 in
                          Runtime.invoke ctx ~timeout:probe ~dst:host ~meth:"IsAlive"
                            ~args:[ Loid.to_value loid ]
                            ~env:(Env.delegate call_env ~calling:self)
                            (fun r ->
                              match r with
                              | Ok (Value.Bool true) ->
                                  k (Ok (Binding.to_value (mint_binding loid address)))
                              | Ok _ | Error _ ->
                                  record.active <- None;
                                  do_activate ~env:call_env loid record ~host_hint
                                    ~sched k)
                      | None -> do_activate ~env:call_env loid record ~host_hint ~sched k
                    in
                    (match record.moving with
                    | None -> serve ()
                    | Some _ ->
                        (* The OPR is mid-transfer to another Magistrate.
                           Re-activating here would strand a live
                           placement under a Magistrate about to drop
                           the record — hold the request and, once the
                           transfer commits, forward it to the object's
                           new home (or serve locally if it aborts). *)
                        record.held <-
                          record.held
                          @ [
                              (function
                              | Some dst ->
                                  invoke_for call_env dst "Activate"
                                    [ loid_v; hints ] k
                              | None -> serve ());
                            ])))
    | _ -> Impl.bad_args k "Activate expects (loid, hints)"
  in

  let store_object _ctx args call_env k =
    match args with
    | [ loid_v; Value.Blob blob ] -> (
        match C.loid_arg loid_v with
        | Error msg -> Impl.bad_args k msg
        | Ok loid ->
            check_policy ~meth:"StoreObject" call_env k (fun () ->
                match storage () with
                | Error e -> k (Error e)
                | Ok store ->
                    let opa = Persistent.put store ~loid blob in
                    (match find_record loid with
                    | Some record ->
                        (match record.opa with
                        | Some old when not (Opa.equal old opa) ->
                            Persistent.remove store old
                        | _ -> ());
                        record.opa <- Some opa
                    | None ->
                        add_record loid { opa = Some opa; active = None; moving = None; held = []; movers = []; activating = None });
                    k Impl.ok_unit))
    | _ -> Impl.bad_args k "StoreObject expects (loid, opr: blob)"
  in

  (* Deactivate: host captures state, we persist the refreshed OPR and
     (best effort) tell the class the address is gone (§4.1.4's "news of
     an object's migration or removal"). Shared with Copy/Move. *)
  let do_deactivate ~env:call_env loid record k =
    match record.active with
    | None -> k (Ok ())
    | Some (host, _) ->
        invoke_for call_env host "Deactivate" [ Loid.to_value loid ] (fun r ->
            match r with
            | Error e -> k (Error e)
            | Ok (Value.Blob blob) -> (
                match storage () with
                | Error e -> k (Error e)
                | Ok store ->
                    let opa = Persistent.put store ~loid blob in
                    (match record.opa with
                    | Some old when not (Opa.equal old opa) ->
                        Persistent.remove store old
                    | _ -> ());
                    record.opa <- Some opa;
                    record.active <- None;
                    invoke (Loid.responsible_class loid) "NotifyAddress"
                      [ Loid.to_value loid; Value.List [] ]
                      (fun _ -> ());
                    k (Ok ()))
            | Ok _ -> k (Error (Err.Internal "Deactivate returned non-blob")))
  in

  let deactivate _ctx args call_env k =
    match args with
    | [ loid_v ] -> (
        match C.loid_arg loid_v with
        | Error msg -> Impl.bad_args k msg
        | Ok loid ->
            check_policy ~meth:"Deactivate" call_env k (fun () ->
                match find_record loid with
                | None -> k (Error (Err.Not_bound "object unknown to this magistrate"))
                | Some record ->
                    do_deactivate ~env:call_env loid record (fun r ->
                        match r with Ok () -> k Impl.ok_unit | Error e -> k (Error e))))
    | _ -> Impl.bad_args k "Deactivate expects one loid"
  in

  let remove_record loid =
    st.records <- List.filter (fun (l, _) -> not (Loid.equal l loid)) st.records;
    Loid.Table.remove st.rec_idx loid
  in

  let delete _ctx args call_env k =
    match args with
    | [ loid_v ] -> (
        match C.loid_arg loid_v with
        | Error msg -> Impl.bad_args k msg
        | Ok loid ->
            check_policy ~meth:"Delete" call_env k (fun () ->
                match find_record loid with
                | None -> k (Error (Err.Not_bound "object unknown to this magistrate"))
                | Some record ->
                    let finish () =
                      (match (record.opa, storage ()) with
                      | Some opa, Ok store -> Persistent.remove store opa
                      | _ -> ());
                      remove_record loid;
                      notify_class loid ~add:[] ~remove:[ self ] (fun () ->
                          k Impl.ok_unit)
                    in
                    (match record.active with
                    | Some (host, _) ->
                        invoke_for call_env host "Kill" [ Loid.to_value loid ]
                          (fun _ -> finish ())
                    | None -> finish ())))
    | _ -> Impl.bad_args k "Delete expects one loid"
  in

  (* Settle an in-flight transfer: release the [moving] marker and
     replay the Activate requests held meanwhile — toward the new home
     when the transfer committed ([Some dst]), locally when it aborted
     ([None]). *)
  let finish_transfer record outcome =
    let held = record.held in
    let movers = record.movers in
    record.held <- [];
    record.movers <- [];
    record.moving <- None;
    List.iter (fun resume -> resume outcome) held;
    let reply =
      match outcome with
      | Some _ -> Impl.ok_unit
      | None -> Error (Err.Refused "object transfer aborted")
    in
    List.iter (fun k -> k reply) movers
  in

  (* Copy (§3.8): deactivate, then ship the OPR to the other
     Magistrate. The object ends up Inert in both Jurisdictions, which
     is why the Current Magistrate List is a list. *)
  let do_copy ~env:call_env loid dst k =
    match find_record loid with
    | None -> k (Error (Err.Not_bound "object unknown to this magistrate"))
    | Some record ->
        do_deactivate ~env:call_env loid record (fun r ->
            match r with
            | Error e -> k (Error e)
            | Ok () -> (
                match (record.opa, storage ()) with
                | Some opa, Ok store -> (
                    match Persistent.get store opa with
                    | None -> k (Error (Err.Internal "persistent representation missing"))
                    | Some blob ->
                        invoke_for call_env dst "StoreObject"
                          [ Loid.to_value loid; Value.Blob blob ]
                          (fun r ->
                            match r with
                            | Error e -> k (Error e)
                            | Ok _ ->
                                st.migrations <- st.migrations + 1;
                                Runtime.emit rt
                                  ~host:(Runtime.proc_host ctx.Runtime.self)
                                  (Legion_obs.Event.Migrate { loid; dst });
                                notify_class loid ~add:[ dst ] ~remove:[]
                                  (fun () -> k (Ok ()))))
                | None, _ -> k (Error (Err.Not_bound "no persistent representation"))
                | _, Error e -> k (Error e)))
  in

  let copy _ctx args call_env k =
    match args with
    | [ loid_v; dst_v ] -> (
        let decoded =
          let* loid = C.loid_arg loid_v in
          let* dst = C.loid_arg dst_v in
          Ok (loid, dst)
        in
        match decoded with
        | Error msg -> Impl.bad_args k msg
        | Ok (loid, dst) ->
            check_policy ~meth:"Copy" call_env k (fun () ->
                do_copy ~env:call_env loid dst (fun r ->
                    match r with Ok () -> k Impl.ok_unit | Error e -> k (Error e))))
    | _ -> Impl.bad_args k "Copy expects (loid, magistrate)"
  in

  (* Move = Copy then remove locally (§3.8: "equivalent to Copy() then
     Delete()", where the Delete is of the local copy only). *)
  let move _ctx args call_env k =
    match args with
    | [ loid_v; dst_v ] -> (
        let decoded =
          let* loid = C.loid_arg loid_v in
          let* dst = C.loid_arg dst_v in
          Ok (loid, dst)
        in
        match decoded with
        | Error msg -> Impl.bad_args k msg
        | Ok (loid, dst) ->
            check_policy ~meth:"Move" call_env k (fun () ->
                match find_record loid with
                | None ->
                    k (Error (Err.Not_bound "object unknown to this magistrate"))
                | Some record when record.moving <> None ->
                    (* A duplicate delivery (same destination) joins the
                       transfer; a genuinely different transfer is
                       refused. *)
                    if
                      match record.moving with
                      | Some d -> Loid.equal d dst
                      | None -> false
                    then record.movers <- k :: record.movers
                    else
                      k
                        (Error
                           (Err.Refused "conflicting object transfer in flight"))
                | Some record ->
                    record.moving <- Some dst;
                    do_copy ~env:call_env loid dst (fun r ->
                        match r with
                        | Error e ->
                            finish_transfer record None;
                            k (Error e)
                        | Ok () ->
                            (match (record.opa, storage ()) with
                            | Some opa, Ok store -> Persistent.remove store opa
                            | _ -> ());
                            remove_record loid;
                            finish_transfer record (Some dst);
                            notify_class loid ~add:[] ~remove:[ self ] (fun () ->
                                k Impl.ok_unit))))
    | _ -> Impl.bad_args k "Move expects (loid, magistrate)"
  in

  (* SweepIdle: "Magistrates are responsible for moving objects between
     Active and Inert states" (§3.1) — reclaim hosts by deactivating
     objects idle for at least the given number of virtual seconds. The
     Host Objects name the idle processes; we deactivate those we
     manage. Replies how many were deactivated. *)
  let sweep_idle _ctx args call_env k =
    match args with
    | [ Value.Float threshold ] ->
        check_policy ~meth:"SweepIdle" call_env k (fun () ->
            let active_hosts =
              List.sort_uniq Loid.compare
                (List.filter_map (fun (_, r) -> Option.map fst r.active) st.records)
            in
            let swept = ref 0 in
            let rec per_host = function
              | [] -> k (Ok (Value.Int !swept))
              | h :: rest ->
                  invoke_for call_env h "IdleProcesses" [ Value.Float threshold ]
                    (fun r ->
                      match r with
                      | Error _ -> per_host rest
                      | Ok idle_v ->
                          let idle =
                            match C.loid_list_field
                                    (Value.Record [ ("l", idle_v) ]) "l"
                            with
                            | Ok ls -> ls
                            | Error _ -> []
                          in
                          let mine =
                            List.filter
                              (fun l ->
                                match find_record l with
                                | Some { active = Some (host, _); _ } ->
                                    Loid.equal host h
                                | _ -> false)
                              idle
                          in
                          let rec deact = function
                            | [] -> per_host rest
                            | l :: more -> (
                                match find_record l with
                                | Some record ->
                                    do_deactivate ~env:call_env l record (fun r ->
                                        (match r with
                                        | Ok () -> incr swept
                                        | Error _ -> ());
                                        deact more)
                                | None -> deact more)
                          in
                          deact mine)
            in
            per_host active_hosts)
    | _ -> Impl.bad_args k "SweepIdle expects one float"
  in

  (* Checkpoint one active object *in place*: capture SaveState over
     its recorded address without deactivating it, keep the stored
     OPR's identity fields (kind/units/agent/capacity) and replace only
     the state record, re-writing the same OPA. A crash then loses at
     most one checkpoint interval of state instead of everything since
     the last explicit Deactivate. Best effort: any failure leaves the
     previous OPR in place for the next sweep. *)
  let checkpoint_record loid record k =
    match (record.active, record.opa, storage ()) with
    | Some (_, address), Some opa, Ok store -> (
        match Option.map Opr.of_blob (Persistent.get store opa) with
        | None | Some (Error _) -> k false
        | Some (Ok opr) ->
            let budget = (Runtime.config rt).Runtime.call_timeout /. 4.0 in
            Runtime.invoke_address ctx ~timeout:budget ~address ~dst:loid
              ~meth:"SaveState" ~args:[] ~env (fun r ->
                match r with
                | Ok (Value.Record states) -> (
                    let opr' =
                      Opr.make ~states ?binding_agent:opr.Opr.binding_agent
                        ?cache_capacity:opr.Opr.cache_capacity
                        ~kind:opr.Opr.kind ~units:opr.Opr.units ()
                    in
                    match Persistent.put_at store opa (Opr.to_blob opr') with
                    | Ok () ->
                        emit_ev (Event.Checkpoint { loid });
                        k true
                    | Error _ -> k false)
                | Ok _ | Error _ -> k false))
    | _ -> k false
  in
  let checkpoint_all k =
    let snapshot = st.records in
    let count = ref 0 in
    let rec go = function
      | [] -> k !count
      | (loid, record) :: rest ->
          checkpoint_record loid record (fun ok ->
              if ok then incr count;
              go rest)
    in
    go snapshot
  in
  let sweep_checkpoint _ctx args call_env k =
    match args with
    | [] ->
        check_policy ~meth:"SweepCheckpoint" call_env k (fun () ->
            checkpoint_all (fun n -> k (Ok (Value.Int n))))
    | _ -> Impl.bad_args k "SweepCheckpoint takes no arguments"
  in
  (* StartCheckpointing: arm a periodic SweepCheckpoint until the given
     absolute virtual time. The horizon is explicit so a simulation
     that runs to quiescence still terminates. *)
  let start_checkpointing _ctx args call_env k =
    match args with
    | [ Value.Float period; Value.Float until ] ->
        check_policy ~meth:"StartCheckpointing" call_env k (fun () ->
            if period <= 0.0 then
              Impl.bad_args k "StartCheckpointing: period must be positive"
            else begin
              let sim = Runtime.sim rt in
              let rec sweep () =
                if Runtime.is_live ctx.Runtime.self then
                  checkpoint_all (fun _ ->
                      if Engine.now sim +. period <= until then
                        ignore (Engine.schedule sim ~delay:period sweep))
              in
              ignore (Engine.schedule sim ~delay:period sweep);
              k Impl.ok_unit
            end)
    | _ -> Impl.bad_args k "StartCheckpointing expects (period, until)"
  in

  (* Failure detection (heartbeats): probe every Host Object each
     period; consecutive misses move it Suspect -> ConfirmDead at the
     threshold, at which point every resident object is recovered
     proactively — its record is cleared, the MTTR clock started, and
     its responsible class told to reactivate it (NotifyDead) on a
     surviving host. No caller has to trip over the corpse first. A
     later successful probe revives the host for placement. *)
  let missed_of h =
    match List.find_opt (fun (l, _) -> Loid.equal l h) st.missed with
    | Some (_, n) -> n
    | None -> 0
  in
  let set_missed h n =
    st.missed <-
      (h, n) :: List.filter (fun (l, _) -> not (Loid.equal l h)) st.missed
  in
  let confirm_dead h =
    if not (is_dead h) then begin
      st.dead_hosts <- h :: st.dead_hosts;
      let victims =
        List.filter
          (fun (_, r) ->
            match r.active with
            | Some (hh, _) -> Loid.equal hh h
            | None -> false)
          st.records
      in
      emit_ev
        (Event.Confirm_dead { host_obj = h; objects = List.length victims });
      List.iter
        (fun (loid, record) ->
          record.active <- None;
          Runtime.mark_dead rt loid;
          (* Classes recover lazily through the agent chain; only
             instances get the proactive push. *)
          if not (Loid.is_class loid) then
            invoke (Loid.responsible_class loid) "NotifyDead"
              [ Loid.to_value loid ]
              (fun _ -> ()))
        victims
    end
  in
  let probe_host ~threshold h k =
    let probe = (Runtime.config rt).Runtime.call_timeout /. 10.0 in
    Runtime.invoke ctx ~timeout:probe ~max_rebinds:0 ~dst:h ~meth:"GetState"
      ~args:[] ~env (fun r ->
        (match r with
        | Ok _ ->
            if is_dead h then
              st.dead_hosts <-
                List.filter (fun l -> not (Loid.equal l h)) st.dead_hosts;
            set_missed h 0
        | Error _ ->
            let n = missed_of h + 1 in
            set_missed h n;
            emit_ev (Event.Suspect { host_obj = h; missed = n });
            if n >= threshold then confirm_dead h);
        k ())
  in
  let start_heartbeat _ctx args call_env k =
    match args with
    | [ Value.Float period; Value.Int threshold; Value.Float until ] ->
        check_policy ~meth:"StartHeartbeat" call_env k (fun () ->
            if period <= 0.0 || threshold < 1 then
              Impl.bad_args k "StartHeartbeat: bad period/threshold"
            else begin
              let sim = Runtime.sim rt in
              let rec beat () =
                if Runtime.is_live ctx.Runtime.self then begin
                  let rec per_host = function
                    | [] ->
                        if Engine.now sim +. period <= until then
                          ignore (Engine.schedule sim ~delay:period beat)
                    | h :: rest -> probe_host ~threshold h (fun () -> per_host rest)
                  in
                  per_host st.hosts
                end
              in
              ignore (Engine.schedule sim ~delay:period beat);
              k Impl.ok_unit
            end)
    | _ -> Impl.bad_args k "StartHeartbeat expects (period, threshold, until)"
  in

  (* AdoptObject: accept responsibility for an object whose OPR already
     sits on storage this Jurisdiction can see — the §2.2 non-disjoint
     storage case, used by jurisdiction splitting. *)
  let adopt_object _ctx args call_env k =
    match args with
    | [ loid_v; opa_v ] -> (
        let decoded =
          let* loid = C.loid_arg loid_v in
          let* opa = Opa.of_value opa_v in
          Ok (loid, opa)
        in
        match decoded with
        | Error msg -> Impl.bad_args k msg
        | Ok (loid, opa) ->
            check_policy ~meth:"AdoptObject" call_env k (fun () ->
                match storage () with
                | Error e -> k (Error e)
                | Ok store ->
                    if Persistent.get store opa = None then
                      k
                        (Error
                           (Err.Refused
                              "persistent representation not visible from this                                jurisdiction"))
                    else begin
                      (match find_record loid with
                      | Some record -> record.opa <- Some opa
                      | None -> add_record loid { opa = Some opa; active = None; moving = None; held = []; movers = []; activating = None });
                      k Impl.ok_unit
                    end))
    | _ -> Impl.bad_args k "AdoptObject expects (loid, opa)"
  in

  (* TransferObjects: §2.2 jurisdiction splitting — hand up to [max]
     managed objects to another Magistrate. Active objects are
     deactivated first; the class is told synchronously per object. *)
  let transfer_objects _ctx args call_env k =
    match args with
    | [ dst_v; Value.Int max_n ] -> (
        match C.loid_arg dst_v with
        | Error msg -> Impl.bad_args k msg
        | Ok dst ->
            check_policy ~meth:"TransferObjects" call_env k (fun () ->
                (* Class objects stay put: they are located through
                   LegionClass pairs, not a Current Magistrate List, so
                   nobody can be told about the new home — transferring
                   one would strand it (every later activation still
                   asks this Magistrate). *)
                let candidates =
                  List.filteri
                    (fun i _ -> i < max_n)
                    (List.filter
                       (fun (l, _) -> not (Loid.is_class l))
                       st.records)
                in
                let moved = ref 0 in
                let rec transfer = function
                  | [] -> k (Ok (Value.Int !moved))
                  | (_, record) :: rest when record.moving <> None ->
                      transfer rest
                  | (loid, record) :: rest ->
                      record.moving <- Some dst;
                      do_deactivate ~env:call_env loid record (fun r ->
                          match r with
                          | Error _ ->
                              finish_transfer record None;
                              transfer rest
                          | Ok () -> (
                              match record.opa with
                              | None ->
                                  finish_transfer record None;
                                  transfer rest
                              | Some opa ->
                                  invoke_for call_env dst "AdoptObject"
                                    [ Loid.to_value loid; Opa.to_value opa ]
                                    (fun r ->
                                      match r with
                                      | Error _ ->
                                          finish_transfer record None;
                                          transfer rest
                                      | Ok _ ->
                                          remove_record loid;
                                          incr moved;
                                          finish_transfer record (Some dst);
                                          notify_class loid ~add:[ dst ]
                                            ~remove:[ self ] (fun () ->
                                              transfer rest))))
                in
                transfer candidates))
    | _ -> Impl.bad_args k "TransferObjects expects (magistrate, max: int)"
  in

  let add_host _ctx args _env k =
    match args with
    | [ host_v ] -> (
        match C.loid_arg host_v with
        | Error msg -> Impl.bad_args k msg
        | Ok host ->
            if not (List.exists (Loid.equal host) st.hosts) then
              st.hosts <- st.hosts @ [ host ];
            k Impl.ok_unit)
    | _ -> Impl.bad_args k "AddHost expects one host loid"
  in

  let remove_host _ctx args _env k =
    match args with
    | [ host_v ] -> (
        match C.loid_arg host_v with
        | Error msg -> Impl.bad_args k msg
        | Ok host ->
            st.hosts <- List.filter (fun h -> not (Loid.equal h host)) st.hosts;
            k Impl.ok_unit)
    | _ -> Impl.bad_args k "RemoveHost expects one host loid"
  in

  let set_activation_policy _ctx args _env k =
    match args with
    | [ pv ] -> (
        match Policy.of_value pv with
        | Ok p ->
            st.activation_policy <- p;
            k Impl.ok_unit
        | Error msg -> Impl.bad_args k msg)
    | _ -> Impl.bad_args k "SetActivationPolicy expects one policy"
  in

  let list_objects _ctx args _env k =
    match args with
    | [] -> k (Ok (C.vloids (List.map fst st.records)))
    | _ -> Impl.bad_args k "ListObjects takes no arguments"
  in

  let info _ctx args _env k =
    match args with
    | [] ->
        let n_active =
          List.length
            (List.filter (fun (_, r) -> Option.is_some r.active) st.records)
        in
        k
          (Ok
             (Value.Record
                [
                  ("jurisdiction", Value.Str st.jurisdiction);
                  ("hosts", C.vloids st.hosts);
                  ("objects", Value.Int (List.length st.records));
                  ("active", Value.Int n_active);
                  ("activations", Value.Int st.activations);
                  ("migrations", Value.Int st.migrations);
                ]))
    | _ -> Impl.bad_args k "GetJurisdictionInfo takes no arguments"
  in

  let save () =
    Value.Record
      [
        ("jur", Value.Str st.jurisdiction);
        ("hosts", C.vloids st.hosts);
        ("policy", Policy.to_value st.activation_policy);
        ("records", Value.List (List.map record_to_value st.records));
      ]
  in
  let restore v =
    let* jur = C.str_field v "jur" in
    let* hosts = C.loid_list_field v "hosts" in
    let* pv = C.field v "policy" in
    let* policy = Policy.of_value pv in
    let* records_v = C.field v "records" in
    let* records =
      match records_v with
      | Value.List rs ->
          let rec loop acc = function
            | [] -> Ok (List.rev acc)
            | rv :: rest ->
                let* r = record_of_value rv in
                loop (r :: acc) rest
          in
          loop [] rs
      | _ -> Error "magistrate state: records not a list"
    in
    st.jurisdiction <- jur;
    st.hosts <- hosts;
    st.activation_policy <- policy;
    st.records <- records;
    let idx = Loid.Table.create () in
    List.iter (fun (l, r) -> Loid.Table.set idx l r) records;
    st.rec_idx <- idx;
    Ok ()
  in
  Impl.part
    ~methods:
      [
        ("Activate", activate);
        ("StoreObject", store_object);
        ("Deactivate", deactivate);
        ("Delete", delete);
        ("Copy", copy);
        ("Move", move);
        ("SweepIdle", sweep_idle);
        ("SweepCheckpoint", sweep_checkpoint);
        ("StartCheckpointing", start_checkpointing);
        ("StartHeartbeat", start_heartbeat);
        ("AdoptObject", adopt_object);
        ("TransferObjects", transfer_objects);
        ("AddHost", add_host);
        ("RemoveHost", remove_host);
        ("SetActivationPolicy", set_activation_policy);
        ("ListObjects", list_objects);
        ("GetJurisdictionInfo", info);
      ]
    ~save ~restore unit_name

let register () = Impl.register unit_name factory
