module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Address = Legion_naming.Address
module Env = Legion_sec.Env
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Impl = Legion_core.Impl
module Opr = Legion_core.Opr
module C = Legion_core.Convert

let unit_name = "legion.host"

(* What we must remember about a running process to rebuild its OPR at
   deactivation: everything except the state snapshot, which SaveState
   provides at that moment. *)
type process = {
  proc : Runtime.proc;
  kind : string;
  units : string list;
  binding_agent : Address.t option;
  cache_capacity : int option;
}

type state = {
  mutable capacity : int option;
  mutable memory : int;
  mutable processes : (Loid.t * process) list;
  mutable activations : int;
  mutable exceptions : int;  (* activation failures reported *)
}

let state_value ?capacity () =
  Value.Record [ ("cap", C.vopt Value.of_int capacity); ("mem", Value.Int 0) ]

let factory (ctx : Runtime.ctx) : Impl.part =
  let rt = ctx.Runtime.rt in
  let self = Runtime.proc_loid ctx.Runtime.self in
  let net_host = Runtime.proc_host ctx.Runtime.self in
  let st =
    { capacity = None; memory = 0; processes = []; activations = 0; exceptions = 0 }
  in
  let env = Env.of_self self in

  let live_processes () =
    st.processes <-
      List.filter
        (fun (_, p) ->
          Runtime.is_live p.proc
          &&
          (* A placement from a superseded incarnation is a zombie, not
             a resident: delivery fences it, so it can never answer.
             Counting it as "already running here" would make Activate
             hand out its address forever (a rebind livelock after a
             partition-era epoch bump). Reap it on sight; the caller
             then re-activates from the OPR under the current epoch. *)
          if
            Runtime.proc_epoch p.proc
            < Runtime.current_epoch rt (Runtime.proc_loid p.proc)
          then begin
            Runtime.kill rt p.proc;
            false
          end
          else true)
        st.processes;
    st.processes
  in
  let find_process loid =
    List.find_opt (fun (l, _) -> Loid.equal l loid) (live_processes ())
    |> Option.map snd
  in
  let full () =
    match st.capacity with
    | None -> false
    | Some c -> List.length (live_processes ()) >= c
  in

  let activate _ctx args _env k =
    match args with
    | [ loid_v; Value.Blob blob ] -> (
        match C.loid_arg loid_v with
        | Error msg -> Impl.bad_args k msg
        | Ok loid ->
            if full () then k (Error (Err.Refused "host at capacity"))
            else if Option.is_some (find_process loid) then
              (* Already running here: answer with the existing address
                 rather than double-activating. *)
              let p = Option.get (find_process loid) in
              k
                (Ok
                   (Value.Record
                      [ ("addr", Address.to_value (Runtime.address_of p.proc)) ]))
            else (
              match Opr.of_blob blob with
              | Error msg -> Impl.bad_args k ("bad OPR: " ^ msg)
              | Ok opr -> (
                  match Impl.activate rt ~host:net_host ~loid opr with
                  | Error msg ->
                      st.exceptions <- st.exceptions + 1;
                      k (Error (Err.Internal ("activation failed: " ^ msg)))
                  | Ok proc ->
                      st.activations <- st.activations + 1;
                      st.processes <-
                        ( loid,
                          {
                            proc;
                            kind = opr.Opr.kind;
                            units = opr.Opr.units;
                            binding_agent = opr.Opr.binding_agent;
                            cache_capacity = opr.Opr.cache_capacity;
                          } )
                        :: st.processes;
                      k
                        (Ok
                           (Value.Record
                              [
                                ( "addr",
                                  Address.to_value (Runtime.address_of proc) );
                              ])))))
    | _ -> Impl.bad_args k "Activate expects (loid, opr: blob)"
  in

  let deactivate _ctx args _env k =
    match args with
    | [ loid_v ] -> (
        match C.loid_arg loid_v with
        | Error msg -> Impl.bad_args k msg
        | Ok loid -> (
            match find_process loid with
            | None -> k (Error (Err.Not_bound "no such process on this host"))
            | Some p ->
                (* Ask the object to save its state (the mechanism of
                   §3.1.1), then stop the process and hand back the OPR. *)
                Runtime.invoke_address ctx
                  ~address:(Runtime.address_of p.proc)
                  ~dst:loid ~meth:"SaveState" ~args:[] ~env
                  (fun r ->
                    match r with
                    | Error e -> k (Error e)
                    | Ok (Value.Record states) ->
                        Runtime.kill rt p.proc;
                        st.processes <-
                          List.filter
                            (fun (l, _) -> not (Loid.equal l loid))
                            st.processes;
                        let opr =
                          Opr.make ~states ?binding_agent:p.binding_agent
                            ?cache_capacity:p.cache_capacity ~kind:p.kind
                            ~units:p.units ()
                        in
                        k (Ok (Value.Blob (Opr.to_blob opr)))
                    | Ok _ -> k (Error (Err.Internal "SaveState returned non-record")))))
    | _ -> Impl.bad_args k "Deactivate expects one loid"
  in

  let kill_meth _ctx args _env k =
    match args with
    | [ loid_v ] -> (
        match C.loid_arg loid_v with
        | Error msg -> Impl.bad_args k msg
        | Ok loid ->
            (match find_process loid with
            | Some p -> Runtime.kill rt p.proc
            | None -> ());
            st.processes <-
              List.filter (fun (l, _) -> not (Loid.equal l loid)) st.processes;
            k Impl.ok_unit)
    | _ -> Impl.bad_args k "Kill expects one loid"
  in

  let set_cpu_load _ctx args _env k =
    match args with
    | [ Value.Int n ] ->
        st.capacity <- (if n <= 0 then None else Some n);
        k Impl.ok_unit
    | _ -> Impl.bad_args k "SetCPUload expects one int"
  in

  let set_memory _ctx args _env k =
    match args with
    | [ Value.Int n ] ->
        st.memory <- n;
        k Impl.ok_unit
    | _ -> Impl.bad_args k "SetMemoryUsage expects one int"
  in

  let get_state _ctx args _env k =
    match args with
    | [] ->
        k
          (Ok
             (Value.Record
                [
                  ("load", Value.Int (List.length (live_processes ())));
                  ("cap", C.vopt Value.of_int st.capacity);
                  ("mem", Value.Int st.memory);
                  ("activations", Value.Int st.activations);
                  ("exceptions", Value.Int st.exceptions);
                ]))
    | _ -> Impl.bad_args k "GetState takes no arguments"
  in

  let list_processes _ctx args _env k =
    match args with
    | [] -> k (Ok (C.vloids (List.map fst (live_processes ()))))
    | _ -> Impl.bad_args k "ListProcesses takes no arguments"
  in

  let idle_processes _ctx args _env k =
    match args with
    | [ Value.Float threshold ] ->
        let now = Runtime.now rt in
        let idle =
          List.filter_map
            (fun (l, p) ->
              if now -. Runtime.last_delivery p.proc >= threshold then Some l
              else None)
            (live_processes ())
        in
        k (Ok (C.vloids idle))
    | _ -> Impl.bad_args k "IdleProcesses expects one float"
  in

  let is_alive _ctx args _env k =
    match args with
    | [ loid_v ] -> (
        match C.loid_arg loid_v with
        | Error msg -> Impl.bad_args k msg
        | Ok loid -> k (Ok (Value.Bool (Option.is_some (find_process loid)))))
    | _ -> Impl.bad_args k "IsAlive expects one loid"
  in

  let reap _ctx args _env k =
    match args with
    | [] ->
        let before = List.length st.processes in
        let after = List.length (live_processes ()) in
        k (Ok (Value.Int (before - after)))
    | _ -> Impl.bad_args k "Reap takes no arguments"
  in

  let save () =
    Value.Record
      [ ("cap", C.vopt Value.of_int st.capacity); ("mem", Value.Int st.memory) ]
  in
  let restore v =
    let ( let* ) r f = Result.bind r f in
    let* cap = C.opt_int_field v "cap" in
    let* mem =
      match C.int_field v "mem" with Ok m -> Ok m | Error _ -> Ok 0
    in
    st.capacity <- cap;
    st.memory <- mem;
    Ok ()
  in
  Impl.part
    ~methods:
      [
        ("Activate", activate);
        ("Deactivate", deactivate);
        ("Kill", kill_meth);
        ("SetCPUload", set_cpu_load);
        ("SetMemoryUsage", set_memory);
        ("GetState", get_state);
        ("IsAlive", is_alive);
        ("IdleProcesses", idle_processes);
        ("ListProcesses", list_processes);
        ("Reap", reap);
      ]
    ~save ~restore unit_name

let register () = Impl.register unit_name factory
