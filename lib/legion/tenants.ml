(* Multi-tenant hardening: the shared E21 noisy-neighbor scenario.

   The runtime's tenancy layer (Legion_rt.Tenant + the deficit-round-
   robin admission lanes in Legion_rt.Runtime) keys budgets off the
   §2.4 Responsible Agent. This module is the experiment that gates it:
   four registered tenants share a small pool of budgeted workers; one
   of them (mallory) can be driven at 10x its token budget, and one
   unauthorized principal (eve) probes from another site against a
   class whose binding policy excludes her. The gates: the offender's
   overload must not move the other tenants' p99, every shed must be
   attributed to the offender, and eve must be answered [Err.Denied]
   at GetBinding — she never receives a binding. *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Engine = Legion_sim.Engine
module Env = Legion_sec.Env
module Policy = Legion_sec.Policy
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Tenant = Legion_rt.Tenant
module Impl = Legion_core.Impl
module Well_known = Legion_core.Well_known
module Recorder = Legion_obs.Recorder
module Event = Legion_obs.Event
module Ustats = Legion_util.Stats
module Prng = Legion_util.Prng

(* The application unit: [Work(d)] holds an inflight slot for [d]
   virtual seconds, so concurrent demand contends for the workers'
   admission slots and queuing shows up in caller latency. *)
let work_unit = "legion.tenants.work"
let work_idl = "interface TenantWorker { Work(d: float): int; }"

let work_factory (_ctx : Runtime.ctx) : Impl.part =
  let served = ref 0 in
  let work wctx args _env k =
    match args with
    | [ Value.Float d ] when d >= 0.0 ->
        incr served;
        let eng = Runtime.sim wctx.Runtime.rt in
        let n = !served in
        ignore
          (Engine.schedule_at eng ~time:(Engine.now eng +. d) (fun () ->
               k (Ok (Value.Int n))))
    | _ -> Impl.bad_args k "Work expects one non-negative float"
  in
  Impl.part
    ~methods:[ ("Work", work) ]
    ~save:(fun () -> Value.Int !served)
    ~restore:(fun v ->
      match v with
      | Value.Int n ->
          served := n;
          Ok ()
      | _ -> Error "work state must be an int")
    work_unit

let register_units () = Impl.register work_unit work_factory

(* ------------------------------------------------------------------ *)
(* Scenario shape.                                                     *)

type lane = {
  tenant : string;
  sent : int;
  oks : int;
  quota_shed : int;  (** Caller-visible [Quota_exceeded] / [Overloaded]. *)
  errors : int;  (** Anything else that was not Ok. *)
  p50_ms : float;
  p99_ms : float;
}

type report = {
  noisy : bool;
  seed : int64;
  lanes : lane list;  (** alpha, beta, gamma, mallory — fixed order. *)
  shed_events : int;  (** [Shed] events in the scenario window. *)
  shed_by_offender : int;  (** ... attributed to mallory. *)
  shed_unattributed : int;  (** ... carrying no tenant tag (must be 0). *)
  deny_events : int;  (** [Deny] events in the window. *)
  deny_by_eve : int;  (** ... attributed to eve. *)
  eve_probes : int;
  eve_denied : int;  (** Probes answered [Err.Denied]. *)
  eve_bindings : int;  (** Probes that got a binding (must be 0). *)
}

let offender = "mallory"
let well_behaved = [ "alpha"; "beta"; "gamma" ]
let scenario_workers = 2
let scenario_horizon = 30.0
let scenario_work_d = 0.008
let scenario_rate = 20.0 (* each tenant's driven arrivals per second *)
let scenario_budget_rate = 25.0 (* the offender's token budget *)
let scenario_noisy_factor = 10.0 (* offender drive = 10x its budget *)
let scenario_probe_period = 0.5

let worker_admission =
  { Runtime.max_inflight = 1; max_queue = 16; retry_after_hint = 0.02 }

let pct stats p = if Ustats.is_empty stats then 0.0 else Ustats.percentile stats p

(* Pre-generate one tenant's Poisson arrivals (time, worker index) from
   its own derived stream, so adding a tenant never perturbs another
   tenant's draws and the schedule is independent of event interleaving. *)
let arrivals_of ~seed ~salt ~rate ~start ~until =
  let prng = Prng.create ~seed:(Int64.logxor seed salt) in
  let rec gen t acc =
    let t = t +. Prng.exponential prng ~mean:(1.0 /. rate) in
    if t > until then List.rev acc
    else gen t ((t, Prng.int prng scenario_workers) :: acc)
  in
  gen start []

let run_scenario ?(seed = 7L) ~noisy () =
  register_units ();
  let sys =
    System.boot ~seed
      ~rt_config:
        { Runtime.default_config with admission = Some worker_admission }
      ~trace_capacity:(1 lsl 18)
      ~sites:[ ("east", 3); ("west", 3) ]
      ()
  in
  let rt = System.rt sys in
  let eng = System.sim sys in
  let s0 = System.site sys 0 in
  let admin = System.client sys () in
  let cls =
    Api.derive_class_exn sys admin ~parent:Well_known.legion_object
      ~name:"TenantWorker" ~units:[ work_unit ] ~idl:work_idl ()
  in
  let workers =
    Array.init scenario_workers (fun _ ->
        Api.create_object_exn sys admin ~cls ~eager:true
          ~magistrate:s0.System.magistrate ())
  in
  (* One client per principal: the client LOID is the Responsible Agent
     every call of that tenant runs under. eve lives on the west site so
     her resolutions miss the east agent's cache and reach the class. *)
  let mk_client site = System.client sys ~site () in
  let cl_alpha = mk_client 0
  and cl_beta = mk_client 0
  and cl_gamma = mk_client 0
  and cl_mallory = mk_client 0
  and cl_eve = mk_client 1 in
  let loid_of (c : Runtime.ctx) = Runtime.proc_loid c.Runtime.self in
  let reg = Tenant.create () in
  List.iter
    (fun (name, c) ->
      ignore
        (Tenant.register reg ~name ~responsible:(loid_of c)
           ~rate:(2.0 *. scenario_budget_rate) ()))
    [ ("alpha", cl_alpha); ("beta", cl_beta); ("gamma", cl_gamma) ];
  ignore
    (Tenant.register reg ~name:offender ~responsible:(loid_of cl_mallory)
       ~rate:scenario_budget_rate ());
  ignore (Tenant.register reg ~name:"eve" ~responsible:(loid_of cl_eve) ());
  Runtime.set_tenants rt (Some reg);
  (* Close the binding path: only the four cleared principals (and the
     operator that owns the class) may resolve or instantiate. *)
  let cleared =
    Loid.Set.of_list
      (List.map loid_of [ admin; cl_alpha; cl_beta; cl_gamma; cl_mallory ])
  in
  ignore
    (Api.call_exn sys admin ~dst:cls ~meth:"SetBindingPolicy"
       ~args:[ Policy.to_value (Policy.Allow_responsible cleared) ]);
  let mark = Recorder.total (System.obs sys) in
  let start = System.now sys in
  let until = start +. scenario_horizon in
  (* Per-tenant drive + measurement. *)
  let tenants =
    [
      ("alpha", cl_alpha, scenario_rate, 0x5f1a_0001L);
      ("beta", cl_beta, scenario_rate, 0x5f1a_0002L);
      ("gamma", cl_gamma, scenario_rate, 0x5f1a_0003L);
      ( offender,
        cl_mallory,
        (if noisy then scenario_noisy_factor *. scenario_budget_rate
         else scenario_rate),
        0x5f1a_0004L );
    ]
  in
  let measured =
    List.map
      (fun (name, ctx, rate, salt) ->
        let sent = ref 0
        and oks = ref 0
        and quota = ref 0
        and errors = ref 0 in
        let lat = Ustats.create () in
        List.iter
          (fun (t, w) ->
            ignore
              (Engine.schedule_at eng ~time:t (fun () ->
                   incr sent;
                   let t0 = Engine.now eng in
                   Runtime.invoke ctx ~dst:workers.(w) ~meth:"Work"
                     ~args:[ Value.Float scenario_work_d ]
                     (fun r ->
                       match r with
                       | Ok _ ->
                           incr oks;
                           let dt = Engine.now eng -. t0 in
                           Ustats.add lat dt;
                           Recorder.observe_tenant (System.obs sys)
                             ~tenant:name dt
                       | Error (Err.Quota_exceeded _ | Err.Overloaded _) ->
                           incr quota
                       | Error _ -> incr errors))))
          (arrivals_of ~seed ~salt ~rate ~start ~until);
        (name, sent, oks, quota, errors, lat))
      tenants
  in
  (* eve's probes: each must die at GetBinding with [Denied] — never a
     binding, never a Work reply. *)
  let eve_probes = ref 0
  and eve_denied = ref 0
  and eve_bindings = ref 0 in
  let n_probes = int_of_float (scenario_horizon /. scenario_probe_period) - 1 in
  for i = 1 to n_probes do
    let t = start +. (float_of_int i *. scenario_probe_period) in
    ignore
      (Engine.schedule_at eng ~time:t (fun () ->
           incr eve_probes;
           Runtime.invoke cl_eve
             ~dst:workers.(i mod scenario_workers)
             ~meth:"Work"
             ~args:[ Value.Float scenario_work_d ]
             (fun r ->
               match r with
               | Error (Err.Denied _) -> incr eve_denied
               | Error _ -> ()
               | Ok _ -> incr eve_bindings)))
  done;
  System.run_for sys (scenario_horizon +. 10.0);
  let shed_events = ref 0
  and shed_by_offender = ref 0
  and shed_unattributed = ref 0
  and deny_events = ref 0
  and deny_by_eve = ref 0 in
  List.iter
    (fun (ev : Event.t) ->
      match ev.Event.kind with
      | Event.Shed { tenant; _ } -> (
          incr shed_events;
          match tenant with
          | Some t when String.equal t offender -> incr shed_by_offender
          | Some _ -> ()
          | None -> incr shed_unattributed)
      | Event.Deny { tenant; _ } ->
          incr deny_events;
          if String.equal tenant "eve" then incr deny_by_eve
      | _ -> ())
    (Recorder.events_since (System.obs sys) mark);
  let lanes =
    List.map
      (fun (name, sent, oks, quota, errors, lat) ->
        {
          tenant = name;
          sent = !sent;
          oks = !oks;
          quota_shed = !quota;
          errors = !errors;
          p50_ms = pct lat 50.0 *. 1000.0;
          p99_ms = pct lat 99.0 *. 1000.0;
        })
      measured
  in
  {
    noisy;
    seed;
    lanes;
    shed_events = !shed_events;
    shed_by_offender = !shed_by_offender;
    shed_unattributed = !shed_unattributed;
    deny_events = !deny_events;
    deny_by_eve = !deny_by_eve;
    eve_probes = !eve_probes;
    eve_denied = !eve_denied;
    eve_bindings = !eve_bindings;
  }

let lane_json l =
  Printf.sprintf
    "{\"tenant\": \"%s\", \"sent\": %d, \"oks\": %d, \"quota_shed\": %d, \
     \"errors\": %d, \"p50_ms\": %.3f, \"p99_ms\": %.3f}"
    l.tenant l.sent l.oks l.quota_shed l.errors l.p50_ms l.p99_ms

let scenario_json r =
  Printf.sprintf
    "{\"noisy\": %b, \"seed\": %Ld, \"lanes\": [%s], \"shed_events\": %d, \
     \"shed_by_offender\": %d, \"shed_unattributed\": %d, \"deny_events\": \
     %d, \"deny_by_eve\": %d, \"eve_probes\": %d, \"eve_denied\": %d, \
     \"eve_bindings\": %d}"
    r.noisy r.seed
    (String.concat ", " (List.map lane_json r.lanes))
    r.shed_events r.shed_by_offender r.shed_unattributed r.deny_events
    r.deny_by_eve r.eve_probes r.eve_denied r.eve_bindings

let find_lane r name = List.find_opt (fun l -> String.equal l.tenant name) r.lanes
