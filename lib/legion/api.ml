module Loid = Legion_naming.Loid
module Binding = Legion_naming.Binding
module Value = Legion_wire.Value
module Engine = Legion_sim.Engine
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module C = Legion_core.Convert

exception Call_failed of string

let sync t start =
  let result = ref None in
  start (fun r -> result := Some r);
  let sim = System.sim t in
  let rec drive () =
    match !result with
    | Some r -> r
    | None ->
        if Engine.step sim then drive ()
        else failwith "Api.sync: simulation quiesced without a reply"
  in
  drive ()

let call t ctx ~dst ~meth ~args =
  sync t (fun k -> Runtime.invoke ctx ~dst ~meth ~args k)

let call_exn t ctx ~dst ~meth ~args =
  match call t ctx ~dst ~meth ~args with
  | Ok v -> v
  | Error e ->
      raise
        (Call_failed (Printf.sprintf "%s on %s: %s" meth (Loid.to_string dst)
                        (Err.to_string e)))

let decode_create_reply v =
  let ( let* ) r f = Result.bind r f in
  let* loid = C.loid_field v "loid" in
  let* binding = C.opt_field v "binding" Binding.of_value in
  Ok (loid, binding)

let create_object t ctx ~cls ?(init = []) ?(eager = false) ?magistrate ?host
    ?sched ?(candidates = []) ?public_key () =
  let hints =
    Value.Record
      [
        ("magistrate", C.vopt Loid.to_value magistrate);
        ("host", C.vopt Loid.to_value host);
        ("sched", C.vopt Loid.to_value sched);
        ("candidates", C.vloids candidates);
        ("public_key", C.vopt Value.of_string public_key);
        ("eager", Value.Bool eager);
      ]
  in
  (* A class running an elastic clone ring answers Create with
     [{redirect: clone}] (§5.2.2: "new instantiation requests are
     passed to the cloned object"); re-issue there. Bounded hops guard
     against a misconfigured ring pointing back at itself. *)
  let rec issue dst hops =
    match
      call t ctx ~dst ~meth:"Create" ~args:[ Value.Record init; hints ]
    with
    | Error e -> Error e
    | Ok v -> (
        match C.loid_field v "redirect" with
        | Ok clone ->
            if hops <= 0 then
              Error (Err.Internal "Create: redirect chain too long")
            else issue clone (hops - 1)
        | Error _ -> (
            match decode_create_reply v with
            | Ok r -> Ok r
            | Error msg -> Error (Err.Internal msg)))
  in
  issue cls 3

let create_object_exn t ctx ~cls ?init ?eager ?magistrate ?host ?sched
    ?candidates ?public_key () =
  match
    create_object t ctx ~cls ?init ?eager ?magistrate ?host ?sched ?candidates
      ?public_key ()
  with
  | Ok (loid, _) -> loid
  | Error e ->
      raise
        (Call_failed
           (Printf.sprintf "Create on %s: %s" (Loid.to_string cls)
              (Err.to_string e)))

let derive_spec ~name ?(units = []) ?idl ?mpl ?(abstract = false)
    ?(private_ = false) ?(fixed = false) ?(typed = false) ?kind ?magistrate () =
  Value.Record
    [
      ("name", Value.Str name);
      ("units", C.vstrs units);
      ("idl", C.vopt Value.of_string idl);
      ("mpl", C.vopt Value.of_string mpl);
      ("abstract", Value.Bool abstract);
      ("private", Value.Bool private_);
      ("fixed", Value.Bool fixed);
      ("typed", Value.Bool typed);
      ("kind", C.vopt Value.of_string kind);
      ("magistrate", C.vopt Loid.to_value magistrate);
    ]

let derive_class t ctx ~parent ~name ?units ?idl ?mpl ?abstract ?private_
    ?fixed ?typed ?kind ?magistrate () =
  let spec =
    derive_spec ~name ?units ?idl ?mpl ?abstract ?private_ ?fixed ?typed ?kind
      ?magistrate ()
  in
  match call t ctx ~dst:parent ~meth:"Derive" ~args:[ spec ] with
  | Error e -> Error e
  | Ok v -> (
      match decode_create_reply v with
      | Ok (loid, _) -> Ok loid
      | Error msg -> Error (Err.Internal msg))

let derive_class_exn t ctx ~parent ~name ?units ?idl ?mpl ?abstract ?private_
    ?fixed ?typed ?kind ?magistrate () =
  match
    derive_class t ctx ~parent ~name ?units ?idl ?mpl ?abstract ?private_
      ?fixed ?typed ?kind ?magistrate ()
  with
  | Ok loid -> loid
  | Error e ->
      raise
        (Call_failed
           (Printf.sprintf "Derive %s on %s: %s" name (Loid.to_string parent)
              (Err.to_string e)))

let delete_object t ctx ~cls ~loid =
  match call t ctx ~dst:cls ~meth:"Delete" ~args:[ Loid.to_value loid ] with
  | Ok _ -> Ok ()
  | Error e -> Error e

let inherit_from t ctx ~cls ~base =
  match
    call t ctx ~dst:cls ~meth:"InheritFrom" ~args:[ Loid.to_value base ]
  with
  | Ok _ -> Ok ()
  | Error e -> Error e

let get_interface t ctx ~cls =
  match call t ctx ~dst:cls ~meth:"GetInterface" ~args:[] with
  | Error e -> Error e
  | Ok v -> (
      match Legion_idl.Interface.of_value v with
      | Ok i -> Ok i
      | Error msg -> Error (Err.Internal msg))

let get_binding t ctx ~via ~target =
  match
    call t ctx ~dst:via ~meth:"GetBinding" ~args:[ Loid.to_value target ]
  with
  | Error e -> Error e
  | Ok v -> (
      match Binding.of_value v with
      | Ok b -> Ok b
      | Error msg -> Error (Err.Internal msg))
