(** Multi-tenant hardening (E21, the noisy-neighbor gate).

    The runtime's tenancy layer keys every budget off the §2.4
    {e Responsible Agent}: a {!Legion_rt.Tenant} registry holds each
    principal's weight, inflight cap and token-bucket rate, budgeted
    objects queue per tenant under deficit round robin, and the class
    machinery judges its binding policy before handing out bindings.

    {!run_scenario} is the deterministic experiment the E21 bench, the
    [legion-sim tenants] subcommand and the regression tests share:
    four registered tenants drive a pool of budgeted workers; in the
    {e noisy} arm one of them ([mallory]) is driven at 10x its token
    budget, and in both arms an unauthorized principal ([eve]) probes
    from the other site. The gates: the offender must not move the
    well-behaved tenants' p99 (vs the quiet arm, same seed) by more
    than the documented bound, every [Shed] must be attributed to the
    offender, and eve must be answered [Err.Denied] at [GetBinding] —
    she never receives a binding. *)

type lane = {
  tenant : string;
  sent : int;  (** Open-loop arrivals issued by this tenant. *)
  oks : int;
  quota_shed : int;
      (** Caller-visible [Quota_exceeded] / [Overloaded] replies (after
          the comm layer's budget-aware retries gave up). *)
  errors : int;  (** Any other failed reply. *)
  p50_ms : float;  (** End-to-end Work latency percentiles. *)
  p99_ms : float;
}

type report = {
  noisy : bool;
  seed : int64;
  lanes : lane list;  (** alpha, beta, gamma, mallory — fixed order. *)
  shed_events : int;  (** [Shed] events in the scenario window. *)
  shed_by_offender : int;  (** ... attributed to mallory. *)
  shed_unattributed : int;  (** ... carrying no tenant tag (gate: 0). *)
  deny_events : int;  (** [Deny] events in the window. *)
  deny_by_eve : int;  (** ... attributed to eve. *)
  eve_probes : int;
  eve_denied : int;  (** Probes answered [Err.Denied] (gate: all). *)
  eve_bindings : int;  (** Probes that got through (gate: 0). *)
}

val offender : string
(** ["mallory"]. *)

val well_behaved : string list
(** [["alpha"; "beta"; "gamma"]]. *)

val run_scenario : ?seed:int64 -> noisy:bool -> unit -> report
(** Run the scenario: two sites of three hosts, two budgeted workers
    (one inflight slot, 8 ms service) in the east Jurisdiction; alpha,
    beta and gamma each drive 20 Poisson arrivals/s for 30 virtual
    seconds under ample budgets; mallory holds a 25 calls/s token
    budget and drives 20/s when quiet, 250/s when [noisy]; eve, on the
    west site, probes every 500 ms against a class whose binding
    policy ([Allow_responsible]) excludes her. Fully deterministic:
    the same [seed] yields a byte-identical {!scenario_json}. *)

val scenario_json : report -> string
(** One-line JSON rendering of a report (no trailing newline). *)

val find_lane : report -> string -> lane option

val work_unit : string
(** The scenario's application unit, exposed for tests. *)

val register_units : unit -> unit
