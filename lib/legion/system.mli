(** Booting and operating a Legion instance (paper §4.2.1).

    "The core objects, including the core Abstract classes
    (LegionObject, LegionClass, etc.), Host Objects, and Magistrates,
    are intended to be started from the command line or shell script in
    the host operating system." [boot] is that shell script: it builds
    the simulated internetwork, spawns the five core class objects with
    their well-known LOIDs, one Binding Agent and one Magistrate (with
    storage) per site, one Host Object per host, then lets the
    externally-started objects register with their classes — "when Host
    Objects come alive, they contact the existing class object named
    LegionHost".

    One Jurisdiction is created per site, named after it. Site 0's
    first host carries the core class objects. *)

module Loid := Legion_naming.Loid
module Address := Legion_naming.Address
module Binding := Legion_naming.Binding
module Runtime := Legion_rt.Runtime

type site = {
  site_id : Legion_net.Network.site_id;
  site_name : string;
  net_hosts : Legion_net.Network.host_id list;
  host_objects : Loid.t list;  (** One per net host, same order. *)
  magistrate : Loid.t;
  agent : Loid.t;  (** The site's Binding Agent. *)
  agent_address : Address.t;
  storage : Legion_store.Persistent.t;
}

type t

val boot :
  ?seed:int64 ->
  ?latency:Legion_net.Network.latency ->
  ?rt_config:Runtime.config ->
  ?agent_cache_capacity:int ->
  ?object_cache_capacity:int ->
  ?trace_capacity:int ->
  sites:(string * int) list ->
  unit ->
  t
(** [boot ~sites:[("uva", 4); ("doe", 8)] ()] brings up a two-site
    Legion with 4 and 8 hosts. [object_cache_capacity] bounds the
    comm-layer cache of every object created thereafter through the
    class machinery. [trace_capacity] bounds the structured-event ring
    buffer (see {!obs}). @raise Failure if any bootstrap registration
    fails. *)

val sim : t -> Legion_sim.Engine.t
val net : t -> Legion_net.Network.t
val rt : t -> Runtime.t
val registry : t -> Legion_util.Counter.Registry.r
val prng : t -> Legion_util.Prng.t
val sites : t -> site list
val site : t -> int -> site
val legion_class_binding : t -> Binding.t

val obs : t -> Legion_obs.Recorder.t
(** The structured-event recorder shared by the network and the
    runtime: every [Send]/[Deliver]/[Drop], every comm-layer cache and
    rebind decision, and every activation appears here in virtual-time
    order. Query it with {!Legion_obs.Trace}. Note that boot itself
    emits the bootstrap's events; {!Legion_obs.Recorder.clear} (or a
    {!Legion_obs.Recorder.total} mark) isolates a scenario. *)

val magistrates : t -> Loid.t list
val host_objects : t -> Loid.t list

val fresh_instance_loid : t -> of_class:Loid.t -> Loid.t
(** Allocate a LOID for an externally-started instance of a core class
    (how bootstrap names Host Objects, Magistrates and Binding Agents;
    also used by tests). Draws from a high range ([2^32 + n]) so it
    never collides with class-allocated sequence numbers. *)

val grow_site :
  t -> site:int -> ?host_class:Loid.t -> n:int -> unit -> Loid.t list
(** Expand a Jurisdiction at run time: add [n] simulated hosts to the
    site, start a Host Object on each "from outside Legion" (§4.2.1),
    register it with [host_class] (default [LegionHost]; pass a class
    derived from it — Fig. 8's UnixHost/SPMDHost hierarchy — to model
    heterogeneous resources), and tell the site's Magistrate via
    [AddHost]. Returns the new Host Object LOIDs. "New Host Objects and
    Magistrates will be added as the Legion system expands to include
    new hosts and Jurisdictions." @raise Failure if a registration is
    refused. *)

val arrange_agent_tree : t -> fanout:int -> unit
(** Organize the per-site Binding Agents into a §5.2.2 combining tree:
    a fresh root layer of agents is spawned (one root per [fanout]
    sites, on the first host of each covered group) and every site
    agent's parent link is set to its root, so class lookups from any
    site funnel through the roots instead of all reaching LegionClass.
    Idempotent only in effect (calling twice builds a second root
    layer). @raise Invalid_argument if [fanout <= 0]; @raise Failure if
    a root cannot be spawned or a SetParent is refused. *)

val client : t -> ?site:int -> unit -> Runtime.ctx
(** Spawn a client process (a minimal Legion object wired to the site's
    Binding Agent) and return its context for issuing invocations. *)

val split_jurisdiction : t -> site:int -> Loid.t
(** §2.2: "if a Jurisdiction's resources impose a substantial load on
    its Magistrate, the Jurisdiction can be split, and a new Magistrate
    can be created to take over responsibility for some of the
    resources and objects." Start a fresh Magistrate on the site (from
    outside Legion, like all Magistrates), give it the second half of
    the site's Host Objects (the originals keep serving both — §2.2
    allows non-disjoint Jurisdictions, and the two share the site's
    storage), move half of the managed objects to it via
    [TransferObjects], and return its LOID. @raise Failure when the
    transfer fails. *)

val checkpoint_all : t -> int
(** Operator shutdown/backup: ask every Magistrate to [SweepIdle 0.0],
    deactivating every idle object it manages — class objects included —
    into a fresh Object Persistent Representation on its Jurisdiction's
    disks. Returns how many objects were deactivated. Externally-started
    infrastructure (Magistrates, Host Objects, Binding Agents) keeps
    running; everything deactivated returns on its next reference. *)

val enable_recovery :
  t ->
  ?checkpoint_period:float ->
  ?heartbeat_period:float ->
  ?threshold:int ->
  until:float ->
  unit ->
  unit
(** Arm the crash-recovery machinery on every Magistrate: a periodic
    [SweepCheckpoint] loop (default period 1.0) that snapshots active
    objects' [SaveState] into fresh OPRs without deactivating them, and
    a heartbeat loop (default period 0.25, threshold 3) that probes the
    Jurisdiction's Host Objects and, once a host misses [threshold]
    consecutive beats, confirms it dead and notifies each stranded
    object's responsible class ([NotifyDead]) so it reactivates the
    object from its last checkpoint on a surviving host. Both loops
    stop at absolute simulation time [until] so [run] still terminates.
    Only the arming handshake is simulated here; the loops themselves
    fire during subsequent [run]/[run_for] calls.
    @raise Failure when a Magistrate rejects the arming call. *)

val run : t -> unit
(** Run the simulation until quiescence. *)

val run_for : t -> float -> unit
(** Run at most the given amount of virtual time. *)

val now : t -> float
