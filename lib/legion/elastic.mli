(** Autonomic elasticity (E19).

    The paper's load-management mechanisms — class cloning (§5.2.2),
    Scheduling Agents (§3.7–3.8), Jurisdiction splitting (§2.2) and
    Binding Agent combining trees (§5.2.2) — are all {e mechanisms};
    the policy deciding when to use them is left open. {!enable} is
    that policy: it arms self-managing loops that watch demand and
    invoke each mechanism when its signal trips, with no operator in
    the loop.

    {!run_scenario} is the deterministic flash-crowd experiment the
    E19 bench, the [legion-sim elastic] subcommand and the regression
    tests share: a two-site Legion whose entire object population
    starts in one Jurisdiction, hit by a Zipf-skewed diurnal workload
    and a flash crowd arriving from the other site. *)

module Loid := Legion_naming.Loid
module Runtime := Legion_rt.Runtime

type config = {
  class_admission : Runtime.admission;
      (** Budget stamped on each supervised class object, making its
          load factor a meaningful cloning signal. *)
  clone_period : float;  (** StartElastic sampling period. *)
  clone_hi : float;  (** Load factor past which a sample counts hot. *)
  clone_sustain : int;  (** Consecutive hot samples before cloning. *)
  clone_grow_rate : float;
      (** Creates per period per clone that keep the ring growing (and,
          with no clones yet, the per-period demand that bootstraps
          it). *)
  clone_lo_rate : float;  (** Demand per clone below which it cools. *)
  clone_merge_sustain : int;  (** Cool periods before a clone retires. *)
  max_clones : int;
  rebalance_period : float;  (** Rebalancer wakeup period. *)
  hot_calls : int;
      (** Fresh per-period calls that make an object migration-hot. *)
  split_objects : int;
      (** Jurisdiction size past which half is transferred to a spare. *)
  spares_per_site : int;
      (** Spare Magistrates provisioned per site (shared storage). *)
  retier_fanout : int;  (** Combining-tree fanout when re-tiering. *)
  retier_lookups : int;
      (** Per-period Binding Agent lookups that trigger re-tiering. *)
}

val default_config : config

type enabled = {
  rebalancer : Loid.t;  (** The rebalancing Scheduling Agent. *)
  retier_fired : unit -> bool;
      (** Whether the agent tree has been re-tiered yet. *)
}

val enable :
  System.t ->
  Runtime.ctx ->
  classes:Loid.t list ->
  until:float ->
  ?cfg:config ->
  unit ->
  enabled
(** Arm the elastic machinery until absolute virtual time [until]:
    budget each class in [classes] and start its §5.2.2 cloning loop;
    provision [spares_per_site] spare Magistrates per site; derive and
    start a ["legion.sched.rebalance"] Scheduling Agent supervising
    every Jurisdiction; and watch Binding Agent demand for re-tiering.
    Only the arming handshakes are simulated here — the loops fire
    during subsequent runs. @raise Api.Call_failed / Failure when an
    arming step is refused. *)

(** {1 The shared flash-crowd scenario} *)

type report = {
  elastic : bool;
  seed : int64;
  arrivals : int;  (** Open-loop arrivals generated. *)
  works : int;  (** Work calls issued (arrivals minus churn creates). *)
  oks : int;
  sheds : int;  (** Replies lost to admission shedding. *)
  errors : int;
  created : int;  (** Churn instantiations acknowledged. *)
  p50_ms : float;  (** Whole-run Work latency percentiles. *)
  p99_ms : float;
  flash_p50_ms : float;
      (** Latency over the {e settled} half of the flash window,
          flash-site callers only — the E19 gate metric. *)
  flash_p99_ms : float;
  max_host_share : float;
      (** Largest per-host share of served Work calls — flat means the
          load spread; near 1 means one host carried the crowd. *)
  clones : int;  (** Clone / Merge / Migrate / Split events observed. *)
  merges : int;
  moves : int;
  splits : int;
  retier : bool;  (** Whether the agent tree re-tiered. *)
}

val run_scenario : ?seed:int64 -> elastic:bool -> unit -> report
(** Run the flash-crowd scenario: two sites of three hosts, 16 objects
    all placed in the east Jurisdiction, a Zipf(1.2) diurnal workload
    at 40 arrivals/s with a 6x flash crowd from the west between t+20
    and t+40, every eighth arrival an instantiation request. With
    [elastic] false nothing adapts (the baseline); with it true,
    {!enable} runs first. Fully deterministic: the same [seed] yields
    a byte-identical {!scenario_json}. *)

val scenario_json : report -> string
(** One-line JSON rendering of a report (no trailing newline). *)

val work_unit : string
(** The scenario's application unit (a [Work(d)] service that holds an
    inflight slot for [d] virtual seconds); exposed for tests. *)

val register_units : unit -> unit
