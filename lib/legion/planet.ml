(* E18 planetary sweep: the §5 mechanism experiments at 10^5 objects /
   10^3+ hosts, plus a raw event-queue kernel. See planet.mli for the
   determinism contract. *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Cache = Legion_naming.Cache
module Prng = Legion_util.Prng
module Sampler = Legion_util.Sampler
module Counter = Legion_util.Counter
module Impl = Legion_core.Impl
module Well_known = Legion_core.Well_known
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Engine = Legion_sim.Engine
module Network = Legion_net.Network
module Recorder = Legion_obs.Recorder

type config = {
  seed : int64;
  sites : int;
  hosts_per_site : int;
  objects : int;
  calls : int;
  zipf_s : float;
  cache_capacity : int option;
  tree_fanout : int;
  tree_levels : int;
  tree_leaves : int;
  tree_classes : int;
  clones : int;
  clone_creates : int;
  queue_events : int;
}

let default =
  {
    seed = 18L;
    sites = 32;
    hosts_per_site = 32;
    objects = 100_000;
    calls = 100_000;
    zipf_s = 0.9;
    cache_capacity = Some 4096;
    tree_fanout = 4;
    tree_levels = 3;
    tree_leaves = 32;
    tree_classes = 32;
    clones = 8;
    clone_creates = 2_048;
    queue_events = 10_000_000;
  }

let smoke =
  {
    default with
    sites = 4;
    hosts_per_site = 4;
    objects = 1_000;
    calls = 2_000;
    tree_leaves = 8;
    tree_classes = 8;
    clones = 4;
    clone_creates = 128;
    queue_events = 200_000;
  }

type kernel = {
  k_name : string;
  k_events : int;
  k_clock : float;
  k_msgs : int;
  k_bytes : int;
  k_drops : int;
  k_metrics : (string * float) list;
  k_digest : int;
}

type report = { cfg : config; kernels : kernel list; total_events : int }

(* ------------------------------------------------------------------ *)
(* Fixture: the counter application unit (the same minimal stateful
   object every suite uses; duplicated here because bench/test helpers
   are not linkable from the library).                                 *)

let counter_unit = "planet.counter"

let counter_factory (_ctx : Runtime.ctx) : Impl.part =
  let n = ref 0 in
  let increment _ctx args _env k =
    match args with
    | [ Value.Int d ] ->
        n := !n + d;
        k (Ok (Value.Int !n))
    | _ -> Impl.bad_args k "Increment expects one int"
  in
  let get _ctx args _env k =
    match args with
    | [] -> k (Ok (Value.Int !n))
    | _ -> Impl.bad_args k "Get takes no arguments"
  in
  Impl.part
    ~methods:[ ("Increment", increment); ("Get", get) ]
    ~save:(fun () -> Value.Int !n)
    ~restore:(fun v ->
      match v with
      | Value.Int i ->
          n := i;
          Ok ()
      | _ -> Error "counter state must be an int")
    counter_unit

let counter_idl = "interface Counter { Increment(d: int): int; Get(): int; }"

let make_counter_class sys ctx ?(name = "PlanetCounter") () =
  Api.derive_class_exn sys ctx ~parent:Well_known.legion_object ~name
    ~units:[ counter_unit ] ~idl:counter_idl ()

let boot cfg ~seed_off =
  Impl.register counter_unit counter_factory;
  let sites =
    List.init cfg.sites (fun i -> (Printf.sprintf "s%d" i, cfg.hosts_per_site))
  in
  System.boot ~seed:(Int64.add cfg.seed seed_off) ~sites ()

(* Single-pass group sum over the counter registry — the exp_common
   snapshot/delta helpers are O(n^2) and unusable at 10^5 counters. *)
let group_total sys g = Counter.Registry.group_total (System.registry sys) g

let digest_mask = (1 lsl 50) - 1

(* Order-sensitive fold over the retained trace ring plus the lifetime
   event count: any reordering, insertion, or loss of a structured
   event changes this number. *)
let trace_digest sys =
  let obs = System.obs sys in
  let h =
    List.fold_left
      (fun acc e -> ((acc * 131) + Hashtbl.hash e) land digest_mask)
      (Recorder.total obs land digest_mask)
      (Recorder.events obs)
  in
  h

let finish sys ~name ~metrics =
  let net = System.net sys in
  {
    k_name = name;
    k_events = Engine.events_fired (System.sim sys);
    k_clock = System.now sys;
    k_msgs = Network.messages_sent net;
    k_bytes = Network.bytes_sent net;
    k_drops = Network.messages_dropped net;
    k_metrics = metrics;
    k_digest = trace_digest sys;
  }

(* ------------------------------------------------------------------ *)
(* Kernel 1: the raw calendar queue. No runtime, no network — just the
   engine chewing through [queue_events] self-rescheduling events with
   interleaved schedule/cancel churn.                                  *)

let run_queue cfg progress =
  let sim = Engine.create () in
  let prng = Prng.create ~seed:(Int64.add cfg.seed 3L) in
  let budget = ref cfg.queue_events in
  let cancelled = ref 0 in
  let chains = Stdlib.min 10_000 (Stdlib.max 1 (cfg.queue_events / 100)) in
  let rec tick () =
    if !budget > 0 then begin
      decr budget;
      if !budget land 63 = 0 then begin
        (* Exercise the cancellation path: a far-future event that is
           reaped lazily, never fired. *)
        let h = Engine.schedule sim ~delay:1e9 tick in
        Engine.cancel h;
        incr cancelled
      end;
      Engine.post sim ~delay:(Prng.float prng 1.0) tick
    end
  in
  for _ = 1 to chains do
    Engine.post sim ~delay:(Prng.float prng 1.0) tick
  done;
  Engine.run sim;
  progress
    (Printf.sprintf "queue: %d events fired, clock %.1f"
       (Engine.events_fired sim) (Engine.now sim));
  {
    k_name = "queue";
    k_events = Engine.events_fired sim;
    k_clock = Engine.now sim;
    k_msgs = 0;
    k_bytes = 0;
    k_drops = 0;
    k_metrics =
      [
        ("cancelled", float_of_int !cancelled);
        ("pending_end", float_of_int (Engine.pending sim));
      ];
    k_digest =
      Hashtbl.hash (Engine.events_fired sim, Engine.now sim) land digest_mask;
  }

(* ------------------------------------------------------------------ *)
(* Kernel 2: E2 at scale — [objects] counters spread round-robin over
   every site's Magistrate, then [calls] Zipf-skewed invocations from
   one bounded-cache client.                                           *)

let run_cache cfg progress =
  let sys = boot cfg ~seed_off:1L in
  let ctx = System.client sys () in
  let cls = make_counter_class sys ctx () in
  let mags =
    Array.of_list (List.map (fun s -> s.System.magistrate) (System.sites sys))
  in
  let nmags = Array.length mags in
  let objects =
    Array.init cfg.objects (fun i ->
        if i > 0 && i mod 20_000 = 0 then
          progress (Printf.sprintf "cache: created %d/%d objects" i cfg.objects);
        Api.create_object_exn sys ctx ~cls ~magistrate:mags.(i mod nmags) ())
  in
  let site0 = System.site sys 0 in
  let loid = System.fresh_instance_loid sys ~of_class:Well_known.legion_object in
  let client =
    Runtime.spawn (System.rt sys)
      ~host:(List.nth site0.System.net_hosts 1)
      ~loid ~kind:"bench_client" ?cache_capacity:cfg.cache_capacity
      ~binding_agent:site0.System.agent_address
      ~handler:(fun _ _ k -> k (Error (Err.Refused "client")))
      ()
  in
  let cctx = { Runtime.rt = System.rt sys; self = client } in
  let prng = Prng.create ~seed:(Int64.add cfg.seed 101L) in
  let z = Sampler.zipf prng ~n:cfg.objects ~s:cfg.zipf_s in
  let agent0 = group_total sys Well_known.kind_binding_agent in
  let ok = ref 0 in
  for i = 1 to cfg.calls do
    let target = objects.(Sampler.zipf_draw z) in
    (match Api.call sys cctx ~dst:target ~meth:"Increment" ~args:[ Value.Int 1 ] with
    | Ok _ -> incr ok
    | Error _ -> ());
    if i mod 20_000 = 0 then
      progress (Printf.sprintf "cache: %d/%d calls" i cfg.calls)
  done;
  let agent_rq = group_total sys Well_known.kind_binding_agent - agent0 in
  finish sys ~name:"cache"
    ~metrics:
      [
        ("calls_ok", float_of_int !ok);
        ( "agent_rq_per_call",
          float_of_int agent_rq /. float_of_int (Stdlib.max 1 cfg.calls) );
        ("client_hit_rate", Cache.hit_rate (Runtime.cache_of client));
      ]

(* ------------------------------------------------------------------ *)
(* Kernel 3: E3 at depth — a fanout^levels Binding Agent combining
   tree; every leaf cold-resolves every class, and we count what still
   reaches LegionClass.                                                *)

let run_tree cfg progress =
  let sys = boot cfg ~seed_off:2L in
  let ctx = System.client sys () in
  let classes =
    List.init cfg.tree_classes (fun i ->
        make_counter_class sys ctx ~name:(Printf.sprintf "C%d" i) ())
  in
  let tree =
    Agent_tree.build sys
      ~hosts:(System.site sys 0).System.net_hosts
      ~fanout:(Stdlib.max 1 cfg.tree_fanout)
      ~levels:cfg.tree_levels ~n_leaves:cfg.tree_leaves
  in
  let leaves = tree.Agent_tree.leaves in
  let wildcard = Loid.make ~class_id:0L ~class_specific:0L () in
  let lc_prefix = Loid.to_string Well_known.legion_class ^ "@" in
  let lc_total () =
    List.fold_left
      (fun acc c ->
        let n = Counter.name c in
        if
          Counter.group c = Well_known.kind_class
          && String.length n >= String.length lc_prefix
          && String.sub n 0 (String.length lc_prefix) = lc_prefix
        then acc + Counter.value c
        else acc)
      0
      (Counter.Registry.all (System.registry sys))
  in
  let lc0 = lc_total () in
  let env = Legion_sec.Env.of_self (Runtime.proc_loid ctx.Runtime.self) in
  List.iter
    (fun leaf ->
      List.iter
        (fun cls ->
          let r =
            Api.sync sys (fun k ->
                Runtime.invoke_address ctx
                  ~address:(Runtime.address_of leaf)
                  ~dst:wildcard ~meth:"GetBinding" ~args:[ Loid.to_value cls ]
                  ~env k)
          in
          match r with
          | Ok _ -> ()
          | Error e -> failwith ("tree resolve failed: " ^ Err.to_string e))
        classes)
    leaves;
  let lookups = cfg.tree_leaves * cfg.tree_classes in
  progress
    (Printf.sprintf "tree: %d lookups through depth-%d fan-out-%d tree" lookups
       cfg.tree_levels cfg.tree_fanout);
  finish sys ~name:"tree"
    ~metrics:
      [
        ("lookups", float_of_int lookups);
        ( "legion_class_rq_per_lookup",
          float_of_int (lc_total () - lc0)
          /. float_of_int (Stdlib.max 1 lookups) );
      ]

(* ------------------------------------------------------------------ *)
(* Kernel 4: E4 at scale — [clone_creates] Create requests round-robin
   over [clones] clones of one hot class; metric is the most-loaded
   family member's share.                                              *)

let run_clone cfg progress =
  let sys = boot cfg ~seed_off:4L in
  let ctx = System.client sys () in
  let base = make_counter_class sys ctx () in
  let clones =
    base
    :: List.init
         (Stdlib.max 0 (cfg.clones - 1))
         (fun _ ->
           match Api.call sys ctx ~dst:base ~meth:"Clone" ~args:[] with
           | Ok v -> (
               match Legion_core.Convert.loid_field v "loid" with
               | Ok l -> l
               | Error e -> failwith e)
           | Error e -> failwith (Err.to_string e))
  in
  let clone_arr = Array.of_list clones in
  let prefixes = List.map (fun c -> Loid.to_string c ^ "@") clones in
  let is_clone n =
    List.exists
      (fun p ->
        String.length n >= String.length p
        && String.sub n 0 (String.length p) = p)
      prefixes
  in
  let before = Hashtbl.create 64 in
  List.iter
    (fun c ->
      if Counter.group c = Well_known.kind_class && is_clone (Counter.name c)
      then Hashtbl.replace before (Counter.name c) (Counter.value c))
    (Counter.Registry.all (System.registry sys));
  for i = 0 to cfg.clone_creates - 1 do
    let cls = clone_arr.(i mod Array.length clone_arr) in
    match Api.create_object sys ctx ~cls () with
    | Ok _ -> ()
    | Error e -> failwith ("create: " ^ Err.to_string e)
  done;
  let max_rq, total_rq =
    List.fold_left
      (fun (mx, tot) c ->
        if Counter.group c = Well_known.kind_class && is_clone (Counter.name c)
        then
          let v0 =
            Option.value ~default:0 (Hashtbl.find_opt before (Counter.name c))
          in
          let d = Counter.value c - v0 in
          (Stdlib.max mx d, tot + d)
        else (mx, tot))
      (0, 0)
      (Counter.Registry.all (System.registry sys))
  in
  progress
    (Printf.sprintf "clone: %d creates over %d clones" cfg.clone_creates
       cfg.clones);
  finish sys ~name:"clone"
    ~metrics:
      [
        ("family_rq", float_of_int total_rq);
        ("max_rq_per_object", float_of_int max_rq);
        ( "max_share",
          float_of_int max_rq /. float_of_int (Stdlib.max 1 total_rq) );
      ]

(* ------------------------------------------------------------------ *)

let run ?(progress = fun _ -> ()) cfg =
  (* Explicit sequencing: list elements evaluate right-to-left. *)
  let queue = run_queue cfg progress in
  let cache = run_cache cfg progress in
  let tree = run_tree cfg progress in
  let clone = run_clone cfg progress in
  let kernels = [ queue; cache; tree; clone ] in
  {
    cfg;
    kernels;
    total_events = List.fold_left (fun acc k -> acc + k.k_events) 0 kernels;
  }

let to_json r =
  let b = Buffer.create 1024 in
  let cfg = r.cfg in
  Buffer.add_string b
    (Printf.sprintf
       "{\"experiment\": \"E18\", \"seed\": %Ld, \"sites\": %d, \
        \"hosts_per_site\": %d, \"objects\": %d, \"calls\": %d, \"zipf_s\": \
        %.3f, \"cache_capacity\": %s, \"tree_fanout\": %d, \"tree_levels\": \
        %d, \"tree_leaves\": %d, \"tree_classes\": %d, \"clones\": %d, \
        \"clone_creates\": %d, \"queue_events\": %d, \"kernels\": ["
       cfg.seed cfg.sites cfg.hosts_per_site cfg.objects cfg.calls cfg.zipf_s
       (match cfg.cache_capacity with
       | None -> "null"
       | Some c -> string_of_int c)
       cfg.tree_fanout cfg.tree_levels cfg.tree_leaves cfg.tree_classes
       cfg.clones cfg.clone_creates cfg.queue_events);
  List.iteri
    (fun i k ->
      if i > 0 then Buffer.add_string b ", ";
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\": \"%s\", \"events\": %d, \"clock\": %.9f, \"msgs\": %d, \
            \"bytes\": %d, \"drops\": %d, \"digest\": %d"
           k.k_name k.k_events k.k_clock k.k_msgs k.k_bytes k.k_drops
           k.k_digest);
      List.iter
        (fun (name, v) ->
          Buffer.add_string b (Printf.sprintf ", \"%s\": %.6f" name v))
        k.k_metrics;
      Buffer.add_string b "}")
    r.kernels;
  Buffer.add_string b
    (Printf.sprintf "], \"total_events\": %d}" r.total_events);
  Buffer.contents b
