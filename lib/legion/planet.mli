(** E18 — the planetary sweep.

    Re-runs the §5 mechanism experiments (E2 binding-cache traffic, E3
    k-ary Binding Agent trees, E4 class cloning) at planetary scale —
    10⁵–10⁶ objects over 10³+ hosts — plus a raw calendar-queue kernel
    that pushes the simulator core itself past 10⁷ events. The sweep is
    shared by [bench/exp_planet] (which adds wall-clock and RSS gates),
    the [legion-sim scale] subcommand, and the determinism regression
    test.

    Everything in a {!report} is a deterministic function of the
    {!config}: wall-clock never enters, so the same seed must produce a
    byte-identical {!to_json} — that is the refactor-safety contract
    for the simulator hot path. *)

type config = {
  seed : int64;
  sites : int;
  hosts_per_site : int;
  objects : int;  (** cache-kernel population *)
  calls : int;  (** cache-kernel invocations *)
  zipf_s : float;  (** popularity skew of the call targets *)
  cache_capacity : int option;  (** measurement client's comm cache *)
  tree_fanout : int;
  tree_levels : int;  (** agent-tree depth (3–4 at full scale) *)
  tree_leaves : int;
  tree_classes : int;
  clones : int;
  clone_creates : int;
  queue_events : int;  (** raw engine kernel event budget *)
}

val default : config
(** The full planetary configuration: 32 sites x 32 hosts, 10⁵
    objects, 10⁷ raw queue events. *)

val smoke : config
(** A CI-sized configuration (seconds, not minutes). *)

type kernel = {
  k_name : string;
  k_events : int;  (** engine events fired *)
  k_clock : float;  (** final virtual time *)
  k_msgs : int;
  k_bytes : int;
  k_drops : int;
  k_metrics : (string * float) list;  (** kernel-specific, deterministic *)
  k_digest : int;  (** order-sensitive digest of the retained trace *)
}

type report = { cfg : config; kernels : kernel list; total_events : int }

val run : ?progress:(string -> unit) -> config -> report
(** Run all four kernels (queue, cache, tree, clone), each in its own
    freshly booted system. [progress] receives occasional human-facing
    status lines (never part of the report). *)

val to_json : report -> string
(** Deterministic JSON rendering: same seed, same bytes. *)
