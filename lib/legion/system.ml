module Prng = Legion_util.Prng
module Counter = Legion_util.Counter
module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Address = Legion_naming.Address
module Binding = Legion_naming.Binding
module Interface = Legion_idl.Interface
module Parser = Legion_idl.Parser
module Engine = Legion_sim.Engine
module Network = Legion_net.Network
module Env = Legion_sec.Env
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Impl = Legion_core.Impl
module Opr = Legion_core.Opr
module Well_known = Legion_core.Well_known
module Class_part = Legion_core.Class_part
module Object_part = Legion_core.Object_part
module Metaclass_part = Legion_core.Metaclass_part
module Agent_part = Legion_binding.Agent_part
module Host_part = Legion_host.Host_part
module Magistrate_part = Legion_jur.Magistrate_part
module Sched_part = Legion_sched.Sched_part
module Context_part = Legion_ctx.Context_part
module Persistent = Legion_store.Persistent
module Disk = Legion_store.Disk

type site = {
  site_id : Network.site_id;
  site_name : string;
  net_hosts : Network.host_id list;
  host_objects : Loid.t list;
  magistrate : Loid.t;
  agent : Loid.t;
  agent_address : Address.t;
  storage : Persistent.t;
}

type t = {
  sim : Engine.t;
  net : Network.t;
  rt : Runtime.t;
  registry : Counter.Registry.r;
  prng : Prng.t;
  obs : Legion_obs.Recorder.t;
  sites : site list;
  legion_class_binding : Binding.t;
  mutable next_ext : int64;
}

let sim t = t.sim
let net t = t.net
let rt t = t.rt
let registry t = t.registry
let prng t = t.prng
let obs t = t.obs
let sites t = t.sites
let site t i = List.nth t.sites i
let legion_class_binding t = t.legion_class_binding
let magistrates t = List.map (fun s -> s.magistrate) t.sites
let host_objects t = List.concat_map (fun s -> s.host_objects) t.sites

(* Bootstrap-assigned instance LOIDs live far above class-allocated
   sequence numbers (which start at 1) so the two can never collide. *)
let ext_base = 0x1_0000_0000L

let fresh_instance_loid t ~of_class =
  let spec = Int64.add ext_base t.next_ext in
  t.next_ext <- Int64.add t.next_ext 1L;
  Loid.make ~class_id:(Loid.class_id of_class) ~class_specific:spec ()

let register_all_units () =
  Object_part.register ();
  Legion_core.Typecheck_part.register ();
  Legion_core.Class_part.register ();
  Metaclass_part.register ();
  Agent_part.register ();
  Host_part.register ();
  Magistrate_part.register ();
  Sched_part.register ();
  Context_part.register ();
  Legion_txn.Participant.register ();
  Legion_txn.Coordinator.register ()

(* IDL for the core interfaces — stored in the core class objects and
   served by GetInterface, exercising the same parser user classes use. *)
let object_idl =
  "interface LegionObject {\n\
  \  MayI(meth: str): bool;\n\
  \  Iam(): loid;\n\
  \  Ping();\n\
  \  SaveState(): any;\n\
  \  RestoreState(state: any);\n\
  \  GetMethodNames(): list<str>;\n\
  \  GetInfo(): str;\n\
  \  SetPolicy(policy: any);\n\
  \  GetPolicy(): any;\n\
   }"

let class_idl =
  "interface LegionClass {\n\
  \  Create(init: any, hints: any): any;\n\
  \  Derive(spec: any): any;\n\
  \  Clone(): any;\n\
  \  InheritFrom(base: loid);\n\
  \  GetInheritInfo(): any;\n\
  \  GetInterface(): any;\n\
  \  GetBinding(target: any): binding;\n\
  \  Delete(obj: loid);\n\
  \  RegisterInstance(obj: loid, addr: any);\n\
  \  NotifyAddress(obj: loid, addr: any);\n\
  \  NotifyMagistrates(obj: loid, add: list<loid>, remove: list<loid>);\n\
  \  NotifyDead(obj: loid);\n\
  \  SetDefaults(defaults: any);\n\
  \  StartElastic(cfg: any);\n\
  \  ListInstances(): list<loid>;\n\
  \  ListSubclasses(): list<loid>;\n\
  \  GetClassInfo(): any;\n\
   }"

let host_idl =
  "interface LegionHost {\n\
  \  Activate(obj: loid, opr: blob): any;\n\
  \  Deactivate(obj: loid): blob;\n\
  \  Kill(obj: loid);\n\
  \  SetCPUload(n: int);\n\
  \  SetMemoryUsage(n: int);\n\
  \  GetState(): any;\n\
  \  ListProcesses(): list<loid>;\n\
  \  Reap(): int;\n\
   }"

let magistrate_idl =
  "interface LegionMagistrate {\n\
  \  Activate(obj: loid, hints: any): binding;\n\
  \  Deactivate(obj: loid);\n\
  \  Delete(obj: loid);\n\
  \  Copy(obj: loid, to: loid);\n\
  \  Move(obj: loid, to: loid);\n\
  \  StoreObject(obj: loid, opr: blob);\n\
  \  AddHost(host: loid);\n\
  \  RemoveHost(host: loid);\n\
  \  SetActivationPolicy(policy: any);\n\
  \  SweepCheckpoint(): int;\n\
  \  StartCheckpointing(period: float, until: float);\n\
  \  StartHeartbeat(period: float, threshold: int, until: float);\n\
  \  ListObjects(): list<loid>;\n\
  \  GetJurisdictionInfo(): any;\n\
   }"

let agent_idl =
  "interface LegionBindingAgent {\n\
  \  GetBinding(target: any): binding;\n\
  \  InvalidateBinding(target: any);\n\
  \  AddBinding(b: binding);\n\
  \  SetParent(parent: any);\n\
  \  GetStats(): any;\n\
   }"

let parse_idl src =
  match Parser.interface src with
  | Ok i -> i
  | Error e -> failwith (Format.asprintf "bootstrap idl: %a" Parser.pp_error e)

let abstract_flags =
  { Class_part.abstract = true; private_ = false; fixed = false }

let boot ?(seed = 42L) ?latency ?rt_config ?agent_cache_capacity
    ?object_cache_capacity ?trace_capacity ~sites:site_spec () =
  if site_spec = [] then invalid_arg "System.boot: no sites";
  register_all_units ();
  let sim = Engine.create () in
  let prng = Prng.create ~seed in
  let registry = Counter.Registry.create () in
  (* One recorder shared by the network and the runtime: the trace is a
     single stream ordered by virtual time. *)
  let obs =
    Legion_obs.Recorder.create ?capacity:trace_capacity
      ~clock:(fun () -> Engine.now sim)
      ()
  in
  let net = Network.create ~sim ~prng:(Prng.split prng) ?latency ~obs () in
  let rt =
    Runtime.create ~sim ~net ~registry ~prng:(Prng.split prng) ?config:rt_config
      ~obs ()
  in
  (* Topology. *)
  let site_hosts =
    List.map
      (fun (name, n_hosts) ->
        if n_hosts <= 0 then invalid_arg "System.boot: site needs >= 1 host";
        let sid = Network.add_site net ~name in
        let hosts =
          List.init n_hosts (fun i ->
              Network.add_host net ~site:sid ~name:(Printf.sprintf "%s-h%d" name i))
        in
        (name, sid, hosts))
      site_spec
  in
  let host0 =
    match site_hosts with (_, _, h :: _) :: _ -> h | _ -> assert false
  in

  (* --- Core class objects, spawned directly ("from the shell"). --- *)
  let spawn_core_class ~loid ~iface ~instance_units ~instance_kind
      ?instance_cache_capacity ~flags ~host ~ba () =
    let state =
      Class_part.init_state ~interface:iface ~instance_units ~instance_kind
        ?instance_cache_capacity ~flags ~class_id:(Loid.class_id loid) ()
    in
    let units =
      if Loid.equal loid Well_known.legion_class then
        [ Well_known.unit_metaclass; Well_known.unit_class; Well_known.unit_object ]
      else [ Well_known.unit_class; Well_known.unit_object ]
    in
    let opr =
      Opr.make
        ~states:[ (Well_known.unit_class, state) ]
        ?binding_agent:ba ~kind:Well_known.kind_class ~units ()
    in
    match Impl.activate rt ~host ~loid opr with
    | Ok proc -> proc
    | Error msg ->
        failwith (Printf.sprintf "bootstrap: cannot start %s: %s"
                    (Loid.to_string loid) msg)
  in

  (* LegionClass first: everything else's resolution terminates at it. *)
  let legion_class_proc =
    spawn_core_class ~loid:Well_known.legion_class ~iface:(parse_idl class_idl)
      ~instance_units:[ Well_known.unit_class; Well_known.unit_object ]
      ~instance_kind:Well_known.kind_class ~flags:abstract_flags ~host:host0
      ~ba:None ()
  in
  let legion_class_binding = Runtime.binding_of rt legion_class_proc in
  (* Bindings minted during bootstrap must not expire. *)
  let legion_class_binding = Binding.with_expiry legion_class_binding None in

  (* --- Per-site Binding Agents (flat by default). --- *)
  let next_ext = ref 0L in
  let fresh of_class =
    let spec = Int64.add ext_base !next_ext in
    next_ext := Int64.add !next_ext 1L;
    Loid.make ~class_id:(Loid.class_id of_class) ~class_specific:spec ()
  in
  let agents =
    List.map
      (fun (_name, _sid, hosts) ->
        let loid = fresh Well_known.legion_binding_agent in
        let state =
          Agent_part.state_value ?capacity:agent_cache_capacity
            ~legion_class:legion_class_binding ()
        in
        let opr =
          Opr.make
            ~states:[ (Agent_part.unit_name, state) ]
            ~kind:Well_known.kind_binding_agent
            ~units:[ Agent_part.unit_name; Well_known.unit_object ]
            ()
        in
        match Impl.activate rt ~host:(List.hd hosts) ~loid opr with
        | Ok proc -> (loid, proc, Runtime.address_of proc)
        | Error msg -> failwith ("bootstrap: binding agent: " ^ msg))
      site_hosts
  in
  let agent_address_of_site i =
    let _, _, addr = List.nth agents i in
    addr
  in

  (* Give the core class objects a Binding Agent (site 0's). *)
  Runtime.set_binding_agent legion_class_proc (Some (agent_address_of_site 0));

  let core_rest =
    [
      (Well_known.legion_object, object_idl, [ Well_known.unit_object ],
       Well_known.kind_app);
      (Well_known.legion_host, host_idl,
       [ Host_part.unit_name; Well_known.unit_object ], Well_known.kind_host);
      (Well_known.legion_magistrate, magistrate_idl,
       [ Magistrate_part.unit_name; Well_known.unit_object ],
       Well_known.kind_magistrate);
      (Well_known.legion_binding_agent, agent_idl,
       [ Agent_part.unit_name; Well_known.unit_object ],
       Well_known.kind_binding_agent);
    ]
  in
  let core_procs =
    (Well_known.legion_class, legion_class_proc)
    :: List.map
         (fun (loid, idl, instance_units, instance_kind) ->
           let proc =
             spawn_core_class ~loid ~iface:(parse_idl idl) ~instance_units
               ~instance_kind ?instance_cache_capacity:object_cache_capacity
               ~flags:abstract_flags ~host:host0
               ~ba:(Some (agent_address_of_site 0)) ()
           in
           (loid, proc))
         core_rest
  in

  (* --- Host Objects: one per simulated host. --- *)
  let sites_hosts_objs =
    List.mapi
      (fun i (name, sid, hosts) ->
        let agent_addr = agent_address_of_site i in
        let host_objs =
          List.map
            (fun h ->
              let loid = fresh Well_known.legion_host in
              let opr =
                Opr.make
                  ~states:[ (Host_part.unit_name, Host_part.state_value ()) ]
                  ~binding_agent:agent_addr ~kind:Well_known.kind_host
                  ~units:[ Host_part.unit_name; Well_known.unit_object ]
                  ()
              in
              match Impl.activate rt ~host:h ~loid opr with
              | Ok proc -> (loid, proc)
              | Error msg -> failwith ("bootstrap: host object: " ^ msg))
            hosts
        in
        (name, sid, hosts, host_objs))
      site_hosts
  in

  (* --- Per-site Jurisdictions: storage + Magistrate. --- *)
  let sites =
    List.mapi
      (fun i (name, sid, hosts, host_objs) ->
        let storage =
          Persistent.create
            ~disks:
              [
                Disk.create ~name:(name ^ "-disk0");
                Disk.create ~name:(name ^ "-disk1");
              ]
            ()
        in
        Magistrate_part.register_storage name storage;
        let mag_loid = fresh Well_known.legion_magistrate in
        let agent_addr = agent_address_of_site i in
        let state =
          Magistrate_part.state_value ~hosts:(List.map fst host_objs)
            ~jurisdiction:name ()
        in
        let opr =
          Opr.make
            ~states:[ (Magistrate_part.unit_name, state) ]
            ~binding_agent:agent_addr ~kind:Well_known.kind_magistrate
            ~units:[ Magistrate_part.unit_name; Well_known.unit_object ]
            ()
        in
        (match Impl.activate rt ~host:(List.hd hosts) ~loid:mag_loid opr with
        | Ok _ -> ()
        | Error msg -> failwith ("bootstrap: magistrate: " ^ msg));
        let agent_loid, _, agent_address = List.nth agents i in
        {
          site_id = sid;
          site_name = name;
          net_hosts = hosts;
          host_objects = List.map fst host_objs;
          magistrate = mag_loid;
          agent = agent_loid;
          agent_address;
          storage;
        })
      sites_hosts_objs
  in

  let t =
    {
      sim;
      net;
      rt;
      registry;
      prng;
      obs;
      sites;
      legion_class_binding;
      next_ext = !next_ext;
    }
  in

  (* --- Registration: the externally-started objects "contact their
     class" (§4.2.1), and classes learn where to place objects. --- *)
  let boot_client_loid =
    Loid.make ~class_id:(Loid.class_id Well_known.legion_object)
      ~class_specific:0xB007L ()
  in
  let boot_proc =
    Runtime.spawn rt ~host:host0 ~loid:boot_client_loid
      ~kind:Well_known.kind_client
      ~binding_agent:(agent_address_of_site 0)
      ~handler:(fun _ _ k -> k (Error (Err.Refused "bootstrap client")))
      ()
  in
  let ctx = { Runtime.rt; self = boot_proc } in
  let failures = ref [] in
  let expect label kont =
    kont (fun r ->
        match r with
        | Ok _ -> ()
        | Error e ->
            failures := Printf.sprintf "%s: %s" label (Err.to_string e) :: !failures)
  in
  let env = Env.of_self boot_client_loid in
  let call dst meth args k =
    Runtime.invoke ctx ~dst ~meth ~args ~env k
  in
  (* Core classes register with LegionClass (they are its subclasses in
     the kind-of graph). *)
  List.iter
    (fun (loid, proc) ->
      expect
        (Printf.sprintf "register core class %s" (Loid.to_string loid))
        (call Well_known.legion_class "RegisterInstance"
           [ Loid.to_value loid; Address.to_value (Runtime.address_of proc) ]))
    core_procs;
  (* Host objects, magistrates and agents register with their classes. *)
  List.iter2
    (fun s (_, _, _, host_objs) ->
      List.iter
        (fun (loid, proc) ->
          expect "register host object"
            (call Well_known.legion_host "RegisterInstance"
               [ Loid.to_value loid; Address.to_value (Runtime.address_of proc) ]))
        host_objs;
      expect "register magistrate"
        (fun k ->
          match Runtime.find_proc rt s.magistrate with
          | None -> k (Error (Err.Internal "magistrate proc missing"))
          | Some proc ->
              call Well_known.legion_magistrate "RegisterInstance"
                [
                  Loid.to_value s.magistrate;
                  Address.to_value (Runtime.address_of proc);
                ]
                k);
      expect "register binding agent"
        (call Well_known.legion_binding_agent "RegisterInstance"
           [ Loid.to_value s.agent; Address.to_value s.agent_address ]))
    sites sites_hosts_objs;
  (* Default placement for new classes and instances: all magistrates. *)
  let defaults =
    Value.Record
      [ ("magistrates", Value.List (List.map Loid.to_value (magistrates t))) ]
  in
  List.iter
    (fun (loid, _) -> expect "set defaults" (call loid "SetDefaults" [ defaults ]))
    core_procs;
  Engine.run sim;
  (match !failures with
  | [] -> ()
  | fs -> failwith ("bootstrap registration failed: " ^ String.concat "; " fs));
  Runtime.kill rt boot_proc;
  t

let grow_site t ~site:site_idx ?host_class ~n () =
  let s = List.nth t.sites site_idx in
  let host_class = Option.value ~default:Well_known.legion_host host_class in
  (* New simulated hosts join the site... *)
  let new_hosts =
    List.init n (fun i ->
        Network.add_host t.net ~site:s.site_id
          ~name:(Printf.sprintf "%s-grown%Ld-%d" s.site_name t.next_ext i))
  in
  (* ...each starts a Host Object "from the shell"... *)
  let host_objs =
    List.map
      (fun h ->
        let loid = fresh_instance_loid t ~of_class:host_class in
        let opr =
          Opr.make
            ~states:[ (Host_part.unit_name, Host_part.state_value ()) ]
            ~binding_agent:s.agent_address ~kind:Well_known.kind_host
            ~units:[ Host_part.unit_name; Well_known.unit_object ]
            ()
        in
        match Impl.activate t.rt ~host:h ~loid opr with
        | Ok proc -> (loid, proc)
        | Error msg -> failwith ("grow_site: host object: " ^ msg))
      new_hosts
  in
  (* ...and contacts its class and the Jurisdiction's Magistrate. *)
  let driver = fresh_instance_loid t ~of_class:Well_known.legion_object in
  let proc =
    Runtime.spawn t.rt
      ~host:(List.hd s.net_hosts)
      ~loid:driver ~kind:Well_known.kind_client ~binding_agent:s.agent_address
      ~handler:(fun _ _ k -> k (Error (Err.Refused "grow driver")))
      ()
  in
  let ctx = { Runtime.rt = t.rt; self = proc } in
  let failures = ref [] in
  List.iter
    (fun (loid, hproc) ->
      Runtime.invoke ctx ~dst:host_class ~meth:"RegisterInstance"
        ~args:[ Loid.to_value loid; Address.to_value (Runtime.address_of hproc) ]
        (fun r ->
          match r with
          | Ok _ ->
              Runtime.invoke ctx ~dst:s.magistrate ~meth:"AddHost"
                ~args:[ Loid.to_value loid ] (fun r ->
                  match r with
                  | Ok _ -> ()
                  | Error e -> failures := Err.to_string e :: !failures)
          | Error e -> failures := Err.to_string e :: !failures))
    host_objs;
  Engine.run t.sim;
  Runtime.kill t.rt proc;
  (match !failures with
  | [] -> ()
  | fs -> failwith ("grow_site: " ^ String.concat "; " fs));
  List.map fst host_objs

let arrange_agent_tree t ~fanout =
  if fanout <= 0 then invalid_arg "System.arrange_agent_tree: fanout";
  let sites_arr = Array.of_list t.sites in
  let n_sites = Array.length sites_arr in
  let n_roots = (n_sites + fanout - 1) / fanout in
  (* Spawn the root agents directly, like bootstrap does. *)
  let roots =
    List.init n_roots (fun i ->
        let covered = sites_arr.(i * fanout) in
        let loid = fresh_instance_loid t ~of_class:Well_known.legion_binding_agent in
        let state =
          Legion_binding.Agent_part.state_value
            ~legion_class:t.legion_class_binding ()
        in
        let opr =
          Opr.make
            ~states:[ (Legion_binding.Agent_part.unit_name, state) ]
            ~kind:Well_known.kind_binding_agent
            ~units:[ Legion_binding.Agent_part.unit_name; Well_known.unit_object ]
            ()
        in
        match
          Impl.activate t.rt ~host:(List.hd covered.net_hosts) ~loid opr
        with
        | Ok proc -> proc
        | Error msg -> failwith ("arrange_agent_tree: " ^ msg))
  in
  (* Point every site agent at its root via SetParent. *)
  let driver_loid = fresh_instance_loid t ~of_class:Well_known.legion_object in
  let driver =
    Runtime.spawn t.rt
      ~host:(List.hd (List.hd t.sites).net_hosts)
      ~loid:driver_loid ~kind:Well_known.kind_client
      ~handler:(fun _ _ k -> k (Error (Err.Refused "tree driver")))
      ()
  in
  let ctx = { Runtime.rt = t.rt; self = driver } in
  let failures = ref [] in
  List.iteri
    (fun i s ->
      let root = List.nth roots (i / fanout) in
      Runtime.invoke_address ctx ~address:s.agent_address
        ~dst:(Loid.make ~class_id:0L ~class_specific:0L ())
        ~meth:"SetParent"
        ~args:[ Value.List [ Address.to_value (Runtime.address_of root) ] ]
        ~env:(Env.of_self driver_loid)
        (fun r ->
          match r with
          | Ok _ -> ()
          | Error e -> failures := Err.to_string e :: !failures))
    t.sites;
  Engine.run t.sim;
  Runtime.kill t.rt driver;
  match !failures with
  | [] -> ()
  | fs -> failwith ("arrange_agent_tree: " ^ String.concat "; " fs)

let client t ?(site = 0) () =
  let s = List.nth t.sites site in
  let loid = fresh_instance_loid t ~of_class:Legion_core.Well_known.legion_object in
  let proc =
    Runtime.spawn t.rt
      ~host:(List.hd s.net_hosts)
      ~loid ~kind:Legion_core.Well_known.kind_client
      ~binding_agent:s.agent_address
      ~handler:(fun _ _ k -> k (Error (Err.Refused "client object")))
      ()
  in
  { Runtime.rt = t.rt; self = proc }

let split_jurisdiction t ~site:site_idx =
  let s = List.nth t.sites site_idx in
  (* The new Jurisdiction shares the site's storage (§2.2 non-disjoint
     storage): OPAs stay valid, so transfers move responsibility, not
     bytes. *)
  let new_name = Printf.sprintf "%s.split%Ld" s.site_name t.next_ext in
  Magistrate_part.register_storage new_name s.storage;
  let n_hosts = List.length s.host_objects in
  let their_hosts =
    List.filteri (fun i _ -> i >= n_hosts / 2) s.host_objects
  in
  let mag_loid = fresh_instance_loid t ~of_class:Well_known.legion_magistrate in
  let state =
    Magistrate_part.state_value ~hosts:their_hosts ~jurisdiction:new_name ()
  in
  let opr =
    Opr.make
      ~states:[ (Magistrate_part.unit_name, state) ]
      ~binding_agent:s.agent_address ~kind:Well_known.kind_magistrate
      ~units:[ Magistrate_part.unit_name; Well_known.unit_object ]
      ()
  in
  (match
     Impl.activate t.rt ~host:(List.nth s.net_hosts (List.length s.net_hosts - 1))
       ~loid:mag_loid opr
   with
  | Ok _ -> ()
  | Error msg -> failwith ("split_jurisdiction: " ^ msg));
  (* Register the new magistrate and transfer half the objects. *)
  let driver_loid = fresh_instance_loid t ~of_class:Well_known.legion_object in
  let driver =
    Runtime.spawn t.rt
      ~host:(List.hd s.net_hosts)
      ~loid:driver_loid ~kind:Well_known.kind_client
      ~binding_agent:s.agent_address
      ~handler:(fun _ _ k -> k (Error (Err.Refused "split driver")))
      ()
  in
  let ctx = { Runtime.rt = t.rt; self = driver } in
  let failure = ref None in
  let transferred = ref (-1) in
  (match Runtime.find_proc t.rt mag_loid with
  | None -> failwith "split_jurisdiction: magistrate did not start"
  | Some proc ->
      Runtime.invoke ctx ~dst:Well_known.legion_magistrate
        ~meth:"RegisterInstance"
        ~args:[ Loid.to_value mag_loid; Address.to_value (Runtime.address_of proc) ]
        (fun r ->
          match r with
          | Error e -> failure := Some (Err.to_string e)
          | Ok _ ->
              (* Count, then transfer half. *)
              Runtime.invoke ctx ~dst:s.magistrate ~meth:"ListObjects" ~args:[]
                (fun r ->
                  match r with
                  | Error e -> failure := Some (Err.to_string e)
                  | Ok (Value.List objs) ->
                      let half = (List.length objs + 1) / 2 in
                      Runtime.invoke ctx ~dst:s.magistrate ~meth:"TransferObjects"
                        ~args:[ Loid.to_value mag_loid; Value.Int half ]
                        (fun r ->
                          match r with
                          | Ok (Value.Int n) -> transferred := n
                          | Ok _ -> failure := Some "bad TransferObjects reply"
                          | Error e -> failure := Some (Err.to_string e))
                  | Ok _ -> failure := Some "bad ListObjects reply")));
  Engine.run t.sim;
  Runtime.kill t.rt driver;
  (match !failure with
  | Some msg -> failwith ("split_jurisdiction: " ^ msg)
  | None -> ());
  if !transferred < 0 then failwith "split_jurisdiction: transfer did not complete";
  mag_loid

let checkpoint_all t =
  let driver_loid = fresh_instance_loid t ~of_class:Well_known.legion_object in
  let driver =
    Runtime.spawn t.rt
      ~host:(List.hd (List.hd t.sites).net_hosts)
      ~loid:driver_loid ~kind:Well_known.kind_client
      ~binding_agent:(List.hd t.sites).agent_address
      ~handler:(fun _ _ k -> k (Error (Err.Refused "checkpoint driver")))
      ()
  in
  let ctx = { Runtime.rt = t.rt; self = driver } in
  let swept = ref 0 in
  List.iter
    (fun s ->
      Runtime.invoke ctx ~dst:s.magistrate ~meth:"SweepIdle"
        ~args:[ Value.Float 0.0 ]
        (fun r ->
          match r with
          | Ok (Value.Int n) -> swept := !swept + n
          | Ok _ | Error _ -> ()))
    t.sites;
  Engine.run t.sim;
  Runtime.kill t.rt driver;
  !swept

let enable_recovery t ?(checkpoint_period = 1.0) ?(heartbeat_period = 0.25)
    ?(threshold = 3) ~until () =
  let driver_loid = fresh_instance_loid t ~of_class:Well_known.legion_object in
  let driver =
    Runtime.spawn t.rt
      ~host:(List.hd (List.hd t.sites).net_hosts)
      ~loid:driver_loid ~kind:Well_known.kind_client
      ~binding_agent:(List.hd t.sites).agent_address
      ~handler:(fun _ _ k -> k (Error (Err.Refused "recovery driver")))
      ()
  in
  let ctx = { Runtime.rt = t.rt; self = driver } in
  let pending = ref 0 in
  let failure = ref None in
  let start meth args s =
    incr pending;
    Runtime.invoke ctx ~dst:s.magistrate ~meth ~args (fun r ->
        decr pending;
        match r with
        | Ok _ -> ()
        | Error e -> failure := Some (Err.to_string e))
  in
  List.iter
    (fun s ->
      start "StartCheckpointing"
        [ Value.Float checkpoint_period; Value.Float until ]
        s;
      start "StartHeartbeat"
        [ Value.Float heartbeat_period; Value.Int threshold; Value.Float until ]
        s)
    t.sites;
  (* Drive only until the Start* replies land: a plain [Engine.run] would
     simulate the whole recovery horizon because the magistrate loops keep
     scheduling future beats up to [until]. *)
  let budget = ref 100_000 in
  while !pending > 0 && !budget > 0 && Engine.step t.sim do
    decr budget
  done;
  Runtime.kill t.rt driver;
  (match !failure with
  | Some msg -> failwith ("enable_recovery: " ^ msg)
  | None -> ());
  if !pending > 0 then failwith "enable_recovery: magistrates did not reply"

let run t = Engine.run t.sim

let run_for t dt =
  (* Anchor the horizon with a no-op event so the clock advances even
     when the queue drains early (e.g. waiting out an idle period). *)
  let target = Engine.now t.sim +. dt in
  ignore (Engine.schedule_at t.sim ~time:target (fun () -> ()));
  Engine.run ~until:target t.sim
let now t = Engine.now t.sim
