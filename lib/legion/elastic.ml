(* Autonomic elasticity: arming the self-managing loops, plus the
   shared E19 flash-crowd scenario.

   [enable] wires three mechanisms the paper leaves to policy code:
   - §5.2.2 class cloning made automatic: each supervised class gets an
     admission budget (so its load factor means something) and a
     [StartElastic] loop that grows/shrinks a redirect ring of clones;
   - §3.8 Scheduling Agents: a ["legion.sched.rebalance"] agent is
     derived, configured with every Jurisdiction plus freshly
     provisioned spare Magistrates, and set loose to migrate hot
     objects toward their callers and split oversized Jurisdictions;
   - §5.2.2 Binding Agent combining trees: a watch on per-period
     lookup demand at the site agents re-tiers them under a root layer
     once the flat arrangement is saturated.

   [run_scenario] is the deterministic flash-crowd experiment shared by
   bench E19, the [legion-sim elastic] subcommand and the regression
   tests: a two-site Legion where the whole object population lives in
   the east Jurisdiction and a flash crowd lands from the west. *)

module Value = Legion_wire.Value
module Loid = Legion_naming.Loid
module Address = Legion_naming.Address
module Engine = Legion_sim.Engine
module Script = Legion_sim.Script
module Network = Legion_net.Network
module Env = Legion_sec.Env
module Runtime = Legion_rt.Runtime
module Err = Legion_rt.Err
module Impl = Legion_core.Impl
module Opr = Legion_core.Opr
module Well_known = Legion_core.Well_known
module C = Legion_core.Convert
module Agent_part = Legion_binding.Agent_part
module Magistrate_part = Legion_jur.Magistrate_part
module Sched_part = Legion_sched.Sched_part
module Recorder = Legion_obs.Recorder
module Trace = Legion_obs.Trace
module Stats = Legion_util.Stats
module Prng = Legion_util.Prng

type config = {
  class_admission : Runtime.admission;
  clone_period : float;
  clone_hi : float;
  clone_sustain : int;
  clone_grow_rate : float;
  clone_lo_rate : float;
  clone_merge_sustain : int;
  max_clones : int;
  rebalance_period : float;
  hot_calls : int;
  split_objects : int;
  spares_per_site : int;
  retier_fanout : int;
  retier_lookups : int;
}

let default_config =
  {
    (* Generous on purpose: the class is also the control hub —
       NotifyMagistrates, binding refreshes and the clone handshakes all
       land here, and shedding those wedges migrations half-done. The
       cloning trigger rides the demand rate, not budget exhaustion. *)
    class_admission =
      { Runtime.max_inflight = 16; max_queue = 64; retry_after_hint = 0.05 };
    clone_period = 2.0;
    clone_hi = 0.5;
    clone_sustain = 2;
    clone_grow_rate = 15.0;
    clone_lo_rate = 8.0;
    clone_merge_sustain = 3;
    max_clones = 2;
    rebalance_period = 2.0;
    hot_calls = 12;
    split_objects = 200;
    spares_per_site = 1;
    retier_fanout = 2;
    retier_lookups = 60;
  }

type enabled = { rebalancer : Loid.t; retier_fired : unit -> bool }

(* A spare Magistrate parked on the site, sharing its storage (§2.2
   non-disjoint Jurisdictions) so a later [TransferObjects] moves
   responsibility without moving bytes. Like [System.split_jurisdiction]
   minus the transfer: the rebalancer decides later whether it is ever
   needed. *)
let provision_spare t ctx ~site:site_idx ~ordinal =
  let s = System.site t site_idx in
  let name = Printf.sprintf "%s.spare%d" s.System.site_name ordinal in
  Magistrate_part.register_storage name s.System.storage;
  let mag =
    System.fresh_instance_loid t ~of_class:Well_known.legion_magistrate
  in
  let state =
    Magistrate_part.state_value ~hosts:s.System.host_objects ~jurisdiction:name
      ()
  in
  let opr =
    Opr.make
      ~states:[ (Magistrate_part.unit_name, state) ]
      ~binding_agent:s.System.agent_address ~kind:Well_known.kind_magistrate
      ~units:[ Magistrate_part.unit_name; Well_known.unit_object ]
      ()
  in
  let rt = System.rt t in
  let host = List.nth s.System.net_hosts (List.length s.System.net_hosts - 1) in
  (match Impl.activate rt ~host ~loid:mag opr with
  | Ok _ -> ()
  | Error msg -> failwith ("Elastic.provision_spare: " ^ msg));
  (match Runtime.find_proc rt mag with
  | None -> failwith "Elastic.provision_spare: magistrate did not start"
  | Some proc ->
      ignore
        (Api.call_exn t ctx ~dst:Well_known.legion_magistrate
           ~meth:"RegisterInstance"
           ~args:
             [ Loid.to_value mag; Address.to_value (Runtime.address_of proc) ]));
  mag

(* Build the §5.2.2 combining tree without blocking: the root layer is
   spawned directly and the SetParent fan-out runs asynchronously, so
   this is callable from inside an engine callback (where
   [System.arrange_agent_tree]'s internal [Engine.run] must not be). *)
let retier_now t ~fanout =
  let rt = System.rt t in
  let sites = System.sites t in
  let sites_arr = Array.of_list sites in
  let n_roots = (Array.length sites_arr + fanout - 1) / fanout in
  let roots =
    List.init n_roots (fun i ->
        let covered = sites_arr.(i * fanout) in
        let loid =
          System.fresh_instance_loid t
            ~of_class:Well_known.legion_binding_agent
        in
        let state =
          Agent_part.state_value ~legion_class:(System.legion_class_binding t)
            ()
        in
        let opr =
          Opr.make
            ~states:[ (Agent_part.unit_name, state) ]
            ~kind:Well_known.kind_binding_agent
            ~units:[ Agent_part.unit_name; Well_known.unit_object ]
            ()
        in
        match
          Impl.activate rt ~host:(List.hd covered.System.net_hosts) ~loid opr
        with
        | Ok proc -> proc
        | Error msg -> failwith ("Elastic.retier: " ^ msg))
  in
  let driver_loid =
    System.fresh_instance_loid t ~of_class:Well_known.legion_object
  in
  let driver =
    Runtime.spawn rt
      ~host:(List.hd (List.hd sites).System.net_hosts)
      ~loid:driver_loid ~kind:Well_known.kind_client
      ~handler:(fun _ _ k -> k (Error (Err.Refused "retier driver")))
      ()
  in
  let ctx = { Runtime.rt; self = driver } in
  let pending = ref (List.length sites) in
  List.iteri
    (fun i s ->
      let root = List.nth roots (i / fanout) in
      Runtime.invoke_address ctx ~address:s.System.agent_address
        ~dst:(Loid.make ~class_id:0L ~class_specific:0L ())
        ~meth:"SetParent"
        ~args:[ Value.List [ Address.to_value (Runtime.address_of root) ] ]
        ~env:(Env.of_self driver_loid)
        (fun _ ->
          decr pending;
          if !pending = 0 then Runtime.kill rt driver))
    sites

(* Watch the per-period lookup demand reaching the site Binding Agents;
   once a period serves [retier_lookups] or more, the flat arrangement
   is saturated — re-tier exactly once. *)
let retier_watch t ~cfg ~until =
  let rt = System.rt t in
  let eng = System.sim t in
  let fired = ref false in
  let agent_requests () =
    List.fold_left
      (fun acc s ->
        match Runtime.find_proc rt s.System.agent with
        | Some p -> acc + Runtime.requests_of p
        | None -> acc)
      0 (System.sites t)
  in
  let last = ref (agent_requests ()) in
  let rec tick time =
    if time <= until && not !fired then
      ignore
        (Engine.schedule_at eng ~time (fun () ->
             let now_rq = agent_requests () in
             let delta = now_rq - !last in
             last := now_rq;
             if delta >= cfg.retier_lookups then begin
               fired := true;
               retier_now t ~fanout:cfg.retier_fanout
             end
             else tick (time +. cfg.rebalance_period)))
  in
  tick (Engine.now eng +. cfg.rebalance_period);
  fun () -> !fired

let enable t ctx ~classes ~until ?(cfg = default_config) () =
  let rt = System.rt t in
  (* Supervised classes: an admission budget (the load-factor signal
     StartElastic samples) and the autonomic cloning loop. *)
  List.iter
    (fun cls ->
      (match Runtime.find_proc rt cls with
      | Some p -> Runtime.set_admission p (Some cfg.class_admission)
      | None -> ());
      let v =
        Value.Record
          [
            ("period", Value.Float cfg.clone_period);
            ("until", Value.Float until);
            ("hi", Value.Float cfg.clone_hi);
            ("sustain", Value.Int cfg.clone_sustain);
            ("grow_rate", Value.Float cfg.clone_grow_rate);
            ("lo_rate", Value.Float cfg.clone_lo_rate);
            ("merge_sustain", Value.Int cfg.clone_merge_sustain);
            ("max_clones", Value.Int cfg.max_clones);
          ]
      in
      ignore (Api.call_exn t ctx ~dst:cls ~meth:"StartElastic" ~args:[ v ]))
    classes;
  (* Spare Magistrates, then the rebalancing Scheduling Agent. *)
  let spares =
    List.concat
      (List.mapi
         (fun i s ->
           List.init cfg.spares_per_site (fun j ->
               (provision_spare t ctx ~site:i ~ordinal:j, s.System.site_id)))
         (System.sites t))
  in
  let reb_cls =
    Api.derive_class_exn t ctx ~parent:Well_known.legion_object
      ~name:"Rebalancer"
      ~units:[ Sched_part.unit_rebalance ]
      ~idl:
        "interface Rebalancer { Configure(cfg: any); StartRebalance(period: \
         float, until: float); }"
      ~kind:Well_known.kind_sched ()
  in
  let rebalancer = Api.create_object_exn t ctx ~cls:reb_cls ~eager:true () in
  let mag_entry (mag, site) =
    Value.Record [ ("mag", Loid.to_value mag); ("site", Value.Int site) ]
  in
  let mags =
    List.map (fun s -> (s.System.magistrate, s.System.site_id)) (System.sites t)
  in
  let conf =
    Value.Record
      [
        ("magistrates", Value.List (List.map mag_entry mags));
        ("spares", Value.List (List.map mag_entry spares));
        ("hot_calls", Value.Int cfg.hot_calls);
        ("split_objects", Value.Int cfg.split_objects);
      ]
  in
  ignore (Api.call_exn t ctx ~dst:rebalancer ~meth:"Configure" ~args:[ conf ]);
  ignore
    (Api.call_exn t ctx ~dst:rebalancer ~meth:"StartRebalance"
       ~args:[ Value.Float cfg.rebalance_period; Value.Float until ]);
  let retier_fired = retier_watch t ~cfg ~until in
  { rebalancer; retier_fired }

(* ------------------------------------------------------------------ *)
(* The shared flash-crowd scenario (E19).                              *)

(* The scenario's application unit: [Work(d)] holds an inflight slot
   for [d] virtual seconds, so demand shows up in admission load and in
   the caller's latency. *)
let work_unit = "legion.elastic.work"
let work_idl = "interface ElasticWorker { Work(d: float): int; }"

let work_factory (_ctx : Runtime.ctx) : Impl.part =
  let served = ref 0 in
  let work wctx args _env k =
    match args with
    | [ Value.Float d ] when d >= 0.0 ->
        incr served;
        let eng = Runtime.sim wctx.Runtime.rt in
        let n = !served in
        ignore
          (Engine.schedule_at eng ~time:(Engine.now eng +. d) (fun () ->
               k (Ok (Value.Int n))))
    | _ -> Impl.bad_args k "Work expects one non-negative float"
  in
  Impl.part
    ~methods:[ ("Work", work) ]
    ~save:(fun () -> Value.Int !served)
    ~restore:(fun v ->
      match v with
      | Value.Int n ->
          served := n;
          Ok ()
      | _ -> Error "work state must be an int")
    work_unit

let register_units () = Impl.register work_unit work_factory

type report = {
  elastic : bool;
  seed : int64;
  arrivals : int;
  works : int;
  oks : int;
  sheds : int;
  errors : int;
  created : int;
  p50_ms : float;
  p99_ms : float;
  flash_p50_ms : float;
  flash_p99_ms : float;
  max_host_share : float;
  clones : int;
  merges : int;
  moves : int;
  splits : int;
  retier : bool;
}

let scenario_objects = 16
let scenario_zipf_s = 1.2
let scenario_horizon = 60.0
let scenario_flash_at = 20.0
let scenario_flash_width = 20.0

let scenario_profile =
  {
    Script.base_rate = 40.0;
    diurnal_amplitude = 0.25;
    diurnal_period = 60.0;
    flashes = [];
    (* The flash is attached in [run_scenario], where absolute times
       are known (the virtual clock is not 0 after bootstrap). *)
  }

(* Follow §5.2.2 redirects asynchronously — the open-loop generator
   must never block on the engine, so it cannot use [Api.create_object]. *)
let async_create ctx ~cls ~hints k =
  let rec issue dst hops =
    Runtime.invoke ctx ~dst ~meth:"Create" ~args:[ Value.Record []; hints ]
      (fun r ->
        match r with
        | Ok v -> (
            match C.loid_field v "redirect" with
            | Ok clone when hops > 0 -> issue clone (hops - 1)
            | _ -> k r)
        | Error _ -> k r)
  in
  issue cls 3

let pct stats p = if Stats.is_empty stats then 0.0 else Stats.percentile stats p

let run_scenario ?(seed = 7L) ~elastic () =
  register_units ();
  let cfg = default_config in
  let sys =
    System.boot ~seed
      ~rt_config:
        {
          Runtime.default_config with
          admission = Some Runtime.default_admission;
        }
      ~trace_capacity:(1 lsl 18)
      ~sites:[ ("east", 3); ("west", 3) ]
      ()
  in
  let rt = System.rt sys in
  let eng = System.sim sys in
  let s0 = System.site sys 0 in
  let ctx = System.client sys () in
  let cls =
    Api.derive_class_exn sys ctx ~parent:Well_known.legion_object
      ~name:"ElasticWorker" ~units:[ work_unit ] ~idl:work_idl ()
  in
  (* The whole population is deliberately placed in the east
     Jurisdiction: the imbalance the elastic machinery must discover. *)
  let objs =
    Array.init scenario_objects (fun _ ->
        Api.create_object_exn sys ctx ~cls ~magistrate:s0.System.magistrate ())
  in
  let start = System.now sys in
  let flash_at = start +. scenario_flash_at in
  let until = start +. scenario_horizon in
  let enabled =
    if elastic then Some (enable sys ctx ~classes:[ cls ] ~until ~cfg ())
    else None
  in
  let mark = Recorder.total (System.obs sys) in
  let clients =
    Array.init (List.length (System.sites sys)) (fun i ->
        System.client sys ~site:i ())
  in
  let workload =
    {
      Script.objects = scenario_objects;
      zipf_s = scenario_zipf_s;
      site_mix = [| 0.75; 0.25 |];
      profile =
        {
          scenario_profile with
          Script.flashes =
            [
              {
                Script.at = flash_at;
                width = scenario_flash_width;
                boost = 6.0;
                site = Some 1;
              };
            ];
        };
    }
  in
  let dbg = Sys.getenv_opt "LEGION_ELASTIC_DEBUG" <> None in
  let err_tally : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let note_err where e =
    if dbg then begin
      let key = Printf.sprintf "%s: %s" where (Err.to_string e) in
      Hashtbl.replace err_tally key
        (1 + Option.value ~default:0 (Hashtbl.find_opt err_tally key))
    end
  in
  let arrivals = ref 0 in
  let works = ref 0 in
  let oks = ref 0 in
  let sheds = ref 0 in
  let errors = ref 0 in
  let created = ref 0 in
  let all = Stats.create () in
  let flash = Stats.create () in
  let host_served = Hashtbl.create 16 in
  let create_hints =
    Value.Record
      [
        ("magistrate", C.vopt Loid.to_value (Some s0.System.magistrate));
        ("host", C.vopt Loid.to_value None);
        ("sched", C.vopt Loid.to_value None);
        ("candidates", C.vloids []);
        ("public_key", C.vopt Value.of_string None);
        ("eager", Value.Bool false);
      ]
  in
  (* The settled half of the flash window: the first half is where
     clones and migrations are still catching up. *)
  let flash_settled_lo = flash_at +. (scenario_flash_width /. 2.0) in
  let flash_settled_hi = flash_at +. scenario_flash_width in
  let fire ~seq ~obj ~site =
    incr arrivals;
    let c = clients.(site) in
    if seq mod 8 = 0 then
      (* Population churn: every eighth arrival is an instantiation
         request against the class — the §5.2.2 cloning load. *)
      async_create c ~cls ~hints:create_hints (fun r ->
          match r with
          | Ok _ -> incr created
          | Error (Err.Overloaded _ as e) ->
              incr sheds;
              note_err "create" e
          | Error e ->
              incr errors;
              note_err "create" e)
    else begin
      incr works;
      let t0 = Engine.now eng in
      let dst = objs.(obj) in
      Runtime.invoke c ~dst ~meth:"Work"
        ~args:[ Value.Float 0.002 ]
        (fun r ->
          match r with
          | Ok _ ->
              incr oks;
              let dt = Engine.now eng -. t0 in
              Stats.add all dt;
              if site = 1 && t0 >= flash_settled_lo && t0 <= flash_settled_hi
              then Stats.add flash dt;
              (match Runtime.find_proc rt dst with
              | Some p ->
                  let h = Runtime.proc_host p in
                  Hashtbl.replace host_served h
                    (1 + Option.value ~default:0 (Hashtbl.find_opt host_served h))
              | None -> ())
          | Error (Err.Overloaded _ as e) ->
              incr sheds;
              note_err "work" e
          | Error e ->
              incr errors;
              note_err "work" e)
    end
  in
  let prng = Prng.create ~seed:(Int64.logxor seed 0x9e3779b97f4a7c15L) in
  Script.drive eng ~prng workload ~start ~until fire;
  System.run_for sys (scenario_horizon +. 10.0);
  let total_served = Hashtbl.fold (fun _ n acc -> acc + n) host_served 0 in
  let max_served = Hashtbl.fold (fun _ n acc -> Stdlib.max acc n) host_served 0 in
  let max_host_share =
    if total_served = 0 then 0.0
    else float_of_int max_served /. float_of_int total_served
  in
  if dbg then
    Hashtbl.iter (fun k n -> Printf.eprintf "  [dbg] %5d  %s\n%!" n k) err_tally;
  let evs = Recorder.events_since (System.obs sys) mark in
  {
    elastic;
    seed;
    arrivals = !arrivals;
    works = !works;
    oks = !oks;
    sheds = !sheds;
    errors = !errors;
    created = !created;
    p50_ms = pct all 50.0 *. 1000.0;
    p99_ms = pct all 99.0 *. 1000.0;
    flash_p50_ms = pct flash 50.0 *. 1000.0;
    flash_p99_ms = pct flash 99.0 *. 1000.0;
    max_host_share;
    clones = Trace.count_of (Trace.clone_ev ()) evs;
    merges = Trace.count_of (Trace.merge ()) evs;
    moves = Trace.count_of (Trace.migrate ()) evs;
    splits = Trace.count_of (Trace.split ()) evs;
    retier =
      (match enabled with Some e -> e.retier_fired () | None -> false);
  }

let scenario_json r =
  Printf.sprintf
    "{\"elastic\": %b, \"seed\": %Ld, \"arrivals\": %d, \"works\": %d, \
     \"oks\": %d, \"sheds\": %d, \"errors\": %d, \"created\": %d, \
     \"p50_ms\": %.3f, \"p99_ms\": %.3f, \"flash_p50_ms\": %.3f, \
     \"flash_p99_ms\": %.3f, \"max_host_share\": %.4f, \"clones\": %d, \
     \"merges\": %d, \"moves\": %d, \"splits\": %d, \"retier\": %b}"
    r.elastic r.seed r.arrivals r.works r.oks r.sheds r.errors r.created
    r.p50_ms r.p99_ms r.flash_p50_ms r.flash_p99_ms r.max_host_share r.clones
    r.merges r.moves r.splits r.retier
